// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§VII), plus ablations of the design choices DESIGN.md calls
// out. Each benchmark regenerates its artifact at a reduced scale and
// reports the paper-relevant quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints a compact reproduction summary. The cmd/diststream CLI runs the
// same experiments at larger scales with full tables.
package diststream_test

import (
	"testing"

	"diststream/internal/datagen"
	"diststream/internal/harness"
)

// Benchmark scales: small enough for CI, large enough that shapes hold.
const (
	benchRecords = 8000
	benchRepeats = 2
	benchSeed    = 42
)

// BenchmarkTable1Datasets regenerates Table I: the three synthetic
// dataset substitutes with their skew and stability characteristics.
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable1(benchRecords, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
		if i == 0 {
			// kdd98 stability / kdd99 stability: <1 means the stability
			// ordering the paper's §VII-B2 analysis needs holds.
			b.ReportMetric(res.Rows[2].Stability/res.Rows[0].Stability, "stabilityRatio98/99")
		}
	}
}

// BenchmarkFigure6Quality regenerates Figure 6 for one representative
// cell (kdd99-sim / clustream): CMM of MOA vs order-aware vs unordered.
func BenchmarkFigure6Quality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunQuality(harness.QualityConfig{
			Datasets:   []datagen.Preset{datagen.KDD99Sim},
			Algorithms: []string{"clustream"},
			Records:    benchRecords,
			Seed:       benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			cell := res.Cells[0]
			if ordered, ok := cell.Mode(harness.ModeDistStream); ok {
				b.ReportMetric(ordered.NormCMM, "normCMM-ordered")
			}
			if unordered, ok := cell.Mode(harness.ModeUnordered); ok {
				b.ReportMetric(unordered.NormCMM, "normCMM-unordered")
			}
		}
	}
}

// BenchmarkQualityBatchSize regenerates the §VII-B2 batch-size quality
// sweep (paper: ≤2.79% average CMM difference across 5s–30s).
func BenchmarkQualityBatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunBatchSizeQuality(harness.QualityConfig{
			Records: benchRecords,
			Seed:    benchSeed,
		}, datagen.KDD99Sim, "denstream", []float64{5, 10, 20})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MaxDeltaPercent(), "maxCMMDelta%")
		}
	}
}

// BenchmarkEmbeddingQuality runs the CMM quality harness on the
// 128-dim embedding stream — the high-dimensional regime the ROADMAP
// opens, where the blocked assign kernel carries the distance work.
func BenchmarkEmbeddingQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunQuality(harness.QualityConfig{
			Datasets:   []datagen.Preset{datagen.EmbedSim128},
			Algorithms: []string{"clustream"},
			Records:    benchRecords,
			Seed:       benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			cell := res.Cells[0]
			if ordered, ok := cell.Mode(harness.ModeDistStream); ok {
				b.ReportMetric(ordered.NormCMM, "normCMM-ordered")
			}
			if unordered, ok := cell.Mode(harness.ModeUnordered); ok {
				b.ReportMetric(unordered.NormCMM, "normCMM-unordered")
			}
		}
	}
}

// BenchmarkEmbeddingThroughput measures single-machine throughput on the
// 768-dim embedding stream, the kernel-bound end of the dimension sweep.
func BenchmarkEmbeddingThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunThroughput(harness.ThroughputConfig{
			Datasets:    []datagen.Preset{datagen.EmbedSim768},
			Algorithms:  []string{"clustream"},
			BaseRecords: benchRecords,
			Repeats:     benchRepeats,
			Seed:        benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if ds, ok := res.Cell("large-embed768-sim", "clustream", harness.ModeDistStream); ok {
				b.ReportMetric(ds.Throughput, "diststream-rec/s")
			}
			if moa, ok := res.Cell("large-embed768-sim", "clustream", harness.ModeMOA); ok {
				b.ReportMetric(moa.Throughput, "moa-rec/s")
			}
		}
	}
}

// BenchmarkFigure7Throughput regenerates Figure 7: MOA vs unordered vs
// DistStream single-machine throughput.
func BenchmarkFigure7Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunThroughput(harness.ThroughputConfig{
			Datasets:    []datagen.Preset{datagen.KDD99Sim},
			Algorithms:  []string{"denstream"},
			BaseRecords: benchRecords,
			Repeats:     benchRepeats,
			Seed:        benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if moa, ok := res.Cell("large-kdd99-sim", "denstream", harness.ModeMOA); ok {
				b.ReportMetric(moa.Throughput, "moa-rec/s")
			}
			if ds, ok := res.Cell("large-kdd99-sim", "denstream", harness.ModeDistStream); ok {
				b.ReportMetric(ds.Throughput, "diststream-rec/s")
			}
		}
	}
}

// BenchmarkFigure8Scalability regenerates Figure 8: modeled throughput
// gain across parallelism degrees (paper headline: 13.2x at p=32).
func BenchmarkFigure8Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunScalability(harness.ScalabilityConfig{
			Datasets:    []datagen.Preset{datagen.KDD99Sim},
			Algorithms:  []string{"denstream"},
			BaseRecords: benchRecords,
			Repeats:     benchRepeats,
			Seed:        benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MaxGain(), "gain@p32")
			b.ReportMetric(100*res.Curves[0].Points[5].StragglerFraction, "stragglers@p32-%")
		}
	}
}

// BenchmarkFigure9BatchSize regenerates Figure 9: throughput vs batch
// interval at p=32.
func BenchmarkFigure9BatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunBatchSizeSweep(harness.ScalabilityConfig{
			BaseRecords: benchRecords,
			Repeats:     benchRepeats,
			Seed:        benchSeed,
		}, datagen.KDD99Sim, "denstream", []float64{1, 5, 10, 20}, 32)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first := res.Points[0].Throughput
			best := first
			for _, pt := range res.Points {
				if pt.Throughput > best {
					best = pt.Throughput
				}
			}
			// >1 reproduces the paper's observation that tiny batches lose
			// throughput to per-batch overheads.
			b.ReportMetric(best/first, "peakVs1sBatch")
		}
	}
}

// BenchmarkFigure10OtherAlgos regenerates Figure 10: D-Stream and
// ClusTree scalability, including their faster closest-micro-cluster
// search (grid lookup / tree descent).
func BenchmarkFigure10OtherAlgos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunScalability(harness.ScalabilityConfig{
			Datasets:    []datagen.Preset{datagen.KDD99Sim},
			Algorithms:  []string{"dstream", "clustree"},
			BaseRecords: benchRecords,
			Repeats:     benchRepeats,
			Seed:        benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, curve := range res.Curves {
				b.ReportMetric(curve.Points[5].Gain, curve.Algorithm+"-gain@p32")
			}
		}
	}
}

// BenchmarkAblationPreMerge measures the §V-C pre-merge optimization:
// outlier micro-clusters shipped to the driver with and without it.
func BenchmarkAblationPreMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunPreMergeAblation(datagen.KDD99Sim, "denstream", benchRecords, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.CreatedReduction(), "outlierMCReduction-x")
		}
	}
}

// BenchmarkAblationParallelismChoice measures the §V-A record-based vs
// model-based assign-step comparison (with modeled communication).
func BenchmarkAblationParallelismChoice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunParallelismChoiceAblation(benchRecords, 100, 54, 4, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Speedup(), "modelBasedSlowdown-x")
		}
	}
}
