// Batched-assign equivalence: the blocked many-vs-many assign path must
// land on byte-identical final model state to the per-record scalar
// path, at the facade level, for both flat-index acceptance algorithms.
// This is the end-to-end check behind the kernel-level differential
// fuzzing — if the batched argmin, the absorb tests, or the outlier
// dealing diverged anywhere, the gob-encoded models would differ.
package diststream_test

import (
	"bytes"
	"context"
	"testing"

	"diststream"
	"diststream/internal/core"
	"diststream/internal/stream"
)

type batchEquivRun struct {
	stats diststream.RunStats
	state []byte // gob-encoded driver model: byte equality = bit identity
}

// runBatchEquiv runs the figure workload on the local executor with the
// batched assign path toggled and captures the final model state. The
// toggle is process-local, so this battery uses the in-process executor
// (TCP workers would not see the flip; the schedule/shard batteries
// already cover cross-executor identity of the assign output).
func runBatchEquiv(t *testing.T, algoName string, batched bool) batchEquivRun {
	t.Helper()
	diststream.RegisterWireTypes()
	restore := core.SetBatchAssign(batched)
	defer restore()
	sys, err := diststream.New(diststream.Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pl, err := sys.NewPipeline(newFacadeAlgo(t, sys, algoName), diststream.PipelineOptions{
		BatchSeconds: 1,
		InitRecords:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.RunContext(context.Background(), stream.NewSliceSource(deltaBlobStream(1200, 4)))
	if err != nil {
		t.Fatal(err)
	}
	state, err := pl.Model().EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	return batchEquivRun{stats: stats, state: state}
}

// TestBatchAssignEquivalenceBitIdentical is the facade acceptance matrix
// for the batched assign rewrite: {CluStream, DenStream}, batched vs
// scalar, byte-equal models and identical run accounting.
func TestBatchAssignEquivalenceBitIdentical(t *testing.T) {
	for _, algoName := range []string{"clustream", "denstream"} {
		t.Run(algoName, func(t *testing.T) {
			scalar := runBatchEquiv(t, algoName, false)
			batched := runBatchEquiv(t, algoName, true)
			if !bytes.Equal(batched.state, scalar.state) {
				t.Errorf("model state diverged: batched %d bytes, scalar %d bytes",
					len(batched.state), len(scalar.state))
			}
			if batched.stats.Records != scalar.stats.Records || batched.stats.Batches != scalar.stats.Batches {
				t.Errorf("run shape diverged: batched %d records / %d batches, scalar %d / %d",
					batched.stats.Records, batched.stats.Batches, scalar.stats.Records, scalar.stats.Batches)
			}
			if batched.stats.UpdatedMCs != scalar.stats.UpdatedMCs || batched.stats.CreatedMCs != scalar.stats.CreatedMCs {
				t.Errorf("update accounting diverged: batched %d/%d, scalar %d/%d",
					batched.stats.UpdatedMCs, batched.stats.CreatedMCs, scalar.stats.UpdatedMCs, scalar.stats.CreatedMCs)
			}
		})
	}
}
