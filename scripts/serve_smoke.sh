#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the query-serving subsystem:
# builds the binaries, starts `diststream serve` on a live ingesting
# pipeline, waits for readiness, exercises every endpoint, verifies the
# macro cache actually caches (non-zero hit counter after a repeated
# query), runs the load generator, and checks graceful shutdown.
#
# Fails on any non-2xx response, a zero macro cache-hit counter, or an
# unclean server exit. Run via `make serve-smoke`.
set -euo pipefail

ADDR="${SERVE_SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="$(mktemp -d)"
SERVE_LOG="$BIN/serve.log"
SERVE_PID=""

cleanup() {
  if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -9 "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$BIN"
}
trap cleanup EXIT

fail() {
  echo "serve-smoke: FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "$SERVE_LOG" >&2 || true
  exit 1
}

echo "== building binaries"
go build -o "$BIN/diststream" ./cmd/diststream
go build -o "$BIN/serveload" ./cmd/serveload

echo "== starting diststream serve on $ADDR"
"$BIN/diststream" serve -addr "$ADDR" -records 8000 -loop 0 -wall-rate 2000 \
  -batch 2 -max-inflight 4 -max-queue 8 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!

echo "== waiting for /readyz"
ready=""
for _ in $(seq 1 120); do
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    fail "server exited before becoming ready"
  fi
  if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then
    ready=1
    break
  fi
  sleep 0.5
done
[[ -n "$ready" ]] || fail "server never became ready"

echo "== probes"
curl -fsS "$BASE/healthz" >/dev/null || fail "GET /healthz"

echo "== GET /v1/clusters"
clusters="$(curl -fsS "$BASE/v1/clusters")" || fail "GET /v1/clusters"
# -m1 (stop at first match) instead of | head -1: under pipefail, head
# closing the pipe early would kill grep with SIGPIPE and abort the script.
version="$(printf '%s' "$clusters" | grep -o -m1 '"version":[0-9]*' | cut -d: -f2)"
count="$(printf '%s' "$clusters" | grep -o -m1 '"count":[0-9]*' | cut -d: -f2)"
[[ -n "$version" && "$version" -ge 1 ]] || fail "bad clusters version: $clusters"
[[ -n "$count" && "$count" -ge 1 ]] || fail "no micro-clusters served: $clusters"
echo "   model version $version with $count micro-clusters"

echo "== GET /v1/assign (point from the model's first center)"
# The JSON is one line, so grep -o emits every center; sed consumes all
# of them (no early-exit SIGPIPE under pipefail) and prints only the first.
point="$(printf '%s' "$clusters" | grep -o '"center":\[[^]]*\]' | sed -n '1{s/.*\[//;s/\]//;p;}')"
[[ -n "$point" ]] || fail "could not extract a center from /v1/clusters"
assign="$(curl -fsS "$BASE/v1/assign" --get --data-urlencode "point=$point")" || fail "GET /v1/assign"
printf '%s' "$assign" | grep -q '"id":' || fail "assign response lacks an id: $assign"

echo "== POST /v1/macro twice at pinned version $version (second must hit the cache)"
body="{\"algorithm\":\"kmeans\",\"k\":3,\"seed\":7,\"version\":$version}"
macro1="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" "$BASE/v1/macro")" \
  || fail "first POST /v1/macro"
printf '%s' "$macro1" | grep -q '"cached":false' || fail "first macro unexpectedly cached: $macro1"
macro2="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" "$BASE/v1/macro")" \
  || fail "second POST /v1/macro"
printf '%s' "$macro2" | grep -q '"cached":true' || fail "repeated macro not served from cache: $macro2"

echo "== /metrics sanity"
metrics="$(curl -fsS "$BASE/metrics")" || fail "GET /metrics"
printf '%s' "$metrics" | grep -q '^diststream_snapshot_version [1-9]' \
  || fail "metrics lack a published snapshot version"
hits="$(printf '%s' "$metrics" | grep '^diststream_macro_cache_hits_total' | awk '{print $2}')"
[[ -n "$hits" && "$hits" -ge 1 ]] || fail "macro cache hit counter is zero after a repeated query"
printf '%s' "$metrics" | grep -q '^diststream_producer_records_total' \
  || fail "metrics lack producer counters"
echo "   macro cache hits: $hits"

echo "== load generator (16 clients, 3s)"
"$BIN/serveload" -addr "$BASE" -clients 16 -duration 3s -macro-every 10 -json \
  | tee "$BIN/serveload.out"
grep -q '^SERVELOAD {' "$BIN/serveload.out" || fail "serveload printed no summary"
if grep -q '"ok":0,' "$BIN/serveload.out"; then
  fail "serveload completed zero successful requests"
fi

echo "== graceful shutdown (SIGINT)"
kill -INT "$SERVE_PID"
for _ in $(seq 1 40); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.5
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  fail "server did not exit within 20s of SIGINT"
fi
wait "$SERVE_PID" || fail "server exited non-zero"
SERVE_PID=""
grep -q 'done: ingested' "$SERVE_LOG" || fail "server log lacks the shutdown summary"

echo "serve-smoke: PASS"
