// Hot-path microbenchmarks: the assign stage (closest-micro-cluster
// search over a batch) and the shuffle that feeds the local update. These
// complement the figure-level benchmarks in bench_test.go with per-stage
// numbers that `make bench-json` records into the perf-trajectory file.
//
// The filename sorts before bench_test.go on purpose: benchmarks run in
// file order within one process, and measuring the micro benches before
// the figure-level runs keeps their timings free of the multi-hundred-MB
// heap (and its GC tax) the macro benchmarks leave behind.
package diststream_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"diststream/internal/clustream"
	"diststream/internal/core"
	"diststream/internal/mbsp"
	"diststream/internal/stream"
	"diststream/internal/vclock"
)

// assignBenchEnv builds a LocalExecutor with the core ops registered, a
// clustream snapshot of numMC micro-clusters at the given dimensionality,
// and a batch of records dealt round-robin over p partitions. Records
// come from gen (randRecord for the tabular grid fixture, embedRecordGen
// for embedding geometry).
func assignBenchEnv(b *testing.B, dim, numMC, records, p int, gen func(rng *rand.Rand, seq uint64) stream.Record) (*mbsp.LocalExecutor, []mbsp.Partition) {
	b.Helper()
	algos := core.NewAlgorithmRegistry()
	if err := clustream.Register(algos); err != nil {
		b.Fatal(err)
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		b.Fatal(err)
	}
	exec, err := mbsp.NewLocalExecutor(mbsp.LocalConfig{Parallelism: p, Registry: reg})
	if err != nil {
		b.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	algo := clustream.New(clustream.Config{Dim: dim, MaxMicroClusters: numMC})
	warm := make([]stream.Record, numMC*4)
	for i := range warm {
		warm[i] = gen(rng, uint64(i))
	}
	mcs, err := algo.Init(warm)
	if err != nil {
		b.Fatal(err)
	}
	for i, mc := range mcs {
		mc.SetID(uint64(i + 1))
	}
	snap := algo.NewSnapshot(mcs)

	ctx := context.Background()
	if err := exec.Broadcast(ctx, core.BroadcastModel, snap); err != nil {
		b.Fatal(err)
	}
	cfg := core.TaskConfig{
		Params:        algo.Params(),
		Ordered:       true,
		PreMerge:      true,
		OutlierGroups: uint64(p),
	}
	if err := exec.Broadcast(ctx, core.BroadcastConfig, cfg); err != nil {
		b.Fatal(err)
	}

	items := make([]mbsp.Item, records)
	for i := range items {
		items[i] = gen(rng, uint64(len(warm)+i))
	}
	parts, err := mbsp.RoundRobin(items, p)
	if err != nil {
		b.Fatal(err)
	}
	return exec, parts
}

// randRecord scatters records around numMC cluster sites in [0,10)^dim
// with unit-ish noise, so a realistic fraction lands inside boundaries.
func randRecord(rng *rand.Rand, seq uint64, dim, numMC int) stream.Record {
	site := rng.Intn(numMC)
	values := make([]float64, dim)
	for d := range values {
		base := float64((site*31+d*17)%100) / 10
		values[d] = base + rng.NormFloat64()*0.5
	}
	return stream.Record{
		Seq:       seq,
		Timestamp: vclock.Time(seq / 100),
		Values:    values,
		Label:     site,
	}
}

// embedRecordGen builds a generator with the embed-preset geometry: k
// clusters on random unit directions at norm 6, per-dim std 4/sqrt(dim)
// so the point-to-center distance is 4 at every dimensionality. Unlike
// randRecord's grid sites (separated by ~20 sigma per dim, so the argmin
// early exit abandons nearly every center after a few dims), embedding
// competitors differ by a small amount per dimension and the kernel must
// scan deep into most rows — the regime the blocked kernel is for.
func embedRecordGen(dim, k int) func(rng *rand.Rand, seq uint64) stream.Record {
	crng := rand.New(rand.NewSource(99))
	centers := make([][]float64, k)
	for i := range centers {
		c := make([]float64, dim)
		var norm float64
		for j := range c {
			c[j] = crng.NormFloat64()
			norm += c[j] * c[j]
		}
		scale := 6 / math.Sqrt(norm)
		for j := range c {
			c[j] *= scale
		}
		centers[i] = c
	}
	std := 4 / math.Sqrt(float64(dim))
	return func(rng *rand.Rand, seq uint64) stream.Record {
		site := rng.Intn(k)
		values := make([]float64, dim)
		for d := range values {
			values[d] = centers[site][d] + rng.NormFloat64()*std
		}
		return stream.Record{
			Seq:       seq,
			Timestamp: vclock.Time(seq / 100),
			Values:    values,
			Label:     site,
		}
	}
}

// BenchmarkAssignOp measures the record-parallel assign stage (§V-A) end
// to end on the local executor: nearest-micro-cluster search for every
// record of the batch plus keyed-output construction.
func BenchmarkAssignOp(b *testing.B) {
	const (
		dim     = 34
		numMC   = 100
		records = 4096
		p       = 4
	)
	exec, parts := assignBenchEnv(b, dim, numMC, records, p,
		func(rng *rand.Rand, seq uint64) stream.Record { return randRecord(rng, seq, dim, numMC) })
	defer exec.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exec.RunTasks(ctx, "assign", core.OpAssign, parts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
}

// BenchmarkAssignOpDimSweep measures the assign stage across record
// dimensionalities with the batched (blocked many-vs-many kernel) and
// scalar (per-record) paths — the before/after for the batched assign
// rewrite. The kernel-level record-block-size sweep lives in
// internal/vector's BenchmarkBatchNearestKernel; both land in
// bench-json.
func BenchmarkAssignOpDimSweep(b *testing.B) {
	const (
		numMC   = 128
		records = 2048
		p       = 4
	)
	for _, dim := range []int{2, 32, 128, 768} {
		exec, parts := assignBenchEnv(b, dim, numMC, records, p, embedRecordGen(dim, 12))
		for _, mode := range []struct {
			name    string
			batched bool
		}{{"batched", true}, {"scalar", false}} {
			b.Run(fmt.Sprintf("d%d/%s", dim, mode.name), func(b *testing.B) {
				restore := core.SetBatchAssign(mode.batched)
				defer restore()
				ctx := context.Background()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := exec.RunTasks(ctx, "assign", core.OpAssign, parts); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
			})
		}
		exec.Close()
	}
}

// BenchmarkAssignShuffle measures assign followed by the driver-side
// group-by-key shuffle — the full path from raw records to local-update
// input partitions.
func BenchmarkAssignShuffle(b *testing.B) {
	const (
		dim     = 34
		numMC   = 100
		records = 4096
		p       = 4
	)
	exec, parts := assignBenchEnv(b, dim, numMC, records, p,
		func(rng *rand.Rand, seq uint64) stream.Record { return randRecord(rng, seq, dim, numMC) })
	defer exec.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keyed, _, err := exec.RunTasks(ctx, "assign", core.OpAssign, parts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mbsp.ShuffleByKey(keyed, p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
}

var benchSizes = []struct{ dim, numMC int }{
	{8, 100},
	{34, 100},
	{54, 100},
	{34, 1000},
}

// BenchmarkSnapshotNearest measures Snapshot.Nearest in isolation across
// dimensionalities and model sizes (the per-record cost the assign stage
// parallelizes).
func BenchmarkSnapshotNearest(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("dim%d-mc%d", size.dim, size.numMC), func(b *testing.B) {
			rng := rand.New(rand.NewSource(11))
			algo := clustream.New(clustream.Config{Dim: size.dim, MaxMicroClusters: size.numMC})
			warm := make([]stream.Record, size.numMC*4)
			for i := range warm {
				warm[i] = randRecord(rng, uint64(i), size.dim, size.numMC)
			}
			mcs, err := algo.Init(warm)
			if err != nil {
				b.Fatal(err)
			}
			for i, mc := range mcs {
				mc.SetID(uint64(i + 1))
			}
			snap := algo.NewSnapshot(mcs)
			probes := make([]stream.Record, 256)
			for i := range probes {
				probes[i] = randRecord(rng, uint64(i), size.dim, size.numMC)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := probes[i%len(probes)]
				if _, _, ok := snap.Nearest(rec); !ok {
					b.Fatal("empty snapshot")
				}
			}
		})
	}
}
