package diststream_test

import (
	"bytes"
	"context"
	"testing"

	"diststream/internal/core"
	"diststream/internal/datagen"
	"diststream/internal/harness"
	"diststream/internal/mbsp"
	"diststream/internal/mbsp/sched"
	"diststream/internal/stream"
	"diststream/internal/vclock"
)

// plainExecutor hides every optional capability of the executor it
// wraps: it forwards only the four base Executor methods, so the engine
// sees no Capable, no StageDispatcher, no DeltaBroadcaster, no
// MembershipReconciler — the shape of a third-party executor written
// against the minimal interface.
type plainExecutor struct{ inner mbsp.Executor }

func (p *plainExecutor) Parallelism() int { return p.inner.Parallelism() }
func (p *plainExecutor) Broadcast(ctx context.Context, id string, value mbsp.Item) error {
	return p.inner.Broadcast(ctx, id, value)
}
func (p *plainExecutor) RunTasks(ctx context.Context, stage, op string, inputs []mbsp.Partition) ([]mbsp.Partition, []mbsp.TaskMetrics, error) {
	return p.inner.RunTasks(ctx, stage, op, inputs)
}
func (p *plainExecutor) Close() error { return p.inner.Close() }

// emulationRun executes one pipeline over an in-process executor and
// returns the encoded final model. With plain set, the executor is
// wrapped so the engine must fall back to capability emulation.
func emulationRun(t *testing.T, ds harness.Dataset, algoName string, kind sched.Kind, plain bool) []byte {
	t.Helper()
	harness.RegisterAllWireTypes()
	algos, err := harness.NewAlgorithmRegistry()
	if err != nil {
		t.Fatal(err)
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		t.Fatal(err)
	}
	local, err := mbsp.NewLocalExecutor(mbsp.LocalConfig{Parallelism: 3, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	var ex mbsp.Executor = local
	if plain {
		ex = &plainExecutor{inner: local}
	}
	eng, err := mbsp.NewEngine(ex)
	if err != nil {
		t.Fatal(err)
	}
	caps := eng.Capabilities()
	if plain && caps != (mbsp.Capabilities{}) {
		t.Fatalf("wrapped executor leaked capabilities: %+v", caps)
	}
	if !plain && !caps.AsyncDispatch {
		t.Fatal("native LocalExecutor should advertise AsyncDispatch")
	}
	schedule, err := sched.New(kind)
	if err != nil {
		t.Fatal(err)
	}
	algo, err := harness.NewAlgorithm(algoName, ds, 42)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPipeline(core.Config{
		Algorithm:     algo,
		Engine:        eng,
		Schedule:      schedule,
		BatchInterval: vclock.Duration(2),
		InitRecords:   500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.RunContext(context.Background(), stream.NewSliceSource(ds.Records)); err != nil {
		t.Fatal(err)
	}
	state, err := pl.Model().EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	return state
}

// TestCapabilityEmulationFallback pins the engine's compatibility
// guarantee: an executor exposing only the minimal Executor interface
// (no AsyncDispatch, no DeltaBroadcast) runs both schedules through the
// engine-level emulation and produces output byte-identical to the
// fully capable native path.
func TestCapabilityEmulationFallback(t *testing.T) {
	ds, err := harness.LoadDataset(datagen.KDD99Sim, 1200, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, algoName := range []string{"clustream", "denstream"} {
		t.Run(algoName, func(t *testing.T) {
			native := emulationRun(t, ds, algoName, sched.BSP, false)
			for _, kind := range []sched.Kind{sched.BSP, sched.Pipelined} {
				t.Run(string(kind), func(t *testing.T) {
					got := emulationRun(t, ds, algoName, kind, true)
					if !bytes.Equal(got, native) {
						t.Errorf("emulated %s run diverged from native path: %d vs %d state bytes",
							kind, len(got), len(native))
					}
				})
			}
		})
	}
}
