package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diststream/internal/stream"
)

// TestRunPresets smokes every preset name through the CLI at a small
// record count and checks the CSV round-trips with the right shape.
func TestRunPresets(t *testing.T) {
	dims := map[string]int{
		"kdd99": 54, "covtype": 54, "kdd98": 315,
		"embed128": 128, "embed384": 384, "embed768": 768,
	}
	for name, dim := range dims {
		out := filepath.Join(t.TempDir(), name+".csv")
		if err := run([]string{"-preset", name, "-records", "200", "-out", out}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := stream.ReadCSV(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: read csv: %v", name, err)
		}
		if len(recs) != 200 {
			t.Fatalf("%s: %d records, want 200", name, len(recs))
		}
		if got := len(recs[0].Values); got != dim {
			t.Fatalf("%s: dim %d, want %d", name, got, dim)
		}
	}
}

func TestRunUnknownPreset(t *testing.T) {
	err := run([]string{"-preset", "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Fatalf("err = %v, want unknown preset", err)
	}
}
