// Command datagen generates the synthetic evaluation datasets to CSV so
// they can be inspected or replayed (the role of the paper's on-disk
// datasets read by its Kafka producer).
//
// Usage:
//
//	datagen -preset kdd99 -records 100000 -out kdd99.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"diststream/internal/datagen"
	"diststream/internal/stream"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	preset := fs.String("preset", "kdd99", "dataset preset: kdd99, covtype, kdd98, embed128, embed384, or embed768")
	records := fs.Int("records", 0, "record count (0 = paper scale)")
	rate := fs.Float64("rate", 1000, "records per virtual second")
	seed := fs.Int64("seed", 42, "generation seed")
	out := fs.String("out", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var p datagen.Preset
	switch *preset {
	case "kdd99":
		p = datagen.KDD99Sim
	case "covtype":
		p = datagen.CovTypeSim
	case "kdd98":
		p = datagen.KDD98Sim
	case "embed128":
		p = datagen.EmbedSim128
	case "embed384":
		p = datagen.EmbedSim384
	case "embed768":
		p = datagen.EmbedSim768
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	recs, err := datagen.GeneratePreset(p, *records, *rate, *seed)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := stream.WriteCSV(w, recs); err != nil {
		return err
	}
	sum, err := datagen.Summarize(p.String(), recs)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d records (%d features, %d clusters, top share %.0f%%)\n",
		sum.Records, sum.Dim, sum.Clusters, 100*sum.Top3Share[0])
	return nil
}
