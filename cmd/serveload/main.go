// Command serveload drives concurrent closed-loop clients against a
// running `diststream serve` instance and reports throughput, latency
// percentiles and shed counts — the proof harness for the serving
// subsystem's "queries must not slow ingestion" claim.
//
// Clients are well-behaved: a 429 (shed) response makes the client back
// off for the server's Retry-After hint instead of hot-spinning.
//
// Usage:
//
//	serveload -addr http://127.0.0.1:8080 -clients 64 -duration 10s
//
// With -json the summary is printed as a single machine-readable line
//
//	SERVELOAD {"qps":..., "p50_ms":..., "p99_ms":..., "shed":...}
//
// which cmd/benchjson recognizes and embeds in the archived bench JSON,
// so the perf trajectory covers serving as well as ingest.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"diststream/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("serveload", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the serve instance")
	clients := fs.Int("clients", 64, "concurrent closed-loop clients")
	duration := fs.Duration("duration", 10*time.Second, "load duration")
	macroEvery := fs.Int("macro-every", 0, "every Nth request per client is a POST /v1/macro (0 = assign only)")
	macroAlgo := fs.String("macro-algo", "kmeans", "macro algorithm (kmeans or dbscan)")
	macroK := fs.Int("macro-k", 5, "macro kmeans cluster count")
	macroSeed := fs.Int64("macro-seed", 7, "macro kmeans seed")
	macroEps := fs.Float64("macro-eps", 1, "macro dbscan eps")
	macroMinPts := fs.Float64("macro-minpoints", 2, "macro dbscan min weighted neighborhood mass")
	macroVersion := fs.Uint64("macro-version", 0, "snapshot version to macro-cluster (0 = latest)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	seed := fs.Int64("seed", 1, "client point-selection seed")
	asJSON := fs.Bool("json", false, "print one SERVELOAD JSON summary line instead of the human report")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := serve.LoadConfig{
		BaseURL:    strings.TrimRight(*addr, "/"),
		Clients:    *clients,
		Duration:   *duration,
		MacroEvery: *macroEvery,
		Macro: serve.MacroRequest{
			Algorithm: *macroAlgo,
			Version:   *macroVersion,
			K:         *macroK,
			Seed:      *macroSeed,
			Eps:       *macroEps,
			MinPoints: *macroMinPts,
		},
		Timeout: *timeout,
		Seed:    *seed,
	}
	res, err := serve.RunLoad(cfg)
	if err != nil {
		return err
	}

	if *asJSON {
		blob, err := json.Marshal(res)
		if err != nil {
			return err
		}
		fmt.Printf("SERVELOAD %s\n", blob)
		return nil
	}
	fmt.Printf("clients:   %d for %.1fs\n", *clients, res.ElapsedSeconds)
	fmt.Printf("requests:  %d total, %d ok, %d shed (429), %d errors\n",
		res.Requests, res.OK, res.Shed, res.Errors)
	if res.MacroOK > 0 {
		fmt.Printf("macro:     %d ok, %d served from cache\n", res.MacroOK, res.MacroCached)
	}
	fmt.Printf("qps:       %.1f\n", res.QPS)
	fmt.Printf("latency:   p50 %.2fms  p90 %.2fms  p99 %.2fms\n",
		res.P50Millis, res.P90Millis, res.P99Millis)
	return nil
}
