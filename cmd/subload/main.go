// Command subload drives N concurrent subscribers against a running
// subscription hub (`diststream serve -subscribe-addr ...`) and reports
// the replication-path metrics: deltas vs snapshots, resume behavior,
// and the marginal network cost of keeping one replica current per
// published batch — the proof harness for the subscription subsystem's
// "fan-out must not slow ingestion" claim.
//
// Usage:
//
//	subload -addr 127.0.0.1:9090 -subscribers 256 -duration 10s
//
// With -drain the fleet runs the full wire protocol (cursor tracking,
// resume, shedding) without materializing local replicas, isolating the
// hub-side cost from the subscribers' apply CPU. With -json the summary
// is printed as a single machine-readable line
//
//	SUBLOAD {"subscribers":..., "deltas":..., "bytes_per_sub_per_batch":...}
//
// which cmd/benchjson recognizes and embeds in the archived bench JSON,
// so the perf trajectory covers replication fan-out as well as ingest
// and query serving.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"diststream/internal/harness"
	"diststream/internal/subscribe"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "subload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("subload", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "hub TCP address (diststream serve -subscribe-addr)")
	subs := fs.Int("subscribers", 64, "concurrent subscribers to run")
	duration := fs.Duration("duration", 10*time.Second, "measured run length after the fleet warms up")
	warm := fs.Duration("warm-timeout", 30*time.Second, "max wait for every subscriber to hold a first replica")
	drain := fs.Bool("drain", false, "run the protocol without materializing local replicas (isolates hub-side cost)")
	asJSON := fs.Bool("json", false, "print a single SUBLOAD {json} summary line")
	if err := fs.Parse(args); err != nil {
		return err
	}

	harness.RegisterAllWireTypes()
	algos, err := harness.NewAlgorithmRegistry()
	if err != nil {
		return err
	}
	res, err := subscribe.RunSubscribers(subscribe.LoadConfig{
		Addr:        *addr,
		Subscribers: *subs,
		Algos:       algos,
		Duration:    *duration,
		WarmTimeout: *warm,
		Drain:       *drain,
	})
	if err != nil {
		return err
	}

	if *asJSON {
		blob, err := json.Marshal(res)
		if err != nil {
			return err
		}
		fmt.Printf("SUBLOAD %s\n", blob)
		return nil
	}
	fmt.Printf("%d subscribers over %.1fs: versions %d..%d (%d spanned)\n",
		res.Subscribers, res.Seconds, res.MinVersion, res.MaxVersion, res.VersionsSpanned)
	fmt.Printf("  %d connects, %d deltas, %d snapshots, %d heartbeats, %d stale, %d apply errors\n",
		res.Connects, res.Deltas, res.Snapshots, res.Heartbeats, res.Stale, res.ApplyErrors)
	fmt.Printf("  %d bytes read, %.0f bytes/subscriber/batch\n", res.BytesRead, res.BytesPerSubPerBatch)
	return nil
}
