// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report on stdout, so benchmark runs can be
// archived and diffed across commits (see `make bench-json`, which
// writes BENCH_3.json).
//
// Each benchmark line
//
//	BenchmarkAssignOp-4   79   14546974 ns/op   281571 rec/s   370136 B/op   8208 allocs/op
//
// becomes one entry keyed by the benchmark name (GOMAXPROCS suffix
// stripped) holding the iteration count and every reported metric
// (ns/op, B/op, allocs/op, rec/s, and any custom b.ReportMetric units).
// Context lines (goos, goarch, cpu, pkg) are captured per package.
//
// Lines of the form
//
//	SERVELOAD {"qps":..., "p50_ms":..., "p99_ms":..., "shed":...}
//
// (the cmd/serveload -json summary) are collected under "serveload", so
// the archived bench JSON also tracks the serving-path trajectory (qps,
// latency percentiles, shed counts), not just ingest benchmarks.
// Likewise `SUBLOAD {json}` lines (from cmd/subload -json or the
// BenchmarkSubscribeFanout fixture) are collected under "subload",
// covering the replication fan-out path (deltas vs snapshots, bytes per
// subscriber per batch).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type benchResult struct {
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	Environment map[string]string      `json:"environment"`
	Benchmarks  map[string]benchResult `json:"benchmarks"`
	// ServeLoad holds cmd/serveload -json summaries found on stdin, in
	// input order.
	ServeLoad []json.RawMessage `json:"serveload,omitempty"`
	// SubLoad holds cmd/subload -json summaries found on stdin, in
	// input order.
	SubLoad []json.RawMessage `json:"subload,omitempty"`
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	rep := report{
		Environment: map[string]string{},
		Benchmarks:  map[string]benchResult{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			rep.Environment[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
		case strings.HasPrefix(line, "SERVELOAD "):
			blob := strings.TrimSpace(strings.TrimPrefix(line, "SERVELOAD "))
			if json.Valid([]byte(blob)) {
				rep.ServeLoad = append(rep.ServeLoad, json.RawMessage(blob))
			}
		case strings.HasPrefix(line, "SUBLOAD "):
			blob := strings.TrimSpace(strings.TrimPrefix(line, "SUBLOAD "))
			if json.Valid([]byte(blob)) {
				rep.SubLoad = append(rep.SubLoad, json.RawMessage(blob))
			}
		case strings.HasPrefix(line, "Benchmark"):
			name, res, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			res.Package = pkg
			if _, dup := rep.Benchmarks[name]; dup {
				name = pkg + "." + name
			}
			rep.Benchmarks[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read stdin:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one benchmark result line: a name, an iteration
// count, then (value, unit) pairs.
func parseBenchLine(line string) (string, benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", benchResult{}, false
	}
	name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", benchResult{}, false
	}
	res := benchResult{Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", benchResult{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return name, res, true
}
