package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"diststream"
	"diststream/internal/datagen"
	"diststream/internal/harness"
	"diststream/internal/stream"
)

// errSimulatedCrash is the sentinel the resume demo's OnBatch hook returns
// to model a driver crash at a batch boundary.
var errSimulatedCrash = errors.New("simulated driver crash")

// runResume demonstrates the checkpoint/recovery subsystem: it runs the
// same CluStream workload three times — once uninterrupted (the
// reference), once "crashing" the driver partway through while
// checkpointing, and once resuming from the newest checkpoint — and
// verifies that the resumed run finishes with a model and statistics
// identical to the reference. A mismatch is returned as an error (non-zero
// exit), making this the crash-equivalence acceptance check.
func runResume(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("resume", flag.ContinueOnError)
	records := fs.Int("records", 20000, "records in the generated dataset")
	seed := fs.Int64("seed", 42, "generation seed")
	parallelism := fs.Int("parallelism", 4, "worker goroutines")
	killBatch := fs.Int("kill-batch", 4, "batch after which the driver crashes")
	every := fs.Int("every", 2, "checkpoint cadence in batches")
	dir := fs.String("dir", "", "checkpoint directory (default: a fresh temp dir)")
	scheduleFlag := fs.String("schedule", "bsp", "execution schedule (bsp or pipelined)")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *killBatch < 1 {
		return fmt.Errorf("resume: -kill-batch %d must be at least 1", *killBatch)
	}
	schedule := diststream.ScheduleKind(*scheduleFlag)
	ds, err := harness.LoadDataset(datagen.KDD99Sim, *records, 100, *seed)
	if err != nil {
		return err
	}

	root := *dir
	if root == "" {
		root, err = os.MkdirTemp("", "diststream-resume-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(root)
	}
	refDir := filepath.Join(root, "reference")
	runDir := filepath.Join(root, "run")
	for _, d := range []string{refDir, runDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// The reference checkpoints too, so its Checkpoints counter is
	// directly comparable with the resumed run's.
	reference, err := resumeRun(ctx, ds, *seed, *parallelism, schedule, refDir, *every, -1, false)
	if err != nil {
		return fmt.Errorf("resume: reference run: %w", err)
	}
	crashed, err := resumeRun(ctx, ds, *seed, *parallelism, schedule, runDir, *every, *killBatch, false)
	if !errors.Is(err, errSimulatedCrash) {
		return fmt.Errorf("resume: crashed run ended with %v, want the simulated crash", err)
	}
	resumed, err := resumeRun(ctx, ds, *seed, *parallelism, schedule, runDir, *every, -1, true)
	if err != nil {
		return fmt.Errorf("resume: resumed run: %w", err)
	}

	fmt.Fprintf(w, "checkpoint/resume (%s, clustream, p=%d, executor local, schedule %s, checkpoint every %d batches, crash after batch %d)\n",
		ds.Name, *parallelism, schedule, *every, *killBatch)
	fmt.Fprintf(w, "  %-10s %8s %8s %12s %14s %14s\n", "run", "batches", "records", "checkpoints", "microclusters", "model weight")
	for _, row := range []struct {
		name string
		r    resumeResult
	}{{"reference", reference}, {"crashed", crashed}, {"resumed", resumed}} {
		fmt.Fprintf(w, "  %-10s %8d %8d %12d %14d %14.1f\n",
			row.name, row.r.stats.Batches, row.r.stats.Records, row.r.stats.Checkpoints,
			row.r.modelLen, row.r.modelWeight)
	}

	switch {
	case resumed.modelLen != reference.modelLen || resumed.modelWeight != reference.modelWeight:
		return fmt.Errorf("resume: models diverged: reference %d MCs / %.3f weight, resumed %d MCs / %.3f weight",
			reference.modelLen, reference.modelWeight, resumed.modelLen, resumed.modelWeight)
	case resumed.stats.Records != reference.stats.Records || resumed.stats.Batches != reference.stats.Batches:
		return fmt.Errorf("resume: statistics diverged: reference %d records / %d batches, resumed %d / %d",
			reference.stats.Records, reference.stats.Batches, resumed.stats.Records, resumed.stats.Batches)
	case resumed.stats.Checkpoints != reference.stats.Checkpoints:
		return fmt.Errorf("resume: checkpoint counters diverged: reference %d, resumed %d",
			reference.stats.Checkpoints, resumed.stats.Checkpoints)
	}
	fmt.Fprintln(w, "  resumed model identical to reference: crash-equivalence holds")
	return nil
}

type resumeResult struct {
	stats       diststream.RunStats
	modelLen    int
	modelWeight float64
}

// resumeRun executes one checkpointed CluStream run over the in-process
// executor. killBatch > 0 makes OnBatch fail with errSimulatedCrash after
// that many batches; doResume loads the newest checkpoint in dir before
// running (the source replays the stream from the beginning, as the
// resume contract requires).
func resumeRun(ctx context.Context, ds harness.Dataset, seed int64, p int, schedule diststream.ScheduleKind, dir string, every, killBatch int, doResume bool) (resumeResult, error) {
	sys, err := diststream.New(diststream.Options{
		Parallelism: p,
		Execution:   diststream.ExecutionOptions{Schedule: schedule},
	})
	if err != nil {
		return resumeResult{}, err
	}
	defer sys.Close()
	algo, err := harness.NewAlgorithm("clustream", ds, seed)
	if err != nil {
		return resumeResult{}, err
	}
	batches := 0
	pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{
		BatchSeconds: 2,
		InitRecords:  500,
		Checkpoint:   &diststream.CheckpointConfig{Dir: dir, EveryNBatches: every},
		OnBatch: func(stream.Batch, *diststream.Model) error {
			batches++
			if killBatch > 0 && batches == killBatch {
				return errSimulatedCrash
			}
			return nil
		},
	})
	if err != nil {
		return resumeResult{}, err
	}
	if doResume {
		if err := pl.ResumeFrom(dir); err != nil {
			return resumeResult{}, err
		}
	}
	stats, err := pl.RunContext(ctx, stream.NewSliceSource(ds.Records))
	res := resumeResult{
		stats:       stats,
		modelLen:    pl.Model().Len(),
		modelWeight: pl.Model().TotalWeight(),
	}
	if err != nil {
		return res, err
	}
	return res, nil
}
