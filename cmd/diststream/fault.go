package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"diststream/internal/core"
	"diststream/internal/datagen"
	"diststream/internal/harness"
	"diststream/internal/mbsp"
	"diststream/internal/mbsp/rpcexec"
	"diststream/internal/mbsp/sched"
	"diststream/internal/stream"
	"diststream/internal/vclock"
)

// runFault demonstrates the fault-tolerance layer on a real TCP cluster:
// it runs the same CluStream workload twice over in-process TCP workers —
// once untouched, once killing a worker partway through — and shows that
// the injured run completes on the survivors with an identical model,
// with the re-dispatch visible in the retry counters.
func runFault(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("fault", flag.ContinueOnError)
	var o options
	o.bind(fs)
	workers := fs.Int("workers", 3, "TCP workers in the cluster")
	killBatch := fs.Int("kill-batch", 3, "batch after which one worker is killed")
	scheduleFlag := fs.String("schedule", "bsp", "execution schedule (bsp or pipelined)")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall run deadline (RunContext)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 2 {
		return fmt.Errorf("fault: need at least 2 workers to survive a kill, got %d", *workers)
	}
	schedule, err := sched.New(sched.Kind(*scheduleFlag))
	if err != nil {
		return fmt.Errorf("fault: %w", err)
	}
	records := o.records
	if records <= 0 {
		records = 30000
	}
	ds, err := harness.LoadDataset(datagen.KDD99Sim, records, 100, o.seed)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	clean, err := faultRun(ctx, ds, o.seed, *workers, -1, schedule)
	if err != nil {
		return fmt.Errorf("fault: clean run: %w", err)
	}
	injured, err := faultRun(ctx, ds, o.seed, *workers, *killBatch, schedule)
	if err != nil {
		return fmt.Errorf("fault: injured run: %w", err)
	}

	fmt.Fprintf(w, "fault tolerance (%s, clustream, %d TCP workers, executor tcp, schedule %s, kill one after batch %d)\n",
		ds.Name, *workers, schedule.Kind(), *killBatch)
	fmt.Fprintf(w, "  %-12s %10s %10s %10s %6s %12s %14s\n", "run", "batches", "records", "retries", "lost", "microclusters", "model weight")
	for _, row := range []struct {
		name string
		r    faultResult
	}{{"clean", clean}, {"injured", injured}} {
		fmt.Fprintf(w, "  %-12s %10d %10d %10d %6d %12d %14.1f\n",
			row.name, row.r.stats.Batches, row.r.stats.Records, row.r.stats.TaskRetries,
			row.r.stats.LostWorkers, row.r.modelLen, row.r.modelWeight)
	}
	if injured.modelLen != clean.modelLen || injured.modelWeight != clean.modelWeight {
		// A divergent model means the order-aware guarantee broke under
		// re-dispatch — fail loudly (non-zero exit) so CI catches it.
		return fmt.Errorf("fault: models diverged under re-dispatch: clean %d MCs / %.3f weight, injured %d MCs / %.3f weight",
			clean.modelLen, clean.modelWeight, injured.modelLen, injured.modelWeight)
	}
	fmt.Fprintln(w, "  models identical: order-aware determinism preserved under re-dispatch")
	return nil
}

type faultResult struct {
	stats       core.RunStats
	modelLen    int
	modelWeight float64
}

// faultRun executes one CluStream run over a fresh in-process TCP
// cluster under the given schedule, killing one worker after killBatch
// batches (-1 = never).
func faultRun(ctx context.Context, ds harness.Dataset, seed int64, p, killBatch int, schedule sched.Schedule) (faultResult, error) {
	harness.RegisterAllWireTypes()
	algos, err := harness.NewAlgorithmRegistry()
	if err != nil {
		return faultResult{}, err
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		return faultResult{}, err
	}
	cluster, addrs, err := rpcexec.StartLocalCluster(p, reg)
	if err != nil {
		return faultResult{}, err
	}
	defer func() {
		for _, wk := range cluster {
			_ = wk.Close()
		}
	}()
	exec, err := rpcexec.DialConfig(addrs, rpcexec.Config{
		CallTimeout: 10 * time.Second,
		MaxRetries:  1,
		Backoff:     20 * time.Millisecond,
	})
	if err != nil {
		return faultResult{}, err
	}
	defer exec.Close()
	eng, err := mbsp.NewEngine(exec)
	if err != nil {
		return faultResult{}, err
	}
	algo, err := harness.NewAlgorithm("clustream", ds, seed)
	if err != nil {
		return faultResult{}, err
	}
	batches := 0
	pl, err := core.NewPipeline(core.Config{
		Algorithm:     algo,
		Engine:        eng,
		Schedule:      schedule,
		BatchInterval: vclock.Duration(2),
		InitRecords:   500,
		OnBatch: func(stream.Batch, *core.Model) error {
			batches++
			if batches == killBatch {
				// Crash the worker on its next task: the listener and every
				// connection go away mid-stage, redials fail from then on,
				// and the driver re-dispatches onto the survivors (the
				// retry shows up in RunStats.TaskRetries).
				cluster[p-1].SetFault(func(string, int) (rpcexec.Fault, time.Duration) {
					return rpcexec.FaultCrash, 0
				})
			}
			return nil
		},
	})
	if err != nil {
		return faultResult{}, err
	}
	stats, err := pl.RunContext(ctx, stream.NewSliceSource(ds.Records))
	if err != nil {
		return faultResult{}, err
	}
	return faultResult{
		stats:       stats,
		modelLen:    pl.Model().Len(),
		modelWeight: pl.Model().TotalWeight(),
	}, nil
}
