package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"diststream/internal/backoff"
	"diststream/internal/core"
	"diststream/internal/datagen"
	"diststream/internal/harness"
	"diststream/internal/mbsp"
	"diststream/internal/mbsp/rpcexec"
	"diststream/internal/mbsp/sched"
	"diststream/internal/membership"
	"diststream/internal/stream"
	"diststream/internal/supervise"
	"diststream/internal/vclock"
)

// runChaos exercises the elastic-membership stack end to end: a
// supervised cluster of real worker subprocesses serves a pipeline
// while the driver SIGKILLs one worker every few batches. The
// supervisor restarts each victim, the restarted process announces
// itself to the membership registry, and the driver readmits it into
// the vacated dispatch slot (full broadcast catch-up) at a batch
// boundary. The run must finish with at least as many joins as kills
// and a model byte-identical to a clean fixed-membership BSP run —
// any divergence or non-convergence exits non-zero so CI catches it.
func runChaos(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	workers := fs.Int("workers", 3, "supervised TCP worker subprocesses")
	records := fs.Int("records", 6000, "records in the generated workload")
	seed := fs.Int64("seed", 42, "generation seed")
	kills := fs.Int("kills", 2, "SIGKILLs delivered over the run")
	killEvery := fs.Int("kill-every", 3, "batches between kills")
	schedules := fs.String("schedules", "bsp,pipelined", "comma-separated execution schedules to run under churn")
	algosFlag := fs.String("algos", "clustream,denstream", "comma-separated algorithms")
	timeout := fs.Duration("timeout", 4*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 2 {
		return fmt.Errorf("chaos: need at least 2 workers to survive a kill, got %d", *workers)
	}
	if *killEvery < 1 {
		return fmt.Errorf("chaos: -kill-every must be >= 1")
	}
	ds, err := harness.LoadDataset(datagen.KDD99Sim, *records, 100, *seed)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	fmt.Fprintf(w, "chaos (%s, %d workers, %d kills every %d batches, supervised subprocess cluster)\n",
		ds.Name, *workers, *kills, *killEvery)
	fmt.Fprintf(w, "  %-10s %-10s %8s %6s %6s %6s %8s %8s  %s\n",
		"algo", "schedule", "batches", "kills", "joins", "lost", "retries", "restarts", "model")
	var failures []string
	for _, algoName := range strings.Split(*algosFlag, ",") {
		algoName = strings.TrimSpace(algoName)
		// The determinism yardstick: a clean, fixed-membership BSP run.
		ref, err := chaosReference(ctx, ds, *seed, algoName, *workers)
		if err != nil {
			return fmt.Errorf("chaos: reference run (%s): %w", algoName, err)
		}
		for _, schedName := range strings.Split(*schedules, ",") {
			schedName = strings.TrimSpace(schedName)
			schedule, err := sched.New(sched.Kind(schedName))
			if err != nil {
				return fmt.Errorf("chaos: %w", err)
			}
			res, err := chaosRun(ctx, ds, *seed, algoName, *workers, *kills, *killEvery, schedule)
			if err != nil {
				return fmt.Errorf("chaos: churn run (%s, %s): %w", algoName, schedName, err)
			}
			verdict := "identical"
			if !bytes.Equal(ref, res.state) {
				verdict = "DIVERGED"
				failures = append(failures, fmt.Sprintf("%s/%s: model diverged from clean run (%d vs %d state bytes)",
					algoName, schedName, len(res.state), len(ref)))
			}
			if res.stats.WorkerJoins < res.killsDone {
				failures = append(failures, fmt.Sprintf("%s/%s: only %d joins for %d kills — self-healing did not converge",
					algoName, schedName, res.stats.WorkerJoins, res.killsDone))
			}
			fmt.Fprintf(w, "  %-10s %-10s %8d %6d %6d %6d %8d %8d  %s\n",
				algoName, schedName, res.stats.Batches, res.killsDone, res.stats.WorkerJoins,
				res.stats.WorkerDepartures, res.stats.TaskRetries, res.restarts, verdict)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("chaos: %s", strings.Join(failures, "; "))
	}
	fmt.Fprintln(w, "  all runs byte-identical to the clean fixed-membership run; joins >= kills")
	return nil
}

// chaosReference runs the workload once on an in-process TCP cluster
// with fixed membership under the BSP schedule and returns the encoded
// model state.
func chaosReference(ctx context.Context, ds harness.Dataset, seed int64, algoName string, p int) ([]byte, error) {
	reg, err := chaosOpRegistry()
	if err != nil {
		return nil, err
	}
	cluster, addrs, err := rpcexec.StartLocalCluster(p, reg)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, wk := range cluster {
			_ = wk.Close()
		}
	}()
	ex, err := rpcexec.DialConfig(addrs, rpcexec.Config{
		CallTimeout: 10 * time.Second,
		MaxRetries:  2,
		Backoff:     20 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer ex.Close()
	bsp, err := sched.New(sched.BSP)
	if err != nil {
		return nil, err
	}
	pl, err := chaosPipeline(ds, seed, algoName, ex, bsp, nil)
	if err != nil {
		return nil, err
	}
	if _, err := pl.RunContext(ctx, stream.NewSliceSource(ds.Records)); err != nil {
		return nil, err
	}
	return pl.Model().EncodeState()
}

type chaosResult struct {
	stats     core.RunStats
	state     []byte
	killsDone int
	restarts  int
}

// chaosRun runs the workload over a supervised cluster of worker
// subprocesses, SIGKILLing one every killEvery batches up to kills
// times, and returns the final model state plus churn accounting.
func chaosRun(ctx context.Context, ds harness.Dataset, seed int64, algoName string, p, kills, killEvery int, schedule sched.Schedule) (chaosResult, error) {
	members, err := membership.New(membership.Config{
		ListenAddr:    "127.0.0.1:0",
		ProbeInterval: 150 * time.Millisecond,
	})
	if err != nil {
		return chaosResult{}, err
	}
	defer members.Close()

	self, err := os.Executable()
	if err != nil {
		return chaosResult{}, err
	}
	sup := supervise.New()
	defer sup.Close()
	for i := 0; i < p; i++ {
		id := i
		err := sup.Start(supervise.Spec{
			Name: "w" + strconv.Itoa(id),
			Command: func() *exec.Cmd {
				return exec.Command(self, "_worker",
					"-listen", "127.0.0.1:0",
					"-id", strconv.Itoa(id),
					"-announce", members.Addr())
			},
			// Every deliberate SIGKILL spends restart budget; leave room
			// for all planned kills to land on one unlucky worker.
			MaxRestarts: kills + 3,
			Window:      10 * time.Second,
		})
		if err != nil {
			return chaosResult{}, err
		}
	}
	addrs, err := members.WaitForMembers(ctx, p)
	if err != nil {
		return chaosResult{}, fmt.Errorf("waiting for %d workers to announce: %w", p, err)
	}
	ex, err := rpcexec.DialConfig(addrs, rpcexec.Config{
		CallTimeout: 10 * time.Second,
		MaxRetries:  2,
		Backoff:     20 * time.Millisecond,
		Membership:  members,
		JoinBarrier: 3 * time.Second,
	})
	if err != nil {
		return chaosResult{}, err
	}
	defer ex.Close()

	batches, killsDone := 0, 0
	pl, err := chaosPipeline(ds, seed, algoName, ex, schedule, func(stream.Batch, *core.Model) error {
		batches++
		if killsDone >= kills || batches%killEvery != 0 {
			return nil
		}
		target := "w" + strconv.Itoa(killsDone%p)
		if err := sup.Signal(target, syscall.SIGKILL); err != nil {
			return fmt.Errorf("kill %s: %w", target, err)
		}
		killsDone++
		// Block until the supervisor's replacement has announced itself,
		// so every kill is guaranteed a matching join candidate before
		// the run can end.
		wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		if _, err := members.WaitForCandidate(wctx); err != nil {
			return fmt.Errorf("waiting for %s's replacement to announce: %w", target, err)
		}
		return nil
	})
	if err != nil {
		return chaosResult{}, err
	}
	stats, err := pl.RunContext(ctx, stream.NewSliceSource(ds.Records))
	if err != nil {
		return chaosResult{}, err
	}
	state, err := pl.Model().EncodeState()
	if err != nil {
		return chaosResult{}, err
	}
	restarts := 0
	for i := 0; i < p; i++ {
		restarts += sup.Restarts("w" + strconv.Itoa(i))
	}
	return chaosResult{stats: stats, state: state, killsDone: killsDone, restarts: restarts}, nil
}

func chaosOpRegistry() (*mbsp.Registry, error) {
	harness.RegisterAllWireTypes()
	algos, err := harness.NewAlgorithmRegistry()
	if err != nil {
		return nil, err
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		return nil, err
	}
	return reg, nil
}

func chaosPipeline(ds harness.Dataset, seed int64, algoName string, ex mbsp.Executor, schedule sched.Schedule, onBatch func(stream.Batch, *core.Model) error) (*core.Pipeline, error) {
	eng, err := mbsp.NewEngine(ex)
	if err != nil {
		return nil, err
	}
	algo, err := harness.NewAlgorithm(algoName, ds, seed)
	if err != nil {
		return nil, err
	}
	return core.NewPipeline(core.Config{
		Algorithm:     algo,
		Engine:        eng,
		Schedule:      schedule,
		BatchInterval: vclock.Duration(2),
		InitRecords:   500,
		OnBatch:       onBatch,
	})
}

// runChaosWorker is the hidden `_worker` mode: the chaos driver
// re-execs its own binary into this to get real worker subprocesses
// without needing a second build. It mirrors cmd/mbsp-worker, plus the
// membership handshake: announce on start, goodbye on clean shutdown.
func runChaosWorker(args []string) error {
	fs := flag.NewFlagSet("_worker", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "TCP listen address")
	id := fs.Int("id", 0, "worker id reported in task metrics")
	announce := fs.String("announce", "", "driver membership address to announce to")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, err := chaosOpRegistry()
	if err != nil {
		return err
	}
	worker, err := rpcexec.NewWorker(*id, *listen, reg)
	if err != nil {
		return err
	}
	if *announce != "" {
		if err := announceWithRetry(*announce, worker.Addr()); err != nil {
			_ = worker.Close()
			return err
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	if *announce != "" {
		gctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = membership.Goodbye(gctx, *announce, worker.Addr())
		cancel()
	}
	return worker.Close()
}

// announceWithRetry delivers the membership hello, retrying with
// jittered exponential backoff in case the worker came up a beat
// before the driver's registry listener.
func announceWithRetry(driver, workerAddr string) error {
	pol := backoff.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second}
	var err error
	for attempt := 1; attempt <= 6; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err = membership.Announce(ctx, driver, workerAddr)
		cancel()
		if err == nil {
			return nil
		}
		time.Sleep(pol.Delay(attempt))
	}
	return fmt.Errorf("announce to %s: %w", driver, err)
}
