package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"diststream/internal/core"
	"diststream/internal/datagen"
	"diststream/internal/harness"
	"diststream/internal/mbsp"
	"diststream/internal/mbsp/rpcexec"
	"diststream/internal/mbsp/sched"
	"diststream/internal/stream"
	"diststream/internal/vclock"
)

// runBench A/B-measures end-to-end batch latency of the execution
// schedules over a real in-process TCP cluster: the same workload runs
// under each requested schedule and the table reports per-batch latency
// and throughput side by side. When both schedules run, the final models
// are compared — a divergence is an error, since the pipelined schedule
// guarantees bit-identical results.
func runBench(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	records := fs.Int("records", 30000, "records in the generated dataset")
	seed := fs.Int64("seed", 42, "generation seed")
	workers := fs.Int("workers", 4, "TCP workers in the cluster")
	algoName := fs.String("algo", "clustream", "algorithm to run")
	schedule := fs.String("schedule", "both", "schedule to benchmark: bsp, pipelined or both")
	delta := fs.Bool("delta", true, "ship model broadcasts as deltas")
	shards := fs.Int("global-shards", 0, "shard the driver-side global update across this many shards (0 = serial)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the benchmarked runs to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (post-run) to this file")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("bench: cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("bench: cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(w, "bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(w, "bench: memprofile: %v\n", err)
			}
		}()
	}
	var kinds []sched.Kind
	switch *schedule {
	case "both":
		kinds = sched.Kinds()
	default:
		if _, err := sched.New(sched.Kind(*schedule)); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		kinds = []sched.Kind{sched.Kind(*schedule)}
	}
	n := *records
	if n <= 0 {
		n = 30000
	}
	ds, err := harness.LoadDataset(datagen.KDD99Sim, n, 100, *seed)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	fmt.Fprintf(w, "schedule benchmark (%s, %s, %d TCP workers, delta broadcast %v, global shards %d)\n",
		ds.Name, *algoName, *workers, *delta, *shards)
	fmt.Fprintf(w, "  %-10s %-8s %8s %12s %12s %10s %10s %10s %10s %9s %9s %9s %14s\n",
		"schedule", "executor", "batches", "batch ms", "records/s", "assign ms", "shuffle ms", "local ms", "global ms", "sort ms", "apply ms", "fold ms", "model weight")
	results := make(map[sched.Kind]benchResult, len(kinds))
	for _, kind := range kinds {
		res, err := benchRun(ctx, ds, *algoName, *seed, *workers, kind, *delta, *shards)
		if err != nil {
			return fmt.Errorf("bench: %s run: %w", kind, err)
		}
		results[kind] = res
		batchMS := 0.0
		perBatch := func(d time.Duration) float64 { return 0 }
		if res.stats.Batches > 0 {
			batchMS = res.stats.TotalWall.Seconds() * 1e3 / float64(res.stats.Batches)
			perBatch = func(d time.Duration) float64 { return d.Seconds() * 1e3 / float64(res.stats.Batches) }
		}
		fmt.Fprintf(w, "  %-10s %-8s %8d %12.2f %12.0f %10.2f %10.2f %10.2f %10.2f %9.2f %9.2f %9.2f %14.1f\n",
			kind, "tcp", res.stats.Batches, batchMS, res.stats.Throughput(),
			perBatch(res.stats.Assign.Wall), perBatch(res.stats.Shuffle.Wall),
			perBatch(res.stats.LocalUpdate.Wall), perBatch(res.stats.GlobalUpdate.Wall),
			perBatch(res.stats.GlobalSort.Wall), perBatch(res.stats.GlobalApply.Wall),
			perBatch(res.stats.GlobalFold.Wall), res.modelWeight)
		if *shards >= 1 && res.stats.ShardedGlobalBatches != res.stats.Batches {
			fmt.Fprintf(w, "  (sharded global update engaged on %d of %d batches — algorithm lacks the capability on the rest)\n",
				res.stats.ShardedGlobalBatches, res.stats.Batches)
		}
	}
	bsp, hasBSP := results[sched.BSP]
	pip, hasPip := results[sched.Pipelined]
	if hasBSP && hasPip {
		if bsp.modelLen != pip.modelLen || bsp.modelWeight != pip.modelWeight {
			return fmt.Errorf("bench: models diverged across schedules: bsp %d MCs / %.3f weight, pipelined %d MCs / %.3f weight",
				bsp.modelLen, bsp.modelWeight, pip.modelLen, pip.modelWeight)
		}
		if pip.stats.TotalWall > 0 {
			fmt.Fprintf(w, "  models identical; pipelined speedup %.2fx\n",
				bsp.stats.TotalWall.Seconds()/pip.stats.TotalWall.Seconds())
		}
	}
	return nil
}

type benchResult struct {
	stats       core.RunStats
	modelLen    int
	modelWeight float64
}

// benchRun executes one run over a fresh in-process TCP cluster under
// the given schedule.
func benchRun(ctx context.Context, ds harness.Dataset, algoName string, seed int64, p int, kind sched.Kind, delta bool, shards int) (benchResult, error) {
	harness.RegisterAllWireTypes()
	algos, err := harness.NewAlgorithmRegistry()
	if err != nil {
		return benchResult{}, err
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		return benchResult{}, err
	}
	cluster, addrs, err := rpcexec.StartLocalCluster(p, reg)
	if err != nil {
		return benchResult{}, err
	}
	defer func() {
		for _, wk := range cluster {
			_ = wk.Close()
		}
	}()
	exec, err := rpcexec.DialConfig(addrs, rpcexec.Config{DeltaBroadcast: delta})
	if err != nil {
		return benchResult{}, err
	}
	defer exec.Close()
	eng, err := mbsp.NewEngine(exec)
	if err != nil {
		return benchResult{}, err
	}
	schedule, err := sched.New(kind)
	if err != nil {
		return benchResult{}, err
	}
	algo, err := harness.NewAlgorithm(algoName, ds, seed)
	if err != nil {
		return benchResult{}, err
	}
	pl, err := core.NewPipeline(core.Config{
		Algorithm:     algo,
		Engine:        eng,
		Schedule:      schedule,
		BatchInterval: vclock.Duration(2),
		InitRecords:   500,
		GlobalShards:  shards,
	})
	if err != nil {
		return benchResult{}, err
	}
	stats, err := pl.RunContext(ctx, stream.NewSliceSource(ds.Records))
	if err != nil {
		return benchResult{}, err
	}
	return benchResult{
		stats:       stats,
		modelLen:    pl.Model().Len(),
		modelWeight: pl.Model().TotalWeight(),
	}, nil
}
