package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"diststream/internal/core"
	"diststream/internal/datagen"
	"diststream/internal/harness"
	"diststream/internal/serve"
	"diststream/internal/stream"
	"diststream/internal/subscribe"
	"diststream/internal/vclock"
)

// serveOptions configures the `diststream serve` subcommand: a live
// ingesting pipeline plus the query-serving HTTP API on one process.
type serveOptions struct {
	addr        string
	dataset     string
	algo        string
	records     int
	rate        float64
	wallRate    float64
	batch       float64
	parallelism int
	seed        int64
	loop        int
	buffer      int
	drop        bool
	keep        int
	maxInFlight int
	maxQueue    int
	maxQPS      float64
	queueWait   time.Duration
	retryAfter  time.Duration

	subscribeAddr   string
	subscribeEgress int64
	subscribeLag    int
	publishInterval time.Duration
}

func runServe(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var o serveOptions
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "HTTP listen address")
	fs.StringVar(&o.dataset, "dataset", "kdd99", "dataset preset (kdd99, covtype, kdd98)")
	fs.StringVar(&o.algo, "algo", "clustream", "stream clustering algorithm")
	fs.IntVar(&o.records, "records", 30000, "records per pass over the generated dataset")
	fs.Float64Var(&o.rate, "rate", 1000, "virtual stream rate (records per virtual second)")
	fs.Float64Var(&o.wallRate, "wall-rate", 0, "wall-clock producer pacing in records/sec (0 = ingest flat out)")
	fs.Float64Var(&o.batch, "batch", 10, "mini-batch interval in virtual seconds")
	fs.IntVar(&o.parallelism, "parallelism", 2, "pipeline parallelism degree")
	fs.Int64Var(&o.seed, "seed", 42, "dataset generation seed")
	fs.IntVar(&o.loop, "loop", 1, "passes over the dataset (0 = loop until interrupted)")
	fs.IntVar(&o.buffer, "buffer", 4096, "ingest producer buffer capacity (records)")
	fs.BoolVar(&o.drop, "drop", false, "drop records when the ingest buffer is full instead of blocking the producer")
	fs.IntVar(&o.keep, "keep", serve.DefaultKeepVersions, "model snapshot versions retained for time-travel queries")
	fs.IntVar(&o.maxInFlight, "max-inflight", 8, "admission: max concurrently executing queries")
	fs.IntVar(&o.maxQueue, "max-queue", 16, "admission: max queries waiting for a slot")
	fs.Float64Var(&o.maxQPS, "max-qps", 0, "admission: max admitted queries per second (0 = unlimited); cap this when queries share cores with ingest")
	fs.DurationVar(&o.queueWait, "queue-wait", 100*time.Millisecond, "admission: max time a query waits before being shed")
	fs.DurationVar(&o.retryAfter, "retry-after", time.Second, "Retry-After hint attached to shed (429) responses")
	fs.StringVar(&o.subscribeAddr, "subscribe-addr", "", "TCP listen address for streaming model subscriptions (empty = off)")
	fs.Int64Var(&o.subscribeEgress, "subscribe-egress", 0, "aggregate subscription fan-out budget in bytes/sec (0 = unlimited); cap this when subscribers share a NIC or cores with ingest")
	fs.IntVar(&o.subscribeLag, "subscribe-max-lag", 0, "retained deltas a subscriber may need to replay before it is shed to a snapshot resync (0 = retention depth)")
	fs.DurationVar(&o.publishInterval, "publish-interval", 0, "minimum wall time between model publications (0 = publish every batch); pace this when a saturated ingest loop would publish hundreds of versions per second")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var preset datagen.Preset
	switch o.dataset {
	case "kdd99":
		preset = datagen.KDD99Sim
	case "covtype":
		preset = datagen.CovTypeSim
	case "kdd98":
		preset = datagen.KDD98Sim
	default:
		return fmt.Errorf("unknown dataset %q", o.dataset)
	}

	fmt.Fprintf(w, "generating %s (%d records)...\n", preset, o.records)
	ds, err := harness.LoadDataset(preset, o.records, o.rate, o.seed)
	if err != nil {
		return err
	}
	algo, err := harness.NewAlgorithm(o.algo, ds, o.seed)
	if err != nil {
		return err
	}
	engine, err := harness.NewEngine(o.parallelism, nil)
	if err != nil {
		return err
	}
	defer engine.Close()

	// The ingest source: the dataset repeated -loop times (a large pass
	// count stands in for "forever"), behind a bounded, counter-exporting
	// buffer so /metrics can report producer lag and drops.
	passes := o.loop
	if passes <= 0 {
		passes = 1 << 20
	}
	repeat, err := stream.NewRepeatSource(ds.Records, passes)
	if err != nil {
		return err
	}
	buffered := stream.NewBuffered(repeat, stream.BufferedConfig{
		Capacity:     o.buffer,
		WallRate:     o.wallRate,
		DropWhenFull: o.drop,
	})
	defer buffered.Close()

	registry := serve.NewRegistry(o.keep)

	// With -subscribe-addr the publish hook routes through the hub, which
	// chains the registry publication with delta fan-out — HTTP queries
	// and subscribers see the same version numbers.
	onPublish := registry.Hook()
	var hub *subscribe.Hub
	var subLn net.Listener
	if o.subscribeAddr != "" {
		harness.RegisterAllWireTypes()
		algos, err := harness.NewAlgorithmRegistry()
		if err != nil {
			return err
		}
		hub, err = subscribe.NewHub(subscribe.HubConfig{
			Registry:          registry,
			Algos:             algos,
			EgressBytesPerSec: o.subscribeEgress,
			MaxLag:            o.subscribeLag,
		})
		if err != nil {
			return err
		}
		onPublish = hub.Hook()
		subLn, err = net.Listen("tcp", o.subscribeAddr)
		if err != nil {
			return err
		}
		go hub.Serve(subLn)
		fmt.Fprintf(w, "subscriptions on %s (length-prefixed frames, cursor resume)\n", subLn.Addr())
	}

	pipeline, err := core.NewPipeline(core.Config{
		Algorithm:          algo,
		Engine:             engine,
		BatchInterval:      vclock.Duration(o.batch),
		OnPublish:          onPublish,
		PublishMinInterval: o.publishInterval,
	})
	if err != nil {
		return err
	}

	var extraMetrics func(io.Writer)
	if hub != nil {
		extraMetrics = hub.WriteMetrics
	}
	server, err := serve.NewServer(serve.Config{
		Registry:     registry,
		ExtraMetrics: extraMetrics,
		Admission: serve.LimiterConfig{
			MaxInFlight: o.maxInFlight,
			MaxQueue:    o.maxQueue,
			MaxRate:     o.maxQPS,
			QueueWait:   o.queueWait,
			RetryAfter:  o.retryAfter,
		},
		IngestStats: func() serve.IngestStats {
			st := buffered.Stats()
			return serve.IngestStats{
				ProducerProduced: st.Produced,
				ProducerDropped:  st.Dropped,
				ProducerLag:      st.Queued,
			}
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: server.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(w, "serving on http://%s (assign/clusters/macro under /v1, probes at /healthz /readyz, metrics at /metrics)\n", ln.Addr())

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	ingestDone := make(chan struct{})
	var ingestStats core.RunStats
	var ingestErr error
	go func() {
		defer close(ingestDone)
		ingestStats, ingestErr = pipeline.RunContext(ctx, buffered)
	}()

	// Serve until interrupted; if the stream drains first, keep serving
	// the final model.
	select {
	case <-ctx.Done():
	case <-ingestDone:
		if ingestErr != nil && !errors.Is(ingestErr, context.Canceled) {
			fmt.Fprintf(w, "ingest error: %v\n", ingestErr)
		} else {
			fmt.Fprintf(w, "ingest drained: %d records in %d batches (%.0f rec/s); still serving\n",
				ingestStats.Records, ingestStats.Batches, ingestStats.Throughput())
		}
		<-ctx.Done()
	case err := <-httpErr:
		return fmt.Errorf("http server: %w", err)
	}

	// Graceful drain: stop admitting queries, stop ingest, then give
	// in-flight queries a bounded window to finish.
	fmt.Fprintln(w, "shutting down: draining queries...")
	server.Drain()
	buffered.Close()
	<-ingestDone
	if hub != nil {
		// Graceful drain: every subscriber gets a goodbye frame carrying
		// its cursor, so reconnecting against a restarted server resumes
		// with deltas instead of a snapshot storm.
		hs := hub.Stats()
		fmt.Fprintf(w, "draining %d subscribers (%d deltas, %d snapshots sent)...\n",
			hs.Active, hs.DeltasSent, hs.SnapshotsSent)
		hub.Close()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if ingestErr != nil && !errors.Is(ingestErr, context.Canceled) && !errors.Is(ingestErr, io.EOF) {
		return ingestErr
	}
	fmt.Fprintf(w, "done: ingested %d records in %d batches, published %d snapshots, served %d queries (%d shed)\n",
		ingestStats.Records, ingestStats.Batches, registry.Published(),
		server.AdmissionStats().Admitted, server.AdmissionStats().Shed)
	return nil
}
