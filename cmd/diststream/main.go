// Command diststream runs the paper-reproduction experiments: every table
// and figure of the evaluation section (§VII) has a subcommand that
// regenerates it as an ASCII table.
//
// Usage:
//
//	diststream <experiment> [flags]
//
// Experiments:
//
//	datasets      Table I — dataset characteristics
//	quality       Figure 6 — CMM: MOA vs DistStream vs unordered
//	quality-batch §VII-B2 — batch-size quality sweep
//	throughput    Figure 7 — single-machine throughput
//	scalability   Figure 8 — throughput gain across parallelism degrees
//	batch-sweep   Figure 9 — throughput vs batch interval at p=32
//	other-algos   Figure 10 — D-Stream and ClusTree scalability
//	ablate        §V-A / §V-C design-choice ablations
//	bench         A/B the bsp and pipelined execution schedules on a
//	              TCP cluster; report per-batch latency and throughput
//	fault         kill a TCP worker mid-run; show recovery + determinism
//	chaos         supervised subprocess cluster with periodic SIGKILLs;
//	              workers rejoin via membership catch-up, model must stay
//	              byte-identical to a clean fixed-membership run
//	resume        crash the driver mid-run; resume from a checkpoint
//	serve         run a live ingesting pipeline plus the query-serving
//	              HTTP API (assign / clusters / macro / metrics) together
//	all           run everything at the default scale
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"diststream/internal/datagen"
	"diststream/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "diststream:", err)
		os.Exit(1)
	}
}

// options shared by the experiment subcommands.
type options struct {
	records  int
	repeats  int
	seed     int64
	datasets string
	algos    string
	csv      string
	rate     float64
}

func (o *options) bind(fs *flag.FlagSet) {
	fs.IntVar(&o.records, "records", 30000, "records per generated dataset (0 = paper scale)")
	fs.IntVar(&o.repeats, "repeats", 3, "repetitions building the large- datasets (paper: 10)")
	fs.Int64Var(&o.seed, "seed", 42, "generation seed")
	fs.StringVar(&o.datasets, "datasets", "", "comma-separated dataset presets (kdd99,covtype,kdd98)")
	fs.StringVar(&o.algos, "algos", "", "comma-separated algorithms (clustream,denstream,dstream,clustree)")
	fs.StringVar(&o.csv, "csv", "", "quality only: run on a real dataset from this CSV (seq,ts,label,f0,...) instead of the synthetic presets")
	fs.Float64Var(&o.rate, "rate", 0, "with -csv: restamp records at this rate (0 keeps file timestamps)")
}

func (o *options) presets() ([]datagen.Preset, error) {
	if o.datasets == "" {
		return nil, nil // experiment default
	}
	var out []datagen.Preset
	for _, name := range strings.Split(o.datasets, ",") {
		switch strings.TrimSpace(name) {
		case "kdd99":
			out = append(out, datagen.KDD99Sim)
		case "covtype":
			out = append(out, datagen.CovTypeSim)
		case "kdd98":
			out = append(out, datagen.KDD98Sim)
		default:
			return nil, fmt.Errorf("unknown dataset %q", name)
		}
	}
	return out, nil
}

func (o *options) algorithms() []string {
	if o.algos == "" {
		return nil
	}
	parts := strings.Split(o.algos, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: diststream <datasets|quality|quality-batch|throughput|scalability|batch-sweep|other-algos|ablate|bench|fault|chaos|resume|serve|all> [flags]")
	}
	cmd, rest := args[0], args[1:]
	if cmd == "bench" {
		// bench has its own flag set (cluster size, schedule selection).
		return runBench(w, rest)
	}
	if cmd == "fault" {
		// fault has its own flag set (cluster size, kill point, deadline).
		return runFault(w, rest)
	}
	if cmd == "chaos" {
		// chaos has its own flag set (kill cadence, schedules, algorithms).
		return runChaos(w, rest)
	}
	if cmd == "_worker" {
		// Hidden: the chaos driver re-execs its own binary into worker
		// mode to build a supervised subprocess cluster.
		return runChaosWorker(rest)
	}
	if cmd == "resume" {
		// resume has its own flag set (checkpoint cadence, crash point).
		return runResume(w, rest)
	}
	if cmd == "serve" {
		// serve has its own flag set (listen address, admission bounds).
		return runServe(w, rest)
	}
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var o options
	o.bind(fs)
	if err := fs.Parse(rest); err != nil {
		return err
	}
	presets, err := o.presets()
	if err != nil {
		return err
	}
	switch cmd {
	case "datasets":
		return runDatasets(w, o)
	case "quality":
		return runQuality(w, o, presets)
	case "quality-batch":
		return runQualityBatch(w, o)
	case "throughput":
		return runThroughput(w, o, presets)
	case "scalability":
		return runScalability(w, o, presets, o.algorithms())
	case "batch-sweep":
		return runBatchSweep(w, o)
	case "other-algos":
		return runScalability(w, o, presets, []string{"dstream", "clustree"})
	case "ablate":
		return runAblations(w, o)
	case "all":
		for _, step := range []func() error{
			func() error { return runDatasets(w, o) },
			func() error { return runQuality(w, o, presets) },
			func() error { return runQualityBatch(w, o) },
			func() error { return runThroughput(w, o, presets) },
			func() error { return runScalability(w, o, presets, o.algorithms()) },
			func() error { return runBatchSweep(w, o) },
			func() error { return runScalability(w, o, presets, []string{"dstream", "clustree"}) },
			func() error { return runAblations(w, o) },
		} {
			if err := step(); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}

func runDatasets(w io.Writer, o options) error {
	res, err := harness.RunTable1(o.records, o.seed)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

func runQuality(w io.Writer, o options, presets []datagen.Preset) error {
	cfg := harness.QualityConfig{
		Datasets:   presets,
		Algorithms: o.algorithms(),
		Records:    o.records,
		Seed:       o.seed,
	}
	if o.csv != "" {
		ds, err := harness.LoadCSVDataset(o.csv, o.rate, true)
		if err != nil {
			return err
		}
		cells, err := harness.RunQualityDataset(cfg, ds)
		if err != nil {
			return err
		}
		res := &harness.QualityResult{Cells: cells}
		res.Render(w)
		return nil
	}
	res, err := harness.RunQuality(cfg)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

func runQualityBatch(w io.Writer, o options) error {
	res, err := harness.RunBatchSizeQuality(harness.QualityConfig{
		Records: o.records,
		Seed:    o.seed,
	}, datagen.KDD99Sim, "denstream", nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

func runThroughput(w io.Writer, o options, presets []datagen.Preset) error {
	res, err := harness.RunThroughput(harness.ThroughputConfig{
		Datasets:    presets,
		Algorithms:  o.algorithms(),
		BaseRecords: o.records,
		Repeats:     o.repeats,
		Seed:        o.seed,
	})
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

func runScalability(w io.Writer, o options, presets []datagen.Preset, algos []string) error {
	res, err := harness.RunScalability(harness.ScalabilityConfig{
		Datasets:    presets,
		Algorithms:  algos,
		BaseRecords: o.records,
		Repeats:     o.repeats,
		Seed:        o.seed,
	})
	if err != nil {
		return err
	}
	res.Render(w)
	fmt.Fprintf(w, "max modeled gain: %.1fx (paper: 13.2x at p=32)\n", res.MaxGain())
	return nil
}

func runBatchSweep(w io.Writer, o options) error {
	for _, algo := range []string{"clustream", "denstream"} {
		res, err := harness.RunBatchSizeSweep(harness.ScalabilityConfig{
			BaseRecords: o.records,
			Repeats:     o.repeats,
			Seed:        o.seed,
		}, datagen.KDD99Sim, algo, nil, 32)
		if err != nil {
			return err
		}
		res.Render(w)
		fmt.Fprintln(w)
	}
	return nil
}

func runAblations(w io.Writer, o options) error {
	pm, err := harness.RunPreMergeAblation(datagen.KDD99Sim, "denstream", o.records, o.seed)
	if err != nil {
		return err
	}
	pm.Render(w)
	fmt.Fprintln(w)
	pc, err := harness.RunParallelismChoiceAblation(o.records, 200, 54, 4, o.seed)
	if err != nil {
		return err
	}
	pc.Render(w)
	return nil
}
