// Command mbsp-worker runs one remote DistStream worker: it serves
// pipeline tasks (assign and local-update stages) over TCP, mirroring the
// driver's operation and algorithm registries — the role of a Spark
// executor in the paper's deployment.
//
// Start a few workers, then point the driver at them:
//
//	mbsp-worker -listen :7101 &
//	mbsp-worker -listen :7102 &
//	# driver: diststream.New(diststream.Options{WorkerAddrs: []string{"host:7101", "host:7102"}})
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"diststream"
	"diststream/internal/backoff"
	"diststream/internal/core"
	"diststream/internal/mbsp"
	"diststream/internal/mbsp/rpcexec"
	"diststream/internal/membership"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mbsp-worker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mbsp-worker", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "TCP listen address")
	id := fs.Int("id", 0, "worker id reported in task metrics")
	announce := fs.String("announce", "", "driver membership address to announce to (enables elastic join)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	diststream.RegisterWireTypes()
	algos, err := diststream.NewAlgorithmRegistry()
	if err != nil {
		return err
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		return err
	}
	worker, err := rpcexec.NewWorker(*id, *listen, reg)
	if err != nil {
		return err
	}
	fmt.Printf("mbsp-worker %d listening on %s\n", *id, worker.Addr())

	if *announce != "" {
		// Hello handshake: register with the driver's membership registry
		// so an already-running pipeline can admit this worker at its next
		// batch boundary. Retried in case the worker came up a beat before
		// the driver's registry listener.
		pol := backoff.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second}
		var aerr error
		for attempt := 1; attempt <= 6; attempt++ {
			actx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			aerr = membership.Announce(actx, *announce, worker.Addr())
			cancel()
			if aerr == nil {
				break
			}
			time.Sleep(pol.Delay(attempt))
		}
		if aerr != nil {
			_ = worker.Close()
			return fmt.Errorf("announce to %s: %w", *announce, aerr)
		}
		fmt.Printf("mbsp-worker %d announced to %s\n", *id, *announce)
	}

	// Serve until interrupted. Drivers tolerate a worker dying mid-run
	// (tasks are re-dispatched onto surviving workers), so SIGTERM here
	// is safe even with a pipeline in flight.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	if *announce != "" {
		// Goodbye handshake: a clean shutdown drains the slot at the next
		// boundary instead of waiting for probes to declare it dead.
		gctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = membership.Goodbye(gctx, *announce, worker.Addr())
		cancel()
	}
	return worker.Close()
}
