// Command mbsp-worker runs one remote DistStream worker: it serves
// pipeline tasks (assign and local-update stages) over TCP, mirroring the
// driver's operation and algorithm registries — the role of a Spark
// executor in the paper's deployment.
//
// Start a few workers, then point the driver at them:
//
//	mbsp-worker -listen :7101 &
//	mbsp-worker -listen :7102 &
//	# driver: diststream.New(diststream.Options{WorkerAddrs: []string{"host:7101", "host:7102"}})
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"diststream"
	"diststream/internal/core"
	"diststream/internal/mbsp"
	"diststream/internal/mbsp/rpcexec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mbsp-worker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mbsp-worker", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "TCP listen address")
	id := fs.Int("id", 0, "worker id reported in task metrics")
	if err := fs.Parse(args); err != nil {
		return err
	}

	diststream.RegisterWireTypes()
	algos, err := diststream.NewAlgorithmRegistry()
	if err != nil {
		return err
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		return err
	}
	worker, err := rpcexec.NewWorker(*id, *listen, reg)
	if err != nil {
		return err
	}
	fmt.Printf("mbsp-worker %d listening on %s\n", *id, worker.Addr())

	// Serve until interrupted. Drivers tolerate a worker dying mid-run
	// (tasks are re-dispatched onto surviving workers), so SIGTERM here
	// is safe even with a pipeline in flight.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	return worker.Close()
}
