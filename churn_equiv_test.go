package diststream_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"diststream"
	"diststream/internal/core"
	"diststream/internal/mbsp"
	"diststream/internal/mbsp/rpcexec"
	"diststream/internal/membership"
	"diststream/internal/stream"
)

type churnFacadeRun struct {
	stats diststream.RunStats
	state []byte // gob-encoded driver model: byte equality = bit identity
}

// runChurnFacade runs one pipeline over a fresh 3-worker TCP cluster.
// With churn set, membership is enabled and at batch 3 one worker is
// killed while a freshly started replacement announces itself to the
// system's membership listener; the driver must retire the dead slot,
// admit the joiner with full catch-up, and keep the output identical.
func runChurnFacade(t *testing.T, algoName string, schedule diststream.ScheduleKind, churn bool) churnFacadeRun {
	t.Helper()
	workers, addrs := startFacadeCluster(t, 3)
	opts := diststream.Options{
		WorkerAddrs: addrs,
		Execution: diststream.ExecutionOptions{
			Schedule:    schedule,
			CallTimeout: 10 * time.Second,
			MaxRetries:  1,
			Backoff:     10 * time.Millisecond,
		},
	}
	if churn {
		opts.Execution.Membership = &diststream.MembershipOptions{
			ProbeInterval: 100 * time.Millisecond,
			SuspectAfter:  300 * time.Millisecond,
			JoinBarrier:   5 * time.Second,
		}
	}
	sys, err := diststream.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	batches := 0
	pl, err := sys.NewPipeline(newFacadeAlgo(t, sys, algoName), diststream.PipelineOptions{
		BatchSeconds: 1,
		InitRecords:  100,
		OnBatch: func(stream.Batch, *diststream.Model) error {
			batches++
			if churn && batches == 3 {
				// Kill one worker and bring up a replacement process on a
				// fresh port: it announces itself, and the driver admits it
				// into the vacated slot at a later batch boundary.
				_ = workers[2].Close()
				startReplacementWorker(t, sys.MembershipAddr())
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.RunContext(context.Background(), stream.NewSliceSource(deltaBlobStream(1200, 4)))
	if err != nil {
		t.Fatal(err)
	}
	state, err := pl.Model().EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	return churnFacadeRun{stats: stats, state: state}
}

// startReplacementWorker boots one extra worker mirroring the facade's
// registries and delivers its membership hello to the driver.
func startReplacementWorker(t *testing.T, driverAddr string) {
	t.Helper()
	diststream.RegisterWireTypes()
	algos, err := diststream.NewAlgorithmRegistry()
	if err != nil {
		t.Fatal(err)
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		t.Fatal(err)
	}
	repl, err := rpcexec.NewWorker(9, "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = repl.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := membership.Announce(ctx, driverAddr, repl.Addr()); err != nil {
		t.Fatalf("announce replacement: %v", err)
	}
}

// TestChurnEquivalence is the tentpole acceptance scenario at the public
// API: killing a worker mid-stream and admitting a fresh joiner produces
// final model state byte-identical to a clean fixed-membership BSP run,
// for both acceptance algorithms under both execution schedules.
func TestChurnEquivalence(t *testing.T) {
	for _, algoName := range []string{"clustream", "denstream"} {
		t.Run(algoName, func(t *testing.T) {
			clean := runChurnFacade(t, algoName, diststream.ScheduleBSP, false)
			for _, schedule := range []diststream.ScheduleKind{diststream.ScheduleBSP, diststream.SchedulePipelined} {
				t.Run(string(schedule), func(t *testing.T) {
					churned := runChurnFacade(t, algoName, schedule, true)
					if !bytes.Equal(churned.state, clean.state) {
						t.Errorf("model state diverged under churn: %d bytes churned, %d clean",
							len(churned.state), len(clean.state))
					}
					if churned.stats.Records != clean.stats.Records || churned.stats.Batches != clean.stats.Batches {
						t.Errorf("run shape diverged: %d records / %d batches churned, %d / %d clean",
							churned.stats.Records, churned.stats.Batches, clean.stats.Records, clean.stats.Batches)
					}
					if churned.stats.WorkerDepartures < 1 {
						t.Errorf("WorkerDepartures = %d, want >= 1 (a worker was killed)", churned.stats.WorkerDepartures)
					}
					if churned.stats.WorkerJoins < 1 {
						t.Errorf("WorkerJoins = %d, want >= 1 (a replacement announced itself)", churned.stats.WorkerJoins)
					}
					if clean.stats.WorkerJoins != 0 || clean.stats.WorkerDepartures != 0 {
						t.Errorf("clean run reported churn: %d joins, %d departures",
							clean.stats.WorkerJoins, clean.stats.WorkerDepartures)
					}
				})
			}
		})
	}
}
