// Package diststream is the public facade of the DistStream library: an
// order-aware distributed framework for online-offline stream clustering
// algorithms (Xu et al., ICDCS 2020), reimplemented in pure Go.
//
// The framework parallelizes the online phase of stream clustering with a
// mini-batch update model that preserves record arrival order, running on
// a built-in mini-batch stream-processing engine (an in-process executor
// for single-machine use and a TCP executor for real worker processes).
// Four classic algorithms ship with it: CluStream, DenStream, D-Stream and
// ClusTree, plus a minimal reference algorithm ("simple") that documents
// the developer API.
//
// Quickstart:
//
//	sys, err := diststream.New(diststream.Options{Parallelism: 4})
//	...
//	algo, err := sys.NewCluStream(diststream.CluStreamOptions{Dim: 54})
//	pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{BatchSeconds: 10})
//	stats, err := pl.Run(source)
//	clustering, err := pl.Offline()
//
// Runs can be cancelled or bounded with a context:
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
//	defer cancel()
//	stats, err := pl.RunContext(ctx, source)
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package diststream

import (
	"errors"
	"fmt"
	"time"

	"diststream/internal/checkpoint"
	"diststream/internal/clustream"
	"diststream/internal/clustree"
	"diststream/internal/core"
	"diststream/internal/denstream"
	"diststream/internal/dstream"
	"diststream/internal/mbsp"
	"diststream/internal/mbsp/rpcexec"
	"diststream/internal/mbsp/sched"
	"diststream/internal/membership"
	"diststream/internal/simple"
	"diststream/internal/stream"
	"diststream/internal/vclock"
)

// Re-exported core types: users interact with these directly.
type (
	// Algorithm is a stream clustering algorithm pluggable into the
	// pipeline (the paper's four developer APIs).
	Algorithm = core.Algorithm
	// MicroCluster is the online-phase sketch unit.
	MicroCluster = core.MicroCluster
	// Snapshot is the broadcast search structure.
	Snapshot = core.Snapshot
	// Model is the live micro-cluster set.
	Model = core.Model
	// Clustering is the offline-phase output.
	Clustering = core.Clustering
	// Pipeline is the mini-batch driver loop.
	Pipeline = core.Pipeline
	// RunStats summarizes a pipeline run.
	RunStats = core.RunStats
	// Published is one frozen, self-consistent model snapshot handed to
	// PipelineOptions.OnSnapshot after each global update.
	Published = core.Published
	// OrderMode selects order-aware vs unordered updates.
	OrderMode = core.OrderMode
	// AdaptiveBatch configures run-time batch-interval adaptation.
	AdaptiveBatch = core.AdaptiveBatch
	// CheckpointConfig enables durable checkpoint/resume of pipeline runs.
	CheckpointConfig = core.CheckpointConfig
	// StateCodec is implemented by algorithms that support checkpointing.
	StateCodec = core.StateCodec
	// SpeculationConfig enables speculative re-execution of straggling
	// tasks on either executor.
	SpeculationConfig = mbsp.SpeculationConfig
	// Record is one stream element.
	Record = stream.Record
	// Source is a pull-based record stream.
	Source = stream.Source
	// Time is a virtual timestamp in seconds.
	Time = vclock.Time
)

// ErrNoCheckpoint is returned by Pipeline.ResumeFrom when the checkpoint
// directory holds no valid checkpoint file.
var ErrNoCheckpoint = checkpoint.ErrNoCheckpoint

// Order modes.
const (
	// OrderAware is the paper's order-preserving update mechanism
	// (default).
	OrderAware = core.OrderAware
	// OrderUnordered is the unordered mini-batch baseline.
	OrderUnordered = core.OrderUnordered
)

// ScheduleKind names a batch execution schedule (see ScheduleBSP and
// SchedulePipelined).
type ScheduleKind = sched.Kind

// Shipped schedules.
const (
	// ScheduleBSP is the strict bulk-synchronous schedule: every stage is
	// a full barrier. The default.
	ScheduleBSP = sched.BSP
	// SchedulePipelined overlaps broadcast with task delivery, streams the
	// shuffle's counting pass as assign tasks complete, and lets the
	// driver overlap a batch's publish/checkpoint tail and the next
	// batch's prefetch with the current batch's parallel stages. Final
	// model state is bit-identical to ScheduleBSP.
	SchedulePipelined = sched.Pipelined
)

// ExecutionOptions consolidates every knob that governs how batches
// execute: the schedule strategy, broadcast encoding, straggler
// speculation, the TCP executor's fault-tolerance timings and the
// default checkpoint cadence. Zero-valued fields take the documented
// defaults; fields left zero also inherit from the deprecated
// Options.RPC and Options.Speculation aliases, so existing callers keep
// working unchanged.
type ExecutionOptions struct {
	// Schedule selects the batch execution strategy: ScheduleBSP
	// (default) or SchedulePipelined.
	Schedule ScheduleKind
	// DeltaBroadcast ships per-batch model snapshots as deltas (only the
	// micro-clusters that changed since the worker's last acknowledged
	// snapshot) instead of full copies (TCP executor only). Reconnects,
	// version gaps and checksum mismatches transparently fall back to
	// full snapshots, so results are bit-identical with the option off;
	// it purely reduces broadcast bytes for algorithms whose batches
	// touch few clusters.
	DeltaBroadcast bool
	// Speculation, when set, launches backup copies of straggling tasks
	// on idle workers; the first result wins. Works on both executors.
	Speculation *SpeculationConfig
	// DialTimeout bounds each TCP connection attempt to a worker.
	// Default 5s.
	DialTimeout time.Duration
	// CallTimeout bounds each task/broadcast round trip; a worker that
	// stalls past it fails that attempt and the call is retried on a
	// fresh connection. Default 30s; negative disables the deadline.
	CallTimeout time.Duration
	// MaxRetries is the number of extra attempts (each with a reconnect)
	// a call gets before its worker is declared lost and the worker's
	// tasks are re-dispatched onto the survivors. Default 2.
	MaxRetries int
	// Backoff is the sleep before the first retry, doubling on each
	// subsequent one. Default 50ms.
	Backoff time.Duration
	// CheckpointEveryNBatches is the default checkpoint cadence applied
	// to pipelines that enable checkpointing without setting their own
	// CheckpointConfig.EveryNBatches. Default 1.
	CheckpointEveryNBatches int
	// GlobalShards, when >= 1, partitions the driver's global update into
	// that many shards: the per-micro-cluster phase runs as parallel
	// per-shard reducers and the order-sensitive cross-shard residue
	// (merges, deletions, sweeps) stays serialized, so the final model is
	// byte-identical to the serial path. Takes effect for algorithms with
	// a sharded decomposition (CluStream, DenStream); others keep the
	// serial global update. 0 (default) keeps the serial path everywhere.
	GlobalShards int
	// Membership, when set, makes the TCP worker set elastic: the system
	// runs a membership registry with health probes and a Hello/Goodbye
	// listener (address via System.MembershipAddr), and the executor
	// retires departed workers and admits announced joiners at batch
	// boundaries — with full model catch-up — without changing the
	// partitioning, so output stays bit-identical under churn. Requires
	// WorkerAddrs.
	Membership *MembershipOptions
}

// MembershipOptions tunes elastic worker membership (TCP executor only).
// Zero-valued fields take the documented defaults.
type MembershipOptions struct {
	// ListenAddr binds the Hello/Goodbye announcement listener that
	// restarted or new workers contact to join. Default "127.0.0.1:0"
	// (ephemeral; read the chosen address from System.MembershipAddr).
	ListenAddr string
	// ProbeInterval is the health-probe period. Default 1s.
	ProbeInterval time.Duration
	// SuspectAfter is how long a worker may fail probes before it is
	// marked suspect (and, after another SuspectAfter, dead). Default
	// 3x ProbeInterval.
	SuspectAfter time.Duration
	// JoinBarrier bounds how long one batch boundary spends catching up
	// join candidates before dispatch proceeds without them. Default 2s.
	JoinBarrier time.Duration
}

// RPCOptions tunes the TCP executor's fault tolerance.
//
// Deprecated: the fields moved into ExecutionOptions (same names, same
// semantics — DeltaBroadcast included). Options.RPC is still honored for
// any field the Execution block leaves zero.
type RPCOptions struct {
	// DialTimeout bounds each TCP connection attempt. Default 5s.
	DialTimeout time.Duration
	// CallTimeout bounds each task/broadcast round trip. Default 30s.
	CallTimeout time.Duration
	// MaxRetries is the number of extra attempts per call. Default 2.
	MaxRetries int
	// Backoff is the sleep before the first retry. Default 50ms.
	Backoff time.Duration
	// DeltaBroadcast ships model snapshots as deltas.
	DeltaBroadcast bool
}

// Options configures a System.
type Options struct {
	// Parallelism is the number of workers (the paper's parallelism
	// degree p). Default 1.
	Parallelism int
	// WorkerAddrs, when set, runs stages on remote TCP workers (started
	// with cmd/mbsp-worker or rpcexec.NewWorker) instead of in-process
	// goroutines. Parallelism is then len(WorkerAddrs).
	WorkerAddrs []string
	// Execution gathers the execution-strategy knobs: schedule, delta
	// broadcast, speculation, TCP fault-tolerance timings, checkpoint
	// cadence.
	Execution ExecutionOptions
	// RPC tunes timeouts, retries and backoff for the TCP executor.
	//
	// Deprecated: use Execution. Still honored for fields Execution
	// leaves zero.
	RPC RPCOptions
	// Speculation launches backup copies of straggling tasks.
	//
	// Deprecated: use Execution.Speculation. Still honored when
	// Execution.Speculation is nil.
	Speculation *SpeculationConfig
}

// execution resolves the effective execution options: the Execution
// block wins field-by-field, with the deprecated RPC/Speculation aliases
// filling any field left zero.
func (o Options) execution() ExecutionOptions {
	ex := o.Execution
	if ex.DialTimeout == 0 {
		ex.DialTimeout = o.RPC.DialTimeout
	}
	if ex.CallTimeout == 0 {
		ex.CallTimeout = o.RPC.CallTimeout
	}
	if ex.MaxRetries == 0 {
		ex.MaxRetries = o.RPC.MaxRetries
	}
	if ex.Backoff == 0 {
		ex.Backoff = o.RPC.Backoff
	}
	if !ex.DeltaBroadcast {
		ex.DeltaBroadcast = o.RPC.DeltaBroadcast
	}
	if ex.Speculation == nil {
		ex.Speculation = o.Speculation
	}
	return ex
}

// System owns the execution engine and the algorithm registry. Create one
// per process (or per isolated experiment) and build pipelines from it.
type System struct {
	engine   *mbsp.Engine
	algos    *core.AlgorithmRegistry
	schedule sched.Schedule
	execName string
	exec     ExecutionOptions
	// members is the elastic-membership registry (nil unless
	// Execution.Membership was set).
	members *membership.Registry
}

// New builds a System with all four shipped algorithms registered.
func New(opts Options) (*System, error) {
	if opts.Parallelism <= 0 {
		opts.Parallelism = 1
	}
	ex := opts.execution()
	schedule, err := sched.New(ex.Schedule)
	if err != nil {
		return nil, fmt.Errorf("diststream: %w", err)
	}
	algos, err := NewAlgorithmRegistry()
	if err != nil {
		return nil, err
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		return nil, err
	}
	var exec mbsp.Executor
	var members *membership.Registry
	execName := "local"
	if len(opts.WorkerAddrs) > 0 {
		execName = "tcp"
		RegisterWireTypes()
		if m := ex.Membership; m != nil {
			listen := m.ListenAddr
			if listen == "" {
				listen = "127.0.0.1:0"
			}
			members, err = membership.New(membership.Config{
				ListenAddr:    listen,
				ProbeInterval: m.ProbeInterval,
				SuspectAfter:  m.SuspectAfter,
			})
			if err != nil {
				return nil, fmt.Errorf("diststream: %w", err)
			}
		}
		cfg := rpcexec.Config{
			DialTimeout:    ex.DialTimeout,
			CallTimeout:    ex.CallTimeout,
			MaxRetries:     ex.MaxRetries,
			Backoff:        ex.Backoff,
			Speculation:    ex.Speculation,
			DeltaBroadcast: ex.DeltaBroadcast,
			Membership:     members,
		}
		if ex.Membership != nil {
			cfg.JoinBarrier = ex.Membership.JoinBarrier
		}
		exec, err = rpcexec.DialConfig(opts.WorkerAddrs, cfg)
		if err != nil {
			if members != nil {
				_ = members.Close()
			}
			return nil, err
		}
	} else {
		if ex.Membership != nil {
			return nil, errors.New("diststream: Execution.Membership requires WorkerAddrs (TCP executor)")
		}
		exec, err = mbsp.NewLocalExecutor(mbsp.LocalConfig{
			Parallelism: opts.Parallelism,
			Registry:    reg,
			Speculation: ex.Speculation,
		})
		if err != nil {
			return nil, err
		}
	}
	engine, err := mbsp.NewEngine(exec)
	if err != nil {
		if members != nil {
			_ = members.Close()
		}
		return nil, err
	}
	return &System{engine: engine, algos: algos, schedule: schedule, execName: execName, exec: ex, members: members}, nil
}

// Close releases the engine (and closes worker connections in TCP mode),
// plus the membership registry when one is running.
func (s *System) Close() error {
	err := s.engine.Close()
	if s.members != nil {
		if merr := s.members.Close(); err == nil {
			err = merr
		}
	}
	return err
}

// MembershipAddr returns the Hello/Goodbye announcement listener's
// address — what restarted or new workers pass as their -announce target
// to join the cluster — or "" when elastic membership is not enabled.
func (s *System) MembershipAddr() string {
	if s.members == nil {
		return ""
	}
	return s.members.Addr()
}

// Parallelism returns the configured worker count.
func (s *System) Parallelism() int { return s.engine.Parallelism() }

// Schedule returns the active batch execution schedule's kind.
func (s *System) Schedule() ScheduleKind { return s.schedule.Kind() }

// ExecutorName names the executor backing this system: "local" for the
// in-process executor, "tcp" for remote workers.
func (s *System) ExecutorName() string { return s.execName }

// NewAlgorithmRegistry returns a registry with the shipped algorithms
// (clustream, denstream, dstream, clustree, simple). Most callers use
// System instead; worker binaries use this to mirror the driver.
func NewAlgorithmRegistry() (*core.AlgorithmRegistry, error) {
	algos := core.NewAlgorithmRegistry()
	for _, register := range []func(*core.AlgorithmRegistry) error{
		clustream.Register,
		denstream.Register,
		dstream.Register,
		clustree.Register,
		simple.Register,
	} {
		if err := register(algos); err != nil {
			return nil, err
		}
	}
	return algos, nil
}

// RegisterWireTypes registers every gob payload with the TCP transport.
// Both driver and worker processes must call it before exchanging tasks.
func RegisterWireTypes() {
	core.RegisterWireTypes()
	clustream.RegisterWireTypes()
	denstream.RegisterWireTypes()
	dstream.RegisterWireTypes()
	clustree.RegisterWireTypes()
	simple.RegisterWireTypes()
}

// PipelineOptions configures a pipeline run.
type PipelineOptions struct {
	// BatchSeconds is the mini-batch interval in virtual seconds.
	// Default 10 (the paper's setting).
	BatchSeconds float64
	// Order defaults to OrderAware.
	Order OrderMode
	// InitRecords is the warm-up sample for model initialization.
	// Default 500.
	InitRecords int
	// DisablePreMerge turns off the outlier pre-merge optimization.
	DisablePreMerge bool
	// DecayAlpha/DecayBeta, when both set, enforce the paper's §IV-D
	// maximum batch interval log_beta(1/alpha).
	DecayAlpha, DecayBeta float64
	// Adaptive, when set, adjusts the batch interval at run time toward a
	// target records-per-batch (the paper's §VII-D3 future work).
	Adaptive *AdaptiveBatch
	// Checkpoint, when set, durably snapshots the run to Checkpoint.Dir
	// every Checkpoint.EveryNBatches batches; an interrupted run continues
	// bit-identically via Pipeline.ResumeFrom. The algorithm must
	// implement StateCodec (all shipped algorithms do).
	Checkpoint *CheckpointConfig
	// OnBatch, when set, runs on the driver after each batch.
	OnBatch func(batch stream.Batch, model *Model) error
	// OnSnapshot, when set, receives a frozen deep copy of the model —
	// micro-cluster clones plus a prebuilt search index — after
	// initialization and after every global update. Under the default
	// BSP schedule it runs synchronously on the batch loop; under
	// SchedulePipelined it may run concurrently with the next batch's
	// parallel stages (never concurrently with itself). Implementations
	// should be cheap either way (an atomic pointer swap into a
	// registry); this is the publication feed a query-serving subsystem
	// reads from (see `diststream serve`).
	OnSnapshot func(Published)
	// SnapshotMinInterval, when positive, paces OnSnapshot by wall
	// time: building a publication (model clone + search index) has a
	// real cost, and a saturated ingest loop reaches batch boundaries
	// hundreds of times per second. The first publication is never
	// skipped; zero keeps the publish-every-batch behavior.
	SnapshotMinInterval time.Duration
}

// NewPipeline builds a DistStream pipeline for the given algorithm.
func (s *System) NewPipeline(algo Algorithm, opts PipelineOptions) (*Pipeline, error) {
	if algo == nil {
		return nil, errors.New("diststream: nil algorithm")
	}
	if opts.BatchSeconds <= 0 {
		opts.BatchSeconds = 10
	}
	if opts.Checkpoint != nil && opts.Checkpoint.EveryNBatches == 0 && s.exec.CheckpointEveryNBatches > 0 {
		ck := *opts.Checkpoint
		ck.EveryNBatches = s.exec.CheckpointEveryNBatches
		opts.Checkpoint = &ck
	}
	return core.NewPipeline(core.Config{
		Algorithm:          algo,
		Engine:             s.engine,
		Schedule:           s.schedule,
		GlobalShards:       s.exec.GlobalShards,
		BatchInterval:      vclock.Duration(opts.BatchSeconds),
		Order:              opts.Order,
		InitRecords:        opts.InitRecords,
		DisablePreMerge:    opts.DisablePreMerge,
		DecayAlpha:         opts.DecayAlpha,
		DecayBeta:          opts.DecayBeta,
		Adaptive:           opts.Adaptive,
		Checkpoint:         opts.Checkpoint,
		OnBatch:            opts.OnBatch,
		OnPublish:          opts.OnSnapshot,
		PublishMinInterval: opts.SnapshotMinInterval,
	})
}

// NewAlgorithm constructs a registered algorithm from serialized params —
// the path remote workers use. Local callers prefer the typed
// constructors below.
func (s *System) NewAlgorithm(params core.Params) (Algorithm, error) {
	return s.algos.New(params)
}

// RegisterAlgorithm installs a custom algorithm factory. Pipelines
// reconstruct the algorithm from its Params() on every task, so any
// algorithm run through this System — including the one passed to
// NewPipeline directly — must be registered under its Params().Name.
// See examples/customalgo.
func (s *System) RegisterAlgorithm(name string, factory func(core.Params) (Algorithm, error)) error {
	return s.algos.Register(name, factory)
}

// CluStreamOptions mirrors clustream.Config.
type CluStreamOptions = clustream.Config

// NewCluStream builds a CluStream instance.
func (s *System) NewCluStream(opts CluStreamOptions) (Algorithm, error) {
	if opts.Dim <= 0 {
		return nil, fmt.Errorf("diststream: clustream needs Dim > 0")
	}
	return clustream.New(opts), nil
}

// DenStreamOptions mirrors denstream.Config.
type DenStreamOptions = denstream.Config

// NewDenStream builds a DenStream instance.
func (s *System) NewDenStream(opts DenStreamOptions) (Algorithm, error) {
	if opts.Dim <= 0 {
		return nil, fmt.Errorf("diststream: denstream needs Dim > 0")
	}
	return denstream.New(opts), nil
}

// DStreamOptions mirrors dstream.Config.
type DStreamOptions = dstream.Config

// NewDStream builds a D-Stream instance.
func (s *System) NewDStream(opts DStreamOptions) (Algorithm, error) {
	if opts.Dim <= 0 {
		return nil, fmt.Errorf("diststream: dstream needs Dim > 0")
	}
	return dstream.New(opts), nil
}

// ClusTreeOptions mirrors clustree.Config.
type ClusTreeOptions = clustree.Config

// NewClusTree builds a ClusTree instance.
func (s *System) NewClusTree(opts ClusTreeOptions) (Algorithm, error) {
	if opts.Dim <= 0 {
		return nil, fmt.Errorf("diststream: clustree needs Dim > 0")
	}
	return clustree.New(opts), nil
}

// SimpleOptions mirrors simple.Config.
type SimpleOptions = simple.Config

// NewSimple builds the reference algorithm.
func (s *System) NewSimple(opts SimpleOptions) Algorithm {
	return simple.New(opts)
}

// MaxBatchSeconds exposes the paper's §IV-D bound: the largest batch
// interval keeping per-record decay above alpha for decay base beta.
func MaxBatchSeconds(alpha, beta float64) (float64, error) {
	d, err := core.MaxBatchSeconds(alpha, beta)
	return float64(d), err
}
