// Microbenchmarks for the sharded global update: the order-aware sort,
// then serial vs sharded GlobalUpdate for CluStream (budget-enforcement
// heavy: a merge chain over the nearest-neighbor cache) and DenStream
// (sweep heavy: a high-touch batch plus decay/promote/prune over a large
// model). The sharded variants sweep the reducer pool 1..NumCPU;
// apply/fold sub-phase wall time is reported alongside ns/op. `make
// bench-json` archives the numbers in BENCH_8.json.
package diststream_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"diststream/internal/clustream"
	"diststream/internal/core"
	"diststream/internal/denstream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// shardBenchCase is one algorithm workload: a base model, a batch
// template, and the serial/sharded entry points. Each benchmark
// iteration advances the virtual clock by one interval and applies a
// fresh clone of the batch, so the model evolves the way a steady-state
// driver's would (decay and budget enforcement do real work every
// iteration) without re-decoding state inside the loop.
type shardBenchCase struct {
	name    string
	model   *core.Model
	updates []core.Update
	now     vclock.Time
	serial  func(*core.Model, []core.Update, vclock.Time) error
	sharded core.ShardedGlobalUpdater
}

// nextBatch clones the batch template stamped at the case's next virtual
// time, advancing the clock — the per-batch input a driver would hand
// the global update.
func (tc *shardBenchCase) nextBatch() ([]core.Update, vclock.Time) {
	tc.now++
	out := make([]core.Update, len(tc.updates))
	for i, u := range tc.updates {
		u.MC = u.MC.Clone()
		u.OrderTime = tc.now
		out[i] = u
	}
	return out, tc.now
}

// cluShardBench builds the CluStream case: 384 live micro-clusters, 128
// creations per batch, budget 384 — every global update runs a ~128-step
// merge chain whose cost is dominated by nearest-neighbor maintenance.
func cluShardBench(b *testing.B) *shardBenchCase {
	const dim = 34
	r := rand.New(rand.NewSource(81))
	algo := clustream.New(clustream.Config{
		Dim: dim, MaxMicroClusters: 384, Horizon: 1e9, MLast: 10,
	})
	now := 1000.0
	mk := func(t float64) *clustream.MC {
		n := 1 + float64(r.Intn(4))
		cf1 := vector.New(dim)
		cf2 := vector.New(dim)
		for d := range cf1 {
			v := r.NormFloat64() * 5
			cf1[d] = v * n
			cf2[d] = v * v * n
		}
		return &clustream.MC{
			CF1X: cf1, CF2X: cf2, CF1T: t * n, CF2T: t * t * n, N: n,
			Born: vclock.Time(t), Last: vclock.Time(t),
		}
	}
	model := core.NewModel()
	for i := 0; i < 384; i++ {
		model.Add(mk(now - r.Float64()))
	}
	var updates []core.Update
	for i := 0; i < 128; i++ {
		updates = append(updates, core.Update{
			Kind: core.KindCreated, MC: mk(now),
			OrderSeq: uint64(i),
		})
	}
	return &shardBenchCase{
		name: "clustream", model: model, updates: updates, now: vclock.Time(now),
		serial: algo.GlobalUpdate, sharded: algo,
	}
}

// denShardBench builds the DenStream case: 4096 live micro-clusters and
// a high-touch batch (3072 replacements over 4096 ids, duplicates
// included) — the workload where the serial path's touched-id map and
// per-update id lookups dominate, which is exactly the bookkeeping the
// plan's positional routing eliminates.
func denShardBench(b *testing.B) *shardBenchCase {
	const dim = 8
	r := rand.New(rand.NewSource(82))
	algo := denstream.New(denstream.Config{
		Dim: dim, Epsilon: 2, Mu: 10, Beta: 0.5, Lambda: 0.01,
	})
	now := 100.0
	mk := func(t float64) *denstream.MC {
		w := 2 + 8*r.Float64()
		cf1 := vector.New(dim)
		cf2 := vector.New(dim)
		for d := range cf1 {
			v := r.NormFloat64() * 2
			cf1[d] = v * w
			cf2[d] = v * v * w
		}
		return &denstream.MC{
			CF1: cf1, CF2: cf2, W: w, Potential: w >= 5,
			Born: vclock.Time(t), Last: vclock.Time(t),
		}
	}
	model := core.NewModel()
	for i := 0; i < 4096; i++ {
		model.Add(mk(now - 2*r.Float64()))
	}
	live := model.IDs()
	var updates []core.Update
	for i := 0; i < 3072; i++ {
		mc := mk(now)
		mc.Id = live[r.Intn(len(live))]
		updates = append(updates, core.Update{
			Kind: core.KindUpdated, MC: mc, OrderSeq: uint64(i),
		})
	}
	return &shardBenchCase{
		name: "denstream", model: model, updates: updates, now: vclock.Time(now),
		serial: algo.GlobalUpdate, sharded: algo,
	}
}

func shardBenchCases(b *testing.B) []*shardBenchCase {
	return []*shardBenchCase{cluShardBench(b), denShardBench(b)}
}

// reducerSweep returns the pool sizes to benchmark: powers of two from 1
// up to and including NumCPU.
func reducerSweep() []int {
	max := runtime.NumCPU()
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	return append(out, max)
}

// BenchmarkSortUpdatesByOrderTime measures the order-aware sort that
// precedes every global update (timing split out in RunStats.GlobalSort).
func BenchmarkSortUpdatesByOrderTime(b *testing.B) {
	r := rand.New(rand.NewSource(17))
	base := make([]core.Update, 8192)
	for i := range base {
		base[i] = core.Update{
			OrderTime: vclock.Time(r.Float64() * 100),
			OrderSeq:  uint64(i),
		}
	}
	core.ScrambleUpdates(base) // arrival-order-destroyed input, as shuffled workers produce
	updates := make([]core.Update, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(updates, base)
		b.StartTimer()
		core.SortUpdatesByOrderTime(updates)
	}
}

// BenchmarkGlobalUpdateSerial is the baseline: the unsharded driver-side
// global update.
func BenchmarkGlobalUpdateSerial(b *testing.B) {
	for _, mkCase := range []func(*testing.B) *shardBenchCase{cluShardBench, denShardBench} {
		tc := mkCase(b)
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				updates, now := tc.nextBatch()
				if err := tc.serial(tc.model, updates, now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGlobalUpdateSharded sweeps the reducer pool 1..NumCPU on the
// same workloads (4 shards), reporting the parallel-apply and serialized
// fold/residue sub-phase wall time per op.
func BenchmarkGlobalUpdateSharded(b *testing.B) {
	for _, mkCase := range []func(*testing.B) *shardBenchCase{cluShardBench, denShardBench} {
		for _, workers := range reducerSweep() {
			tc := mkCase(b)
			b.Run(fmt.Sprintf("%s/reducers=%d", tc.name, workers), func(b *testing.B) {
				pool := core.NewReducerPool(workers)
				planner := core.NewShardPlanner()
				var applyNS, foldNS float64
				for i := 0; i < b.N; i++ {
					updates, now := tc.nextBatch()
					run := core.NewShardedRun(4, pool, planner)
					if err := tc.sharded.GlobalUpdateSharded(tc.model, updates, now, run); err != nil {
						b.Fatal(err)
					}
					applyNS += float64(run.ApplyWall().Nanoseconds())
					foldNS += float64(run.FoldWall().Nanoseconds())
				}
				b.ReportMetric(applyNS/float64(b.N), "apply_ns/op")
				b.ReportMetric(foldNS/float64(b.N), "fold_ns/op")
			})
		}
	}
}
