// Benchmarks for the delta broadcast + columnar wire codec PR: broadcast
// bytes per batch (full snapshot vs delta) and end-to-end pipeline
// throughput over TCP on the figure workload. The bytes/batch metrics are
// the DESIGN.md before/after numbers; `make bench-json` archives them in
// BENCH_5.json.
package diststream_test

import (
	"context"
	"testing"
	"time"

	"diststream"
	"diststream/internal/clustream"
	"diststream/internal/core"
	"diststream/internal/mbsp"
	"diststream/internal/mbsp/rpcexec"
	"diststream/internal/stream"
	"diststream/internal/vector"
)

// benchCluStreamLists builds the steady-state broadcast scenario of the
// paper's figure workloads: a model of nMC micro-clusters at dim
// dimensions in which one batch touched only `changed` of them.
func benchCluStreamLists(nMC, dim, changed int) (old, next []core.MicroCluster) {
	mk := func(i int) *clustream.MC {
		cf1 := make(vector.Vector, dim)
		cf2 := make(vector.Vector, dim)
		for j := range cf1 {
			cf1[j] = float64(i) + 0.25*float64(j)
			cf2[j] = cf1[j] * cf1[j]
		}
		return &clustream.MC{
			Id: uint64(i + 1), CF1X: cf1, CF2X: cf2,
			CF1T: float64(i), CF2T: float64(i * i), N: 10,
			Born: 1, Last: 2,
		}
	}
	old = make([]core.MicroCluster, nMC)
	next = make([]core.MicroCluster, nMC)
	for i := 0; i < nMC; i++ {
		old[i] = mk(i)
		if i < changed {
			touched := mk(i)
			touched.N += 3
			touched.CF1X[0] += 0.5
			touched.Last = 3
			next[i] = touched
		} else {
			next[i] = old[i]
		}
	}
	return old, next
}

// benchTCPBroadcast measures one model broadcast per iteration over a
// real 4-worker TCP cluster, ping-ponging between two snapshots that
// differ in 16 of 512 micro-clusters (dim 34, the KDD'99 shape). With
// delta on, every post-warm-up broadcast ships only the 16 changed
// micro-clusters; with delta off, every broadcast ships the full model.
func benchTCPBroadcast(b *testing.B, delta bool) {
	_, addrs := startFacadeCluster(b, 4)
	exec, err := rpcexec.DialConfig(addrs, rpcexec.Config{
		CallTimeout:    10 * time.Second,
		DeltaBroadcast: delta,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer exec.Close()

	algo := clustream.New(clustream.Config{Dim: 34, MaxMicroClusters: 512, NumMacro: 4, NewRadius: 2})
	listA, listB := benchCluStreamLists(512, 34, 16)
	snapA, snapB := algo.NewSnapshot(listA), algo.NewSnapshot(listB)
	dAB, ok := algo.DiffState(listA, listB)
	if !ok {
		b.Fatal("diff A->B declined")
	}
	dBA, ok := algo.DiffState(listB, listA)
	if !ok {
		b.Fatal("diff B->A declined")
	}
	ctx := context.Background()
	// Warm-up: the first broadcast is always a full snapshot.
	if err := exec.Broadcast(ctx, core.BroadcastModel, snapA); err != nil {
		b.Fatal(err)
	}
	before := exec.BroadcastStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var snap, d mbsp.Item = snapB, dAB
		if i%2 == 1 {
			snap, d = snapA, dBA
		}
		if err := exec.BroadcastDelta(ctx, core.BroadcastModel, snap, d); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stats := exec.BroadcastStats()
	b.ReportMetric(float64(stats.Bytes-before.Bytes)/float64(b.N), "bytes/batch")
	b.ReportMetric(float64(stats.Deltas-before.Deltas)/float64(b.N), "deltas/batch")
}

func BenchmarkTCPBroadcastFull(b *testing.B)  { benchTCPBroadcast(b, false) }
func BenchmarkTCPBroadcastDelta(b *testing.B) { benchTCPBroadcast(b, true) }

// benchTCPPipeline runs the full figure-workload pipeline (CluStream,
// 1200 records, 3 TCP workers) once per iteration, with and without
// delta broadcast — the end-to-end latency side of the before/after
// table.
func benchTCPPipeline(b *testing.B, delta bool) {
	_, addrs := startFacadeCluster(b, 3)
	sys, err := diststream.New(diststream.Options{
		WorkerAddrs: addrs,
		RPC: diststream.RPCOptions{
			CallTimeout:    10 * time.Second,
			DeltaBroadcast: delta,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	recs := deltaBlobStream(1200, 4)
	var deltas int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		algo, err := sys.NewCluStream(diststream.CluStreamOptions{
			Dim: 4, MaxMicroClusters: 20, NumMacro: 2, NewRadius: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{BatchSeconds: 1, InitRecords: 100})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		stats, err := pl.RunContext(context.Background(), stream.NewSliceSource(recs))
		if err != nil {
			b.Fatal(err)
		}
		deltas = stats.DeltaBroadcasts
	}
	b.StopTimer()
	b.ReportMetric(float64(deltas), "deltaBroadcasts/run")
}

func BenchmarkTCPPipelineFullBroadcast(b *testing.B)  { benchTCPPipeline(b, false) }
func BenchmarkTCPPipelineDeltaBroadcast(b *testing.B) { benchTCPPipeline(b, true) }
