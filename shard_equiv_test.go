// Shard-equivalence battery: with GlobalShards set, the sharded global
// update must produce byte-identical final model state to the serial
// path — across algorithms, schedules and executors — and algorithms
// without the ShardedGlobalUpdater capability must transparently fall
// back to the serial path. This is the acceptance test for the sharded
// order-aware global update (make shard-smoke runs it under -race).
package diststream_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"diststream"
	"diststream/internal/stream"
)

type shardEquivRun struct {
	stats diststream.RunStats
	state []byte // gob-encoded driver model: byte equality = bit identity
}

// runShardEquiv runs the figure workload with the given shard count (0 =
// serial) and captures the final model's serialized state.
func runShardEquiv(t *testing.T, algoName, executor string, kind diststream.ScheduleKind, shards int) shardEquivRun {
	t.Helper()
	diststream.RegisterWireTypes()
	opts := diststream.Options{
		Execution: diststream.ExecutionOptions{
			Schedule:     kind,
			GlobalShards: shards,
		},
	}
	switch executor {
	case "local":
		opts.Parallelism = 3
	case "tcp":
		_, addrs := startFacadeCluster(t, 3)
		opts.WorkerAddrs = addrs
	default:
		t.Fatalf("unknown executor %q", executor)
	}
	sys, err := diststream.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pl, err := sys.NewPipeline(newFacadeAlgo(t, sys, algoName), diststream.PipelineOptions{
		BatchSeconds: 1,
		InitRecords:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.RunContext(context.Background(), stream.NewSliceSource(deltaBlobStream(1200, 4)))
	if err != nil {
		t.Fatal(err)
	}
	state, err := pl.Model().EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	return shardEquivRun{stats: stats, state: state}
}

// TestShardedGlobalEquivalenceBitIdentical is the acceptance matrix:
// {CluStream, DenStream} x {BSP, pipelined} x {local, TCP} — the sharded
// global update's final model must be byte-equal to the serial path's,
// with the same run shape, and the sharded path must actually engage.
func TestShardedGlobalEquivalenceBitIdentical(t *testing.T) {
	for _, algoName := range []string{"clustream", "denstream"} {
		for _, schedule := range []diststream.ScheduleKind{diststream.ScheduleBSP, diststream.SchedulePipelined} {
			for _, executor := range []string{"local", "tcp"} {
				t.Run(algoName+"/"+string(schedule)+"/"+executor, func(t *testing.T) {
					serial := runShardEquiv(t, algoName, executor, schedule, 0)
					sharded := runShardEquiv(t, algoName, executor, schedule, 4)
					if !bytes.Equal(sharded.state, serial.state) {
						t.Errorf("model state diverged: sharded %d bytes, serial %d bytes",
							len(sharded.state), len(serial.state))
					}
					if sharded.stats.Records != serial.stats.Records || sharded.stats.Batches != serial.stats.Batches {
						t.Errorf("run shape diverged: sharded %d records / %d batches, serial %d / %d",
							sharded.stats.Records, sharded.stats.Batches, serial.stats.Records, serial.stats.Batches)
					}
					if serial.stats.ShardedGlobalBatches != 0 {
						t.Errorf("serial run reported %d sharded batches", serial.stats.ShardedGlobalBatches)
					}
					if sharded.stats.ShardedGlobalBatches != sharded.stats.Batches {
						t.Errorf("sharded path engaged on %d of %d batches",
							sharded.stats.ShardedGlobalBatches, sharded.stats.Batches)
					}
				})
			}
		}
	}
}

// TestShardedGlobalFallbackWithoutCapability pins the capability
// detection: D-Stream has no sharded decomposition, so GlobalShards must
// transparently keep the serial path — same bytes, zero sharded batches,
// no error.
func TestShardedGlobalFallbackWithoutCapability(t *testing.T) {
	run := func(shards int) shardEquivRun {
		diststream.RegisterWireTypes()
		sys, err := diststream.New(diststream.Options{
			Parallelism: 3,
			Execution:   diststream.ExecutionOptions{GlobalShards: shards},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		algo, err := sys.NewDStream(diststream.DStreamOptions{Dim: 4})
		if err != nil {
			t.Fatal(err)
		}
		pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{
			BatchSeconds: 1,
			InitRecords:  100,
		})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := pl.RunContext(context.Background(), stream.NewSliceSource(deltaBlobStream(1200, 4)))
		if err != nil {
			t.Fatal(err)
		}
		state, err := pl.Model().EncodeState()
		if err != nil {
			t.Fatal(err)
		}
		return shardEquivRun{stats: stats, state: state}
	}
	serial := run(0)
	sharded := run(4)
	if !bytes.Equal(sharded.state, serial.state) {
		t.Error("dstream state changed when GlobalShards was set")
	}
	if sharded.stats.ShardedGlobalBatches != 0 {
		t.Errorf("dstream reported %d sharded batches without the capability", sharded.stats.ShardedGlobalBatches)
	}
}

// TestShardedResumeFromCheckpoint covers the resume edge case from the
// satellite checklist: a run with sharding on, killed mid-stream and
// resumed from its checkpoint, must end byte-identical to an
// uninterrupted sharded run — the shard planner holds no cross-batch
// state the checkpoint could miss.
func TestShardedResumeFromCheckpoint(t *testing.T) {
	run := func(algoName, dir string, killAfter int, doResume bool) (shardEquivRun, error) {
		diststream.RegisterWireTypes()
		sys, err := diststream.New(diststream.Options{
			Parallelism: 3,
			Execution:   diststream.ExecutionOptions{GlobalShards: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		batches := 0
		pl, err := sys.NewPipeline(newFacadeAlgo(t, sys, algoName), diststream.PipelineOptions{
			BatchSeconds: 1,
			InitRecords:  100,
			Checkpoint:   &diststream.CheckpointConfig{Dir: dir, EveryNBatches: 2},
			OnBatch: func(stream.Batch, *diststream.Model) error {
				batches++
				if killAfter > 0 && batches == killAfter {
					return errInjectedCrash
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if doResume {
			if err := pl.ResumeFrom(dir); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := pl.RunContext(context.Background(), stream.NewSliceSource(deltaBlobStream(1200, 4)))
		if err != nil {
			return shardEquivRun{}, err
		}
		state, err := pl.Model().EncodeState()
		if err != nil {
			t.Fatal(err)
		}
		return shardEquivRun{stats: stats, state: state}, nil
	}
	for _, algoName := range []string{"clustream", "denstream"} {
		t.Run(algoName, func(t *testing.T) {
			refDir, runDir := t.TempDir(), t.TempDir()
			reference, err := run(algoName, refDir, -1, false)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if _, err := run(algoName, runDir, 3, false); !errors.Is(err, errInjectedCrash) {
				t.Fatalf("crashed run ended with %v, want the injected crash", err)
			}
			resumed, err := run(algoName, runDir, -1, true)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !bytes.Equal(resumed.state, reference.state) {
				t.Error("resumed sharded run diverged from uninterrupted sharded run")
			}
			if resumed.stats.ShardedGlobalBatches == 0 {
				t.Error("resumed run never took the sharded path")
			}
		})
	}
}
