package diststream_test

import (
	"testing"

	"diststream"
	"diststream/internal/core"
	"diststream/internal/mbsp"
	"diststream/internal/mbsp/rpcexec"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

func blobStream(n int, dim int) []diststream.Record {
	recs := make([]diststream.Record, n)
	for i := range recs {
		v := vector.New(dim)
		if i%2 == 0 {
			v[0], v[1] = 0.1*float64(i%5), 0
		} else {
			v[0], v[1] = 20+0.1*float64(i%5), 20
		}
		recs[i] = diststream.Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(float64(i) / 100),
			Values:    v,
			Label:     i % 2,
		}
	}
	return recs
}

func TestFacadeQuickstartFlow(t *testing.T) {
	sys, err := diststream.New(diststream.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Parallelism() != 4 {
		t.Errorf("Parallelism = %d", sys.Parallelism())
	}
	algo, err := sys.NewCluStream(diststream.CluStreamOptions{
		Dim:              4,
		MaxMicroClusters: 20,
		NumMacro:         2,
		NewRadius:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{
		BatchSeconds: 1,
		InitRecords:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.Run(stream.NewSliceSource(blobStream(1000, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 900 {
		t.Errorf("Records = %d", stats.Records)
	}
	clustering, err := pl.Offline()
	if err != nil {
		t.Fatal(err)
	}
	a := clustering.Assign(vector.Vector{0, 0, 0, 0})
	b := clustering.Assign(vector.Vector{20, 20, 0, 0})
	if a < 0 || b < 0 || a == b {
		t.Errorf("blobs not separated: %d vs %d", a, b)
	}
}

func TestFacadeAllConstructors(t *testing.T) {
	sys, err := diststream.New(diststream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Parallelism() != 1 {
		t.Errorf("default parallelism = %d", sys.Parallelism())
	}
	if _, err := sys.NewCluStream(diststream.CluStreamOptions{}); err == nil {
		t.Error("clustream without Dim accepted")
	}
	if _, err := sys.NewDenStream(diststream.DenStreamOptions{}); err == nil {
		t.Error("denstream without Dim accepted")
	}
	if _, err := sys.NewDStream(diststream.DStreamOptions{}); err == nil {
		t.Error("dstream without Dim accepted")
	}
	if _, err := sys.NewClusTree(diststream.ClusTreeOptions{}); err == nil {
		t.Error("clustree without Dim accepted")
	}
	for name, build := range map[string]func() (diststream.Algorithm, error){
		"clustream": func() (diststream.Algorithm, error) {
			return sys.NewCluStream(diststream.CluStreamOptions{Dim: 3})
		},
		"denstream": func() (diststream.Algorithm, error) {
			return sys.NewDenStream(diststream.DenStreamOptions{Dim: 3})
		},
		"dstream": func() (diststream.Algorithm, error) {
			return sys.NewDStream(diststream.DStreamOptions{Dim: 3})
		},
		"clustree": func() (diststream.Algorithm, error) {
			return sys.NewClusTree(diststream.ClusTreeOptions{Dim: 3})
		},
	} {
		algo, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if algo.Name() != name {
			t.Errorf("algorithm name = %q, want %q", algo.Name(), name)
		}
		// Round-trip through the registry (the remote-worker path).
		rebuilt, err := sys.NewAlgorithm(algo.Params())
		if err != nil {
			t.Errorf("%s: registry round trip: %v", name, err)
		} else if rebuilt.Name() != name {
			t.Errorf("%s: rebuilt name %q", name, rebuilt.Name())
		}
	}
	if a := sys.NewSimple(diststream.SimpleOptions{}); a.Name() != "simple" {
		t.Errorf("simple name = %q", a.Name())
	}
	if _, err := sys.NewPipeline(nil, diststream.PipelineOptions{}); err == nil {
		t.Error("nil algorithm accepted")
	}
}

func TestFacadeOverTCPWorkers(t *testing.T) {
	diststream.RegisterWireTypes()
	algos, err := diststream.NewAlgorithmRegistry()
	if err != nil {
		t.Fatal(err)
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		t.Fatal(err)
	}
	workers, addrs, err := rpcexec.StartLocalCluster(2, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range workers {
			_ = w.Close()
		}
	}()
	sys, err := diststream.New(diststream.Options{WorkerAddrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Parallelism() != 2 {
		t.Fatalf("Parallelism = %d", sys.Parallelism())
	}
	algo, err := sys.NewDenStream(diststream.DenStreamOptions{Dim: 4, Epsilon: 2, Mu: 4, Beta: 0.5, Lambda: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{BatchSeconds: 1, InitRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.Run(stream.NewSliceSource(blobStream(500, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 400 {
		t.Errorf("Records = %d", stats.Records)
	}
}

func TestMaxBatchSecondsFacade(t *testing.T) {
	got, err := diststream.MaxBatchSeconds(0.01, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if got < 25 || got > 26 {
		t.Errorf("MaxBatchSeconds = %v", got)
	}
	if _, err := diststream.MaxBatchSeconds(0, 0); err == nil {
		t.Error("invalid params accepted")
	}
}
