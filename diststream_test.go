package diststream_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"diststream"
	"diststream/internal/core"
	"diststream/internal/mbsp"
	"diststream/internal/mbsp/rpcexec"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

func blobStream(n int, dim int) []diststream.Record {
	recs := make([]diststream.Record, n)
	for i := range recs {
		v := vector.New(dim)
		if i%2 == 0 {
			v[0], v[1] = 0.1*float64(i%5), 0
		} else {
			v[0], v[1] = 20+0.1*float64(i%5), 20
		}
		recs[i] = diststream.Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(float64(i) / 100),
			Values:    v,
			Label:     i % 2,
		}
	}
	return recs
}

func TestFacadeQuickstartFlow(t *testing.T) {
	sys, err := diststream.New(diststream.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Parallelism() != 4 {
		t.Errorf("Parallelism = %d", sys.Parallelism())
	}
	algo, err := sys.NewCluStream(diststream.CluStreamOptions{
		Dim:              4,
		MaxMicroClusters: 20,
		NumMacro:         2,
		NewRadius:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{
		BatchSeconds: 1,
		InitRecords:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.Run(stream.NewSliceSource(blobStream(1000, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 900 {
		t.Errorf("Records = %d", stats.Records)
	}
	clustering, err := pl.Offline()
	if err != nil {
		t.Fatal(err)
	}
	a := clustering.Assign(vector.Vector{0, 0, 0, 0})
	b := clustering.Assign(vector.Vector{20, 20, 0, 0})
	if a < 0 || b < 0 || a == b {
		t.Errorf("blobs not separated: %d vs %d", a, b)
	}
}

func TestFacadeAllConstructors(t *testing.T) {
	sys, err := diststream.New(diststream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Parallelism() != 1 {
		t.Errorf("default parallelism = %d", sys.Parallelism())
	}
	if _, err := sys.NewCluStream(diststream.CluStreamOptions{}); err == nil {
		t.Error("clustream without Dim accepted")
	}
	if _, err := sys.NewDenStream(diststream.DenStreamOptions{}); err == nil {
		t.Error("denstream without Dim accepted")
	}
	if _, err := sys.NewDStream(diststream.DStreamOptions{}); err == nil {
		t.Error("dstream without Dim accepted")
	}
	if _, err := sys.NewClusTree(diststream.ClusTreeOptions{}); err == nil {
		t.Error("clustree without Dim accepted")
	}
	for name, build := range map[string]func() (diststream.Algorithm, error){
		"clustream": func() (diststream.Algorithm, error) {
			return sys.NewCluStream(diststream.CluStreamOptions{Dim: 3})
		},
		"denstream": func() (diststream.Algorithm, error) {
			return sys.NewDenStream(diststream.DenStreamOptions{Dim: 3})
		},
		"dstream": func() (diststream.Algorithm, error) {
			return sys.NewDStream(diststream.DStreamOptions{Dim: 3})
		},
		"clustree": func() (diststream.Algorithm, error) {
			return sys.NewClusTree(diststream.ClusTreeOptions{Dim: 3})
		},
	} {
		algo, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if algo.Name() != name {
			t.Errorf("algorithm name = %q, want %q", algo.Name(), name)
		}
		// Round-trip through the registry (the remote-worker path).
		rebuilt, err := sys.NewAlgorithm(algo.Params())
		if err != nil {
			t.Errorf("%s: registry round trip: %v", name, err)
		} else if rebuilt.Name() != name {
			t.Errorf("%s: rebuilt name %q", name, rebuilt.Name())
		}
	}
	if a := sys.NewSimple(diststream.SimpleOptions{}); a.Name() != "simple" {
		t.Errorf("simple name = %q", a.Name())
	}
	if _, err := sys.NewPipeline(nil, diststream.PipelineOptions{}); err == nil {
		t.Error("nil algorithm accepted")
	}
}

func TestFacadeOverTCPWorkers(t *testing.T) {
	diststream.RegisterWireTypes()
	algos, err := diststream.NewAlgorithmRegistry()
	if err != nil {
		t.Fatal(err)
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		t.Fatal(err)
	}
	workers, addrs, err := rpcexec.StartLocalCluster(2, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range workers {
			_ = w.Close()
		}
	}()
	sys, err := diststream.New(diststream.Options{WorkerAddrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Parallelism() != 2 {
		t.Fatalf("Parallelism = %d", sys.Parallelism())
	}
	algo, err := sys.NewDenStream(diststream.DenStreamOptions{Dim: 4, Epsilon: 2, Mu: 4, Beta: 0.5, Lambda: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{BatchSeconds: 1, InitRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.Run(stream.NewSliceSource(blobStream(500, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 400 {
		t.Errorf("Records = %d", stats.Records)
	}
}

func TestMaxBatchSecondsFacade(t *testing.T) {
	got, err := diststream.MaxBatchSeconds(0.01, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if got < 25 || got > 26 {
		t.Errorf("MaxBatchSeconds = %v", got)
	}
	if _, err := diststream.MaxBatchSeconds(0, 0); err == nil {
		t.Error("invalid params accepted")
	}
}

// startFacadeCluster boots a TCP cluster whose workers mirror the facade's
// registries, for fault-tolerance tests against the public API.
func startFacadeCluster(t testing.TB, n int) ([]*rpcexec.Worker, []string) {
	t.Helper()
	diststream.RegisterWireTypes()
	algos, err := diststream.NewAlgorithmRegistry()
	if err != nil {
		t.Fatal(err)
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		t.Fatal(err)
	}
	workers, addrs, err := rpcexec.StartLocalCluster(n, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, w := range workers {
			_ = w.Close()
		}
	})
	return workers, addrs
}

type facadeRunResult struct {
	stats       diststream.RunStats
	modelLen    int
	modelWeight float64
}

// runFacadeTCP runs a CluStream pipeline over a fresh 3-worker TCP
// cluster; with kill set, one worker crashes at the start of batch 3.
func runFacadeTCP(t *testing.T, kill bool) facadeRunResult {
	t.Helper()
	workers, addrs := startFacadeCluster(t, 3)
	sys, err := diststream.New(diststream.Options{
		WorkerAddrs: addrs,
		RPC: diststream.RPCOptions{
			CallTimeout: 10 * time.Second,
			MaxRetries:  1,
			Backoff:     10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	algo, err := sys.NewCluStream(diststream.CluStreamOptions{
		Dim:              4,
		MaxMicroClusters: 20,
		NumMacro:         2,
		NewRadius:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	batches := 0
	pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{
		BatchSeconds: 1,
		InitRecords:  100,
		OnBatch: func(stream.Batch, *diststream.Model) error {
			batches++
			if kill && batches == 2 {
				// Crash the worker on its next task: the driver must
				// re-dispatch onto the two survivors mid-run.
				workers[2].SetFault(func(string, int) (rpcexec.Fault, time.Duration) {
					return rpcexec.FaultCrash, 0
				})
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.RunContext(context.Background(), stream.NewSliceSource(blobStream(1200, 4)))
	if err != nil {
		t.Fatal(err)
	}
	return facadeRunResult{
		stats:       stats,
		modelLen:    pl.Model().Len(),
		modelWeight: pl.Model().TotalWeight(),
	}
}

// The ISSUE acceptance scenario: a TCP pipeline run survives one worker
// killed mid-run, produces clustering identical to an undisturbed run, and
// reports the retries in RunStats.
func TestFacadeSurvivesWorkerCrashIdenticalClustering(t *testing.T) {
	clean := runFacadeTCP(t, false)
	injured := runFacadeTCP(t, true)
	if injured.stats.Records != clean.stats.Records || injured.stats.Batches != clean.stats.Batches {
		t.Errorf("injured run processed %d records / %d batches, clean %d / %d",
			injured.stats.Records, injured.stats.Batches, clean.stats.Records, clean.stats.Batches)
	}
	if injured.modelLen != clean.modelLen || injured.modelWeight != clean.modelWeight {
		t.Errorf("models diverged: injured %d clusters / weight %v, clean %d / %v",
			injured.modelLen, injured.modelWeight, clean.modelLen, clean.modelWeight)
	}
	if clean.stats.TaskRetries != 0 || clean.stats.LostWorkers != 0 {
		t.Errorf("clean run reported %d retries, %d lost workers", clean.stats.TaskRetries, clean.stats.LostWorkers)
	}
	if injured.stats.TaskRetries < 1 {
		t.Errorf("injured run reported no retries: %+v", injured.stats)
	}
	if injured.stats.LostWorkers != 1 {
		t.Errorf("LostWorkers = %d, want 1", injured.stats.LostWorkers)
	}
}

func TestFacadeRunContextCancelStopsWithinOneBatch(t *testing.T) {
	sys, err := diststream.New(diststream.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	algo, err := sys.NewCluStream(diststream.CluStreamOptions{
		Dim:              4,
		MaxMicroClusters: 20,
		NumMacro:         2,
		NewRadius:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{
		BatchSeconds: 1,
		InitRecords:  100,
		OnBatch: func(stream.Batch, *diststream.Model) error {
			cancel()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.RunContext(ctx, stream.NewSliceSource(blobStream(2000, 4)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Batches != 1 {
		t.Errorf("Batches = %d, want 1 (cancel honored within one batch)", stats.Batches)
	}
}

func TestFacadeOnSnapshotPublishes(t *testing.T) {
	sys, err := diststream.New(diststream.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	algo := sys.NewSimple(diststream.SimpleOptions{Radius: 2})

	var published []diststream.Published
	pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{
		BatchSeconds: 1,
		InitRecords:  100,
		OnSnapshot:   func(pub diststream.Published) { published = append(published, pub) },
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.Run(stream.NewSliceSource(blobStream(1000, 4)))
	if err != nil {
		t.Fatal(err)
	}
	// One publication right after init, then one per batch.
	if len(published) != stats.Batches+1 {
		t.Fatalf("published %d snapshots, want %d (init + one per batch)", len(published), stats.Batches+1)
	}
	if published[0].Batch != 0 {
		t.Errorf("first (warm-up) publication reports batch %d, want 0", published[0].Batch)
	}
	last := published[len(published)-1]
	if last.Batch != stats.Batches || last.Stats.Records != stats.Records {
		t.Errorf("last publication = batch %d / %d records, want %d / %d",
			last.Batch, last.Stats.Records, stats.Batches, stats.Records)
	}
	if len(last.MCs) == 0 || last.Index == nil || last.Search == nil {
		t.Fatal("publication is missing model, index or search snapshot")
	}
	if len(last.Index.IDs) != len(last.MCs) || last.Search.Len() != len(last.MCs) {
		t.Errorf("index/search sized %d/%d, model has %d MCs",
			len(last.Index.IDs), last.Search.Len(), len(last.MCs))
	}
	// Snapshots are deep copies: mutating the live model (by running
	// offline clustering, which reads it) must not be observable, and the
	// published MCs must differ in identity from the live ones.
	live := pl.Model().List()
	for _, mc := range last.MCs {
		for _, lm := range live {
			if mc == lm {
				t.Fatal("published MC aliases the live model")
			}
		}
	}
}
