module diststream

go 1.22
