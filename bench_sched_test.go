// Benchmarks for the pipelined execution schedule: end-to-end batch
// latency of bsp vs pipelined over a real 4-worker TCP cluster, plain
// and with per-batch durable checkpointing (the workload where the
// overlapped publish/checkpoint tail pays off). `make bench-json`
// archives the numbers in BENCH_6.json.
package diststream_test

import (
	"context"
	"testing"
	"time"

	"diststream"
	"diststream/internal/stream"
)

// benchSchedule runs the figure workload end to end over a fresh
// 4-worker TCP cluster under one schedule, reporting mean steady-state
// batch latency. The warm-up (model initialization k-means plus the
// first batch, which also ships the config broadcast) runs outside the
// timed region: the schedules only differ in steady-state batch
// execution.
func benchSchedule(b *testing.B, kind diststream.ScheduleKind, checkpoint bool) {
	_, addrs := startFacadeCluster(b, 4)
	recs := deltaBlobStream(8000, 34)
	warm := 300 // 200 init records + one full batch
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	batches := 0
	var wall time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := diststream.New(diststream.Options{
			WorkerAddrs: addrs,
			Execution: diststream.ExecutionOptions{
				Schedule:       kind,
				DeltaBroadcast: true,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		algo, err := sys.NewCluStream(diststream.CluStreamOptions{Dim: 34})
		if err != nil {
			b.Fatal(err)
		}
		opts := diststream.PipelineOptions{BatchSeconds: 0.1, InitRecords: 200}
		if checkpoint {
			opts.Checkpoint = &diststream.CheckpointConfig{Dir: b.TempDir(), EveryNBatches: 1}
		}
		pl, err := sys.NewPipeline(algo, opts)
		if err != nil {
			b.Fatal(err)
		}
		warmStats, err := pl.RunContext(ctx, stream.NewSliceSource(recs[:warm]))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		stats, err := pl.RunContext(ctx, stream.NewSliceSource(recs[warm:]))
		b.StopTimer()
		if cerr := sys.Close(); cerr != nil {
			b.Fatal(cerr)
		}
		if err != nil {
			b.Fatal(err)
		}
		batches += stats.Batches - warmStats.Batches
		wall += stats.TotalWall
		b.StartTimer()
	}
	b.StopTimer()
	if batches > 0 {
		b.ReportMetric(wall.Seconds()*1e3/float64(batches), "ms/batch")
	}
}

func BenchmarkScheduleTCP(b *testing.B) {
	for _, kind := range []diststream.ScheduleKind{diststream.ScheduleBSP, diststream.SchedulePipelined} {
		b.Run(string(kind), func(b *testing.B) { benchSchedule(b, kind, false) })
	}
}

func BenchmarkScheduleTCPCheckpointed(b *testing.B) {
	for _, kind := range []diststream.ScheduleKind{diststream.ScheduleBSP, diststream.SchedulePipelined} {
		b.Run(string(kind), func(b *testing.B) { benchSchedule(b, kind, true) })
	}
}
