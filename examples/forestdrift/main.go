// Forest-cover drift: a CoverType-like stream whose cluster centers
// drift gradually (forest cover types shifting across elevation bands).
// The example runs DistStream-D-Stream, whose grid lookup makes the
// assign step O(1) per record, and shows how the dense-grid macro
// clustering tracks the moving distribution over time.
//
//	go run ./examples/forestdrift
package main

import (
	"fmt"
	"os"

	"diststream"
	"diststream/internal/datagen"
	"diststream/internal/harness"
	"diststream/internal/stream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "forestdrift:", err)
		os.Exit(1)
	}
}

func run() error {
	ds, err := harness.LoadDataset(datagen.CovTypeSim, 30000, 150, 23)
	if err != nil {
		return err
	}
	fmt.Printf("streaming %d cartographic records, gradual drift (stability index %.3f)\n",
		len(ds.Records), datagen.StabilityIndex(ds.Records, 20))

	sys, err := diststream.New(diststream.Options{Parallelism: 4})
	if err != nil {
		return err
	}
	defer sys.Close()

	algo, err := sys.NewDStream(diststream.DStreamOptions{
		Dim:             ds.Records[0].Dim(),
		GridDims:        4,
		GridSize:        2 * ds.LeadRadius,
		Lambda:          0.998,
		DenseThreshold:  3,
		SparseThreshold: 0.4,
	})
	if err != nil {
		return err
	}

	pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{
		BatchSeconds: 20,
		InitRecords:  1000,
		OnBatch: func(batch stream.Batch, model *diststream.Model) error {
			clustering, err := algo.Offline(model)
			if err != nil {
				return err
			}
			// Report how the densest macro-cluster moves: drift made
			// visible.
			best := -1
			var bestW float64
			for i, macro := range clustering.Macros {
				if macro.Weight > bestW {
					best, bestW = i, macro.Weight
				}
			}
			if best < 0 {
				fmt.Printf("t=%5.0fs  no dense regions yet (%d grids live)\n",
					float64(batch.End), model.Len())
				return nil
			}
			c := clustering.Macros[best].Center
			fmt.Printf("t=%5.0fs  %d cover types over %3d grids; densest at (%+.2f, %+.2f) weight %.0f\n",
				float64(batch.End), clustering.NumClusters(), model.Len(), c[0], c[1], bestW)
			return nil
		},
	})
	if err != nil {
		return err
	}
	stats, err := pl.Run(stream.NewSliceSource(ds.Records))
	if err != nil {
		return err
	}
	fmt.Printf("\ndone: %d records in %d batches (%.0f records/s)\n",
		stats.Records, stats.Batches, stats.Throughput())
	return nil
}
