// Intrusion detection: the paper's motivating scenario (§II-A). A
// KDD-99-like TCP connection stream — normal traffic plus attack waves
// that emerge, drift, and vanish — is clustered online with
// DistStream-DenStream. After every mini-batch the example runs the
// offline phase and reports newly appeared macro-clusters: emerging
// attack patterns a security analyst would act on.
//
//	go run ./examples/intrusion
package main

import (
	"fmt"
	"os"

	"diststream"
	"diststream/internal/datagen"
	"diststream/internal/harness"
	"diststream/internal/stream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "intrusion:", err)
		os.Exit(1)
	}
}

func run() error {
	// kdd99-sim: 3 long-standing traffic clusters + 20 attack bursts.
	ds, err := harness.LoadDataset(datagen.KDD99Sim, 30000, 150, 11)
	if err != nil {
		return err
	}
	fmt.Printf("streaming %d connection records (%d features) at %.0f rec/s\n",
		len(ds.Records), ds.Records[0].Dim(), ds.Rate)

	sys, err := diststream.New(diststream.Options{Parallelism: 4})
	if err != nil {
		return err
	}
	defer sys.Close()

	algo, err := sys.NewDenStream(diststream.DenStreamOptions{
		Dim:     ds.Records[0].Dim(),
		Epsilon: 1.2 * ds.ClusterRadius,
		Mu:      10,
		Beta:    0.25,
		Lambda:  0.25,
	})
	if err != nil {
		return err
	}

	// Track macro-cluster counts across batches: a jump means a new
	// pattern (attack wave) has become dense enough to surface.
	prevClusters := -1
	pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{
		BatchSeconds: 10,
		InitRecords:  1000,
		OnBatch: func(batch stream.Batch, model *diststream.Model) error {
			clustering, err := algo.Offline(model)
			if err != nil {
				return err
			}
			n := clustering.NumClusters()
			switch {
			case prevClusters < 0:
				fmt.Printf("t=%5.0fs  baseline: %d traffic patterns, %d micro-clusters\n",
					float64(batch.End), n, model.Len())
			case n > prevClusters:
				fmt.Printf("t=%5.0fs  ALERT: %d new pattern(s) emerged (%d total) — possible attack wave\n",
					float64(batch.End), n-prevClusters, n)
			case n < prevClusters:
				fmt.Printf("t=%5.0fs  %d pattern(s) faded (%d total)\n",
					float64(batch.End), prevClusters-n, n)
			}
			prevClusters = n
			return nil
		},
	})
	if err != nil {
		return err
	}
	stats, err := pl.Run(stream.NewSliceSource(ds.Records))
	if err != nil {
		return err
	}
	fmt.Printf("\ndone: %d records, %d batches, %d outlier micro-clusters created (%.0f records/s)\n",
		stats.Records, stats.Batches, stats.CreatedMCs, stats.Throughput())
	return nil
}
