// Custom algorithm: the paper's claim is that any online-offline stream
// clustering algorithm fits DistStream's four developer APIs —
// micro-cluster representation, distance computation, local update, and
// global update (§VI). This example implements a tiny custom algorithm
// ("countsketch": fixed-radius counting spheres with hard expiry, no
// decay) directly against the core.Algorithm interface, registers it, and
// runs it through the same order-aware pipeline as the shipped
// algorithms.
//
//	go run ./examples/customalgo
package main

import (
	"fmt"
	"math"
	"os"

	"diststream"
	"diststream/internal/core"
	"diststream/internal/datagen"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// sphereMC is the micro-cluster representation (API 1): a fixed center
// with a record count and a hard expiry time.
type sphereMC struct {
	Id      uint64
	Anchor  vector.Vector
	Count   float64
	Born    vclock.Time
	Touched vclock.Time
}

func (m *sphereMC) ID() uint64               { return m.Id }
func (m *sphereMC) SetID(id uint64)          { m.Id = id }
func (m *sphereMC) Center() vector.Vector    { return m.Anchor.Clone() }
func (m *sphereMC) Weight() float64          { return m.Count }
func (m *sphereMC) CreatedAt() vclock.Time   { return m.Born }
func (m *sphereMC) LastUpdated() vclock.Time { return m.Touched }
func (m *sphereMC) Clone() core.MicroCluster {
	out := *m
	out.Anchor = m.Anchor.Clone()
	return &out
}

// countSketch implements core.Algorithm.
type countSketch struct {
	radius float64
	ttl    float64 // seconds a sphere lives without updates
}

func (a *countSketch) Name() string { return "countsketch" }

func (a *countSketch) Params() core.Params {
	return core.Params{
		Name:   "countsketch",
		Floats: map[string]float64{"radius": a.radius, "ttl": a.ttl},
	}
}

// Init: one sphere per warm-up record that no earlier sphere covers.
func (a *countSketch) Init(records []stream.Record) ([]core.MicroCluster, error) {
	var out []core.MicroCluster
	for _, rec := range records {
		covered := false
		for _, mc := range out {
			if vector.Distance(rec.Values, mc.(*sphereMC).Anchor) <= a.radius {
				a.Update(mc, rec)
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, a.Create(rec))
		}
	}
	return out, nil
}

// NewSnapshot: distance computation (API 2) — nearest anchor scan.
func (a *countSketch) NewSnapshot(mcs []core.MicroCluster) core.Snapshot {
	return &sphereSnapshot{mcs: mcs, radius: a.radius}
}

// Update: the local update (API 3). The anchor is immutable; only the
// count and the freshness timestamp advance.
func (a *countSketch) Update(mc core.MicroCluster, rec stream.Record) {
	m := mc.(*sphereMC)
	m.Count++
	if rec.Timestamp > m.Touched {
		m.Touched = rec.Timestamp
	}
}

func (a *countSketch) Create(rec stream.Record) core.MicroCluster {
	return &sphereMC{
		Anchor:  rec.Values.Clone(),
		Count:   1,
		Born:    rec.Timestamp,
		Touched: rec.Timestamp,
	}
}

func (a *countSketch) AbsorbIntoNew(mc core.MicroCluster, rec stream.Record) bool {
	return vector.Distance(rec.Values, mc.(*sphereMC).Anchor) <= a.radius
}

// GlobalUpdate: the global update (API 4) — admit/replace in the order
// the pipeline provides, expire spheres idle longer than the TTL.
func (a *countSketch) GlobalUpdate(model *core.Model, updates []core.Update, now vclock.Time) error {
	for _, u := range updates {
		switch u.Kind {
		case core.KindUpdated:
			if model.Get(u.MC.ID()) == nil {
				model.Add(u.MC)
			} else if err := model.Replace(u.MC); err != nil {
				return err
			}
		case core.KindCreated:
			model.Add(u.MC)
		}
	}
	for _, mc := range model.List() {
		if float64(now-mc.LastUpdated()) > a.ttl {
			model.Remove(mc.ID())
		}
	}
	return nil
}

// Offline: every live sphere is its own macro-cluster.
func (a *countSketch) Offline(model *core.Model) (*core.Clustering, error) {
	mcs := model.List()
	centers := make([]vector.Vector, len(mcs))
	labels := make([]int, len(mcs))
	macros := make([]core.MacroCluster, len(mcs))
	for i, mc := range mcs {
		centers[i] = mc.Center()
		labels[i] = i
		macros[i] = core.MacroCluster{
			Label: i, Members: []uint64{mc.ID()},
			Center: mc.Center(), Weight: mc.Weight(),
		}
	}
	c := core.NewClustering(macros, centers, labels)
	c.SetNoiseCutoff(2 * a.radius)
	return c, nil
}

type sphereSnapshot struct {
	mcs    []core.MicroCluster
	radius float64
}

func (s *sphereSnapshot) Nearest(rec stream.Record) (uint64, bool, bool) {
	best, bestD := -1, math.Inf(1)
	for i, mc := range s.mcs {
		if d := vector.Distance(rec.Values, mc.(*sphereMC).Anchor); d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return 0, false, false
	}
	return s.mcs[best].ID(), bestD <= s.radius, true
}

func (s *sphereSnapshot) Get(id uint64) core.MicroCluster {
	for _, mc := range s.mcs {
		if mc.ID() == id {
			return mc
		}
	}
	return nil
}

func (s *sphereSnapshot) Len() int { return len(s.mcs) }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "customalgo:", err)
		os.Exit(1)
	}
}

func run() error {
	recs, err := datagen.Generate(datagen.Spec{
		Name:    "custom",
		Records: 10000,
		Dim:     4,
		Clusters: []datagen.ClusterSpec{
			{Center: vector.Vector{-5, -5, 0, 0}, Std: 0.4, BaseWeight: 0.6},
			{Center: vector.Vector{5, 5, 0, 0}, Std: 0.4, BaseWeight: 0.4},
		},
		Rate: 100,
		Seed: 3,
	})
	if err != nil {
		return err
	}

	sys, err := diststream.New(diststream.Options{Parallelism: 4})
	if err != nil {
		return err
	}
	defer sys.Close()

	// Register the factory: pipeline tasks reconstruct the algorithm from
	// its serialized Params, whether they run in-process or on remote
	// workers. (For TCP workers you would also register the gob types.)
	err = sys.RegisterAlgorithm("countsketch", func(p core.Params) (diststream.Algorithm, error) {
		return &countSketch{
			radius: p.Float("radius", 2),
			ttl:    p.Float("ttl", 30),
		}, nil
	})
	if err != nil {
		return err
	}
	algo := &countSketch{radius: 2, ttl: 30}
	pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{
		BatchSeconds: 5,
		InitRecords:  200,
	})
	if err != nil {
		return err
	}
	stats, err := pl.Run(stream.NewSliceSource(recs))
	if err != nil {
		return err
	}
	clustering, err := pl.Offline()
	if err != nil {
		return err
	}
	fmt.Printf("custom algorithm %q: %d records, %d batches, %d spheres live\n",
		algo.Name(), stats.Records, stats.Batches, pl.Model().Len())
	for _, macro := range clustering.Macros {
		fmt.Printf("  sphere %d at (%+.1f, %+.1f) holds %.0f records\n",
			macro.Label, macro.Center[0], macro.Center[1], macro.Weight)
	}
	return nil
}
