// Quickstart: cluster a synthetic evolving stream with DistStream-CluStream
// on 4 in-process workers, then run the offline phase and print the
// macro-clusters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"diststream"
	"diststream/internal/datagen"
	"diststream/internal/stream"
	"diststream/internal/vector"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A stream with three moving Gaussian clusters, 20k records at
	// 200 records/second of virtual time.
	spec := datagen.Spec{
		Name:    "quickstart",
		Records: 20000,
		Dim:     8,
		Clusters: []datagen.ClusterSpec{
			{Center: center(8, -6, 0), Std: 0.5, BaseWeight: 0.5},
			{Center: center(8, 6, 6), Std: 0.5, BaseWeight: 0.3},
			{Center: center(8, 0, -7), Std: 0.5, BaseWeight: 0.2},
		},
		Rate: 200,
		Seed: 7,
	}
	records, err := datagen.Generate(spec)
	if err != nil {
		return err
	}

	// A System owns the execution engine; Parallelism is the paper's p.
	sys, err := diststream.New(diststream.Options{Parallelism: 4})
	if err != nil {
		return err
	}
	defer sys.Close()

	algo, err := sys.NewCluStream(diststream.CluStreamOptions{
		Dim:              8,
		MaxMicroClusters: 30, // 10x the real cluster count, per the paper
		NumMacro:         3,
		NewRadius:        1.5,
	})
	if err != nil {
		return err
	}

	// The pipeline consumes the stream in 10-second mini-batches,
	// preserving arrival order in every update step.
	pl, err := sys.NewPipeline(algo, diststream.PipelineOptions{
		BatchSeconds: 10,
		InitRecords:  500,
	})
	if err != nil {
		return err
	}
	stats, err := pl.Run(stream.NewSliceSource(records))
	if err != nil {
		return err
	}
	fmt.Printf("processed %d records in %d mini-batches (%.0f records/s)\n",
		stats.Records, stats.Batches, stats.Throughput())
	fmt.Printf("model holds %d micro-clusters; %d created from outliers\n",
		pl.Model().Len(), stats.CreatedMCs)

	// Offline phase: weighted k-means over the micro-clusters.
	clustering, err := pl.Offline()
	if err != nil {
		return err
	}
	fmt.Printf("offline phase found %d macro-clusters:\n", clustering.NumClusters())
	for _, macro := range clustering.Macros {
		fmt.Printf("  cluster %d: weight %.0f, %d micro-clusters, center[0..1] = (%.2f, %.2f)\n",
			macro.Label, macro.Weight, len(macro.Members), macro.Center[0], macro.Center[1])
	}

	// Classify a few fresh points against the clustering.
	for _, probe := range []vector.Vector{center(8, -6, 0), center(8, 6, 6), center(8, 0, -7)} {
		fmt.Printf("  point (%.0f, %.0f, ...) -> cluster %d\n",
			probe[0], probe[1], clustering.Assign(probe))
	}
	return nil
}

// center builds an 8-dim point with the first two coordinates set.
func center(dim int, x, y float64) vector.Vector {
	v := vector.New(dim)
	v[0], v[1] = x, y
	return v
}
