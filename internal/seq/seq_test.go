package seq

import (
	"errors"
	"testing"

	"diststream/internal/core"
	"diststream/internal/mbsp"
	"diststream/internal/simple"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

func twoBlobStream(n int, rate float64) []stream.Record {
	recs := make([]stream.Record, n)
	for i := range recs {
		var v vector.Vector
		if i%2 == 0 {
			v = vector.Vector{0 + 0.1*float64(i%5), 0}
		} else {
			v = vector.Vector{20 + 0.1*float64(i%5), 20}
		}
		recs[i] = stream.Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(float64(i) / rate),
			Values:    v,
			Label:     i % 2,
		}
	}
	return recs
}

func TestNewRunnerValidation(t *testing.T) {
	if _, err := NewRunner(Config{}); err == nil {
		t.Error("nil algorithm accepted")
	}
	r, err := NewRunner(Config{Algorithm: simple.New(simple.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	if r.cfg.InitRecords != 500 || r.cfg.SnapshotRefresh != 512 {
		t.Errorf("defaults not applied: %+v", r.cfg)
	}
}

func TestRunnerClustersTwoBlobs(t *testing.T) {
	r, err := NewRunner(Config{
		Algorithm:   simple.New(simple.Config{}),
		InitRecords: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := r.Run(stream.NewSliceSource(twoBlobStream(1000, 100)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Initialized() {
		t.Fatal("not initialized")
	}
	if stats.Records != 950 || stats.InitRecords != 50 {
		t.Errorf("stats = %+v", stats)
	}
	if n := r.Model().Len(); n < 2 || n > 6 {
		t.Errorf("model size = %d, want ~2", n)
	}
	clustering, err := r.Offline()
	if err != nil {
		t.Fatal(err)
	}
	if clustering.Assign(vector.Vector{0, 0}) == clustering.Assign(vector.Vector{20, 20}) {
		t.Error("blobs not separated")
	}
	if stats.Throughput() <= 0 {
		t.Error("no throughput")
	}
}

func TestRunnerStrictArrivalOrder(t *testing.T) {
	r, err := NewRunner(Config{
		Algorithm:   simple.New(simple.Config{TrackUpdates: true}),
		InitRecords: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]stream.Record, 200)
	for i := range recs {
		recs[i] = stream.Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(float64(i) * 0.02),
			Values:    vector.Vector{0.01 * float64(i%3), 0},
		}
	}
	if _, err := r.Run(stream.NewSliceSource(recs), nil); err != nil {
		t.Fatal(err)
	}
	if r.Model().Len() != 1 {
		t.Fatalf("model size = %d", r.Model().Len())
	}
	log := r.Model().List()[0].(*simple.MC).Log
	if len(log) != 200 {
		t.Fatalf("log size = %d", len(log))
	}
	for i := 1; i < len(log); i++ {
		if log[i] != log[i-1]+1 {
			t.Fatalf("sequential order broken at %d", i)
		}
	}
}

func TestRunnerCreatesOutlierMCs(t *testing.T) {
	r, err := NewRunner(Config{
		Algorithm:   simple.New(simple.Config{}),
		InitRecords: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var recs []stream.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, stream.Record{
			Seq: uint64(i), Timestamp: vclock.Time(float64(i) * 0.1),
			Values: vector.Vector{0, 0},
		})
	}
	recs = append(recs, stream.Record{
		Seq: 5, Timestamp: 0.6, Values: vector.Vector{50, 50},
	})
	stats, err := r.Run(stream.NewSliceSource(recs), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CreatedMCs != 1 {
		t.Errorf("CreatedMCs = %d, want 1", stats.CreatedMCs)
	}
	if r.Model().Len() != 2 {
		t.Errorf("model size = %d, want 2", r.Model().Len())
	}
}

func TestRunnerHook(t *testing.T) {
	r, err := NewRunner(Config{
		Algorithm:   simple.New(simple.Config{}),
		InitRecords: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var hookCount int
	_, err = r.Run(stream.NewSliceSource(twoBlobStream(100, 100)),
		func(rec stream.Record, model *core.Model) error {
			hookCount++
			if model.Len() == 0 {
				return errors.New("empty model")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if hookCount != 90 {
		t.Errorf("hook ran %d times, want 90 (post-init records)", hookCount)
	}
	// Hook errors propagate.
	r2, err := NewRunner(Config{Algorithm: simple.New(simple.Config{}), InitRecords: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r2.Run(stream.NewSliceSource(twoBlobStream(10, 100)),
		func(stream.Record, *core.Model) error { return errors.New("stop") })
	if err == nil {
		t.Error("hook error not propagated")
	}
}

func TestRunnerInitAtEOF(t *testing.T) {
	r, err := NewRunner(Config{
		Algorithm:   simple.New(simple.Config{}),
		InitRecords: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := r.Run(stream.NewSliceSource(twoBlobStream(40, 100)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Initialized() {
		t.Error("not initialized at EOF")
	}
	if stats.Records != 0 {
		t.Errorf("Records = %d", stats.Records)
	}
	if r.Model().Len() != 2 {
		t.Errorf("model size = %d, want 2", r.Model().Len())
	}
}

// TestRunnerMatchesPipelineOnStableStream verifies the paper's central
// claim scaffold: on a stream, the sequential model and the order-aware
// mini-batch pipeline produce closely matching models (the pipeline's
// only divergence is intra-batch staleness).
func TestRunnerMatchesPipelineOnStableStream(t *testing.T) {
	algo := simple.New(simple.Config{})
	recs := twoBlobStream(800, 100)

	runner, err := NewRunner(Config{Algorithm: algo, InitRecords: 40})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(stream.NewSliceSource(recs), nil); err != nil {
		t.Fatal(err)
	}

	// Mini-batch counterpart.
	reg := newTestMBSPRegistry(t)
	pl := newTestPipeline(t, reg, algo, 4)
	if _, err := pl.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}

	seqTotal := runner.Model().TotalWeight()
	batchTotal := pl.Model().TotalWeight()
	if seqTotal == 0 || batchTotal == 0 {
		t.Fatal("degenerate models")
	}
	ratio := batchTotal / seqTotal
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("total weight diverged: seq=%v batch=%v", seqTotal, batchTotal)
	}
	if runner.Model().Len() != pl.Model().Len() {
		t.Errorf("model sizes differ: %d vs %d", runner.Model().Len(), pl.Model().Len())
	}
}

// --- pipeline wiring helpers ----------------------------------------------

func newTestMBSPRegistry(t *testing.T) *core.AlgorithmRegistry {
	t.Helper()
	algos := core.NewAlgorithmRegistry()
	if err := simple.Register(algos); err != nil {
		t.Fatal(err)
	}
	return algos
}

func newTestPipeline(t *testing.T, algos *core.AlgorithmRegistry, algo core.Algorithm, p int) *core.Pipeline {
	t.Helper()
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		t.Fatal(err)
	}
	exec, err := mbsp.NewLocalExecutor(mbsp.LocalConfig{Parallelism: p, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = exec.Close() })
	eng, err := mbsp.NewEngine(exec)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPipeline(core.Config{
		Algorithm:     algo,
		Engine:        eng,
		BatchInterval: 1,
		InitRecords:   40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}
