// Package seq implements the one-record-at-a-time update model (paper
// §II-B): the strict sequential baseline equivalent to the MOA library
// implementations the paper compares against. It runs the same Algorithm
// implementations as the DistStream pipeline, so measured differences
// isolate the update model rather than implementation details.
//
// Per record the runner performs the full sequential feedback loop: find
// the closest micro-cluster on the *current* model, update or create, then
// immediately run the algorithm's global update (merge/delete) before the
// next record — exactly the one-by-one loop whose serialization the paper
// sets out to relax.
package seq

import (
	"errors"
	"fmt"
	"io"
	"time"

	"diststream/internal/core"
	"diststream/internal/stream"
)

// Config configures a sequential runner.
type Config struct {
	// Algorithm is the stream clustering algorithm.
	Algorithm core.Algorithm
	// InitRecords is the warm-up sample for batch-mode initialization.
	// Default 500.
	InitRecords int
	// SnapshotRefresh forces a search-snapshot rebuild after this many
	// records even without structural changes, bounding staleness of
	// center-sensitive search structures (ClusTree). Default 512.
	SnapshotRefresh int
}

// Stats summarizes a sequential run.
type Stats struct {
	Records     int
	InitRecords int
	CreatedMCs  int
	UpdatedMCs  int
	TotalWall   time.Duration
}

// Throughput returns processed records per wall-clock second.
func (s Stats) Throughput() float64 {
	if s.TotalWall <= 0 {
		return 0
	}
	return float64(s.Records) / s.TotalWall.Seconds()
}

// RecordHook runs after each processed record (post global update).
// Returning an error aborts the run.
type RecordHook func(rec stream.Record, model *core.Model) error

// Runner executes the sequential update model.
type Runner struct {
	cfg   Config
	model *core.Model
	stats Stats

	snap        core.Snapshot
	snapVersion uint64
	snapAge     int

	initBuf         []stream.Record
	initialized     bool
	lastMaintenance float64
}

// NewRunner validates cfg and builds a runner.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Algorithm == nil {
		return nil, errors.New("seq: config needs an Algorithm")
	}
	if cfg.InitRecords <= 0 {
		cfg.InitRecords = 500
	}
	if cfg.SnapshotRefresh <= 0 {
		cfg.SnapshotRefresh = 512
	}
	return &Runner{cfg: cfg, model: core.NewModel()}, nil
}

// Model returns the live model.
func (r *Runner) Model() *core.Model { return r.model }

// Stats returns the accumulated statistics.
func (r *Runner) Stats() Stats { return r.stats }

// Initialized reports whether warm-up completed.
func (r *Runner) Initialized() bool { return r.initialized }

// Offline runs the algorithm's offline phase on the current model.
func (r *Runner) Offline() (*core.Clustering, error) {
	return r.cfg.Algorithm.Offline(r.model)
}

// Process handles a single record through the sequential loop.
func (r *Runner) Process(rec stream.Record) error {
	if !r.initialized {
		r.initBuf = append(r.initBuf, rec)
		if len(r.initBuf) >= r.cfg.InitRecords {
			return r.runInit()
		}
		return nil
	}
	r.stats.Records++
	snap := r.snapshot()

	var update core.Update
	id, absorbable, ok := snap.Nearest(rec)
	if ok && absorbable {
		mc := r.model.Get(id)
		if mc == nil {
			return fmt.Errorf("seq: snapshot returned dead micro-cluster %d", id)
		}
		// In-place update of the live micro-cluster: the sequential model
		// has no staleness.
		r.cfg.Algorithm.Update(mc, rec)
		r.stats.UpdatedMCs++
		update = core.Update{
			Kind:      core.KindUpdated,
			MC:        mc,
			Absorbed:  1,
			OrderTime: rec.Timestamp,
			OrderSeq:  rec.Seq,
		}
	} else {
		mc := r.cfg.Algorithm.Create(rec)
		r.stats.CreatedMCs++
		update = core.Update{
			Kind:      core.KindCreated,
			MC:        mc,
			Absorbed:  1,
			OrderTime: rec.Timestamp,
			OrderSeq:  rec.Seq,
		}
	}
	// The one-by-one feedback loop. An in-place update of a live
	// micro-cluster needs no global reconciliation (Replace would be a
	// pointer no-op); like MOA, periodic maintenance (decay sweeps,
	// pruning) runs at an interval rather than per record. Creations
	// always reconcile immediately — merging and deletion are the
	// irreversible operations the feedback loop serializes.
	needGlobal := update.Kind == core.KindCreated
	if !needGlobal && float64(rec.Timestamp)-r.lastMaintenance >= maintenanceInterval {
		needGlobal = true
	}
	if needGlobal {
		if err := r.cfg.Algorithm.GlobalUpdate(r.model, []core.Update{update}, rec.Timestamp); err != nil {
			return fmt.Errorf("seq: global update: %w", err)
		}
		r.lastMaintenance = float64(rec.Timestamp)
	}
	r.model.SetNow(rec.Timestamp)
	return nil
}

// maintenanceInterval is the virtual-time period between maintenance
// global updates for records that were absorbed in place.
const maintenanceInterval = 0.5

// Run consumes the source to exhaustion, invoking hook (if non-nil) after
// every processed record.
func (r *Runner) Run(src stream.Source, hook RecordHook) (Stats, error) {
	start := time.Now()
	for {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return r.stats, err
		}
		wasOnline := r.initialized
		if err := r.Process(rec); err != nil {
			return r.stats, err
		}
		// The hook observes only records processed through the online
		// loop, not those consumed by warm-up initialization.
		if hook != nil && wasOnline {
			if err := hook(rec, r.model); err != nil {
				return r.stats, fmt.Errorf("seq: record hook: %w", err)
			}
		}
	}
	if err := r.finishInit(); err != nil {
		return r.stats, err
	}
	r.stats.TotalWall = time.Since(start)
	return r.stats, nil
}

// snapshot returns a search snapshot over the live micro-clusters,
// rebuilt when the model structure changed or the refresh budget expired.
func (r *Runner) snapshot() core.Snapshot {
	if r.snap != nil && r.snapVersion == r.model.Version() && r.snapAge < r.cfg.SnapshotRefresh {
		r.snapAge++
		return r.snap
	}
	r.snap = r.cfg.Algorithm.NewSnapshot(r.model.List())
	r.snapVersion = r.model.Version()
	r.snapAge = 0
	return r.snap
}

func (r *Runner) runInit() error {
	mcs, err := r.cfg.Algorithm.Init(r.initBuf)
	if err != nil {
		return fmt.Errorf("seq: init: %w", err)
	}
	for _, mc := range mcs {
		r.model.Add(mc)
	}
	r.stats.InitRecords = len(r.initBuf)
	r.model.SetNow(r.initBuf[len(r.initBuf)-1].Timestamp)
	r.initBuf = nil
	r.initialized = true
	return nil
}

func (r *Runner) finishInit() error {
	if r.initialized || len(r.initBuf) == 0 {
		return nil
	}
	return r.runInit()
}
