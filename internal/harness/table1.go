package harness

import (
	"diststream/internal/datagen"
)

// Table1Row is one dataset's characteristics (paper Table I), extended
// with the stability index that backs the §VII-B2 stability argument.
type Table1Row struct {
	Dataset   string
	Records   int
	Features  int
	Clusters  int
	Top3      [3]float64
	Stability float64
}

// Table1Result is the Table I reproduction.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 generates the three synthetic datasets and summarizes them.
func RunTable1(records int, seed int64) (*Table1Result, error) {
	out := &Table1Result{}
	for _, preset := range []datagen.Preset{datagen.KDD99Sim, datagen.CovTypeSim, datagen.KDD98Sim} {
		n := records
		if n <= 0 {
			n = preset.FullRecords()
		}
		recs, err := datagen.GeneratePreset(preset, n, 1000, seed)
		if err != nil {
			return nil, err
		}
		sum, err := datagen.Summarize(preset.String(), recs)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table1Row{
			Dataset:   sum.Name,
			Records:   sum.Records,
			Features:  sum.Dim,
			Clusters:  sum.Clusters,
			Top3:      sum.Top3Share,
			Stability: datagen.StabilityIndex(recs, 20),
		})
	}
	return out, nil
}
