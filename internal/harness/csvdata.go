package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"diststream/internal/datagen"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// LoadCSVDataset reads a real dataset from a CSV file written in the
// repository's record format (seq,timestamp,label,f0,...) — see
// stream.WriteCSV and cmd/datagen. This is the adoption path for running
// the experiments against the paper's actual datasets when a user has
// them: convert to CSV, normalize (optional), and pass the file to the
// harness. Rate restamps the records at a uniform arrival rate when > 0;
// 0 keeps the file's timestamps. Calibration (cluster radius) uses the
// file's labels when present and falls back to nearest-neighbor distance.
func LoadCSVDataset(path string, rate float64, normalize bool) (Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return Dataset{}, fmt.Errorf("harness: open dataset: %w", err)
	}
	defer f.Close()
	records, err := stream.ReadCSV(f)
	if err != nil {
		return Dataset{}, err
	}
	if len(records) == 0 {
		return Dataset{}, fmt.Errorf("harness: %s holds no records", path)
	}
	if normalize {
		norm := vector.NewNormalizer(records[0].Dim())
		for _, rec := range records {
			if err := norm.Observe(rec.Values); err != nil {
				return Dataset{}, err
			}
		}
		norm.Freeze()
		for _, rec := range records {
			if err := norm.Apply(rec.Values); err != nil {
				return Dataset{}, err
			}
		}
	}
	if rate > 0 {
		dt := 1 / rate
		for i := range records {
			records[i].Seq = uint64(i)
			records[i].Timestamp = vclock.Time(float64(i) * dt)
		}
	}
	name := filepath.Base(path)
	ds := Dataset{
		Name:    name,
		Preset:  datagen.Preset(0), // unknown preset: NumClusters falls back
		Records: records,
		Rate:    rate,
		NNDist:  EstimateNNDist(records, 400),
	}
	ds.ClusterRadius, ds.LeadRadius = EstimateClusterRadius(records, 4000)
	if ds.ClusterRadius <= 0 {
		ds.ClusterRadius = ds.NNDist
	}
	if ds.LeadRadius <= 0 {
		ds.LeadRadius = ds.ClusterRadius / 3
	}
	return ds, nil
}
