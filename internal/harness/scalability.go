package harness

import (
	"time"

	"diststream/internal/datagen"
)

// ScalabilityConfig parameterizes Figures 8, 9 and 10.
type ScalabilityConfig struct {
	// Datasets (default: all three presets).
	Datasets []datagen.Preset
	// Algorithms (default clustream, denstream; Figure 10 passes dstream,
	// clustree).
	Algorithms []string
	// Parallelisms to model (default 1,2,4,8,16,32 — the paper's sweep).
	Parallelisms []int
	// BaseRecords and Repeats build the large- datasets.
	BaseRecords int
	Repeats     int
	// TargetBatches sets the stream rate so the large dataset spans this
	// many mini-batches (default 15). The paper streams at 100K rec/s
	// against 10s batches — 1M-record batches; scaled-down runs keep the
	// batch COUNT comparable instead, which is what the per-batch cost
	// model needs.
	TargetBatches int
	// BatchSeconds per dataset rule: the paper uses 10s, and 20s for the
	// slower high-dimensional kdd98-sim.
	BatchSeconds float64
	// InitRecords warm-up sample.
	InitRecords int
	// Stragglers is the contention model; zero value means
	// PaperStragglers.
	Stragglers StragglerModel
	// Seed drives generation.
	Seed int64
}

func (c *ScalabilityConfig) withDefaults() ScalabilityConfig {
	out := *c
	if len(out.Datasets) == 0 {
		out.Datasets = []datagen.Preset{datagen.KDD99Sim, datagen.CovTypeSim, datagen.KDD98Sim}
	}
	if len(out.Algorithms) == 0 {
		out.Algorithms = []string{"clustream", "denstream"}
	}
	if len(out.Parallelisms) == 0 {
		out.Parallelisms = []int{1, 2, 4, 8, 16, 32}
	}
	if out.BaseRecords <= 0 {
		out.BaseRecords = 20000
	}
	if out.Repeats <= 0 {
		out.Repeats = 3
	}
	if out.TargetBatches <= 0 {
		out.TargetBatches = 15
	}
	if out.BatchSeconds <= 0 {
		out.BatchSeconds = 10
	}
	if out.InitRecords <= 0 {
		out.InitRecords = 1000
	}
	if out.Stragglers == (StragglerModel{}) {
		out.Stragglers = PaperStragglers
	}
	return out
}

// rateFor spreads the large dataset across TargetBatches batches of the
// dataset's batch interval.
func (c ScalabilityConfig) rateFor(p datagen.Preset) float64 {
	total := float64(c.BaseRecords * c.Repeats)
	span := float64(c.TargetBatches) * c.batchFor(p)
	if span <= 0 {
		span = 1
	}
	return total / span
}

func (c ScalabilityConfig) batchFor(p datagen.Preset) float64 {
	if p.HighDim() {
		return 2 * c.BatchSeconds // paper: 20s for the slower streams
	}
	return c.BatchSeconds
}

// ScalabilityPoint is one parallelism level of one curve.
type ScalabilityPoint struct {
	Parallelism int
	// Throughput is the modeled records/second.
	Throughput float64
	// Gain is Throughput relative to p=1.
	Gain float64
	// StragglerFraction is the modeled per-task straggler probability.
	StragglerFraction float64
	// GlobalShare is the modeled fraction of batch time spent in the
	// single-node global update (the paper's first bottleneck).
	GlobalShare float64
}

// ScalabilityCurve is one dataset x algorithm sweep.
type ScalabilityCurve struct {
	Dataset   string
	Algorithm string
	Profile   CostProfile
	Points    []ScalabilityPoint
	// GlobalPerRecord is the measured single-node global update latency
	// per record (constant across p — the §VII-D2 observation).
	GlobalPerRecord time.Duration
}

// ScalabilityResult is the Figure 8 (or 10) reproduction.
type ScalabilityResult struct {
	Curves []ScalabilityCurve
}

// MaxGain returns the best modeled gain across all curves (the paper's
// headline: 13.2x at p=32).
func (r *ScalabilityResult) MaxGain() float64 {
	var best float64
	for _, curve := range r.Curves {
		for _, pt := range curve.Points {
			if pt.Gain > best {
				best = pt.Gain
			}
		}
	}
	return best
}

// RunScalability reproduces Figure 8 (and Figure 10 when invoked with
// dstream/clustree): measure the pipeline's per-stage work on the large
// datasets, then model throughput across parallelism degrees with the
// paper-calibrated straggler model. On multi-core hosts the measured
// profile comes from real parallel execution of the same code; the model
// is what lets a single-core CI machine regenerate the 32-way curve.
func RunScalability(cfg ScalabilityConfig) (*ScalabilityResult, error) {
	c := cfg.withDefaults()
	result := &ScalabilityResult{}
	for _, preset := range c.Datasets {
		base, err := LoadDataset(preset, c.BaseRecords, c.rateFor(preset), c.Seed)
		if err != nil {
			return nil, err
		}
		large, err := base.Large(c.Repeats)
		if err != nil {
			return nil, err
		}
		for _, algoName := range c.Algorithms {
			profile, _, err := ProfileRun(large, algoName, c.batchFor(preset), c.InitRecords, c.Seed)
			if err != nil {
				return nil, err
			}
			curve := ScalabilityCurve{
				Dataset:         large.Name,
				Algorithm:       algoName,
				Profile:         profile,
				GlobalPerRecord: profile.GlobalPerRecord(),
			}
			for _, p := range c.Parallelisms {
				curve.Points = append(curve.Points, ScalabilityPoint{
					Parallelism:       p,
					Throughput:        profile.ModelThroughput(p, c.Stragglers),
					Gain:              profile.ModelGain(p, c.Stragglers),
					StragglerFraction: c.Stragglers.Prob(p),
					GlobalShare:       profile.GlobalShare(p, c.Stragglers),
				})
			}
			result.Curves = append(result.Curves, curve)
		}
	}
	return result, nil
}

// BatchSizePoint is one batch-interval measurement of Figure 9.
type BatchSizePoint struct {
	BatchSeconds float64
	// Throughput is the modeled records/second at the configured
	// parallelism (the paper fixes p=32).
	Throughput float64
}

// BatchSizeResult is one dataset x algorithm Figure 9 curve.
type BatchSizeResult struct {
	Dataset     string
	Algorithm   string
	Parallelism int
	Points      []BatchSizePoint
}

// RunBatchSizeSweep reproduces Figure 9: throughput as the batch interval
// sweeps (paper: 1s to 30s) at fixed parallelism 32. Small batches lose
// throughput to per-batch scheduling and broadcast overhead; large
// batches gain until driver-side shuffle and global update costs grow.
func RunBatchSizeSweep(cfg ScalabilityConfig, preset datagen.Preset, algoName string, sizes []float64, parallelism int) (*BatchSizeResult, error) {
	c := cfg.withDefaults()
	if len(sizes) == 0 {
		sizes = []float64{1, 2, 5, 10, 15, 20, 25, 30}
	}
	if parallelism <= 0 {
		parallelism = 32
	}
	base, err := LoadDataset(preset, c.BaseRecords, c.rateFor(preset), c.Seed)
	if err != nil {
		return nil, err
	}
	large, err := base.Large(c.Repeats)
	if err != nil {
		return nil, err
	}
	out := &BatchSizeResult{Dataset: large.Name, Algorithm: algoName, Parallelism: parallelism}
	// The paper sweeps the batch interval at a fixed stream rate, so a
	// larger interval means proportionally more records per batch. Keep
	// the stream's record timestamps fixed (they were stamped by
	// LoadDataset at the large-dataset rate) and let the interval sweep
	// change the records-per-batch exactly as in the paper.
	for _, size := range sizes {
		profile, _, err := ProfileRun(large, algoName, size, c.InitRecords, c.Seed)
		if err != nil {
			return nil, err
		}
		// At the paper's fixed 100K rec/s stress rate, a batch interval of
		// `size` seconds holds 100K x size records.
		profile.RecordsPerBatch = int(100000 * size)
		out.Points = append(out.Points, BatchSizePoint{
			BatchSeconds: size,
			Throughput:   profile.ModelThroughput(parallelism, c.Stragglers),
		})
	}
	return out, nil
}
