package harness

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"diststream/internal/core"
	"diststream/internal/datagen"
	"diststream/internal/mbsp"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// Small scales keep the full experiment battery fast enough for go test.
const (
	testRecords = 4000
	testSeed    = 7
)

func TestNewAlgorithmRegistryHasAll(t *testing.T) {
	reg, err := NewAlgorithmRegistry()
	if err != nil {
		t.Fatal(err)
	}
	names := reg.Names()
	if len(names) != 5 {
		t.Fatalf("registered %d algorithms: %v", len(names), names)
	}
}

func TestNewEngineAndAlgorithms(t *testing.T) {
	eng, err := NewEngine(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Parallelism() != 2 {
		t.Errorf("Parallelism = %d", eng.Parallelism())
	}
	ds, err := LoadDataset(datagen.KDD99Sim, testRecords, 100, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if ds.ClusterRadius <= 0 || ds.LeadRadius <= 0 || ds.NNDist <= 0 {
		t.Errorf("calibration broken: %+v", ds)
	}
	for _, name := range append(AlgorithmNames, "simple") {
		algo, err := NewAlgorithm(name, ds, testSeed)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if algo.Name() != name {
			t.Errorf("name = %q, want %q", algo.Name(), name)
		}
	}
	if _, err := NewAlgorithm("nope", ds, testSeed); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestDatasetLarge(t *testing.T) {
	ds, err := LoadDataset(datagen.KDD98Sim, 1000, 100, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	large, err := ds.Large(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(large.Records) != 3000 {
		t.Errorf("large records = %d", len(large.Records))
	}
	if !strings.HasPrefix(large.Name, "large-") {
		t.Errorf("large name = %q", large.Name)
	}
}

func TestEstimateClusterRadius(t *testing.T) {
	// Two labeled clusters with known per-dim std 1 in 4 dims: full-norm
	// radius ~2, lead radius (4 dims) same here.
	recs := make([]stream.Record, 2000)
	for i := range recs {
		base := 0.0
		if i%2 == 1 {
			base = 100
		}
		v := vector.New(4)
		for d := range v {
			v[d] = base + gauss(uint64(i*4+d))
		}
		recs[i] = stream.Record{Seq: uint64(i), Values: v, Label: i % 2}
	}
	all, lead := EstimateClusterRadius(recs, 1000)
	if all < 1.5 || all > 2.5 {
		t.Errorf("cluster radius = %v, want ~2", all)
	}
	if lead < 1.5 || lead > 2.5 {
		t.Errorf("lead radius = %v, want ~2", lead)
	}
	// No labels: zero.
	for i := range recs {
		recs[i].Label = -1
	}
	if all, _ := EstimateClusterRadius(recs, 100); all != 0 {
		t.Errorf("unlabeled radius = %v", all)
	}
	if all, _ := EstimateClusterRadius(nil, 10); all != 0 {
		t.Errorf("empty radius = %v", all)
	}
}

// gauss is a cheap deterministic standard-normal-ish value (sum of 4
// hashed uniforms, variance-corrected).
func gauss(x uint64) float64 {
	var sum float64
	for i := 0; i < 4; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		sum += float64(x>>11) / float64(1<<53)
	}
	return (sum - 2) * 1.732
}

func TestEstimateNNDist(t *testing.T) {
	recs := make([]stream.Record, 100)
	for i := range recs {
		recs[i] = stream.Record{Values: vector.Vector{float64(i), 0}}
	}
	got := EstimateNNDist(recs, 100)
	if got < 0.5 || got > 2 {
		t.Errorf("NNDist = %v, want ~1", got)
	}
	if EstimateNNDist(nil, 10) != 1 {
		t.Error("empty fallback != 1")
	}
}

func TestRunTable1(t *testing.T) {
	res, err := RunTable1(testRecords, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// kdd98-sim must be the most stable (the paper's §VII-B2 argument).
	var kdd98, kdd99 float64
	for _, row := range res.Rows {
		switch row.Dataset {
		case "kdd98-sim":
			kdd98 = row.Stability
		case "kdd99-sim":
			kdd99 = row.Stability
		}
	}
	if kdd98 >= kdd99 {
		t.Errorf("stability ordering: kdd98 %v >= kdd99 %v", kdd98, kdd99)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "kdd99-sim") {
		t.Error("render missing dataset")
	}
}

func TestRunQualitySmall(t *testing.T) {
	res, err := RunQuality(QualityConfig{
		Datasets:   []datagen.Preset{datagen.KDD99Sim},
		Algorithms: []string{"clustream"},
		Records:    testRecords,
		Seed:       testSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	cell := res.Cells[0]
	moa, ok := cell.Mode(ModeMOA)
	if !ok {
		t.Fatal("no moa mode")
	}
	if moa.NormCMM != 1 {
		t.Errorf("moa norm = %v", moa.NormCMM)
	}
	ordered, ok := cell.Mode(ModeDistStream)
	if !ok {
		t.Fatal("no diststream mode")
	}
	// The paper's primary claim at small scale: comparable quality.
	if ordered.NormCMM < 0.85 || ordered.NormCMM > 1.15 {
		t.Errorf("ordered normalized CMM = %v, want ~1", ordered.NormCMM)
	}
	if len(ordered.Points) == 0 {
		t.Error("no CMM trajectory")
	}
	if _, ok := cell.Mode(ModeUnordered); !ok {
		t.Error("no unordered mode")
	}
	if _, ok := cell.Mode("bogus"); ok {
		t.Error("bogus mode found")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "norm CMM") {
		t.Error("render missing header")
	}
}

func TestRunBatchSizeQualitySmall(t *testing.T) {
	res, err := RunBatchSizeQuality(QualityConfig{
		Records: testRecords,
		Seed:    testSeed,
	}, datagen.KDD99Sim, "denstream", []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AvgCMM) != 2 {
		t.Fatalf("points = %d", len(res.AvgCMM))
	}
	if res.MOAAvgCMM <= 0 {
		t.Error("no MOA reference")
	}
	if res.MaxDeltaPercent() < 0 {
		t.Error("negative delta")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "delta vs MOA") {
		t.Error("render missing header")
	}
}

func TestRunThroughputSmall(t *testing.T) {
	res, err := RunThroughput(ThroughputConfig{
		Datasets:    []datagen.Preset{datagen.KDD98Sim},
		Algorithms:  []string{"denstream"},
		BaseRecords: 3000,
		Repeats:     2,
		Seed:        testSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, cell := range res.Cells {
		if cell.Throughput <= 0 {
			t.Errorf("%s/%s: zero throughput", cell.Mode, cell.Dataset)
		}
		if cell.Records != 5000 { // 6000 - 1000 init
			t.Errorf("records = %d", cell.Records)
		}
	}
	if _, ok := res.Cell("large-kdd98-sim", "denstream", ModeMOA); !ok {
		t.Error("Cell lookup failed")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "throughput") {
		t.Error("render missing header")
	}
}

func TestRunScalabilitySmall(t *testing.T) {
	res, err := RunScalability(ScalabilityConfig{
		Datasets:    []datagen.Preset{datagen.KDD99Sim},
		Algorithms:  []string{"denstream"},
		BaseRecords: 4000,
		Repeats:     2,
		Seed:        testSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 1 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	curve := res.Curves[0]
	if len(curve.Points) != 6 {
		t.Fatalf("points = %d", len(curve.Points))
	}
	// The headline shape: sublinear but substantial gain at p=32.
	last := curve.Points[len(curve.Points)-1]
	if last.Parallelism != 32 {
		t.Fatalf("last parallelism = %d", last.Parallelism)
	}
	if last.Gain <= 2 || last.Gain >= 32 {
		t.Errorf("gain at 32 = %v, want sublinear but > 2", last.Gain)
	}
	// Gains grow monotonically for the low range.
	if !(curve.Points[0].Gain < curve.Points[1].Gain && curve.Points[1].Gain < curve.Points[2].Gain) {
		t.Errorf("gain not increasing: %+v", curve.Points[:3])
	}
	// Straggler fractions match the paper's calibration.
	for _, pt := range curve.Points {
		switch pt.Parallelism {
		case 16:
			if pt.StragglerFraction < 0.11 || pt.StragglerFraction > 0.13 {
				t.Errorf("straggler(16) = %v, want ~0.12", pt.StragglerFraction)
			}
		case 32:
			if pt.StragglerFraction < 0.24 || pt.StragglerFraction > 0.26 {
				t.Errorf("straggler(32) = %v, want ~0.25", pt.StragglerFraction)
			}
		}
	}
	if res.MaxGain() != last.Gain {
		t.Errorf("MaxGain = %v, want %v", res.MaxGain(), last.Gain)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "stragglers") {
		t.Error("render missing header")
	}
}

func TestRunBatchSizeSweepSmall(t *testing.T) {
	res, err := RunBatchSizeSweep(ScalabilityConfig{
		BaseRecords: 4000,
		Repeats:     2,
		Seed:        testSeed,
	}, datagen.KDD99Sim, "denstream", []float64{1, 10}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Figure 9's left edge: 1s batches lose throughput to per-batch
	// overheads relative to 10s batches.
	if res.Points[0].Throughput >= res.Points[1].Throughput {
		t.Errorf("1s batches (%v) should be slower than 10s (%v)",
			res.Points[0].Throughput, res.Points[1].Throughput)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("render missing title")
	}
}

func TestRunPreMergeAblationSmall(t *testing.T) {
	res, err := RunPreMergeAblation(datagen.KDD99Sim, "denstream", 6000, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Without.CreatedMCs <= res.With.CreatedMCs {
		t.Errorf("pre-merge did not reduce created MCs: %d vs %d",
			res.With.CreatedMCs, res.Without.CreatedMCs)
	}
	if res.CreatedReduction() <= 1 {
		t.Errorf("reduction = %v", res.CreatedReduction())
	}
	if res.Without.GlobalWall <= res.With.GlobalWall {
		t.Errorf("pre-merge did not cut global update time: %v vs %v",
			res.With.GlobalWall, res.Without.GlobalWall)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "pre-merge") {
		t.Error("render missing title")
	}
}

func TestRunParallelismChoiceAblationSmall(t *testing.T) {
	res, err := RunParallelismChoiceAblation(4000, 100, 16, 4, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelItems != 4*res.RecordItems {
		t.Errorf("model items = %d, want 4x %d", res.ModelItems, res.RecordItems)
	}
	if res.Speedup() <= 1 {
		t.Errorf("record-based should win with communication: speedup %v", res.Speedup())
	}
	if _, err := RunParallelismChoiceAblation(0, 0, 0, 0, 1); err == nil {
		t.Error("invalid sizes accepted")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "record-based") {
		t.Error("render missing rows")
	}
}

func TestStragglerModel(t *testing.T) {
	m := PaperStragglers
	if p := m.Prob(16); p < 0.11 || p > 0.13 {
		t.Errorf("Prob(16) = %v", p)
	}
	if p := m.Prob(32); p < 0.24 || p > 0.26 {
		t.Errorf("Prob(32) = %v", p)
	}
	if m.Prob(0) != 0 {
		t.Errorf("Prob(0) = %v", m.Prob(0))
	}
	if m.Prob(10000) > 0.9 {
		t.Error("Prob not clamped")
	}
	if m.StageFactor(0) != 1 {
		t.Error("StageFactor(0) != 1")
	}
	if f := m.StageFactor(32); f <= 1 || f > m.Slowdown {
		t.Errorf("StageFactor(32) = %v", f)
	}
}

func TestCostProfileModel(t *testing.T) {
	profile := CostProfile{
		Records:     10000,
		Batches:     10,
		AssignWork:  1e9, // 100µs/record total parallel work
		LocalWork:   0,
		ShuffleWall: 0,
		GlobalWall:  5e7, // 5µs/record serial
	}
	noStrag := StragglerModel{Slowdown: 1}
	t1 := profile.ModelThroughput(1, noStrag)
	t32 := profile.ModelThroughput(32, noStrag)
	if t32 <= t1 {
		t.Errorf("no gain: %v vs %v", t1, t32)
	}
	gain := profile.ModelGain(32, noStrag)
	// Amdahl bound: serial fraction 5/105 => max gain ~ 105/(100/32+5).
	if gain <= 1 || gain > 32 {
		t.Errorf("gain = %v", gain)
	}
	if profile.GlobalPerRecord() != 5000 { // 5µs in ns
		t.Errorf("GlobalPerRecord = %v", profile.GlobalPerRecord())
	}
	share1 := profile.GlobalShare(1, noStrag)
	share32 := profile.GlobalShare(32, noStrag)
	if !(share32 > share1) {
		t.Errorf("global share should grow with p: %v vs %v", share1, share32)
	}
	// Degenerate profiles.
	var zero CostProfile
	if zero.ModelThroughput(4, noStrag) != 0 || zero.ModelGain(4, noStrag) != 0 {
		t.Error("zero profile produced throughput")
	}
}

func TestProfileRunErrorsOnNoBatches(t *testing.T) {
	// A dataset whose records all land inside the warm-up sample
	// produces zero batches.
	ds, err := LoadDataset(datagen.KDD98Sim, 500, 100, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ProfileRun(ds, "denstream", 10, 1000, testSeed); err == nil {
		t.Error("expected no-batches error")
	}
}

func TestSampledWindow(t *testing.T) {
	w, err := newSampledWindow(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		w.push(stream.Record{Seq: uint64(i), Timestamp: vclock.Time(i), Values: vector.Vector{1}})
	}
	if w.win.Len() != 10 {
		t.Errorf("window len = %d, want 10 (every 3rd of 30)", w.win.Len())
	}
	if _, err := newSampledWindow(0, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestLoadCSVDataset(t *testing.T) {
	// Round-trip a generated dataset through CSV and reload it.
	recs, err := datagen.GeneratePreset(datagen.KDD98Sim, 500, 100, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ds.csv"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.WriteCSV(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadCSVDataset(path, 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) != 500 {
		t.Fatalf("records = %d", len(ds.Records))
	}
	// Restamped at 1000 rec/s.
	if got := float64(ds.Records[499].Timestamp); got < 0.498 || got > 0.5 {
		t.Errorf("last timestamp = %v, want ~0.499", got)
	}
	if ds.ClusterRadius <= 0 {
		t.Error("no calibration from labeled CSV")
	}
	// An algorithm can be built and run on it.
	algo, err := NewAlgorithm("denstream", ds, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if algo.Name() != "denstream" {
		t.Error("wrong algorithm")
	}
	// Missing file errors.
	if _, err := LoadCSVDataset(t.TempDir()+"/missing.csv", 0, false); err == nil {
		t.Error("missing file accepted")
	}
	// Empty file errors.
	empty := t.TempDir() + "/empty.csv"
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCSVDataset(empty, 0, false); err == nil {
		t.Error("empty file accepted")
	}
	// Normalization path.
	ds2, err := LoadCSVDataset(path, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range ds2.Records {
		sum += r.Values[0]
	}
	if m := sum / float64(len(ds2.Records)); m > 1e-9 || m < -1e-9 {
		t.Errorf("normalized mean = %v", m)
	}
}

func TestPipelineWithStragglerInjection(t *testing.T) {
	// End-to-end run with injected straggler latency: the engine's task
	// metrics must register stragglers, and results must be unaffected.
	delay := mbsp.NewStragglerDelay(3, 0.5, 3*time.Millisecond, 6*time.Millisecond)
	eng, err := NewEngine(4, delay)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ds, err := LoadDataset(datagen.KDD99Sim, 3000, 100, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	algo, err := NewAlgorithm("denstream", ds, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPipeline(core.Config{
		Algorithm:     algo,
		Engine:        eng,
		BatchInterval: 5,
		InitRecords:   500,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.Run(stream.NewSliceSource(ds.Records))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2500 {
		t.Errorf("Records = %d", stats.Records)
	}
	if stats.TotalTasks == 0 {
		t.Fatal("no task metrics collected")
	}
	if stats.StragglerTasks == 0 {
		t.Error("injected stragglers not observed in metrics")
	}
	if f := stats.StragglerFraction(); f <= 0 || f >= 1 {
		t.Errorf("straggler fraction = %v", f)
	}
	if pl.Model().Len() == 0 {
		t.Error("empty model despite successful run")
	}
}
