package harness

import (
	"fmt"
	"time"

	"diststream/internal/core"
	"diststream/internal/datagen"
	"diststream/internal/seq"
	"diststream/internal/stream"
	"diststream/internal/vclock"
)

// ThroughputConfig parameterizes the Figure 7 single-machine comparison.
type ThroughputConfig struct {
	// Datasets (default: all three presets).
	Datasets []datagen.Preset
	// Algorithms (default clustream, denstream).
	Algorithms []string
	// BaseRecords per dataset before the Repeats-fold enlargement.
	// Default 20000.
	BaseRecords int
	// Repeats builds the large- datasets (paper: 10). Default 3 to keep
	// bench runtimes sane; the CLI can ask for 10.
	Repeats int
	// Rate is the stress stream rate (paper: 100K/s low-dim, 10K/s
	// high-dim). Default 100000 (10000 for kdd98-sim).
	Rate float64
	// BatchSeconds (paper: 10). Default 10.
	BatchSeconds float64
	// InitRecords warm-up sample. Default 1000.
	InitRecords int
	// Seed drives generation.
	Seed int64
}

func (c *ThroughputConfig) withDefaults() ThroughputConfig {
	out := *c
	if len(out.Datasets) == 0 {
		out.Datasets = []datagen.Preset{datagen.KDD99Sim, datagen.CovTypeSim, datagen.KDD98Sim}
	}
	if len(out.Algorithms) == 0 {
		out.Algorithms = []string{"clustream", "denstream"}
	}
	if out.BaseRecords <= 0 {
		out.BaseRecords = 20000
	}
	if out.Repeats <= 0 {
		out.Repeats = 3
	}
	if out.Rate <= 0 {
		out.Rate = 100000
	}
	if out.BatchSeconds <= 0 {
		out.BatchSeconds = 10
	}
	if out.InitRecords <= 0 {
		out.InitRecords = 1000
	}
	return out
}

// rateFor matches the paper's per-dataset stress rates: high-dimensional
// streams (kdd98-sim, the embed presets) stream at a tenth of the
// others.
func (c ThroughputConfig) rateFor(p datagen.Preset) float64 {
	if p.HighDim() {
		return c.Rate / 10
	}
	return c.Rate
}

// ThroughputCell is one dataset x algorithm x mode measurement.
type ThroughputCell struct {
	Dataset   string
	Algorithm string
	Mode      string
	// Records processed (excluding warm-up) and wall time.
	Records int
	Wall    time.Duration
	// Throughput in records per wall second.
	Throughput float64
	// OutlierMCs created (explains the ordered-vs-unordered gap, §VII-C2).
	OutlierMCs int
}

// ThroughputResult is the Figure 7 reproduction.
type ThroughputResult struct {
	Cells []ThroughputCell
}

// Cell returns the named measurement.
func (r *ThroughputResult) Cell(dataset, algorithm, mode string) (ThroughputCell, bool) {
	for _, c := range r.Cells {
		if c.Dataset == dataset && c.Algorithm == algorithm && c.Mode == mode {
			return c, true
		}
	}
	return ThroughputCell{}, false
}

// RunThroughput reproduces Figure 7: MOA vs unordered vs DistStream
// throughput in a single machine (one task, parallelism 1).
func RunThroughput(cfg ThroughputConfig) (*ThroughputResult, error) {
	c := cfg.withDefaults()
	result := &ThroughputResult{}
	for _, preset := range c.Datasets {
		base, err := LoadDataset(preset, c.BaseRecords, c.rateFor(preset), c.Seed)
		if err != nil {
			return nil, err
		}
		large, err := base.Large(c.Repeats)
		if err != nil {
			return nil, err
		}
		for _, algoName := range c.Algorithms {
			for _, mode := range []string{ModeMOA, ModeUnordered, ModeDistStream} {
				cell, err := runThroughputMode(c, large, algoName, mode)
				if err != nil {
					return nil, fmt.Errorf("harness: throughput %s/%s/%s: %w",
						large.Name, algoName, mode, err)
				}
				result.Cells = append(result.Cells, cell)
			}
		}
	}
	return result, nil
}

func runThroughputMode(c ThroughputConfig, ds Dataset, algoName, mode string) (ThroughputCell, error) {
	algo, err := NewAlgorithm(algoName, ds, c.Seed)
	if err != nil {
		return ThroughputCell{}, err
	}
	cell := ThroughputCell{Dataset: ds.Name, Algorithm: algoName, Mode: mode}
	if mode == ModeMOA {
		runner, err := seq.NewRunner(seq.Config{Algorithm: algo, InitRecords: c.InitRecords})
		if err != nil {
			return ThroughputCell{}, err
		}
		stats, err := runner.Run(stream.NewSliceSource(ds.Records), nil)
		if err != nil {
			return ThroughputCell{}, err
		}
		cell.Records = stats.Records
		cell.Wall = stats.TotalWall
		cell.Throughput = stats.Throughput()
		cell.OutlierMCs = stats.CreatedMCs
		return cell, nil
	}
	order := core.OrderAware
	if mode == ModeUnordered {
		order = core.OrderUnordered
	}
	eng, err := NewEngine(1, nil)
	if err != nil {
		return ThroughputCell{}, err
	}
	defer eng.Close()
	pl, err := core.NewPipeline(core.Config{
		Algorithm:     algo,
		Engine:        eng,
		BatchInterval: vclock.Duration(c.BatchSeconds),
		Order:         order,
		InitRecords:   c.InitRecords,
	})
	if err != nil {
		return ThroughputCell{}, err
	}
	stats, err := pl.Run(stream.NewSliceSource(ds.Records))
	if err != nil {
		return ThroughputCell{}, err
	}
	cell.Records = stats.Records
	cell.Wall = stats.TotalWall
	cell.Throughput = stats.Throughput()
	cell.OutlierMCs = stats.CreatedMCs
	return cell, nil
}
