package harness

import (
	"context"
	"fmt"
	"math"
	"time"

	"diststream/internal/core"
	"diststream/internal/datagen"
	"diststream/internal/mbsp"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// PreMergeResult is the §V-C pre-merge ablation: with the optimization
// off, every outlier record reaches the driver as its own micro-cluster
// and the single-node global update pays for it.
type PreMergeResult struct {
	Dataset   string
	Algorithm string
	// With/Without hold the two runs.
	With, Without PreMergeRun
}

// PreMergeRun is one side of the ablation.
type PreMergeRun struct {
	CreatedMCs   int
	GlobalWall   time.Duration
	TotalWall    time.Duration
	Throughput   float64
	ModelSizeEnd int
}

// CreatedReduction returns how many times fewer outlier micro-clusters
// pre-merge ships to the driver.
func (r PreMergeResult) CreatedReduction() float64 {
	if r.With.CreatedMCs == 0 {
		return 0
	}
	return float64(r.Without.CreatedMCs) / float64(r.With.CreatedMCs)
}

// RunPreMergeAblation runs the ordered pipeline twice on a drift-heavy
// dataset (kdd99-sim's attack bursts generate outlier waves) with the
// pre-merge optimization on and off.
func RunPreMergeAblation(preset datagen.Preset, algoName string, records int, seed int64) (*PreMergeResult, error) {
	ds, err := LoadDataset(preset, records, 1000, seed)
	if err != nil {
		return nil, err
	}
	run := func(disable bool) (PreMergeRun, error) {
		algo, err := NewAlgorithm(algoName, ds, seed)
		if err != nil {
			return PreMergeRun{}, err
		}
		eng, err := NewEngine(4, nil)
		if err != nil {
			return PreMergeRun{}, err
		}
		defer eng.Close()
		pl, err := core.NewPipeline(core.Config{
			Algorithm:       algo,
			Engine:          eng,
			BatchInterval:   10,
			InitRecords:     1000,
			DisablePreMerge: disable,
		})
		if err != nil {
			return PreMergeRun{}, err
		}
		stats, err := pl.Run(stream.NewSliceSource(ds.Records))
		if err != nil {
			return PreMergeRun{}, err
		}
		return PreMergeRun{
			CreatedMCs:   stats.CreatedMCs,
			GlobalWall:   stats.GlobalUpdate.Wall,
			TotalWall:    stats.TotalWall,
			Throughput:   stats.Throughput(),
			ModelSizeEnd: pl.Model().Len(),
		}, nil
	}
	withPM, err := run(false)
	if err != nil {
		return nil, err
	}
	withoutPM, err := run(true)
	if err != nil {
		return nil, err
	}
	return &PreMergeResult{
		Dataset:   ds.Name,
		Algorithm: algoName,
		With:      withPM,
		Without:   withoutPM,
	}, nil
}

// ParallelismChoiceResult is the §V-A ablation: record-based vs
// model-based parallelism for the closest-micro-cluster step. The paper
// chooses record-based because model-based needs an extra aggregation
// stage to combine partial argmins.
type ParallelismChoiceResult struct {
	Records       int
	MicroClusters int
	Parallelism   int
	// RecordBased is the chosen design: broadcast model, partition
	// records, one stage.
	RecordBased time.Duration
	// ModelBased partitions micro-clusters, computes partial argmins per
	// task, then merges them in an extra aggregation pass.
	ModelBased time.Duration
	// ModelBasedMerge is the extra aggregation time included in
	// ModelBased.
	ModelBasedMerge time.Duration
	// RecordItems / ModelItems count the inter-task result items each
	// strategy ships: record-based emits one result per record, while
	// model-based emits one PARTIAL result per record per task (p times
	// the volume) and pays an extra aggregation stage — the §V-A
	// "additional inter-task communication".
	RecordItems, ModelItems int
}

// itemWireCost models shipping one result item between tasks on a real
// cluster (serialization + shuffle I/O; ~10µs per small tuple is typical
// of the paper's JVM/Spark-era stack); on the in-process executor this
// cost is invisible, which is why the comparison must account for it
// explicitly.
const itemWireCost = 10 * time.Microsecond

// RecordBasedTotal returns compute plus modeled communication.
func (r ParallelismChoiceResult) RecordBasedTotal() time.Duration {
	return r.RecordBased + time.Duration(r.RecordItems)*itemWireCost
}

// ModelBasedTotal returns compute plus modeled communication.
func (r ParallelismChoiceResult) ModelBasedTotal() time.Duration {
	return r.ModelBased + time.Duration(r.ModelItems)*itemWireCost
}

// Speedup returns ModelBasedTotal / RecordBasedTotal (>1 means
// record-based wins, as §V-A argues).
func (r ParallelismChoiceResult) Speedup() float64 {
	if r.RecordBasedTotal() == 0 {
		return 0
	}
	return float64(r.ModelBasedTotal()) / float64(r.RecordBasedTotal())
}

// partialAssign is the model-based partial result for one record.
type partialAssign struct {
	Dist float64
	ID   uint64
}

// RunParallelismChoiceAblation measures both parallelizations of the
// assign step over the same records and micro-clusters.
func RunParallelismChoiceAblation(records, microClusters, dim, parallelism int, seed int64) (*ParallelismChoiceResult, error) {
	if records <= 0 || microClusters <= 0 || dim <= 0 || parallelism <= 0 {
		return nil, fmt.Errorf("harness: invalid ablation sizes")
	}
	// Synthetic geometry: records spread over micro-cluster centers.
	centers := make([]vector.Vector, microClusters)
	for i := range centers {
		v := vector.New(dim)
		v[0] = float64(i)
		centers[i] = v
	}
	recs := make([]stream.Record, records)
	for i := range recs {
		v := vector.New(dim)
		v[0] = float64(i%microClusters) + 0.25
		recs[i] = stream.Record{Seq: uint64(i), Timestamp: vclock.Time(i), Values: v}
	}

	reg := mbsp.NewRegistry()
	// Record-based: each task scans all centers for its records.
	reg.MustRegister("ablate.record-based", func(ctx *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		bv, err := ctx.Broadcast("centers")
		if err != nil {
			return nil, err
		}
		cs := bv.([]vector.Vector)
		out := make(mbsp.Partition, len(in))
		for i, item := range in {
			rec := item.(stream.Record)
			best, bestD := 0, math.Inf(1)
			for j, c := range cs {
				if d := vector.SquaredDistance(rec.Values, c); d < bestD {
					best, bestD = j, d
				}
			}
			out[i] = mbsp.KeyedItem{Key: uint64(best), Item: rec.Seq}
		}
		return out, nil
	})
	// Model-based: each task holds a slice of centers and scans ALL
	// records against it, emitting partial argmins.
	reg.MustRegister("ablate.model-based", func(ctx *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		bv, err := ctx.Broadcast("records")
		if err != nil {
			return nil, err
		}
		rs := bv.([]stream.Record)
		out := make(mbsp.Partition, len(rs))
		for i, rec := range rs {
			best, bestD := uint64(0), math.Inf(1)
			for _, item := range in {
				kc := item.(mbsp.KeyedItem)
				c := kc.Item.(vector.Vector)
				if d := vector.SquaredDistance(rec.Values, c); d < bestD {
					best, bestD = kc.Key, d
				}
			}
			out[i] = partialAssign{Dist: bestD, ID: best}
		}
		return out, nil
	})

	exec, err := mbsp.NewLocalExecutor(mbsp.LocalConfig{Parallelism: parallelism, Registry: reg})
	if err != nil {
		return nil, err
	}
	defer exec.Close()
	eng, err := mbsp.NewEngine(exec)
	if err != nil {
		return nil, err
	}

	// --- record-based run ---
	if err := eng.Broadcast(context.Background(), "centers", centers); err != nil {
		return nil, err
	}
	items := make([]mbsp.Item, len(recs))
	for i, r := range recs {
		items[i] = r
	}
	parts, err := mbsp.RoundRobin(items, parallelism)
	if err != nil {
		return nil, err
	}
	startRB := time.Now()
	if _, err := eng.MapStage(context.Background(), "ablate-rb", "ablate.record-based", parts); err != nil {
		return nil, err
	}
	recordBased := time.Since(startRB)

	// --- model-based run ---
	if err := eng.Broadcast(context.Background(), "records", recs); err != nil {
		return nil, err
	}
	centerItems := make([]mbsp.Item, len(centers))
	for i, c := range centers {
		centerItems[i] = mbsp.KeyedItem{Key: uint64(i), Item: c}
	}
	centerParts, err := mbsp.Chunk(centerItems, parallelism)
	if err != nil {
		return nil, err
	}
	startMB := time.Now()
	partials, err := eng.MapStage(context.Background(), "ablate-mb", "ablate.model-based", centerParts)
	if err != nil {
		return nil, err
	}
	// Extra aggregation stage: merge partial argmins per record.
	mergeStart := time.Now()
	final := make([]partialAssign, len(recs))
	for i := range final {
		final[i] = partialAssign{Dist: math.Inf(1)}
	}
	for _, part := range partials {
		for i, item := range part {
			pa := item.(partialAssign)
			if pa.Dist < final[i].Dist {
				final[i] = pa
			}
		}
	}
	merge := time.Since(mergeStart)
	modelBased := time.Since(startMB)

	return &ParallelismChoiceResult{
		Records:         records,
		MicroClusters:   microClusters,
		Parallelism:     parallelism,
		RecordBased:     recordBased,
		ModelBased:      modelBased,
		ModelBasedMerge: merge,
		RecordItems:     records,
		ModelItems:      records * parallelism,
	}, nil
}
