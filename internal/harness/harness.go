// Package harness wires datasets, algorithms, executors and metrics into
// the experiments that regenerate every table and figure of the paper's
// evaluation (§VII). Each experiment returns a typed result and renders an
// ASCII table or series; cmd/diststream and the root bench suite drive
// them.
package harness

import (
	"fmt"
	"math"
	"sort"

	"diststream/internal/clustream"
	"diststream/internal/clustree"
	"diststream/internal/core"
	"diststream/internal/datagen"
	"diststream/internal/denstream"
	"diststream/internal/dstream"
	"diststream/internal/mbsp"
	"diststream/internal/simple"
	"diststream/internal/stream"
	"diststream/internal/vector"
)

// AlgorithmNames lists the four paper algorithms in presentation order.
var AlgorithmNames = []string{clustream.Name, denstream.Name, dstream.Name, clustree.Name}

// NewAlgorithmRegistry returns a registry with all shipped algorithms.
func NewAlgorithmRegistry() (*core.AlgorithmRegistry, error) {
	reg := core.NewAlgorithmRegistry()
	for _, register := range []func(*core.AlgorithmRegistry) error{
		clustream.Register,
		denstream.Register,
		dstream.Register,
		clustree.Register,
		simple.Register,
	} {
		if err := register(reg); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// RegisterAllWireTypes registers every gob payload (for the TCP executor).
func RegisterAllWireTypes() {
	core.RegisterWireTypes()
	clustream.RegisterWireTypes()
	denstream.RegisterWireTypes()
	dstream.RegisterWireTypes()
	clustree.RegisterWireTypes()
	simple.RegisterWireTypes()
}

// NewEngine builds a local-executor engine at parallelism p with all
// pipeline ops registered. delay may inject straggler latency.
func NewEngine(p int, delay mbsp.DelayFunc) (*mbsp.Engine, error) {
	algos, err := NewAlgorithmRegistry()
	if err != nil {
		return nil, err
	}
	reg := mbsp.NewRegistry()
	if err := core.RegisterOps(reg, algos); err != nil {
		return nil, err
	}
	exec, err := mbsp.NewLocalExecutor(mbsp.LocalConfig{
		Parallelism: p,
		Registry:    reg,
		Delay:       delay,
	})
	if err != nil {
		return nil, err
	}
	return mbsp.NewEngine(exec)
}

// Dataset is a materialized evaluation stream.
type Dataset struct {
	Name    string
	Preset  datagen.Preset
	Records []stream.Record
	// Rate is the nominal stream rate the records were stamped at.
	Rate float64
	// NNDist is the median nearest-neighbor distance on a sample (a
	// fallback calibration unit when labels are unavailable).
	NNDist float64
	// ClusterRadius is the weighted mean intra-cluster full-norm standard
	// deviation estimated from a labeled sample — the natural unit for
	// absorb boundaries and DBSCAN eps (how practitioners pick eps from a
	// k-dist plot; here ground-truth labels make it direct).
	ClusterRadius float64
	// LeadRadius is the intra-cluster deviation over the leading 4
	// dimensions only, the unit for D-Stream's projected grid size.
	LeadRadius float64
}

// LoadDataset generates a preset dataset at the given scale.
func LoadDataset(p datagen.Preset, records int, rate float64, seed int64) (Dataset, error) {
	recs, err := datagen.GeneratePreset(p, records, rate, seed)
	if err != nil {
		return Dataset{}, err
	}
	ds := Dataset{
		Name:    p.String(),
		Preset:  p,
		Records: recs,
		Rate:    rate,
		NNDist:  EstimateNNDist(recs, 400),
	}
	ds.ClusterRadius, ds.LeadRadius = EstimateClusterRadius(recs, 4000)
	if ds.ClusterRadius <= 0 {
		ds.ClusterRadius = ds.NNDist
	}
	if ds.LeadRadius <= 0 {
		ds.LeadRadius = ds.ClusterRadius / 3
	}
	return ds, nil
}

// EstimateClusterRadius estimates the weighted mean intra-cluster
// full-norm standard deviation from a labeled sample, over all dimensions
// and over the leading four dimensions. Unlabeled records are skipped;
// clusters with fewer than 8 sampled members are ignored.
func EstimateClusterRadius(records []stream.Record, sample int) (all, lead float64) {
	if len(records) == 0 {
		return 0, 0
	}
	if sample > len(records) {
		sample = len(records)
	}
	step := len(records) / sample
	if step == 0 {
		step = 1
	}
	type acc struct {
		n    float64
		sum  vector.Vector
		sumq vector.Vector
	}
	groups := map[int]*acc{}
	for i := 0; i < len(records); i += step {
		rec := records[i]
		if rec.Label < 0 {
			continue
		}
		g := groups[rec.Label]
		if g == nil {
			g = &acc{sum: vector.New(rec.Dim()), sumq: vector.New(rec.Dim())}
			groups[rec.Label] = g
		}
		g.n++
		g.sum.Add(rec.Values)
		g.sumq.AddSquared(rec.Values)
	}
	var wAll, wLead, wTotal float64
	for _, g := range groups {
		if g.n < 8 {
			continue
		}
		var varAll, varLead float64
		for d := range g.sum {
			mean := g.sum[d] / g.n
			v := g.sumq[d]/g.n - mean*mean
			if v <= 0 {
				continue
			}
			varAll += v
			if d < 4 {
				varLead += v
			}
		}
		wAll += g.n * math.Sqrt(varAll)
		wLead += g.n * math.Sqrt(varLead)
		wTotal += g.n
	}
	if wTotal == 0 {
		return 0, 0
	}
	return wAll / wTotal, wLead / wTotal
}

// Large returns the dataset repeated `times` times — the paper's
// large-KDD99 / large-CoverType / large-KDD98 construction.
func (d Dataset) Large(times int) (Dataset, error) {
	src, err := stream.NewRepeatSource(d.Records, times)
	if err != nil {
		return Dataset{}, err
	}
	recs, err := stream.Drain(src)
	if err != nil {
		return Dataset{}, err
	}
	out := d
	out.Name = "large-" + d.Name
	out.Records = recs
	return out, nil
}

// EstimateNNDist computes the median nearest-neighbor distance over a
// record sample. Algorithm radii (absorb boundaries, grid sizes, DBSCAN
// eps) are expressed as multiples of this data-derived unit, the same way
// practitioners pick DBSCAN's eps from a k-dist plot.
func EstimateNNDist(records []stream.Record, sample int) float64 {
	if len(records) == 0 {
		return 1
	}
	if sample > len(records) {
		sample = len(records)
	}
	step := len(records) / sample
	if step == 0 {
		step = 1
	}
	pts := make([]vector.Vector, 0, sample)
	for i := 0; i < len(records) && len(pts) < sample; i += step {
		pts = append(pts, records[i].Values)
	}
	dists := make([]float64, 0, len(pts))
	for i, p := range pts {
		best := math.Inf(1)
		for j, q := range pts {
			if i == j {
				continue
			}
			if d := vector.SquaredDistance(p, q); d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) {
			dists = append(dists, math.Sqrt(best))
		}
	}
	if len(dists) == 0 {
		return 1
	}
	sort.Float64s(dists)
	med := dists[len(dists)/2]
	if med <= 0 {
		return 1
	}
	return med
}

// NewAlgorithm constructs one of the four algorithms tuned for a dataset:
// the number of micro-clusters follows the paper ("the number of
// micro-clusters is set to ten times of the real cluster numbers") and
// radii scale with the dataset's estimated intra-cluster radius.
func NewAlgorithm(name string, d Dataset, seed int64) (core.Algorithm, error) {
	clusters := d.Preset.NumClusters()
	if clusters <= 0 {
		clusters = 5
	}
	dim := 0
	if len(d.Records) > 0 {
		dim = d.Records[0].Dim()
	}
	r := d.ClusterRadius
	switch name {
	case clustream.Name:
		return clustream.New(clustream.Config{
			Dim:              dim,
			MaxMicroClusters: 10 * clusters,
			NumMacro:         clusters,
			RadiusFactor:     2,
			Horizon:          50,
			NewRadius:        r,
			Seed:             seed,
		}), nil
	case denstream.Name:
		return denstream.New(denstream.Config{
			Dim:     dim,
			Epsilon: 1.2 * r,
			Mu:      10,
			Beta:    0.25,
			Lambda:  0.25,
		}), nil
	case dstream.Name:
		return dstream.New(dstream.Config{
			Dim:             dim,
			GridDims:        4,
			GridSize:        2 * d.LeadRadius,
			Lambda:          0.998,
			DenseThreshold:  3,
			SparseThreshold: 0.4,
		}), nil
	case clustree.Name:
		return clustree.New(clustree.Config{
			Dim:       dim,
			MaxLeaves: 10 * clusters,
			Fanout:    3,
			Lambda:    0.1, // slower fade: leaves survive between refreshes
			NewRadius: 1.5 * r,
			NumMacro:  clusters,
			Seed:      seed,
		}), nil
	case simple.Name:
		return simple.New(simple.Config{Radius: 1.5 * r}), nil
	default:
		return nil, fmt.Errorf("harness: unknown algorithm %q", name)
	}
}
