package harness

import (
	"fmt"
	"math"
	"time"

	"diststream/internal/core"
	"diststream/internal/stream"
	"diststream/internal/vclock"
)

// StragglerModel reproduces the paper's straggler observation (§VII-D2:
// the straggler fraction grows from 12% at p=16 to 25% at p=32 under the
// synchronous update protocol). A task independently straggles with
// probability Prob(p) = Base + PerWorker·p, running Slowdown times longer.
type StragglerModel struct {
	Base      float64
	PerWorker float64
	Slowdown  float64
}

// PaperStragglers is calibrated to the paper's two published points:
// Prob(16) = 0.12, Prob(32) = 0.25. Slowdown 2 matches the common "slow
// node runs at half speed" contention regime.
var PaperStragglers = StragglerModel{
	Base:      -0.01,
	PerWorker: 0.008125,
	Slowdown:  2.0,
}

// Prob returns the per-task straggler probability at parallelism p.
func (s StragglerModel) Prob(p int) float64 {
	q := s.Base + s.PerWorker*float64(p)
	if q < 0 {
		q = 0
	}
	if q > 0.9 {
		q = 0.9
	}
	return q
}

// StageFactor returns the expected stage makespan multiplier at
// parallelism p: a synchronous stage waits for its slowest task, so the
// stage slows by (Slowdown−1) whenever at least one of the p tasks
// straggles.
func (s StragglerModel) StageFactor(p int) float64 {
	if p <= 0 {
		return 1
	}
	q := s.Prob(p)
	pAny := 1 - math.Pow(1-q, float64(p))
	return 1 + (s.Slowdown-1)*pAny
}

// Cost-model constants for the per-batch overheads that do not show up on
// an in-process executor but dominate a real cluster:
const (
	// broadcastPerWorker is the cost of shipping the serialized
	// micro-cluster model to one worker at the start of a batch
	// (hundreds of micro-clusters x ~100 doubles at gob+TCP speeds).
	broadcastPerWorker = 300 * time.Microsecond
	// taskLaunch is the scheduling cost of one task (Spark Streaming
	// task launch is ~1 ms; our gob task round-trip is cheaper).
	taskLaunch = 200 * time.Microsecond
	// stagesPerBatch is the number of parallel stages the pipeline runs
	// per batch (assign + local update).
	stagesPerBatch = 2
	// PaperBatchRecords is the paper's records-per-batch at stress rate:
	// 100K records/s x 10s batches. The analytic model evaluates batch
	// time at this batch size so that scaled-down measurement runs still
	// model the published operating point.
	PaperBatchRecords = 1_000_000
)

// CostProfile captures measured per-record stage costs of a pipeline run —
// the input to the analytic scalability model.
type CostProfile struct {
	Dataset   string
	Algorithm string
	Records   int
	Batches   int
	// AssignWork and LocalWork are total summed task durations
	// (single-core work) of the two parallel stages.
	AssignWork, LocalWork time.Duration
	// ShuffleWall and GlobalWall are total driver-side times. The shuffle
	// is modeled as parallelizable (Spark's shuffle is distributed; the
	// driver-side regroup here is a substrate simplification), the global
	// update as strictly serial (the paper's first bottleneck).
	ShuffleWall, GlobalWall time.Duration
	// RecordsPerBatch is the batch size the model evaluates at; 0 means
	// PaperBatchRecords.
	RecordsPerBatch int
}

// perRecord returns the cost of one record for the given total.
func (c CostProfile) perRecord(total time.Duration) float64 {
	if c.Records == 0 {
		return 0
	}
	return float64(total) / float64(c.Records)
}

// GlobalPerRecord returns the single-node global update latency per
// record — the quantity the paper reports as staying constant (~6µs on
// large-KDD99) while parallelism grows.
func (c CostProfile) GlobalPerRecord() time.Duration {
	return time.Duration(c.perRecord(c.GlobalWall))
}

func (c CostProfile) batchRecords() float64 {
	if c.RecordsPerBatch > 0 {
		return float64(c.RecordsPerBatch)
	}
	return PaperBatchRecords
}

// ModelBatchTime returns the modeled wall time of one batch of
// batchRecords() records at parallelism p under the straggler model.
func (c CostProfile) ModelBatchTime(p int, strag StragglerModel) time.Duration {
	if c.Records == 0 || p <= 0 {
		return 0
	}
	n := c.batchRecords()
	parallelWork := n * (c.perRecord(c.AssignWork) + c.perRecord(c.LocalWork) + c.perRecord(c.ShuffleWall))
	stageTime := parallelWork / float64(p) * strag.StageFactor(p)
	overhead := float64(broadcastPerWorker)*float64(p) +
		float64(taskLaunch)*float64(p*stagesPerBatch)
	serial := n * c.perRecord(c.GlobalWall)
	return time.Duration(stageTime + overhead + serial)
}

// ModelThroughput returns modeled records/second at parallelism p.
func (c CostProfile) ModelThroughput(p int, strag StragglerModel) float64 {
	bt := c.ModelBatchTime(p, strag)
	if bt <= 0 {
		return 0
	}
	return c.batchRecords() / bt.Seconds()
}

// ModelGain returns the modeled throughput gain at p relative to p=1.
func (c CostProfile) ModelGain(p int, strag StragglerModel) float64 {
	base := c.ModelThroughput(1, strag)
	if base == 0 {
		return 0
	}
	return c.ModelThroughput(p, strag) / base
}

// GlobalShare returns the fraction of the modeled batch time spent in the
// serialized global update at parallelism p.
func (c CostProfile) GlobalShare(p int, strag StragglerModel) float64 {
	bt := c.ModelBatchTime(p, strag)
	if bt <= 0 {
		return 0
	}
	return c.batchRecords() * c.perRecord(c.GlobalWall) / float64(bt)
}

// ProfileRun executes the order-aware pipeline once at parallelism 1 —
// where stage wall time equals summed task work, giving the single-core
// per-record costs the model needs — and extracts the cost profile.
func ProfileRun(ds Dataset, algoName string, batchSeconds float64, initRecords int, seed int64) (CostProfile, core.RunStats, error) {
	algo, err := NewAlgorithm(algoName, ds, seed)
	if err != nil {
		return CostProfile{}, core.RunStats{}, err
	}
	eng, err := NewEngine(1, nil)
	if err != nil {
		return CostProfile{}, core.RunStats{}, err
	}
	defer eng.Close()

	profile := CostProfile{Dataset: ds.Name, Algorithm: algoName}
	pl, err := core.NewPipeline(core.Config{
		Algorithm:     algo,
		Engine:        eng,
		BatchInterval: vclock.Duration(batchSeconds),
		InitRecords:   initRecords,
	})
	if err != nil {
		return CostProfile{}, core.RunStats{}, err
	}
	stats, err := pl.Run(stream.NewSliceSource(ds.Records))
	if err != nil {
		return CostProfile{}, core.RunStats{}, err
	}
	profile.Records = stats.Records
	profile.Batches = stats.Batches
	profile.AssignWork = stats.Assign.Wall
	profile.LocalWork = stats.LocalUpdate.Wall
	profile.ShuffleWall = stats.Shuffle.Wall
	profile.GlobalWall = stats.GlobalUpdate.Wall
	if profile.Batches == 0 {
		return profile, stats, fmt.Errorf("harness: profile run produced no batches")
	}
	return profile, stats, nil
}
