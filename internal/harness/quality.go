package harness

import (
	"fmt"

	"diststream/internal/cmm"
	"diststream/internal/core"
	"diststream/internal/datagen"
	"diststream/internal/seq"
	"diststream/internal/stream"
	"diststream/internal/vclock"
)

// Mode names used across quality and throughput experiments.
const (
	// ModeMOA is the one-record-at-a-time baseline (MOA-equivalent).
	ModeMOA = "moa"
	// ModeDistStream is the order-aware mini-batch pipeline.
	ModeDistStream = "diststream"
	// ModeUnordered is the unordered mini-batch baseline.
	ModeUnordered = "unordered"
)

// QualityConfig parameterizes the Figure 6 experiment.
type QualityConfig struct {
	// Datasets to evaluate (default: all three presets).
	Datasets []datagen.Preset
	// Algorithms to evaluate (default: clustream, denstream — the two the
	// paper details; dstream and clustree reproduce §VII-E).
	Algorithms []string
	// Records per dataset (default 40000).
	Records int
	// Rate in records per virtual second (paper: 1000).
	Rate float64
	// BatchSeconds is the mini-batch interval (paper: 10).
	BatchSeconds float64
	// InitRecords warm-up sample (default 1000).
	InitRecords int
	// WindowPoints caps the CMM evaluation window (default 600 sampled
	// points covering roughly the last batch).
	WindowPoints int
	// Seed drives generation and algorithms.
	Seed int64
}

func (c *QualityConfig) withDefaults() QualityConfig {
	out := *c
	if len(out.Datasets) == 0 {
		out.Datasets = []datagen.Preset{datagen.KDD99Sim, datagen.CovTypeSim, datagen.KDD98Sim}
	}
	if len(out.Algorithms) == 0 {
		out.Algorithms = []string{"clustream", "denstream"}
	}
	if out.Records <= 0 {
		out.Records = 40000
	}
	if out.Rate <= 0 {
		// The paper streams at 1000 rec/s; at full dataset scale that
		// spans ~500 virtual seconds (~50 batches). Scaled-down runs keep
		// a comparable batch count by streaming proportionally slower so
		// the stream always spans ~200 virtual seconds.
		out.Rate = float64(out.Records) / 200
	}
	if out.BatchSeconds <= 0 {
		out.BatchSeconds = 10
	}
	if out.InitRecords <= 0 {
		out.InitRecords = 1000
	}
	if out.WindowPoints <= 0 {
		out.WindowPoints = 600
	}
	return out
}

// QualityPoint is one CMM evaluation at a batch boundary.
type QualityPoint struct {
	Time vclock.Time
	CMM  float64
}

// ModeResult is one mode's quality run.
type ModeResult struct {
	Mode   string
	Points []QualityPoint
	// AvgCMM averages the per-batch CMM values.
	AvgCMM float64
	// NormCMM is AvgCMM divided by the MOA baseline's AvgCMM (the paper's
	// normalized CMM; 1.0 for MOA itself).
	NormCMM float64
	// Missed/Misplaced/Noise sum fault counts over all evaluations.
	Missed, Misplaced, Noise int
	// OutlierMCs counts micro-clusters created from outlier records.
	OutlierMCs int
}

// QualityCell is one dataset x algorithm comparison.
type QualityCell struct {
	Dataset   string
	Algorithm string
	Modes     []ModeResult
}

// Mode returns the named mode result.
func (c QualityCell) Mode(name string) (ModeResult, bool) {
	for _, m := range c.Modes {
		if m.Mode == name {
			return m, true
		}
	}
	return ModeResult{}, false
}

// QualityResult is the full Figure 6 reproduction.
type QualityResult struct {
	Cells []QualityCell
}

// sampledWindow keeps every k-th record so the CMM window spans a batch
// without quadratic blowup.
type sampledWindow struct {
	win   *cmm.Window
	every int
	seen  int
}

func newSampledWindow(capacity, every int) (*sampledWindow, error) {
	if every < 1 {
		every = 1
	}
	w, err := cmm.NewWindow(capacity)
	if err != nil {
		return nil, err
	}
	return &sampledWindow{win: w, every: every}, nil
}

func (s *sampledWindow) push(rec stream.Record) {
	if s.seen%s.every == 0 {
		s.win.Push(rec)
	}
	s.seen++
}

// evaluator scores a model against the sampled window.
type evaluator struct {
	algo   core.Algorithm
	window *sampledWindow
	cfg    cmm.Config

	points    []QualityPoint
	missed    int
	misplaced int
	noise     int
}

func (e *evaluator) evaluate(now vclock.Time, model *core.Model) error {
	if e.window.win.Len() < 10 {
		return nil
	}
	clustering, err := e.algo.Offline(model)
	if err != nil {
		return err
	}
	res, err := e.window.win.Score(func(rec stream.Record) int {
		return clustering.Assign(rec.Values)
	}, now, e.cfg)
	if err != nil {
		return err
	}
	e.points = append(e.points, QualityPoint{Time: now, CMM: res.CMM})
	e.missed += res.Missed
	e.misplaced += res.Misplaced
	e.noise += res.NoiseIncluded
	return nil
}

func (e *evaluator) result(mode string, outlierMCs int) ModeResult {
	out := ModeResult{
		Mode:       mode,
		Points:     e.points,
		Missed:     e.missed,
		Misplaced:  e.misplaced,
		Noise:      e.noise,
		OutlierMCs: outlierMCs,
	}
	if len(e.points) > 0 {
		var sum float64
		for _, p := range e.points {
			sum += p.CMM
		}
		out.AvgCMM = sum / float64(len(e.points))
	}
	return out
}

// RunQuality reproduces Figure 6: per dataset and algorithm, the CMM
// trajectory for the MOA baseline, the order-aware pipeline, and the
// unordered pipeline (all at parallelism 1, as the paper does for fair
// single-machine comparison).
func RunQuality(cfg QualityConfig) (*QualityResult, error) {
	c := cfg.withDefaults()
	result := &QualityResult{}
	for _, preset := range c.Datasets {
		ds, err := LoadDataset(preset, c.Records, c.Rate, c.Seed)
		if err != nil {
			return nil, err
		}
		cells, err := RunQualityDataset(cfg, ds)
		if err != nil {
			return nil, err
		}
		result.Cells = append(result.Cells, cells...)
	}
	return result, nil
}

// RunQualityDataset runs the Figure 6 comparison on one pre-loaded
// dataset — the entry point for real datasets loaded from CSV
// (LoadCSVDataset) as well as the synthetic presets.
func RunQualityDataset(cfg QualityConfig, ds Dataset) ([]QualityCell, error) {
	c := cfg.withDefaults()
	if c.Rate <= 0 && ds.Rate > 0 {
		c.Rate = ds.Rate
	}
	var cells []QualityCell
	for _, algoName := range c.Algorithms {
		cell := QualityCell{Dataset: ds.Name, Algorithm: algoName}

		moa, err := runQualityMOA(c, ds, algoName)
		if err != nil {
			return nil, fmt.Errorf("harness: %s/%s moa: %w", ds.Name, algoName, err)
		}
		ordered, err := runQualityPipeline(c, ds, algoName, core.OrderAware)
		if err != nil {
			return nil, fmt.Errorf("harness: %s/%s ordered: %w", ds.Name, algoName, err)
		}
		unordered, err := runQualityPipeline(c, ds, algoName, core.OrderUnordered)
		if err != nil {
			return nil, fmt.Errorf("harness: %s/%s unordered: %w", ds.Name, algoName, err)
		}
		moa.NormCMM = 1
		if moa.AvgCMM > 0 {
			ordered.NormCMM = ordered.AvgCMM / moa.AvgCMM
			unordered.NormCMM = unordered.AvgCMM / moa.AvgCMM
		}
		cell.Modes = []ModeResult{moa, ordered, unordered}
		cells = append(cells, cell)
	}
	return cells, nil
}

func (c QualityConfig) windowEvery() int {
	perBatch := int(c.Rate * c.BatchSeconds)
	every := perBatch / c.WindowPoints
	if every < 1 {
		every = 1
	}
	return every
}

func (c QualityConfig) cmmConfig() cmm.Config {
	// Half-life of one batch: recent records dominate the score.
	return cmm.Config{K: 3, Lambda: 1 / c.BatchSeconds}
}

func runQualityMOA(c QualityConfig, ds Dataset, algoName string) (ModeResult, error) {
	algo, err := NewAlgorithm(algoName, ds, c.Seed)
	if err != nil {
		return ModeResult{}, err
	}
	runner, err := seq.NewRunner(seq.Config{Algorithm: algo, InitRecords: c.InitRecords})
	if err != nil {
		return ModeResult{}, err
	}
	window, err := newSampledWindow(c.WindowPoints, c.windowEvery())
	if err != nil {
		return ModeResult{}, err
	}
	ev := &evaluator{algo: algo, window: window, cfg: c.cmmConfig()}
	nextEval := vclock.Time(-1)
	_, err = runner.Run(stream.NewSliceSource(ds.Records), func(rec stream.Record, model *core.Model) error {
		ev.window.push(rec)
		if nextEval < 0 {
			nextEval = rec.Timestamp.Add(vclock.Duration(c.BatchSeconds))
			return nil
		}
		if rec.Timestamp >= nextEval {
			if err := ev.evaluate(rec.Timestamp, model); err != nil {
				return err
			}
			nextEval = nextEval.Add(vclock.Duration(c.BatchSeconds))
		}
		return nil
	})
	if err != nil {
		return ModeResult{}, err
	}
	return ev.result(ModeMOA, runner.Stats().CreatedMCs), nil
}

func runQualityPipeline(c QualityConfig, ds Dataset, algoName string, order core.OrderMode) (ModeResult, error) {
	algo, err := NewAlgorithm(algoName, ds, c.Seed)
	if err != nil {
		return ModeResult{}, err
	}
	eng, err := NewEngine(1, nil)
	if err != nil {
		return ModeResult{}, err
	}
	defer eng.Close()
	window, err := newSampledWindow(c.WindowPoints, c.windowEvery())
	if err != nil {
		return ModeResult{}, err
	}
	ev := &evaluator{algo: algo, window: window, cfg: c.cmmConfig()}
	pl, err := core.NewPipeline(core.Config{
		Algorithm:     algo,
		Engine:        eng,
		BatchInterval: vclock.Duration(c.BatchSeconds),
		Order:         order,
		InitRecords:   c.InitRecords,
		OnBatch: func(batch stream.Batch, model *core.Model) error {
			for _, rec := range batch.Records {
				ev.window.push(rec)
			}
			return ev.evaluate(batch.End, model)
		},
	})
	if err != nil {
		return ModeResult{}, err
	}
	stats, err := pl.Run(stream.NewSliceSource(ds.Records))
	if err != nil {
		return ModeResult{}, err
	}
	mode := ModeDistStream
	if order == core.OrderUnordered {
		mode = ModeUnordered
	}
	return ev.result(mode, stats.CreatedMCs), nil
}

// BatchSizeQualityResult is the §VII-B2 batch-size quality sweep.
type BatchSizeQualityResult struct {
	Dataset      string
	Algorithm    string
	BatchSeconds []float64
	// AvgCMM[i] is the ordered pipeline's average CMM at BatchSeconds[i].
	AvgCMM []float64
	// MOAAvgCMM is the sequential baseline reference.
	MOAAvgCMM float64
}

// MaxDeltaPercent returns the largest |CMM - MOA| / MOA over the sweep,
// the number the paper reports as "on average 2.79% clustering quality
// differences" across batch sizes.
func (r BatchSizeQualityResult) MaxDeltaPercent() float64 {
	if r.MOAAvgCMM == 0 {
		return 0
	}
	var worst float64
	for _, v := range r.AvgCMM {
		d := (v - r.MOAAvgCMM) / r.MOAAvgCMM
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return 100 * worst
}

// RunBatchSizeQuality sweeps the batch interval (paper: 5s to 30s) at a
// fixed dataset/algorithm and reports ordered-pipeline CMM per size.
func RunBatchSizeQuality(cfg QualityConfig, preset datagen.Preset, algoName string, sizes []float64) (*BatchSizeQualityResult, error) {
	c := cfg.withDefaults()
	if len(sizes) == 0 {
		sizes = []float64{5, 10, 15, 20, 25, 30}
	}
	ds, err := LoadDataset(preset, c.Records, c.Rate, c.Seed)
	if err != nil {
		return nil, err
	}
	moa, err := runQualityMOA(c, ds, algoName)
	if err != nil {
		return nil, err
	}
	out := &BatchSizeQualityResult{
		Dataset:      ds.Name,
		Algorithm:    algoName,
		BatchSeconds: sizes,
		MOAAvgCMM:    moa.AvgCMM,
	}
	for _, size := range sizes {
		cc := c
		cc.BatchSeconds = size
		mode, err := runQualityPipeline(cc, ds, algoName, core.OrderAware)
		if err != nil {
			return nil, err
		}
		out.AvgCMM = append(out.AvgCMM, mode.AvgCMM)
	}
	return out, nil
}
