package harness

import (
	"fmt"
	"io"
	"strings"
)

// renderTable writes an aligned ASCII table.
func renderTable(w io.Writer, title string, header []string, rows [][]string) {
	if title != "" {
		fmt.Fprintln(w, title)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// Render writes the Table I reproduction.
func (r *Table1Result) Render(w io.Writer) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Dataset,
			fmt.Sprintf("%d", row.Records),
			fmt.Sprintf("%d", row.Features),
			fmt.Sprintf("%d", row.Clusters),
			fmt.Sprintf("%.0f%% %.1f%% %.1f%%", 100*row.Top3[0], 100*row.Top3[1], 100*row.Top3[2]),
			fmt.Sprintf("%.3f", row.Stability),
		})
	}
	renderTable(w, "Table I: dataset characteristics (synthetic substitutes)",
		[]string{"dataset", "records", "features", "clusters", "top-3 share", "stability"}, rows)
}

// Render writes the Figure 6 reproduction: normalized CMM per mode plus
// the fault analysis behind §VII-B2.
func (r *QualityResult) Render(w io.Writer) {
	rows := make([][]string, 0, len(r.Cells)*3)
	for _, cell := range r.Cells {
		for _, mode := range cell.Modes {
			rows = append(rows, []string{
				cell.Dataset,
				cell.Algorithm,
				mode.Mode,
				fmt.Sprintf("%.4f", mode.AvgCMM),
				fmt.Sprintf("%.3f", mode.NormCMM),
				fmt.Sprintf("%d", mode.Missed),
				fmt.Sprintf("%d", mode.Misplaced),
				fmt.Sprintf("%d", mode.OutlierMCs),
			})
		}
	}
	renderTable(w, "Figure 6: clustering quality (CMM; normalized against the MOA baseline)",
		[]string{"dataset", "algorithm", "mode", "avg CMM", "norm CMM", "missed", "misplaced", "outlier MCs"}, rows)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "CMM over the stream (one row per evaluation):")
	for _, cell := range r.Cells {
		fmt.Fprintf(w, "  %s / %s\n", cell.Dataset, cell.Algorithm)
		for _, mode := range cell.Modes {
			var b strings.Builder
			for _, pt := range mode.Points {
				fmt.Fprintf(&b, " %.3f", pt.CMM)
			}
			fmt.Fprintf(w, "    %-10s%s\n", mode.Mode, b.String())
		}
	}
}

// Render writes the §VII-B2 batch-size quality sweep.
func (r *BatchSizeQualityResult) Render(w io.Writer) {
	rows := make([][]string, 0, len(r.BatchSeconds))
	for i, size := range r.BatchSeconds {
		delta := 0.0
		if r.MOAAvgCMM > 0 {
			delta = 100 * (r.AvgCMM[i] - r.MOAAvgCMM) / r.MOAAvgCMM
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0fs", size),
			fmt.Sprintf("%.4f", r.AvgCMM[i]),
			fmt.Sprintf("%+.2f%%", delta),
		})
	}
	renderTable(w, fmt.Sprintf("Batch-size quality sweep (%s / %s; MOA avg CMM %.4f)",
		r.Dataset, r.Algorithm, r.MOAAvgCMM),
		[]string{"batch", "avg CMM", "delta vs MOA"}, rows)
}

// Render writes the Figure 7 reproduction.
func (r *ThroughputResult) Render(w io.Writer) {
	rows := make([][]string, 0, len(r.Cells))
	for _, cell := range r.Cells {
		rows = append(rows, []string{
			cell.Dataset,
			cell.Algorithm,
			cell.Mode,
			fmt.Sprintf("%d", cell.Records),
			fmt.Sprintf("%.0f", cell.Throughput),
			fmt.Sprintf("%d", cell.OutlierMCs),
		})
	}
	renderTable(w, "Figure 7: single-machine throughput (records/s, parallelism 1)",
		[]string{"dataset", "algorithm", "mode", "records", "throughput", "outlier MCs"}, rows)
}

// Render writes the Figure 8/10 reproduction.
func (r *ScalabilityResult) Render(w io.Writer) {
	for _, curve := range r.Curves {
		rows := make([][]string, 0, len(curve.Points))
		for _, pt := range curve.Points {
			rows = append(rows, []string{
				fmt.Sprintf("%d", pt.Parallelism),
				fmt.Sprintf("%.0f", pt.Throughput),
				fmt.Sprintf("%.2fx", pt.Gain),
				fmt.Sprintf("%.0f%%", 100*pt.StragglerFraction),
				fmt.Sprintf("%.0f%%", 100*pt.GlobalShare),
			})
		}
		renderTable(w, fmt.Sprintf("Scalability: %s / %s (global update %.1fµs/record, constant across p)",
			curve.Dataset, curve.Algorithm, float64(curve.GlobalPerRecord.Nanoseconds())/1000),
			[]string{"p", "throughput", "gain", "stragglers", "global share"}, rows)
		fmt.Fprintln(w)
	}
}

// Render writes the Figure 9 reproduction.
func (r *BatchSizeResult) Render(w io.Writer) {
	rows := make([][]string, 0, len(r.Points))
	for _, pt := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0fs", pt.BatchSeconds),
			fmt.Sprintf("%.0f", pt.Throughput),
		})
	}
	renderTable(w, fmt.Sprintf("Figure 9: throughput vs batch size (%s / %s, p=%d)",
		r.Dataset, r.Algorithm, r.Parallelism),
		[]string{"batch", "throughput"}, rows)
}

// Render writes the pre-merge ablation.
func (r *PreMergeResult) Render(w io.Writer) {
	rows := [][]string{
		{"with pre-merge", fmt.Sprintf("%d", r.With.CreatedMCs),
			r.With.GlobalWall.String(), fmt.Sprintf("%.0f", r.With.Throughput)},
		{"without", fmt.Sprintf("%d", r.Without.CreatedMCs),
			r.Without.GlobalWall.String(), fmt.Sprintf("%.0f", r.Without.Throughput)},
	}
	renderTable(w, fmt.Sprintf("Pre-merge ablation (%s / %s): %.1fx fewer outlier MCs shipped to the driver",
		r.Dataset, r.Algorithm, r.CreatedReduction()),
		[]string{"variant", "created MCs", "global wall", "throughput"}, rows)
}

// Render writes the parallelism-choice ablation.
func (r *ParallelismChoiceResult) Render(w io.Writer) {
	rows := [][]string{
		{"record-based (chosen)", r.RecordBased.String(), "-",
			fmt.Sprintf("%d", r.RecordItems), r.RecordBasedTotal().String()},
		{"model-based", r.ModelBased.String(), r.ModelBasedMerge.String(),
			fmt.Sprintf("%d", r.ModelItems), r.ModelBasedTotal().String()},
	}
	renderTable(w, fmt.Sprintf("Assign-step parallelism ablation (%d records x %d MCs, p=%d): model-based is %.2fx slower with communication",
		r.Records, r.MicroClusters, r.Parallelism, r.Speedup()),
		[]string{"strategy", "compute", "extra merge", "shipped items", "total (modeled comm)"}, rows)
}
