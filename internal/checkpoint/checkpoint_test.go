package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("model state bytes")
	path, err := Write(dir, 7, payload)
	if err != nil {
		t.Fatal(err)
	}
	seq, got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 || !bytes.Equal(got, payload) {
		t.Fatalf("Load = (%d, %q), want (7, %q)", seq, got, payload)
	}
}

func TestLoadLatestPicksNewestValid(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{1, 2, 3} {
		if _, err := Write(dir, seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	seq, payload, _, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || !bytes.Equal(payload, []byte{3}) {
		t.Fatalf("LoadLatest = (%d, %v)", seq, payload)
	}
}

func TestLoadLatestFallsBackPastCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, 1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	path, err := Write(dir, 2, []byte("soon to be torn"))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write that somehow survived the rename: truncate
	// the newest file mid-payload.
	if err := os.Truncate(path, 25); err != nil {
		t.Fatal(err)
	}
	seq, payload, _, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || string(payload) != "good" {
		t.Fatalf("LoadLatest = (%d, %q), want fallback to seq 1", seq, payload)
	}
}

func TestLoadLatestErrors(t *testing.T) {
	if _, _, _, err := LoadLatest(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, fileName(5)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadLatest(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("all-corrupt dir: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsMutations(t *testing.T) {
	env := Encode(9, []byte("payload"))
	cases := map[string][]byte{
		"truncated header":  env[:10],
		"truncated payload": env[:len(env)-12],
		"truncated crc":     env[:len(env)-3],
		"empty":             {},
	}
	flippedMagic := append([]byte(nil), env...)
	flippedMagic[0] ^= 0xff
	cases["bad magic"] = flippedMagic
	flippedPayload := append([]byte(nil), env...)
	flippedPayload[headerSize] ^= 0x01
	cases["payload bit flip"] = flippedPayload
	badVersion := append([]byte(nil), env...)
	badVersion[11] = 99
	cases["future version"] = badVersion
	trailing := append(append([]byte(nil), env...), 0xde, 0xad)
	cases["trailing garbage"] = trailing
	for name, data := range cases {
		if _, _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestWriteLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 1 || des[0].Name() != fileName(1) {
		t.Fatalf("dir contents = %v, want exactly %s", des, fileName(1))
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := Write(dir, seq, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	entries, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Seq != 4 || entries[1].Seq != 5 {
		t.Fatalf("entries after prune = %+v, want seqs 4 and 5", entries)
	}
	// keep < 1 still retains the newest checkpoint.
	if err := Prune(dir, 0); err != nil {
		t.Fatal(err)
	}
	entries, _ = List(dir)
	if len(entries) != 1 || entries[0].Seq != 5 {
		t.Fatalf("entries after prune(0) = %+v, want seq 5 only", entries)
	}
}

func TestListIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"ckpt-0000000000000001.dsckpt.tmp", "notes.txt", "ckpt-x.dsckpt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("entries = %+v, want none", entries)
	}
}

// FuzzDecode asserts decoding is total: arbitrary bytes must produce an
// error or a valid (seq, payload) pair — never a panic — and anything
// that decodes must re-encode to a decodable envelope with the same
// contents.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(Encode(0, nil))
	f.Add(Encode(42, []byte("model state")))
	long := Encode(1<<40, bytes.Repeat([]byte{0xab}, 1024))
	f.Add(long)
	f.Add(long[:len(long)-5])
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, payload, err := Decode(data)
		if err != nil {
			return
		}
		seq2, payload2, err := Decode(Encode(seq, payload))
		if err != nil {
			t.Fatalf("re-encode of valid envelope failed: %v", err)
		}
		if seq2 != seq || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed contents: (%d,%q) -> (%d,%q)", seq, payload, seq2, payload2)
		}
	})
}
