// Package checkpoint provides the durable-snapshot substrate of the
// recovery subsystem: an append-only directory of versioned, checksummed
// checkpoint files written with the atomic temp-file + rename protocol.
//
// The package is deliberately payload-agnostic — it stores opaque bytes
// under a monotonically increasing sequence number. The pipeline layer
// (internal/core) decides what goes into a snapshot; this layer
// guarantees that a crash at any instant never leaves a checkpoint that
// loads but is corrupt:
//
//   - writes go to "<name>.tmp", are fsynced, then renamed into place
//     (rename is atomic on POSIX filesystems), and the directory is
//     fsynced so the rename itself is durable;
//   - every file carries a magic header, the envelope format version,
//     its sequence number, an explicit payload length and a trailing
//     CRC-64/ECMA of the payload, so truncation, bit rot and trailing
//     garbage are all detected at load time;
//   - LoadLatest walks files newest-first and returns the first one that
//     validates, so a torn write of checkpoint N falls back to N-1.
//
// Decoding is total: malformed input of any shape produces an error,
// never a panic (fuzzed in checkpoint_test.go).
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// FormatVersion is the envelope format written by this package. Readers
// reject other versions instead of guessing.
const FormatVersion = 1

// magic identifies a DistStream checkpoint file. Exactly 8 bytes.
const magic = "DSCKPT\x00\x01"

// headerSize is magic(8) + version(4) + seq(8) + payload length(8).
const headerSize = 8 + 4 + 8 + 8

// footerSize is the trailing CRC-64 of the payload.
const footerSize = 8

// maxPayload bounds a declared payload length so a corrupt header cannot
// drive a huge allocation. 1 GiB is far beyond any model snapshot.
const maxPayload = 1 << 30

// Sentinel errors. ErrCorrupt wraps every validation failure so callers
// can distinguish "bad file" from I/O errors.
var (
	// ErrNoCheckpoint is returned by LoadLatest when the directory holds
	// no checkpoint files at all.
	ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")
	// ErrCorrupt marks a file that exists but fails validation
	// (truncated, checksum mismatch, bad magic or version).
	ErrCorrupt = errors.New("checkpoint: corrupt file")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Encode builds the on-disk envelope for one checkpoint.
func Encode(seq uint64, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload)+footerSize)
	copy(buf, magic)
	binary.BigEndian.PutUint32(buf[8:], FormatVersion)
	binary.BigEndian.PutUint64(buf[12:], seq)
	binary.BigEndian.PutUint64(buf[20:], uint64(len(payload)))
	copy(buf[headerSize:], payload)
	crc := crc64.Checksum(payload, crcTable)
	binary.BigEndian.PutUint64(buf[headerSize+len(payload):], crc)
	return buf
}

// Decode validates an envelope and returns its sequence number and
// payload. It never panics: any malformed input yields an error wrapping
// ErrCorrupt.
func Decode(data []byte) (seq uint64, payload []byte, err error) {
	if len(data) < headerSize+footerSize {
		return 0, nil, fmt.Errorf("%w: %d bytes is shorter than the minimum envelope", ErrCorrupt, len(data))
	}
	if string(data[:8]) != magic {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.BigEndian.Uint32(data[8:]); v != FormatVersion {
		return 0, nil, fmt.Errorf("%w: envelope version %d, want %d", ErrCorrupt, v, FormatVersion)
	}
	seq = binary.BigEndian.Uint64(data[12:])
	n := binary.BigEndian.Uint64(data[20:])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("%w: declared payload %d exceeds limit", ErrCorrupt, n)
	}
	if uint64(len(data)) != headerSize+n+footerSize {
		return 0, nil, fmt.Errorf("%w: file is %d bytes, envelope declares %d",
			ErrCorrupt, len(data), headerSize+n+footerSize)
	}
	payload = data[headerSize : headerSize+n]
	want := binary.BigEndian.Uint64(data[headerSize+n:])
	if got := crc64.Checksum(payload, crcTable); got != want {
		return 0, nil, fmt.Errorf("%w: payload checksum %016x, want %016x", ErrCorrupt, got, want)
	}
	return seq, payload, nil
}

// fileName renders the canonical checkpoint file name for a sequence
// number. Zero-padding keeps lexical and numeric order identical.
func fileName(seq uint64) string {
	return fmt.Sprintf("ckpt-%016d.dsckpt", seq)
}

// parseFileName extracts the sequence number from a canonical name.
func parseFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".dsckpt") {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".dsckpt")
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Write durably stores payload as checkpoint seq in dir, creating the
// directory if needed, and returns the final path. The write is atomic:
// a crash at any point leaves either the previous set of checkpoints or
// the previous set plus a fully valid new file — never a partial one.
func Write(dir string, seq uint64, payload []byte) (string, error) {
	if dir == "" {
		return "", errors.New("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: create dir: %w", err)
	}
	final := filepath.Join(dir, fileName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("checkpoint: create temp: %w", err)
	}
	_, werr := f.Write(Encode(seq, payload))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: write %s: %w", tmp, werr)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: rename: %w", err)
	}
	syncDir(dir)
	return final, nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best effort: some filesystems reject directory fsync, and the write
// itself is already atomic with respect to process crashes.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Entry describes one checkpoint file found in a directory.
type Entry struct {
	// Seq is the sequence number parsed from the file name.
	Seq uint64
	// Path is the absolute or dir-joined file path.
	Path string
}

// List returns the checkpoint entries in dir in ascending sequence
// order. Files that do not match the canonical name (including leftover
// .tmp files) are ignored. A missing directory lists as empty.
func List(dir string) ([]Entry, error) {
	des, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read dir: %w", err)
	}
	var out []Entry
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		seq, ok := parseFileName(de.Name())
		if !ok {
			continue
		}
		out = append(out, Entry{Seq: seq, Path: filepath.Join(dir, de.Name())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Load reads and validates one checkpoint file.
func Load(path string) (seq uint64, payload []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	seq, payload, err = Decode(data)
	if err != nil {
		return 0, nil, fmt.Errorf("%s: %w", path, err)
	}
	return seq, payload, nil
}

// LoadLatest returns the newest valid checkpoint in dir. Invalid files
// are skipped (falling back to the previous checkpoint — the torn-write
// recovery path); their errors are joined into the returned error only
// when no valid checkpoint remains. An empty or missing directory
// returns ErrNoCheckpoint.
func LoadLatest(dir string) (seq uint64, payload []byte, path string, err error) {
	entries, err := List(dir)
	if err != nil {
		return 0, nil, "", err
	}
	if len(entries) == 0 {
		return 0, nil, "", fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)
	}
	var loadErrs []error
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		seq, payload, lerr := Load(e.Path)
		if lerr != nil {
			loadErrs = append(loadErrs, lerr)
			continue
		}
		if seq != e.Seq {
			loadErrs = append(loadErrs, fmt.Errorf("%s: %w: file claims seq %d, name says %d",
				e.Path, ErrCorrupt, seq, e.Seq))
			continue
		}
		return seq, payload, e.Path, nil
	}
	return 0, nil, "", fmt.Errorf("checkpoint: no valid checkpoint in %s: %w", dir, errors.Join(loadErrs...))
}

// Prune removes all but the newest keep checkpoints. keep < 1 is treated
// as 1: the latest checkpoint is never deleted.
func Prune(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	entries, err := List(dir)
	if err != nil {
		return err
	}
	if len(entries) <= keep {
		return nil
	}
	var errs []error
	for _, e := range entries[:len(entries)-keep] {
		if err := os.Remove(e.Path); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
