// Package backoff provides the jittered exponential retry delay used by
// every reconnect/restart loop in the tree: the rpcexec client's call
// retries, the worker announce loop, and the process supervisor.
//
// The policy is deliberately tiny: delay(n) = min(Base << (n-1), Max),
// then jittered downward by up to Jitter fraction so a fleet of retriers
// that failed together does not retry in lockstep.
package backoff

import (
	"math/rand"
	"time"
)

// Defaults applied by Policy.Delay when the corresponding field is zero.
const (
	DefaultBase   = 50 * time.Millisecond
	DefaultMax    = 5 * time.Second
	DefaultJitter = 0.2
)

// Policy describes a jittered exponential backoff schedule. The zero
// value is usable and means "defaults".
type Policy struct {
	// Base is the delay before the first retry. Doubles per attempt.
	Base time.Duration
	// Max caps the exponential growth.
	Max time.Duration
	// Jitter is the fraction of the delay that may be shaved off at
	// random, in [0, 1): the returned delay is uniform in
	// [d*(1-Jitter), d]. Negative means "no jitter"; zero means the
	// default. Values >= 1 are clamped to the default.
	Jitter float64
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Max <= 0 {
		p.Max = DefaultMax
	}
	switch {
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter == 0 || p.Jitter >= 1:
		p.Jitter = DefaultJitter
	}
	if p.Max < p.Base {
		p.Max = p.Base
	}
	return p
}

// Delay returns the sleep before retry attempt n (1-based). Attempts
// below 1 are treated as 1. The result is always in (0, Max].
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		if d >= p.Max/2 {
			d = p.Max
			break
		}
		d <<= 1
	}
	if d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 {
		d -= time.Duration(p.Jitter * rand.Float64() * float64(d))
	}
	if d <= 0 {
		d = 1
	}
	return d
}

// NoJitter returns a copy of the policy with jitter disabled, for
// callers (and tests) that need the deterministic schedule.
func (p Policy) NoJitter() Policy {
	p.Jitter = -1
	return p
}
