package backoff

import (
	"testing"
	"time"
)

func TestDelayExponentialNoJitter(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: time.Second}.NoJitter()
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestDelayCap(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond}.NoJitter()
	if got := p.Delay(4); got != 50*time.Millisecond {
		t.Errorf("Delay(4) = %v, want cap 50ms", got)
	}
	// Huge attempt counts must not overflow the shift.
	if got := p.Delay(100000); got != 50*time.Millisecond {
		t.Errorf("Delay(100000) = %v, want cap 50ms", got)
	}
}

func TestDelayJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	lo := 50 * time.Millisecond
	hi := 100 * time.Millisecond
	for i := 0; i < 200; i++ {
		got := p.Delay(1)
		if got < lo || got > hi {
			t.Fatalf("Delay(1) = %v, want in [%v, %v]", got, lo, hi)
		}
	}
}

func TestDelayZeroConfigDefaults(t *testing.T) {
	var p Policy
	for i := 1; i < 20; i++ {
		got := p.Delay(i)
		if got <= 0 || got > DefaultMax {
			t.Fatalf("zero policy Delay(%d) = %v, want in (0, %v]", i, got, DefaultMax)
		}
	}
	// First attempt of the zero policy is within jitter of DefaultBase.
	got := p.Delay(1)
	lo := time.Duration(float64(DefaultBase) * (1 - DefaultJitter))
	if got < lo || got > DefaultBase {
		t.Errorf("zero policy Delay(1) = %v, want in [%v, %v]", got, lo, DefaultBase)
	}
}

func TestDelayAttemptBelowOne(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: time.Second}.NoJitter()
	if got := p.Delay(0); got != 10*time.Millisecond {
		t.Errorf("Delay(0) = %v, want base", got)
	}
	if got := p.Delay(-5); got != 10*time.Millisecond {
		t.Errorf("Delay(-5) = %v, want base", got)
	}
}

func TestDelayMaxBelowBase(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Millisecond}.NoJitter()
	if got := p.Delay(1); got != 100*time.Millisecond {
		t.Errorf("Delay(1) = %v, want base when max < base", got)
	}
}
