// Package dstream implements the D-Stream algorithm (Chen & Tu, KDD 2007)
// on the DistStream Algorithm API.
//
// D-Stream partitions the feature space into density grids; each grid is
// a micro-cluster whose density decays as Lambda^Δt. A record maps to
// exactly one grid (the "closest micro-cluster" search is a grid lookup —
// the reason the paper measures 1.1–1.3x higher assign throughput for
// D-Stream, Fig. 10). Sporadic grids (density below the sparse threshold)
// are removed by the global update; the offline phase groups adjacent
// dense grids into macro-clusters.
//
// Substitution note: real D-Stream grids the full feature space, which is
// untenable at 54 normalized dimensions (every record would land in its
// own cell). Like practical D-Stream implementations, we grid a prefix
// projection of GridDims dimensions (the synthetic datasets carry their
// separation in the leading dimensions) and keep full-dimensional sums
// inside each grid for centroid queries. See DESIGN.md.
package dstream

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"diststream/internal/core"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
	"diststream/internal/wire"
)

// Name is the registry name of this algorithm.
const Name = "dstream"

// MC is one density grid.
type MC struct {
	Id uint64
	// Cell holds the quantized grid coordinates over the projected
	// dimensions.
	Cell []int
	// D is the decayed density.
	D float64
	// CF1 is the decayed full-dimensional linear sum (for centroids).
	CF1  vector.Vector
	Born vclock.Time
	Last vclock.Time
}

var _ core.MicroCluster = (*MC)(nil)

// ID implements core.MicroCluster.
func (m *MC) ID() uint64 { return m.Id }

// SetID implements core.MicroCluster.
func (m *MC) SetID(id uint64) { m.Id = id }

// Weight implements core.MicroCluster.
func (m *MC) Weight() float64 { return m.D }

// CreatedAt implements core.MicroCluster.
func (m *MC) CreatedAt() vclock.Time { return m.Born }

// LastUpdated implements core.MicroCluster.
func (m *MC) LastUpdated() vclock.Time { return m.Last }

// Center implements core.MicroCluster.
func (m *MC) Center() vector.Vector {
	if m.D == 0 {
		return m.CF1.Clone()
	}
	return m.CF1.Clone().Scale(1 / m.D)
}

// Clone implements core.MicroCluster.
func (m *MC) Clone() core.MicroCluster {
	out := *m
	out.Cell = append([]int(nil), m.Cell...)
	out.CF1 = m.CF1.Clone()
	return &out
}

// Decay fades density from the last update to now.
func (m *MC) Decay(now vclock.Time, lambda float64) {
	dt := float64(now - m.Last)
	if dt <= 0 {
		return
	}
	f := math.Pow(lambda, dt)
	m.D *= f
	m.CF1.Scale(f)
	m.Last = now
}

// Absorb folds one record: D = lambda^|Δt| · D + 1. The absolute gap
// matches the naive update model of §IV-C1 (λ ≤ 1 always): out-of-order
// records under the unordered baseline decay newer content. See the
// DenStream counterpart for the full rationale.
func (m *MC) Absorb(rec stream.Record, lambda float64) {
	dt := math.Abs(float64(rec.Timestamp - m.Last))
	if dt != 0 {
		f := math.Pow(lambda, dt)
		m.D *= f
		m.CF1.Scale(f)
	}
	m.Last = rec.Timestamp
	m.D++
	m.CF1.Add(rec.Values)
}

// Config parameterizes D-Stream.
type Config struct {
	// Dim is the record dimensionality.
	Dim int
	// GridDims is the number of leading dimensions the grid projects
	// onto. Default min(Dim, 4).
	GridDims int
	// GridSize is the cell edge length. Default 1.
	GridSize float64
	// Lambda in (0,1) is the per-second density decay factor. Default
	// 0.998.
	Lambda float64
	// DenseThreshold Cm: grids at or above are dense. Default 3.
	DenseThreshold float64
	// SparseThreshold Cl: grids strictly below are sporadic and removed
	// at global update. Default 0.8.
	SparseThreshold float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.GridDims <= 0 {
		out.GridDims = 4
	}
	if out.Dim > 0 && out.GridDims > out.Dim {
		out.GridDims = out.Dim
	}
	if out.GridSize <= 0 {
		out.GridSize = 1
	}
	if out.Lambda <= 0 || out.Lambda >= 1 {
		out.Lambda = 0.998
	}
	if out.DenseThreshold <= 0 {
		out.DenseThreshold = 3
	}
	if out.SparseThreshold <= 0 {
		out.SparseThreshold = 0.8
	}
	return out
}

// Algorithm implements core.Algorithm for D-Stream.
type Algorithm struct {
	cfg Config
}

var _ core.Algorithm = (*Algorithm)(nil)

// New returns a D-Stream instance with defaults applied.
func New(cfg Config) *Algorithm {
	return &Algorithm{cfg: cfg.withDefaults()}
}

// Register adds the D-Stream factory to an algorithm registry.
func Register(reg *core.AlgorithmRegistry) error {
	return reg.Register(Name, func(p core.Params) (core.Algorithm, error) {
		return New(Config{
			Dim:             p.Dim,
			GridDims:        p.Int("gridDims", 0),
			GridSize:        p.Float("gridSize", 0),
			Lambda:          p.Float("lambda", 0),
			DenseThreshold:  p.Float("denseThreshold", 0),
			SparseThreshold: p.Float("sparseThreshold", 0),
		}), nil
	})
}

// RegisterWireTypes registers gob payload types.
func RegisterWireTypes() {
	gob.Register(&MC{})
	gob.Register(&Snapshot{})
	wire.RegisterMCCodec(Name, &MC{}, encMC, decMC)
}

// Name implements core.Algorithm.
func (a *Algorithm) Name() string { return Name }

// Params implements core.Algorithm.
func (a *Algorithm) Params() core.Params {
	return core.Params{
		Name: Name,
		Dim:  a.cfg.Dim,
		Ints: map[string]int{"gridDims": a.cfg.GridDims},
		Floats: map[string]float64{
			"gridSize":        a.cfg.GridSize,
			"lambda":          a.cfg.Lambda,
			"denseThreshold":  a.cfg.DenseThreshold,
			"sparseThreshold": a.cfg.SparseThreshold,
		},
	}
}

// CellOf quantizes a record's projected coordinates.
func (a *Algorithm) CellOf(v vector.Vector) []int {
	dims := a.cfg.GridDims
	if dims > len(v) {
		dims = len(v)
	}
	cell := make([]int, dims)
	for d := 0; d < dims; d++ {
		cell[d] = int(math.Floor(v[d] / a.cfg.GridSize))
	}
	return cell
}

// cellKey renders a cell as a map key.
func cellKey(cell []int) string {
	var b strings.Builder
	for i, c := range cell {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// Init implements core.Algorithm: grid the warm-up sample.
func (a *Algorithm) Init(records []stream.Record) ([]core.MicroCluster, error) {
	if len(records) == 0 {
		return nil, errors.New("dstream: empty init sample")
	}
	grids := map[string]*MC{}
	var order []string
	for _, rec := range records {
		key := cellKey(a.CellOf(rec.Values))
		mc, ok := grids[key]
		if !ok {
			mc = a.newMC(rec)
			grids[key] = mc
			order = append(order, key)
			continue
		}
		mc.Absorb(rec, a.cfg.Lambda)
	}
	out := make([]core.MicroCluster, len(order))
	for i, key := range order {
		out[i] = grids[key]
	}
	return out, nil
}

func (a *Algorithm) newMC(rec stream.Record) *MC {
	return &MC{
		Cell: a.CellOf(rec.Values),
		D:    1,
		CF1:  rec.Values.Clone(),
		Born: rec.Timestamp,
		Last: rec.Timestamp,
	}
}

// NewSnapshot implements core.Algorithm: a hash map from cell to grid.
func (a *Algorithm) NewSnapshot(mcs []core.MicroCluster) core.Snapshot {
	snap := &Snapshot{
		MCs:      mcs,
		GridDims: a.cfg.GridDims,
		GridSize: a.cfg.GridSize,
		ByCell:   make(map[string]int, len(mcs)),
		ByID:     make(map[uint64]int, len(mcs)),
	}
	for i, mc := range mcs {
		snap.ByCell[cellKey(mc.(*MC).Cell)] = i
		snap.ByID[mc.ID()] = i
	}
	return snap
}

// Update implements core.Algorithm.
func (a *Algorithm) Update(mc core.MicroCluster, rec stream.Record) {
	mc.(*MC).Absorb(rec, a.cfg.Lambda)
}

// Create implements core.Algorithm.
func (a *Algorithm) Create(rec stream.Record) core.MicroCluster {
	return a.newMC(rec)
}

// AbsorbIntoNew implements core.Algorithm: records share a new grid when
// they quantize to the same cell.
func (a *Algorithm) AbsorbIntoNew(mc core.MicroCluster, rec stream.Record) bool {
	cell := a.CellOf(rec.Values)
	existing := mc.(*MC).Cell
	if len(cell) != len(existing) {
		return false
	}
	for i := range cell {
		if cell[i] != existing[i] {
			return false
		}
	}
	return true
}

// GlobalUpdate implements core.Algorithm: apply updates in order (merging
// same-cell collisions), decay untouched grids, and remove sporadic
// grids.
func (a *Algorithm) GlobalUpdate(model *core.Model, updates []core.Update, now vclock.Time) error {
	// Live cell index for collision detection among created grids.
	liveByCell := make(map[string]uint64, model.Len())
	for _, mc := range model.List() {
		liveByCell[cellKey(mc.(*MC).Cell)] = mc.ID()
	}
	// Created grids must not merge into a grid whose KindUpdated is still
	// ahead in the order — the later Replace would wipe the merged mass.
	// Such collisions are deferred until all updates have been applied.
	pending := make(map[uint64]int, len(updates))
	for _, u := range updates {
		if u.Kind == core.KindUpdated {
			pending[u.MC.ID()]++
		}
	}
	touched := make(map[uint64]bool, len(updates))
	var deferred []*MC
	mergeInto := func(dstID uint64, m *MC) {
		dst := model.Get(dstID).(*MC)
		dst.D += m.D
		dst.CF1.Add(m.CF1)
		if m.Last > dst.Last {
			dst.Last = m.Last
		}
		touched[dstID] = true
	}
	for _, u := range updates {
		m, ok := u.MC.(*MC)
		if !ok {
			return fmt.Errorf("dstream: update carries %T", u.MC)
		}
		switch u.Kind {
		case core.KindUpdated:
			if pending[m.Id]--; pending[m.Id] <= 0 {
				delete(pending, m.Id)
			}
			if model.Get(m.Id) == nil {
				model.Add(m)
				liveByCell[cellKey(m.Cell)] = m.Id
			} else if err := model.Replace(m); err != nil {
				return err
			}
			touched[m.Id] = true
		case core.KindCreated:
			key := cellKey(m.Cell)
			if existingID, collision := liveByCell[key]; collision {
				if _, isPending := pending[existingID]; isPending {
					deferred = append(deferred, m)
					continue
				}
				// Two outlier groups (or an outlier group and a live
				// grid) map to the same cell: merge densities.
				mergeInto(existingID, m)
				continue
			}
			model.Add(m)
			liveByCell[key] = m.Id
			touched[m.Id] = true
		default:
			return fmt.Errorf("dstream: unknown update kind %d", u.Kind)
		}
	}
	for _, m := range deferred {
		key := cellKey(m.Cell)
		if existingID, collision := liveByCell[key]; collision {
			mergeInto(existingID, m)
			continue
		}
		model.Add(m)
		liveByCell[key] = m.Id
		touched[m.Id] = true
	}
	// Periodic sporadic-grid inspection (D-Stream's "gap" parameter):
	// sweeping every grid per one-record call would make the sequential
	// baseline quadratic; batch calls always sweep.
	if !sweepDue(model, now, len(updates)) {
		return nil
	}
	for _, mc := range model.List() {
		m := mc.(*MC)
		if !touched[m.Id] {
			m.Decay(now, a.cfg.Lambda)
		}
		if m.D < a.cfg.SparseThreshold {
			model.Remove(m.Id)
		}
	}
	return nil
}

// sweepInterval is the virtual-time period of the sporadic-grid sweep.
const sweepInterval = 1.0

// sweepDue reports whether the periodic sweep should run now, updating
// the model's bookkeeping when it does.
func sweepDue(model *core.Model, now vclock.Time, updates int) bool {
	last, ok := model.MetaFloat("dstream.lastSweep")
	if updates <= 1 && ok && float64(now)-last < sweepInterval {
		return false
	}
	model.SetMetaFloat("dstream.lastSweep", float64(now))
	return true
}

// Offline implements core.Algorithm: BFS over adjacent dense grids (cells
// differing by one step in exactly one projected dimension).
func (a *Algorithm) Offline(model *core.Model) (*core.Clustering, error) {
	var dense []*MC
	for _, mc := range model.List() {
		m := mc.(*MC)
		if m.D >= a.cfg.DenseThreshold {
			dense = append(dense, m)
		}
	}
	if len(dense) == 0 {
		return core.NewClustering(nil, nil, nil), nil
	}
	byCell := make(map[string]int, len(dense))
	for i, m := range dense {
		byCell[cellKey(m.Cell)] = i
	}
	labels := make([]int, len(dense))
	for i := range labels {
		labels[i] = -1
	}
	k := 0
	for i := range dense {
		if labels[i] >= 0 {
			continue
		}
		labels[i] = k
		queue := []int{i}
		for qi := 0; qi < len(queue); qi++ {
			cur := dense[queue[qi]]
			for _, ni := range neighbors(cur.Cell, byCell) {
				if labels[ni] < 0 {
					labels[ni] = k
					queue = append(queue, ni)
				}
			}
		}
		k++
	}
	macros := make([]core.MacroCluster, k)
	for i := range macros {
		macros[i].Label = i
	}
	centers := make([]vector.Vector, len(dense))
	for i, m := range dense {
		g := labels[i]
		centers[i] = m.Center()
		macros[g].Members = append(macros[g].Members, m.Id)
		macros[g].Weight += m.D
		if macros[g].Center == nil {
			macros[g].Center = vector.New(len(centers[i]))
		}
		macros[g].Center.AXPY(m.D, centers[i])
	}
	for g := range macros {
		if macros[g].Weight > 0 {
			macros[g].Center.Scale(1 / macros[g].Weight)
		}
	}
	clustering := core.NewClustering(macros, centers, labels)
	// Records farther than two cell diagonals (in the projected grid
	// space) from every dense grid's centroid are noise.
	clustering.SetNoiseCutoff(2 * a.cfg.GridSize * math.Sqrt(float64(a.cfg.GridDims)))
	return clustering, nil
}

// neighbors returns indices of dense grids adjacent to cell.
func neighbors(cell []int, byCell map[string]int) []int {
	var out []int
	probe := append([]int(nil), cell...)
	for d := range probe {
		for _, delta := range [2]int{-1, 1} {
			probe[d] = cell[d] + delta
			if i, ok := byCell[cellKey(probe)]; ok {
				out = append(out, i)
			}
		}
		probe[d] = cell[d]
	}
	return out
}

// Snapshot is D-Stream's grid-lookup search structure: O(1) per record.
type Snapshot struct {
	MCs      []core.MicroCluster
	GridDims int
	GridSize float64
	ByCell   map[string]int
	ByID     map[uint64]int
}

var _ core.Snapshot = (*Snapshot)(nil)

// Nearest implements core.Snapshot: the record's own cell is its
// micro-cluster; records in unoccupied cells are outliers.
func (s *Snapshot) Nearest(rec stream.Record) (uint64, bool, bool) {
	if len(s.MCs) == 0 {
		return 0, false, false
	}
	dims := s.GridDims
	if dims > len(rec.Values) {
		dims = len(rec.Values)
	}
	cell := make([]int, dims)
	for d := 0; d < dims; d++ {
		cell[d] = int(math.Floor(rec.Values[d] / s.GridSize))
	}
	i, ok := s.ByCell[cellKey(cell)]
	if !ok {
		return 0, false, true // occupied model, but this cell is new
	}
	return s.MCs[i].ID(), true, true
}

// Get implements core.Snapshot.
func (s *Snapshot) Get(id uint64) core.MicroCluster {
	i, ok := s.ByID[id]
	if !ok {
		return nil
	}
	return s.MCs[i]
}

// Len implements core.Snapshot.
func (s *Snapshot) Len() int { return len(s.MCs) }
