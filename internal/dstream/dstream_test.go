package dstream

import (
	"math"
	"testing"

	"diststream/internal/algotest"
	"diststream/internal/core"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

func testConfig() Config {
	return Config{
		Dim:             4,
		GridDims:        2,
		GridSize:        2,
		Lambda:          0.99,
		DenseThreshold:  3,
		SparseThreshold: 0.5,
	}
}

func TestConformance(t *testing.T) {
	algotest.Run(t, algotest.Suite{
		New:            func() core.Algorithm { return New(testConfig()) },
		Register:       Register,
		RegisterWire:   RegisterWireTypes,
		Dim:            4,
		SeparatesBlobs: true,
	})
}

func rec(seq uint64, ts vclock.Time, vals ...float64) stream.Record {
	return stream.Record{Seq: seq, Timestamp: ts, Values: vals}
}

func TestCellQuantization(t *testing.T) {
	a := New(testConfig())
	cases := []struct {
		v    vector.Vector
		want []int
	}{
		{vector.Vector{0, 0, 9, 9}, []int{0, 0}},       // grid projects first 2 dims
		{vector.Vector{1.9, -0.1, 0, 0}, []int{0, -1}}, // floor semantics
		{vector.Vector{2.0, 3.9, 0, 0}, []int{1, 1}},   // cell edges
		{vector.Vector{-4.1, 0, 0, 0}, []int{-3, 0}},
	}
	for _, c := range cases {
		got := a.CellOf(c.v)
		if len(got) != len(c.want) {
			t.Fatalf("CellOf(%v) = %v", c.v, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("CellOf(%v) = %v, want %v", c.v, got, c.want)
			}
		}
	}
}

func TestSameCellAbsorbs(t *testing.T) {
	a := New(testConfig())
	mc := a.Create(rec(0, 0, 0.5, 0.5, 0, 0))
	if !a.AbsorbIntoNew(mc, rec(1, 1, 1.5, 1.9, 7, 7)) {
		t.Error("same-cell record rejected")
	}
	if a.AbsorbIntoNew(mc, rec(2, 1, 2.5, 0.5, 0, 0)) {
		t.Error("different-cell record accepted")
	}
}

func TestDensityDecay(t *testing.T) {
	a := New(testConfig())
	mc := a.Create(rec(0, 0, 0, 0, 0, 0)).(*MC)
	// Absorb a second record 10 s later: D = 0.99^10 + 1.
	a.Update(mc, rec(1, 10, 0.1, 0.1, 0, 0))
	want := math.Pow(0.99, 10) + 1
	if math.Abs(mc.D-want) > 1e-12 {
		t.Errorf("D = %v, want %v", mc.D, want)
	}
	// Decay in GlobalUpdate advances the horizon.
	mc.Decay(20, 0.99)
	want *= math.Pow(0.99, 10)
	if math.Abs(mc.D-want) > 1e-12 {
		t.Errorf("after Decay: D = %v, want %v", mc.D, want)
	}
	if mc.Last != 20 {
		t.Errorf("Last = %v", mc.Last)
	}
}

func TestGridLookupSnapshot(t *testing.T) {
	a := New(testConfig())
	m1 := a.Create(rec(0, 0, 0.5, 0.5, 0, 0))
	m2 := a.Create(rec(1, 0, 10.5, 10.5, 0, 0))
	m1.SetID(1)
	m2.SetID(2)
	snap := a.NewSnapshot([]core.MicroCluster{m1, m2})
	// Record in m1's cell.
	id, absorbable, ok := snap.Nearest(rec(5, 1, 1.0, 1.0, 0, 0))
	if !ok || !absorbable || id != 1 {
		t.Errorf("Nearest = (%d,%v,%v)", id, absorbable, ok)
	}
	// Record in an unoccupied cell: found-but-outlier.
	_, absorbable, ok = snap.Nearest(rec(6, 1, 100, 100, 0, 0))
	if !ok {
		t.Error("non-empty snapshot reported not-ok")
	}
	if absorbable {
		t.Error("unoccupied cell reported absorbable")
	}
	if snap.Get(2) == nil || snap.Get(99) != nil {
		t.Error("Get broken")
	}
}

func TestGlobalUpdateMergesCellCollisions(t *testing.T) {
	a := New(testConfig())
	model := core.NewModel()
	// Two created grids in the same cell (from different outlier groups).
	g1 := a.Create(rec(0, 1, 0.5, 0.5, 0, 0))
	g2 := a.Create(rec(1, 2, 1.5, 1.5, 0, 0)) // same cell [0,0]
	err := a.GlobalUpdate(model, []core.Update{
		{Kind: core.KindCreated, MC: g1, OrderTime: 1, OrderSeq: 0},
		{Kind: core.KindCreated, MC: g2, OrderTime: 2, OrderSeq: 1},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if model.Len() != 1 {
		t.Fatalf("model size = %d, want 1 (cell collision merged)", model.Len())
	}
	if got := model.List()[0].Weight(); got != 2 {
		t.Errorf("merged density = %v, want 2", got)
	}
}

func TestSporadicGridsRemoved(t *testing.T) {
	a := New(testConfig())
	model := core.NewModel()
	mc := a.Create(rec(0, 0, 0.5, 0.5, 0, 0))
	model.Add(mc)
	// After 200 s at lambda 0.99, density ~ 0.134 < 0.5 => removed.
	if err := a.GlobalUpdate(model, nil, 200); err != nil {
		t.Fatal(err)
	}
	if model.Len() != 0 {
		t.Errorf("sporadic grid survived: %d", model.Len())
	}
}

func TestOfflineGroupsAdjacentDenseGrids(t *testing.T) {
	a := New(testConfig())
	model := core.NewModel()
	mkDense := func(seq uint64, x, y float64) {
		mc := a.Create(rec(seq, 1, x, y, 0, 0)).(*MC)
		mc.D = 10 // dense
		model.Add(mc)
	}
	// Chain of adjacent cells: (0,0), (1,0), (2,0) — one macro-cluster.
	mkDense(0, 0.5, 0.5)
	mkDense(1, 2.5, 0.5)
	mkDense(2, 4.5, 0.5)
	// Distant dense cell — second macro-cluster.
	mkDense(3, 40.5, 40.5)
	// A sparse cell in between must not bridge them.
	sparse := a.Create(rec(4, 1, 20.5, 20.5, 0, 0)).(*MC)
	sparse.D = 1
	model.Add(sparse)

	clustering, err := a.Offline(model)
	if err != nil {
		t.Fatal(err)
	}
	if clustering.NumClusters() != 2 {
		t.Fatalf("NumClusters = %d, want 2", clustering.NumClusters())
	}
	sizes := map[int]int{}
	for _, m := range clustering.Macros {
		sizes[m.Label] = len(m.Members)
	}
	if sizes[0]+sizes[1] != 4 {
		t.Errorf("member counts = %v", sizes)
	}
	if !(sizes[0] == 3 && sizes[1] == 1 || sizes[0] == 1 && sizes[1] == 3) {
		t.Errorf("adjacency grouping wrong: %v", sizes)
	}
	// Empty model.
	c2, err := a.Offline(core.NewModel())
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumClusters() != 0 {
		t.Error("empty model produced clusters")
	}
}

func TestInitGridsSample(t *testing.T) {
	a := New(testConfig())
	mcs, err := a.Init(algotest.TwoBlobStream(100, 4, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(mcs) < 2 {
		t.Fatalf("init produced %d grids", len(mcs))
	}
	var total float64
	for _, mc := range mcs {
		total += mc.Weight()
	}
	// All records at the same virtual time window: decay is tiny, so the
	// total density is close to the record count.
	if total < 95 || total > 100 {
		t.Errorf("total density = %v, want ~100", total)
	}
	if _, err := a.Init(nil); err == nil {
		t.Error("empty init accepted")
	}
}

func TestDefaults(t *testing.T) {
	a := New(Config{Dim: 3})
	if a.cfg.GridDims != 3 || a.cfg.GridSize != 1 || a.cfg.Lambda != 0.998 ||
		a.cfg.DenseThreshold != 3 || a.cfg.SparseThreshold != 0.8 {
		t.Errorf("defaults = %+v", a.cfg)
	}
	b := New(Config{Dim: 54})
	if b.cfg.GridDims != 4 {
		t.Errorf("GridDims default = %d, want 4", b.cfg.GridDims)
	}
}

func TestCellKey(t *testing.T) {
	if cellKey([]int{1, -2, 3}) != "1,-2,3" {
		t.Errorf("cellKey = %q", cellKey([]int{1, -2, 3}))
	}
	if cellKey(nil) != "" {
		t.Errorf("cellKey(nil) = %q", cellKey(nil))
	}
}
