package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diststream/internal/core"
	"diststream/internal/simple"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// testPublished builds a self-consistent core.Published fixture over the
// simple algorithm: one micro-cluster per (center, weight) pair, ids
// assigned 1..n in order.
func testPublished(centers [][]float64, weights []float64, batch, records int) core.Published {
	algo := simple.New(simple.Config{Radius: 2})
	mcs := make([]core.MicroCluster, len(centers))
	for i := range centers {
		c := vector.Vector(centers[i])
		mcs[i] = &simple.MC{
			Id:      uint64(i + 1),
			Sum:     c.Clone().Scale(weights[i]),
			W:       weights[i],
			Created: 0,
			Updated: vclock.Time(1),
		}
	}
	idx := core.BuildFlatIndex(mcs)
	return core.Published{
		Batch:  batch,
		Time:   vclock.Time(1),
		MCs:    mcs,
		Index:  &idx,
		Search: algo.NewSnapshot(mcs),
		Stats:  core.RunStats{Batches: batch, Records: records},
	}
}

// twoBlobPublished is the standard two-micro-cluster fixture: one MC at
// the origin, one far away, well separated relative to the absorb radius.
func twoBlobPublished(batch, records int) core.Published {
	return testPublished([][]float64{{0, 0}, {10, 10}}, []float64{4, 6}, batch, records)
}

// --- registry ------------------------------------------------------------

func TestRegistryPublishAndLookup(t *testing.T) {
	r := NewRegistry(3)
	if r.Latest() != nil {
		t.Fatal("Latest on empty registry should be nil")
	}
	if _, ok := r.At(1); ok {
		t.Fatal("At on empty registry should miss")
	}
	for i := 1; i <= 5; i++ {
		v := r.Publish(twoBlobPublished(i, i*100))
		if v != uint64(i) {
			t.Fatalf("publish %d assigned version %d", i, v)
		}
	}
	if got := r.Published(); got != 5 {
		t.Errorf("Published() = %d, want 5", got)
	}
	mv := r.Latest()
	if mv == nil || mv.Version != 5 || mv.Batch != 5 {
		t.Fatalf("Latest = %+v, want version 5 / batch 5", mv)
	}
	// keep=3 retains versions 3..5 only.
	wantVersions := []uint64{3, 4, 5}
	got := r.Versions()
	if len(got) != len(wantVersions) {
		t.Fatalf("Versions() = %v, want %v", got, wantVersions)
	}
	for i, v := range wantVersions {
		if got[i] != v {
			t.Fatalf("Versions() = %v, want %v", got, wantVersions)
		}
	}
	if _, ok := r.At(2); ok {
		t.Error("version 2 should have aged out of keep=3 window")
	}
	if mv4, ok := r.At(4); !ok || mv4.Batch != 4 {
		t.Errorf("At(4) = %+v, %v; want batch 4", mv4, ok)
	}
	if _, ok := r.At(99); ok {
		t.Error("At(99) should miss")
	}
}

func TestRegistryIngestRate(t *testing.T) {
	r := NewRegistry(4)
	if r.IngestRate() != 0 {
		t.Error("IngestRate with <2 snapshots should be 0")
	}
	r.Publish(twoBlobPublished(1, 1000))
	time.Sleep(10 * time.Millisecond)
	r.Publish(twoBlobPublished(2, 2000))
	if rate := r.IngestRate(); rate <= 0 {
		t.Errorf("IngestRate = %v, want > 0 after two spaced publishes", rate)
	}
}

// --- macro cache ---------------------------------------------------------

func TestMacroCacheSingleflight(t *testing.T) {
	c := NewMacroCache(8)
	key := MacroKey{Version: 1, Algorithm: MacroKMeans, K: 2, Seed: 7}
	var computes atomic.Int64
	const n = 16

	var wg sync.WaitGroup
	results := make([]*MacroResult, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, hit, err := c.Do(context.Background(), key, func() (*MacroResult, error) {
				computes.Add(1)
				time.Sleep(20 * time.Millisecond) // widen the collapse window
				return &MacroResult{Version: 1, Algorithm: MacroKMeans}, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], hits[i] = res, hit
		}(i)
	}
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", got)
	}
	st := c.Stats()
	if st.Computations != 1 {
		t.Errorf("Computations = %d, want 1", st.Computations)
	}
	if st.Misses != 1 || st.Hits != n-1 {
		t.Errorf("Misses/Hits = %d/%d, want 1/%d", st.Misses, st.Hits, n-1)
	}
	var hitCount int
	for i := range results {
		if results[i] != results[0] {
			t.Error("callers observed different result pointers")
		}
		if hits[i] {
			hitCount++
		}
	}
	if hitCount != n-1 {
		t.Errorf("%d callers reported hit, want %d", hitCount, n-1)
	}
	if !c.Peek(key) {
		t.Error("Peek should see the completed entry")
	}
}

func TestMacroCacheErrorNotCached(t *testing.T) {
	c := NewMacroCache(8)
	key := MacroKey{Version: 1, Algorithm: MacroDBSCAN, Eps: 1}
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), key, func() (*MacroResult, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("Do error = %v, want boom", err)
	}
	if c.Peek(key) {
		t.Error("failed computation should not be cached")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after failure, want 0", c.Len())
	}
	// Next request retries.
	res, hit, err := c.Do(context.Background(), key, func() (*MacroResult, error) {
		return &MacroResult{Version: 1}, nil
	})
	if err != nil || hit || res == nil {
		t.Fatalf("retry Do = (%v, %v, %v), want fresh success", res, hit, err)
	}
	if st := c.Stats(); st.Computations != 2 || st.Misses != 2 {
		t.Errorf("stats after retry = %+v, want 2 computations / 2 misses", st)
	}
}

func TestMacroCacheEviction(t *testing.T) {
	c := NewMacroCache(2)
	for v := uint64(1); v <= 3; v++ {
		key := MacroKey{Version: v, Algorithm: MacroKMeans, K: 2}
		if _, _, err := c.Do(context.Background(), key, func() (*MacroResult, error) {
			return &MacroResult{Version: v}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2 after eviction", c.Len())
	}
	if c.Peek(MacroKey{Version: 1, Algorithm: MacroKMeans, K: 2}) {
		t.Error("oldest entry should have been evicted first")
	}
	if !c.Peek(MacroKey{Version: 3, Algorithm: MacroKMeans, K: 2}) {
		t.Error("newest entry should survive")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
}

func TestMacroCacheWaiterHonorsContext(t *testing.T) {
	c := NewMacroCache(8)
	key := MacroKey{Version: 1, Algorithm: MacroKMeans, K: 3}
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), key, func() (*MacroResult, error) {
			close(started)
			<-release
			return &MacroResult{}, nil
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := c.Do(ctx, key, func() (*MacroResult, error) {
		t.Error("joiner must not compute")
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("joiner err = %v, want deadline exceeded", err)
	}
	close(release)
}

// --- limiter -------------------------------------------------------------

func TestLimiterShedAndQueueTimeout(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxInFlight: 1, MaxQueue: 1, QueueWait: 30 * time.Millisecond})

	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Second acquire takes the single queue permit and times out waiting.
	queuedErr := make(chan error, 1)
	go func() {
		_, err := l.Acquire(context.Background())
		queuedErr <- err
	}()
	// Wait for it to occupy the queue.
	deadline := time.Now().Add(time.Second)
	for l.Stats().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if l.Stats().Queued != 1 {
		t.Fatal("second acquire never queued")
	}

	// Third acquire finds queue and slots full: shed immediately.
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third acquire err = %v, want ErrOverloaded", err)
	}

	if err := <-queuedErr; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued acquire err = %v, want ErrOverloaded after QueueWait", err)
	}

	st := l.Stats()
	if st.Admitted != 1 || st.Shed != 2 || st.QueueTimeouts != 1 {
		t.Errorf("stats = %+v, want 1 admitted, 2 shed, 1 queue timeout", st)
	}

	// Release is idempotent and frees the slot for the next acquire.
	release()
	release()
	r2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	r2()
	if got := l.Stats().InFlight; got != 0 {
		t.Errorf("InFlight = %d after releases, want 0", got)
	}
}

func TestLimiterQueuedAcquireGetsFreedSlot(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxInFlight: 1, MaxQueue: 1, QueueWait: 2 * time.Second})
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := l.Acquire(context.Background())
		if err == nil {
			r()
		}
		got <- err
	}()
	deadline := time.Now().Add(time.Second)
	for l.Stats().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
}

func TestLimiterRateCap(t *testing.T) {
	// MaxRate 10/s with burst 1: the first acquire drains the bucket,
	// immediate followers are rate-shed even though slots are free.
	l := NewLimiter(LimiterConfig{MaxInFlight: 8, MaxRate: 10, MaxBurst: 1})
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second immediate acquire err = %v, want ErrOverloaded (rate cap)", err)
	}
	st := l.Stats()
	if st.RateLimited != 1 || st.Shed != 1 {
		t.Errorf("stats = %+v, want 1 rate-limited shed", st)
	}
	// After a refill interval a token is available again.
	time.Sleep(150 * time.Millisecond)
	r2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after refill: %v", err)
	}
	r2()
}

func TestLimiterDrain(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxInFlight: 2})
	l.Drain()
	if !l.Draining() {
		t.Error("Draining() should report true after Drain")
	}
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire while draining err = %v, want ErrDraining", err)
	}
	if got := l.Stats().Rejected; got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
}

// --- histogram -----------------------------------------------------------

func TestHistogramProm(t *testing.T) {
	h := NewHistogram()
	h.Observe(0.0001) // below first bound
	h.Observe(0.003)  // in (0.0025, 0.005]
	h.Observe(100)    // +Inf bucket
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	var b strings.Builder
	h.writeProm(&b, "x", `endpoint="assign"`)
	out := b.String()
	for _, want := range []string{
		`x_bucket{endpoint="assign",le="0.0005"} 1`,
		`x_bucket{endpoint="assign",le="0.005"} 2`,
		`x_bucket{endpoint="assign",le="+Inf"} 3`,
		`x_count{endpoint="assign"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

// --- HTTP server ---------------------------------------------------------

func newTestServer(t *testing.T, keep int, admission LimiterConfig) (*Server, *Registry) {
	t.Helper()
	reg := NewRegistry(keep)
	srv, err := NewServer(Config{Registry: reg, Admission: admission})
	if err != nil {
		t.Fatal(err)
	}
	return srv, reg
}

func doReq(t *testing.T, h http.Handler, method, target string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != nil {
		req = httptest.NewRequest(method, target, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	} else {
		req = httptest.NewRequest(method, target, nil)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestServerProbes(t *testing.T) {
	srv, reg := newTestServer(t, 0, LimiterConfig{})
	h := srv.Handler()

	if rec := doReq(t, h, "GET", "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("healthz = %d, want 200", rec.Code)
	}
	if rec := doReq(t, h, "GET", "/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz before publish = %d, want 503", rec.Code)
	}
	reg.Publish(twoBlobPublished(1, 100))
	if rec := doReq(t, h, "GET", "/readyz", nil); rec.Code != http.StatusOK {
		t.Errorf("readyz after publish = %d, want 200", rec.Code)
	}
	srv.Drain()
	if rec := doReq(t, h, "GET", "/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", rec.Code)
	}
	if rec := doReq(t, h, "GET", "/v1/clusters", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("query while draining = %d, want 503", rec.Code)
	}
}

func TestServerAssign(t *testing.T) {
	srv, reg := newTestServer(t, 0, LimiterConfig{})
	h := srv.Handler()

	// No model yet: 503.
	if rec := doReq(t, h, "GET", "/v1/assign?point=1,2", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("assign before publish = %d, want 503", rec.Code)
	}

	reg.Publish(twoBlobPublished(1, 100))

	rec := doReq(t, h, "GET", "/v1/assign?point=0.5,0", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("assign = %d: %s", rec.Code, rec.Body.String())
	}
	var resp AssignResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 1 {
		t.Errorf("nearest id = %d, want 1 (origin cluster)", resp.ID)
	}
	if !resp.Absorbable {
		t.Error("point 0.5 away with radius 2 should be absorbable")
	}
	if resp.Distance < 0.49 || resp.Distance > 0.51 {
		t.Errorf("distance = %v, want 0.5", resp.Distance)
	}
	if resp.Version != 1 || resp.Weight != 4 {
		t.Errorf("version/weight = %d/%v, want 1/4", resp.Version, resp.Weight)
	}

	// Outlier point: nearest but not absorbable.
	rec = doReq(t, h, "GET", "/v1/assign?point=5,5", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Absorbable {
		t.Error("midpoint should be outside both absorb radii")
	}

	// Bad requests.
	for _, target := range []string{
		"/v1/assign",                // missing point
		"/v1/assign?point=a,b",      // unparsable
		"/v1/assign?point=1",        // wrong dimensionality
		"/v1/assign?point=1,2&version=abc", // bad version
	} {
		if rec := doReq(t, h, "GET", target, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", target, rec.Code)
		}
	}
	if rec := doReq(t, h, "GET", "/v1/assign?point=1,2&version=99", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown version = %d, want 404", rec.Code)
	}
}

func TestServerClustersAndTimeTravel(t *testing.T) {
	srv, reg := newTestServer(t, 4, LimiterConfig{})
	h := srv.Handler()
	reg.Publish(twoBlobPublished(1, 100))
	reg.Publish(testPublished([][]float64{{0, 0}, {10, 10}, {20, 0}}, []float64{4, 6, 2}, 2, 200))

	rec := doReq(t, h, "GET", "/v1/clusters", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("clusters = %d: %s", rec.Code, rec.Body.String())
	}
	var resp ClustersResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != 2 || resp.Count != 3 || len(resp.Clusters) != 3 {
		t.Fatalf("latest clusters = version %d count %d, want 2/3", resp.Version, resp.Count)
	}
	if resp.Clusters[0].ID != 1 || resp.Clusters[0].Weight != 4 {
		t.Errorf("cluster[0] = %+v, want id 1 weight 4", resp.Clusters[0])
	}

	// Time travel to the older version.
	rec = doReq(t, h, "GET", "/v1/clusters?version=1", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != 1 || resp.Count != 2 {
		t.Errorf("version=1 clusters = version %d count %d, want 1/2", resp.Version, resp.Count)
	}
}

func TestServerMacroKMeansAndCache(t *testing.T) {
	srv, reg := newTestServer(t, 0, LimiterConfig{})
	h := srv.Handler()
	reg.Publish(testPublished(
		[][]float64{{0, 0}, {0.5, 0}, {10, 10}, {10.5, 10}},
		[]float64{1, 2, 3, 4}, 1, 100))

	body := []byte(`{"algorithm":"kmeans","k":2,"seed":7}`)
	rec := doReq(t, h, "POST", "/v1/macro", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("macro = %d: %s", rec.Code, rec.Body.String())
	}
	var res MacroResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("first macro response must not be cached")
	}
	if res.Version != 1 || res.Algorithm != MacroKMeans || res.MicroClusters != 4 {
		t.Errorf("result header = %+v, want version 1, kmeans over 4 MCs", res)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("got %d clusters, want 2", len(res.Clusters))
	}
	// The two near-origin MCs and the two far MCs must group together.
	members := map[uint64]int{}
	for _, c := range res.Clusters {
		for _, id := range c.Members {
			members[id] = c.Label
		}
	}
	if len(members) != 4 {
		t.Fatalf("members cover %d MCs, want 4", len(members))
	}
	if members[1] != members[2] || members[3] != members[4] || members[1] == members[3] {
		t.Errorf("grouping = %v, want {1,2} and {3,4} separated", members)
	}

	// Identical repeat: served from cache, exactly one computation.
	rec = doReq(t, h, "POST", "/v1/macro", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("repeat macro = %d", rec.Code)
	}
	var res2 MacroResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res2); err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Error("repeat macro response should be cached")
	}
	if st := srv.CacheStats(); st.Computations != 1 || st.Hits != 1 {
		t.Errorf("cache stats = %+v, want 1 computation / 1 hit", st)
	}
	// Different seed: a different key, computed anew.
	rec = doReq(t, h, "POST", "/v1/macro", []byte(`{"algorithm":"kmeans","k":2,"seed":8}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("seed-8 macro = %d", rec.Code)
	}
	if st := srv.CacheStats(); st.Computations != 2 {
		t.Errorf("Computations = %d after new seed, want 2", st.Computations)
	}
}

func TestServerMacroDBSCAN(t *testing.T) {
	srv, reg := newTestServer(t, 0, LimiterConfig{})
	h := srv.Handler()
	reg.Publish(testPublished(
		[][]float64{{0, 0}, {0.5, 0}, {10, 10}, {10.5, 10}, {50, 50}},
		[]float64{3, 3, 3, 3, 0.5}, 1, 100))

	rec := doReq(t, h, "POST", "/v1/macro", []byte(`{"algorithm":"dbscan","eps":1,"minPoints":2}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("dbscan macro = %d: %s", rec.Code, rec.Body.String())
	}
	var res MacroResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("dbscan found %d clusters, want 2: %+v", len(res.Clusters), res.Clusters)
	}
	if len(res.Noise) != 1 || res.Noise[0] != 5 {
		t.Errorf("noise = %v, want the light isolated MC (id 5)", res.Noise)
	}
}

func TestServerMacroValidation(t *testing.T) {
	srv, reg := newTestServer(t, 0, LimiterConfig{})
	h := srv.Handler()
	reg.Publish(twoBlobPublished(1, 100))

	for _, body := range []string{
		`{"algorithm":"spectral"}`,          // unknown algorithm
		`{"algorithm":"kmeans"}`,            // k missing
		`{"algorithm":"dbscan","eps":1}`,    // minPoints missing
		`{"algorithm":"kmeans","k":2,"bogus":1}`, // unknown field
		`not json`,
	} {
		if rec := doReq(t, h, "POST", "/v1/macro", []byte(body)); rec.Code != http.StatusBadRequest {
			t.Errorf("macro %s = %d, want 400", body, rec.Code)
		}
	}
	if rec := doReq(t, h, "POST", "/v1/macro", []byte(`{"algorithm":"kmeans","k":2,"version":42}`)); rec.Code != http.StatusNotFound {
		t.Errorf("macro unknown version = %d, want 404", rec.Code)
	}
}

func TestServerMacroPinsLatestVersion(t *testing.T) {
	srv, reg := newTestServer(t, 0, LimiterConfig{})
	h := srv.Handler()
	reg.Publish(twoBlobPublished(1, 100))
	reg.Publish(twoBlobPublished(2, 200))

	rec := doReq(t, h, "POST", "/v1/macro", []byte(`{"algorithm":"kmeans","k":2,"seed":1}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("macro = %d", rec.Code)
	}
	var res MacroResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 {
		t.Errorf("version-0 request resolved to %d, want latest (2)", res.Version)
	}
}

func TestServerOverload429(t *testing.T) {
	srv, reg := newTestServer(t, 0, LimiterConfig{
		MaxInFlight: 1, MaxQueue: 1, QueueWait: 5 * time.Millisecond, RetryAfter: 2 * time.Second,
	})
	h := srv.Handler()
	reg.Publish(twoBlobPublished(1, 100))

	// Occupy the only execution slot directly, then occupy the only queue
	// permit with a waiter; the HTTP request then sheds deterministically.
	release, err := srv.limiter.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		_, _ = srv.limiter.Acquire(context.Background()) // times out after QueueWait
	}()
	deadline := time.Now().Add(time.Second)
	for srv.limiter.Stats().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	rec := doReq(t, h, "GET", "/v1/assign?point=1,2", nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded assign = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want %q", got, "2")
	}
	<-waiterDone
	if st := srv.AdmissionStats(); st.Shed < 2 {
		t.Errorf("Shed = %d, want >= 2", st.Shed)
	}
}

func TestServerMetrics(t *testing.T) {
	reg := NewRegistry(0)
	srv, err := NewServer(Config{
		Registry: reg,
		IngestStats: func() IngestStats {
			return IngestStats{ProducerProduced: 1234, ProducerDropped: 5, ProducerLag: 17}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	reg.Publish(twoBlobPublished(3, 900))

	// Generate some traffic so query counters are non-zero.
	doReq(t, h, "GET", "/v1/assign?point=0,0", nil)
	doReq(t, h, "GET", "/v1/clusters", nil)
	doReq(t, h, "POST", "/v1/macro", []byte(`{"algorithm":"kmeans","k":2,"seed":3}`))
	doReq(t, h, "POST", "/v1/macro", []byte(`{"algorithm":"kmeans","k":2,"seed":3}`))

	rec := doReq(t, h, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"diststream_snapshot_version 1",
		"diststream_model_microclusters 2",
		"diststream_ingest_records_total 900",
		"diststream_snapshots_published_total 1",
		"diststream_producer_records_total 1234",
		"diststream_producer_dropped_total 5",
		"diststream_producer_lag 17",
		`diststream_query_total{endpoint="assign",code="200"} 1`,
		`diststream_query_total{endpoint="clusters",code="200"} 1`,
		`diststream_query_total{endpoint="macro",code="200"} 2`,
		"diststream_macro_cache_hits_total 1",
		"diststream_macro_computations_total 1",
		"diststream_admission_admitted_total 4",
		`diststream_query_latency_seconds_count{endpoint="assign"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full metrics output:\n%s", out)
	}
}

func TestFormatRetryAfter(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{50 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{3 * time.Second, "3"},
	}
	for _, c := range cases {
		if got := formatRetryAfter(c.d); got != c.want {
			t.Errorf("formatRetryAfter(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestParsePoint(t *testing.T) {
	v, err := parsePoint("1, 2.5,-3", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := vector.Vector{1, 2.5, -3}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("parsePoint = %v, want %v", v, want)
		}
	}
	if _, err := parsePoint("1,2", 3); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, err := parsePoint("", 0); err == nil {
		t.Error("empty point should error")
	}
	if _, err := parsePoint("x", 0); err == nil {
		t.Error("non-numeric point should error")
	}
}
