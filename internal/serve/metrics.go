package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// defaultBuckets are the latency histogram bounds in seconds — spanning
// sub-millisecond assign lookups through multi-second macro-clusterings.
var defaultBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a fixed-bucket, lock-free latency histogram rendering in
// Prometheus exposition format. Observations and rendering may race
// benignly (Prometheus scrapes tolerate torn cumulative reads).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64  // float64 bits, CAS-accumulated
	count   atomic.Uint64
}

// NewHistogram returns a histogram over the default latency buckets.
func NewHistogram() *Histogram {
	return &Histogram{
		bounds: defaultBuckets,
		counts: make([]atomic.Uint64, len(defaultBuckets)+1),
	}
}

// Observe records one latency in seconds.
func (h *Histogram) Observe(sec float64) {
	i := sort.SearchFloat64s(h.bounds, sec)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + sec)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// writeProm renders the histogram's _bucket/_sum/_count series. labels is
// either empty or a `key="value"` list without braces.
func (h *Histogram) writeProm(w io.Writer, name, labels string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labelPrefix(labels), formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix(labels), cum)
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, math.Float64frombits(h.sumBits.Load()))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

// endpointMetrics tracks one query endpoint: responses by status code and
// a latency histogram over admitted (executed) requests.
type endpointMetrics struct {
	mu      sync.Mutex
	byCode  map[int]*atomic.Uint64
	latency *Histogram
}

func newEndpointMetrics() *endpointMetrics {
	return &endpointMetrics{byCode: make(map[int]*atomic.Uint64), latency: NewHistogram()}
}

func (e *endpointMetrics) observe(code int, sec float64, executed bool) {
	e.counter(code).Add(1)
	if executed {
		e.latency.Observe(sec)
	}
}

func (e *endpointMetrics) counter(code int) *atomic.Uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.byCode[code]
	if !ok {
		c = new(atomic.Uint64)
		e.byCode[code] = c
	}
	return c
}

// codes returns the observed status codes in ascending order.
func (e *endpointMetrics) codes() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, 0, len(e.byCode))
	for c := range e.byCode {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

func (e *endpointMetrics) load(code int) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.byCode[code]; ok {
		return c.Load()
	}
	return 0
}

// IngestStats is the ingest-side view a serving process exposes on
// /metrics next to its query-side stats: producer backpressure counters
// (see stream.Buffered) supplementing the per-snapshot RunStats already
// carried by the registry.
type IngestStats struct {
	// ProducerProduced/ProducerDropped/ProducerLag mirror
	// stream.BufferedStats for the ingest source, when one is wired.
	ProducerProduced uint64
	ProducerDropped  uint64
	ProducerLag      int
}
