//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in. The
// ingest-impact acceptance test asserts a throughput ratio, and the race
// runtime taxes the query path (HTTP handling, atomics) far more than
// the ingest path, so the ratio is not meaningful under -race.
const raceEnabled = true
