package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// MacroKey identifies one macro-clustering computation: the snapshot
// version it ran over plus every parameter that influences the result.
// Because the offline algorithms are deterministic for a fixed seed
// (see offline.WeightedKMeans), two requests with equal keys would
// compute bit-identical results — which is what makes caching them
// coherent.
type MacroKey struct {
	Version   uint64
	Algorithm string // "kmeans" or "dbscan"
	K         int
	Seed      int64
	MaxIter   int
	Tolerance float64
	Eps       float64
	MinPoints float64
}

// macroEntry is one cache slot. done closes when the computation
// finishes; result/err are readable only after that.
type macroEntry struct {
	done   chan struct{}
	result *MacroResult
	err    error
}

// CacheStats is an atomic snapshot of the cache counters.
type CacheStats struct {
	// Hits counts requests served from a completed or in-flight entry
	// (an in-flight join is a hit: the joiner did not compute).
	Hits uint64
	// Misses counts requests that found no entry and started a
	// computation.
	Misses uint64
	// Computations counts compute executions that ran to completion
	// (success or error). For N concurrent identical requests this is 1.
	Computations uint64
	// Evictions counts entries discarded to respect the size bound.
	Evictions uint64
}

// MacroCache memoizes macro-clustering results by MacroKey with
// singleflight collapse: the first request for a key computes, every
// concurrent duplicate blocks on the same entry, and later requests hit
// the stored result. Failed computations are not cached — the next
// request retries. Size is bounded with FIFO eviction of completed
// entries (snapshot versions age out of the registry in FIFO order too,
// so oldest-first is the natural policy).
type MacroCache struct {
	mu      sync.Mutex
	entries map[MacroKey]*macroEntry
	order   []MacroKey // insertion order, for eviction
	max     int

	hits         atomic.Uint64
	misses       atomic.Uint64
	computations atomic.Uint64
	evictions    atomic.Uint64
}

// DefaultCacheSize bounds the number of retained macro-clustering
// results when the caller does not say otherwise.
const DefaultCacheSize = 64

// NewMacroCache returns a cache bounded to max entries (DefaultCacheSize
// when max <= 0).
func NewMacroCache(max int) *MacroCache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &MacroCache{entries: make(map[MacroKey]*macroEntry), max: max}
}

// Do returns the cached result for key, joining an in-flight computation
// when one exists, and otherwise runs compute exactly once for all
// concurrent callers with this key. hit reports whether this caller
// avoided computing (completed entry or in-flight join). ctx bounds only
// the wait for someone else's computation; the computation itself runs to
// completion so the winner can still populate the cache for others.
func (c *MacroCache) Do(ctx context.Context, key MacroKey, compute func() (*MacroResult, error)) (result *MacroResult, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		select {
		case <-e.done:
			return e.result, true, e.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	e := &macroEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	c.mu.Unlock()
	c.misses.Add(1)

	e.result, e.err = compute()
	c.computations.Add(1)
	close(e.done)

	c.mu.Lock()
	if e.err != nil {
		// Don't cache failures; drop the entry so the next request
		// retries (joiners already waiting still see this error).
		c.removeLocked(key, e)
	} else {
		c.evictLocked()
	}
	c.mu.Unlock()
	return e.result, false, e.err
}

// Peek reports whether a completed result is cached for key, without
// counting a hit or blocking on an in-flight computation.
func (c *MacroCache) Peek(key MacroKey) bool {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return e.err == nil
	default:
		return false
	}
}

// removeLocked deletes key if it still maps to e.
func (c *MacroCache) removeLocked(key MacroKey, e *macroEntry) {
	if cur, ok := c.entries[key]; ok && cur == e {
		delete(c.entries, key)
		for i, k := range c.order {
			if k == key {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
}

// evictLocked discards the oldest completed entries until the size bound
// holds. In-flight entries are skipped: someone is blocked on them.
func (c *MacroCache) evictLocked() {
	for len(c.entries) > c.max {
		evicted := false
		for i, k := range c.order {
			e := c.entries[k]
			select {
			case <-e.done:
			default:
				continue // in-flight; try the next-oldest
			}
			delete(c.entries, k)
			c.order = append(c.order[:i], c.order[i+1:]...)
			c.evictions.Add(1)
			evicted = true
			break
		}
		if !evicted {
			return // everything in-flight; over budget transiently
		}
	}
}

// Len returns the current number of entries (including in-flight ones).
func (c *MacroCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cache counters.
func (c *MacroCache) Stats() CacheStats {
	return CacheStats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Computations: c.computations.Load(),
		Evictions:    c.evictions.Load(),
	}
}
