// Package serve is the query-serving subsystem: it runs next to a live
// DistStream pipeline and answers user queries from published model
// snapshots without ever touching — or locking against — the ingest path.
//
// The pieces mirror the online/offline split of the paper (§II): the
// online phase continuously maintains micro-clusters; the offline phase
// runs *at query time*, on demand. Here that becomes:
//
//   - Registry: an RCU-style versioned snapshot store. The pipeline's
//     OnPublish hook swaps each post-global-update model copy in with one
//     atomic pointer store; readers load the pointer and never block the
//     writer. The last K versions stay addressable for time-travel
//     queries.
//   - Server: an HTTP API (net/http only) over the registry — nearest
//     micro-cluster lookups, micro-cluster dumps, on-demand offline
//     macro-clustering, health/readiness probes and Prometheus metrics.
//   - MacroCache: a (version, algorithm, params, seed)-keyed cache with
//     singleflight collapse, so a thundering herd of identical offline
//     queries computes each clustering exactly once. Coherent because
//     offline.WeightedKMeans/DBSCAN are deterministic for a fixed seed.
//   - Limiter: admission control — bounded in-flight queries plus a
//     bounded, deadline-capped wait queue; overload is answered with
//     429 + Retry-After instead of unbounded latency growth.
package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"diststream/internal/core"
)

// ModelVersion is one published, immutable model snapshot plus its
// registry-assigned version number. Readers may retain it indefinitely;
// nothing in it is ever mutated after publication.
type ModelVersion struct {
	// Version is the registry-assigned publication number, starting at 1
	// and strictly increasing.
	Version uint64
	// PublishedAt is the wall-clock publication time (used to derive
	// recent ingest rates for /metrics).
	PublishedAt time.Time
	core.Published
}

// registryState is the immutable value behind the registry's atomic
// pointer: an ascending-version window of retained snapshots. Publish
// replaces the whole state; readers see either the old or the new window,
// never a partial one.
type registryState struct {
	versions []*ModelVersion // ascending by Version; last is latest
}

// Registry is the versioned snapshot store between one publishing
// pipeline and many concurrent query readers. Publication is RCU-style:
// the publisher builds a fresh window and installs it with an atomic
// pointer store, so readers run lock-free and the ingest path never waits
// on a query. Multiple publishers are serialized by a mutex that readers
// never touch.
type Registry struct {
	mu    sync.Mutex // serializes publishers only
	state atomic.Pointer[registryState]
	keep  int
	// published counts publications ever made (== latest version).
	published atomic.Uint64
	// onEvict, when set, is called under mu — after the new window is
	// installed — once per version that just aged out of retention, in
	// ascending version order. See OnEvict.
	onEvict func(version uint64)
}

// DefaultKeepVersions is how many snapshot versions a registry retains
// when the caller does not say otherwise.
const DefaultKeepVersions = 8

// NewRegistry returns a registry retaining the last keep versions
// (DefaultKeepVersions when keep <= 0).
func NewRegistry(keep int) *Registry {
	if keep <= 0 {
		keep = DefaultKeepVersions
	}
	r := &Registry{keep: keep}
	r.state.Store(&registryState{})
	return r
}

// Publish assigns the next version number to pub, installs it as the
// latest snapshot and returns the assigned version. The caller must not
// mutate pub's contents afterwards. Publish is cheap enough to run
// synchronously on the pipeline's batch loop (one window copy of at most
// keep pointers plus one atomic store).
func (r *Registry) Publish(pub core.Published) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.state.Load()
	mv := &ModelVersion{
		Version:     r.published.Load() + 1,
		PublishedAt: time.Now(),
		Published:   pub,
	}
	next := &registryState{versions: make([]*ModelVersion, 0, len(old.versions)+1)}
	start := 0
	if len(old.versions) >= r.keep {
		start = len(old.versions) - r.keep + 1
	}
	next.versions = append(next.versions, old.versions[start:]...)
	next.versions = append(next.versions, mv)
	r.state.Store(next)
	r.published.Store(mv.Version)
	if r.onEvict != nil {
		for _, evicted := range old.versions[:start] {
			r.onEvict(evicted.Version)
		}
	}
	return mv.Version
}

// OnEvict installs the eviction-notification hook: fn is called once per
// version that ages out of the retention window, in ascending version
// order, under the publisher lock and after the post-eviction window is
// already installed. A consumer that mirrors registry retention (e.g. a
// subscription hub retaining per-version deltas) therefore observes
// evictions in publication order and can never consider a version both
// evicted and retained: by the time fn runs, At(version) already misses.
// fn must be cheap and must not call back into Publish. OnEvict must be
// set before the first Publish; later calls race with publishers.
func (r *Registry) OnEvict(fn func(version uint64)) { r.onEvict = fn }

// Retained returns the oldest and newest retained version numbers, or
// (0, 0) before the first publication. The pair is read from one
// immutable window, so min and max are always consistent with each
// other — though by the time the caller acts, a concurrent publish may
// have advanced both (detect that with the OnEvict hook, or by
// re-checking At).
func (r *Registry) Retained() (min, max uint64) {
	vs := r.state.Load().versions
	if len(vs) == 0 {
		return 0, 0
	}
	return vs[0].Version, vs[len(vs)-1].Version
}

// Hook adapts the registry to the pipeline's OnPublish hook.
func (r *Registry) Hook() core.PublishHook {
	return func(pub core.Published) { r.Publish(pub) }
}

// Latest returns the most recently published snapshot, or nil before the
// first publication.
func (r *Registry) Latest() *ModelVersion {
	vs := r.state.Load().versions
	if len(vs) == 0 {
		return nil
	}
	return vs[len(vs)-1]
}

// At returns the snapshot with the given version, or (nil, false) when it
// was never published or has aged out of the retention window.
func (r *Registry) At(version uint64) (*ModelVersion, bool) {
	vs := r.state.Load().versions
	// The window is small (keep versions) and ascending; scan from the
	// newest end, the common lookup.
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].Version == version {
			return vs[i], true
		}
		if vs[i].Version < version {
			break
		}
	}
	return nil, false
}

// Versions returns the retained version numbers in ascending order.
func (r *Registry) Versions() []uint64 {
	vs := r.state.Load().versions
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = v.Version
	}
	return out
}

// Published returns how many snapshots were ever published (the latest
// version number).
func (r *Registry) Published() uint64 { return r.published.Load() }

// IngestRate estimates recent ingest throughput in records per wall-clock
// second from the oldest and newest retained snapshots' cumulative record
// counts and publication times. It returns 0 before two snapshots exist
// or when no wall time elapsed between them.
func (r *Registry) IngestRate() float64 {
	vs := r.state.Load().versions
	if len(vs) < 2 {
		return 0
	}
	first, last := vs[0], vs[len(vs)-1]
	dt := last.PublishedAt.Sub(first.PublishedAt).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(last.Stats.Records-first.Stats.Records) / dt
}
