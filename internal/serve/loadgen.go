package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LoadConfig drives concurrent closed-loop clients against a serve
// endpoint — the measurement harness behind cmd/serveload and the
// ingest-interference acceptance test.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of concurrent closed-loop clients. Default 8.
	Clients int
	// Duration bounds the run (ignored when Stop is non-nil and fires
	// first). Default 5s when Stop is nil.
	Duration time.Duration
	// Stop, when non-nil, ends the run when closed.
	Stop <-chan struct{}
	// MacroEvery makes every Nth request per client a POST /v1/macro
	// (0 disables macro traffic). The rest are GET /v1/assign.
	MacroEvery int
	// Macro is the macro request body template (Version 0 = latest).
	Macro MacroRequest
	// Points are the assign query points. When nil, the generator
	// bootstraps them from GET /v1/clusters (the micro-cluster centers).
	Points [][]float64
	// Timeout bounds each request. Default 10s.
	Timeout time.Duration
	// Seed drives per-client point selection. Default 1.
	Seed int64
	// ErrorBackoff is how long a client sleeps after a transport error or
	// an unexpected (non-2xx, non-429) status before retrying, so a
	// not-yet-ready or failing server is probed gently instead of
	// hammered in a tight loop. Default 100ms.
	ErrorBackoff time.Duration
}

// LoadResult summarizes a load run.
type LoadResult struct {
	// Requests counts every attempt; OK the 2xx responses; Shed the 429s;
	// Errors transport failures and non-2xx/429 statuses.
	Requests uint64 `json:"requests"`
	OK       uint64 `json:"ok"`
	Shed     uint64 `json:"shed"`
	Errors   uint64 `json:"errors"`
	// MacroOK counts successful macro responses; MacroCached how many of
	// those were served from the cache.
	MacroOK     uint64 `json:"macro_ok"`
	MacroCached uint64 `json:"macro_cached"`
	// Elapsed is the measured wall time; QPS is OK / Elapsed.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	QPS            float64 `json:"qps"`
	// Latency percentiles over successful (2xx) requests, milliseconds.
	P50Millis float64 `json:"p50_ms"`
	P90Millis float64 `json:"p90_ms"`
	P99Millis float64 `json:"p99_ms"`
}

// RunLoad drives the configured load and aggregates latencies. Clients
// are well-behaved: a 429 response makes the client sleep the server's
// Retry-After hint before its next request, so shed traffic backs off
// instead of hot-spinning.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	if cfg.BaseURL == "" {
		return LoadResult{}, errors.New("serve: load needs a BaseURL")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ErrorBackoff <= 0 {
		cfg.ErrorBackoff = 100 * time.Millisecond
	}
	stop := cfg.Stop
	if stop == nil {
		if cfg.Duration <= 0 {
			cfg.Duration = 5 * time.Second
		}
		ch := make(chan struct{})
		timer := time.AfterFunc(cfg.Duration, func() { close(ch) })
		defer timer.Stop()
		stop = ch
	}
	points := cfg.Points
	if points == nil {
		var err error
		points, err = fetchPoints(cfg.BaseURL, cfg.Timeout)
		if err != nil {
			return LoadResult{}, fmt.Errorf("serve: bootstrap points: %w", err)
		}
	}
	if len(points) == 0 {
		return LoadResult{}, errors.New("serve: no query points")
	}

	macroBody, err := json.Marshal(cfg.Macro)
	if err != nil {
		return LoadResult{}, err
	}

	type clientResult struct {
		res       LoadResult
		latencies []time.Duration
	}
	results := make([]clientResult, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: cfg.Timeout}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			cr := &results[c]
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				macro := cfg.MacroEvery > 0 && n%cfg.MacroEvery == cfg.MacroEvery-1
				reqStart := time.Now()
				var (
					status  int
					retry   time.Duration
					cached  bool
					callErr error
				)
				if macro {
					status, retry, cached, callErr = doMacro(client, cfg.BaseURL, macroBody)
				} else {
					p := points[rng.Intn(len(points))]
					status, retry, callErr = doAssign(client, cfg.BaseURL, p)
				}
				cr.res.Requests++
				switch {
				case callErr != nil:
					cr.res.Errors++
					select {
					case <-stop:
						return
					case <-time.After(cfg.ErrorBackoff):
					}
				case status == http.StatusTooManyRequests:
					cr.res.Shed++
					if retry > 0 {
						select {
						case <-stop:
							return
						case <-time.After(retry):
						}
					}
				case status >= 200 && status < 300:
					cr.res.OK++
					cr.latencies = append(cr.latencies, time.Since(reqStart))
					if macro {
						cr.res.MacroOK++
						if cached {
							cr.res.MacroCached++
						}
					}
				default:
					cr.res.Errors++
					select {
					case <-stop:
						return
					case <-time.After(cfg.ErrorBackoff):
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var out LoadResult
	var all []time.Duration
	for i := range results {
		out.Requests += results[i].res.Requests
		out.OK += results[i].res.OK
		out.Shed += results[i].res.Shed
		out.Errors += results[i].res.Errors
		out.MacroOK += results[i].res.MacroOK
		out.MacroCached += results[i].res.MacroCached
		all = append(all, results[i].latencies...)
	}
	out.ElapsedSeconds = elapsed.Seconds()
	if elapsed > 0 {
		out.QPS = float64(out.OK) / elapsed.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out.P50Millis = percentileMillis(all, 0.50)
	out.P90Millis = percentileMillis(all, 0.90)
	out.P99Millis = percentileMillis(all, 0.99)
	return out, nil
}

func percentileMillis(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// fetchPoints bootstraps assign query points from the server's own
// micro-cluster centers.
func fetchPoints(baseURL string, timeout time.Duration) ([][]float64, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(baseURL + "/v1/clusters")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("GET /v1/clusters: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var dump ClustersResponse
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return nil, err
	}
	points := make([][]float64, 0, len(dump.Clusters))
	for _, c := range dump.Clusters {
		points = append(points, c.Center)
	}
	return points, nil
}

func doAssign(client *http.Client, baseURL string, point []float64) (status int, retryAfter time.Duration, err error) {
	var sb strings.Builder
	for i, f := range point {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
	}
	resp, err := client.Get(baseURL + "/v1/assign?point=" + sb.String())
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, parseRetryAfter(resp), nil
}

func doMacro(client *http.Client, baseURL string, body []byte) (status int, retryAfter time.Duration, cached bool, err error) {
	resp, err := client.Post(baseURL+"/v1/macro", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var res MacroResult
		if decErr := json.NewDecoder(resp.Body).Decode(&res); decErr == nil {
			cached = res.Cached
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, parseRetryAfter(resp), cached, nil
}

func parseRetryAfter(resp *http.Response) time.Duration {
	raw := resp.Header.Get("Retry-After")
	if raw == "" {
		return 0
	}
	secs, err := strconv.Atoi(raw)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
