package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"diststream/internal/stream"
	"diststream/internal/vector"
)

// Config configures a Server.
type Config struct {
	// Registry is the snapshot store the pipeline publishes into.
	// Required.
	Registry *Registry
	// Admission bounds concurrent query execution (zero fields take
	// defaults).
	Admission LimiterConfig
	// CacheSize bounds the macro-clustering cache (0 =
	// DefaultCacheSize).
	CacheSize int
	// IngestStats, when set, supplies producer-side backpressure
	// counters for /metrics (typically stream.Buffered.Stats wrapped in
	// an IngestStats).
	IngestStats func() IngestStats
	// ExtraMetrics, when set, is appended to the /metrics exposition
	// after the server's own counters — the hook other subsystems (the
	// subscription hub) use to publish on the same scrape endpoint. It
	// must write valid Prometheus text format and must be safe to call
	// concurrently with everything else.
	ExtraMetrics func(w io.Writer)
}

// Server answers queries over published model snapshots. All handlers
// read registry state through one atomic pointer load, so serving never
// blocks — or is blocked by — the ingesting pipeline.
type Server struct {
	registry *Registry
	cache    *MacroCache
	limiter  *Limiter
	ingest   func() IngestStats
	extra    func(w io.Writer)
	mux      *http.ServeMux

	assignMetrics   *endpointMetrics
	clustersMetrics *endpointMetrics
	macroMetrics    *endpointMetrics
}

// NewServer builds a Server from cfg.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, errors.New("serve: config needs a Registry")
	}
	s := &Server{
		registry:        cfg.Registry,
		cache:           NewMacroCache(cfg.CacheSize),
		limiter:         NewLimiter(cfg.Admission),
		ingest:          cfg.IngestStats,
		extra:           cfg.ExtraMetrics,
		assignMetrics:   newEndpointMetrics(),
		clustersMetrics: newEndpointMetrics(),
		macroMetrics:    newEndpointMetrics(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/assign", s.admitted(s.assignMetrics, s.handleAssign))
	mux.HandleFunc("GET /v1/clusters", s.admitted(s.clustersMetrics, s.handleClusters))
	mux.HandleFunc("POST /v1/macro", s.admitted(s.macroMetrics, s.handleMacro))
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP handler for mounting on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting queries (new ones get 503, readyz flips to 503)
// so an http.Server.Shutdown only has to wait for queries already
// executing.
func (s *Server) Drain() { s.limiter.Drain() }

// CacheStats exposes the macro cache counters (tests and tooling).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// AdmissionStats exposes the admission counters (tests and tooling).
func (s *Server) AdmissionStats() LimiterStats { return s.limiter.Stats() }

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// admitted wraps a query handler with admission control and per-endpoint
// metrics. Probes and /metrics stay outside admission so operators can
// always see an overloaded server.
func (s *Server) admitted(m *endpointMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := s.limiter.Acquire(r.Context())
		if err != nil {
			code := http.StatusServiceUnavailable
			if errors.Is(err, ErrOverloaded) {
				code = http.StatusTooManyRequests
				w.Header().Set("Retry-After", formatRetryAfter(s.limiter.RetryAfter()))
			}
			m.observe(code, 0, false)
			http.Error(w, err.Error(), code)
			return
		}
		defer release()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		m.observe(rec.code, time.Since(start).Seconds(), true)
	}
}

// formatRetryAfter renders a Retry-After header value in whole seconds
// (minimum 1, per RFC 9110's delta-seconds grammar).
func formatRetryAfter(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.limiter.Draining():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.registry.Latest() == nil:
		http.Error(w, "no model published yet", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}

// snapshotFor resolves the version query parameter ("" or "0" = latest).
func (s *Server) snapshotFor(raw string) (*ModelVersion, error) {
	if raw == "" || raw == "0" {
		mv := s.registry.Latest()
		if mv == nil {
			return nil, errNotReady
		}
		return mv, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad version %q", errBadRequest, raw)
	}
	mv, ok := s.registry.At(v)
	if !ok {
		return nil, fmt.Errorf("%w: version %d not retained (have %v)", errNotFound, v, s.registry.Versions())
	}
	return mv, nil
}

var (
	errBadRequest = errors.New("bad request")
	errNotFound   = errors.New("not found")
	errNotReady   = errors.New("no model published yet")
)

// fail maps resolver/validation errors onto HTTP status codes.
func fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errBadRequest):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, errNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, errNotReady):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing better to do than note it.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// AssignResponse is the GET /v1/assign payload: the nearest micro-cluster
// for the queried point at a model version.
type AssignResponse struct {
	Version uint64 `json:"version"`
	// ID is the nearest micro-cluster's id.
	ID uint64 `json:"id"`
	// Distance is the Euclidean distance from the point to that
	// micro-cluster's center.
	Distance float64 `json:"distance"`
	// Absorbable reports the algorithm's boundary decision: whether the
	// online phase would fold the point into the micro-cluster rather
	// than treat it as an outlier.
	Absorbable bool    `json:"absorbable"`
	Weight     float64 `json:"weight"`
}

// parsePoint decodes a comma-separated float vector.
func parsePoint(raw string, wantDim int) (vector.Vector, error) {
	if raw == "" {
		return nil, fmt.Errorf("%w: missing point parameter", errBadRequest)
	}
	parts := strings.Split(raw, ",")
	v := make(vector.Vector, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: point component %d: %v", errBadRequest, i, err)
		}
		v[i] = f
	}
	if wantDim > 0 && len(v) != wantDim {
		return nil, fmt.Errorf("%w: point has %d dims, model has %d", errBadRequest, len(v), wantDim)
	}
	return v, nil
}

// handleAssign serves nearest-micro-cluster queries straight off the
// snapshot's search structure — the same FlatIndex kernels the assign
// stage uses, so a query costs one one-vs-many scan over contiguous
// centers.
func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	mv, err := s.snapshotFor(r.URL.Query().Get("version"))
	if err != nil {
		fail(w, err)
		return
	}
	dim := 0
	if len(mv.MCs) > 0 {
		dim = len(mv.MCs[0].Center())
	}
	point, err := parsePoint(r.URL.Query().Get("point"), dim)
	if err != nil {
		fail(w, err)
		return
	}
	id, absorbable, ok := mv.Search.Nearest(stream.Record{Values: point, Timestamp: mv.Time})
	if !ok {
		fail(w, fmt.Errorf("%w: snapshot version %d is empty", errNotFound, mv.Version))
		return
	}
	resp := AssignResponse{Version: mv.Version, ID: id, Absorbable: absorbable}
	if mc := mv.Search.Get(id); mc != nil {
		resp.Distance = vector.Distance(point, mc.Center())
		resp.Weight = mc.Weight()
	}
	writeJSON(w, resp)
}

// ClusterInfo is one micro-cluster in a GET /v1/clusters dump.
type ClusterInfo struct {
	ID      uint64    `json:"id"`
	Weight  float64   `json:"weight"`
	Center  []float64 `json:"center"`
	Created float64   `json:"created"`
	Updated float64   `json:"updated"`
}

// ClustersResponse is the GET /v1/clusters payload.
type ClustersResponse struct {
	Version  uint64        `json:"version"`
	Time     float64       `json:"time"`
	Batch    int           `json:"batch"`
	Count    int           `json:"count"`
	Clusters []ClusterInfo `json:"clusters"`
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	mv, err := s.snapshotFor(r.URL.Query().Get("version"))
	if err != nil {
		fail(w, err)
		return
	}
	resp := ClustersResponse{
		Version:  mv.Version,
		Time:     mv.Time.Seconds(),
		Batch:    mv.Batch,
		Count:    len(mv.MCs),
		Clusters: make([]ClusterInfo, len(mv.MCs)),
	}
	for i, mc := range mv.MCs {
		resp.Clusters[i] = ClusterInfo{
			ID:      mc.ID(),
			Weight:  mc.Weight(),
			Center:  mc.Center(),
			Created: mc.CreatedAt().Seconds(),
			Updated: mc.LastUpdated().Seconds(),
		}
	}
	writeJSON(w, resp)
}

// handleMacro runs (or reuses) an on-demand offline macro-clustering over
// a pinned snapshot version. Identical concurrent requests collapse into
// one computation via the cache's singleflight; identical later requests
// hit the cache outright.
func (s *Server) handleMacro(w http.ResponseWriter, r *http.Request) {
	var req MacroRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	if err := req.validate(); err != nil {
		fail(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	mv, err := s.snapshotFor(strconv.FormatUint(req.Version, 10))
	if err != nil {
		fail(w, err)
		return
	}
	// Pin the resolved version so "latest" requests arriving while the
	// pipeline publishes agree on their cache identity.
	req.Version = mv.Version
	result, hit, err := s.cache.Do(r.Context(), req.key(), func() (*MacroResult, error) {
		return computeMacro(mv, req)
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Client went away while waiting on someone else's compute.
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		fail(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	resp := *result
	resp.Cached = hit
	writeJSON(w, resp)
}

// handleMetrics renders every counter in Prometheus text exposition
// format: ingest-side stats from the latest snapshot and the producer
// counters, query-side stats from the endpoint metrics, cache and
// admission counters.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	// Ingest side.
	fmt.Fprintf(&b, "# HELP diststream_snapshot_version Latest published model snapshot version.\n")
	fmt.Fprintf(&b, "# TYPE diststream_snapshot_version gauge\n")
	var version uint64
	if mv := s.registry.Latest(); mv != nil {
		version = mv.Version
		fmt.Fprintf(&b, "diststream_snapshot_version %d\n", version)
		fmt.Fprintf(&b, "# TYPE diststream_model_microclusters gauge\n")
		fmt.Fprintf(&b, "diststream_model_microclusters %d\n", len(mv.MCs))
		fmt.Fprintf(&b, "# TYPE diststream_ingest_batches_total counter\n")
		fmt.Fprintf(&b, "diststream_ingest_batches_total %d\n", mv.Stats.Batches)
		fmt.Fprintf(&b, "# TYPE diststream_ingest_records_total counter\n")
		fmt.Fprintf(&b, "diststream_ingest_records_total %d\n", mv.Stats.Records)
		fmt.Fprintf(&b, "# HELP diststream_ingest_batch_wall_seconds_total Cumulative wall time per pipeline stage.\n")
		fmt.Fprintf(&b, "# TYPE diststream_ingest_batch_wall_seconds_total counter\n")
		fmt.Fprintf(&b, "diststream_ingest_batch_wall_seconds_total{stage=\"assign\"} %g\n", mv.Stats.Assign.Wall.Seconds())
		fmt.Fprintf(&b, "diststream_ingest_batch_wall_seconds_total{stage=\"shuffle\"} %g\n", mv.Stats.Shuffle.Wall.Seconds())
		fmt.Fprintf(&b, "diststream_ingest_batch_wall_seconds_total{stage=\"local_update\"} %g\n", mv.Stats.LocalUpdate.Wall.Seconds())
		fmt.Fprintf(&b, "diststream_ingest_batch_wall_seconds_total{stage=\"global_update\"} %g\n", mv.Stats.GlobalUpdate.Wall.Seconds())
	} else {
		fmt.Fprintf(&b, "diststream_snapshot_version 0\n")
	}
	fmt.Fprintf(&b, "# TYPE diststream_snapshots_published_total counter\n")
	fmt.Fprintf(&b, "diststream_snapshots_published_total %d\n", s.registry.Published())
	fmt.Fprintf(&b, "# HELP diststream_ingest_rate_rps Recent ingest throughput over the retained snapshot window.\n")
	fmt.Fprintf(&b, "# TYPE diststream_ingest_rate_rps gauge\n")
	fmt.Fprintf(&b, "diststream_ingest_rate_rps %g\n", s.registry.IngestRate())

	if s.ingest != nil {
		in := s.ingest()
		fmt.Fprintf(&b, "# HELP diststream_producer_records_total Records pulled from the ingest producer.\n")
		fmt.Fprintf(&b, "# TYPE diststream_producer_records_total counter\n")
		fmt.Fprintf(&b, "diststream_producer_records_total %d\n", in.ProducerProduced)
		fmt.Fprintf(&b, "# HELP diststream_producer_dropped_total Records dropped at the ingest buffer (backpressure shed).\n")
		fmt.Fprintf(&b, "# TYPE diststream_producer_dropped_total counter\n")
		fmt.Fprintf(&b, "diststream_producer_dropped_total %d\n", in.ProducerDropped)
		fmt.Fprintf(&b, "# HELP diststream_producer_lag Records produced but not yet consumed by the pipeline.\n")
		fmt.Fprintf(&b, "# TYPE diststream_producer_lag gauge\n")
		fmt.Fprintf(&b, "diststream_producer_lag %d\n", in.ProducerLag)
	}

	// Query side.
	fmt.Fprintf(&b, "# HELP diststream_query_total Query responses by endpoint and status code.\n")
	fmt.Fprintf(&b, "# TYPE diststream_query_total counter\n")
	for _, ep := range []struct {
		name string
		m    *endpointMetrics
	}{
		{"assign", s.assignMetrics},
		{"clusters", s.clustersMetrics},
		{"macro", s.macroMetrics},
	} {
		for _, code := range ep.m.codes() {
			fmt.Fprintf(&b, "diststream_query_total{endpoint=%q,code=\"%d\"} %d\n", ep.name, code, ep.m.load(code))
		}
	}
	fmt.Fprintf(&b, "# HELP diststream_query_latency_seconds Latency of executed (admitted) queries.\n")
	fmt.Fprintf(&b, "# TYPE diststream_query_latency_seconds histogram\n")
	s.assignMetrics.latency.writeProm(&b, "diststream_query_latency_seconds", `endpoint="assign"`)
	s.clustersMetrics.latency.writeProm(&b, "diststream_query_latency_seconds", `endpoint="clusters"`)
	s.macroMetrics.latency.writeProm(&b, "diststream_query_latency_seconds", `endpoint="macro"`)

	cs := s.cache.Stats()
	fmt.Fprintf(&b, "# TYPE diststream_macro_cache_hits_total counter\n")
	fmt.Fprintf(&b, "diststream_macro_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(&b, "# TYPE diststream_macro_cache_misses_total counter\n")
	fmt.Fprintf(&b, "diststream_macro_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(&b, "# HELP diststream_macro_computations_total Offline clusterings actually computed (identical concurrent requests collapse to one).\n")
	fmt.Fprintf(&b, "# TYPE diststream_macro_computations_total counter\n")
	fmt.Fprintf(&b, "diststream_macro_computations_total %d\n", cs.Computations)
	fmt.Fprintf(&b, "# TYPE diststream_macro_cache_evictions_total counter\n")
	fmt.Fprintf(&b, "diststream_macro_cache_evictions_total %d\n", cs.Evictions)

	ls := s.limiter.Stats()
	fmt.Fprintf(&b, "# TYPE diststream_admission_admitted_total counter\n")
	fmt.Fprintf(&b, "diststream_admission_admitted_total %d\n", ls.Admitted)
	fmt.Fprintf(&b, "# HELP diststream_admission_shed_total Queries answered 429 because in-flight and queue bounds were full.\n")
	fmt.Fprintf(&b, "# TYPE diststream_admission_shed_total counter\n")
	fmt.Fprintf(&b, "diststream_admission_shed_total %d\n", ls.Shed)
	fmt.Fprintf(&b, "# TYPE diststream_admission_queue_timeouts_total counter\n")
	fmt.Fprintf(&b, "diststream_admission_queue_timeouts_total %d\n", ls.QueueTimeouts)
	fmt.Fprintf(&b, "# HELP diststream_admission_rate_limited_total Queries shed by the MaxRate token bucket (included in shed).\n")
	fmt.Fprintf(&b, "# TYPE diststream_admission_rate_limited_total counter\n")
	fmt.Fprintf(&b, "diststream_admission_rate_limited_total %d\n", ls.RateLimited)
	fmt.Fprintf(&b, "# TYPE diststream_inflight_queries gauge\n")
	fmt.Fprintf(&b, "diststream_inflight_queries %d\n", ls.InFlight)
	fmt.Fprintf(&b, "# TYPE diststream_queued_queries gauge\n")
	fmt.Fprintf(&b, "diststream_queued_queries %d\n", ls.Queued)

	if s.extra != nil {
		s.extra(&b)
	}

	_, _ = w.Write([]byte(b.String()))
}
