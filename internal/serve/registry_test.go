package serve

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"diststream/internal/core"
	"diststream/internal/simple"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// stressPublished builds a snapshot whose entire content is a pure
// function of its intended version v, so concurrent readers can verify
// they observed a complete, internally consistent publication:
//
//   - it holds n = (v-1)%5 + 1 micro-clusters with ids 1..n
//   - micro-cluster i has weight stressWeight(v) and center {v, i}
//   - the FlatIndex and the search snapshot are built over exactly those
//
// Any torn read — a model from one version paired with an index from
// another, or a half-visible window — shows up as a mismatch.
func stressPublished(v uint64) core.Published {
	algo := simple.New(simple.Config{Radius: 2})
	n := int((v-1)%5) + 1
	mcs := make([]core.MicroCluster, n)
	w := stressWeight(v)
	for i := 0; i < n; i++ {
		center := vector.Vector{float64(v), float64(i)}
		mcs[i] = &simple.MC{
			Id:      uint64(i + 1),
			Sum:     center.Clone().Scale(w),
			W:       w,
			Updated: vclock.Time(1),
		}
	}
	idx := core.BuildFlatIndex(mcs)
	return core.Published{
		Batch:  int(v),
		Time:   vclock.Time(1),
		MCs:    mcs,
		Index:  &idx,
		Search: algo.NewSnapshot(mcs),
		Stats:  core.RunStats{Batches: int(v), Records: int(v) * 10},
	}
}

// stressWeight maps a version to a power-of-two weight, so Center() =
// (center * w) / w reproduces the integer center components exactly and
// consistency checks can use bit equality.
func stressWeight(v uint64) float64 { return float64(uint64(1) << (v % 8)) }

// checkConsistent asserts every cross-referenced piece of mv describes the
// same version. Returns silently on success; reports through t on any
// torn or partial publication.
func checkConsistent(t *testing.T, mv *ModelVersion) {
	t.Helper()
	v := mv.Version
	wantN := int((v-1)%5) + 1
	if mv.Batch != int(v) {
		t.Errorf("version %d carries batch %d", v, mv.Batch)
		return
	}
	if len(mv.MCs) != wantN {
		t.Errorf("version %d holds %d MCs, want %d", v, len(mv.MCs), wantN)
		return
	}
	if mv.Index == nil || len(mv.Index.IDs) != wantN || mv.Search.Len() != wantN {
		t.Errorf("version %d index/search sized %v/%d, want %d", v, mv.Index, mv.Search.Len(), wantN)
		return
	}
	for i, mc := range mv.MCs {
		if mc.Weight() != stressWeight(v) {
			t.Errorf("version %d MC %d has weight %v (model from another version?)", v, i, mc.Weight())
			return
		}
		if mc.ID() != uint64(i+1) || mv.Index.IDs[i] != uint64(i+1) {
			t.Errorf("version %d MC %d id mismatch: model %d index %d", v, i, mc.ID(), mv.Index.IDs[i])
			return
		}
		center := mc.Center()
		row := mv.Index.Centers.Row(i)
		if center[0] != float64(v) || center[1] != float64(i) ||
			row[0] != center[0] || row[1] != center[1] {
			t.Errorf("version %d MC %d center %v vs index row %v (want {%d,%d})", v, i, center, row, v, i)
			return
		}
		if got := mv.Search.Get(uint64(i + 1)); got == nil || got.Weight() != stressWeight(v) {
			t.Errorf("version %d search snapshot disagrees with model at id %d", v, i+1)
			return
		}
	}
	if mv.Stats.Records != int(v)*10 {
		t.Errorf("version %d carries stats from records %d", v, mv.Stats.Records)
	}
}

// TestRegistryConcurrentReadersStress hammers a registry with one
// publisher and many concurrent readers under -race: every reader must
// only ever observe complete (version, model, index, search) snapshots,
// and Latest must be monotonic per reader.
func TestRegistryConcurrentReadersStress(t *testing.T) {
	const (
		publishes = 2000
		readers   = 8
		keep      = 4
	)
	r := NewRegistry(keep)
	var done atomic.Bool

	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var lastSeen uint64
			for !done.Load() {
				// Latest: consistent and monotonic.
				if mv := r.Latest(); mv != nil {
					if mv.Version < lastSeen {
						t.Errorf("Latest went backwards: %d after %d", mv.Version, lastSeen)
						return
					}
					lastSeen = mv.Version
					checkConsistent(t, mv)
				}
				// Random time-travel inside the retained window: whatever
				// At returns must be complete too (a miss is fine — the
				// version may age out between Versions and At).
				if vs := r.Versions(); len(vs) > 0 {
					// Window must be ascending and contiguous.
					for j := 1; j < len(vs); j++ {
						if vs[j] != vs[j-1]+1 {
							t.Errorf("retained window not contiguous: %v", vs)
							return
						}
					}
					pick := vs[rng.Intn(len(vs))]
					if mv, ok := r.At(pick); ok {
						if mv.Version != pick {
							t.Errorf("At(%d) returned version %d", pick, mv.Version)
							return
						}
						checkConsistent(t, mv)
					}
				}
			}
		}(int64(i + 1))
	}

	for v := uint64(1); v <= publishes; v++ {
		got := r.Publish(stressPublished(v))
		if got != v {
			t.Fatalf("publish %d assigned version %d", v, got)
		}
	}
	done.Store(true)
	wg.Wait()

	if r.Published() != publishes {
		t.Errorf("Published = %d, want %d", r.Published(), publishes)
	}
	final := r.Latest()
	if final == nil || final.Version != publishes {
		t.Fatalf("final Latest = %+v, want version %d", final, publishes)
	}
	checkConsistent(t, final)
	if vs := r.Versions(); len(vs) != keep || vs[0] != publishes-keep+1 {
		t.Errorf("final window = %v, want last %d versions", vs, keep)
	}
}

// TestRegistryConcurrentPublishers checks that multiple publishers are
// serialized correctly: version numbers stay unique and dense.
func TestRegistryConcurrentPublishers(t *testing.T) {
	const (
		publishers   = 4
		perPublisher = 200
	)
	r := NewRegistry(8)
	versions := make([][]uint64, publishers)
	var wg sync.WaitGroup
	for i := 0; i < publishers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perPublisher; j++ {
				versions[i] = append(versions[i], r.Publish(twoBlobPublished(j, j)))
			}
		}(i)
	}
	wg.Wait()

	seen := make(map[uint64]bool)
	for _, vs := range versions {
		for j, v := range vs {
			if seen[v] {
				t.Fatalf("version %d assigned twice", v)
			}
			seen[v] = true
			// Per publisher, versions must be strictly increasing.
			if j > 0 && vs[j] <= vs[j-1] {
				t.Fatalf("publisher saw non-increasing versions %d then %d", vs[j-1], vs[j])
			}
		}
	}
	if len(seen) != publishers*perPublisher {
		t.Fatalf("%d distinct versions, want %d", len(seen), publishers*perPublisher)
	}
	if r.Published() != publishers*perPublisher {
		t.Errorf("Published = %d, want %d", r.Published(), publishers*perPublisher)
	}
}

func TestRegistryRetained(t *testing.T) {
	r := NewRegistry(3)
	if min, max := r.Retained(); min != 0 || max != 0 {
		t.Errorf("Retained() on empty registry = (%d, %d), want (0, 0)", min, max)
	}
	for i := 1; i <= 5; i++ {
		r.Publish(twoBlobPublished(i, i*100))
	}
	if min, max := r.Retained(); min != 3 || max != 5 {
		t.Errorf("Retained() = (%d, %d), want (3, 5)", min, max)
	}
}

// TestRegistryEvictionHookOrdering pins the OnEvict contract a
// retention-mirroring consumer (the subscription hub) depends on:
// evictions arrive once per version, in ascending order, and by the time
// the hook runs the evicted version already misses in At — so a version
// can never be observed as both evicted and retained.
func TestRegistryEvictionHookOrdering(t *testing.T) {
	const keep, publishes = 4, 50
	r := NewRegistry(keep)
	var evicted []uint64
	r.OnEvict(func(v uint64) {
		evicted = append(evicted, v)
		if _, ok := r.At(v); ok {
			t.Errorf("At(%d) still hits inside its own eviction callback", v)
		}
		if min, _ := r.Retained(); min <= v {
			t.Errorf("Retained() min %d <= evicted version %d inside callback", min, v)
		}
	})
	for i := 1; i <= publishes; i++ {
		r.Publish(twoBlobPublished(i, i*100))
	}
	if want := publishes - keep; len(evicted) != want {
		t.Fatalf("%d evictions, want %d", len(evicted), want)
	}
	for i, v := range evicted {
		if v != uint64(i+1) {
			t.Fatalf("eviction %d carried version %d, want %d (ascending, once each)", i, v, i+1)
		}
	}
}

// TestRegistryEvictionRaceWindow exercises the race window between a
// publisher installing a post-eviction state and readers acting on
// previously loaded windows. A consumer mirroring retention through
// OnEvict (exactly what the subscription hub does) runs alongside
// concurrent readers; under -race this verifies the hook runs under the
// publisher lock without a data race, and the mirror invariant — the
// mirrored set equals the registry window after every publication —
// holds throughout, so "evicted" and "retained" are never both true.
func TestRegistryEvictionRaceWindow(t *testing.T) {
	const keep, publishes, readers = 4, 300, 4
	r := NewRegistry(keep)

	// The mirror a hub would keep: versions currently retained, fed only
	// by the publish return value and the eviction hook.
	var (
		mirrorMu sync.Mutex
		mirror   = map[uint64]bool{}
	)
	r.OnEvict(func(v uint64) {
		mirrorMu.Lock()
		defer mirrorMu.Unlock()
		if !mirror[v] {
			t.Errorf("evicted version %d was never mirrored", v)
		}
		delete(mirror, v)
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				min, max := r.Retained()
				if min > max {
					t.Errorf("Retained() returned inverted window (%d, %d)", min, max)
					return
				}
				if max != 0 && max-min >= keep {
					t.Errorf("Retained() window (%d, %d) wider than keep=%d", min, max, keep)
					return
				}
				// At may race a concurrent eviction+publish, but a hit
				// must return the version asked for.
				if mv, ok := r.At(max); ok && mv.Version != max {
					t.Errorf("At(%d) returned version %d", max, mv.Version)
					return
				}
			}
		}()
	}

	for i := 1; i <= publishes; i++ {
		v := r.Publish(twoBlobPublished(i, i*100))
		mirrorMu.Lock()
		mirror[v] = true
		// The mirror must agree with the registry's own window right
		// after every publication (the hub relies on this to never hold
		// a delta for an unretained version).
		want := r.Versions()
		if len(mirror) != len(want) {
			t.Errorf("after publish %d: mirror holds %d versions, registry retains %d", v, len(mirror), len(want))
		}
		for _, wv := range want {
			if !mirror[wv] {
				t.Errorf("after publish %d: retained version %d missing from mirror", v, wv)
			}
		}
		mirrorMu.Unlock()
	}
	close(stop)
	wg.Wait()
}
