package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkServeQueryLoad drives the in-process load generator against a
// server over a static snapshot and reports serving-path metrics
// (qps, latency percentiles, shed count). It also prints one
// `SERVELOAD {json}` summary line, which cmd/benchjson embeds in the
// archived bench report — so `make bench-json` tracks the serving
// trajectory next to the ingest benchmarks.
func BenchmarkServeQueryLoad(b *testing.B) {
	reg := NewRegistry(0)
	centers := make([][]float64, 64)
	weights := make([]float64, 64)
	points := make([][]float64, 64)
	for i := range centers {
		centers[i] = []float64{float64(i%8) * 10, float64(i/8) * 10}
		weights[i] = float64(i%5 + 1)
		points[i] = centers[i]
	}
	reg.Publish(testPublished(centers, weights, 1, 1000))
	server, err := NewServer(Config{Registry: reg})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	var total LoadResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunLoad(LoadConfig{
			BaseURL:  ts.URL,
			Clients:  8,
			Duration: time.Second,
			// Every 16th request macro-clusters at a fixed seed: after the
			// first computation these are cache hits, the serving fast path.
			MacroEvery: 16,
			Macro:      MacroRequest{Algorithm: MacroKMeans, K: 4, Seed: 3},
			Points:     points,
		})
		if err != nil {
			b.Fatal(err)
		}
		total = res
	}
	b.StopTimer()

	b.ReportMetric(total.QPS, "qps")
	b.ReportMetric(total.P50Millis, "p50_ms")
	b.ReportMetric(total.P99Millis, "p99_ms")
	b.ReportMetric(float64(total.Shed), "shed")
	if blob, err := json.Marshal(total); err == nil {
		fmt.Printf("SERVELOAD %s\n", blob)
	}
}
