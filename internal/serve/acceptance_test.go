package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"diststream/internal/core"
	"diststream/internal/datagen"
	"diststream/internal/harness"
	"diststream/internal/stream"
)

// TestServeIngestImpactUnderLoad is the headline acceptance check for the
// serving subsystem: with 64 concurrent query clients hammering a live
// server, ingest throughput must stay within 10% of the server-off
// baseline. Each configuration gets three attempts and the best one
// counts, damping scheduler noise on small CI machines; the clients are
// well-behaved (they honor Retry-After on shed responses), which is the
// deployment the admission defaults are tuned for.
func TestServeIngestImpactUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive load test")
	}
	if raceEnabled {
		// The race runtime slows the query path (HTTP handling, atomics)
		// far more than the ingest path, so the throughput ratio this test
		// asserts is not meaningful under -race.
		t.Skip("throughput-ratio SLO is skewed by the race detector")
	}

	const (
		records = 20000
		passes  = 3
		clients = 64
		tries   = 3
	)
	ds, err := harness.LoadDataset(datagen.KDD99Sim, records, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Assign query points: a slice of real record vectors.
	points := make([][]float64, 0, 64)
	for i := 0; i < len(ds.Records) && len(points) < 64; i += len(ds.Records) / 64 {
		points = append(points, ds.Records[i].Values)
	}

	// ingestOnce runs one full ingest pass and returns its throughput.
	// With serving enabled it also runs the 64-client closed loop against
	// a live HTTP server for the whole duration of the ingest.
	ingestOnce := func(withServing bool) float64 {
		t.Helper()
		algo, err := harness.NewAlgorithm("clustream", ds, 42)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := harness.NewEngine(2, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer engine.Close()

		cfg := core.Config{
			Algorithm:     algo,
			Engine:        engine,
			BatchInterval: 2,
		}
		var registry *Registry
		if withServing {
			registry = NewRegistry(0)
			cfg.OnPublish = registry.Hook()
		}
		pipeline, err := core.NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src, err := stream.NewRepeatSource(ds.Records, passes)
		if err != nil {
			t.Fatal(err)
		}

		var (
			ts       *httptest.Server
			loadDone chan struct{}
			loadRes  LoadResult
			loadErr  error
			stop     chan struct{}
		)
		if withServing {
			// Queries and ingest share cores here, so the admission
			// config caps the admitted query rate: the excess is shed
			// with a one-second Retry-After, which the (well-behaved)
			// clients honor, bounding the CPU the query path can steal.
			server, err := NewServer(Config{
				Registry: registry,
				Admission: LimiterConfig{
					MaxInFlight: 2,
					MaxQueue:    4,
					MaxRate:     50,
					QueueWait:   5 * time.Millisecond,
					RetryAfter:  time.Second,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			ts = httptest.NewServer(server.Handler())
			defer ts.Close()
			stop = make(chan struct{})
			loadDone = make(chan struct{})
			go func() {
				defer close(loadDone)
				loadRes, loadErr = RunLoad(LoadConfig{
					BaseURL:    ts.URL,
					Clients:    clients,
					Stop:       stop,
					MacroEvery: 8,
					Macro:      MacroRequest{Algorithm: MacroKMeans, K: 5, Seed: 7},
					Points:     points,
				})
			}()
		}

		stats, err := pipeline.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		if withServing {
			close(stop)
			<-loadDone
			if loadErr != nil {
				t.Fatalf("load generator: %v", loadErr)
			}
			if loadRes.OK == 0 {
				t.Fatal("load generator completed zero successful queries; the test measured nothing")
			}
			t.Logf("load: %d requests, %d ok, %d shed, %d errors, p50 %.2fms p99 %.2fms",
				loadRes.Requests, loadRes.OK, loadRes.Shed, loadRes.Errors,
				loadRes.P50Millis, loadRes.P99Millis)
		}
		return stats.Throughput()
	}

	best := func(withServing bool) float64 {
		var b float64
		for i := 0; i < tries; i++ {
			if tp := ingestOnce(withServing); tp > b {
				b = tp
			}
		}
		return b
	}

	baseline := best(false)
	loaded := best(true)
	ratio := loaded / baseline
	t.Logf("ingest throughput: baseline %.0f rec/s, under %d-client load %.0f rec/s (ratio %.3f)",
		baseline, clients, loaded, ratio)
	if ratio < 0.90 {
		t.Errorf("ingest throughput under load dropped to %.1f%% of baseline, want >= 90%%", ratio*100)
	}
}

// TestServeMacroComputedOncePerVersionE2E drives the acceptance check
// that repeated POST /v1/macro calls at a fixed version compute the
// offline clustering exactly once: 32 concurrent identical requests over
// real HTTP must collapse into a single computation.
func TestServeMacroComputedOncePerVersionE2E(t *testing.T) {
	reg := NewRegistry(0)
	server, err := NewServer(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	// A 40-micro-cluster fixture so the k-means actually does some work.
	centers := make([][]float64, 40)
	weights := make([]float64, 40)
	for i := range centers {
		centers[i] = []float64{float64(i % 8 * 10), float64(i / 8 * 10)}
		weights[i] = float64(i%5 + 1)
	}
	reg.Publish(testPublished(centers, weights, 1, 1000))

	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	const concurrent = 32
	body := `{"algorithm":"kmeans","k":4,"seed":11,"version":1}`
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		cachedN  int
		statuses = map[int]int{}
	)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/macro", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("POST /v1/macro: %v", err)
				return
			}
			defer resp.Body.Close()
			var res MacroResult
			if resp.StatusCode == http.StatusOK {
				if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
					t.Errorf("decode: %v", err)
					return
				}
			}
			mu.Lock()
			statuses[resp.StatusCode]++
			if res.Cached {
				cachedN++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	if statuses[http.StatusOK] != concurrent {
		t.Fatalf("statuses = %v, want all %d OK", statuses, concurrent)
	}
	st := server.CacheStats()
	if st.Computations != 1 {
		t.Errorf("Computations = %d for %d identical requests, want exactly 1", st.Computations, concurrent)
	}
	if cachedN != concurrent-1 {
		t.Errorf("%d responses marked cached, want %d (all but the computing one)", cachedN, concurrent-1)
	}
	if st.Hits != concurrent-1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want %d hits / 1 miss", st, concurrent-1)
	}
}

// TestServeOverloadSheds429E2E drives the overload acceptance check over
// real HTTP: with the single execution slot held and the single queue
// permit consumed, every further query must be answered 429 with a
// Retry-After hint, and the shed counter must advance.
func TestServeOverloadSheds429E2E(t *testing.T) {
	reg := NewRegistry(0)
	server, err := NewServer(Config{
		Registry: reg,
		Admission: LimiterConfig{
			MaxInFlight: 1,
			MaxQueue:    1,
			QueueWait:   20 * time.Millisecond,
			RetryAfter:  3 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.Publish(twoBlobPublished(1, 100))
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	// Sustained overload: hold the execution slot for the whole test.
	release, err := server.limiter.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	const burst = 8
	var wg sync.WaitGroup
	codes := make([]int, burst)
	retryAfters := make([]string, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/assign?point=0,0")
			if err != nil {
				t.Errorf("GET: %v", err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfters[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusTooManyRequests {
			t.Errorf("request %d got %d, want 429 under sustained overload", i, code)
			continue
		}
		if retryAfters[i] != "3" {
			t.Errorf("request %d Retry-After = %q, want %q", i, retryAfters[i], "3")
		}
	}
	if st := server.AdmissionStats(); st.Shed < burst {
		t.Errorf("Shed = %d, want >= %d", st.Shed, burst)
	}
	// Probes and metrics stay reachable during overload.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics during overload = %d, want 200", resp.StatusCode)
	}
}
