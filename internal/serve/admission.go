package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Admission errors.
var (
	// ErrOverloaded means the in-flight bound and the wait queue are both
	// full, or the queued request hit its waiting deadline. Mapped to
	// HTTP 429 with a Retry-After.
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrDraining means the server is shutting down and admits no new
	// queries. Mapped to HTTP 503.
	ErrDraining = errors.New("serve: draining")
)

// LimiterConfig bounds concurrent query execution.
type LimiterConfig struct {
	// MaxInFlight is the number of queries executing at once. Default 8.
	MaxInFlight int
	// MaxQueue is the number of queries allowed to wait for an execution
	// slot. Default 2 * MaxInFlight.
	MaxQueue int
	// QueueWait is the longest a queued query waits for a slot before
	// being shed. Default 100ms.
	QueueWait time.Duration
	// RetryAfter is the client backoff hint attached to shed responses.
	// Default 100ms.
	RetryAfter time.Duration
	// MaxRate, when positive, caps admitted queries per second with a
	// token bucket (burst = MaxBurst). Concurrency bounds alone cannot
	// protect a server that shares cores with the ingest pipeline —
	// short queries sneak through one at a time and their aggregate
	// rate still steals CPU from ingestion — so colocated deployments
	// set a rate matching the query budget. 0 = unlimited.
	MaxRate float64
	// MaxBurst is the token bucket depth when MaxRate is set. Default
	// max(1, MaxRate/10): at most a tenth of a second of queries in one
	// burst.
	MaxBurst float64
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 100 * time.Millisecond
	}
	if c.MaxRate > 0 && c.MaxBurst <= 0 {
		c.MaxBurst = c.MaxRate / 10
		if c.MaxBurst < 1 {
			c.MaxBurst = 1
		}
	}
	return c
}

// LimiterStats is an atomic snapshot of the admission counters.
type LimiterStats struct {
	// Admitted counts queries that got an execution slot.
	Admitted uint64
	// Shed counts queries rejected because queue and slots were full.
	Shed uint64
	// QueueTimeouts counts queries shed after waiting QueueWait without
	// getting a slot (included in Shed).
	QueueTimeouts uint64
	// RateLimited counts queries shed by the MaxRate token bucket
	// (included in Shed).
	RateLimited uint64
	// Rejected counts queries refused because the limiter was draining.
	Rejected uint64
	// InFlight is the number of queries currently executing.
	InFlight int
	// Queued is the number of queries currently waiting for a slot.
	Queued int
}

// Limiter is the admission controller: at most MaxInFlight queries
// execute concurrently, at most MaxQueue more wait (each bounded by
// QueueWait), and everything beyond that is shed immediately — the
// overload answer is a fast 429, never an unbounded queue. A draining
// limiter admits nothing, letting shutdown wait only for queries already
// running.
type Limiter struct {
	cfg    LimiterConfig
	slots  chan struct{} // execution permits
	queue  chan struct{} // waiting permits
	bucket *tokenBucket  // nil when MaxRate is unset

	admitted      atomic.Uint64
	shed          atomic.Uint64
	queueTimeouts atomic.Uint64
	rateLimited   atomic.Uint64
	rejected      atomic.Uint64
	inFlight      atomic.Int64
	queued        atomic.Int64
	draining      atomic.Bool
}

// NewLimiter builds a limiter from cfg (zero fields take defaults).
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg = cfg.withDefaults()
	l := &Limiter{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.MaxInFlight),
		queue: make(chan struct{}, cfg.MaxQueue),
	}
	if cfg.MaxRate > 0 {
		l.bucket = newTokenBucket(cfg.MaxRate, cfg.MaxBurst)
	}
	return l
}

// Acquire tries to admit one query: immediately when an execution slot is
// free, after a bounded wait when only a queue slot is free, and not at
// all otherwise. On success it returns a release function the caller must
// invoke exactly once when the query finishes. On failure it returns
// ErrOverloaded (shed: answer 429 + RetryAfter), ErrDraining (shutting
// down: answer 503), or ctx.Err() when the caller gave up first.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	if l.draining.Load() {
		l.rejected.Add(1)
		return nil, ErrDraining
	}
	// Rate cap first: a query over the rate budget is shed even when a
	// slot is free — concurrency bounds protect memory and tail latency,
	// the rate bound protects the CPU share of the colocated pipeline.
	if l.bucket != nil && !l.bucket.take() {
		l.rateLimited.Add(1)
		l.shed.Add(1)
		return nil, ErrOverloaded
	}
	// Fast path: free execution slot.
	select {
	case l.slots <- struct{}{}:
		return l.admit(), nil
	default:
	}
	// Queue path: take a waiting permit or shed.
	select {
	case l.queue <- struct{}{}:
	default:
		l.shed.Add(1)
		return nil, ErrOverloaded
	}
	l.queued.Add(1)
	defer func() {
		l.queued.Add(-1)
		<-l.queue
	}()
	timer := time.NewTimer(l.cfg.QueueWait)
	defer timer.Stop()
	select {
	case l.slots <- struct{}{}:
		if l.draining.Load() {
			<-l.slots
			l.rejected.Add(1)
			return nil, ErrDraining
		}
		return l.admit(), nil
	case <-timer.C:
		l.queueTimeouts.Add(1)
		l.shed.Add(1)
		return nil, ErrOverloaded
	case <-ctx.Done():
		l.shed.Add(1)
		return nil, ctx.Err()
	}
}

func (l *Limiter) admit() func() {
	l.admitted.Add(1)
	l.inFlight.Add(1)
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			l.inFlight.Add(-1)
			<-l.slots
		}
	}
}

// Drain flips the limiter into shutdown mode: every subsequent Acquire
// fails with ErrDraining. Queries already admitted are unaffected — the
// HTTP server's graceful Shutdown waits for those.
func (l *Limiter) Drain() { l.draining.Store(true) }

// Draining reports whether Drain was called.
func (l *Limiter) Draining() bool { return l.draining.Load() }

// RetryAfter returns the configured client backoff hint.
func (l *Limiter) RetryAfter() time.Duration { return l.cfg.RetryAfter }

// Stats returns the admission counters.
func (l *Limiter) Stats() LimiterStats {
	return LimiterStats{
		Admitted:      l.admitted.Load(),
		Shed:          l.shed.Load(),
		QueueTimeouts: l.queueTimeouts.Load(),
		RateLimited:   l.rateLimited.Load(),
		Rejected:      l.rejected.Load(),
		InFlight:      int(l.inFlight.Load()),
		Queued:        int(l.queued.Load()),
	}
}

// tokenBucket is a classic refilling token bucket: take succeeds when at
// least one whole token has accumulated.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

func (b *tokenBucket) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
