package serve

import (
	"fmt"
	"time"

	"diststream/internal/offline"
	"diststream/internal/vector"
)

// Macro algorithm names accepted by /v1/macro.
const (
	MacroKMeans = "kmeans"
	MacroDBSCAN = "dbscan"
)

// MacroRequest is the POST /v1/macro body: which snapshot to cluster and
// with what offline algorithm and parameters. Version 0 means "latest at
// admission time" — the handler pins it to a concrete version before the
// cache lookup so the key stays stable.
type MacroRequest struct {
	// Algorithm is "kmeans" (weighted k-means over micro-cluster centers)
	// or "dbscan" (weighted DBSCAN, DenStream-style).
	Algorithm string `json:"algorithm"`
	// Version selects a retained snapshot; 0 means the latest.
	Version uint64 `json:"version,omitempty"`
	// K is the cluster count (kmeans).
	K int `json:"k,omitempty"`
	// Seed drives k-means++ seeding; identical (version, params, seed)
	// requests yield identical clusterings (see offline.WeightedKMeans),
	// which is what makes the result cacheable.
	Seed int64 `json:"seed,omitempty"`
	// MaxIterations bounds Lloyd iterations (kmeans; 0 = default).
	MaxIterations int `json:"maxIterations,omitempty"`
	// Tolerance is the convergence threshold (kmeans; 0 = default).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Eps is the neighborhood radius (dbscan).
	Eps float64 `json:"eps,omitempty"`
	// MinPoints is the minimum weighted neighborhood mass (dbscan).
	MinPoints float64 `json:"minPoints,omitempty"`
}

// validate checks the parameter combination for the chosen algorithm.
func (r MacroRequest) validate() error {
	switch r.Algorithm {
	case MacroKMeans:
		if r.K <= 0 {
			return fmt.Errorf("kmeans needs k > 0, got %d", r.K)
		}
	case MacroDBSCAN:
		if r.Eps <= 0 {
			return fmt.Errorf("dbscan needs eps > 0, got %v", r.Eps)
		}
		if r.MinPoints <= 0 {
			return fmt.Errorf("dbscan needs minPoints > 0, got %v", r.MinPoints)
		}
	default:
		return fmt.Errorf("unknown algorithm %q (want %q or %q)", r.Algorithm, MacroKMeans, MacroDBSCAN)
	}
	return nil
}

// key maps the request to its cache identity. The caller must have
// pinned Version already.
func (r MacroRequest) key() MacroKey {
	return MacroKey{
		Version:   r.Version,
		Algorithm: r.Algorithm,
		K:         r.K,
		Seed:      r.Seed,
		MaxIter:   r.MaxIterations,
		Tolerance: r.Tolerance,
		Eps:       r.Eps,
		MinPoints: r.MinPoints,
	}
}

// MacroCluster is one offline macro-cluster in a serve response.
type MacroCluster struct {
	Label   int       `json:"label"`
	Weight  float64   `json:"weight"`
	Center  []float64 `json:"center"`
	Members []uint64  `json:"members"`
}

// MacroResult is the /v1/macro response payload.
type MacroResult struct {
	Version   uint64         `json:"version"`
	Algorithm string         `json:"algorithm"`
	Clusters  []MacroCluster `json:"clusters"`
	// Noise lists micro-cluster ids DBSCAN labeled as noise.
	Noise []uint64 `json:"noise,omitempty"`
	// MicroClusters is how many micro-clusters were clustered.
	MicroClusters int `json:"microClusters"`
	// ComputeMillis is the wall time of the offline computation. Cached
	// responses repeat the original computation's time.
	ComputeMillis float64 `json:"computeMillis"`
	// Cached is set per-response by the handler (not stored).
	Cached bool `json:"cached"`
}

// computeMacro runs the requested offline algorithm over the snapshot's
// micro-cluster centers, weighted by micro-cluster weight — the paper's
// query-time offline phase.
func computeMacro(mv *ModelVersion, req MacroRequest) (*MacroResult, error) {
	n := len(mv.MCs)
	if n == 0 {
		return nil, fmt.Errorf("snapshot version %d holds no micro-clusters", mv.Version)
	}
	centers := make([]vector.Vector, n)
	weights := make([]float64, n)
	ids := make([]uint64, n)
	for i, mc := range mv.MCs {
		centers[i] = mc.Center()
		weights[i] = mc.Weight()
		ids[i] = mc.ID()
	}
	start := time.Now()
	var labels []int
	var macroCenters []vector.Vector
	switch req.Algorithm {
	case MacroKMeans:
		res, err := offline.WeightedKMeans(centers, weights, offline.KMeansConfig{
			K:             req.K,
			Seed:          req.Seed,
			MaxIterations: req.MaxIterations,
			Tolerance:     req.Tolerance,
		})
		if err != nil {
			return nil, err
		}
		labels = res.Assignments
		macroCenters = res.Centroids
	case MacroDBSCAN:
		var err error
		labels, err = offline.DBSCAN(centers, weights, offline.DBSCANConfig{
			Eps:       req.Eps,
			MinPoints: req.MinPoints,
		})
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown algorithm %q", req.Algorithm)
	}
	elapsed := time.Since(start)

	out := &MacroResult{
		Version:       mv.Version,
		Algorithm:     req.Algorithm,
		MicroClusters: n,
		ComputeMillis: float64(elapsed) / float64(time.Millisecond),
	}
	groups := map[int][]int{}
	for i, l := range labels {
		if l < 0 {
			out.Noise = append(out.Noise, ids[i])
			continue
		}
		groups[l] = append(groups[l], i)
	}
	// Emit clusters in ascending label order, skipping empty k-means
	// labels (a centroid that attracted no micro-cluster).
	maxLabel := -1
	for l := range groups {
		if l > maxLabel {
			maxLabel = l
		}
	}
	for l := 0; l <= maxLabel; l++ {
		members := groups[l]
		if len(members) == 0 {
			continue
		}
		mc := MacroCluster{Label: l, Members: make([]uint64, 0, len(members))}
		// Weighted centroid of the members; for k-means prefer the
		// converged centroid, which is exactly that mean.
		var center vector.Vector
		if macroCenters != nil && l < len(macroCenters) {
			center = macroCenters[l].Clone()
		} else {
			center = vector.New(len(centers[members[0]]))
			var total float64
			for _, i := range members {
				center.AXPY(weights[i], centers[i])
				total += weights[i]
			}
			if total > 0 {
				center = center.Scale(1 / total)
			}
		}
		for _, i := range members {
			mc.Members = append(mc.Members, ids[i])
			mc.Weight += weights[i]
		}
		mc.Center = center
		out.Clusters = append(out.Clusters, mc)
	}
	return out, nil
}
