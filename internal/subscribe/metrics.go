package subscribe

import (
	"fmt"
	"io"
	"sync/atomic"
)

// hubMetrics are the hub's exported counters. Everything is atomic so
// subscriber goroutines and the publish path never contend on a lock
// for bookkeeping.
type hubMetrics struct {
	active         atomic.Int64
	connects       atomic.Uint64
	badHellos      atomic.Uint64
	resumeCursor   atomic.Uint64 // connects with a cursor honored via delta replay
	resumeSnapshot atomic.Uint64 // connects with a cursor answered by full-snapshot fallback
	sheds          atomic.Uint64 // live subscribers dropped to snapshot-resync for lag
	disconnects    atomic.Uint64 // connections dropped on write failure/timeout
	deltasSent     atomic.Uint64
	snapshotsSent  atomic.Uint64
	heartbeats     atomic.Uint64
	bytesSent      atomic.Uint64
	encodeErrors   atomic.Uint64
	throttleWaits  atomic.Uint64 // model-frame writes delayed by the egress budget
	coalesced      atomic.Uint64 // publications not retained under MinPublishInterval
	lag            lagHistogram
}

// lagBuckets are the versions-behind histogram bounds. Lag is observed
// at plan time — how far behind latest a subscriber was when the hub
// prepared its next transmission.
var lagBuckets = [...]uint64{1, 2, 4, 8, 16, 32, 64, 128}

type lagHistogram struct {
	counts [len(lagBuckets) + 1]atomic.Uint64 // +1 = overflow
	sum    atomic.Uint64
	total  atomic.Uint64
}

func (h *lagHistogram) observe(lag uint64) {
	i := 0
	for i < len(lagBuckets) && lag > lagBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(lag)
	h.total.Add(1)
}

// HubStats is a snapshot of the hub counters for tests and tooling.
type HubStats struct {
	Active         int64
	Connects       uint64
	BadHellos      uint64
	ResumeCursor   uint64
	ResumeSnapshot uint64
	Sheds          uint64
	Disconnects    uint64
	DeltasSent     uint64
	SnapshotsSent  uint64
	Heartbeats     uint64
	BytesSent      uint64
	EncodeErrors   uint64
	ThrottleWaits  uint64
	Coalesced      uint64
}

// Stats returns the current counter values.
func (h *Hub) Stats() HubStats {
	m := &h.metrics
	return HubStats{
		Active:         m.active.Load(),
		Connects:       m.connects.Load(),
		BadHellos:      m.badHellos.Load(),
		ResumeCursor:   m.resumeCursor.Load(),
		ResumeSnapshot: m.resumeSnapshot.Load(),
		Sheds:          m.sheds.Load(),
		Disconnects:    m.disconnects.Load(),
		DeltasSent:     m.deltasSent.Load(),
		SnapshotsSent:  m.snapshotsSent.Load(),
		Heartbeats:     m.heartbeats.Load(),
		BytesSent:      m.bytesSent.Load(),
		EncodeErrors:   m.encodeErrors.Load(),
		ThrottleWaits:  m.throttleWaits.Load(),
		Coalesced:      m.coalesced.Load(),
	}
}

// WriteMetrics renders the hub counters in Prometheus text exposition
// format. Hand it to serve.Config.ExtraMetrics to publish on the HTTP
// tier's /metrics endpoint.
func (h *Hub) WriteMetrics(w io.Writer) {
	m := &h.metrics
	fmt.Fprintf(w, "# HELP diststream_subscribe_active_subscribers Currently connected subscribers.\n")
	fmt.Fprintf(w, "# TYPE diststream_subscribe_active_subscribers gauge\n")
	fmt.Fprintf(w, "diststream_subscribe_active_subscribers %d\n", m.active.Load())
	fmt.Fprintf(w, "# TYPE diststream_subscribe_connects_total counter\n")
	fmt.Fprintf(w, "diststream_subscribe_connects_total %d\n", m.connects.Load())
	fmt.Fprintf(w, "# HELP diststream_subscribe_resume_cursor_total Reconnects resumed from their cursor via delta replay.\n")
	fmt.Fprintf(w, "# TYPE diststream_subscribe_resume_cursor_total counter\n")
	fmt.Fprintf(w, "diststream_subscribe_resume_cursor_total %d\n", m.resumeCursor.Load())
	fmt.Fprintf(w, "# HELP diststream_subscribe_resume_snapshot_total Reconnects whose cursor fell back to a full snapshot (evicted or diverged).\n")
	fmt.Fprintf(w, "# TYPE diststream_subscribe_resume_snapshot_total counter\n")
	fmt.Fprintf(w, "diststream_subscribe_resume_snapshot_total %d\n", m.resumeSnapshot.Load())
	fmt.Fprintf(w, "# HELP diststream_subscribe_shed_total Live subscribers shed to a snapshot resync after exceeding the lag bound.\n")
	fmt.Fprintf(w, "# TYPE diststream_subscribe_shed_total counter\n")
	fmt.Fprintf(w, "diststream_subscribe_shed_total %d\n", m.sheds.Load())
	fmt.Fprintf(w, "# HELP diststream_subscribe_disconnects_total Subscribers dropped on write failure or timeout (cursor stays resumable).\n")
	fmt.Fprintf(w, "# TYPE diststream_subscribe_disconnects_total counter\n")
	fmt.Fprintf(w, "diststream_subscribe_disconnects_total %d\n", m.disconnects.Load())
	fmt.Fprintf(w, "# TYPE diststream_subscribe_deltas_sent_total counter\n")
	fmt.Fprintf(w, "diststream_subscribe_deltas_sent_total %d\n", m.deltasSent.Load())
	fmt.Fprintf(w, "# TYPE diststream_subscribe_snapshots_sent_total counter\n")
	fmt.Fprintf(w, "diststream_subscribe_snapshots_sent_total %d\n", m.snapshotsSent.Load())
	fmt.Fprintf(w, "# TYPE diststream_subscribe_heartbeats_sent_total counter\n")
	fmt.Fprintf(w, "diststream_subscribe_heartbeats_sent_total %d\n", m.heartbeats.Load())
	fmt.Fprintf(w, "# TYPE diststream_subscribe_bytes_sent_total counter\n")
	fmt.Fprintf(w, "diststream_subscribe_bytes_sent_total %d\n", m.bytesSent.Load())
	fmt.Fprintf(w, "# TYPE diststream_subscribe_bad_hellos_total counter\n")
	fmt.Fprintf(w, "diststream_subscribe_bad_hellos_total %d\n", m.badHellos.Load())
	fmt.Fprintf(w, "# TYPE diststream_subscribe_encode_errors_total counter\n")
	fmt.Fprintf(w, "diststream_subscribe_encode_errors_total %d\n", m.encodeErrors.Load())
	fmt.Fprintf(w, "# HELP diststream_subscribe_throttle_waits_total Model-frame writes delayed by the egress budget.\n")
	fmt.Fprintf(w, "# TYPE diststream_subscribe_throttle_waits_total counter\n")
	fmt.Fprintf(w, "diststream_subscribe_throttle_waits_total %d\n", m.throttleWaits.Load())
	fmt.Fprintf(w, "# HELP diststream_subscribe_coalesced_total Publications not retained for fan-out under the coalescing interval.\n")
	fmt.Fprintf(w, "# TYPE diststream_subscribe_coalesced_total counter\n")
	fmt.Fprintf(w, "diststream_subscribe_coalesced_total %d\n", m.coalesced.Load())
	fmt.Fprintf(w, "# HELP diststream_subscribe_lag_versions How many versions behind latest subscribers were when their next transmission was planned.\n")
	fmt.Fprintf(w, "# TYPE diststream_subscribe_lag_versions histogram\n")
	cum := uint64(0)
	for i, bound := range lagBuckets {
		cum += m.lag.counts[i].Load()
		fmt.Fprintf(w, "diststream_subscribe_lag_versions_bucket{le=\"%d\"} %d\n", bound, cum)
	}
	cum += m.lag.counts[len(lagBuckets)].Load()
	fmt.Fprintf(w, "diststream_subscribe_lag_versions_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "diststream_subscribe_lag_versions_sum %d\n", m.lag.sum.Load())
	fmt.Fprintf(w, "diststream_subscribe_lag_versions_count %d\n", m.lag.total.Load())
}
