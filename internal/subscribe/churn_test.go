package subscribe

import (
	"bytes"
	"context"
	"encoding/gob"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubscriberChurn is the subscribe-smoke acceptance: 64 subscribers
// follow a live publication stream while the hub repeatedly kills every
// connection and a rotating subset of clients is closed and replaced
// entirely (fresh hello, no cursor). Whatever mix of cursor resumes,
// shed-forced snapshot resyncs and cold connects each client ends up
// taking, every replica version it materializes must be byte-identical
// to the driver's publication at that version, and every client must
// finish on the final version. Run under -race in CI.
func TestSubscriberChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churns 64 subscribers")
	}
	const (
		subscribers = 64
		publishes   = 60
		kills       = 4
	)
	hub, _, addr := newTestHub(t, 6, 3)
	algos := testAlgos(t)

	// driverBytes[v] is recorded before Publish makes v visible, so a
	// subscriber can never observe a version the map does not yet hold.
	var (
		mu          sync.Mutex
		driverBytes = map[uint64][]byte{}
		divergences atomic.Uint64
	)
	onUpdate := func(r *Replica) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(r.MCs); err != nil {
			divergences.Add(1)
			return
		}
		mu.Lock()
		want := driverBytes[r.Version]
		mu.Unlock()
		if !bytes.Equal(buf.Bytes(), want) {
			divergences.Add(1)
		}
	}
	newClient := func() *Client {
		cfg := testClientConfig(addr, algos)
		cfg.OnUpdate = onUpdate
		c, err := Dial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	var (
		clientMu sync.Mutex
		clients  = make([]*Client, subscribers)
	)
	for i := range clients {
		clients[i] = newClient()
	}
	defer func() {
		clientMu.Lock()
		defer clientMu.Unlock()
		for _, c := range clients {
			c.Close()
		}
	}()

	// Publisher: a deterministic stream the fixture guarantees produces
	// real deltas (two micro-clusters bit-identical across versions).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := 1; v <= publishes; v++ {
			pub := versionPublished(v)
			mu.Lock()
			driverBytes[uint64(v)] = gobMCs(t, pub.MCs)
			mu.Unlock()
			if got := hub.Publish(pub); got != uint64(v) {
				t.Errorf("publish %d assigned version %d", v, got)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Churn: kill every connection a few times mid-stream, and each round
	// replace a rotating subset of clients outright so cold connects (no
	// cursor) mix with resumes.
	for k := 0; k < kills; k++ {
		time.Sleep(40 * time.Millisecond)
		hub.DisconnectAll()
		clientMu.Lock()
		for i := k; i < subscribers; i += kills * 4 {
			clients[i].Close()
			clients[i] = newClient()
		}
		clientMu.Unlock()
	}
	<-done

	// Every client must converge on the final version with bytes equal to
	// the driver's.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	mu.Lock()
	finalBytes := driverBytes[publishes]
	mu.Unlock()
	var applyErrors, connects uint64
	clientMu.Lock()
	defer clientMu.Unlock()
	for i, c := range clients {
		if err := c.WaitVersion(ctx, publishes); err != nil {
			t.Fatalf("client %d never reached version %d: %v", i, publishes, err)
		}
		r := c.Replica()
		if r.Version < publishes {
			t.Fatalf("client %d stopped at version %d", i, r.Version)
		}
		if r.Version == publishes && !bytes.Equal(gobMCs(t, r.MCs), finalBytes) {
			t.Errorf("client %d final replica diverged from the driver", i)
		}
		st := c.Stats()
		applyErrors += st.ApplyErrors
		connects += st.Connects
	}
	if d := divergences.Load(); d != 0 {
		t.Errorf("%d replica versions diverged from the driver's publications", d)
	}
	if applyErrors != 0 {
		t.Errorf("%d apply errors across the fleet", applyErrors)
	}
	if connects < subscribers+subscribers/2 {
		t.Errorf("fleet recorded only %d connects across %d subscribers; churn did not bite", connects, subscribers)
	}
	hs := hub.Stats()
	t.Logf("churn: %d connects, %d deltas, %d snapshots, %d sheds, %d resumes (cursor %d / snapshot %d)",
		connects, hs.DeltasSent, hs.SnapshotsSent, hs.Sheds, hs.ResumeCursor+hs.ResumeSnapshot, hs.ResumeCursor, hs.ResumeSnapshot)
}
