//go:build race

package subscribe

// raceEnabled reports whether the race detector is compiled in. The
// fan-out acceptance test asserts an ingest-throughput ratio, and the
// race runtime taxes the subscriber path (frame decode, delta apply)
// far more than the ingest path, so the ratio is not meaningful under
// -race.
const raceEnabled = true
