// Package subscribe is the streaming read tier: a subscription hub that
// fans each published model version out to many concurrent subscribers
// as versioned snapshot deltas, and a client that maintains a local
// replica answering assign/clusters queries at zero server cost.
//
// The paper's online-offline split makes the model ideal for
// replication: the authoritative micro-cluster set changes only at
// batch boundaries, so one delta per batch — the same core.SnapshotDelta
// the TCP executor broadcasts to workers — fully describes each
// transition. The hub sits on the pipeline's OnPublish path (chained
// through the serve.Registry so HTTP queries and subscriptions see the
// same versions), encodes each delta once, and every subscriber ships
// the same shared bytes.
//
// Cursor semantics: a subscriber's position is the pair (modelVersion,
// checksum) of the last version it applied. On connect the hub resumes
// from the cursor by replaying retained deltas when (a) the version is
// still inside the registry's last-K retention window, (b) the checksum
// matches the hub's record of that version, and (c) the delta chain
// from cursor to latest is unbroken. On any doubt — evicted version,
// checksum mismatch, missing delta (the algorithm declined to diff,
// e.g. decay touched every micro-cluster) — it falls back to a
// checksummed full snapshot, mirroring the executor's "full snapshot on
// any doubt" rule. A full snapshot is itself a SnapshotDelta with
// FromVersion == 0 applied against the empty model, so both paths share
// one codec and one checksum validation.
//
// Shedding policy: subscribers are paced by their own TCP connections.
// A subscriber whose catch-up would replay more than MaxLag retained
// deltas is shed — its next transmission is a full snapshot of the
// latest version instead of the backlog of deltas, bounding both hub
// memory (no per-subscriber queues; only the shared retained window)
// and catch-up time. A subscriber whose connection cannot accept a
// frame within WriteTimeout is disconnected; its cursor remains valid,
// so a live client reconnects and resumes via deltas if it returns
// inside the retention window.
//
// Ingest protection: the hub shares the driver's machine, so two
// optional knobs bound what fan-out may take from the ingest path — the
// subscription-tier analog of the serve tier's admission control. The
// aggregate egress budget (EgressBytesPerSec) caps bandwidth and write
// CPU: under budget pressure subscribers lag, shed and resync at the
// bounded rate, and replicas stay correct at whatever versions they
// reach. Publication coalescing (MinPublishInterval) caps the retained
// publication rate itself: a fast ingest loop can publish hundreds of
// versions per second, but no monitoring tier needs model updates at
// that cadence, so the hub samples the published stream — at most one
// retained entry per interval — and each retained entry's delta spans
// the gap back to the previously retained version. Every version still
// reaches the serve registry; coalescing governs only the subscription
// tier.
package subscribe

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"diststream/internal/core"
	"diststream/internal/serve"
	"diststream/internal/vclock"
)

// HubConfig configures a Hub.
type HubConfig struct {
	// Registry is the serve-tier snapshot store the hub publishes
	// through and mirrors retention from. Required. The hub installs
	// the registry's OnEvict hook, so it must own it — construct the
	// hub before the first publication and do not set OnEvict yourself.
	Registry *serve.Registry
	// Algos resolves algorithm factories for delta computation.
	// Required.
	Algos *core.AlgorithmRegistry
	// MaxLag is how many retained publications a subscriber may fall
	// behind — the number of deltas a catch-up would have to replay —
	// before it is shed to a full-snapshot resync. 0 means the
	// registry's retention depth (a subscriber older than retention
	// could not be served deltas anyway).
	MaxLag int
	// WriteTimeout bounds each frame write to a subscriber; a
	// subscriber that cannot accept a frame in time is disconnected
	// with its cursor intact. 0 means 10s.
	WriteTimeout time.Duration
	// HeartbeatEvery is the idle interval between heartbeat frames.
	// 0 means 10s; negative disables heartbeats.
	HeartbeatEvery time.Duration
	// MinPublishInterval coalesces publications: the hub retains (and
	// fans out) at most one publication per interval, and each retained
	// entry's delta spans the gap back to the previously retained
	// version. This bounds the hub's preparation and wake-up work by
	// wall time instead of by ingest speed — a pipeline publishing
	// hundreds of versions per second would otherwise spend a core's
	// worth of cycles preparing fan-out state no subscriber needs at
	// that cadence. Skipped versions still reach the serve registry.
	// 0 retains every publication.
	MinPublishInterval time.Duration
	// EgressBytesPerSec caps the hub's aggregate model-frame egress — the
	// subscription-tier analog of the serve tier's admission control. The
	// hub shares the driver's machine, so unbounded fan-out is
	// work-conserving: a large fleet would eat every idle cycle (and the
	// ingest path's) writing frames. Under the cap, subscribers that
	// cannot be kept current within budget lag, shed and resync to the
	// latest snapshot at the bounded rate, trading replica freshness for
	// ingest protection. 0 means unlimited.
	EgressBytesPerSec int64
}

const (
	defaultWriteTimeout   = 10 * time.Second
	defaultHeartbeatEvery = 10 * time.Second
)

// entry is one retained publication: identity, the shared encoded delta
// frame from its predecessor (nil when unavailable), and enough state to
// build a full-snapshot frame on demand. checksum and deltaPayload are
// written by the encoder goroutine before the entry becomes ready
// (version <= encodedThrough); subscribers only ever see ready entries,
// so to them every field is immutable.
type entry struct {
	version uint64
	// fromVersion is the previously retained version at append time —
	// the delta base. With coalescing the window is sparse, so this is
	// not necessarily version-1; 0 means no predecessor was retained.
	fromVersion uint64
	batch       int
	time        vclock.Time
	params      core.Params
	mcs         []core.MicroCluster // the registry's published clones; immutable

	checksum uint64
	// deltaPayload is the encoded model frame carrying the delta from
	// version-1 to this version; nil when the algorithm declined to
	// diff or encoding failed. Shared by every subscriber.
	deltaPayload []byte
	// fullOnce guards the lazily built full-snapshot frame (FromVersion
	// == 0). It is built outside every hub lock — a 50KB encode on a
	// subscriber goroutine must not stall Publish — at most once, then
	// shared.
	fullOnce    sync.Once
	fullPayload []byte
	fullErr     error
}

// fullSnapshotPayload returns (building on first use) the encoded
// full-snapshot model frame for e: a delta from the empty model
// carrying every micro-cluster, checksummed like any other delta. Only
// call on ready entries.
func (e *entry) fullSnapshotPayload(h *Hub) ([]byte, error) {
	e.fullOnce.Do(func() {
		d := &core.SnapshotDelta{
			Params:   e.params,
			Version:  e.version,
			Order:    make([]uint64, len(e.mcs)),
			Upserts:  e.mcs,
			Checksum: e.checksum,
		}
		for i, mc := range e.mcs {
			d.Order[i] = mc.ID()
		}
		e.fullPayload, e.fullErr = encodeModelPayload(e.version, e.checksum, e.batch, e.time, d)
		if e.fullErr != nil {
			h.metrics.encodeErrors.Add(1)
		}
	})
	return e.fullPayload, e.fullErr
}

// Hub fans published model versions out to subscribers. One hub serves
// any number of listeners and connections; Publish (via Hook) is called
// by the pipeline, everything else by subscriber goroutines.
type Hub struct {
	cfg HubConfig

	mu     sync.Mutex
	window []*entry // ascending, contiguous versions; mirrors registry retention
	subs   map[*subscriber]struct{}
	closed bool
	// encodedThrough is the highest version the encoder goroutine has
	// prepared (checksum + delta payload). Subscribers are planned
	// against the encoded prefix of the window only.
	encodedThrough uint64
	// lastRetain is when the newest window entry was appended; the
	// coalescing clock.
	lastRetain time.Time

	encodeWake  chan struct{} // capacity 1; coalescing nudge to the encoder
	encoderStop chan struct{}
	encoderDone chan struct{}

	wg        sync.WaitGroup
	listeners []net.Listener
	egress    *egressLimiter // nil = unlimited
	metrics   hubMetrics
}

// egressLimiter is a token bucket over bytes shared by every subscriber
// goroutine, served by a single goroutine in FIFO order. The queue is
// the point: with a thousand contenders, a compare-and-debit bucket
// lets every waiter observe available credit in the same instant and
// collectively overshoot the budget by the whole backlog, and a herd of
// per-waiter retry timers thrashes the scheduler. One server, one
// timer, strict arrival order — the aggregate rate converges to the
// budget under any concurrency.
type egressLimiter struct {
	rate     float64 // bytes per second; burst is one second's budget
	req      chan egressReq
	stop     chan struct{}
	stopOnce sync.Once
}

type egressReq struct {
	n int
	// reply is buffered so the server never blocks on a waiter that
	// abandoned the queue (its grant is then simply unused).
	reply chan bool // true when the grant had to wait for refill
}

func newEgressLimiter(bytesPerSec int64) *egressLimiter {
	l := &egressLimiter{
		rate: float64(bytesPerSec),
		req:  make(chan egressReq),
		stop: make(chan struct{}),
	}
	go l.serve()
	return l
}

func (l *egressLimiter) serve() {
	tokens := l.rate // start with a full burst
	last := time.Now()
	refill := func() {
		now := time.Now()
		tokens += now.Sub(last).Seconds() * l.rate
		if tokens > l.rate {
			tokens = l.rate
		}
		last = now
	}
	for {
		select {
		case r := <-l.req:
			refill()
			waited := false
			// Frames larger than the burst are granted at a full bucket,
			// debiting below zero; the deficit pays itself off before the
			// next grant.
			if need := min(float64(r.n), l.rate); tokens < need {
				waited = true
				t := time.NewTimer(time.Duration((need - tokens) / l.rate * float64(time.Second)))
				select {
				case <-t.C:
				case <-l.stop:
					t.Stop()
					return
				}
				t.Stop()
				refill()
			}
			tokens -= float64(r.n)
			r.reply <- waited
		case <-l.stop:
			return
		}
	}
}

func (l *egressLimiter) close() { l.stopOnce.Do(func() { close(l.stop) }) }

// acquire blocks until n bytes of budget are granted or done closes.
// It reports whether the budget was granted and whether it had to wait.
func (l *egressLimiter) acquire(n int, done <-chan struct{}) (ok, waited bool) {
	select {
	case <-done:
		return false, false
	default:
	}
	r := egressReq{n: n, reply: make(chan bool, 1)}
	select {
	case l.req <- r:
	case <-done:
		return false, false
	case <-l.stop:
		return false, false
	}
	select {
	case waited = <-r.reply:
		return true, waited
	case <-done:
		return false, true
	case <-l.stop:
		return false, true
	}
}

// NewHub builds a hub over cfg and installs the registry eviction hook.
// Call before the first publication (OnEvict must be set before
// publishers run).
func NewHub(cfg HubConfig) (*Hub, error) {
	if cfg.Registry == nil {
		return nil, errors.New("subscribe: config needs a Registry")
	}
	if cfg.Algos == nil {
		return nil, errors.New("subscribe: config needs an algorithm registry")
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = defaultWriteTimeout
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = defaultHeartbeatEvery
	}
	h := &Hub{
		cfg:         cfg,
		subs:        make(map[*subscriber]struct{}),
		encodeWake:  make(chan struct{}, 1),
		encoderStop: make(chan struct{}),
		encoderDone: make(chan struct{}),
	}
	if cfg.EgressBytesPerSec > 0 {
		h.egress = newEgressLimiter(cfg.EgressBytesPerSec)
	}
	cfg.Registry.OnEvict(h.evict)
	go h.encoder()
	return h, nil
}

// Hook returns the pipeline publish hook: registry publication chained
// with hub fan-out. Wire this as OnSnapshot instead of Registry.Hook()
// so HTTP queries and subscribers see the same version numbers.
func (h *Hub) Hook() core.PublishHook {
	return func(pub core.Published) { h.Publish(pub) }
}

// Publish records pub in the registry, appends the retained entry and
// nudges the encoder. It runs synchronously on the pipeline's publish
// path, so it does the absolute minimum there: the checksum, diff and
// encode all happen on the encoder goroutine, off the ingest critical
// path — the mBSP barrier never waits on fan-out preparation.
func (h *Hub) Publish(pub core.Published) uint64 {
	// Registry publication fires h.evict (under the registry's publisher
	// lock) for every version aging out, pruning h.window before the new
	// entry is appended — so the window mirrors retention exactly.
	version := h.cfg.Registry.Publish(pub)

	h.mu.Lock()
	if h.cfg.MinPublishInterval > 0 && len(h.window) > 0 &&
		time.Since(h.lastRetain) < h.cfg.MinPublishInterval {
		h.mu.Unlock()
		h.metrics.coalesced.Add(1)
		return version
	}
	e := &entry{
		version: version,
		batch:   pub.Batch,
		time:    pub.Time,
		params:  pub.Params,
		mcs:     pub.MCs,
	}
	if n := len(h.window); n > 0 {
		e.fromVersion = h.window[n-1].version
	}
	h.lastRetain = time.Now()
	h.window = append(h.window, e)
	h.mu.Unlock()
	select {
	case h.encodeWake <- struct{}{}:
	default:
	}
	return version
}

// encoder is the hub's single background preparation goroutine: it walks
// the retained window in version order, computing each entry's checksum
// and shared delta payload outside every lock, then commits the entry as
// ready and wakes the subscribers. Keeping this off the publish path is
// what makes fan-out free for ingest — Publish appends and signals, and
// the encode burns idle cycles instead of barrier time.
func (h *Hub) encoder() {
	defer close(h.encoderDone)
	var (
		algo    core.Algorithm // cached diff instance, rebuilt when params change
		algoKey string
	)
	for {
		select {
		case <-h.encodeWake:
		case <-h.encoderStop:
			return
		}
		for {
			h.mu.Lock()
			var e, prev *entry
			// Entries evicted before they were encoded can never be
			// shipped, so the scan naturally skips past them: the next
			// entry to encode is the first unencoded one still retained.
			for i, cand := range h.window {
				if cand.version > h.encodedThrough {
					e = cand
					if i > 0 {
						prev = h.window[i-1]
					}
					break
				}
			}
			h.mu.Unlock()
			if e == nil {
				break
			}
			// Heavy work, outside the lock. The entry is not yet ready, so
			// no subscriber reads these fields; the commit below publishes
			// them under the lock that readers take.
			checksum := core.ChecksumMCs(e.mcs)
			var payload []byte
			if prev != nil && prev.version == e.fromVersion {
				if d, ok := h.diff(&algo, &algoKey, prev, e); ok {
					p, err := encodeModelPayload(e.version, checksum, e.batch, e.time, d)
					if err == nil {
						payload = p
					} else {
						h.metrics.encodeErrors.Add(1)
					}
				}
			}
			h.mu.Lock()
			e.checksum = checksum
			e.deltaPayload = payload
			if e.version > h.encodedThrough {
				h.encodedThrough = e.version
			}
			subs := make([]*subscriber, 0, len(h.subs))
			for s := range h.subs {
				subs = append(subs, s)
			}
			h.mu.Unlock()
			for _, s := range subs {
				s.wake()
			}
		}
	}
}

// evict is the registry's eviction hook: drop retained entries for
// versions that aged out. Runs under the registry publisher lock; takes
// only the hub lock (registry.mu → hub.mu is the one lock order — the
// hub never publishes while holding its own lock).
func (h *Hub) evict(version uint64) {
	h.mu.Lock()
	for len(h.window) > 0 && h.window[0].version <= version {
		h.window = h.window[1:]
	}
	h.mu.Unlock()
}

// diff computes the delta prev→next through the algorithm's
// SnapshotDiffer capability, caching the algorithm instance across calls
// via algo/algoKey (owned by the encoder goroutine). ok is false when
// the algorithm does not diff, declines (a delta would not beat the
// full snapshot), or cannot be constructed.
func (h *Hub) diff(algo *core.Algorithm, algoKey *string, prev, next *entry) (*core.SnapshotDelta, bool) {
	key := next.params.Name
	if *algo == nil || *algoKey != key {
		a, err := h.cfg.Algos.New(next.params)
		if err != nil {
			return nil, false
		}
		*algo, *algoKey = a, key
	}
	differ, ok := (*algo).(core.SnapshotDiffer)
	if !ok {
		return nil, false
	}
	d, ok := differ.DiffState(prev.mcs, next.mcs)
	if !ok {
		return nil, false
	}
	d.Params = next.params
	d.FromVersion = prev.version
	d.Version = next.version
	return d, true
}

// readyLocked returns the encoded prefix of the retained window — the
// entries whose checksum and delta payload the encoder has committed.
// Subscribers are planned against this prefix only, so a publication is
// never visible to fan-out until it is fully prepared.
func (h *Hub) readyLocked() []*entry {
	w := h.window
	for len(w) > 0 && w[len(w)-1].version > h.encodedThrough {
		w = w[:len(w)-1]
	}
	return w
}

// maxLagLocked resolves the effective shed threshold.
func (h *Hub) maxLagLocked() int {
	if h.cfg.MaxLag > 0 {
		return h.cfg.MaxLag
	}
	if n := len(h.window); n > 0 {
		return n
	}
	return 1
}

// sendPlan is one planning decision for a subscriber: either the shared
// delta payloads to write, in order, or (full) the entry whose snapshot
// frame to build and write, plus the version the subscriber is at after
// writing.
type sendPlan struct {
	payloads [][]byte
	fullOf   *entry // when full: snapshot this entry (frame built outside the lock)
	sent     uint64
	full     bool // the plan is a full snapshot rather than deltas
	shed     bool // full because the subscriber exceeded MaxLag
	lag      uint64
}

// planLocked decides what to send a subscriber positioned at sent. It
// returns ok=false when the subscriber is already current (or nothing
// ready was published yet). Resume rule, in order: current → nothing;
// within MaxLag with an unbroken delta chain rooted at sent → replay
// deltas; anything else → full snapshot of the latest version (shed
// when the subscriber held a live position and fell too far behind).
// The window may be sparse under coalescing, so the chain is linked by
// each entry's fromVersion rather than by version arithmetic.
func (h *Hub) planLocked(sent uint64) (sendPlan, bool) {
	ready := h.readyLocked()
	n := len(ready)
	if n == 0 {
		return sendPlan{}, false
	}
	latest := ready[n-1]
	if sent >= latest.version {
		return sendPlan{}, false
	}
	plan := sendPlan{sent: latest.version, lag: latest.version - sent}
	// chain = the retained entries past sent. Replay cost is its length
	// — under coalescing the version distance inflates across gaps, but
	// catching up still costs one delta per retained entry — so the shed
	// decision compares entries, not versions. The chain replays iff its
	// first delta is based exactly on sent and every link has a payload
	// (entries always diff from their retained predecessor, so the
	// interior links hold structurally).
	start := 0
	for start < n && ready[start].version <= sent {
		start++
	}
	chain := ready[start:]
	if len(chain) <= h.maxLagLocked() {
		intact := len(chain) > 0 && chain[0].fromVersion == sent
		for _, e := range chain {
			if e.deltaPayload == nil {
				intact = false
				break
			}
		}
		if intact {
			plan.payloads = make([][]byte, len(chain))
			for i, e := range chain {
				plan.payloads[i] = e.deltaPayload
			}
			return plan, true
		}
	}
	plan.fullOf = latest
	plan.full = true
	plan.shed = sent > 0
	return plan, true
}

// resolveCursor decides a connecting subscriber's starting position from
// its hello. It returns the version to resume from (0 = from scratch;
// the first plan then sends a full snapshot) and whether the cursor was
// honored.
func (h *Hub) resolveCursor(hi hello) (sent uint64, resumed bool) {
	if !hi.hasCursor || hi.version == 0 {
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ready := h.readyLocked()
	if len(ready) == 0 {
		return 0, false // nothing ready yet — start from scratch
	}
	for _, e := range ready {
		if e.version == hi.version {
			if e.checksum != hi.checksum {
				return 0, false // diverged replica — full-snapshot fallback
			}
			return hi.version, true
		}
	}
	// The window root's delta base has no retained checksum to validate
	// against, but the chain rooted there is fully described by the
	// retained deltas, whose apply re-validates via checksums anyway.
	// If the client's base diverged, its apply fails and it reconnects
	// without a cursor.
	if hi.version == ready[0].fromVersion && hi.version > 0 {
		return hi.version, true
	}
	// Evicted from retention, a coalesced-away version, or a different
	// hub incarnation — full-snapshot fallback.
	return 0, false
}

// Serve accepts subscriber connections on ln until the listener closes
// or the hub shuts down. Run it on its own goroutine; one hub may serve
// several listeners.
func (h *Hub) Serve(ln net.Listener) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		ln.Close()
		return errors.New("subscribe: hub is closed")
	}
	h.listeners = append(h.listeners, ln)
	h.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			h.mu.Lock()
			closed := h.closed
			h.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("subscribe: accept: %w", err)
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.handle(conn)
		}()
	}
}

// DisconnectAll abruptly closes every current subscriber connection
// (cursors stay valid; clients reconnect and resume). It exists for
// operational fencing and for churn tests that need a mid-stream kill.
func (h *Hub) DisconnectAll() {
	h.mu.Lock()
	subs := make([]*subscriber, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	for _, s := range subs {
		s.conn.Close()
		s.kick()
	}
}

// Close drains the hub: stop accepting, send goodbye to every
// subscriber, and wait for their goroutines to exit.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	listeners := h.listeners
	subs := make([]*subscriber, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	for _, ln := range listeners {
		ln.Close()
	}
	for _, s := range subs {
		s.stop()
	}
	h.wg.Wait()
	close(h.encoderStop)
	<-h.encoderDone
	if h.egress != nil {
		h.egress.close()
	}
	return nil
}
