package subscribe

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"diststream/internal/core"
	"diststream/internal/vclock"
	"diststream/internal/wire"
)

// The subscription wire protocol. Every message is one length-prefixed
// frame (wire.WriteFrame/ReadFrame); payloads use the wire package's
// varint/float primitives so the framing layer stays dumb.
//
// Connection opening: the client sends exactly one hello frame carrying
// the protocol magic, its protocol version and an optional resume cursor
// (modelVersion, checksum). The hub answers with a stream of server
// frames and the client never writes again; liveness flows server →
// client via heartbeats, and a dead client surfaces as a failed write on
// the hub side.
//
// Server frames:
//
//   - model (kindModel): one core.SnapshotDelta. FromVersion == 0 marks
//     a full snapshot — the delta from the empty model — which the
//     client applies against an empty base; FromVersion > 0 is an
//     incremental delta the client applies against its replica at
//     exactly that version. Either way core's checksum validation
//     guards the result, so a full snapshot is "checksummed" for free.
//   - heartbeat (kindHeartbeat): the hub's latest version, sent on idle
//     so both sides can detect a dead or wedged peer.
//   - goodbye (kindGoodbye): clean shutdown; the client should back off
//     and reconnect with its cursor (the hub may be restarting).

const (
	// protoMagic opens every hello frame.
	protoMagic = "DSUB"
	// protoVersion is bumped on incompatible protocol changes; the hub
	// rejects hellos with a different version.
	protoVersion = 1
)

// Server frame kinds (first payload byte).
const (
	kindModel     = 1
	kindHeartbeat = 2
	kindGoodbye   = 3
)

// Delta payload encodings inside a model frame.
const (
	encWire = 1 // internal/wire columnar (needs a registered MC codec)
	encGob  = 2 // encoding/gob fallback (needs gob type registration)
)

// maxHelloSize bounds the hello frame a hub will read: the fixed fields
// fit in tens of bytes, so anything larger is garbage or an attack.
const maxHelloSize = 256

// hello is the one client → hub message.
type hello struct {
	// hasCursor distinguishes "resume from (version, checksum)" from a
	// fresh subscription (version 0 is not a valid cursor, so the flag
	// is explicit rather than sentinel-encoded).
	hasCursor bool
	version   uint64
	checksum  uint64
}

func encodeHello(h hello) []byte {
	e := wire.NewEnc(32)
	e.String(protoMagic)
	e.Byte(protoVersion)
	e.Bool(h.hasCursor)
	e.Uint(h.version)
	e.Uint(h.checksum)
	return e.Bytes()
}

func decodeHello(payload []byte) (hello, error) {
	d := wire.NewDec(payload)
	magic := d.String()
	ver := d.Byte()
	h := hello{hasCursor: d.Bool(), version: d.Uint(), checksum: d.Uint()}
	if err := d.Err(); err != nil {
		return hello{}, err
	}
	if magic != protoMagic {
		return hello{}, fmt.Errorf("subscribe: bad hello magic %q", magic)
	}
	if ver != protoVersion {
		return hello{}, fmt.Errorf("subscribe: protocol version %d, want %d", ver, protoVersion)
	}
	return h, nil
}

// modelHeader is the fixed-size front of a model frame: enough for a
// subscriber to maintain its cursor (version, checksum) and classify the
// frame (fromVersion == 0 marks a full snapshot) without decoding the
// delta body — the drain path in Client depends on exactly this split.
type modelHeader struct {
	version     uint64
	fromVersion uint64
	checksum    uint64
	batch       int
	time        vclock.Time
}

// modelFrame is a decoded model frame: header plus the delta to apply.
type modelFrame struct {
	modelHeader
	delta *core.SnapshotDelta
}

// encodeModelPayload builds a model frame payload. The delta goes
// through the columnar codec when the algorithm registered one and
// falls back to gob otherwise — the same two-tier encoding the TCP
// executor uses for broadcast values.
func encodeModelPayload(version, checksum uint64, batch int, t vclock.Time, d *core.SnapshotDelta) ([]byte, error) {
	var (
		body []byte
		tag  byte
	)
	if b, ok := wire.EncodeValue(d); ok {
		body, tag = b, encWire
	} else {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(d); err != nil {
			return nil, fmt.Errorf("subscribe: encode delta v%d: %w", version, err)
		}
		body, tag = buf.Bytes(), encGob
	}
	e := wire.NewEnc(32 + len(body))
	e.Byte(kindModel)
	e.Uint(version)
	e.Uint(d.FromVersion)
	e.Uint(checksum)
	e.Int(int64(batch))
	e.F64(float64(t))
	e.Byte(tag)
	e.Uint(uint64(len(body)))
	return append(e.Bytes(), body...), nil
}

// decodeModelHeader reads just the fixed header, leaving the decoder
// positioned at the encoding tag. The drain path stops here.
func decodeModelHeader(d *wire.Dec) (modelHeader, error) {
	h := modelHeader{
		version:     d.Uint(),
		fromVersion: d.Uint(),
		checksum:    d.Uint(),
		batch:       int(d.Int()),
		time:        vclock.Time(d.F64()),
	}
	if err := d.Err(); err != nil {
		return modelHeader{}, err
	}
	return h, nil
}

func decodeModelPayload(d *wire.Dec) (modelFrame, error) {
	h, err := decodeModelHeader(d)
	if err != nil {
		return modelFrame{}, err
	}
	f := modelFrame{modelHeader: h}
	tag := d.Byte()
	// The body was appended as a uvarint length plus raw bytes — the
	// same layout as a wire string — so String recovers it in one
	// bounded read.
	body := []byte(d.String())
	if err := d.Err(); err != nil {
		return modelFrame{}, err
	}
	switch tag {
	case encWire:
		v, err := wire.DecodeValue(body)
		if err != nil {
			return modelFrame{}, err
		}
		delta, ok := v.(*core.SnapshotDelta)
		if !ok {
			return modelFrame{}, fmt.Errorf("subscribe: model frame decoded to %T", v)
		}
		f.delta = delta
	case encGob:
		f.delta = new(core.SnapshotDelta)
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(f.delta); err != nil {
			return modelFrame{}, fmt.Errorf("subscribe: gob delta: %w", err)
		}
	default:
		return modelFrame{}, fmt.Errorf("subscribe: unknown delta encoding %d", tag)
	}
	if f.delta.Version != f.version || f.delta.FromVersion != f.fromVersion || f.delta.Checksum != f.checksum {
		return modelFrame{}, fmt.Errorf("subscribe: frame header (v%d←%d sum %#x) disagrees with delta (v%d←%d sum %#x)",
			f.version, f.fromVersion, f.checksum, f.delta.Version, f.delta.FromVersion, f.delta.Checksum)
	}
	return f, nil
}

func encodeHeartbeat(latest uint64) []byte {
	e := wire.NewEnc(16)
	e.Byte(kindHeartbeat)
	e.Uint(latest)
	return e.Bytes()
}

func encodeGoodbye() []byte {
	e := wire.NewEnc(1)
	e.Byte(kindGoodbye)
	return e.Bytes()
}
