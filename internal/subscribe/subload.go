package subscribe

import (
	"context"
	"errors"
	"time"

	"diststream/internal/backoff"
	"diststream/internal/core"
)

// LoadConfig configures RunSubscribers, the N-subscriber load harness
// behind cmd/subload and the acceptance bench.
type LoadConfig struct {
	// Addr is the hub's TCP address. Required.
	Addr string
	// Subscribers is how many concurrent clients to run. Required.
	Subscribers int
	// Algos resolves algorithms for the replicas. Required.
	Algos *core.AlgorithmRegistry
	// Duration bounds the run (ignored when <= 0 and Stop is set).
	Duration time.Duration
	// Stop, when non-nil, ends the run early.
	Stop <-chan struct{}
	// WarmTimeout bounds how long to wait for every subscriber to hold
	// a first replica before measuring. 0 means 30s.
	WarmTimeout time.Duration
	// Warmed, when non-nil, is closed once every subscriber holds its
	// first replica — callers align a measured window with the fleet's
	// steady state (cold-start snapshot delivery is not steady state).
	Warmed chan<- struct{}
	// Backoff paces each client's reconnects.
	Backoff backoff.Policy
	// Drain runs the fleet in drain mode (cursor-tracking, no local
	// materialization) — see ClientConfig.Drain.
	Drain bool
}

// LoadResult aggregates one RunSubscribers run.
type LoadResult struct {
	Subscribers int     `json:"subscribers"`
	Seconds     float64 `json:"seconds"`
	// Connects..ApplyErrors are sums over all clients.
	Connects    uint64 `json:"connects"`
	Deltas      uint64 `json:"deltas"`
	Snapshots   uint64 `json:"snapshots"`
	Heartbeats  uint64 `json:"heartbeats"`
	BytesRead   uint64 `json:"bytes_read"`
	Stale       uint64 `json:"stale"`
	ApplyErrors uint64 `json:"apply_errors"`
	// MinVersion and MaxVersion are the final replica versions across
	// clients (0 = a client never received a model).
	MinVersion uint64 `json:"min_version"`
	MaxVersion uint64 `json:"max_version"`
	// VersionsSpanned is the largest first→final version distance any
	// client observed — the batch count the byte metric normalizes by.
	VersionsSpanned uint64 `json:"versions_spanned"`
	// BytesPerSubPerBatch is BytesRead / Subscribers / VersionsSpanned:
	// the marginal network cost of keeping one replica current per
	// published batch.
	BytesPerSubPerBatch float64 `json:"bytes_per_sub_per_batch"`
}

// RunSubscribers dials cfg.Subscribers clients against the hub, waits
// until each holds a replica (warm-up), runs for cfg.Duration (or until
// cfg.Stop), and returns aggregate counters. The bytes metric is
// measured from the end of warm-up so connection-time snapshots do not
// pollute the per-batch marginal cost.
func RunSubscribers(cfg LoadConfig) (LoadResult, error) {
	if cfg.Subscribers <= 0 {
		return LoadResult{}, errors.New("subscribe: load needs Subscribers > 0")
	}
	if cfg.WarmTimeout <= 0 {
		cfg.WarmTimeout = 30 * time.Second
	}
	clients := make([]*Client, 0, cfg.Subscribers)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < cfg.Subscribers; i++ {
		c, err := Dial(ClientConfig{Addr: cfg.Addr, Algos: cfg.Algos, Backoff: cfg.Backoff, Drain: cfg.Drain})
		if err != nil {
			return LoadResult{}, err
		}
		clients = append(clients, c)
	}

	warmCtx, cancel := context.WithTimeout(context.Background(), cfg.WarmTimeout)
	defer cancel()
	for _, c := range clients {
		if err := c.WaitVersion(warmCtx, 1); err != nil {
			return LoadResult{}, errors.New("subscribe: load warm-up timed out before every subscriber held a replica")
		}
	}

	firstVersions := make([]uint64, len(clients))
	baseBytes := uint64(0)
	for i, c := range clients {
		firstVersions[i] = c.Replica().Version
		baseBytes += c.Stats().BytesRead
	}
	if cfg.Warmed != nil {
		close(cfg.Warmed)
	}

	start := time.Now()
	var timeout <-chan time.Time
	if cfg.Duration > 0 {
		t := time.NewTimer(cfg.Duration)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-timeout:
	case <-cfg.Stop:
	}

	res := LoadResult{Subscribers: cfg.Subscribers, Seconds: time.Since(start).Seconds()}
	for i, c := range clients {
		s := c.Stats()
		res.Connects += s.Connects
		res.Deltas += s.Deltas
		res.Snapshots += s.Snapshots
		res.Heartbeats += s.Heartbeats
		res.BytesRead += s.BytesRead
		res.Stale += s.Stale
		res.ApplyErrors += s.ApplyErrors
		final := uint64(0)
		if r := c.Replica(); r != nil {
			final = r.Version
		}
		if i == 0 || final < res.MinVersion {
			res.MinVersion = final
		}
		if final > res.MaxVersion {
			res.MaxVersion = final
		}
		if span := final - firstVersions[i]; span > res.VersionsSpanned {
			res.VersionsSpanned = span
		}
	}
	if res.BytesRead >= baseBytes {
		measured := res.BytesRead - baseBytes
		if res.VersionsSpanned > 0 {
			res.BytesPerSubPerBatch = float64(measured) / float64(res.Subscribers) / float64(res.VersionsSpanned)
		}
	}
	return res, nil
}
