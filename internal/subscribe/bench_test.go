package subscribe

import (
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"diststream/internal/core"
	"diststream/internal/datagen"
	"diststream/internal/harness"
	"diststream/internal/serve"
	"diststream/internal/stream"
)

// TestSubscribeIngestImpactUnderFanout is the headline acceptance check
// for the subscription subsystem: with 1000 live subscribers following a
// hub at steady state under an egress budget, ingest throughput must
// stay within 10% of the subscriber-off baseline. Three design points
// make the SLO hold by construction rather than by luck: delta
// preparation runs on the hub's encoder goroutine so the publish path
// never blocks on fan-out (per-subscriber cost is one write of the
// shared bytes), the egress budget bounds the total CPU and bandwidth
// fan-out can take from the colocated ingest path — the
// admission-control analog for the subscription tier — and the measured
// window starts only after the fleet is warm: an unmeasured priming
// pass populates the model and delivers every cold-start snapshot
// first, because connection-storm delivery is a deployment-time event,
// not the steady state the SLO governs. The fleet runs in drain mode
// (full protocol, cursor resume, no local materialization) because the
// 1000 replicas' apply CPU belongs to subscriber machines in
// deployment, not to the driver this test measures; replica correctness
// is pinned separately by the equivalence and churn tests. Each
// configuration gets three attempts and the best one counts, damping
// scheduler noise on small CI machines.
func TestSubscribeIngestImpactUnderFanout(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive load test")
	}
	if raceEnabled {
		// The race runtime slows the subscriber path (frame decode, delta
		// apply, snapshot rebuild) far more than the ingest path, so the
		// throughput ratio this test asserts is not meaningful under -race.
		t.Skip("throughput-ratio SLO is skewed by the race detector")
	}

	const (
		records = 20000
		// passes sizes the measured window: with a warm model the pipeline
		// sustains several hundred thousand records per second, and the
		// window must span many seconds for the ratio to measure steady
		// state rather than the first post-warm-up wake burst.
		passes      = 180
		subscribers = 1000
		tries       = 3
		// egressBudget bounds the fleet's aggregate bandwidth. 4 MiB/s is
		// far above one subscriber's needs and far below what 1000
		// unthrottled connections would attempt on a small CI machine.
		egressBudget = 4 << 20
		// publishInterval coalesces the publication stream for fan-out: a
		// saturated single-machine ingest loop publishes hundreds of
		// versions per second, and preparing fan-out state at that cadence
		// is exactly the interference this test exists to rule out.
		publishInterval = 250 * time.Millisecond
	)
	harness.RegisterAllWireTypes()
	algos, err := harness.NewAlgorithmRegistry()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := harness.LoadDataset(datagen.KDD99Sim, records, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}

	// ingestOnce primes the pipeline with one unmeasured pass (and, with
	// fan-out enabled, waits for all 1000 subscribers to warm up against
	// the primed model), then measures ingest throughput over the main
	// run while the fleet follows the hub.
	ingestOnce := func(withSubs bool) float64 {
		t.Helper()
		algo, err := harness.NewAlgorithm("clustream", ds, 42)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := harness.NewEngine(2, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer engine.Close()

		cfg := core.Config{
			Algorithm:     algo,
			Engine:        engine,
			BatchInterval: 2,
			// The same pacing a production colocated deployment would use:
			// each publication clones the model for its consumers, and at a
			// saturated ingest rate an unpaced hook would publish hundreds
			// of times per second.
			PublishMinInterval: publishInterval,
		}
		var (
			hub      *Hub
			hubAddr  string
			stop     chan struct{}
			warmed   chan struct{}
			loadDone chan struct{}
			loadRes  LoadResult
			loadErr  error
		)
		if withSubs {
			registry := serve.NewRegistry(8)
			// The hub's own coalescing interval sits below the pipeline's
			// pacing so it never bites a well-paced feed; it is the
			// defense-in-depth backstop against an unpaced one.
			hub, err = NewHub(HubConfig{
				Registry:           registry,
				Algos:              algos,
				EgressBytesPerSec:  egressBudget,
				MinPublishInterval: publishInterval / 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go hub.Serve(ln)
			defer hub.Close()
			hubAddr = ln.Addr().String()
			cfg.OnPublish = hub.Hook()
		}
		pipeline, err := core.NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}

		// Priming pass: populate the model (and the hub's retained window)
		// before anything is measured.
		primeSrc, err := stream.NewRepeatSource(ds.Records, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pipeline.Run(primeSrc); err != nil {
			t.Fatal(err)
		}
		primed := pipeline.Stats()

		if withSubs {
			// Warm the fleet outside the measured window: every subscriber
			// dials, handshakes and receives its first snapshot now.
			stop = make(chan struct{})
			warmed = make(chan struct{})
			loadDone = make(chan struct{})
			go func() {
				defer close(loadDone)
				loadRes, loadErr = RunSubscribers(LoadConfig{
					Addr:        hubAddr,
					Subscribers: subscribers,
					Algos:       algos,
					Stop:        stop,
					WarmTimeout: 120 * time.Second,
					Warmed:      warmed,
					Drain:       true,
				})
			}()
			select {
			case <-warmed:
			case <-loadDone:
				t.Fatalf("subscriber fleet died during warm-up: %v", loadErr)
			}
		}

		src, err := stream.NewRepeatSource(ds.Records, passes)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := pipeline.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		if withSubs {
			close(stop)
			<-loadDone
			if loadErr != nil {
				t.Fatalf("subscriber fleet: %v", loadErr)
			}
			if loadRes.MaxVersion == 0 {
				t.Fatal("no subscriber ever received a model; the test measured nothing")
			}
			if loadRes.ApplyErrors != 0 {
				t.Fatalf("subscriber fleet recorded %d apply errors", loadRes.ApplyErrors)
			}
			hs := hub.Stats()
			t.Logf("fleet: %d connects, %d deltas, %d snapshots, versions %d..%d, %.0f bytes/sub/batch, %d sheds, %d throttle waits",
				loadRes.Connects, loadRes.Deltas, loadRes.Snapshots,
				loadRes.MinVersion, loadRes.MaxVersion, loadRes.BytesPerSubPerBatch,
				hs.Sheds, hs.ThrottleWaits)
		}
		// Stats accumulate across Run calls but TotalWall is per-run, so
		// the measured window's throughput is the record delta over the
		// main run's wall time.
		return float64(stats.Records-primed.Records) / stats.TotalWall.Seconds()
	}

	best := func(withSubs bool) float64 {
		var b float64
		for i := 0; i < tries; i++ {
			if tp := ingestOnce(withSubs); tp > b {
				b = tp
			}
		}
		return b
	}

	baseline := best(false)
	loaded := best(true)
	ratio := loaded / baseline
	t.Logf("ingest throughput: baseline %.0f rec/s, with %d subscribers %.0f rec/s (ratio %.3f)",
		baseline, subscribers, loaded, ratio)
	if ratio < 0.90 {
		t.Errorf("ingest throughput under fan-out dropped to %.1f%% of baseline, want >= 90%%", ratio*100)
	}
}

// BenchmarkSubscribeFanout drives the N-subscriber load harness against
// a hub fed by a deterministic publication stream and reports the
// replication-path metrics (bytes per subscriber per batch, deltas vs
// snapshots). It also prints one `SUBLOAD {json}` summary line, which
// cmd/benchjson embeds in the archived bench report — so `make
// bench-json` tracks the fan-out trajectory next to the ingest and
// serving benchmarks.
func BenchmarkSubscribeFanout(b *testing.B) {
	const subscribers = 256
	registry := serve.NewRegistry(8)
	hub, err := NewHub(HubConfig{Registry: registry, Algos: testAlgos(b)})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go hub.Serve(ln)
	defer hub.Close()

	// Publisher: the deterministic delta-producing fixture, paced so every
	// iteration spans many versions.
	pubStop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for v := 1; ; v++ {
			select {
			case <-pubStop:
				return
			default:
			}
			hub.Publish(versionPublished(v))
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer func() { close(pubStop); <-pubDone }()

	var total LoadResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunSubscribers(LoadConfig{
			Addr:        ln.Addr().String(),
			Subscribers: subscribers,
			Algos:       testAlgos(b),
			Duration:    time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		total = res
	}
	b.StopTimer()

	b.ReportMetric(total.BytesPerSubPerBatch, "bytes/sub/batch")
	b.ReportMetric(float64(total.Deltas), "deltas")
	b.ReportMetric(float64(total.Snapshots), "snapshots")
	if blob, err := json.Marshal(total); err == nil {
		fmt.Printf("SUBLOAD %s\n", blob)
	}
}
