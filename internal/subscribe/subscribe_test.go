package subscribe

import (
	"bytes"
	"context"
	"encoding/gob"
	"net"
	"strings"
	"testing"
	"time"

	"diststream/internal/backoff"
	"diststream/internal/core"
	"diststream/internal/serve"
	"diststream/internal/simple"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
	"diststream/internal/wire"
)

func testAlgos(t testing.TB) *core.AlgorithmRegistry {
	t.Helper()
	simple.RegisterWireTypes()
	algos := core.NewAlgorithmRegistry()
	if err := simple.Register(algos); err != nil {
		t.Fatal(err)
	}
	return algos
}

// versionPublished builds the v-th publication of a deterministic
// three-micro-cluster stream: two micro-clusters stay bit-identical
// across versions (so deltas are real deltas) and the third's weight
// tracks v.
func versionPublished(v int) core.Published {
	algo := simple.New(simple.Config{Radius: 2})
	centers := []vector.Vector{{0, 0}, {10, 10}, {20, 20}}
	weights := []float64{4, 6, 8 + float64(v)}
	mcs := make([]core.MicroCluster, len(centers))
	for i := range centers {
		// Only the last micro-cluster varies with v: the others stay
		// bit-identical across versions so DiffState produces genuine
		// deltas.
		updated := vclock.Time(1)
		if i == len(centers)-1 {
			updated = vclock.Time(v)
		}
		mcs[i] = &simple.MC{
			Id:      uint64(i + 1),
			Sum:     centers[i].Clone().Scale(weights[i]),
			W:       weights[i],
			Created: 0,
			Updated: updated,
		}
	}
	idx := core.BuildFlatIndex(mcs)
	return core.Published{
		Batch:  v,
		Time:   vclock.Time(v),
		MCs:    mcs,
		Index:  &idx,
		Search: algo.NewSnapshot(mcs),
		Params: algo.Params(),
		Stats:  core.RunStats{Batches: v, Records: v * 100},
	}
}

// newTestHub builds a hub over a fresh registry and serves it on a
// loopback listener. Heartbeats are fast so liveness paths get exercised
// without slowing tests.
func newTestHub(t *testing.T, keep, maxLag int) (*Hub, *serve.Registry, string) {
	t.Helper()
	registry := serve.NewRegistry(keep)
	hub, err := NewHub(HubConfig{
		Registry:       registry,
		Algos:          testAlgos(t),
		MaxLag:         maxLag,
		WriteTimeout:   2 * time.Second,
		HeartbeatEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hub.Serve(ln)
	t.Cleanup(func() { hub.Close() })
	return hub, registry, ln.Addr().String()
}

// waitEncoded blocks until the hub's encoder has committed through
// version v. Tests that inspect planning state directly need the
// barrier the subscriber path gets for free from its wake channel.
func (h *Hub) waitEncoded(t testing.TB, v uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		h.mu.Lock()
		done := h.encodedThrough >= v
		h.mu.Unlock()
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("encoder never reached version %d", v)
		}
		time.Sleep(time.Millisecond)
	}
}

// gobMCs canonically encodes a micro-cluster list for byte-equality
// assertions (both sides registered the same gob types).
func gobMCs(t testing.TB, mcs []core.MicroCluster) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(mcs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testClientConfig(addr string, algos *core.AlgorithmRegistry) ClientConfig {
	return ClientConfig{
		Addr:    addr,
		Algos:   algos,
		Backoff: backoff.Policy{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
	}
}

// --- protocol ------------------------------------------------------------

func TestHelloRoundTrip(t *testing.T) {
	for _, hi := range []hello{
		{},
		{hasCursor: true, version: 42, checksum: 0xdeadbeef},
	} {
		got, err := decodeHello(encodeHello(hi))
		if err != nil {
			t.Fatalf("decodeHello(%+v): %v", hi, err)
		}
		if got != hi {
			t.Errorf("hello round trip = %+v, want %+v", got, hi)
		}
	}
}

func TestHelloRejectsGarbage(t *testing.T) {
	bad := encodeHello(hello{hasCursor: true, version: 7, checksum: 9})
	bad[1] = 'X' // corrupt the magic
	if _, err := decodeHello(bad); err == nil {
		t.Error("corrupt magic accepted")
	}
	e := wire.NewEnc(16)
	e.String(protoMagic)
	e.Byte(protoVersion + 1)
	e.Bool(false)
	e.Uint(0)
	e.Uint(0)
	if _, err := decodeHello(e.Bytes()); err == nil {
		t.Error("future protocol version accepted")
	}
	if _, err := decodeHello([]byte{3}); err == nil {
		t.Error("truncated hello accepted")
	}
}

func TestModelPayloadRoundTrip(t *testing.T) {
	testAlgos(t)
	pub := versionPublished(3)
	d := &core.SnapshotDelta{
		Params:   pub.Params,
		Version:  5,
		Order:    []uint64{1, 2, 3},
		Upserts:  pub.MCs,
		Checksum: core.ChecksumMCs(pub.MCs),
	}
	for name, params := range map[string]core.Params{
		"wire": pub.Params,
		// An unregistered algorithm name forces the gob fallback path
		// (the MC concrete type itself is gob-registered).
		"gob": {Name: "no-such-codec", Dim: 2},
	} {
		d.Params = params
		payload, err := encodeModelPayload(d.Version, d.Checksum, 7, vclock.Time(1.5), d)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		dec := wire.NewDec(payload)
		if kind := dec.Byte(); kind != kindModel {
			t.Fatalf("%s: kind = %d", name, kind)
		}
		f, err := decodeModelPayload(dec)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if f.version != 5 || f.checksum != d.Checksum || f.batch != 7 || f.time != vclock.Time(1.5) {
			t.Errorf("%s: header = %+v", name, f)
		}
		if !bytes.Equal(gobMCs(t, f.delta.Upserts), gobMCs(t, d.Upserts)) {
			t.Errorf("%s: upserts did not round trip", name)
		}
	}
}

// --- hub planning --------------------------------------------------------

func TestHubPlanLifecycle(t *testing.T) {
	registry := serve.NewRegistry(4)
	hub, err := NewHub(HubConfig{Registry: registry, Algos: testAlgos(t), MaxLag: 3})
	if err != nil {
		t.Fatal(err)
	}
	hub.mu.Lock()
	if _, ok := hub.planLocked(0); ok {
		t.Error("plan before any publish should be empty")
	}
	hub.mu.Unlock()

	for v := 1; v <= 6; v++ {
		hub.Publish(versionPublished(v))
	}
	hub.waitEncoded(t, 6)
	// Retention keep=4 → window holds versions 3..6, all with deltas.
	if min, max := registry.Retained(); min != 3 || max != 6 {
		t.Fatalf("Retained() = (%d, %d), want (3, 6)", min, max)
	}

	hub.mu.Lock()
	defer hub.mu.Unlock()

	if plan, ok := hub.planLocked(6); ok {
		t.Errorf("current subscriber got a plan: %+v", plan)
	}
	// Two behind, within MaxLag, chain intact → two deltas.
	plan, ok := hub.planLocked(4)
	if !ok || plan.full || len(plan.payloads) != 2 || plan.sent != 6 {
		t.Fatalf("plan(4) = %+v ok=%v, want 2 deltas to 6", plan, ok)
	}
	// The payloads are the shared per-entry encodings, not copies.
	if &plan.payloads[0][0] != &hub.window[2].deltaPayload[0] {
		t.Error("plan did not share the retained delta payload")
	}
	// Lag 4 > MaxLag 3 → shed to full snapshot even though version 3 is
	// still one past the window root.
	plan, ok = hub.planLocked(2)
	if !ok || !plan.full || !plan.shed || plan.sent != 6 || plan.fullOf != hub.window[3] {
		t.Fatalf("plan(2) = %+v ok=%v, want shed full snapshot of latest", plan, ok)
	}
	// Fresh subscriber → full snapshot, not a shed.
	plan, ok = hub.planLocked(0)
	if !ok || !plan.full || plan.shed {
		t.Fatalf("plan(0) = %+v ok=%v, want non-shed full snapshot", plan, ok)
	}
	// A broken delta chain (algorithm declined to diff) → full snapshot.
	hub.window[3].deltaPayload = nil
	plan, ok = hub.planLocked(4)
	if !ok || !plan.full {
		t.Fatalf("plan(4) with broken chain = %+v ok=%v, want full snapshot", plan, ok)
	}
}

func TestResolveCursor(t *testing.T) {
	registry := serve.NewRegistry(3)
	hub, err := NewHub(HubConfig{Registry: registry, Algos: testAlgos(t)})
	if err != nil {
		t.Fatal(err)
	}
	checksums := map[uint64]uint64{}
	for v := 1; v <= 5; v++ {
		pub := versionPublished(v)
		checksums[uint64(v)] = core.ChecksumMCs(pub.MCs)
		hub.Publish(pub)
	}
	hub.waitEncoded(t, 5)
	// Window: 3..5. Version 2 resumes (its chain is retained) without a
	// retained checksum; 1 is evicted; wrong checksum diverges.
	cases := []struct {
		hi       hello
		wantSent uint64
		wantOK   bool
	}{
		{hello{}, 0, false},
		{hello{hasCursor: true, version: 4, checksum: checksums[4]}, 4, true},
		{hello{hasCursor: true, version: 2, checksum: checksums[2]}, 2, true},
		{hello{hasCursor: true, version: 1, checksum: checksums[1]}, 0, false},
		{hello{hasCursor: true, version: 4, checksum: 0xbad}, 0, false},
		{hello{hasCursor: true, version: 99, checksum: 1}, 0, false},
	}
	for _, tc := range cases {
		sent, ok := hub.resolveCursor(tc.hi)
		if sent != tc.wantSent || ok != tc.wantOK {
			t.Errorf("resolveCursor(%+v) = (%d, %v), want (%d, %v)",
				tc.hi, sent, ok, tc.wantSent, tc.wantOK)
		}
	}
}

// --- end to end ----------------------------------------------------------

func TestClientFollowsAndServesLocally(t *testing.T) {
	hub, registry, addr := newTestHub(t, 0, 0)
	algos := testAlgos(t)
	hub.Publish(versionPublished(1))
	hub.Publish(versionPublished(2))

	client, err := Dial(testClientConfig(addr, algos))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := client.WaitVersion(ctx, 2); err != nil {
		t.Fatal(err)
	}
	for v := 3; v <= 6; v++ {
		hub.Publish(versionPublished(v))
	}
	if err := client.WaitVersion(ctx, 6); err != nil {
		t.Fatal(err)
	}

	r := client.Replica()
	mv, ok := registry.At(r.Version)
	if !ok {
		t.Fatalf("registry no longer retains replica version %d", r.Version)
	}
	if sum := core.ChecksumMCs(r.MCs); sum != core.ChecksumMCs(mv.MCs) {
		t.Errorf("replica checksum %#x != published %#x", sum, core.ChecksumMCs(mv.MCs))
	}
	if !bytes.Equal(gobMCs(t, r.MCs), gobMCs(t, mv.MCs)) {
		t.Error("replica micro-clusters are not byte-identical to the published snapshot")
	}

	// Local assign answers exactly what the server-side search would.
	point := vector.Vector{9.5, 10.2}
	res, err := client.Assign(point)
	if err != nil {
		t.Fatal(err)
	}
	wantID, wantAbsorb, ok := mv.Search.Nearest(stream.Record{Values: point, Timestamp: mv.Time})
	if !ok {
		t.Fatal("published search snapshot empty")
	}
	if res.ID != wantID || res.Absorbable != wantAbsorb {
		t.Errorf("local Assign = %+v, server says id=%d absorbable=%v", res, wantID, wantAbsorb)
	}
	mcs, v, err := client.Clusters()
	if err != nil || v != r.Version || len(mcs) != len(mv.MCs) {
		t.Errorf("Clusters() = %d mcs @v%d err=%v", len(mcs), v, err)
	}

	// After the initial snapshot everything arrived as deltas.
	st := client.Stats()
	if st.Snapshots != 1 || st.Deltas < 4 {
		t.Errorf("client stats %+v: want exactly 1 snapshot and >= 4 deltas", st)
	}
}

func TestCursorResumeReplaysOnlyDeltas(t *testing.T) {
	hub, _, addr := newTestHub(t, 0, 0)
	algos := testAlgos(t)
	hub.Publish(versionPublished(1))

	client, err := Dial(testClientConfig(addr, algos))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := client.WaitVersion(ctx, 1); err != nil {
		t.Fatal(err)
	}

	// Kill the connection mid-stream; the cursor (1, checksum) stays
	// with the client.
	hub.DisconnectAll()
	hub.Publish(versionPublished(2))
	hub.Publish(versionPublished(3))
	if err := client.WaitVersion(ctx, 3); err != nil {
		t.Fatal(err)
	}

	st := client.Stats()
	if st.Snapshots != 1 {
		t.Errorf("reconnect with a retained cursor fetched %d snapshots, want the initial 1 only", st.Snapshots)
	}
	if st.Connects < 2 {
		t.Errorf("client reports %d connects, want >= 2 (one reconnect)", st.Connects)
	}
	hs := hub.Stats()
	if hs.ResumeCursor < 1 {
		t.Errorf("hub stats %+v: want at least one cursor resume", hs)
	}
	if hs.ResumeSnapshot != 0 {
		t.Errorf("hub stats %+v: retained cursor should not have fallen back to a snapshot", hs)
	}
}

// rawSubscribe opens a bare protocol connection and returns the first
// model frame the hub sends for the given hello.
func rawSubscribe(t *testing.T, addr string, hi hello) modelFrame {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteFrame(conn, encodeHello(hi)); err != nil {
		t.Fatal(err)
	}
	for {
		payload, err := wire.ReadFrame(conn, 0)
		if err != nil {
			t.Fatal(err)
		}
		dec := wire.NewDec(payload)
		switch kind := dec.Byte(); kind {
		case kindModel:
			f, err := decodeModelPayload(dec)
			if err != nil {
				t.Fatal(err)
			}
			return f
		case kindHeartbeat:
			continue
		default:
			t.Fatalf("unexpected frame kind %d", kind)
		}
	}
}

func TestEvictedCursorFallsBackToChecksummedSnapshot(t *testing.T) {
	hub, registry, addr := newTestHub(t, 3, 0)
	checksums := map[uint64]uint64{}
	for v := 1; v <= 6; v++ {
		pub := versionPublished(v)
		checksums[uint64(v)] = core.ChecksumMCs(pub.MCs)
		hub.Publish(pub)
	}
	// Window is 4..6. A cursor at 5 resumes via the single retained
	// delta; a cursor at 2 was evicted and must get the full snapshot.
	f := rawSubscribe(t, addr, hello{hasCursor: true, version: 5, checksum: checksums[5]})
	if f.delta.FromVersion != 5 || f.version != 6 {
		t.Errorf("retained cursor got %d→%d, want delta 5→6", f.delta.FromVersion, f.version)
	}
	f = rawSubscribe(t, addr, hello{hasCursor: true, version: 2, checksum: checksums[2]})
	if f.delta.FromVersion != 0 || f.version != 6 {
		t.Errorf("evicted cursor got %d→%d, want full snapshot of 6", f.delta.FromVersion, f.version)
	}
	// The fallback snapshot is checksummed and byte-identical to the
	// driver's published model.
	mcs, err := core.ApplyMCDelta(nil, f.delta)
	if err != nil {
		t.Fatalf("apply fallback snapshot: %v", err)
	}
	mv, _ := registry.At(6)
	if !bytes.Equal(gobMCs(t, mcs), gobMCs(t, mv.MCs)) {
		t.Error("fallback snapshot is not byte-identical to the published model")
	}
	hs := hub.Stats()
	if hs.ResumeCursor < 1 || hs.ResumeSnapshot < 1 {
		t.Errorf("hub stats %+v: want both resume paths counted", hs)
	}
}

func TestSlowSubscriberShedsToSnapshotResync(t *testing.T) {
	registry := serve.NewRegistry(16)
	hub, err := NewHub(HubConfig{
		Registry:       registry,
		Algos:          testAlgos(t),
		MaxLag:         2,
		WriteTimeout:   time.Second,
		HeartbeatEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hub.Publish(versionPublished(1))

	// net.Pipe is unbuffered: the hub's writes block until this side
	// reads, so "not reading" models a genuinely slow consumer.
	cli, srv := net.Pipe()
	defer cli.Close()
	hub.wg.Add(1)
	go func() {
		defer hub.wg.Done()
		hub.handle(srv)
	}()
	if err := wire.WriteFrame(cli, encodeHello(hello{})); err != nil {
		t.Fatal(err)
	}
	readModel := func() modelFrame {
		t.Helper()
		for {
			payload, err := wire.ReadFrame(cli, 0)
			if err != nil {
				t.Fatal(err)
			}
			dec := wire.NewDec(payload)
			if dec.Byte() != kindModel {
				continue
			}
			f, err := decodeModelPayload(dec)
			if err != nil {
				t.Fatal(err)
			}
			return f
		}
	}
	if f := readModel(); f.delta.FromVersion != 0 || f.version != 1 {
		t.Fatalf("first frame %d→%d, want full snapshot of 1", f.delta.FromVersion, f.version)
	}

	// Publish a burst while the consumer refuses to read: the hub's next
	// planning pass sees lag > MaxLag and sheds to a snapshot resync.
	for v := 2; v <= 6; v++ {
		hub.Publish(versionPublished(v))
	}
	sawResync := false
	for i := 0; i < 6 && !sawResync; i++ {
		f := readModel()
		if f.delta.FromVersion == 0 && f.version == 6 {
			sawResync = true
		}
	}
	if !sawResync {
		t.Fatal("slow subscriber never received a full-snapshot resync")
	}
	if hs := hub.Stats(); hs.Sheds < 1 {
		t.Errorf("hub stats %+v: want at least one shed", hs)
	}
}

func TestWriteTimeoutDisconnectsButCursorSurvives(t *testing.T) {
	registry := serve.NewRegistry(16)
	hub, err := NewHub(HubConfig{
		Registry:       registry,
		Algos:          testAlgos(t),
		WriteTimeout:   50 * time.Millisecond,
		HeartbeatEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hub.Publish(versionPublished(1))

	cli, srv := net.Pipe()
	defer cli.Close()
	hub.wg.Add(1)
	go func() {
		defer hub.wg.Done()
		hub.handle(srv)
	}()
	if err := wire.WriteFrame(cli, encodeHello(hello{})); err != nil {
		t.Fatal(err)
	}
	// Never read: the full-snapshot write times out and the hub drops
	// the connection.
	deadline := time.Now().Add(5 * time.Second)
	for hub.Stats().Disconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hub never disconnected the wedged subscriber")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if hs := hub.Stats(); hs.Active != 0 {
		t.Errorf("hub stats %+v: wedged subscriber still counted active", hs)
	}
}

func TestHubCloseSendsGoodbyeAndDrains(t *testing.T) {
	hub, _, addr := newTestHub(t, 0, 0)
	algos := testAlgos(t)
	hub.Publish(versionPublished(1))
	client, err := Dial(testClientConfig(addr, algos))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := client.WaitVersion(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	if hs := hub.Stats(); hs.Active != 0 {
		t.Errorf("hub stats %+v after Close: want zero active subscribers", hs)
	}
	// The replica outlives the hub.
	if r := client.Replica(); r == nil || r.Version != 1 {
		t.Errorf("replica lost after hub shutdown: %+v", r)
	}
}

func TestHubMetricsExposition(t *testing.T) {
	hub, _, addr := newTestHub(t, 0, 0)
	algos := testAlgos(t)
	hub.Publish(versionPublished(1))
	client, err := Dial(testClientConfig(addr, algos))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := client.WaitVersion(ctx, 1); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	hub.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"diststream_subscribe_active_subscribers 1",
		"diststream_subscribe_connects_total 1",
		"diststream_subscribe_snapshots_sent_total 1",
		"diststream_subscribe_lag_versions_bucket{le=\"1\"}",
		"diststream_subscribe_lag_versions_count",
		"diststream_subscribe_shed_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRunSubscribersAggregates(t *testing.T) {
	hub, _, addr := newTestHub(t, 0, 0)
	algos := testAlgos(t)
	hub.Publish(versionPublished(1))

	stop := make(chan struct{})
	done := make(chan struct{})
	var res LoadResult
	var loadErr error
	go func() {
		defer close(done)
		res, loadErr = RunSubscribers(LoadConfig{
			Addr:        addr,
			Subscribers: 8,
			Algos:       algos,
			Stop:        stop,
			WarmTimeout: 5 * time.Second,
			Backoff:     backoff.Policy{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
		})
	}()
	for v := 2; v <= 5; v++ {
		hub.Publish(versionPublished(v))
		time.Sleep(10 * time.Millisecond)
	}
	// Give the fan-out a moment to drain before stopping the run.
	deadline := time.Now().Add(5 * time.Second)
	for hub.Stats().DeltasSent < 8*4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	if res.Subscribers != 8 || res.Snapshots != 8 {
		t.Errorf("load result %+v: want 8 subscribers, 8 warm-up snapshots", res)
	}
	if res.MaxVersion != 5 || res.MinVersion != 5 {
		t.Errorf("load result %+v: want every replica at version 5", res)
	}
	if res.ApplyErrors != 0 {
		t.Errorf("load result %+v: want zero apply errors", res)
	}
	if res.VersionsSpanned == 0 || res.BytesPerSubPerBatch <= 0 {
		t.Errorf("load result %+v: want measured per-batch bytes", res)
	}
}

// --- egress budget and drain mode ---------------------------------------

func TestEgressLimiterConvergesToBudget(t *testing.T) {
	// 1 MB/s budget, initial burst of 1 MB: draining the burst is free,
	// after which 1 MB more of demand must take roughly a second.
	l := newEgressLimiter(1 << 20)
	done := make(chan struct{})
	if ok, waited := l.acquire(1<<20, done); !ok || waited {
		t.Fatalf("burst acquire = (%v, %v), want granted without waiting", ok, waited)
	}
	start := time.Now()
	for i := 0; i < 16; i++ {
		if ok, _ := l.acquire(64<<10, done); !ok {
			t.Fatal("acquire refused with done open")
		}
	}
	if elapsed := time.Since(start); elapsed < 500*time.Millisecond {
		t.Errorf("1 MB over a 1 MB/s budget took %v, want ~1s (throttle not engaging)", elapsed)
	}
	// A parked acquirer must give up when done closes.
	close(done)
	if ok, _ := l.acquire(64<<10, done); ok {
		t.Error("acquire granted after done closed while over budget")
	}
}

// TestDrainClientTracksCursor pins drain mode's contract: full protocol
// (hello, resume, counters) with no local model — the header alone
// advances the cursor, reconnects resume via deltas, and local queries
// report the mode honestly.
func TestDrainClientTracksCursor(t *testing.T) {
	hub, _, addr := newTestHub(t, 5, 0)
	for v := 1; v <= 3; v++ {
		hub.Publish(versionPublished(v))
	}
	cfg := testClientConfig(addr, testAlgos(t))
	cfg.Drain = true
	client, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := client.WaitVersion(ctx, 3); err != nil {
		t.Fatal(err)
	}
	r := client.Replica()
	if r.Version != 3 || r.Checksum == 0 {
		t.Errorf("drain replica = %+v, want version 3 with its checksum", r)
	}
	if r.MCs != nil || r.Search != nil {
		t.Error("drain replica materialized a model")
	}
	if _, err := client.Assign(vector.Vector{0, 0}); err == nil {
		t.Error("Assign on a drain client should fail")
	}
	if _, _, err := client.Clusters(); err == nil {
		t.Error("Clusters on a drain client should fail")
	}

	// Kill and publish more: the cursor from the header must resume via
	// deltas, not snapshot fallback.
	hub.DisconnectAll()
	for v := 4; v <= 5; v++ {
		hub.Publish(versionPublished(v))
	}
	if err := client.WaitVersion(ctx, 5); err != nil {
		t.Fatal(err)
	}
	st := client.Stats()
	if st.Snapshots != 1 {
		t.Errorf("Snapshots = %d, want exactly the initial one (resume used deltas)", st.Snapshots)
	}
	if st.Deltas < 2 {
		t.Errorf("Deltas = %d, want >= 2 (versions 4 and 5 replayed)", st.Deltas)
	}
	if st.ApplyErrors != 0 {
		t.Errorf("ApplyErrors = %d", st.ApplyErrors)
	}
	if hs := hub.Stats(); hs.ResumeCursor != 1 {
		t.Errorf("hub ResumeCursor = %d, want 1", hs.ResumeCursor)
	}
}

// TestEgressBudgetShedsInsteadOfStalling: under a starved budget a
// lagging subscriber is shed to a single snapshot rather than being fed
// the whole backlog, so bounded egress buys bounded staleness.
func TestEgressBudgetShedsInsteadOfStalling(t *testing.T) {
	registry := serve.NewRegistry(8)
	hub, err := NewHub(HubConfig{
		Registry: registry,
		Algos:    testAlgos(t),
		MaxLag:   2,
		// Less than one model frame per second of budget: the second
		// frame must wait for refill.
		EgressBytesPerSec: 64,
		WriteTimeout:      30 * time.Second,
		HeartbeatEvery:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hub.Serve(ln)
	defer hub.Close()

	client, err := Dial(testClientConfig(ln.Addr().String(), testAlgos(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const final = 12
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// First the subscriber is brought current (one snapshot, inside the
	// initial burst credit), then a publish burst outruns the budget: the
	// resync snapshot must wait for refill, and the backlog of versions
	// in between is never transmitted.
	hub.Publish(versionPublished(1))
	if err := client.WaitVersion(ctx, 1); err != nil {
		t.Fatal(err)
	}
	for v := 2; v <= final; v++ {
		hub.Publish(versionPublished(v))
	}
	if err := client.WaitVersion(ctx, final); err != nil {
		t.Fatal(err)
	}
	st := client.Stats()
	hs := hub.Stats()
	if hs.ThrottleWaits == 0 {
		t.Error("budget was never hit; the test exercised nothing")
	}
	if st.Deltas+st.Snapshots >= final {
		t.Errorf("client applied %d+%d frames for %d versions; shedding should have skipped some",
			st.Deltas, st.Snapshots, final)
	}
	if r := client.Replica(); r.Version != final {
		t.Errorf("final replica at version %d, want %d", r.Version, final)
	}
}

// TestPublishCoalescingAndGapDeltas pins the coalescing contract: under
// MinPublishInterval the hub retains a sparse subset of the published
// versions, each retained entry's delta spans the gap back to the
// previously retained version, a live replica follows via those gap
// deltas, and cursors naming coalesced-away versions fall back to a
// full snapshot.
func TestPublishCoalescingAndGapDeltas(t *testing.T) {
	registry := serve.NewRegistry(8)
	algos := testAlgos(t)
	hub, err := NewHub(HubConfig{
		Registry:           registry,
		Algos:              algos,
		MinPublishInterval: 40 * time.Millisecond,
		WriteTimeout:       2 * time.Second,
		HeartbeatEvery:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hub.Serve(ln)
	defer hub.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hub.Publish(versionPublished(1))
	client, err := Dial(testClientConfig(ln.Addr().String(), algos))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.WaitVersion(ctx, 1); err != nil {
		t.Fatal(err)
	}

	// A burst inside the interval is coalesced away entirely...
	hub.Publish(versionPublished(2))
	hub.Publish(versionPublished(3))
	if c := hub.Stats().Coalesced; c != 2 {
		t.Fatalf("Coalesced = %d, want 2", c)
	}
	// ...and the next publication past the interval is retained with its
	// delta based on the previously retained version, not on version 3.
	time.Sleep(50 * time.Millisecond)
	hub.Publish(versionPublished(4))
	hub.waitEncoded(t, 4)

	hub.mu.Lock()
	versions := make([]uint64, 0, len(hub.window))
	for _, e := range hub.window {
		versions = append(versions, e.version)
	}
	gapFrom := hub.window[len(hub.window)-1].fromVersion
	gapDelta := hub.window[len(hub.window)-1].deltaPayload
	hub.mu.Unlock()
	if len(versions) != 2 || versions[0] != 1 || versions[1] != 4 {
		t.Fatalf("retained versions = %v, want [1 4]", versions)
	}
	if gapFrom != 1 || gapDelta == nil {
		t.Fatalf("gap entry fromVersion = %d (payload nil=%v), want a delta from 1", gapFrom, gapDelta == nil)
	}

	// The replica crosses the gap via that delta and lands bit-identical
	// to the published version 4 model.
	if err := client.WaitVersion(ctx, 4); err != nil {
		t.Fatal(err)
	}
	r := client.Replica()
	if r.Version != 4 {
		t.Fatalf("replica at version %d, want 4", r.Version)
	}
	if !bytes.Equal(gobMCs(t, r.MCs), gobMCs(t, versionPublished(4).MCs)) {
		t.Error("replica diverged from the published model after a gap delta")
	}
	if s := client.Stats(); s.Deltas < 1 {
		t.Errorf("client stats %+v: the version 1->4 jump should have been a delta", s)
	}

	// Cursor semantics on a sparse window: a coalesced-away version is
	// never resumable; retained versions and the window root's delta base
	// are.
	if sent, ok := hub.resolveCursor(hello{hasCursor: true, version: 2, checksum: 7}); ok {
		t.Errorf("cursor at coalesced version 2 resumed at %d", sent)
	}
	if _, ok := hub.resolveCursor(hello{hasCursor: true, version: 4, checksum: core.ChecksumMCs(versionPublished(4).MCs)}); !ok {
		t.Error("cursor at retained version 4 did not resume")
	}
}
