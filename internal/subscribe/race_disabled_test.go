//go:build !race

package subscribe

const raceEnabled = false
