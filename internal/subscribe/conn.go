package subscribe

import (
	"net"
	"sync"
	"time"

	"diststream/internal/wire"
)

// subscriber is one connected downstream replica. It owns no queue: its
// position is the single version number sent, and every transmission is
// planned against the hub's shared retained window at write time — so a
// slow subscriber costs the hub one integer, not a backlog of frames.
type subscriber struct {
	h    *Hub
	conn net.Conn
	// sent is the last version this subscriber has been sent fully.
	// Owned by the handle goroutine.
	sent uint64
	// notify has capacity 1: a wake while one is already pending
	// coalesces, which is exactly right — the subscriber re-plans
	// against the newest state whenever it runs.
	notify chan struct{}
	// done closes when the hub wants this subscriber gone (drain).
	done     chan struct{}
	stopOnce sync.Once
}

// wake nudges the subscriber loop; non-blocking and coalescing.
func (s *subscriber) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// stop asks the subscriber loop to exit (goodbye + close).
func (s *subscriber) stop() { s.stopOnce.Do(func() { close(s.done) }) }

// kick forces the subscriber loop to notice a closed connection even if
// it is idle in its select: waking it makes the next planned write (or
// heartbeat) fail immediately.
func (s *subscriber) kick() { s.wake() }

// handle runs one subscriber connection to completion.
func (h *Hub) handle(conn net.Conn) {
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}

	// Hello: bounded read with the write timeout as a handshake budget.
	conn.SetReadDeadline(time.Now().Add(h.cfg.WriteTimeout))
	payload, err := wire.ReadFrame(conn, maxHelloSize)
	if err != nil {
		h.metrics.badHellos.Add(1)
		return
	}
	hi, err := decodeHello(payload)
	if err != nil {
		h.metrics.badHellos.Add(1)
		return
	}
	conn.SetReadDeadline(time.Time{})

	sent, resumed := h.resolveCursor(hi)
	h.metrics.connects.Add(1)
	if hi.hasCursor {
		if resumed {
			h.metrics.resumeCursor.Add(1)
		} else {
			h.metrics.resumeSnapshot.Add(1)
		}
	}

	s := &subscriber{
		h:      h,
		conn:   conn,
		sent:   sent,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		h.writeFrame(conn, encodeGoodbye())
		return
	}
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	h.metrics.active.Add(1)
	defer func() {
		h.mu.Lock()
		delete(h.subs, s)
		h.mu.Unlock()
		h.metrics.active.Add(-1)
	}()

	var heartbeats <-chan time.Time
	if h.cfg.HeartbeatEvery > 0 {
		t := time.NewTicker(h.cfg.HeartbeatEvery)
		defer t.Stop()
		heartbeats = t.C
	}

	for {
		if !h.pump(s) {
			h.metrics.disconnects.Add(1)
			return
		}
		select {
		case <-s.notify:
		case <-s.done:
			h.writeFrame(conn, encodeGoodbye())
			return
		case <-heartbeats:
			h.mu.Lock()
			latest := uint64(0)
			if ready := h.readyLocked(); len(ready) > 0 {
				latest = ready[len(ready)-1].version
			}
			h.mu.Unlock()
			if !h.writeFrame(conn, encodeHeartbeat(latest)) {
				h.metrics.disconnects.Add(1)
				return
			}
			h.metrics.heartbeats.Add(1)
		}
	}
}

// pump sends everything the subscriber is owed, re-planning after each
// round until it is current. Returns false when the connection failed
// (write error or timeout) and the subscriber should be dropped.
func (h *Hub) pump(s *subscriber) bool {
	for {
		h.mu.Lock()
		plan, ok := h.planLocked(s.sent)
		h.mu.Unlock()
		if !ok {
			return true
		}
		h.metrics.lag.observe(plan.lag)
		if plan.shed {
			h.metrics.sheds.Add(1)
		}
		payloads := plan.payloads
		if plan.full {
			// The snapshot frame is built lazily, outside every hub lock,
			// and shared by all subscribers shed to this version.
			payload, err := plan.fullOf.fullSnapshotPayload(h)
			if err != nil {
				// Encoding failed (no codec registered); the subscriber
				// can never be served. Drop it.
				return false
			}
			payloads = [][]byte{payload}
		}
		for _, payload := range payloads {
			// The egress budget is charged before the write, outside every
			// lock; a subscriber parked here is woken only by refill or by
			// the hub asking it to leave.
			if h.egress != nil {
				ok, waited := h.egress.acquire(4+len(payload), s.done)
				if waited {
					h.metrics.throttleWaits.Add(1)
				}
				if !ok {
					return false
				}
			}
			if !h.writeFrame(s.conn, payload) {
				return false
			}
			if plan.full {
				h.metrics.snapshotsSent.Add(1)
			} else {
				h.metrics.deltasSent.Add(1)
			}
		}
		s.sent = plan.sent
	}
}

// writeFrame writes one deadline-bounded frame; false on any failure.
func (h *Hub) writeFrame(conn net.Conn, payload []byte) bool {
	conn.SetWriteDeadline(time.Now().Add(h.cfg.WriteTimeout))
	if err := wire.WriteFrame(conn, payload); err != nil {
		return false
	}
	h.metrics.bytesSent.Add(uint64(4 + len(payload)))
	return true
}
