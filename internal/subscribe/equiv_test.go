package subscribe

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"diststream/internal/backoff"
	"diststream/internal/core"
	"diststream/internal/datagen"
	"diststream/internal/harness"
	"diststream/internal/serve"
	"diststream/internal/stream"
)

// TestLocalReplicaEquivalence is satellite acceptance for the
// replication path: for clustream (whose global updates produce real
// deltas) and denstream (whose decay makes every diff decline, so the
// stream degrades to full snapshots — the fallback rule exercised for
// every version), a subscriber following a live pipeline through
// connect → mid-stream kills → cursor resume must hold a replica that
// is byte-identical (canonical gob over the micro-cluster list, the
// same envelope EncodeState uses) to the driver's published snapshot at
// every version it applies. Run under -race in CI (make subscribe-smoke).
func TestLocalReplicaEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real pipeline")
	}
	for _, name := range []string{"clustream", "denstream"} {
		t.Run(name, func(t *testing.T) { runEquivalence(t, name) })
	}
}

func runEquivalence(t *testing.T, algoName string) {
	harness.RegisterAllWireTypes()
	algos, err := harness.NewAlgorithmRegistry()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := harness.LoadDataset(datagen.KDD99Sim, 8000, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	algo, err := harness.NewAlgorithm(algoName, ds, 7)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := harness.NewEngine(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	registry := serve.NewRegistry(6)
	hub, err := NewHub(HubConfig{
		Registry:       registry,
		Algos:          algos,
		MaxLag:         2,
		WriteTimeout:   2 * time.Second,
		HeartbeatEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hub.Serve(ln)
	defer hub.Close()

	// driverBytes records the canonical encoding of every published
	// version on the driver side, before fan-out.
	var (
		mu          sync.Mutex
		driverBytes = map[uint64][]byte{}
		lastVersion uint64
	)
	cfg := core.Config{
		Algorithm:     algo,
		Engine:        engine,
		BatchInterval: 0.5,
		OnPublish: func(pub core.Published) {
			v := hub.Publish(pub)
			mu.Lock()
			driverBytes[v] = gobMCs(t, pub.MCs)
			lastVersion = v
			mu.Unlock()
			// The replayed stream has no wall-clock pacing, so a short
			// sleep keeps the publication stream slow enough for the
			// subscriber to live through it (instead of connecting
			// after the run is over and seeing one final snapshot).
			time.Sleep(25 * time.Millisecond)
		},
	}
	pipeline, err := core.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The subscriber follows the live stream; two mid-stream kills force
	// a reconnect + cursor resume while the pipeline keeps publishing
	// (the second typically lands after enough publishes that the
	// subscriber is behind — the lag path).
	var (
		replicaMu    sync.Mutex
		replicaBytes = map[uint64][]byte{}
		kills        sync.Once
		kills2       sync.Once
	)
	client, err := Dial(ClientConfig{
		Addr:    ln.Addr().String(),
		Algos:   algos,
		Backoff: backoff.Policy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		OnUpdate: func(r *Replica) {
			enc := gobMCs(t, r.MCs)
			replicaMu.Lock()
			if prev, ok := replicaBytes[r.Version]; ok && !bytes.Equal(prev, enc) {
				t.Errorf("replica version %d re-applied with different bytes", r.Version)
			}
			replicaBytes[r.Version] = enc
			replicaMu.Unlock()
			if r.Version >= 3 {
				kills.Do(func() { go hub.DisconnectAll() })
			}
			if r.Version >= 8 {
				kills2.Do(func() { go hub.DisconnectAll() })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	src, err := stream.NewRepeatSource(ds.Records, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.Run(src); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	final := lastVersion
	mu.Unlock()
	if final < 10 {
		t.Fatalf("pipeline published only %d versions; the test needs a longer stream", final)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := client.WaitVersion(ctx, final); err != nil {
		t.Fatalf("replica never caught up to final version %d: %v", final, err)
	}

	// Every version the replica materialized must match the driver's
	// bytes for that same version — across the initial snapshot, delta
	// chains, kills, resumes and any shed-forced snapshot resyncs.
	replicaMu.Lock()
	defer replicaMu.Unlock()
	mu.Lock()
	defer mu.Unlock()
	if len(replicaBytes) < 3 {
		t.Fatalf("replica applied only %d versions", len(replicaBytes))
	}
	for v, enc := range replicaBytes {
		want, ok := driverBytes[v]
		if !ok {
			t.Errorf("replica holds version %d the driver never published", v)
			continue
		}
		if !bytes.Equal(enc, want) {
			t.Errorf("replica version %d diverged from the driver's published snapshot", v)
		}
	}
	if _, ok := replicaBytes[final]; !ok {
		t.Errorf("replica never applied the final version %d", final)
	}

	st := client.Stats()
	hs := hub.Stats()
	t.Logf("%s: %d versions, client %+v, hub %+v", algoName, final, st, hs)
	if st.Connects < 3 {
		t.Errorf("client reconnected %d times, want >= 3 (two kills)", st.Connects)
	}
	if st.ApplyErrors != 0 {
		t.Errorf("client recorded %d apply errors", st.ApplyErrors)
	}
	if algoName == "clustream" && st.Deltas == 0 {
		t.Error("clustream stream carried no deltas; the delta path was not exercised")
	}
	if algoName == "denstream" && st.Snapshots < 2 {
		t.Error("denstream decay should force repeated full snapshots")
	}
}
