package subscribe

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"diststream/internal/backoff"
	"diststream/internal/core"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
	"diststream/internal/wire"
)

// Replica is one locally materialized model version: the subscriber-side
// equivalent of a serve.ModelVersion. It is immutable once installed;
// readers may retain it across updates.
type Replica struct {
	// Version and Checksum are the replica's cursor — presented to the
	// hub on reconnect to resume via deltas.
	Version  uint64
	Checksum uint64
	// Batch and Time mirror the publication header.
	Batch int
	Time  vclock.Time
	// Params is the algorithm configuration the model was built under.
	Params core.Params
	// MCs is the micro-cluster list in admission order, byte-identical
	// to the driver's published clones (checksum-enforced).
	MCs []core.MicroCluster
	// Search is the algorithm's own search snapshot over MCs — the
	// same structure the driver publishes, so local assigns answer
	// exactly what the server would.
	Search core.Snapshot
}

// ClientConfig configures a Client.
type ClientConfig struct {
	// Addr is the hub's TCP address. Required.
	Addr string
	// Algos resolves algorithm factories for delta application and
	// local search snapshots. Required.
	Algos *core.AlgorithmRegistry
	// DialTimeout bounds each connection attempt. 0 means 5s.
	DialTimeout time.Duration
	// Backoff paces reconnect attempts. Zero value = package defaults.
	Backoff backoff.Policy
	// OnUpdate, when set, runs after each replica installation (on the
	// client's receive goroutine — keep it fast).
	OnUpdate func(*Replica)
	// Drain makes the client protocol-complete but model-free: it reads
	// every frame, tracks its cursor from the model header (so reconnect
	// resume still works and the hub sees a real subscriber) but never
	// decodes or applies the delta body. Replicas then carry only the
	// header fields — MCs and Search stay nil and Assign/Clusters return
	// errors. Use it in load harnesses colocated with the driver, where a
	// full fleet's apply CPU would be charged to the machine under
	// measurement even though deployed subscribers run elsewhere.
	Drain bool
}

// ClientStats counts the client's protocol activity.
type ClientStats struct {
	// Connects is successful hellos (1 on a healthy client; more after
	// reconnects).
	Connects uint64
	// Deltas and Snapshots count applied model frames by kind.
	Deltas    uint64
	Snapshots uint64
	// Heartbeats counts heartbeat frames received.
	Heartbeats uint64
	// BytesRead is total frame bytes received, including framing.
	BytesRead uint64
	// Stale counts model frames skipped because they predate the
	// replica (overlap after a resume).
	Stale uint64
	// ApplyErrors counts model frames that failed to apply; each forces
	// a reconnect (and the hub then falls back to a full snapshot if
	// the cursor is suspect).
	ApplyErrors uint64
}

// Client subscribes to a hub and maintains a local replica. It owns one
// background goroutine that connects, applies frames and reconnects
// with backoff until Close.
type Client struct {
	cfg     ClientConfig
	replica atomic.Pointer[Replica]

	mu      sync.Mutex
	conn    net.Conn      // current connection, for Close to unblock reads
	updated chan struct{} // closed and replaced on each replica install
	algo    core.Algorithm
	algoKey string

	closed atomic.Bool
	quit   chan struct{} // closed by Close; unblocks backoff sleeps
	done   chan struct{} // closed when run exits

	connects    atomic.Uint64
	deltas      atomic.Uint64
	snapshots   atomic.Uint64
	heartbeats  atomic.Uint64
	bytesRead   atomic.Uint64
	stale       atomic.Uint64
	applyErrors atomic.Uint64
}

// ErrNoReplica is returned by local queries before the first model
// frame arrives.
var ErrNoReplica = errors.New("subscribe: no replica yet")

// Dial starts a client subscribed to cfg.Addr. It returns immediately;
// the connection is established (and re-established) in the background.
// Use WaitVersion to block until a replica is available.
func Dial(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("subscribe: config needs an Addr")
	}
	if cfg.Algos == nil {
		return nil, errors.New("subscribe: config needs an algorithm registry")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	c := &Client{
		cfg:     cfg,
		updated: make(chan struct{}),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go c.run()
	return c, nil
}

// Close stops the client and waits for its goroutine to exit. The last
// installed replica stays readable.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		<-c.done
		return nil
	}
	close(c.quit)
	c.mu.Lock()
	if c.conn != nil {
		c.conn.Close()
	}
	c.mu.Unlock()
	<-c.done
	return nil
}

// Replica returns the current local model, or nil before the first
// model frame.
func (c *Client) Replica() *Replica { return c.replica.Load() }

// Stats returns the client's activity counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Connects:    c.connects.Load(),
		Deltas:      c.deltas.Load(),
		Snapshots:   c.snapshots.Load(),
		Heartbeats:  c.heartbeats.Load(),
		BytesRead:   c.bytesRead.Load(),
		Stale:       c.stale.Load(),
		ApplyErrors: c.applyErrors.Load(),
	}
}

// AssignResult is a local nearest-micro-cluster answer, mirroring the
// HTTP tier's AssignResponse.
type AssignResult struct {
	Version    uint64
	ID         uint64
	Distance   float64
	Absorbable bool
	Weight     float64
}

// Assign answers a nearest-micro-cluster query from the local replica —
// the same search structure and boundary rule the server uses, at zero
// server cost.
func (c *Client) Assign(point vector.Vector) (AssignResult, error) {
	r := c.replica.Load()
	if r == nil {
		return AssignResult{}, ErrNoReplica
	}
	if r.Search == nil {
		return AssignResult{}, errors.New("subscribe: drain-mode client holds no local model")
	}
	id, absorbable, ok := r.Search.Nearest(stream.Record{Values: point, Timestamp: r.Time})
	if !ok {
		return AssignResult{}, fmt.Errorf("subscribe: replica version %d is empty", r.Version)
	}
	res := AssignResult{Version: r.Version, ID: id, Absorbable: absorbable}
	if mc := r.Search.Get(id); mc != nil {
		res.Distance = vector.Distance(point, mc.Center())
		res.Weight = mc.Weight()
	}
	return res, nil
}

// Clusters returns the replica's micro-cluster list and its version.
// The list is immutable shared state — callers must not mutate the
// micro-clusters.
func (c *Client) Clusters() ([]core.MicroCluster, uint64, error) {
	r := c.replica.Load()
	if r == nil {
		return nil, 0, ErrNoReplica
	}
	if c.cfg.Drain {
		return nil, 0, errors.New("subscribe: drain-mode client holds no local model")
	}
	return r.MCs, r.Version, nil
}

// WaitVersion blocks until the replica reaches at least version v (or
// ctx is done, or the client is closed).
func (c *Client) WaitVersion(ctx context.Context, v uint64) error {
	for {
		c.mu.Lock()
		ch := c.updated
		c.mu.Unlock()
		if r := c.replica.Load(); r != nil && r.Version >= v {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		case <-c.done:
			return errors.New("subscribe: client closed")
		}
	}
}

// run is the client's connection loop: dial, hello, read frames, apply;
// on any failure back off and reconnect with the current cursor.
func (c *Client) run() {
	defer close(c.done)
	attempt := 0
	for !c.closed.Load() {
		conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
		if err != nil {
			attempt++
			if !c.sleep(c.cfg.Backoff.Delay(attempt)) {
				return
			}
			continue
		}
		c.mu.Lock()
		c.conn = conn
		c.mu.Unlock()
		if c.closed.Load() {
			conn.Close()
			return
		}
		err = c.session(conn)
		conn.Close()
		c.mu.Lock()
		c.conn = nil
		c.mu.Unlock()
		if c.closed.Load() {
			return
		}
		// A session that made progress resets the backoff schedule; a
		// failed hello keeps escalating.
		if err == nil || c.replica.Load() != nil {
			attempt = 1
		} else {
			attempt++
		}
		if !c.sleep(c.cfg.Backoff.Delay(attempt)) {
			return
		}
	}
}

// sleep waits d unless the client closes first.
func (c *Client) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.quit:
		return false
	}
}

// session runs one connection: send hello with the current cursor, then
// apply frames until the stream ends.
func (c *Client) session(conn net.Conn) error {
	var hi hello
	if r := c.replica.Load(); r != nil {
		hi = hello{hasCursor: true, version: r.Version, checksum: r.Checksum}
	}
	conn.SetWriteDeadline(time.Now().Add(c.cfg.DialTimeout))
	if err := wire.WriteFrame(conn, encodeHello(hi)); err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Time{})
	c.connects.Add(1)
	for {
		payload, err := wire.ReadFrame(conn, 0)
		if err != nil {
			return err
		}
		c.bytesRead.Add(uint64(4 + len(payload)))
		d := wire.NewDec(payload)
		switch kind := d.Byte(); kind {
		case kindModel:
			if c.cfg.Drain {
				hdr, err := decodeModelHeader(d)
				if err != nil {
					c.applyErrors.Add(1)
					return err
				}
				c.applyDrain(hdr)
				continue
			}
			f, err := decodeModelPayload(d)
			if err != nil {
				c.applyErrors.Add(1)
				return err
			}
			if err := c.apply(f); err != nil {
				c.applyErrors.Add(1)
				return err
			}
		case kindHeartbeat:
			c.heartbeats.Add(1)
		case kindGoodbye:
			return nil
		default:
			return fmt.Errorf("subscribe: unknown frame kind %d", kind)
		}
	}
}

// apply folds one model frame into the replica. Full snapshots
// (FromVersion == 0) apply against the empty model; deltas apply
// against the replica at exactly FromVersion. Both paths checksum the
// result, so a diverged replica can never be silently extended.
func (c *Client) apply(f modelFrame) error {
	cur := c.replica.Load()
	var base []core.MicroCluster
	if f.delta.FromVersion != 0 {
		if cur == nil || cur.Version != f.delta.FromVersion {
			have := uint64(0)
			if cur != nil {
				have = cur.Version
			}
			if f.version <= have {
				// Benign overlap: a resume replayed a version the
				// replica already holds.
				c.stale.Add(1)
				return nil
			}
			return fmt.Errorf("subscribe: delta %d→%d does not chain from replica %d",
				f.delta.FromVersion, f.version, have)
		}
		base = cur.MCs
	}
	algo, err := c.algoFor(f.delta.Params)
	if err != nil {
		return err
	}
	var mcs []core.MicroCluster
	if differ, ok := algo.(core.SnapshotDiffer); ok {
		mcs, err = differ.ApplyDelta(base, f.delta)
	} else {
		mcs, err = core.ApplyMCDelta(base, f.delta)
	}
	if err != nil {
		return err
	}
	r := &Replica{
		Version:  f.version,
		Checksum: f.checksum,
		Batch:    f.batch,
		Time:     f.time,
		Params:   f.delta.Params,
		MCs:      mcs,
		Search:   algo.NewSnapshot(mcs),
	}
	// OnUpdate runs before the new replica becomes visible, so once
	// WaitVersion (or Replica) observes a version, the callback for it
	// has already completed.
	if c.cfg.OnUpdate != nil {
		c.cfg.OnUpdate(r)
	}
	c.replica.Store(r)
	if f.delta.FromVersion == 0 {
		c.snapshots.Add(1)
	} else {
		c.deltas.Add(1)
	}
	c.signalUpdated()
	return nil
}

// applyDrain advances the cursor from a model header without touching
// the delta body: the drain-mode subset of apply.
func (c *Client) applyDrain(h modelHeader) {
	if cur := c.replica.Load(); cur != nil && h.version <= cur.Version {
		c.stale.Add(1)
		return
	}
	r := &Replica{Version: h.version, Checksum: h.checksum, Batch: h.batch, Time: h.time}
	if c.cfg.OnUpdate != nil {
		c.cfg.OnUpdate(r)
	}
	c.replica.Store(r)
	if h.fromVersion == 0 {
		c.snapshots.Add(1)
	} else {
		c.deltas.Add(1)
	}
	c.signalUpdated()
}

// signalUpdated wakes every WaitVersion waiter.
func (c *Client) signalUpdated() {
	c.mu.Lock()
	close(c.updated)
	c.updated = make(chan struct{})
	c.mu.Unlock()
}

// algoFor caches the algorithm instance used for delta application and
// snapshot construction, rebuilt if the stream's params name changes.
func (c *Client) algoFor(p core.Params) (core.Algorithm, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.algo != nil && c.algoKey == p.Name {
		return c.algo, nil
	}
	algo, err := c.cfg.Algos.New(p)
	if err != nil {
		return nil, err
	}
	c.algo, c.algoKey = algo, p.Name
	return algo, nil
}
