// Package nncache maintains nearest-neighbor state over a mutating set of
// points, serving the repeated closest-pair queries that budgeted global
// updates issue (CluStream's and ClusTree's merge-two-closest rule).
// Each entry caches its nearest neighbor; mutations mark affected entries
// dirty and queries recompute lazily, so a merge costs O(k·n·d) for the k
// entries that referenced the changed points instead of a fresh O(n²·d)
// scan.
package nncache

import (
	"math"

	"diststream/internal/vector"
)

// Cache holds the point set and per-entry nearest-neighbor state.
type Cache struct {
	ids     []uint64
	index   map[uint64]int
	centers []vector.Vector
	nnDist  []float64 // squared distance to the nearest other entry
	nnID    []uint64
	dirty   []bool
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{index: make(map[uint64]int)}
}

// Len returns the number of entries.
func (c *Cache) Len() int { return len(c.ids) }

// Put inserts or replaces the point for id and invalidates entries whose
// cached neighbor was id.
func (c *Cache) Put(id uint64, center vector.Vector) {
	if i, ok := c.index[id]; ok {
		c.centers[i] = center
		c.dirty[i] = true
		c.invalidateReferencesTo(id)
		return
	}
	c.index[id] = len(c.ids)
	c.ids = append(c.ids, id)
	c.centers = append(c.centers, center)
	c.nnDist = append(c.nnDist, math.Inf(1))
	c.nnID = append(c.nnID, 0)
	c.dirty = append(c.dirty, true)
}

// Remove deletes the entry for id (no-op when absent).
func (c *Cache) Remove(id uint64) {
	i, ok := c.index[id]
	if !ok {
		return
	}
	last := len(c.ids) - 1
	c.ids[i] = c.ids[last]
	c.centers[i] = c.centers[last]
	c.nnDist[i] = c.nnDist[last]
	c.nnID[i] = c.nnID[last]
	c.dirty[i] = c.dirty[last]
	c.index[c.ids[i]] = i
	c.ids = c.ids[:last]
	c.centers = c.centers[:last]
	c.nnDist = c.nnDist[:last]
	c.nnID = c.nnID[:last]
	c.dirty = c.dirty[:last]
	delete(c.index, id)
	c.invalidateReferencesTo(id)
}

// Has reports whether id is present.
func (c *Cache) Has(id uint64) bool {
	_, ok := c.index[id]
	return ok
}

func (c *Cache) invalidateReferencesTo(id uint64) {
	for i := range c.ids {
		if c.nnID[i] == id {
			c.dirty[i] = true
		}
	}
}

func (c *Cache) recompute(i int) {
	best := math.Inf(1)
	var bestID uint64
	for j := range c.ids {
		if j == i {
			continue
		}
		if d := vector.SquaredDistance(c.centers[i], c.centers[j]); d < best {
			best, bestID = d, c.ids[j]
		}
	}
	c.nnDist[i] = best
	c.nnID[i] = bestID
	c.dirty[i] = false
}

// nearestAllowed scans entry i's nearest neighbor among allowed entries
// without touching the unrestricted cache.
func (c *Cache) nearestAllowed(i int, allowed func(uint64) bool) (float64, uint64) {
	best := math.Inf(1)
	var bestID uint64
	for j := range c.ids {
		if j == i || !allowed(c.ids[j]) {
			continue
		}
		if d := vector.SquaredDistance(c.centers[i], c.centers[j]); d < best {
			best, bestID = d, c.ids[j]
		}
	}
	return best, bestID
}

// ClosestPair returns the two closest entries among those not excluded.
// excluded may be nil (no restriction). ok is false with fewer than two
// allowed entries.
func (c *Cache) ClosestPair(excluded func(uint64) bool) (a, b uint64, ok bool) {
	allowed := func(id uint64) bool { return excluded == nil || !excluded(id) }
	best := math.Inf(1)
	bi := -1
	var bj uint64
	for i := range c.ids {
		if !allowed(c.ids[i]) {
			continue
		}
		if c.dirty[i] {
			c.recompute(i)
		}
		d, nn := c.nnDist[i], c.nnID[i]
		if nn == 0 && math.IsInf(d, 1) {
			continue // singleton set
		}
		if !allowed(nn) {
			d, nn = c.nearestAllowed(i, allowed)
			if math.IsInf(d, 1) {
				continue
			}
		}
		if d < best {
			best, bi, bj = d, i, nn
		}
	}
	if bi < 0 {
		return 0, 0, false
	}
	return c.ids[bi], bj, true
}
