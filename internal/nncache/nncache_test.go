package nncache

import (
	"math"
	"math/rand"
	"testing"

	"diststream/internal/vector"
)

func TestEmptyAndSingleton(t *testing.T) {
	c := New()
	if _, _, ok := c.ClosestPair(nil); ok {
		t.Error("empty cache returned a pair")
	}
	c.Put(1, vector.Vector{0, 0})
	if _, _, ok := c.ClosestPair(nil); ok {
		t.Error("singleton cache returned a pair")
	}
	if c.Len() != 1 || !c.Has(1) || c.Has(2) {
		t.Error("membership broken")
	}
}

func TestClosestPairBasic(t *testing.T) {
	c := New()
	c.Put(1, vector.Vector{0, 0})
	c.Put(2, vector.Vector{10, 0})
	c.Put(3, vector.Vector{10.5, 0})
	a, b, ok := c.ClosestPair(nil)
	if !ok {
		t.Fatal("no pair")
	}
	if !(a == 2 && b == 3 || a == 3 && b == 2) {
		t.Errorf("pair = (%d,%d), want {2,3}", a, b)
	}
}

func TestClosestPairAfterMutations(t *testing.T) {
	c := New()
	c.Put(1, vector.Vector{0})
	c.Put(2, vector.Vector{1})
	c.Put(3, vector.Vector{100})
	c.Remove(2)
	a, b, ok := c.ClosestPair(nil)
	if !ok || !(a == 1 && b == 3 || a == 3 && b == 1) {
		t.Errorf("after remove: (%d,%d,%v)", a, b, ok)
	}
	// Move 3 next to 1 via Put-replace.
	c.Put(3, vector.Vector{0.5})
	c.Put(4, vector.Vector{50})
	a, b, ok = c.ClosestPair(nil)
	if !ok || !(a == 1 && b == 3 || a == 3 && b == 1) {
		t.Errorf("after move: (%d,%d,%v)", a, b, ok)
	}
	// Removing an absent id is a no-op.
	c.Remove(99)
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestClosestPairWithExclusion(t *testing.T) {
	c := New()
	c.Put(1, vector.Vector{0})
	c.Put(2, vector.Vector{0.1}) // closest overall, but excluded
	c.Put(3, vector.Vector{5})
	c.Put(4, vector.Vector{5.2})
	excluded := func(id uint64) bool { return id == 2 }
	a, b, ok := c.ClosestPair(excluded)
	if !ok || !(a == 3 && b == 4 || a == 4 && b == 3) {
		t.Errorf("excluded pair = (%d,%d,%v), want {3,4}", a, b, ok)
	}
	// Everything excluded: no pair.
	if _, _, ok := c.ClosestPair(func(uint64) bool { return true }); ok {
		t.Error("fully excluded set returned a pair")
	}
}

// Property: incremental maintenance matches a brute-force scan across a
// random mutation sequence.
func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := New()
	points := map[uint64]vector.Vector{}
	nextID := uint64(1)
	brute := func() (uint64, uint64, float64) {
		bi, bj, best := uint64(0), uint64(0), math.Inf(1)
		for i, pi := range points {
			for j, pj := range points {
				if i >= j {
					continue
				}
				if d := vector.SquaredDistance(pi, pj); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		return bi, bj, best
	}
	for step := 0; step < 300; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(points) < 3:
			v := vector.Vector{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
			points[nextID] = v
			c.Put(nextID, v)
			nextID++
		case op == 1:
			for id := range points {
				delete(points, id)
				c.Remove(id)
				break
			}
		default:
			for id := range points {
				v := vector.Vector{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
				points[id] = v
				c.Put(id, v)
				break
			}
		}
		if len(points) < 2 {
			continue
		}
		_, _, wantD := brute()
		a, b, ok := c.ClosestPair(nil)
		if !ok {
			t.Fatalf("step %d: no pair with %d points", step, len(points))
		}
		gotD := vector.SquaredDistance(points[a], points[b])
		if math.Abs(gotD-wantD) > 1e-9 {
			t.Fatalf("step %d: pair dist %v, brute force %v", step, gotD, wantD)
		}
	}
}
