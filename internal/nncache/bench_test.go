package nncache

import (
	"math/rand"
	"testing"

	"diststream/internal/vector"
)

// BenchmarkMergeLoop models a CluStream budget-restoration burst: insert
// 50 points over budget, then repeatedly merge the closest pair.
func BenchmarkMergeLoop(b *testing.B) {
	const n, dim, over = 230, 54, 50
	rng := rand.New(rand.NewSource(1))
	mk := func() vector.Vector {
		v := vector.New(dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		return v
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := New()
		for id := uint64(1); id <= n+over; id++ {
			c.Put(id, mk())
		}
		for m := 0; m < over; m++ {
			x, y, ok := c.ClosestPair(nil)
			if !ok {
				b.Fatal("no pair")
			}
			c.Remove(y)
			c.Put(x, mk())
		}
	}
}
