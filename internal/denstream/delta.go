package denstream

import (
	"fmt"

	"diststream/internal/core"
	"diststream/internal/vclock"
	"diststream/internal/vector"
	"diststream/internal/wire"
)

// Delta broadcast support. DenStream's global update decays every
// micro-cluster each batch, so DiffState's size guard usually reports
// ok=false and the executor ships the full snapshot — deltas only win in
// the idle corner where nothing decayed. The capability still matters:
// it keeps the delta-on configuration bit-identical to delta-off for
// every algorithm, not just the ones that profit.

// ListMCs implements core.MCLister for the worker-side delta apply.
func (s *Snapshot) ListMCs() []core.MicroCluster { return s.MCs }

// DiffState implements core.SnapshotDiffer.
func (a *Algorithm) DiffState(old, new []core.MicroCluster) (*core.SnapshotDelta, bool) {
	d, ok := core.DiffMCLists(old, new, mcEqual)
	if !ok {
		return nil, false
	}
	d.Params = a.Params()
	return d, true
}

// ApplyDelta implements core.SnapshotDiffer.
func (a *Algorithm) ApplyDelta(old []core.MicroCluster, d *core.SnapshotDelta) ([]core.MicroCluster, error) {
	for i, mc := range d.Upserts {
		if _, ok := mc.(*MC); !ok {
			return nil, fmt.Errorf("denstream: delta upsert %d is %T, want *MC", i, mc)
		}
	}
	return core.ApplyMCDelta(old, d)
}

// mcEqual is bit-exact equality over every MC field.
func mcEqual(a, b core.MicroCluster) bool {
	x, ok := a.(*MC)
	if !ok {
		return false
	}
	y, ok := b.(*MC)
	if !ok {
		return false
	}
	return x.Id == y.Id &&
		x.Potential == y.Potential &&
		core.BitsEqual(x.W, y.W) &&
		core.BitsEqual(float64(x.Born), float64(y.Born)) &&
		core.BitsEqual(float64(x.Last), float64(y.Last)) &&
		core.VecBitsEqual(x.CF1, y.CF1) &&
		core.VecBitsEqual(x.CF2, y.CF2)
}

// encMC / decMC are the columnar wire codec for *MC.
func encMC(e *wire.Enc, mc core.MicroCluster) bool {
	m, ok := mc.(*MC)
	if !ok {
		return false
	}
	e.Uint(m.Id)
	e.Bool(m.Potential)
	e.F64(m.W)
	e.F64(float64(m.Born))
	e.F64(float64(m.Last))
	e.F64s(m.CF1)
	e.F64s(m.CF2)
	return true
}

func decMC(d *wire.Dec) core.MicroCluster {
	m := &MC{}
	m.Id = d.Uint()
	m.Potential = d.Bool()
	m.W = d.F64()
	m.Born = vclock.Time(d.F64())
	m.Last = vclock.Time(d.F64())
	m.CF1 = vector.Vector(d.F64s())
	m.CF2 = vector.Vector(d.F64s())
	return m
}
