package denstream

import (
	"math"
	"testing"

	"diststream/internal/algotest"
	"diststream/internal/core"
	"diststream/internal/stream"
	"diststream/internal/vclock"
)

func testConfig() Config {
	return Config{
		Dim:     4,
		Epsilon: 2,
		Mu:      4,
		Beta:    0.5,
		Lambda:  0.1,
	}
}

func TestConformance(t *testing.T) {
	algotest.Run(t, algotest.Suite{
		New:            func() core.Algorithm { return New(testConfig()) },
		Register:       Register,
		RegisterWire:   RegisterWireTypes,
		Dim:            4,
		SeparatesBlobs: true,
	})
}

func rec(seq uint64, ts vclock.Time, vals ...float64) stream.Record {
	return stream.Record{Seq: seq, Timestamp: ts, Values: vals}
}

func TestFadingDecay(t *testing.T) {
	a := New(testConfig())
	mc := a.Create(rec(0, 0, 1, 1, 0, 0)).(*MC)
	if mc.W != 1 {
		t.Fatalf("W = %v", mc.W)
	}
	// After 10 seconds with lambda 0.1: weight = 2^-1 = 0.5.
	mc.Decay(10, 0.1)
	if math.Abs(mc.W-0.5) > 1e-12 {
		t.Errorf("decayed W = %v, want 0.5", mc.W)
	}
	if mc.Last != 10 {
		t.Errorf("Last = %v, want 10 (horizon advanced)", mc.Last)
	}
	// Decay is idempotent once the horizon advanced.
	mc.Decay(10, 0.1)
	if math.Abs(mc.W-0.5) > 1e-12 {
		t.Errorf("double decay: W = %v", mc.W)
	}
}

func TestAbsorbDecaysThenAdds(t *testing.T) {
	a := New(testConfig())
	mc := a.Create(rec(0, 0, 0, 0, 0, 0)).(*MC)
	a.Update(mc, rec(1, 10, 2, 0, 0, 0))
	// Old weight decayed to 0.5, new record adds 1 => 1.5.
	if math.Abs(mc.W-1.5) > 1e-12 {
		t.Errorf("W = %v, want 1.5", mc.W)
	}
	// Center pulled toward the new record: (0*0.5 + 2)/1.5 = 1.333.
	if c := mc.Center(); math.Abs(c[0]-2.0/1.5) > 1e-9 {
		t.Errorf("center = %v", c[0])
	}
}

func TestImpactInequalityUnderReversedOrder(t *testing.T) {
	// §IV-C1: for two records mapping to the same micro-cluster, the
	// newest record's impact is strictly larger when updating in arrival
	// order than in reverse order (where the stale record's update decays
	// the newer increment). lambda = 0.1: 2^(-0.1*10) = 0.5 per 10s gap.
	a := New(testConfig())
	ordered := a.Create(rec(0, 0, 0, 0, 0, 0)).(*MC)
	a.Update(ordered, rec(1, 10, 0, 0, 0, 0))
	a.Update(ordered, rec(2, 20, 0, 0, 0, 0))
	// W = (1*0.5+1)*0.5 + 1 = 1.75; newest increment coefficient 1.
	if math.Abs(ordered.W-1.75) > 1e-12 {
		t.Fatalf("ordered W = %v, want 1.75", ordered.W)
	}
	impactOrdered := 1 / ordered.W

	reversed := a.Create(rec(0, 0, 0, 0, 0, 0)).(*MC)
	a.Update(reversed, rec(2, 20, 0, 0, 0, 0)) // newest first
	a.Update(reversed, rec(1, 10, 0, 0, 0, 0)) // stale record decays it
	// W = (1*0.25+1)*0.5 + 1 = 1.625; newest increment coefficient 0.5.
	if math.Abs(reversed.W-1.625) > 1e-12 {
		t.Fatalf("reversed W = %v, want 1.625", reversed.W)
	}
	impactReversed := 0.5 / reversed.W

	if impactOrdered <= impactReversed {
		t.Errorf("impact inequality violated: ordered %v <= reversed %v",
			impactOrdered, impactReversed)
	}
}

func TestRadiusAndProspectiveRadius(t *testing.T) {
	a := New(testConfig())
	mc := a.Create(rec(0, 0, 0, 0, 0, 0)).(*MC)
	if mc.Radius() != 0 {
		t.Errorf("singleton radius = %v", mc.Radius())
	}
	probe := rec(1, 0, 4, 0, 0, 0)
	pr := mc.ProspectiveRadius(probe, 0.1)
	if pr <= 0 {
		t.Error("prospective radius not positive")
	}
	// Probing must not mutate.
	if mc.W != 1 || mc.Radius() != 0 {
		t.Error("ProspectiveRadius mutated the micro-cluster")
	}
	// Two records at distance 4 along one dim: variance 4 there, 0
	// elsewhere; full-norm radius = 2.
	a.Update(mc, probe)
	if math.Abs(mc.Radius()-2) > 1e-9 {
		t.Errorf("radius = %v, want 2", mc.Radius())
	}
}

func TestPromotionAndDemotion(t *testing.T) {
	a := New(testConfig()) // betaMu = 2
	model := core.NewModel()
	mc := a.Create(rec(0, 0, 0, 0, 0, 0)).(*MC)
	model.Add(mc)
	if mc.Potential {
		t.Fatal("new MC starts potential")
	}
	// Absorb enough to cross beta*mu = 2.
	clone := mc.Clone().(*MC)
	a.Update(clone, rec(1, 0.1, 0, 0, 0, 0))
	a.Update(clone, rec(2, 0.2, 0, 0, 0, 0))
	err := a.GlobalUpdate(model, []core.Update{
		{Kind: core.KindUpdated, MC: clone, OrderTime: 0.2, OrderSeq: 2},
	}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	live := model.Get(mc.Id).(*MC)
	if !live.Potential {
		t.Error("MC not promoted at weight >= beta*mu")
	}
	// Long decay demotes and eventually deletes.
	if err := a.GlobalUpdate(model, nil, 40); err != nil {
		t.Fatal(err)
	}
	if got := model.Get(mc.Id); got != nil {
		m := got.(*MC)
		if m.Potential {
			t.Error("faded MC still potential")
		}
	}
	if err := a.GlobalUpdate(model, nil, 500); err != nil {
		t.Fatal(err)
	}
	if model.Get(mc.Id) != nil {
		t.Error("fully faded MC not deleted")
	}
}

func TestOfflineDBSCANPotentialOnly(t *testing.T) {
	a := New(testConfig())
	model := core.NewModel()
	// Blob A: three potential MCs close together.
	for i := 0; i < 3; i++ {
		mc := a.Create(rec(uint64(i), 1, float64(i), 0, 0, 0)).(*MC)
		mc.W = 5
		mc.Potential = true
		model.Add(mc)
	}
	// Blob B: two potential MCs far away.
	for i := 0; i < 2; i++ {
		mc := a.Create(rec(uint64(10+i), 1, 100+float64(i), 0, 0, 0)).(*MC)
		mc.W = 5
		mc.Potential = true
		model.Add(mc)
	}
	// An outlier MC that must not participate.
	out := a.Create(rec(20, 1, 50, 0, 0, 0)).(*MC)
	out.W = 0.5
	model.Add(out)

	clustering, err := a.Offline(model)
	if err != nil {
		t.Fatal(err)
	}
	if clustering.NumClusters() != 2 {
		t.Fatalf("NumClusters = %d, want 2", clustering.NumClusters())
	}
	for _, macro := range clustering.Macros {
		for _, id := range macro.Members {
			if id == out.Id {
				t.Error("outlier MC in macro-cluster")
			}
		}
	}
	// No potentials: empty clustering.
	empty := core.NewModel()
	empty.Add(out.Clone())
	c2, err := a.Offline(empty)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumClusters() != 0 {
		t.Error("outlier-only model produced clusters")
	}
}

func TestInitPotentialFlag(t *testing.T) {
	a := New(testConfig())
	// 10 colocated records: one MC with weight 10 >= beta*mu => potential.
	recs := make([]stream.Record, 10)
	for i := range recs {
		recs[i] = rec(uint64(i), vclock.Time(float64(i)*0.01), 0, 0, 0, 0)
	}
	mcs, err := a.Init(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(mcs) != 1 {
		t.Fatalf("init produced %d MCs", len(mcs))
	}
	if !mcs[0].(*MC).Potential {
		t.Error("heavy init MC not potential")
	}
	if _, err := a.Init(nil); err == nil {
		t.Error("empty init accepted")
	}
}

func TestDefaults(t *testing.T) {
	a := New(Config{})
	if a.cfg.Epsilon != 0.8 || a.cfg.Mu != 10 || a.cfg.Beta != 0.25 ||
		a.cfg.Lambda != 0.25 || a.cfg.OfflineEpsFactor != 2 {
		t.Errorf("defaults = %+v", a.cfg)
	}
	// Invalid beta falls back.
	b := New(Config{Beta: 1.5})
	if b.cfg.Beta != 0.25 {
		t.Errorf("beta fallback = %v", b.cfg.Beta)
	}
}
