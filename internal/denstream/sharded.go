package denstream

import (
	"fmt"
	"slices"

	"diststream/internal/core"
	"diststream/internal/vclock"
)

// This file implements the core.ShardedGlobalUpdater capability for
// DenStream. The decomposition:
//
//	parallel (per shard)   reduce the shard's fragment (touched
//	                       positions + final micro-clusters);
//	barrier
//	residue (serialized)   fold the fragments, run the sweep-due check;
//	parallel (per shard)   when a sweep is due: decay each untouched
//	                       micro-cluster the shard owns in place,
//	                       promote/demote, and collect deletion victims;
//	barrier
//	residue (serialized)   delete the victims in admission order.
//
// Byte-identity with the serial path: per-micro-cluster decay,
// promotion and demotion read and write only that micro-cluster, so
// sweeping disjoint position sets concurrently produces the same state
// as the serial admission-order sweep; the order-sensitive deletions are
// gathered per shard and replayed serially in admission order — exactly
// the order the serial sweep removes them in. The positional touched
// flags from the plan replicate the serial path's touched-id map
// (creations and re-admitted bases count as touched under their new
// ids).
var _ core.ShardedGlobalUpdater = (*Algorithm)(nil)

// sweepVictim is one micro-cluster the parallel sweep marked for
// deletion: its final admission position (for deterministic ordering)
// and its id (captured before any removal shifts positions).
type sweepVictim struct {
	pos int32
	id  uint64
}

// GlobalUpdateSharded implements core.ShardedGlobalUpdater.
func (a *Algorithm) GlobalUpdateSharded(model *core.Model, updates []core.Update, now vclock.Time, run *core.ShardedRun) error {
	plan, err := run.Plan(model, updates)
	if err != nil {
		return fmt.Errorf("denstream: %w", err)
	}
	frags := make([]*core.ShardFragment, plan.Shards())
	if err := run.Parallel(func(s int) error {
		frags[s] = plan.Reduce(s)
		return nil
	}); err != nil {
		return err
	}
	var due bool
	if err := run.Residue(func() error {
		if err := plan.Fold(model, frags); err != nil {
			return err
		}
		due = sweepDue(model, now, len(updates))
		return nil
	}); err != nil {
		return err
	}
	if !due {
		return nil
	}

	betaMu := a.cfg.Beta * a.cfg.Mu
	doomed := make([][]sweepVictim, plan.Shards())
	if err := run.Parallel(func(s int) error {
		var victims []sweepVictim
		for _, pos := range plan.ShardPositions(s) {
			p := int(pos)
			m, ok := model.At(p).(*MC)
			if !ok {
				return fmt.Errorf("denstream: micro-cluster at position %d is %T, want *MC", p, model.At(p))
			}
			if !plan.Touched(p) {
				m.Decay(now, a.cfg.Lambda)
			}
			switch {
			case !m.Potential && m.W >= betaMu:
				m.Potential = true
			case m.Potential && m.W < betaMu:
				m.Potential = false
			}
			if m.W < a.deleteThreshold() {
				victims = append(victims, sweepVictim{pos: pos, id: m.Id})
			}
		}
		doomed[s] = victims
		return nil
	}); err != nil {
		return err
	}

	return run.Residue(func() error {
		var all []sweepVictim
		for _, victims := range doomed {
			all = append(all, victims...)
		}
		slices.SortFunc(all, func(x, y sweepVictim) int {
			return int(x.pos) - int(y.pos)
		})
		for _, v := range all {
			model.Remove(v.id)
		}
		return nil
	})
}
