// Package denstream implements the DenStream algorithm (Cao et al., SDM
// 2006) on the DistStream Algorithm API.
//
// Micro-clusters carry exponentially faded cluster features (Σwx², Σwx,
// Σw — paper §VI) where every contribution fades as 2^(-Lambda·Δt).
// DenStream keeps two kinds of micro-clusters: potential (weight ≥
// Beta·Mu) and outlier. Records are absorbed when the prospective radius
// stays within Epsilon; otherwise they seed new outlier micro-clusters.
// The global update decays untouched micro-clusters, promotes outlier
// micro-clusters whose weight crosses Beta·Mu, and prunes faded ones.
// The offline phase runs weighted DBSCAN over potential micro-clusters,
// finding arbitrarily shaped macro-clusters.
package denstream

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math"

	"diststream/internal/core"
	"diststream/internal/offline"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
	"diststream/internal/wire"
)

// Name is the registry name of this algorithm.
const Name = "denstream"

// MC is a DenStream micro-cluster with faded cluster features.
type MC struct {
	Id        uint64
	CF1       vector.Vector // faded linear sum Σ w_i x_i
	CF2       vector.Vector // faded squared sum Σ w_i x_i²
	W         float64       // faded weight Σ w_i
	Potential bool          // potential (true) vs outlier (false)
	Born      vclock.Time
	Last      vclock.Time
}

var _ core.MicroCluster = (*MC)(nil)

// ID implements core.MicroCluster.
func (m *MC) ID() uint64 { return m.Id }

// SetID implements core.MicroCluster.
func (m *MC) SetID(id uint64) { m.Id = id }

// Weight implements core.MicroCluster.
func (m *MC) Weight() float64 { return m.W }

// CreatedAt implements core.MicroCluster.
func (m *MC) CreatedAt() vclock.Time { return m.Born }

// LastUpdated implements core.MicroCluster.
func (m *MC) LastUpdated() vclock.Time { return m.Last }

// Center implements core.MicroCluster.
func (m *MC) Center() vector.Vector {
	if m.W == 0 {
		return m.CF1.Clone()
	}
	return m.CF1.Clone().Scale(1 / m.W)
}

// Clone implements core.MicroCluster.
func (m *MC) Clone() core.MicroCluster {
	out := *m
	out.CF1 = m.CF1.Clone()
	out.CF2 = m.CF2.Clone()
	return &out
}

// Radius returns the weighted RMS deviation in Euclidean distance units
// (full-norm sqrt(Σ_d var_d)), comparable against Epsilon.
func (m *MC) Radius() float64 {
	if m.W == 0 {
		return 0
	}
	var sum float64
	for d := range m.CF1 {
		mean := m.CF1[d] / m.W
		v := m.CF2[d]/m.W - mean*mean
		if v > 0 {
			sum += v
		}
	}
	return math.Sqrt(sum)
}

// DistanceTo returns the Euclidean distance from the micro-cluster's
// centroid to v without materializing the centroid (hot-path helper).
func (m *MC) DistanceTo(v vector.Vector) float64 {
	if m.W == 0 {
		return vector.Distance(m.CF1, v)
	}
	inv := 1 / m.W
	var sum float64
	for d := range m.CF1 {
		diff := m.CF1[d]*inv - v[d]
		sum += diff * diff
	}
	return math.Sqrt(sum)
}

// Decay fades the micro-cluster from its last update to now with factor
// 2^(-lambda·Δt) and advances the decay horizon.
func (m *MC) Decay(now vclock.Time, lambda float64) {
	dt := float64(now - m.Last)
	if dt <= 0 {
		return
	}
	f := math.Exp2(-lambda * dt)
	m.CF1.Scale(f)
	m.CF2.Scale(f)
	m.W *= f
	m.Last = now
}

// Absorb folds rec into the micro-cluster: q' = λq + Δx with
// λ = 2^(-Lambda·|Δt|), Δt the gap to the previously updated record.
// Using the absolute gap matches the paper's §IV-C1 model of the naive
// update (λ ≤ 1 always): when the unordered baseline presents an OLDER
// record after a newer one, the newer content gets decayed — the update
// "fails to favor recent records" and each record's impact depends on its
// processing position, not its arrival order. The order-aware pipeline
// and the sequential runner always present records in arrival order
// (Δt ≥ 0), where this is the standard fading update.
func (m *MC) Absorb(rec stream.Record, lambda float64) {
	dt := math.Abs(float64(rec.Timestamp - m.Last))
	if dt != 0 {
		f := math.Exp2(-lambda * dt)
		m.CF1.Scale(f)
		m.CF2.Scale(f)
		m.W *= f
	}
	m.Last = rec.Timestamp
	m.CF1.Add(rec.Values)
	m.CF2.AddSquared(rec.Values)
	m.W++
}

// ProspectiveRadius returns the radius the micro-cluster would have after
// absorbing rec (without mutating it) — DenStream's absorb test.
func (m *MC) ProspectiveRadius(rec stream.Record, lambda float64) float64 {
	probe := m.Clone().(*MC)
	probe.Absorb(rec, lambda)
	return probe.Radius()
}

// Config parameterizes DenStream.
type Config struct {
	// Dim is the record dimensionality.
	Dim int
	// Epsilon is the micro-cluster radius bound ε. Default 0.8.
	Epsilon float64
	// Mu is the core weight threshold µ (paper evaluation: µ = 10).
	// Default 10.
	Mu float64
	// Beta is the potential factor β in (0,1]: potential micro-clusters
	// need weight ≥ Beta·Mu. Default 0.25.
	Beta float64
	// Lambda is the fading exponent λ in 2^(-λ·Δt). The DistStream paper
	// sets the decay base to 2^0.25 ≈ 1.2, i.e. λ = 0.25. Default 0.25.
	Lambda float64
	// OfflineEpsFactor scales Epsilon into the offline DBSCAN eps.
	// Default 2.
	OfflineEpsFactor float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Epsilon <= 0 {
		out.Epsilon = 0.8
	}
	if out.Mu <= 0 {
		out.Mu = 10
	}
	if out.Beta <= 0 || out.Beta > 1 {
		out.Beta = 0.25
	}
	if out.Lambda <= 0 {
		out.Lambda = 0.25
	}
	if out.OfflineEpsFactor <= 0 {
		out.OfflineEpsFactor = 2
	}
	return out
}

// Algorithm implements core.Algorithm for DenStream.
type Algorithm struct {
	cfg Config
}

var _ core.Algorithm = (*Algorithm)(nil)

// New returns a DenStream instance with defaults applied.
func New(cfg Config) *Algorithm {
	return &Algorithm{cfg: cfg.withDefaults()}
}

// Register adds the DenStream factory to an algorithm registry.
func Register(reg *core.AlgorithmRegistry) error {
	return reg.Register(Name, func(p core.Params) (core.Algorithm, error) {
		return New(Config{
			Dim:              p.Dim,
			Epsilon:          p.Float("epsilon", 0),
			Mu:               p.Float("mu", 0),
			Beta:             p.Float("beta", 0),
			Lambda:           p.Float("lambda", 0),
			OfflineEpsFactor: p.Float("offlineEpsFactor", 0),
		}), nil
	})
}

// RegisterWireTypes registers gob payload types.
func RegisterWireTypes() {
	gob.Register(&MC{})
	gob.Register(&Snapshot{})
	wire.RegisterMCCodec(Name, &MC{}, encMC, decMC)
}

// Name implements core.Algorithm.
func (a *Algorithm) Name() string { return Name }

// Params implements core.Algorithm.
func (a *Algorithm) Params() core.Params {
	return core.Params{
		Name: Name,
		Dim:  a.cfg.Dim,
		Floats: map[string]float64{
			"epsilon":          a.cfg.Epsilon,
			"mu":               a.cfg.Mu,
			"beta":             a.cfg.Beta,
			"lambda":           a.cfg.Lambda,
			"offlineEpsFactor": a.cfg.OfflineEpsFactor,
		},
	}
}

// Init implements core.Algorithm: greedy ε-leader clustering over the
// warm-up sample; groups reaching Beta·Mu weight start as potential.
func (a *Algorithm) Init(records []stream.Record) ([]core.MicroCluster, error) {
	if len(records) == 0 {
		return nil, errors.New("denstream: empty init sample")
	}
	var mcs []*MC
	for _, rec := range records {
		var best *MC
		bestD := math.Inf(1)
		for _, mc := range mcs {
			if d := mc.DistanceTo(rec.Values); d < bestD {
				best, bestD = mc, d
			}
		}
		if best != nil && best.ProspectiveRadius(rec, a.cfg.Lambda) <= a.cfg.Epsilon {
			best.Absorb(rec, a.cfg.Lambda)
			continue
		}
		mcs = append(mcs, a.newMC(rec))
	}
	out := make([]core.MicroCluster, len(mcs))
	for i, mc := range mcs {
		mc.Potential = mc.W >= a.cfg.Beta*a.cfg.Mu
		out[i] = mc
	}
	return out, nil
}

func (a *Algorithm) newMC(rec stream.Record) *MC {
	return &MC{
		CF1:  rec.Values.Clone(),
		CF2:  vector.New(len(rec.Values)).AddSquared(rec.Values),
		W:    1,
		Born: rec.Timestamp,
		Last: rec.Timestamp,
	}
}

// NewSnapshot implements core.Algorithm.
func (a *Algorithm) NewSnapshot(mcs []core.MicroCluster) core.Snapshot {
	return &Snapshot{
		MCs:     mcs,
		Index:   core.BuildFlatIndex(mcs),
		Epsilon: a.cfg.Epsilon,
		Lambda:  a.cfg.Lambda,
	}
}

// Update implements core.Algorithm.
func (a *Algorithm) Update(mc core.MicroCluster, rec stream.Record) {
	mc.(*MC).Absorb(rec, a.cfg.Lambda)
}

// Create implements core.Algorithm: new outlier micro-cluster.
func (a *Algorithm) Create(rec stream.Record) core.MicroCluster {
	return a.newMC(rec)
}

// AbsorbIntoNew implements core.Algorithm: a fresh outlier micro-cluster
// absorbs when the prospective radius stays within ε.
func (a *Algorithm) AbsorbIntoNew(mc core.MicroCluster, rec stream.Record) bool {
	return mc.(*MC).ProspectiveRadius(rec, a.cfg.Lambda) <= a.cfg.Epsilon
}

// GlobalUpdate implements core.Algorithm: apply updates in order
// (replacing or admitting), then decay untouched micro-clusters to `now`,
// promote outliers crossing Beta·Mu, demote potentials that faded below,
// and delete micro-clusters below the outlier retention threshold.
func (a *Algorithm) GlobalUpdate(model *core.Model, updates []core.Update, now vclock.Time) error {
	touched := make(map[uint64]bool, len(updates))
	for _, u := range updates {
		switch u.Kind {
		case core.KindUpdated:
			if model.Get(u.MC.ID()) == nil {
				model.Add(u.MC)
			} else if err := model.Replace(u.MC); err != nil {
				return err
			}
		case core.KindCreated:
			model.Add(u.MC)
		default:
			return fmt.Errorf("denstream: unknown update kind %d", u.Kind)
		}
		touched[u.MC.ID()] = true
	}
	// Periodic maintenance (DenStream's Tp check): decaying untouched
	// micro-clusters, promotion/demotion, and pruning sweep the whole
	// model, so the one-record-at-a-time runner only pays for it every
	// sweepInterval of virtual time. The mini-batch pipeline (many
	// updates per call) sweeps on every batch.
	if !sweepDue(model, now, len(updates)) {
		return nil
	}
	betaMu := a.cfg.Beta * a.cfg.Mu
	for _, mc := range model.List() {
		m := mc.(*MC)
		if !touched[m.Id] {
			m.Decay(now, a.cfg.Lambda)
		}
		switch {
		case !m.Potential && m.W >= betaMu:
			m.Potential = true
		case m.Potential && m.W < betaMu:
			m.Potential = false
		}
		if m.W < a.deleteThreshold() {
			model.Remove(m.Id)
		}
	}
	return nil
}

// sweepInterval is the virtual-time period of the maintenance sweep
// (DenStream's Tp); a sweep also always runs for multi-update (batch)
// calls.
const sweepInterval = 1.0

// sweepDue reports whether the periodic sweep should run now, updating
// the model's bookkeeping when it does.
func sweepDue(model *core.Model, now vclock.Time, updates int) bool {
	last, ok := model.MetaFloat("denstream.lastSweep")
	if updates <= 1 && ok && float64(now)-last < sweepInterval {
		return false
	}
	model.SetMetaFloat("denstream.lastSweep", float64(now))
	return true
}

// deleteThreshold is the weight below which a micro-cluster is dropped.
// DenStream's ξ threshold grows with the outlier's age; we use the
// simpler stationary bound: an outlier that cannot reach Beta·Mu·(1-2^-λ)
// even at full stream rate is unrecoverable. A fixed fraction of Beta·Mu
// keeps the behaviour while staying parameter-light.
func (a *Algorithm) deleteThreshold() float64 {
	return 0.1 * a.cfg.Beta * a.cfg.Mu
}

// Offline implements core.Algorithm: weighted DBSCAN over potential
// micro-cluster centers (the density-connected grouping of §II-A).
func (a *Algorithm) Offline(model *core.Model) (*core.Clustering, error) {
	var potentials []core.MicroCluster
	for _, mc := range model.List() {
		if mc.(*MC).Potential {
			potentials = append(potentials, mc)
		}
	}
	if len(potentials) == 0 {
		return core.NewClustering(nil, nil, nil), nil
	}
	centers := make([]vector.Vector, len(potentials))
	weights := make([]float64, len(potentials))
	for i, mc := range potentials {
		centers[i] = mc.Center()
		weights[i] = mc.Weight()
	}
	labels, err := offline.DBSCAN(centers, weights, offline.DBSCANConfig{
		Eps:       a.cfg.OfflineEpsFactor * a.cfg.Epsilon,
		MinPoints: a.cfg.Mu,
	})
	if err != nil {
		return nil, fmt.Errorf("denstream: offline dbscan: %w", err)
	}
	k := offline.NumClusters(labels)
	macros := make([]core.MacroCluster, k)
	for i := range macros {
		macros[i].Label = i
	}
	// Noise micro-clusters are excluded from the assignment surface.
	var keepCenters []vector.Vector
	var keepLabels []int
	for i, mc := range potentials {
		g := labels[i]
		if g < 0 {
			continue
		}
		keepCenters = append(keepCenters, centers[i])
		keepLabels = append(keepLabels, g)
		macros[g].Members = append(macros[g].Members, mc.ID())
		macros[g].Weight += weights[i]
		if macros[g].Center == nil {
			macros[g].Center = vector.New(len(centers[i]))
		}
		macros[g].Center.AXPY(weights[i], centers[i])
	}
	for g := range macros {
		if macros[g].Weight > 0 {
			macros[g].Center.Scale(1 / macros[g].Weight)
		}
	}
	clustering := core.NewClustering(macros, keepCenters, keepLabels)
	// Records beyond the offline DBSCAN reach of every potential
	// micro-cluster are noise — the online outlier decision, offline.
	clustering.SetNoiseCutoff(a.cfg.OfflineEpsFactor * a.cfg.Epsilon)
	return clustering, nil
}

// Snapshot is DenStream's search structure: a flat center index plus the
// absorb parameters.
type Snapshot struct {
	MCs     []core.MicroCluster
	Index   core.FlatIndex
	Epsilon float64
	Lambda  float64
}

var _ core.Snapshot = (*Snapshot)(nil)

// Nearest implements core.Snapshot via the flat one-vs-many kernel:
// nearest center, absorbable when the prospective radius stays within ε.
func (s *Snapshot) Nearest(rec stream.Record) (uint64, bool, bool) {
	best, _ := s.Index.Nearest(rec.Values)
	if best < 0 {
		return 0, false, false
	}
	mc := s.MCs[best].(*MC)
	return mc.Id, mc.ProspectiveRadius(rec, s.Lambda) <= s.Epsilon, true
}

// NearestAll implements core.BatchNearester: the blocked kernel picks
// each record's nearest micro-cluster, then the same per-record
// prospective-radius test as Nearest decides absorption. Bit-identical
// to the per-record path.
func (s *Snapshot) NearestAll(recs []stream.Record, ids []uint64, absorb, found []bool) ([]uint64, []bool, []bool) {
	ids, absorb, found = core.GrowNearestOut(len(recs), ids, absorb, found)
	nr := core.GetNearestRows()
	nr.Rows, nr.Dists = s.Index.NearestAll(recs, nr.Rows, nr.Dists)
	for i, row := range nr.Rows {
		if row < 0 {
			ids[i], absorb[i], found[i] = 0, false, false
			continue
		}
		mc := s.MCs[row].(*MC)
		ids[i] = mc.Id
		absorb[i] = mc.ProspectiveRadius(recs[i], s.Lambda) <= s.Epsilon
		found[i] = true
	}
	nr.Release()
	return ids, absorb, found
}

// Get implements core.Snapshot in O(1) via the id → row map.
func (s *Snapshot) Get(id uint64) core.MicroCluster {
	if i, ok := s.Index.IndexOf(id); ok {
		return s.MCs[i]
	}
	return nil
}

// Len implements core.Snapshot.
func (s *Snapshot) Len() int { return len(s.MCs) }
