package denstream

import (
	"bytes"
	"math/rand"
	"testing"

	"diststream/internal/core"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// randMC builds a random micro-cluster. Weights are spread across the
// promote/demote/prune thresholds of the test config so sweeps exercise
// every branch.
func randMC(r *rand.Rand, dim int, t float64, betaMu float64) *MC {
	w := 0.05 + 2*betaMu*r.Float64()
	cf1 := vector.New(dim)
	cf2 := vector.New(dim)
	for d := range cf1 {
		v := r.NormFloat64() * 2
		cf1[d] = v * w
		cf2[d] = v * v * w
	}
	return &MC{
		CF1:       cf1,
		CF2:       cf2,
		W:         w,
		Potential: r.Intn(2) == 0,
		Born:      vclock.Time(t),
		Last:      vclock.Time(t),
	}
}

func cloneModel(t *testing.T, a *Algorithm, m *core.Model) *core.Model {
	t.Helper()
	data, err := a.EncodeState(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := a.DecodeState(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func encodeModel(t *testing.T, a *Algorithm, m *core.Model) []byte {
	t.Helper()
	data, err := a.EncodeState(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// cloneUpdates deep-copies a batch so one run's in-place mutations
// (promotion flags, Add assigning re-admission ids) cannot leak into the
// other run's input.
func cloneUpdates(updates []core.Update) []core.Update {
	out := make([]core.Update, len(updates))
	for i, u := range updates {
		u.MC = u.MC.Clone()
		out[i] = u
	}
	return out
}

// TestShardedGlobalUpdateMatchesSerial is the randomized differential
// battery: random models (with deleted ids and stale micro-clusters),
// random batches, random shard counts and pool sizes — serial
// GlobalUpdate and GlobalUpdateSharded must produce byte-identical
// state, including the sweep's decay, promotions, demotions and
// deletions.
func TestShardedGlobalUpdateMatchesSerial(t *testing.T) {
	const dim = 5
	for trial := 0; trial < 60; trial++ {
		r := rand.New(rand.NewSource(int64(2000 + trial)))
		algo := New(Config{Dim: dim, Epsilon: 2, Mu: 4, Beta: 0.5, Lambda: 0.2})
		betaMu := algo.cfg.Beta * algo.cfg.Mu
		base := core.NewModel()
		now := 50.0
		for i := 0; i < 5+r.Intn(20); i++ {
			// Some micro-clusters long-stale so the sweep's decay drops
			// them below the delete threshold.
			t0 := now - 3*r.Float64()
			if r.Intn(3) == 0 {
				t0 = now - 20 - 30*r.Float64()
			}
			base.Add(randMC(r, dim, t0, betaMu))
		}
		var removed []uint64
		for _, id := range base.IDs() {
			if r.Intn(6) == 0 {
				base.Remove(id)
				removed = append(removed, id)
			}
		}
		base.SetNow(vclock.Time(now - 1))
		live := base.IDs()
		n := 2 + r.Intn(20)
		var updates []core.Update
		for i := 0; i < n; i++ {
			ts := now - 1 + float64(i)/float64(n)
			mc := randMC(r, dim, ts, betaMu)
			u := core.Update{MC: mc, OrderTime: vclock.Time(ts), OrderSeq: uint64(i)}
			switch roll := r.Intn(10); {
			case roll < 5 && len(live) > 0:
				mc.Id = live[r.Intn(len(live))]
				u.Kind = core.KindUpdated
			case roll < 7 && len(removed) > 0:
				mc.Id = removed[r.Intn(len(removed))]
				u.Kind = core.KindUpdated
			default:
				u.Kind = core.KindCreated
			}
			updates = append(updates, u)
		}
		shards := 1 + r.Intn(9)
		pool := core.NewReducerPool(1 + r.Intn(4))

		serial := cloneModel(t, algo, base)
		if err := algo.GlobalUpdate(serial, cloneUpdates(updates), vclock.Time(now)); err != nil {
			t.Fatalf("trial %d: serial: %v", trial, err)
		}
		sharded := cloneModel(t, algo, base)
		run := core.NewShardedRun(shards, pool, nil)
		if err := algo.GlobalUpdateSharded(sharded, cloneUpdates(updates), vclock.Time(now), run); err != nil {
			t.Fatalf("trial %d: sharded: %v", trial, err)
		}
		if !bytes.Equal(encodeModel(t, algo, serial), encodeModel(t, algo, sharded)) {
			t.Fatalf("trial %d: sharded state diverged (shards=%d pool=%d updates=%d)",
				trial, shards, pool.Workers(), len(updates))
		}
	}
}

// TestShardedSweepGate covers the sweep-due bookkeeping: a single-update
// batch inside the sweep interval must skip the sweep on both paths —
// and, critically, write the same "denstream.lastSweep" meta either way,
// since meta is part of the encoded state.
func TestShardedSweepGate(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	algo := New(Config{Dim: 3, Epsilon: 2, Mu: 4, Beta: 0.5, Lambda: 0.1})
	betaMu := algo.cfg.Beta * algo.cfg.Mu
	base := core.NewModel()
	for i := 0; i < 6; i++ {
		base.Add(randMC(r, 3, 10, betaMu))
	}
	base.SetMetaFloat("denstream.lastSweep", 10)

	mk := func() []core.Update {
		mc := randMC(r, 3, 10.5, betaMu)
		mc.Id = base.IDs()[0]
		return []core.Update{{Kind: core.KindUpdated, MC: mc, OrderTime: 10, OrderSeq: 1}}
	}
	// One update, 0.5s after the last sweep: not due.
	updates := mk()
	serial := cloneModel(t, algo, base)
	if err := algo.GlobalUpdate(serial, updates, vclock.Time(10.5)); err != nil {
		t.Fatal(err)
	}
	sharded := cloneModel(t, algo, base)
	if err := algo.GlobalUpdateSharded(sharded, updates, vclock.Time(10.5), core.NewShardedRun(3, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeModel(t, algo, serial), encodeModel(t, algo, sharded)) {
		t.Fatal("sweep-skipped state diverged")
	}
	// Same single update, past the interval: due on both paths.
	updates = mk()
	serial2 := cloneModel(t, algo, base)
	if err := algo.GlobalUpdate(serial2, updates, vclock.Time(12)); err != nil {
		t.Fatal(err)
	}
	sharded2 := cloneModel(t, algo, base)
	if err := algo.GlobalUpdateSharded(sharded2, updates, vclock.Time(12), core.NewShardedRun(3, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeModel(t, algo, serial2), encodeModel(t, algo, sharded2)) {
		t.Fatal("sweep-due state diverged")
	}
}
