package core

import (
	"fmt"
	"sync"
)

// Factory constructs an algorithm from its serialized parameters. Remote
// workers use factories to rebuild the driver's algorithm.
type Factory func(p Params) (Algorithm, error)

// AlgorithmRegistry maps algorithm names to factories. The driver and
// every worker binary must register the same factories (the facade's
// RegisterBuiltins does this for the four shipped algorithms).
type AlgorithmRegistry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewAlgorithmRegistry returns an empty registry.
func NewAlgorithmRegistry() *AlgorithmRegistry {
	return &AlgorithmRegistry{factories: make(map[string]Factory)}
}

// Register adds a factory under name; duplicates are an error.
func (r *AlgorithmRegistry) Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("core: empty algorithm name")
	}
	if f == nil {
		return fmt.Errorf("core: nil factory for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("core: algorithm %q already registered", name)
	}
	r.factories[name] = f
	return nil
}

// New constructs the algorithm described by p.
func (r *AlgorithmRegistry) New(p Params) (Algorithm, error) {
	r.mu.RLock()
	f, ok := r.factories[p.Name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q", p.Name)
	}
	return f(p)
}

// Names returns the registered algorithm names (order unspecified).
func (r *AlgorithmRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	return out
}
