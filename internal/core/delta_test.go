package core

import (
	"strings"
	"testing"

	"diststream/internal/vector"
)

// ListMCs makes the toy snapshot a delta base (core.MCLister), mirroring
// what every shipped algorithm snapshot does.
func (s *toySnapshot) ListMCs() []MicroCluster { return s.mcs }

func toyEqual(a, b MicroCluster) bool {
	x, ok := a.(*toyMC)
	if !ok {
		return false
	}
	y, ok := b.(*toyMC)
	if !ok {
		return false
	}
	if x.Id != y.Id || !BitsEqual(x.W, y.W) ||
		!BitsEqual(float64(x.Created), float64(y.Created)) ||
		!BitsEqual(float64(x.Updated), float64(y.Updated)) ||
		!VecBitsEqual(x.Sum, y.Sum) || len(x.UpdLog) != len(y.UpdLog) {
		return false
	}
	for i := range x.UpdLog {
		if x.UpdLog[i] != y.UpdLog[i] {
			return false
		}
	}
	return true
}

func deltaMC(id uint64, w float64, coords ...float64) *toyMC {
	return &toyMC{Id: id, Sum: vector.Vector(coords), W: w, Created: 1, Updated: 2}
}

func TestDiffApplyRoundTrip(t *testing.T) {
	old := []MicroCluster{deltaMC(1, 1, 0, 0), deltaMC(2, 2, 5, 5), deltaMC(3, 3, 9, 9)}
	// 1 unchanged, 2 updated, 3 removed, 4 created.
	next := []MicroCluster{deltaMC(1, 1, 0, 0), deltaMC(2, 2.5, 5, 6), deltaMC(4, 1, -3, -3)}

	d, ok := DiffMCLists(old, next, toyEqual)
	if !ok {
		t.Fatal("DiffMCLists declined a sparse delta")
	}
	if len(d.Upserts) != 2 || d.Upserts[0].ID() != 2 || d.Upserts[1].ID() != 4 {
		t.Fatalf("Upserts = %v", d.Upserts)
	}
	if len(d.Removed) != 1 || d.Removed[0] != 3 {
		t.Fatalf("Removed = %v", d.Removed)
	}
	if len(d.Order) != 3 || d.Order[0] != 1 || d.Order[1] != 2 || d.Order[2] != 4 {
		t.Fatalf("Order = %v", d.Order)
	}

	out, err := ApplyMCDelta(old, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(next) {
		t.Fatalf("applied list has %d micro-clusters, want %d", len(out), len(next))
	}
	// The unchanged micro-cluster is carried over by reference.
	if out[0] != old[0] {
		t.Error("unchanged micro-cluster was not carried over by reference")
	}
	for i := range next {
		if !toyEqual(out[i], next[i]) {
			t.Errorf("applied[%d] = %+v, want %+v", i, out[i], next[i])
		}
	}
}

func TestDiffAllChangedFallsBack(t *testing.T) {
	old := []MicroCluster{deltaMC(1, 1, 0, 0), deltaMC(2, 2, 5, 5)}
	next := []MicroCluster{deltaMC(1, 1.5, 0, 1), deltaMC(2, 2.5, 5, 6)}
	if _, ok := DiffMCLists(old, next, toyEqual); ok {
		t.Error("DiffMCLists produced a delta no smaller than the full snapshot")
	}
	// Same-size via churn: one update plus one create on a 2-element list.
	next2 := []MicroCluster{deltaMC(1, 1.5, 0, 1), deltaMC(2, 2, 5, 5), deltaMC(3, 1, 7, 7)}
	if d, ok := DiffMCLists(old, next2, toyEqual); !ok || len(d.Upserts) != 2 {
		t.Errorf("sparse-enough delta rejected: ok=%v d=%+v", ok, d)
	}
}

func TestApplyChecksumMismatchFails(t *testing.T) {
	old := []MicroCluster{deltaMC(1, 1, 0, 0), deltaMC(2, 2, 5, 5)}
	next := []MicroCluster{deltaMC(1, 1, 0, 0), deltaMC(2, 2.5, 5, 6)}
	d, ok := DiffMCLists(old, next, toyEqual)
	if !ok {
		t.Fatal("diff declined")
	}
	// A base that drifted from what the driver diffed against: same ids,
	// different bits. The checksum must catch it.
	stale := []MicroCluster{deltaMC(1, 7, 0, 0), deltaMC(2, 2, 5, 5)}
	if _, err := ApplyMCDelta(stale, d); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("stale base not caught: err = %v", err)
	}
}

func TestApplyMissingBaseFails(t *testing.T) {
	old := []MicroCluster{deltaMC(1, 1, 0, 0), deltaMC(2, 2, 5, 5)}
	next := []MicroCluster{deltaMC(1, 1, 0, 0), deltaMC(2, 2.5, 5, 6)}
	d, ok := DiffMCLists(old, next, toyEqual)
	if !ok {
		t.Fatal("diff declined")
	}
	// Micro-cluster 1 is carried over (not in the upserts), so a base
	// without it cannot satisfy the delta.
	if _, err := ApplyMCDelta(old[1:], d); err == nil {
		t.Error("delta applied over a base missing a carried-over micro-cluster")
	}
	dRemove := &SnapshotDelta{Order: []uint64{1}, Removed: []uint64{9}, Checksum: ChecksumMCs(old[:1])}
	if _, err := ApplyMCDelta(old, dRemove); err == nil {
		t.Error("delta removing an unknown micro-cluster applied")
	}
}

func TestSnapshotDeltaApplyRebuildsSnapshot(t *testing.T) {
	algos := NewAlgorithmRegistry()
	if err := algos.Register("toy", func(Params) (Algorithm, error) { return newToyAlgo(), nil }); err != nil {
		t.Fatal(err)
	}
	prev := deltaAlgos.Swap(algos)
	defer deltaAlgos.Store(prev)

	algo := newToyAlgo()
	old := []MicroCluster{deltaMC(1, 1, 0, 0), deltaMC(2, 2, 5, 5)}
	next := []MicroCluster{deltaMC(1, 1, 0, 0), deltaMC(2, 2.5, 5, 6), deltaMC(3, 1, 9, 9)}
	d, ok := DiffMCLists(old, next, toyEqual)
	if !ok {
		t.Fatal("diff declined")
	}
	d.Params = algo.Params()

	applied, err := d.ApplyDelta(algo.NewSnapshot(old))
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := applied.(*toySnapshot)
	if !ok {
		t.Fatalf("applied value is %T, want *toySnapshot", applied)
	}
	if len(snap.mcs) != 3 {
		t.Fatalf("rebuilt snapshot holds %d micro-clusters, want 3", len(snap.mcs))
	}
	for i := range next {
		if !toyEqual(snap.mcs[i], next[i]) {
			t.Errorf("rebuilt[%d] = %+v, want %+v", i, snap.mcs[i], next[i])
		}
	}

	// A base of the wrong shape is rejected, not mangled.
	if _, err := d.ApplyDelta(42); err == nil {
		t.Error("delta applied onto a non-snapshot base")
	}
}
