package core

import (
	"testing"

	"diststream/internal/stream"
)

// BenchmarkPipelineBatch measures full mini-batch processing (assign,
// shuffle + local update, global update) on the reference workload at
// parallelism 4.
func BenchmarkPipelineBatch(b *testing.B) {
	recs := twoBlobStream(2000, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := newToyEngine(b, 4)
		pl, err := NewPipeline(Config{
			Algorithm:     newToyAlgo(),
			Engine:        eng,
			BatchInterval: 1,
			InitRecords:   100,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pl.Run(stream.NewSliceSource(recs)); err != nil {
			b.Fatal(err)
		}
		_ = eng.Close()
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}
