package core

import (
	"fmt"
	"slices"

	"diststream/internal/vclock"
)

// Model is the live micro-cluster set Q_t plus identifier allocation. It
// lives on the driver; tasks only ever see frozen snapshots of it. The
// model is not safe for concurrent use — the batch loop is sequential by
// design (the batch-by-batch feedback loop of §IV-A).
type Model struct {
	mcs     []MicroCluster // in admission order (stable, deterministic)
	index   map[uint64]int // id -> position in mcs
	next    uint64         // next id to allocate
	now     vclock.Time    // time of the last completed global update
	version uint64         // bumped on structural change (add/remove/new pointer)
	meta    map[string]float64
}

// NewModel returns an empty model whose first allocated id is 1.
func NewModel() *Model {
	return &Model{index: make(map[uint64]int), next: 1}
}

// AllocID returns a fresh micro-cluster id.
func (m *Model) AllocID() uint64 {
	id := m.next
	m.next++
	return id
}

// Add admits mc to the model, assigning it a fresh id. It returns the id.
func (m *Model) Add(mc MicroCluster) uint64 {
	id := m.AllocID()
	mc.SetID(id)
	m.index[id] = len(m.mcs)
	m.mcs = append(m.mcs, mc)
	m.version++
	return id
}

// Version returns a counter that changes whenever the model's structure
// changes: a micro-cluster is added, removed, or replaced by a different
// object. In-place mutation of a live micro-cluster does not bump it. The
// sequential runner uses this to cache search snapshots between records.
func (m *Model) Version() uint64 { return m.version }

// Get returns the micro-cluster with the given id, or nil.
func (m *Model) Get(id uint64) MicroCluster {
	pos, ok := m.index[id]
	if !ok {
		return nil
	}
	return m.mcs[pos]
}

// Replace substitutes the micro-cluster with updated's id. It returns an
// error when the id is not live (e.g. it was deleted earlier in the same
// global update — a case the caller must handle by re-admitting or
// dropping the update).
func (m *Model) Replace(updated MicroCluster) error {
	pos, ok := m.index[updated.ID()]
	if !ok {
		return fmt.Errorf("core: replace: micro-cluster %d not in model", updated.ID())
	}
	if m.mcs[pos] != updated {
		m.version++
	}
	m.mcs[pos] = updated
	return nil
}

// Remove deletes the micro-cluster with the given id. It reports whether
// the id was live.
func (m *Model) Remove(id uint64) bool {
	pos, ok := m.index[id]
	if !ok {
		return false
	}
	// Preserve admission order: shift the tail. The model is small (n
	// micro-clusters), so O(n) removal is irrelevant next to the per-batch
	// O(m*n) assign work.
	copy(m.mcs[pos:], m.mcs[pos+1:])
	m.mcs = m.mcs[:len(m.mcs)-1]
	delete(m.index, id)
	m.version++
	for i := pos; i < len(m.mcs); i++ {
		m.index[m.mcs[i].ID()] = i
	}
	return true
}

// Len returns the number of live micro-clusters.
func (m *Model) Len() int { return len(m.mcs) }

// At returns the live micro-cluster at admission position i without
// copying the list — the positional access the sharded global update's
// parallel sweeps use (each shard owns a disjoint set of positions).
func (m *Model) At(i int) MicroCluster { return m.mcs[i] }

// ReplaceAt substitutes the micro-cluster at admission position i with
// mc, which must carry the same id — the positional fast path of the
// sharded global update's fold, which resolved positions at plan time
// and so skips the id -> position map lookup Replace pays.
func (m *Model) ReplaceAt(i int, mc MicroCluster) error {
	if cur := m.mcs[i]; cur != mc {
		if cur.ID() != mc.ID() {
			return fmt.Errorf("core: replace at %d: id %d does not match live id %d", i, mc.ID(), cur.ID())
		}
		m.mcs[i] = mc
		m.version++
	}
	return nil
}

// List returns the live micro-clusters in admission order. The slice is a
// copy; the elements are the live objects.
func (m *Model) List() []MicroCluster {
	out := make([]MicroCluster, len(m.mcs))
	copy(out, m.mcs)
	return out
}

// CloneList returns deep copies of the live micro-clusters in admission
// order — the frozen view broadcast to assign tasks.
func (m *Model) CloneList() []MicroCluster {
	out := make([]MicroCluster, len(m.mcs))
	for i, mc := range m.mcs {
		out[i] = mc.Clone()
	}
	return out
}

// IDs returns the live ids in admission order.
func (m *Model) IDs() []uint64 {
	out := make([]uint64, len(m.mcs))
	for i, mc := range m.mcs {
		out[i] = mc.ID()
	}
	return out
}

// Now returns the time of the last completed global update.
func (m *Model) Now() vclock.Time { return m.now }

// SetNow records the completion time of a global update. Time is
// monotone; earlier values are ignored.
func (m *Model) SetNow(t vclock.Time) {
	if t > m.now {
		m.now = t
	}
}

// MetaFloat reads algorithm-owned scalar state attached to the model
// (e.g. the time of the last periodic maintenance sweep — DenStream's Tp
// bookkeeping). Algorithms are stateless; durable state belongs to the
// model they operate on.
func (m *Model) MetaFloat(key string) (float64, bool) {
	v, ok := m.meta[key]
	return v, ok
}

// SetMetaFloat stores algorithm-owned scalar state on the model.
func (m *Model) SetMetaFloat(key string, v float64) {
	if m.meta == nil {
		m.meta = make(map[string]float64, 4)
	}
	m.meta[key] = v
}

// TotalWeight sums the live micro-cluster weights.
func (m *Model) TotalWeight() float64 {
	var total float64
	for _, mc := range m.mcs {
		total += mc.Weight()
	}
	return total
}

// SortUpdatesByOrderTime sorts updates by (OrderTime, OrderSeq) — the
// order-aware global update rule (§IV-C2: operations are performed on
// micro-clusters by the order of their updated/created time, because
// deletion and merging are irreversible).
func SortUpdatesByOrderTime(updates []Update) {
	slices.SortStableFunc(updates, func(a, b Update) int {
		switch {
		case a.OrderTime != b.OrderTime:
			if a.OrderTime < b.OrderTime {
				return -1
			}
			return 1
		case a.OrderSeq < b.OrderSeq:
			return -1
		case a.OrderSeq > b.OrderSeq:
			return 1
		}
		return 0
	})
}

// ScrambleUpdates deterministically permutes updates by a hash of their
// order keys — the unordered baseline's arbitrary application order.
func ScrambleUpdates(updates []Update) {
	slices.SortStableFunc(updates, func(a, b Update) int {
		ka, kb := scrambleKey(a.OrderSeq), scrambleKey(b.OrderSeq)
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		}
		return 0
	})
}

// scrambleKey is an integer hash (splitmix64 finalizer) giving a
// deterministic but order-destroying permutation key.
func scrambleKey(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
