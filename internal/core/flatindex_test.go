package core

import (
	"math"
	"testing"

	"diststream/internal/vector"
)

func TestBuildFlatIndex(t *testing.T) {
	mcs := []MicroCluster{
		&toyMC{Id: 7, Sum: vector.Vector{1, 0}, W: 1},
		&toyMC{Id: 3, Sum: vector.Vector{0, 4}, W: 1},
		&toyMC{Id: 9, Sum: vector.Vector{10, 10}, W: 1},
	}
	idx := BuildFlatIndex(mcs)
	if idx.Len() != 3 || idx.Centers.Rows != 3 || idx.Centers.Cols != 2 {
		t.Fatalf("unexpected index shape: %+v", idx)
	}
	if i, ok := idx.IndexOf(3); !ok || i != 1 {
		t.Errorf("IndexOf(3) = %d, %v", i, ok)
	}
	if _, ok := idx.IndexOf(42); ok {
		t.Error("IndexOf(42) found a row")
	}
	best, d := idx.Nearest(vector.Vector{0, 3})
	if best != 1 || d != 1 {
		t.Errorf("Nearest = (%d, %v), want (1, 1)", best, d)
	}
	if idx.Norms[2] != 200 {
		t.Errorf("Norms[2] = %v, want 200", idx.Norms[2])
	}
	if got := idx.Row(0); got[0] != 1 || got[1] != 0 {
		t.Errorf("Row(0) = %v", got)
	}
}

func TestBuildFlatIndexEmpty(t *testing.T) {
	idx := BuildFlatIndex(nil)
	if idx.Len() != 0 {
		t.Fatalf("empty index Len = %d", idx.Len())
	}
	if best, d := idx.Nearest(vector.Vector{1}); best != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty Nearest = (%d, %v)", best, d)
	}
}
