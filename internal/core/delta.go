package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"diststream/internal/mbsp"
)

// This file implements delta model broadcast: instead of shipping the
// whole frozen snapshot to every worker every batch, the driver ships
// only the micro-clusters created, updated or removed since the previous
// broadcast, and the worker rebuilds the next snapshot from its current
// one. Correctness rests on three pillars:
//
//   - the diff is computed against the exact clone list last broadcast,
//     with per-algorithm bit-exact equality, so an unchanged micro-cluster
//     on the worker is identical to the driver's copy;
//   - the worker rebuilds the snapshot through the same NewSnapshot the
//     driver uses, so the worker-visible snapshot is bit-identical to a
//     full broadcast;
//   - a checksum over the resulting micro-cluster set catches any base
//     mismatch, and every failure (missing base, unknown algorithm,
//     checksum mismatch) makes the executor resend the full snapshot.

// SnapshotDiffer is an optional Algorithm capability: producing and
// applying snapshot deltas for the delta broadcast path. All shipped
// algorithms implement it via the generic DiffMCLists/ApplyMCDelta
// helpers plus a typed, bit-exact micro-cluster equality.
type SnapshotDiffer interface {
	// DiffState computes the delta from the previously broadcast clone
	// list to the new one. ok is false when a delta would not be smaller
	// than the full snapshot (e.g. decay touched every micro-cluster), in
	// which case the caller broadcasts the full snapshot.
	DiffState(old, new []MicroCluster) (d *SnapshotDelta, ok bool)
	// ApplyDelta rebuilds the new clone list from the previous one and a
	// delta. It must fail when old is not the base d was computed from.
	ApplyDelta(old []MicroCluster, d *SnapshotDelta) ([]MicroCluster, error)
}

// MCLister is implemented by algorithm snapshots that expose their
// admission-ordered micro-cluster list; the worker-side delta apply needs
// it to recover the base list from the stored snapshot. All shipped
// snapshots implement it.
type MCLister interface {
	ListMCs() []MicroCluster
}

// SnapshotDelta is the difference between two consecutively broadcast
// model snapshots. It implements mbsp.BroadcastDelta: applied to the
// worker's current snapshot it yields the next one, rebuilt through the
// algorithm's own NewSnapshot so the result is bit-identical to a full
// broadcast.
type SnapshotDelta struct {
	// Params reconstructs the algorithm on the worker (the apply needs
	// NewSnapshot), independent of the config broadcast.
	Params Params
	// FromVersion and Version are the pipeline's broadcast sequence
	// numbers this delta spans, for observability; the executor tracks
	// its own per-worker versions.
	FromVersion, Version uint64
	// Order lists the new snapshot's micro-cluster ids in admission
	// order; it fully determines membership.
	Order []uint64
	// Removed lists ids present in the base but absent from the new
	// snapshot (redundant with Order; kept for validation and stats).
	Removed []uint64
	// Upserts holds the created or changed micro-clusters, in Order
	// order.
	Upserts []MicroCluster
	// Checksum is ChecksumMCs over the new snapshot's full list; a
	// mismatch after apply means the base was not what the driver
	// assumed, and the executor falls back to the full snapshot.
	Checksum uint64
}

var _ mbsp.BroadcastDelta = (*SnapshotDelta)(nil)

// deltaAlgos is the algorithm registry delta application resolves
// factories against. RegisterOps stores the registry here, which both the
// driver and every worker binary call; concurrent systems all register
// the shipped algorithms, so last-wins is benign.
var deltaAlgos atomic.Pointer[AlgorithmRegistry]

// ApplyDelta implements mbsp.BroadcastDelta: it rebuilds the next
// snapshot from the worker's current one. Any failure is a signal for the
// executor to resend the full snapshot, never a correctness hazard.
func (d *SnapshotDelta) ApplyDelta(old mbsp.Item) (mbsp.Item, error) {
	lister, ok := old.(MCLister)
	if !ok {
		return nil, fmt.Errorf("core: delta base is %T, which exposes no micro-cluster list", old)
	}
	algos := deltaAlgos.Load()
	if algos == nil {
		return nil, errors.New("core: delta apply before RegisterOps: no algorithm registry")
	}
	algo, err := algos.New(d.Params)
	if err != nil {
		return nil, err
	}
	var mcs []MicroCluster
	if differ, ok := algo.(SnapshotDiffer); ok {
		mcs, err = differ.ApplyDelta(lister.ListMCs(), d)
	} else {
		mcs, err = ApplyMCDelta(lister.ListMCs(), d)
	}
	if err != nil {
		return nil, err
	}
	return algo.NewSnapshot(mcs), nil
}

// DiffMCLists computes the generic part of a snapshot delta: which
// micro-clusters of new are absent from or changed against old (per the
// algorithm's bit-exact equal), which old ids disappeared, and the new
// admission order. ok is false when shipping the delta would not beat the
// full snapshot — every micro-cluster changed, as happens each batch for
// algorithms whose global update decays the whole model — so the caller
// falls back to the full broadcast and nothing regresses.
func DiffMCLists(old, new []MicroCluster, equal func(a, b MicroCluster) bool) (*SnapshotDelta, bool) {
	oldByID := make(map[uint64]MicroCluster, len(old))
	for _, mc := range old {
		oldByID[mc.ID()] = mc
	}
	d := &SnapshotDelta{Order: make([]uint64, len(new))}
	for i, mc := range new {
		id := mc.ID()
		d.Order[i] = id
		if base, ok := oldByID[id]; ok && equal(base, mc) {
			continue
		}
		d.Upserts = append(d.Upserts, mc)
	}
	if len(d.Upserts) >= len(new) {
		return nil, false
	}
	newIDs := make(map[uint64]struct{}, len(new))
	for _, id := range d.Order {
		newIDs[id] = struct{}{}
	}
	for _, mc := range old {
		if _, ok := newIDs[mc.ID()]; !ok {
			d.Removed = append(d.Removed, mc.ID())
		}
	}
	d.Checksum = ChecksumMCs(new)
	return d, true
}

// ApplyMCDelta rebuilds the new clone list from the base list and a
// delta. Unchanged micro-clusters are carried over by reference — safe
// because tasks clone before mutating — and the checksum verifies the
// result matches the driver's list exactly.
func ApplyMCDelta(old []MicroCluster, d *SnapshotDelta) ([]MicroCluster, error) {
	oldByID := make(map[uint64]MicroCluster, len(old))
	for _, mc := range old {
		oldByID[mc.ID()] = mc
	}
	for _, id := range d.Removed {
		if _, ok := oldByID[id]; !ok {
			return nil, fmt.Errorf("core: delta removes micro-cluster %d, which the base does not hold", id)
		}
	}
	upserts := make(map[uint64]MicroCluster, len(d.Upserts))
	for _, mc := range d.Upserts {
		upserts[mc.ID()] = mc
	}
	out := make([]MicroCluster, len(d.Order))
	for i, id := range d.Order {
		if mc, ok := upserts[id]; ok {
			out[i] = mc
			continue
		}
		mc, ok := oldByID[id]
		if !ok {
			return nil, fmt.Errorf("core: delta expects micro-cluster %d in the base, which does not hold it", id)
		}
		out[i] = mc
	}
	if sum := ChecksumMCs(out); sum != d.Checksum {
		return nil, fmt.Errorf("core: delta checksum mismatch: got %#x, want %#x", sum, d.Checksum)
	}
	return out, nil
}

// BitsEqual reports bit-pattern equality of two float64s. Delta equality
// must be bit-exact, not numeric: ==(−0, +0) is true but their checksums
// differ, and a "numerically equal" carry-over would make every apply
// fail its checksum and degrade to permanent full broadcasts.
func BitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// VecBitsEqual reports element-wise bit-pattern equality of two vectors.
func VecBitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// ChecksumMCs hashes the observable content of a micro-cluster list —
// ids, float bit patterns of weight, timestamps and centers, in order —
// with FNV-1a. Driver and worker compute it over what should be the same
// list, so any divergence (a stale or foreign base) surfaces as a
// mismatch.
func ChecksumMCs(mcs []MicroCluster) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(len(mcs)))
	for _, mc := range mcs {
		mix(mc.ID())
		mix(math.Float64bits(mc.Weight()))
		mix(math.Float64bits(float64(mc.CreatedAt())))
		mix(math.Float64bits(float64(mc.LastUpdated())))
		center := mc.Center()
		mix(uint64(len(center)))
		for _, x := range center {
			mix(math.Float64bits(x))
		}
	}
	return h
}
