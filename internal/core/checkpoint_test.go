package core

import (
	"errors"
	"reflect"
	"testing"

	"diststream/internal/checkpoint"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// errKill simulates a driver crash: the OnBatch hook returns it after a
// chosen batch, aborting the run mid-stream the same way a killed
// process would (the last durable state is the latest checkpoint).
var errKill = errors.New("injected driver crash")

// toyPipeline builds a checkpoint-capable toy pipeline over a fresh
// local engine. killAfter > 0 makes the run fail after that many
// processed batches.
func toyPipeline(t *testing.T, dir string, every, killAfter int) *Pipeline {
	t.Helper()
	cfg := Config{
		Algorithm:     newToyAlgo(),
		Engine:        newToyEngine(t, 4),
		BatchInterval: 1,
		InitRecords:   50,
	}
	if dir != "" {
		cfg.Checkpoint = &CheckpointConfig{Dir: dir, EveryNBatches: every}
	}
	if killAfter > 0 {
		batches := 0
		cfg.OnBatch = func(stream.Batch, *Model) error {
			batches++
			if batches >= killAfter {
				return errKill
			}
			return nil
		}
	}
	pl, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func modelContents(t *testing.T, m *Model) []*toyMC {
	t.Helper()
	out := make([]*toyMC, 0, m.Len())
	for _, mc := range m.List() {
		out = append(out, mc.(*toyMC))
	}
	return out
}

func TestCheckpointResumeCrashEquivalence(t *testing.T) {
	recs := twoBlobStream(1000, 100)

	// Reference: the undisturbed run.
	ref := toyPipeline(t, "", 0, 0)
	refStats, err := ref.Run(stream.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: checkpoint every batch, crash after the third.
	dir := t.TempDir()
	killed := toyPipeline(t, dir, 1, 3)
	if _, err := killed.Run(stream.NewSliceSource(recs)); !errors.Is(err, errKill) {
		t.Fatalf("interrupted run: err = %v, want injected crash", err)
	}
	if entries, _ := checkpoint.List(dir); len(entries) == 0 {
		t.Fatal("no checkpoints written before the crash")
	}

	// Resume into a fresh pipeline and replay the stream from the start.
	resumed := toyPipeline(t, dir, 1, 0)
	if err := resumed.ResumeFrom(dir); err != nil {
		t.Fatal(err)
	}
	resStats, err := resumed.Run(stream.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical final model: same micro-clusters in the same
	// admission order, equal to the last float and log entry.
	want := modelContents(t, ref.Model())
	got := modelContents(t, resumed.Model())
	if !reflect.DeepEqual(want, got) {
		t.Errorf("resumed model differs from uninterrupted run:\nwant %+v\ngot  %+v", want, got)
	}
	if ref.Model().Now() != resumed.Model().Now() {
		t.Errorf("virtual clock differs: %v vs %v", ref.Model().Now(), resumed.Model().Now())
	}

	// Accumulated statistics line up too (wall times excluded).
	type counts struct {
		Batches, Records, InitRecords, UpdatedMCs, CreatedMCs, OutlierRecords int
	}
	wc := counts{refStats.Batches, refStats.Records, refStats.InitRecords,
		refStats.UpdatedMCs, refStats.CreatedMCs, refStats.OutlierRecords}
	gc := counts{resStats.Batches, resStats.Records, resStats.InitRecords,
		resStats.UpdatedMCs, resStats.CreatedMCs, resStats.OutlierRecords}
	if wc != gc {
		t.Errorf("stats diverged: want %+v, got %+v", wc, gc)
	}
	if resStats.Checkpoints == 0 {
		t.Error("resumed run reported no checkpoints")
	}
}

func TestCheckpointCadenceAndPrune(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Algorithm:     newToyAlgo(),
		Engine:        newToyEngine(t, 2),
		BatchInterval: 1,
		InitRecords:   50,
		Checkpoint:    &CheckpointConfig{Dir: dir, EveryNBatches: 3, Keep: 2},
	}
	pl, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.Run(stream.NewSliceSource(twoBlobStream(1000, 100)))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := checkpoint.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 || len(entries) > 2 {
		t.Fatalf("checkpoint files = %d, want 1..2 after pruning with Keep=2", len(entries))
	}
	for _, e := range entries {
		if e.Seq%3 != 0 {
			t.Errorf("checkpoint at batch %d violates EveryNBatches=3", e.Seq)
		}
	}
	if stats.Checkpoints < len(entries) {
		t.Errorf("Checkpoints = %d, fewer than files on disk (%d)", stats.Checkpoints, len(entries))
	}
}

func TestResumeRejectsMismatchesAndBadState(t *testing.T) {
	dir := t.TempDir()
	killed := toyPipeline(t, dir, 1, 2)
	if _, err := killed.Run(stream.NewSliceSource(twoBlobStream(1000, 100))); !errors.Is(err, errKill) {
		t.Fatal("setup run did not crash as arranged")
	}

	// Different algorithm parameters must be rejected.
	diff, err := NewPipeline(Config{
		Algorithm:     &toyAlgo{radius: 9.9, beta: 1.2, minWeight: 0.05},
		Engine:        newToyEngine(t, 2),
		BatchInterval: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := diff.ResumeFrom(dir); err == nil {
		t.Error("resume with different parameters accepted")
	}

	// A pipeline that already processed records must be rejected.
	used := toyPipeline(t, "", 0, 0)
	if _, err := used.Run(stream.NewSliceSource(twoBlobStream(200, 100))); err != nil {
		t.Fatal(err)
	}
	if err := used.ResumeFrom(dir); err == nil {
		t.Error("resume on a used pipeline accepted")
	}

	// Empty directory surfaces ErrNoCheckpoint.
	fresh := toyPipeline(t, "", 0, 0)
	if err := fresh.ResumeFrom(t.TempDir()); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Errorf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}

	// A stream shorter than the checkpointed offset fails the resumed run
	// instead of silently continuing from the wrong position.
	short := toyPipeline(t, dir, 1, 0)
	if err := short.ResumeFrom(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := short.Run(stream.NewSliceSource(twoBlobStream(10, 100))); err == nil {
		t.Error("resume over a too-short stream succeeded")
	}
}

func TestModelStateCodecRejectsCorruptInput(t *testing.T) {
	algo := newToyAlgo()
	m := NewModel()
	m.Add(algo.Create(stream.Record{Seq: 1, Timestamp: 1, Values: vector.Vector{1, 2}}))
	m.Add(algo.Create(stream.Record{Seq: 2, Timestamp: 2, Values: vector.Vector{3, 4}}))
	m.SetNow(vclock.Time(2))
	data, err := algo.EncodeState(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := algo.DecodeState(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(modelContents(t, m), modelContents(t, back)) || back.Now() != m.Now() {
		t.Error("round trip changed the model")
	}
	// Restored models must keep allocating fresh ids.
	id := back.Add(algo.Create(stream.Record{Seq: 3, Timestamp: 3, Values: vector.Vector{5, 6}}))
	if back.Get(id) == nil || len(back.IDs()) != 3 {
		t.Error("restored model cannot admit new micro-clusters")
	}
	for _, bad := range [][]byte{nil, {}, []byte("garbage"), data[:len(data)/2]} {
		if _, err := algo.DecodeState(bad); err == nil {
			t.Errorf("corrupt input %q decoded", bad)
		}
	}
}
