package core

import (
	"fmt"
	"math"

	"diststream/internal/vclock"
)

// MaxBatchSeconds returns the maximum batch interval derived in §IV-D: to
// bound the decay a record's increment suffers within one batch, require
// beta^-dt > alpha, i.e. dt < log_beta(1/alpha). With alpha = 0.01 and
// beta = 1.2 this is ≈ 25 seconds, the paper's example.
func MaxBatchSeconds(alpha, beta float64) (vclock.Duration, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("core: alpha %v must be in (0,1)", alpha)
	}
	if beta <= 1 {
		return 0, fmt.Errorf("core: beta %v must be > 1", beta)
	}
	return vclock.Duration(math.Log(1/alpha) / math.Log(beta)), nil
}

// ValidateBatchInterval checks a batch interval against the §IV-D bound.
// It returns nil when alpha/beta are unset (0), treating the bound as
// disabled.
func ValidateBatchInterval(interval vclock.Duration, alpha, beta float64) error {
	if alpha == 0 && beta == 0 {
		return nil
	}
	limit, err := MaxBatchSeconds(alpha, beta)
	if err != nil {
		return err
	}
	if interval > limit {
		return fmt.Errorf("core: batch interval %.3gs exceeds decay-bounded maximum %.3gs (alpha=%v, beta=%v)",
			float64(interval), float64(limit), alpha, beta)
	}
	return nil
}
