// Package core implements DistStream's contribution: the order-aware
// mini-batch update model (paper §IV) and its parallelization (§V).
//
// A batch of records is processed in three steps on an mbsp engine:
//
//  1. assign — record-based parallelism: the micro-cluster model is
//     broadcast, records are dealt round-robin to tasks, and each task
//     finds the closest micro-cluster for its records (§V-A);
//  2. local update — model-based parallelism: (micro-cluster, record)
//     pairs are shuffled by micro-cluster id, each task sorts a
//     micro-cluster's absorbed records by arrival order and folds their
//     increments one at a time (§IV-C1, §V-B); outlier records create new
//     micro-clusters, pre-merged within the task (§V-C);
//  3. global update — a driver step that applies the collected updates
//     to the live model in created/updated-time order (§IV-C2) via the
//     algorithm's GlobalUpdate; with Config.GlobalShards set, algorithms
//     implementing ShardedGlobalUpdater run the per-MC phase as parallel
//     per-shard reducers plus a serialized cross-shard residue, with
//     byte-identical results (see shard.go).
//
// The four developer APIs the paper names — micro-cluster representation,
// distance computation, local update, global update — correspond to the
// MicroCluster interface, Snapshot.Nearest, Algorithm.Update/Create, and
// Algorithm.GlobalUpdate.
package core

import (
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// MicroCluster is the algorithm-specific sketch unit q = {S, T, N}: a
// statistical summary with spatial locality, temporal locality, and a
// record count. Implementations must have exported fields (they travel
// over gob to remote workers).
type MicroCluster interface {
	// ID returns the model-assigned identifier.
	ID() uint64
	// SetID assigns the identifier; called by the model when a
	// micro-cluster created in a worker task is admitted at the driver.
	SetID(id uint64)
	// Center returns the current centroid.
	Center() vector.Vector
	// Weight returns the (possibly decayed) record mass N.
	Weight() float64
	// CreatedAt returns the creation time.
	CreatedAt() vclock.Time
	// LastUpdated returns the timestamp of the last absorbed record or
	// decay application.
	LastUpdated() vclock.Time
	// Clone returns a deep copy.
	Clone() MicroCluster
}

// Snapshot is an immutable view of the micro-cluster set, broadcast to
// assign tasks at the start of each batch. Implementations embed whatever
// search structure the algorithm uses: a linear scan for CluStream and
// DenStream, the grid map for D-Stream, the CF tree for ClusTree.
type Snapshot interface {
	// Nearest returns the closest micro-cluster's id and whether rec
	// falls within its maximum boundary (i.e. can be absorbed). ok is
	// false when the snapshot is empty.
	Nearest(rec stream.Record) (id uint64, absorbable bool, ok bool)
	// Get returns the micro-cluster with the given id, or nil.
	Get(id uint64) MicroCluster
	// Len returns the number of micro-clusters in the snapshot.
	Len() int
}

// UpdateKind discriminates local-update outputs.
type UpdateKind int

// The two kinds of local-update output (paper Figure 5: updated
// micro-clusters q' and newly created outlier micro-clusters q”).
const (
	// KindUpdated marks an existing micro-cluster updated with absorbed
	// records.
	KindUpdated UpdateKind = iota + 1
	// KindCreated marks a new micro-cluster created from outlier records.
	KindCreated
)

// Update is one local-update result shipped to the global update step.
type Update struct {
	Kind UpdateKind
	// MC is the updated clone (KindUpdated, carrying the stale base plus
	// this batch's increments) or the new outlier micro-cluster
	// (KindCreated, with id still unassigned).
	MC MicroCluster
	// Absorbed counts the records folded into MC during this batch.
	Absorbed int
	// OrderTime is the order-aware global update key (§IV-C2): the last
	// absorbed record's timestamp for updates, the first (creating)
	// record's timestamp for creations.
	OrderTime vclock.Time
	// OrderSeq breaks OrderTime ties with the arrival sequence number of
	// the record that determined OrderTime.
	OrderSeq uint64
}

// Params is the serializable algorithm configuration. It travels to
// remote workers, which reconstruct the algorithm from it via the
// algorithm registry — the analogue of Spark shipping the application
// configuration alongside the job.
type Params struct {
	// Name selects the algorithm factory.
	Name string
	// Dim is the record dimensionality.
	Dim int
	// Floats and Ints hold algorithm-specific settings.
	Floats map[string]float64
	Ints   map[string]int
}

// Float returns the named float parameter or def when absent.
func (p Params) Float(key string, def float64) float64 {
	if v, ok := p.Floats[key]; ok {
		return v
	}
	return def
}

// Int returns the named int parameter or def when absent.
func (p Params) Int(key string, def int) int {
	if v, ok := p.Ints[key]; ok {
		return v
	}
	return def
}

// Clone deep-copies the params.
func (p Params) Clone() Params {
	out := Params{Name: p.Name, Dim: p.Dim}
	if p.Floats != nil {
		out.Floats = make(map[string]float64, len(p.Floats))
		for k, v := range p.Floats {
			out.Floats[k] = v
		}
	}
	if p.Ints != nil {
		out.Ints = make(map[string]int, len(p.Ints))
		for k, v := range p.Ints {
			out.Ints[k] = v
		}
	}
	return out
}

// Algorithm is the strategy object a stream clustering algorithm
// implements to run on DistStream. Implementations are stateless: all
// mutable state lives in micro-clusters and the Model, so the same
// algorithm value (or a reconstruction from Params) can serve any task.
type Algorithm interface {
	// Name returns the registry name (e.g. "clustream").
	Name() string
	// Params returns the serializable configuration sufficient to
	// reconstruct this algorithm on a remote worker.
	Params() Params
	// Init builds the initial micro-clusters from the warm-up sample
	// (the paper: batch-mode clustering such as k-means over the first m
	// records). IDs are assigned by the caller's model afterwards.
	Init(records []stream.Record) ([]MicroCluster, error)
	// NewSnapshot wraps micro-clusters in the algorithm's search
	// structure. The caller decides whether mcs are live references (the
	// sequential runner) or frozen clones (the mini-batch pipeline).
	NewSnapshot(mcs []MicroCluster) Snapshot
	// Update folds one record into mc, applying the algorithm's decay
	// and additivity rule q' = λq + Δx (§II-B). The caller guarantees
	// arrival order in order-aware mode.
	Update(mc MicroCluster, rec stream.Record)
	// Create builds a new micro-cluster seeded by an outlier record.
	Create(rec stream.Record) MicroCluster
	// AbsorbIntoNew reports whether rec may be folded into the freshly
	// created micro-cluster mc; used by the pre-merge optimization to
	// coalesce a batch's outliers (§V-C).
	AbsorbIntoNew(mc MicroCluster, rec stream.Record) bool
	// GlobalUpdate applies the batch's updates to the live model at
	// batch end: decay untouched micro-clusters, admit/replace the
	// updated ones, delete outdated ones, merge where the algorithm's
	// budget requires. updates arrive already ordered (or deliberately
	// unordered for the baseline).
	GlobalUpdate(model *Model, updates []Update, now vclock.Time) error
	// Offline computes the final macro-clustering from the model (the
	// paper's offline phase).
	Offline(model *Model) (*Clustering, error)
}

// MacroCluster is one offline-phase output cluster.
type MacroCluster struct {
	// Label is the macro-cluster id, 0-based.
	Label int
	// Members lists the micro-cluster ids grouped into this macro.
	Members []uint64
	// Center is the weight-weighted centroid of the members.
	Center vector.Vector
	// Weight is the summed member weight.
	Weight float64
}

// Clustering is the offline phase result: macro-clusters plus a
// nearest-member assignment function used by quality evaluation.
type Clustering struct {
	Macros []MacroCluster

	// flattened member view for assignment
	memberCenters []vector.Vector
	memberLabels  []int
	// noiseCutoff, when positive, marks points farther than this from
	// every member center as noise (-1). Algorithms set it to their
	// absorb-boundary scale so the offline assignment mirrors the online
	// outlier decision — the channel through which lagging models produce
	// the paper's "missed records".
	noiseCutoff float64
}

// NewClustering builds a Clustering from macro clusters and the member
// micro-cluster centers backing them. centers[i] belongs to the macro
// with label labels[i].
func NewClustering(macros []MacroCluster, centers []vector.Vector, labels []int) *Clustering {
	return &Clustering{Macros: macros, memberCenters: centers, memberLabels: labels}
}

// SetNoiseCutoff configures the maximum assignment distance; points
// farther than cutoff from every member center are assigned -1 (noise).
// A non-positive cutoff disables the check.
func (c *Clustering) SetNoiseCutoff(cutoff float64) { c.noiseCutoff = cutoff }

// NoiseCutoff returns the configured maximum assignment distance.
func (c *Clustering) NoiseCutoff() float64 { return c.noiseCutoff }

// NumClusters returns the number of macro-clusters.
func (c *Clustering) NumClusters() int { return len(c.Macros) }

// Assign returns the macro-cluster label of the nearest member center;
// -1 when the clustering is empty or the point is beyond the noise
// cutoff.
func (c *Clustering) Assign(v vector.Vector) int {
	best := -1
	bestD := -1.0
	for i, center := range c.memberCenters {
		d := vector.SquaredDistance(v, center)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return -1
	}
	if c.noiseCutoff > 0 && bestD > c.noiseCutoff*c.noiseCutoff {
		return -1
	}
	return c.memberLabels[best]
}
