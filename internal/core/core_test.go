package core

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"

	"diststream/internal/mbsp"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// --- toy algorithm -------------------------------------------------------
//
// A deliberately simple algorithm that still exercises every pipeline
// mechanism: micro-clusters are decayed centroids with a fixed absorb
// radius; the decay makes update order observable; global update replaces
// updated MCs, admits created ones, decays untouched ones and deletes
// those below a weight threshold.

type toyMC struct {
	Id      uint64
	Sum     vector.Vector // decayed weighted sum
	W       float64       // decayed weight
	Created vclock.Time
	Updated vclock.Time
	UpdLog  []uint64 // seq numbers folded in, records observed update order
}

func (m *toyMC) ID() uint64               { return m.Id }
func (m *toyMC) SetID(id uint64)          { m.Id = id }
func (m *toyMC) Weight() float64          { return m.W }
func (m *toyMC) CreatedAt() vclock.Time   { return m.Created }
func (m *toyMC) LastUpdated() vclock.Time { return m.Updated }
func (m *toyMC) Center() vector.Vector {
	if m.W == 0 {
		return m.Sum.Clone()
	}
	return m.Sum.Clone().Scale(1 / m.W)
}
func (m *toyMC) Clone() MicroCluster {
	out := *m
	out.Sum = m.Sum.Clone()
	out.UpdLog = append([]uint64(nil), m.UpdLog...)
	return &out
}

type toyAlgo struct {
	radius    float64
	beta      float64 // decay base, >1
	minWeight float64
}

func newToyAlgo() *toyAlgo {
	return &toyAlgo{radius: 2.0, beta: 1.2, minWeight: 0.05}
}

func (a *toyAlgo) Name() string { return "toy" }
func (a *toyAlgo) Params() Params {
	return Params{Name: "toy", Floats: map[string]float64{
		"radius": a.radius, "beta": a.beta, "minWeight": a.minWeight,
	}}
}

func (a *toyAlgo) Init(records []stream.Record) ([]MicroCluster, error) {
	var out []MicroCluster
	for _, rec := range records {
		absorbed := false
		for _, mc := range out {
			if vector.Distance(rec.Values, mc.Center()) <= a.radius {
				a.Update(mc, rec)
				absorbed = true
				break
			}
		}
		if !absorbed {
			out = append(out, a.Create(rec))
		}
	}
	return out, nil
}

func (a *toyAlgo) NewSnapshot(mcs []MicroCluster) Snapshot {
	return &toySnapshot{mcs: mcs, radius: a.radius}
}

func (a *toyAlgo) Update(mc MicroCluster, rec stream.Record) {
	m := mc.(*toyMC)
	dt := float64(rec.Timestamp - m.Updated)
	if dt < 0 {
		dt = 0 // the unordered baseline hits this: stale records don't decay
	}
	lambda := math.Pow(a.beta, -dt)
	m.Sum.Scale(lambda).Add(rec.Values)
	m.W = m.W*lambda + 1
	if rec.Timestamp > m.Updated {
		m.Updated = rec.Timestamp
	}
	m.UpdLog = append(m.UpdLog, rec.Seq)
}

func (a *toyAlgo) Create(rec stream.Record) MicroCluster {
	return &toyMC{
		Sum:     rec.Values.Clone(),
		W:       1,
		Created: rec.Timestamp,
		Updated: rec.Timestamp,
		UpdLog:  []uint64{rec.Seq},
	}
}

func (a *toyAlgo) AbsorbIntoNew(mc MicroCluster, rec stream.Record) bool {
	return vector.Distance(rec.Values, mc.Center()) <= a.radius
}

func (a *toyAlgo) EncodeState(m *Model) ([]byte, error) {
	gob.Register(&toyMC{})
	return m.EncodeState()
}

func (a *toyAlgo) DecodeState(data []byte) (*Model, error) {
	gob.Register(&toyMC{})
	m, err := DecodeModelState(data)
	if err != nil {
		return nil, err
	}
	for _, mc := range m.List() {
		if _, ok := mc.(*toyMC); !ok {
			return nil, fmt.Errorf("toy: micro-cluster %T is not a toy micro-cluster", mc)
		}
	}
	return m, nil
}

func (a *toyAlgo) GlobalUpdate(model *Model, updates []Update, now vclock.Time) error {
	touched := map[uint64]bool{}
	for _, u := range updates {
		switch u.Kind {
		case KindUpdated:
			if model.Get(u.MC.ID()) == nil {
				model.Add(u.MC) // base was deleted meanwhile; re-admit
			} else if err := model.Replace(u.MC); err != nil {
				return err
			}
			touched[u.MC.ID()] = true
		case KindCreated:
			model.Add(u.MC)
			touched[u.MC.ID()] = true
		default:
			return fmt.Errorf("toy: unknown update kind %d", u.Kind)
		}
	}
	// Decay untouched micro-clusters and delete the faded.
	for _, mc := range model.List() {
		m := mc.(*toyMC)
		if !touched[m.Id] {
			dt := float64(now - m.Updated)
			if dt > 0 {
				lambda := math.Pow(a.beta, -dt)
				m.Sum.Scale(lambda)
				m.W *= lambda
				m.Updated = now
			}
		}
		if m.W < a.minWeight {
			model.Remove(m.Id)
		}
	}
	return nil
}

func (a *toyAlgo) Offline(model *Model) (*Clustering, error) {
	mcs := model.List()
	centers := make([]vector.Vector, len(mcs))
	labels := make([]int, len(mcs))
	macros := make([]MacroCluster, len(mcs))
	for i, mc := range mcs {
		centers[i] = mc.Center()
		labels[i] = i
		macros[i] = MacroCluster{
			Label:   i,
			Members: []uint64{mc.ID()},
			Center:  mc.Center(),
			Weight:  mc.Weight(),
		}
	}
	return NewClustering(macros, centers, labels), nil
}

type toySnapshot struct {
	mcs    []MicroCluster
	radius float64
}

func (s *toySnapshot) Nearest(rec stream.Record) (uint64, bool, bool) {
	best := -1
	bestD := math.Inf(1)
	for i, mc := range s.mcs {
		if d := vector.Distance(rec.Values, mc.Center()); d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return 0, false, false
	}
	return s.mcs[best].ID(), bestD <= s.radius, true
}

func (s *toySnapshot) Get(id uint64) MicroCluster {
	for _, mc := range s.mcs {
		if mc.ID() == id {
			return mc
		}
	}
	return nil
}

func (s *toySnapshot) Len() int { return len(s.mcs) }

// --- helpers -------------------------------------------------------------

func newToyEngine(t testing.TB, p int) *mbsp.Engine {
	t.Helper()
	return newToyEngineCfg(t, mbsp.LocalConfig{Parallelism: p})
}

// newToyEngineCfg builds a toy-algorithm engine over a local executor with
// explicit fault-injection settings (cfg.Registry is filled in here).
func newToyEngineCfg(t testing.TB, cfg mbsp.LocalConfig) *mbsp.Engine {
	t.Helper()
	reg := mbsp.NewRegistry()
	algos := NewAlgorithmRegistry()
	if err := algos.Register("toy", func(params Params) (Algorithm, error) {
		return &toyAlgo{
			radius:    params.Float("radius", 2),
			beta:      params.Float("beta", 1.2),
			minWeight: params.Float("minWeight", 0.05),
		}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterOps(reg, algos); err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	exec, err := mbsp.NewLocalExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = exec.Close() })
	eng, err := mbsp.NewEngine(exec)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// twoBlobStream emits records alternating between two well-separated
// blobs at the given rate.
func twoBlobStream(n int, rate float64) []stream.Record {
	recs := make([]stream.Record, n)
	for i := range recs {
		var v vector.Vector
		label := i % 2
		if label == 0 {
			v = vector.Vector{0 + 0.1*float64(i%5), 0}
		} else {
			v = vector.Vector{20 + 0.1*float64(i%5), 20}
		}
		recs[i] = stream.Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(float64(i) / rate),
			Values:    v,
			Label:     label,
		}
	}
	return recs
}

// --- tests ----------------------------------------------------------------

func TestPipelineConfigValidation(t *testing.T) {
	eng := newToyEngine(t, 2)
	algo := newToyAlgo()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no algorithm", Config{Engine: eng, BatchInterval: 1}},
		{"no engine", Config{Algorithm: algo, BatchInterval: 1}},
		{"bad interval", Config{Algorithm: algo, Engine: eng}},
		{"bad order", Config{Algorithm: algo, Engine: eng, BatchInterval: 1, Order: OrderMode(9)}},
		{"batch exceeds decay bound", Config{
			Algorithm: algo, Engine: eng, BatchInterval: 60,
			DecayAlpha: 0.01, DecayBeta: 1.2,
		}},
	}
	for _, c := range cases {
		if _, err := NewPipeline(c.cfg); err == nil {
			t.Errorf("%s: config accepted", c.name)
		}
	}
	// Valid config with defaults.
	pl, err := NewPipeline(Config{Algorithm: algo, Engine: eng, BatchInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pl.cfg.Order != OrderAware || pl.cfg.InitRecords != 500 {
		t.Errorf("defaults not applied: %+v", pl.cfg)
	}
}

func TestPipelineRunClustersTwoBlobs(t *testing.T) {
	eng := newToyEngine(t, 4)
	pl, err := NewPipeline(Config{
		Algorithm:     newToyAlgo(),
		Engine:        eng,
		BatchInterval: 1,
		InitRecords:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := twoBlobStream(1000, 100)
	stats, err := pl.Run(stream.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Initialized() {
		t.Fatal("pipeline not initialized")
	}
	if stats.Records != 950 {
		t.Errorf("Records = %d, want 950 (1000 - 50 init)", stats.Records)
	}
	if stats.InitRecords != 50 {
		t.Errorf("InitRecords = %d", stats.InitRecords)
	}
	if stats.Batches < 5 {
		t.Errorf("Batches = %d", stats.Batches)
	}
	// The model should hold roughly two micro-clusters (one per blob).
	if n := pl.Model().Len(); n < 2 || n > 6 {
		t.Errorf("model size = %d, want ~2", n)
	}
	// Offline clustering should separate the blobs.
	clustering, err := pl.Offline()
	if err != nil {
		t.Fatal(err)
	}
	a := clustering.Assign(vector.Vector{0, 0})
	b := clustering.Assign(vector.Vector{20, 20})
	if a == b {
		t.Errorf("blobs not separated: both assigned %d", a)
	}
	if stats.Throughput() <= 0 {
		t.Errorf("Throughput = %v", stats.Throughput())
	}
}

func TestPipelineOrderAwareLocalUpdateOrder(t *testing.T) {
	// All records map to one micro-cluster; the update log must be in
	// arrival order even with parallelism > 1.
	eng := newToyEngine(t, 4)
	pl, err := NewPipeline(Config{
		Algorithm:     newToyAlgo(),
		Engine:        eng,
		BatchInterval: 10,
		InitRecords:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]stream.Record, 100)
	for i := range recs {
		recs[i] = stream.Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(float64(i) * 0.05),
			Values:    vector.Vector{0.01 * float64(i%7), 0},
		}
	}
	if _, err := pl.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	if pl.Model().Len() != 1 {
		t.Fatalf("model size = %d, want 1", pl.Model().Len())
	}
	log := pl.Model().List()[0].(*toyMC).UpdLog
	if len(log) != 100 {
		t.Fatalf("update log has %d entries", len(log))
	}
	for i := 1; i < len(log); i++ {
		if log[i] != log[i-1]+1 {
			t.Fatalf("update order broken at %d: %d after %d", i, log[i], log[i-1])
		}
	}
}

func TestPipelineUnorderedScramblesUpdates(t *testing.T) {
	eng := newToyEngine(t, 4)
	pl, err := NewPipeline(Config{
		Algorithm:     newToyAlgo(),
		Engine:        eng,
		BatchInterval: 10,
		InitRecords:   1,
		Order:         OrderUnordered,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]stream.Record, 100)
	for i := range recs {
		recs[i] = stream.Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(float64(i) * 0.05),
			Values:    vector.Vector{0.01 * float64(i%7), 0},
		}
	}
	if _, err := pl.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	log := pl.Model().List()[0].(*toyMC).UpdLog
	inOrder := true
	for i := 1; i < len(log); i++ {
		if log[i] < log[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("unordered mode still processed records in arrival order")
	}
}

func TestPipelineOutliersCreateMicroClusters(t *testing.T) {
	eng := newToyEngine(t, 2)
	pl, err := NewPipeline(Config{
		Algorithm:     newToyAlgo(),
		Engine:        eng,
		BatchInterval: 5,
		InitRecords:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// First 10 records at origin (init), then a burst at (50, 50).
	var recs []stream.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, stream.Record{
			Seq: uint64(i), Timestamp: vclock.Time(float64(i) * 0.1),
			Values: vector.Vector{0, 0},
		})
	}
	for i := 10; i < 40; i++ {
		recs = append(recs, stream.Record{
			Seq: uint64(i), Timestamp: vclock.Time(float64(i) * 0.1),
			Values: vector.Vector{50, 50},
		})
	}
	stats, err := pl.Run(stream.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if stats.CreatedMCs == 0 {
		t.Error("no outlier micro-clusters created")
	}
	if stats.OutlierRecords != 30 {
		t.Errorf("OutlierRecords = %d, want 30", stats.OutlierRecords)
	}
	// Pre-merge should coalesce the burst into few MCs, not 30.
	if stats.CreatedMCs > 8 {
		t.Errorf("CreatedMCs = %d; pre-merge ineffective", stats.CreatedMCs)
	}
}

func TestPipelinePreMergeAblation(t *testing.T) {
	run := func(disable bool) RunStats {
		eng := newToyEngine(t, 2)
		pl, err := NewPipeline(Config{
			Algorithm:       newToyAlgo(),
			Engine:          eng,
			BatchInterval:   100, // single batch
			InitRecords:     1,
			DisablePreMerge: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		var recs []stream.Record
		recs = append(recs, stream.Record{Seq: 0, Timestamp: 0, Values: vector.Vector{0, 0}})
		for i := 1; i <= 20; i++ {
			recs = append(recs, stream.Record{
				Seq: uint64(i), Timestamp: vclock.Time(float64(i) * 0.01),
				Values: vector.Vector{50, 50},
			})
		}
		stats, err := pl.Run(stream.NewSliceSource(recs))
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	with := run(false)
	without := run(true)
	if without.CreatedMCs != 20 {
		t.Errorf("without pre-merge CreatedMCs = %d, want 20 (one per outlier)", without.CreatedMCs)
	}
	if with.CreatedMCs >= without.CreatedMCs {
		t.Errorf("pre-merge did not reduce created MCs: %d vs %d", with.CreatedMCs, without.CreatedMCs)
	}
}

func TestPipelineDeterministicAcrossParallelism(t *testing.T) {
	// Order-aware mode must give identical models for p=1 and p=8.
	finalModel := func(p int) []MicroCluster {
		eng := newToyEngine(t, p)
		pl, err := NewPipeline(Config{
			Algorithm:     newToyAlgo(),
			Engine:        eng,
			BatchInterval: 2,
			InitRecords:   20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pl.Run(stream.NewSliceSource(twoBlobStream(600, 50))); err != nil {
			t.Fatal(err)
		}
		mcs := pl.Model().List()
		sort.Slice(mcs, func(i, j int) bool { return mcs[i].ID() < mcs[j].ID() })
		return mcs
	}
	a := finalModel(1)
	b := finalModel(8)
	if len(a) != len(b) {
		t.Fatalf("model sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		am, bm := a[i].(*toyMC), b[i].(*toyMC)
		if am.W != bm.W || !am.Sum.ApproxEqual(bm.Sum, 1e-9) {
			t.Errorf("mc %d differs across parallelism: W %v vs %v", i, am.W, bm.W)
		}
	}
}

func TestPipelineBatchHook(t *testing.T) {
	eng := newToyEngine(t, 2)
	var hookBatches []int
	pl, err := NewPipeline(Config{
		Algorithm:     newToyAlgo(),
		Engine:        eng,
		BatchInterval: 1,
		InitRecords:   10,
		OnBatch: func(batch stream.Batch, model *Model) error {
			hookBatches = append(hookBatches, batch.Index)
			if model.Len() == 0 {
				return errors.New("empty model in hook")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.Run(stream.NewSliceSource(twoBlobStream(300, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if len(hookBatches) != stats.Batches {
		t.Errorf("hook ran %d times, %d batches", len(hookBatches), stats.Batches)
	}
	// Hook error propagates.
	eng2 := newToyEngine(t, 2)
	pl2, err := NewPipeline(Config{
		Algorithm:     newToyAlgo(),
		Engine:        eng2,
		BatchInterval: 1,
		InitRecords:   10,
		OnBatch: func(stream.Batch, *Model) error {
			return errors.New("stop")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl2.Run(stream.NewSliceSource(twoBlobStream(300, 100))); err == nil {
		t.Error("hook error not propagated")
	}
}

func TestPipelineInitShorterThanStream(t *testing.T) {
	// Stream ends before warm-up fills: model still initializes at EOF.
	eng := newToyEngine(t, 2)
	pl, err := NewPipeline(Config{
		Algorithm:     newToyAlgo(),
		Engine:        eng,
		BatchInterval: 1,
		InitRecords:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.Run(stream.NewSliceSource(twoBlobStream(100, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Initialized() {
		t.Error("pipeline not initialized at EOF")
	}
	if stats.Batches != 0 || stats.Records != 0 {
		t.Errorf("stats = %+v, want all records consumed by init", stats)
	}
	if pl.Model().Len() != 2 {
		t.Errorf("model size = %d, want 2", pl.Model().Len())
	}
}

func TestMaxBatchSeconds(t *testing.T) {
	// Paper example: alpha=0.01, beta=1.2 => ~25 seconds.
	got, err := MaxBatchSeconds(0.01, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if got < 25 || got > 26 {
		t.Errorf("MaxBatchSeconds(0.01, 1.2) = %v, want ~25.3", got)
	}
	if _, err := MaxBatchSeconds(0, 1.2); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := MaxBatchSeconds(1, 1.2); err == nil {
		t.Error("alpha 1 accepted")
	}
	if _, err := MaxBatchSeconds(0.01, 1); err == nil {
		t.Error("beta 1 accepted")
	}
	if err := ValidateBatchInterval(10, 0, 0); err != nil {
		t.Errorf("disabled bound rejected: %v", err)
	}
	if err := ValidateBatchInterval(10, 0.01, 1.2); err != nil {
		t.Errorf("10s under 25s bound rejected: %v", err)
	}
	if err := ValidateBatchInterval(30, 0.01, 1.2); err == nil {
		t.Error("30s over 25s bound accepted")
	}
	if err := ValidateBatchInterval(10, -1, 1.2); err == nil {
		t.Error("invalid alpha accepted by ValidateBatchInterval")
	}
}

func TestModelBasics(t *testing.T) {
	m := NewModel()
	if m.Len() != 0 || m.TotalWeight() != 0 {
		t.Fatal("empty model not empty")
	}
	algo := newToyAlgo()
	mc1 := algo.Create(stream.Record{Seq: 1, Timestamp: 1, Values: vector.Vector{1, 1}})
	mc2 := algo.Create(stream.Record{Seq: 2, Timestamp: 2, Values: vector.Vector{2, 2}})
	id1 := m.Add(mc1)
	id2 := m.Add(mc2)
	if id1 == id2 {
		t.Fatal("duplicate ids")
	}
	if m.Get(id1) != mc1 || m.Get(id2) != mc2 {
		t.Fatal("Get broken")
	}
	if m.Get(999) != nil {
		t.Fatal("Get(999) != nil")
	}
	if got := m.IDs(); len(got) != 2 || got[0] != id1 || got[1] != id2 {
		t.Errorf("IDs = %v", got)
	}
	if m.TotalWeight() != 2 {
		t.Errorf("TotalWeight = %v", m.TotalWeight())
	}
	// Replace.
	repl := mc1.Clone()
	algo.Update(repl, stream.Record{Seq: 3, Timestamp: 3, Values: vector.Vector{1, 1}})
	if err := m.Replace(repl); err != nil {
		t.Fatal(err)
	}
	if m.Get(id1).Weight() <= 1 {
		t.Error("Replace did not take effect")
	}
	ghost := mc2.Clone()
	ghost.SetID(777)
	if err := m.Replace(ghost); err == nil {
		t.Error("Replace of unknown id accepted")
	}
	// Remove preserves order of the rest.
	if !m.Remove(id1) {
		t.Fatal("Remove failed")
	}
	if m.Remove(id1) {
		t.Fatal("double Remove succeeded")
	}
	if m.Len() != 1 || m.List()[0].ID() != id2 {
		t.Errorf("after remove: len=%d", m.Len())
	}
	// Clones are deep.
	clones := m.CloneList()
	clones[0].(*toyMC).Sum[0] = 999
	if m.Get(id2).(*toyMC).Sum[0] == 999 {
		t.Error("CloneList returned shallow copies")
	}
	// Time is monotone.
	m.SetNow(5)
	m.SetNow(3)
	if m.Now() != 5 {
		t.Errorf("Now = %v", m.Now())
	}
}

func TestSortUpdatesByOrderTime(t *testing.T) {
	updates := []Update{
		{OrderTime: 3, OrderSeq: 1},
		{OrderTime: 1, OrderSeq: 2},
		{OrderTime: 1, OrderSeq: 1},
		{OrderTime: 2, OrderSeq: 9},
	}
	SortUpdatesByOrderTime(updates)
	wantTimes := []vclock.Time{1, 1, 2, 3}
	wantSeqs := []uint64{1, 2, 9, 1}
	for i := range updates {
		if updates[i].OrderTime != wantTimes[i] || updates[i].OrderSeq != wantSeqs[i] {
			t.Fatalf("position %d: %+v", i, updates[i])
		}
	}
}

func TestScrambleUpdatesDeterministicButUnordered(t *testing.T) {
	mk := func() []Update {
		out := make([]Update, 50)
		for i := range out {
			out[i] = Update{OrderTime: vclock.Time(i), OrderSeq: uint64(i)}
		}
		return out
	}
	a, b := mk(), mk()
	ScrambleUpdates(a)
	ScrambleUpdates(b)
	inOrder := true
	for i := range a {
		if a[i].OrderSeq != b[i].OrderSeq {
			t.Fatal("scramble not deterministic")
		}
		if i > 0 && a[i].OrderSeq < a[i-1].OrderSeq {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("scramble preserved order")
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Params{
		Name:   "x",
		Dim:    3,
		Floats: map[string]float64{"a": 1.5},
		Ints:   map[string]int{"k": 7},
	}
	if p.Float("a", 0) != 1.5 || p.Float("b", 9) != 9 {
		t.Error("Float lookup broken")
	}
	if p.Int("k", 0) != 7 || p.Int("z", 4) != 4 {
		t.Error("Int lookup broken")
	}
	c := p.Clone()
	c.Floats["a"] = 99
	c.Ints["k"] = 99
	if p.Floats["a"] != 1.5 || p.Ints["k"] != 7 {
		t.Error("Clone shares maps")
	}
	empty := Params{}.Clone()
	if empty.Floats != nil || empty.Ints != nil {
		t.Error("Clone of empty params allocated maps")
	}
}

func TestAlgorithmRegistry(t *testing.T) {
	r := NewAlgorithmRegistry()
	if err := r.Register("", nil); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register("a", nil); err == nil {
		t.Error("nil factory accepted")
	}
	f := func(Params) (Algorithm, error) { return newToyAlgo(), nil }
	if err := r.Register("a", f); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("a", f); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := r.New(Params{Name: "missing"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	algo, err := r.New(Params{Name: "a"})
	if err != nil || algo.Name() != "toy" {
		t.Errorf("New: %v %v", algo, err)
	}
	if names := r.Names(); len(names) != 1 || names[0] != "a" {
		t.Errorf("Names = %v", names)
	}
}

func TestRegisterOpsErrors(t *testing.T) {
	if err := RegisterOps(nil, nil); err == nil {
		t.Error("nil registries accepted")
	}
	reg := mbsp.NewRegistry()
	algos := NewAlgorithmRegistry()
	if err := RegisterOps(reg, algos); err != nil {
		t.Fatal(err)
	}
	if err := RegisterOps(reg, algos); err == nil {
		t.Error("double registration accepted")
	}
}

func TestClusteringAssign(t *testing.T) {
	c := NewClustering(
		[]MacroCluster{{Label: 0}, {Label: 1}},
		[]vector.Vector{{0, 0}, {1, 1}, {10, 10}},
		[]int{0, 0, 1},
	)
	if got := c.Assign(vector.Vector{0.4, 0.4}); got != 0 {
		t.Errorf("Assign near origin = %d", got)
	}
	if got := c.Assign(vector.Vector{9, 9}); got != 1 {
		t.Errorf("Assign near (10,10) = %d", got)
	}
	if c.NumClusters() != 2 {
		t.Errorf("NumClusters = %d", c.NumClusters())
	}
	empty := NewClustering(nil, nil, nil)
	if got := empty.Assign(vector.Vector{1}); got != -1 {
		t.Errorf("empty Assign = %d", got)
	}
}

func TestOrderModeString(t *testing.T) {
	if OrderAware.String() != "ordered" || OrderUnordered.String() != "unordered" {
		t.Error("mode names wrong")
	}
	if OrderMode(5).String() == "" {
		t.Error("unknown mode empty")
	}
}

func TestAdaptiveBatchController(t *testing.T) {
	a := AdaptiveBatch{TargetRecords: 1000, MinSeconds: 1, MaxSeconds: 30}
	// Too few records: interval doubles (bounded step).
	if got := a.next(5, 100); got != 10 {
		t.Errorf("grow step = %v, want 10", got)
	}
	// Too many: halves.
	if got := a.next(8, 4000); got != 4 {
		t.Errorf("shrink step = %v, want 4", got)
	}
	// Near target: proportional.
	if got := a.next(10, 2000); got != 5 {
		t.Errorf("proportional step = %v, want 5", got)
	}
	// Bounds respected.
	if got := a.next(1.2, 100000); got != 1 {
		t.Errorf("min bound = %v", got)
	}
	if got := a.next(29, 10); got != 30 {
		t.Errorf("max bound = %v", got)
	}
	// Zero observations: unchanged.
	if got := a.next(7, 0); got != 7 {
		t.Errorf("zero-record step = %v", got)
	}
}

func TestAdaptiveBatchValidation(t *testing.T) {
	if _, err := (&AdaptiveBatch{}).validate(0, 0); err == nil {
		t.Error("missing target accepted")
	}
	if _, err := (&AdaptiveBatch{TargetRecords: 10, MinSeconds: 5, MaxSeconds: 2}).validate(0, 0); err == nil {
		t.Error("inverted bounds accepted")
	}
	// The §IV-D decay bound clamps MaxSeconds.
	v, err := (&AdaptiveBatch{TargetRecords: 10, MaxSeconds: 100}).validate(0.01, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if v.MaxSeconds > 26 {
		t.Errorf("MaxSeconds = %v, want clamped to ~25.3", v.MaxSeconds)
	}
	if _, err := (&AdaptiveBatch{TargetRecords: 10}).validate(-1, 1.2); err == nil {
		t.Error("invalid decay params accepted")
	}
}

func TestPipelineAdaptiveBatchSizing(t *testing.T) {
	// A slow stream (1 rec/s) with a 2000-record target: the controller
	// must grow the interval from 1s toward the max.
	eng := newToyEngine(t, 2)
	pl, err := NewPipeline(Config{
		Algorithm:     newToyAlgo(),
		Engine:        eng,
		BatchInterval: 1,
		InitRecords:   10,
		Adaptive:      &AdaptiveBatch{TargetRecords: 2000, MinSeconds: 1, MaxSeconds: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]stream.Record, 400)
	for i := range recs {
		recs[i] = stream.Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(i), // 1 record per second
			Values:    vector.Vector{0.01 * float64(i%5), 0},
		}
	}
	stats, err := pl.Run(stream.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if stats.AdaptiveAdjustments == 0 {
		t.Error("controller never adjusted")
	}
	if stats.FinalBatchSeconds != 20 {
		t.Errorf("final interval = %v, want max 20", stats.FinalBatchSeconds)
	}
	// Adaptation reduces batch count versus the fixed 1s interval.
	if stats.Batches >= 390 {
		t.Errorf("batches = %d; interval never grew", stats.Batches)
	}
}

func TestRunContextCancelStopsBetweenBatches(t *testing.T) {
	eng := newToyEngine(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pl, err := NewPipeline(Config{
		Algorithm:     newToyAlgo(),
		Engine:        eng,
		BatchInterval: 1,
		InitRecords:   50,
		OnBatch: func(stream.Batch, *Model) error {
			cancel() // first processed batch cancels the run
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.RunContext(ctx, stream.NewSliceSource(twoBlobStream(2000, 100)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Batches != 1 {
		t.Errorf("Batches = %d, want 1 (stop within one batch of the cancel)", stats.Batches)
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	eng := newToyEngine(t, 2)
	pl, err := NewPipeline(Config{Algorithm: newToyAlgo(), Engine: eng, BatchInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := pl.RunContext(ctx, stream.NewSliceSource(twoBlobStream(100, 100)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Batches != 0 || stats.Records != 0 {
		t.Errorf("stats = %+v, want untouched", stats)
	}
}

func TestRunStatsSurfaceTaskRetries(t *testing.T) {
	// Fail the first attempt of assign task 0 in every batch; with one
	// engine-level retry the run must succeed and report the retries.
	eng := newToyEngineCfg(t, mbsp.LocalConfig{
		Parallelism: 2,
		TaskRetries: 1,
		Fail: func(stage string, taskID, attempt int) error {
			if stage == "assign" && taskID == 0 && attempt == 0 {
				return errors.New("injected transient failure")
			}
			return nil
		},
	})
	pl, err := NewPipeline(Config{
		Algorithm:     newToyAlgo(),
		Engine:        eng,
		BatchInterval: 1,
		InitRecords:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.Run(stream.NewSliceSource(twoBlobStream(1000, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.TaskRetries < 1 {
		t.Errorf("TaskRetries = %d, want >= 1", stats.TaskRetries)
	}
	if stats.FailedStages != 0 {
		t.Errorf("FailedStages = %d, want 0", stats.FailedStages)
	}
}

func TestRunStatsSurfaceFailedStages(t *testing.T) {
	// A permanent failure with no retries budget fails the stage; the
	// failure must be visible in the stats even though Run errors out.
	eng := newToyEngineCfg(t, mbsp.LocalConfig{
		Parallelism: 2,
		Fail: func(stage string, _, _ int) error {
			if stage == "local-update" {
				return errors.New("injected permanent failure")
			}
			return nil
		},
	})
	pl, err := NewPipeline(Config{
		Algorithm:     newToyAlgo(),
		Engine:        eng,
		BatchInterval: 1,
		InitRecords:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(stream.NewSliceSource(twoBlobStream(1000, 100))); err == nil {
		t.Fatal("expected run failure")
	}
	if got := pl.Stats().FailedStages; got != 1 {
		t.Errorf("FailedStages = %d, want 1", got)
	}
}
