package core

import (
	"math"
	"math/rand"
	"testing"

	"diststream/internal/mbsp"
	"diststream/internal/stream"
	"diststream/internal/vector"
)

// flatToySnapshot is toySnapshot rebuilt over a FlatIndex, implementing
// both the scalar Nearest and the BatchNearester capability, so one
// fixture exercises both assign paths against identical state.
type flatToySnapshot struct {
	mcs    []MicroCluster
	idx    FlatIndex
	radius float64
}

func newFlatToySnapshot(mcs []MicroCluster, radius float64) *flatToySnapshot {
	return &flatToySnapshot{mcs: mcs, idx: BuildFlatIndex(mcs), radius: radius}
}

func (s *flatToySnapshot) Nearest(rec stream.Record) (uint64, bool, bool) {
	best, bestD := s.idx.Nearest(rec.Values)
	if best < 0 {
		return 0, false, false
	}
	return s.idx.IDs[best], math.Sqrt(bestD) <= s.radius, true
}

func (s *flatToySnapshot) NearestAll(recs []stream.Record, ids []uint64, absorb, found []bool) ([]uint64, []bool, []bool) {
	ids, absorb, found = GrowNearestOut(len(recs), ids, absorb, found)
	nr := GetNearestRows()
	nr.Rows, nr.Dists = s.idx.NearestAll(recs, nr.Rows, nr.Dists)
	for i, row := range nr.Rows {
		if row < 0 {
			ids[i], absorb[i], found[i] = 0, false, false
			continue
		}
		ids[i] = s.idx.IDs[row]
		absorb[i] = math.Sqrt(nr.Dists[i]) <= s.radius
		found[i] = true
	}
	nr.Release()
	return ids, absorb, found
}

func (s *flatToySnapshot) Get(id uint64) MicroCluster {
	if i, ok := s.idx.IndexOf(id); ok {
		return s.mcs[i]
	}
	return nil
}

func (s *flatToySnapshot) Len() int { return len(s.mcs) }

type mapBroadcasts map[string]mbsp.Item

func (m mapBroadcasts) Get(id string) (mbsp.Item, bool) {
	v, ok := m[id]
	return v, ok
}

func assignCtx(snap Snapshot, groups uint64) *mbsp.TaskContext {
	return mbsp.NewTaskContext(OpAssign, 0, 0, mapBroadcasts{
		BroadcastModel:  snap,
		BroadcastConfig: TaskConfig{OutlierGroups: groups},
	})
}

// TestFlatIndexNearestAllMatchesNearest checks the blocked NearestAll
// against the per-record scalar path: random blocks straddling
// packBlockRows, records with NaN coordinates (no row compares below
// +Inf → -1), mismatched dimensionalities (scalar fallback), and the
// empty index.
func TestFlatIndexNearestAllMatchesNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []int{1, 2, 5, 17, 128}
	for trial := 0; trial < 30; trial++ {
		dim := dims[rng.Intn(len(dims))]
		nmc := 1 + rng.Intn(40)
		mcs := make([]MicroCluster, nmc)
		for i := range mcs {
			sum := make(vector.Vector, dim)
			for j := range sum {
				sum[j] = rng.NormFloat64() * 5
			}
			mcs[i] = &toyMC{Id: uint64(i + 1), Sum: sum, W: 1}
		}
		idx := BuildFlatIndex(mcs)
		n := rng.Intn(2*packBlockRows + 3)
		recs := make([]stream.Record, n)
		for i := range recs {
			vals := make(vector.Vector, dim)
			for j := range vals {
				vals[j] = rng.NormFloat64() * 5
			}
			switch rng.Intn(20) {
			case 0:
				vals[rng.Intn(dim)] = math.NaN()
			case 1:
				// Shorter record: both paths compare center prefixes.
				vals = vals[:rng.Intn(dim)+0]
			}
			recs[i] = stream.Record{Seq: uint64(i), Values: vals}
		}
		rows, dists := idx.NearestAll(nil, nil, nil)
		if len(rows) != 0 || len(dists) != 0 {
			t.Fatalf("NearestAll(nil) = %d rows", len(rows))
		}
		rows, dists = idx.NearestAll(recs, rows, dists)
		for i, rec := range recs {
			wantRow, wantD := idx.Nearest(rec.Values)
			if rows[i] != wantRow || !sameFloat(dists[i], wantD) {
				t.Fatalf("trial %d rec %d: NearestAll = (%d, %v), Nearest = (%d, %v)",
					trial, i, rows[i], dists[i], wantRow, wantD)
			}
		}
	}

	empty := BuildFlatIndex(nil)
	rows, dists := empty.NearestAll([]stream.Record{{Values: vector.Vector{1, 2}}}, nil, nil)
	if rows[0] != -1 || !math.IsInf(dists[0], 1) {
		t.Fatalf("empty index NearestAll = (%d, %v), want (-1, +Inf)", rows[0], dists[0])
	}
}

func sameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// TestAssignBatchedMatchesScalar runs the assign op twice over the same
// partition — batched path on and off — and requires identical keyed
// output, including outlier dealing for records outside every boundary
// and for NaN records that match no row.
func TestAssignBatchedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mcs := make([]MicroCluster, 12)
	for i := range mcs {
		sum := vector.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		mcs[i] = &toyMC{Id: uint64(100 + i), Sum: sum, W: 1}
	}
	snap := newFlatToySnapshot(mcs, 1.5)
	in := make(mbsp.Partition, 600)
	for i := range in {
		vals := vector.Vector{rng.NormFloat64() * 4, rng.NormFloat64() * 4, rng.NormFloat64() * 4}
		if i%97 == 0 {
			vals[1] = math.NaN()
		}
		in[i] = stream.Record{Seq: uint64(i), Values: vals}
	}
	op := makeAssignOp()
	ctx := assignCtx(snap, 3)

	restore := SetBatchAssign(true)
	batched, err := op(ctx, in)
	restore()
	if err != nil {
		t.Fatalf("batched assign: %v", err)
	}
	restore = SetBatchAssign(false)
	scalar, err := op(ctx, in)
	restore()
	if err != nil {
		t.Fatalf("scalar assign: %v", err)
	}

	if len(batched) != len(scalar) || len(batched) != len(in) {
		t.Fatalf("lengths: batched %d, scalar %d, in %d", len(batched), len(scalar), len(in))
	}
	outliers := 0
	for i := range batched {
		b := batched[i].(*mbsp.KeyedItem)
		s := scalar[i].(*mbsp.KeyedItem)
		if b.Key != s.Key {
			t.Fatalf("item %d: batched key %d, scalar key %d", i, b.Key, s.Key)
		}
		if b.Item.(stream.Record).Seq != uint64(i) {
			t.Fatalf("item %d: batched path emitted the wrong record", i)
		}
		if b.Key >= OutlierKeyBase {
			outliers++
			if want := OutlierKeyBase | (uint64(i) % 3); b.Key != want {
				t.Fatalf("item %d: outlier key %d, want %d", i, b.Key, want)
			}
		}
	}
	if outliers == 0 {
		t.Fatal("fixture produced no outliers; boundary test not exercised")
	}
	if outliers == len(in) {
		t.Fatal("fixture produced only outliers; absorb path not exercised")
	}
}

// TestAssignBatchedEmptySnapshot checks that an empty capable snapshot
// deals every record to outlier groups, as the scalar path does.
func TestAssignBatchedEmptySnapshot(t *testing.T) {
	snap := newFlatToySnapshot(nil, 1)
	in := mbsp.Partition{
		stream.Record{Seq: 5, Values: vector.Vector{1, 2}},
		stream.Record{Seq: 6, Values: vector.Vector{3, 4}},
	}
	out, err := makeAssignOp()(assignCtx(snap, 4), in)
	if err != nil {
		t.Fatalf("assign: %v", err)
	}
	for i, item := range out {
		k := item.(*mbsp.KeyedItem).Key
		want := OutlierKeyBase | (in[i].(stream.Record).Seq % 4)
		if k != want {
			t.Fatalf("item %d: key %d, want %d", i, k, want)
		}
	}
}

// TestAssignBatchedBadInput checks the batched path reports non-record
// items like the scalar path does.
func TestAssignBatchedBadInput(t *testing.T) {
	snap := newFlatToySnapshot([]MicroCluster{&toyMC{Id: 1, Sum: vector.Vector{0, 0}, W: 1}}, 1)
	_, err := makeAssignOp()(assignCtx(snap, 1), mbsp.Partition{"not a record"})
	if err == nil {
		t.Fatal("batched assign accepted a non-record item")
	}
}
