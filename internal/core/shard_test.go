package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"testing"

	"diststream/internal/vector"
)

// shardMC builds an unadmitted toy micro-cluster for planner tests.
func shardMC(w float64, coords ...float64) *toyMC {
	return &toyMC{Sum: vector.Vector(coords), W: w, Created: 1, Updated: 1}
}

// shardModel admits n micro-clusters and returns the model.
func shardModel(t *testing.T, n int) *Model {
	t.Helper()
	m := NewModel()
	for i := 0; i < n; i++ {
		m.Add(shardMC(float64(i+1), float64(i), float64(-i)))
	}
	return m
}

// applySerialUpdates is the reference serial update phase (the shipped
// algorithms' apply loop verbatim): replace live bases, re-admit
// vanished ones, admit creations, in order.
func applySerialUpdates(t *testing.T, m *Model, updates []Update) {
	t.Helper()
	for _, u := range updates {
		switch u.Kind {
		case KindUpdated:
			if m.Get(u.MC.ID()) == nil {
				m.Add(u.MC)
			} else if err := m.Replace(u.MC); err != nil {
				t.Fatalf("serial replace: %v", err)
			}
		case KindCreated:
			m.Add(u.MC)
		default:
			t.Fatalf("unknown kind %d", u.Kind)
		}
	}
}

// applyShardedUpdates runs the same updates through plan/reduce/fold.
func applyShardedUpdates(t *testing.T, m *Model, updates []Update, shards int) *ShardPlan {
	t.Helper()
	plan, err := NewShardPlanner().Plan(m, updates, shards)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	frags := make([]*ShardFragment, plan.Shards())
	for s := range frags {
		frags[s] = plan.Reduce(s)
	}
	if err := plan.Fold(m, frags); err != nil {
		t.Fatalf("fold: %v", err)
	}
	return plan
}

// encodeToy serializes a model of toy micro-clusters.
func encodeToy(t *testing.T, m *Model) []byte {
	t.Helper()
	gob.Register(&toyMC{})
	data, err := m.EncodeState()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// cloneToyModel deep-copies a model via the state codec.
func cloneToyModel(t *testing.T, m *Model) *Model {
	t.Helper()
	out, err := DecodeModelState(encodeToy(t, m))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

// requireSerialShardedEqual applies updates serially and sharded to
// copies of base and requires byte-equal state.
func requireSerialShardedEqual(t *testing.T, base *Model, updates []Update, shards int) {
	t.Helper()
	serial := cloneToyModel(t, base)
	applySerialUpdates(t, serial, updates)
	sharded := cloneToyModel(t, base)
	applyShardedUpdates(t, sharded, updates, shards)
	if !bytes.Equal(encodeToy(t, serial), encodeToy(t, sharded)) {
		t.Fatalf("sharded state diverged from serial (shards=%d)", shards)
	}
}

func TestShardOfStableAndInRange(t *testing.T) {
	for shards := 1; shards <= 9; shards++ {
		for id := uint64(0); id < 300; id++ {
			s := ShardOf(id, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", id, shards, s)
			}
			if again := ShardOf(id, shards); again != s {
				t.Fatalf("ShardOf(%d, %d) unstable: %d then %d", id, shards, s, again)
			}
		}
	}
	if got := ShardOf(42, 0); got != 0 {
		t.Fatalf("ShardOf with 0 shards = %d, want 0", got)
	}
}

func TestShardPlanEmptyBatch(t *testing.T) {
	base := shardModel(t, 5)
	before := encodeToy(t, base)
	plan := applyShardedUpdates(t, base, nil, 4)
	if plan.FinalLen() != 5 || plan.NumCreations() != 0 {
		t.Fatalf("empty batch plan: finalLen=%d creations=%d", plan.FinalLen(), plan.NumCreations())
	}
	if !bytes.Equal(before, encodeToy(t, base)) {
		t.Fatal("empty batch mutated the model")
	}
	// Every fragment must be empty but well-formed (checksum of nothing).
	for s := 0; s < plan.Shards(); s++ {
		frag := plan.Reduce(s)
		if len(frag.Positions) != 0 || len(frag.Upserts) != 0 {
			t.Fatalf("shard %d fragment not empty: %d positions", s, len(frag.Positions))
		}
	}
}

func TestShardPlanAllUpdatesToOneMC(t *testing.T) {
	base := shardModel(t, 6)
	id := base.IDs()[2]
	var updates []Update
	for i := 0; i < 10; i++ {
		mc := shardMC(100+float64(i), float64(i), 0)
		mc.Id = id
		updates = append(updates, Update{Kind: KindUpdated, MC: mc, OrderTime: 1, OrderSeq: uint64(i)})
	}
	for _, shards := range []int{1, 3, 8} {
		requireSerialShardedEqual(t, base, updates, shards)
	}
	// Last-wins: the surviving object must be the final update's.
	m := cloneToyModel(t, base)
	plan := applyShardedUpdates(t, m, updates, 3)
	if got := m.Get(id).(*toyMC).W; got != 109 {
		t.Fatalf("surviving weight = %v, want 109 (last update)", got)
	}
	touched := 0
	for p := 0; p < plan.FinalLen(); p++ {
		if plan.Touched(p) {
			touched++
		}
	}
	if touched != 1 {
		t.Fatalf("touched positions = %d, want 1", touched)
	}
}

func TestShardPlanDeletionRacingAbsorb(t *testing.T) {
	// An update whose base was deleted before the global update (the
	// "deletion racing an absorb" case): the serial path re-admits it
	// under a fresh id; the planner must pre-assign that exact id.
	base := shardModel(t, 4)
	victim := base.IDs()[1]
	base.Remove(victim)
	ghost := shardMC(7, 1, 2)
	ghost.Id = victim // stale reference to the deleted base
	updates := []Update{
		{Kind: KindUpdated, MC: ghost, OrderTime: 1, OrderSeq: 1},
		{Kind: KindCreated, MC: shardMC(3, 9, 9), OrderTime: 2, OrderSeq: 2},
	}
	for _, shards := range []int{1, 2, 7} {
		requireSerialShardedEqual(t, base, updates, shards)
	}
	m := cloneToyModel(t, base)
	plan := applyShardedUpdates(t, m, updates, 2)
	if plan.NumCreations() != 2 {
		t.Fatalf("creations = %d, want 2 (re-admission + creation)", plan.NumCreations())
	}
	if m.Get(victim) != nil {
		t.Fatal("deleted id resurrected under its old id")
	}
}

func TestShardPlanUpdateTargetsMidBatchCreation(t *testing.T) {
	// Adversarial ordering: a KindUpdated referencing the id a creation
	// earlier in the same batch will receive. The serial path's Get finds
	// the just-admitted creation and replaces it; the planner must route
	// the update to that creation's position.
	base := shardModel(t, 3)
	predicted := base.IDs()[2] + 1 // next id the allocator hands out
	created := shardMC(1, 5, 5)
	replacement := shardMC(2, 6, 6)
	replacement.Id = predicted
	updates := []Update{
		{Kind: KindCreated, MC: created, OrderTime: 1, OrderSeq: 1},
		{Kind: KindUpdated, MC: replacement, OrderTime: 2, OrderSeq: 2},
	}
	for _, shards := range []int{1, 4} {
		requireSerialShardedEqual(t, base, updates, shards)
	}
	m := cloneToyModel(t, base)
	applyShardedUpdates(t, m, updates, 4)
	if got := m.Get(predicted); got == nil || got.(*toyMC).W != 2 {
		t.Fatalf("mid-batch creation not replaced: %+v", got)
	}
}

func TestShardPlanShardCountExceedsMCCount(t *testing.T) {
	base := shardModel(t, 2)
	updates := []Update{
		{Kind: KindCreated, MC: shardMC(1, 3, 3), OrderTime: 1, OrderSeq: 1},
	}
	requireSerialShardedEqual(t, base, updates, 64)
	// The union of shard positions must cover every final position once.
	plan, err := NewShardPlanner().Plan(cloneToyModel(t, base), updates, 64)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]bool)
	for s := 0; s < plan.Shards(); s++ {
		for _, pos := range plan.ShardPositions(s) {
			if seen[pos] {
				t.Fatalf("position %d owned by two shards", pos)
			}
			seen[pos] = true
		}
	}
	if len(seen) != plan.FinalLen() {
		t.Fatalf("positions covered = %d, want %d", len(seen), plan.FinalLen())
	}
}

func TestShardPlanRejectsUnknownKind(t *testing.T) {
	base := shardModel(t, 1)
	_, err := NewShardPlanner().Plan(base, []Update{{Kind: UpdateKind(99), MC: shardMC(1, 0, 0)}}, 2)
	if err == nil || !strings.Contains(err.Error(), "unknown update kind") {
		t.Fatalf("err = %v, want unknown update kind", err)
	}
}

func TestShardFoldDetectsCorruptFragment(t *testing.T) {
	base := shardModel(t, 3)
	mc := shardMC(5, 1, 1)
	mc.Id = base.IDs()[0]
	plan, err := NewShardPlanner().Plan(base, []Update{{Kind: KindUpdated, MC: mc}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	frags := make([]*ShardFragment, plan.Shards())
	for s := range frags {
		frags[s] = plan.Reduce(s)
	}
	for _, frag := range frags {
		for _, up := range frag.Upserts {
			up.(*toyMC).W++ // corrupt after reduce
		}
	}
	err = plan.Fold(base, frags)
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("err = %v, want checksum mismatch", err)
	}
}

func TestShardPlannerReuseAcrossBatches(t *testing.T) {
	// The pipeline reuses one planner; successive plans must not leak
	// state from the previous batch.
	planner := NewShardPlanner()
	base := shardModel(t, 4)
	mc := shardMC(9, 0, 0)
	mc.Id = base.IDs()[3]
	serial := cloneToyModel(t, base)
	applySerialUpdates(t, serial, []Update{{Kind: KindUpdated, MC: mc}})

	for round := 0; round < 3; round++ {
		m := cloneToyModel(t, base)
		mc2 := shardMC(9, 0, 0)
		mc2.Id = m.IDs()[3]
		plan, err := planner.Plan(m, []Update{{Kind: KindUpdated, MC: mc2}}, 3)
		if err != nil {
			t.Fatal(err)
		}
		frags := make([]*ShardFragment, plan.Shards())
		for s := range frags {
			frags[s] = plan.Reduce(s)
		}
		if err := plan.Fold(m, frags); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeToy(t, serial), encodeToy(t, m)) {
			t.Fatalf("round %d: reused planner diverged", round)
		}
	}
}

func TestReducerPoolInlineAndParallelEquivalent(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		pool := NewReducerPool(workers)
		out := make([]int, 100)
		if err := pool.Run(len(out), func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: item %d = %d", workers, i, v)
			}
		}
	}
}

func TestReducerPoolFirstErrorByIndex(t *testing.T) {
	boom := func(i int) error {
		if i%3 == 1 {
			return fmt.Errorf("item %d failed", i)
		}
		return nil
	}
	for _, workers := range []int{2, 8} {
		err := NewReducerPool(workers).Run(30, boom)
		if err == nil || err.Error() != "item 1 failed" {
			t.Fatalf("workers=%d: err = %v, want deterministic first-by-index", workers, err)
		}
	}
	// Inline mode stops at the first error too.
	calls := 0
	err := NewReducerPool(1).Run(30, func(i int) error {
		calls++
		return boom(i)
	})
	if err == nil || err.Error() != "item 1 failed" || calls != 2 {
		t.Fatalf("inline: err=%v calls=%d", err, calls)
	}
}

func TestReducerPoolParallelPanicBecomesError(t *testing.T) {
	err := NewReducerPool(4).Run(8, func(i int) error {
		if i == 5 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic converted to error", err)
	}
}

func TestPipelineRejectsNegativeGlobalShards(t *testing.T) {
	_, err := NewPipeline(Config{
		Algorithm:     newToyAlgo(),
		Engine:        newToyEngine(t, 1),
		BatchInterval: 10,
		GlobalShards:  -1,
	})
	if err == nil || !strings.Contains(err.Error(), "global shards") {
		t.Fatalf("err = %v, want global shards validation error", err)
	}
}

func TestPipelineShardedCapabilityDetection(t *testing.T) {
	// toyAlgo has no sharded decomposition: GlobalShards must fall back
	// to the serial path, not fail.
	pl, err := NewPipeline(Config{
		Algorithm:     newToyAlgo(),
		Engine:        newToyEngine(t, 1),
		BatchInterval: 10,
		GlobalShards:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.ShardedGlobal() {
		t.Fatal("toy algorithm reported a sharded global update")
	}
}
