package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"diststream/internal/mbsp"
	"diststream/internal/stream"
)

// Batched assign: the assign stage classifies a whole task's records in
// one Snapshot call instead of one per record, so flat-index snapshots
// can drive the blocked many-vs-many kernel (vector.BatchArgminBelow)
// and reuse centers tiles across the record block. The batched path is
// an optional capability discovered by type-assert, like
// ShardedGlobalUpdater: snapshots that don't implement it (the D-Stream
// grid) keep the per-record loop, and the results are bit-identical
// either way — TestAssignBatchedMatchesScalar and the facade-level
// EncodeState equivalence tests enforce that.

// BatchNearester is an optional Snapshot capability: classify a block of
// records in one call. ids[i], absorb[i] and found[i] must receive
// exactly what Nearest(recs[i]) would return, bit-identically — same
// argmin, same absorb decision, same empty/NaN handling. The three
// slices are grown when their capacity is too short and returned, so
// callers can reuse scratch across calls.
type BatchNearester interface {
	NearestAll(recs []stream.Record, ids []uint64, absorb, found []bool) ([]uint64, []bool, []bool)
}

// GrowNearestOut resizes the three NearestAll result slices to n,
// reallocating only when capacity is too short. Snapshot implementations
// call it first so the per-record loop can index freely.
func GrowNearestOut(n int, ids []uint64, absorb, found []bool) ([]uint64, []bool, []bool) {
	if cap(ids) < n {
		ids = make([]uint64, n)
	}
	if cap(absorb) < n {
		absorb = make([]bool, n)
	}
	if cap(found) < n {
		found = make([]bool, n)
	}
	return ids[:n], absorb[:n], found[:n]
}

// NearestRows is pooled scratch for Snapshot.NearestAll implementations:
// the row/distance buffers a FlatIndex.NearestAll call fills. Algorithms
// borrow one around the call so a d=768 task does not regress to
// per-call allocation.
type NearestRows struct {
	Rows  []int
	Dists []float64
}

var nearestRowsPool = sync.Pool{New: func() any { return new(NearestRows) }}

// GetNearestRows borrows scratch from the pool.
func GetNearestRows() *NearestRows { return nearestRowsPool.Get().(*NearestRows) }

// Release returns the scratch to the pool.
func (r *NearestRows) Release() { nearestRowsPool.Put(r) }

// batchAssign gates the batched assign path; tests and before/after
// benchmarks flip it to pin the scalar loop.
var batchAssign atomic.Bool

func init() { batchAssign.Store(true) }

// SetBatchAssign toggles the batched assign path and returns a restore
// func. It exists for differential tests and the dimension-sweep
// benchmark; production always runs batched.
func SetBatchAssign(on bool) (restore func()) {
	prev := batchAssign.Swap(on)
	return func() { batchAssign.Store(prev) }
}

// assignScratch pools the per-task record block and classification
// buffers, so batched assign at any dimensionality allocates only the
// output partition (which must outlive the task).
type assignScratch struct {
	recs   []stream.Record
	ids    []uint64
	absorb []bool
	found  []bool
}

var assignPool = sync.Pool{New: func() any { return new(assignScratch) }}

// assignBatched is the batched body of the assign op: unbox the task's
// records into a pooled block, classify them in one NearestAll call, and
// emit with the same zero-alloc KeyedItem backing array and outlier
// dealing as the scalar loop.
func assignBatched(bn BatchNearester, cfg TaskConfig, in mbsp.Partition) (mbsp.Partition, error) {
	sc := assignPool.Get().(*assignScratch)
	defer func() {
		// Drop record payload references before pooling so the scratch
		// does not pin a retired batch's vectors.
		clear(sc.recs)
		sc.recs = sc.recs[:0]
		assignPool.Put(sc)
	}()
	if cap(sc.recs) < len(in) {
		sc.recs = make([]stream.Record, 0, len(in))
	}
	recs := sc.recs[:0]
	for i, item := range in {
		rec, ok := item.(stream.Record)
		if !ok {
			return nil, fmt.Errorf("core: assign input %d is %T, want stream.Record", i, item)
		}
		recs = append(recs, rec)
	}
	sc.recs = recs
	sc.ids, sc.absorb, sc.found = bn.NearestAll(recs, sc.ids, sc.absorb, sc.found)
	out := make(mbsp.Partition, len(in))
	keyed := make([]mbsp.KeyedItem, len(in))
	for i := range recs {
		id := sc.ids[i]
		if !(sc.found[i] && sc.absorb[i]) {
			id = OutlierKeyBase | (recs[i].Seq % cfg.OutlierGroups)
		}
		keyed[i] = mbsp.KeyedItem{Key: id, Item: in[i]}
		out[i] = &keyed[i]
	}
	return out, nil
}
