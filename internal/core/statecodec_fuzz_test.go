package core_test

import (
	"reflect"
	"testing"

	"diststream/internal/clustream"
	"diststream/internal/clustree"
	"diststream/internal/core"
	"diststream/internal/denstream"
	"diststream/internal/dstream"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// codecs returns one instance per shipped algorithm, as the StateCodec
// view the checkpoint subsystem uses.
func codecs() map[string]core.StateCodec {
	return map[string]core.StateCodec{
		clustream.Name: clustream.New(clustream.Config{Dim: 2}),
		denstream.Name: denstream.New(denstream.Config{Dim: 2}),
		dstream.Name:   dstream.New(dstream.Config{Dim: 2}),
		clustree.Name:  clustree.New(clustree.Config{Dim: 2}),
	}
}

// seedModel builds a small populated model for an algorithm by feeding
// its Init phase a few records from two separated blobs.
func seedModel(tb testing.TB, algo core.Algorithm) *core.Model {
	tb.Helper()
	var recs []stream.Record
	for i := 0; i < 40; i++ {
		v := vector.Vector{0, 0}
		if i%2 == 1 {
			v = vector.Vector{20, 20}
		}
		v[0] += 0.1 * float64(i%5)
		recs = append(recs, stream.Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(float64(i) * 0.01),
			Values:    v,
		})
	}
	mcs, err := algo.Init(recs)
	if err != nil {
		tb.Fatal(err)
	}
	m := core.NewModel()
	for _, mc := range mcs {
		m.Add(mc)
	}
	m.SetNow(recs[len(recs)-1].Timestamp)
	return m
}

// FuzzModelStateCodec asserts the checkpoint state codec is total for
// every shipped algorithm: arbitrary bytes must decode to either an
// error or a valid model — never a panic — and any state that decodes
// must survive a re-encode/decode cycle deep-equal. The committed seeds
// include each algorithm's genuine encoded state, so the corpus starts
// from structurally valid gob streams and mutates from there (covering
// the cross-algorithm case: denstream decoding clustream state, etc.).
func FuzzModelStateCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not gob at all"))
	for name, codec := range codecs() {
		algo := codec.(core.Algorithm)
		data, err := codec.EncodeState(seedModel(f, algo))
		if err != nil {
			f.Fatalf("%s: seed encode: %v", name, err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(data[:len(data)-1])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for name, codec := range codecs() {
			m, err := codec.DecodeState(data)
			if err != nil {
				continue
			}
			again, err := codec.EncodeState(m)
			if err != nil {
				t.Fatalf("%s: re-encode of decoded state failed: %v", name, err)
			}
			m2, err := codec.DecodeState(again)
			if err != nil {
				t.Fatalf("%s: re-decode failed: %v", name, err)
			}
			if !reflect.DeepEqual(m.List(), m2.List()) || m.Now() != m2.Now() ||
				!reflect.DeepEqual(m.IDs(), m2.IDs()) {
				t.Fatalf("%s: round trip changed the model", name)
			}
		}
	})
}

// TestStateCodecCrossAlgorithmRejection pins the behavior the fuzzer
// explores: state written by one algorithm must not decode as another's.
func TestStateCodecCrossAlgorithmRejection(t *testing.T) {
	all := codecs()
	for writer, wc := range all {
		data, err := wc.EncodeState(seedModel(t, wc.(core.Algorithm)))
		if err != nil {
			t.Fatal(err)
		}
		for reader, rc := range all {
			if reader == writer {
				continue
			}
			if _, err := rc.DecodeState(data); err == nil {
				t.Errorf("%s decoded %s state without error", reader, writer)
			}
		}
	}
}
