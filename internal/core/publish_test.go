package core

import (
	"testing"
	"time"

	"diststream/internal/stream"
)

// TestPublishMinIntervalPaces pins the publication pacing contract: with
// a positive PublishMinInterval the OnPublish hook (and the model clone
// built for it) runs for the first publication and then at most once per
// interval, while the zero value keeps the publish-every-batch behavior.
func TestPublishMinIntervalPaces(t *testing.T) {
	run := func(interval time.Duration) int {
		count := 0
		pl, err := NewPipeline(Config{
			Algorithm:          newToyAlgo(),
			Engine:             newToyEngine(t, 2),
			BatchInterval:      1,
			InitRecords:        10,
			OnPublish:          func(Published) { count++ },
			PublishMinInterval: interval,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pl.Run(stream.NewSliceSource(slowStream(200))); err != nil {
			t.Fatal(err)
		}
		return count
	}

	// An hour-long interval admits exactly the first publication — the
	// initialized model is never skipped.
	if got := run(time.Hour); got != 1 {
		t.Errorf("paced run published %d times, want 1", got)
	}
	// Pacing off: every batch publishes.
	if got := run(0); got < 20 {
		t.Errorf("unpaced run published %d times, want one per batch (>= 20)", got)
	}
}
