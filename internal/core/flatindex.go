package core

import (
	"diststream/internal/vector"
)

// FlatIndex is the flat per-batch search structure behind the
// linear-scan snapshots: all micro-cluster centers packed into one
// row-major matrix, with precomputed squared row norms, the per-row
// micro-cluster ids, and an id → row map for O(1) lookup. It is built
// once per snapshot (driver side) and broadcast to every assign task, so
// the per-record work is a single one-vs-many kernel call over
// contiguous memory instead of a pointer-chasing scan over []Vector.
//
// Boundaries is optional per-row data for algorithms whose absorb test
// is a radius around the center (CluStream's RadiusFactor·RMS,
// clustree's per-MC boundary); algorithms with a global threshold
// (denstream's ε, simple's radius) leave it nil.
//
// Fields are exported so the index travels inside gob-encoded broadcast
// snapshots.
type FlatIndex struct {
	Centers    vector.Matrix
	Norms      []float64
	Boundaries []float64
	IDs        []uint64
	ByID       map[uint64]int
}

// BuildFlatIndex packs the centers of mcs into a FlatIndex. All centers
// must share one dimensionality (they come from a single model, so a
// mismatch is a programming error and panics, matching the implicit
// panic of the scalar distance scan it replaces).
func BuildFlatIndex(mcs []MicroCluster) FlatIndex {
	idx := FlatIndex{
		IDs:  make([]uint64, len(mcs)),
		ByID: make(map[uint64]int, len(mcs)),
	}
	if len(mcs) == 0 {
		return idx
	}
	centers := make([]vector.Vector, len(mcs))
	for i, mc := range mcs {
		centers[i] = mc.Center()
		idx.IDs[i] = mc.ID()
		idx.ByID[mc.ID()] = i
	}
	m, err := vector.MatrixFromRows(centers)
	if err != nil {
		panic("core: BuildFlatIndex: " + err.Error())
	}
	idx.Centers = m
	idx.Norms = m.RowNorms(nil)
	return idx
}

// Len returns the number of indexed micro-clusters.
func (f *FlatIndex) Len() int { return len(f.IDs) }

// Nearest returns the row index of the center closest to x and its exact
// squared Euclidean distance, or (-1, +Inf) for an empty index. The
// decision is bit-identical to the scalar SquaredDistance scan (see
// vector.ArgminBelow).
func (f *FlatIndex) Nearest(x vector.Vector) (int, float64) {
	return vector.ArgminBelow(x, f.Centers)
}

// IndexOf returns the row of the micro-cluster with the given id.
func (f *FlatIndex) IndexOf(id uint64) (int, bool) {
	i, ok := f.ByID[id]
	return i, ok
}

// Row returns the center stored at the given row as a view into the
// matrix storage.
func (f *FlatIndex) Row(i int) vector.Vector { return f.Centers.Row(i) }
