package core

import (
	"math"
	"sync"

	"diststream/internal/stream"
	"diststream/internal/vector"
)

// FlatIndex is the flat per-batch search structure behind the
// linear-scan snapshots: all micro-cluster centers packed into one
// row-major matrix, with precomputed squared row norms, the per-row
// micro-cluster ids, and an id → row map for O(1) lookup. It is built
// once per snapshot (driver side) and broadcast to every assign task, so
// the per-record work is a single one-vs-many kernel call over
// contiguous memory instead of a pointer-chasing scan over []Vector.
//
// Boundaries is optional per-row data for algorithms whose absorb test
// is a radius around the center (CluStream's RadiusFactor·RMS,
// clustree's per-MC boundary); algorithms with a global threshold
// (denstream's ε, simple's radius) leave it nil.
//
// Fields are exported so the index travels inside gob-encoded broadcast
// snapshots.
type FlatIndex struct {
	Centers    vector.Matrix
	Norms      []float64
	Boundaries []float64
	IDs        []uint64
	ByID       map[uint64]int
}

// BuildFlatIndex packs the centers of mcs into a FlatIndex. All centers
// must share one dimensionality (they come from a single model, so a
// mismatch is a programming error and panics, matching the implicit
// panic of the scalar distance scan it replaces).
func BuildFlatIndex(mcs []MicroCluster) FlatIndex {
	idx := FlatIndex{
		IDs:  make([]uint64, len(mcs)),
		ByID: make(map[uint64]int, len(mcs)),
	}
	if len(mcs) == 0 {
		return idx
	}
	centers := make([]vector.Vector, len(mcs))
	for i, mc := range mcs {
		centers[i] = mc.Center()
		idx.IDs[i] = mc.ID()
		idx.ByID[mc.ID()] = i
	}
	m, err := vector.MatrixFromRows(centers)
	if err != nil {
		panic("core: BuildFlatIndex: " + err.Error())
	}
	idx.Centers = m
	idx.Norms = m.RowNorms(nil)
	return idx
}

// Len returns the number of indexed micro-clusters.
func (f *FlatIndex) Len() int { return len(f.IDs) }

// Nearest returns the row index of the center closest to x and its exact
// squared Euclidean distance, or (-1, +Inf) for an empty index. The
// decision is bit-identical to the scalar SquaredDistance scan (see
// vector.ArgminBelow).
func (f *FlatIndex) Nearest(x vector.Vector) (int, float64) {
	return vector.ArgminBelow(x, f.Centers)
}

// packBlockRows is the record-block height NearestAll packs per kernel
// call. It bounds pooled scratch (256 rows x 768 dims = 1.5 MiB worst
// case for the supported workloads) while keeping blocks tall enough
// that the tiled kernel amortizes each centers tile over many records;
// the BenchmarkBatchNearestKernel sweep shows throughput flat from ~64
// rows up, so 256 is comfortably past the knee.
const packBlockRows = 256

// packScratch is the pooled packing buffer behind NearestAll.
type packScratch struct{ data []float64 }

var packPool = sync.Pool{New: func() any { return new(packScratch) }}

// NearestAll classifies every record against the index in blocked
// many-vs-many kernel calls: rows[i] and dists[i] receive exactly what
// Nearest(recs[i].Values) returns, bit-identically (vector.BatchArgminBelow
// carries the exactness argument; FuzzBatchNearest enforces it). Both
// slices are grown when their capacity is too short and returned so
// callers can reuse scratch across calls. Records are copied into a
// pooled row-major block of at most packBlockRows rows per kernel call,
// so a task-sized call allocates nothing in steady state.
//
// Records whose dimensionality differs from the centers' fall back to
// the per-record scalar scan (same results by construction — a shorter
// record compares against center prefixes in both paths, a longer one
// panics in both).
func (f *FlatIndex) NearestAll(recs []stream.Record, rows []int, dists []float64) ([]int, []float64) {
	if cap(rows) < len(recs) {
		rows = make([]int, len(recs))
	}
	rows = rows[:len(recs)]
	if cap(dists) < len(recs) {
		dists = make([]float64, len(recs))
	}
	dists = dists[:len(recs)]
	if len(recs) == 0 {
		return rows, dists
	}
	if f.Len() == 0 {
		for i := range rows {
			rows[i], dists[i] = -1, math.Inf(1)
		}
		return rows, dists
	}
	cols := f.Centers.Cols
	for i := range recs {
		if len(recs[i].Values) != cols {
			for j := range recs {
				rows[j], dists[j] = vector.ArgminBelow(recs[j].Values, f.Centers)
			}
			return rows, dists
		}
	}
	sc := packPool.Get().(*packScratch)
	for b0 := 0; b0 < len(recs); b0 += packBlockRows {
		b1 := min(b0+packBlockRows, len(recs))
		n := b1 - b0
		if need := n * cols; cap(sc.data) < need {
			sc.data = make([]float64, need)
		}
		data := sc.data[:n*cols]
		for i := 0; i < n; i++ {
			copy(data[i*cols:(i+1)*cols], recs[b0+i].Values)
		}
		xs := vector.Matrix{Data: data, Rows: n, Cols: cols}
		// Full slice expressions pin capacity so the kernel writes in
		// place instead of growing a copy.
		vector.BatchArgminBelow(rows[b0:b1:b1], dists[b0:b1:b1], xs, f.Centers)
	}
	packPool.Put(sc)
	return rows, dists
}

// IndexOf returns the row of the micro-cluster with the given id.
func (f *FlatIndex) IndexOf(id uint64) (int, bool) {
	i, ok := f.ByID[id]
	return i, ok
}

// Row returns the center stored at the given row as a view into the
// matrix storage.
func (f *FlatIndex) Row(i int) vector.Vector { return f.Centers.Row(i) }
