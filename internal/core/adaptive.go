package core

import (
	"fmt"

	"diststream/internal/vclock"
)

// AdaptiveBatch enables adaptive batch sizing — the extension the paper
// names as future work in §VII-D3 ("Currently, we configure batch size
// statically based on a user-defined threshold but will explore adaptive
// batch sizing approaches in future work").
//
// The controller is backpressure-style: after each batch it compares the
// observed record count against TargetRecords and scales the next batch
// interval multiplicatively (bounded to a factor of 2 per step), clamped
// to [MinSeconds, MaxSeconds]. When the pipeline's DecayAlpha/DecayBeta
// are set, MaxSeconds is additionally clamped to the §IV-D decay bound
// log_beta(1/alpha), preserving the quality guarantee while adapting.
type AdaptiveBatch struct {
	// TargetRecords is the desired records per batch. Required.
	TargetRecords int
	// MinSeconds and MaxSeconds bound the interval. Defaults: 1 and 30.
	MinSeconds, MaxSeconds float64
}

func (a *AdaptiveBatch) validate(alpha, beta float64) (AdaptiveBatch, error) {
	out := *a
	if out.TargetRecords <= 0 {
		return out, fmt.Errorf("core: adaptive batch needs TargetRecords > 0")
	}
	if out.MinSeconds <= 0 {
		out.MinSeconds = 1
	}
	if out.MaxSeconds <= 0 {
		out.MaxSeconds = 30
	}
	if out.MaxSeconds < out.MinSeconds {
		return out, fmt.Errorf("core: adaptive batch bounds inverted: [%v, %v]",
			out.MinSeconds, out.MaxSeconds)
	}
	if alpha != 0 || beta != 0 {
		limit, err := MaxBatchSeconds(alpha, beta)
		if err != nil {
			return out, err
		}
		if out.MaxSeconds > float64(limit) {
			out.MaxSeconds = float64(limit)
		}
	}
	return out, nil
}

// next returns the interval for the following batch given the observed
// record count of the last one.
func (a AdaptiveBatch) next(current vclock.Duration, observedRecords int) vclock.Duration {
	if observedRecords <= 0 {
		return current
	}
	factor := float64(a.TargetRecords) / float64(observedRecords)
	// Bound the step so a single outlier batch cannot whipsaw the
	// interval.
	if factor > 2 {
		factor = 2
	}
	if factor < 0.5 {
		factor = 0.5
	}
	out := vclock.Duration(float64(current) * factor)
	if out < vclock.Duration(a.MinSeconds) {
		out = vclock.Duration(a.MinSeconds)
	}
	if out > vclock.Duration(a.MaxSeconds) {
		out = vclock.Duration(a.MaxSeconds)
	}
	return out
}
