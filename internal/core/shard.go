package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"diststream/internal/vclock"
)

// This file implements the sharded global update: the micro-cluster
// keyspace is partitioned into S shards by a stable hash of the MC id,
// the per-MC portion of the global update (absorb/replace/insert) runs
// as parallel per-shard reducers, and the cross-shard residue (merges,
// deletions, pruning, decay bookkeeping) runs serialized after a
// barrier. The result is byte-identical to the serial GlobalUpdate
// because the parallel phase only contains operations that commute
// across shards:
//
//   - two updates to the same MC id always land in the same shard, where
//     they are applied in the batch's (OrderTime, OrderSeq) order —
//     last-wins over whole-MC replacement clones, exactly the serial
//     outcome (§IV-C2 semantics);
//   - replacements of distinct ids touch disjoint model positions, so
//     their relative order is immaterial;
//   - creations need ids assigned in global sorted order, so the planner
//     pre-assigns the ids the serial path would allocate and the fold
//     admits them in that order, asserting the prediction held;
//   - everything order-sensitive across shards — deletion, merging,
//     budget enforcement, decay sweeps — stays in the serialized residue,
//     where it sees exactly the model state the serial path would see.
//
// The planner is worker-count-independent: the shard of an MC depends
// only on its id and the shard count, never on how many reducers execute
// the shards, so any pool size produces the same fragments and the same
// fold.

// ShardedGlobalUpdater is an optional Algorithm capability: a
// decomposition of GlobalUpdate into parallel per-shard reducers plus a
// serialized residue, driven through a ShardedRun. Implementations must
// produce byte-identical model state (EncodeState) to their serial
// GlobalUpdate for every input; the shard equivalence battery enforces
// this for the shipped implementations. Algorithms without the
// capability transparently fall back to the serial path.
type ShardedGlobalUpdater interface {
	GlobalUpdateSharded(model *Model, updates []Update, now vclock.Time, run *ShardedRun) error
}

// ShardOf maps a micro-cluster id to its shard with a stable integer
// hash (splitmix64). The mapping depends only on the id and the shard
// count — not on worker count, batch composition, or insertion history —
// so re-planning the same model with the same shard count always routes
// identically.
func ShardOf(id uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(scrambleKey(id) % uint64(shards))
}

// ReducerPool runs per-shard reducer functions. With one effective
// worker it runs inline on the caller's goroutine — no goroutines, no
// synchronization — so a sharded update on a single-core box pays zero
// scheduling overhead over a plain loop.
type ReducerPool struct {
	workers int
}

// NewReducerPool returns a pool with the given worker bound; workers <= 0
// selects GOMAXPROCS.
func NewReducerPool(workers int) *ReducerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ReducerPool{workers: workers}
}

// Workers returns the pool's worker bound.
func (p *ReducerPool) Workers() int { return p.workers }

// Run executes f(0..n-1), using up to min(workers, n) goroutines pulling
// items from a shared counter. Errors are collected per item and the
// first one in item order is returned, so the surfaced error does not
// depend on goroutine scheduling. A panic inside a parallel f is
// converted to an error (inline execution lets it propagate, like any
// serial update would).
func (p *ReducerPool) Run(n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							errs[i] = fmt.Errorf("core: reducer item %d panicked: %v", i, r)
						}
					}()
					errs[i] = f(i)
				}()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ShardFragment is one shard's independent contribution to the global
// update: the final positions it owns that this batch touched, with the
// post-update micro-cluster for each, in admission order. The checksum
// (the same fail-loud discipline as the PR-5 delta ChecksumMCs, but a
// cheap word-mix over positions, ids and weights — no per-MC centroid
// materialization) pins the fragment between Reduce and Fold, so a
// sharded implementation that reorders or mutates fragments in flight
// fails loudly instead of folding silently-divergent state.
type ShardFragment struct {
	Shard     int
	Positions []int32
	Upserts   []MicroCluster
	Checksum  uint64
}

// checksum mixes the fragment's positions with each upsert's id and
// weight bits through the splitmix64 finalizer — one multiply chain per
// word instead of ChecksumMCs's byte-wise FNV over materialized
// centroids, cheap enough to pay on every batch.
func (f *ShardFragment) checksum() uint64 {
	h := scrambleKey(uint64(len(f.Upserts)))
	for i, mc := range f.Upserts {
		h = scrambleKey(h ^ uint64(f.Positions[i]))
		h = scrambleKey(h ^ mc.ID())
		h = scrambleKey(h ^ math.Float64bits(mc.Weight()))
	}
	return h
}

// ShardPlanner builds ShardPlans, reusing its internal buffers across
// batches so a steady-state pipeline plans without allocating. At most
// one plan per planner is live at a time (the next Plan call recycles
// the previous plan's storage).
type ShardPlanner struct {
	plan ShardPlan
}

// NewShardPlanner returns an empty planner.
func NewShardPlanner() *ShardPlanner {
	return &ShardPlanner{}
}

// ShardPlan is the serial prologue of a sharded global update: a
// classification of the batch's updates against the current model. It
// records, for the model layout the update phase will produce (base
// admission order with creations appended), which positions each shard
// owns, which positions the batch touched, and the ids the fold will
// allocate to creations — everything the parallel phase needs without
// touching the live model.
//
// Classification happens at plan time against the same state the serial
// path would observe: an update whose base id is live replaces it; an
// update whose id matches a creation admitted earlier in this batch
// replaces that creation (the serial path's Get would find it
// mid-batch); anything else — creations, and updates whose base vanished
// — is admitted as new, with its id pre-assigned in global update order
// so the fold's sequential Adds reproduce the serial allocator exactly.
type ShardPlan struct {
	shards  int
	baseLen int
	// final[pos] is the post-update-phase micro-cluster at admission
	// position pos (last-wins across the batch); ids[pos] its (possibly
	// pre-assigned) id; touched[pos] whether the batch wrote it.
	final   []MicroCluster
	ids     []uint64
	touched []bool
	// positions[s] lists the final positions shard s owns, ascending.
	positions [][]int32
	// creations holds the micro-clusters the fold must admit, in global
	// update order; firstNew is the id the first one will receive.
	creations []MicroCluster
	firstNew  uint64
	// newIDs resolves a pre-assigned creation id back to its position
	// (allocated only when an update references a mid-batch creation or a
	// vanished base).
	newIDs map[uint64]int32
}

// Plan classifies updates (already in application order) against model
// into a ShardPlan for the given shard count. The model is only read.
// Updates must reference ids allocated before this batch (the pipeline
// guarantees this); unknown update kinds are rejected.
func (pl *ShardPlanner) Plan(model *Model, updates []Update, shards int) (*ShardPlan, error) {
	if shards < 1 {
		shards = 1
	}
	p := &pl.plan
	p.shards = shards
	p.baseLen = len(model.mcs)
	p.firstNew = model.next
	p.final = append(p.final[:0], model.mcs...)
	p.ids = p.ids[:0]
	for _, mc := range model.mcs {
		p.ids = append(p.ids, mc.ID())
	}
	if cap(p.touched) < p.baseLen {
		p.touched = make([]bool, p.baseLen)
	} else {
		p.touched = p.touched[:p.baseLen]
		for i := range p.touched {
			p.touched[i] = false
		}
	}
	p.creations = p.creations[:0]
	p.newIDs = nil
	nextID := model.next

	for _, u := range updates {
		create := false
		switch u.Kind {
		case KindUpdated:
			if pos, ok := model.index[u.MC.ID()]; ok {
				p.final[pos] = u.MC
				p.touched[pos] = true
			} else if pos, ok := p.newIDs[u.MC.ID()]; ok {
				// The update targets a creation admitted earlier in this
				// batch: the serial path's Get would find it and replace it.
				p.final[pos] = u.MC
			} else {
				// Base vanished: the serial path re-admits the update.
				create = true
			}
		case KindCreated:
			create = true
		default:
			return nil, fmt.Errorf("core: shard plan: unknown update kind %d", u.Kind)
		}
		if create {
			pos := int32(len(p.final))
			p.final = append(p.final, u.MC)
			p.ids = append(p.ids, nextID)
			p.touched = append(p.touched, true)
			p.creations = append(p.creations, u.MC)
			if p.newIDs == nil {
				p.newIDs = make(map[uint64]int32, 4)
			}
			p.newIDs[nextID] = pos
			nextID++
		}
	}

	// Route every final position to its shard in one pass; the per-shard
	// slices keep their capacity across batches, so steady-state routing
	// does not allocate.
	if cap(p.positions) < shards {
		p.positions = make([][]int32, shards)
	} else {
		p.positions = p.positions[:shards]
	}
	for s := range p.positions {
		p.positions[s] = p.positions[s][:0]
	}
	for pos, id := range p.ids {
		s := ShardOf(id, shards)
		p.positions[s] = append(p.positions[s], int32(pos))
	}
	return p, nil
}

// Shards returns the plan's shard count.
func (p *ShardPlan) Shards() int { return p.shards }

// BaseLen returns the model length the plan was computed against;
// positions >= BaseLen are creations.
func (p *ShardPlan) BaseLen() int { return p.baseLen }

// FinalLen returns the model length after the update phase (before any
// residue deletions): base length plus creations.
func (p *ShardPlan) FinalLen() int { return len(p.final) }

// NumCreations returns how many micro-clusters the fold will admit.
func (p *ShardPlan) NumCreations() int { return len(p.creations) }

// FinalMC returns the post-update-phase micro-cluster at final position
// pos. For untouched positions this is the live model object (read-only
// until the fold); for touched ones it is the batch's replacement or
// creation.
func (p *ShardPlan) FinalMC(pos int) MicroCluster { return p.final[pos] }

// FinalID returns the id at final position pos (pre-assigned for
// creations; the fold asserts the prediction).
func (p *ShardPlan) FinalID(pos int) uint64 { return p.ids[pos] }

// Touched reports whether the batch wrote final position pos.
func (p *ShardPlan) Touched(pos int) bool { return p.touched[pos] }

// ShardPositions returns the final positions shard s owns, in ascending
// (admission) order. The slice is owned by the plan; do not mutate.
func (p *ShardPlan) ShardPositions(s int) []int32 { return p.positions[s] }

// Reduce produces shard s's fragment: the touched positions it owns, in
// admission order, with their final micro-clusters and a content
// checksum. Reduce only reads the plan, so all shards may reduce
// concurrently.
func (p *ShardPlan) Reduce(s int) *ShardFragment {
	frag := &ShardFragment{Shard: s}
	n := 0
	for _, pos := range p.positions[s] {
		if p.touched[pos] {
			n++
		}
	}
	if n > 0 {
		frag.Positions = make([]int32, 0, n)
		frag.Upserts = make([]MicroCluster, 0, n)
		for _, pos := range p.positions[s] {
			if !p.touched[pos] {
				continue
			}
			frag.Positions = append(frag.Positions, pos)
			frag.Upserts = append(frag.Upserts, p.final[pos])
		}
	}
	frag.Checksum = frag.checksum()
	return frag
}

// Fold applies the fragments to the model, serialized: replacements by
// ascending shard index (disjoint positions, so any order yields the
// same state — shard order makes it deterministic), then creations in
// global update order so the allocator hands out exactly the pre-assigned
// ids. Fragment checksums are re-verified first; a mismatch means the
// fragments were corrupted between Reduce and Fold.
func (p *ShardPlan) Fold(model *Model, frags []*ShardFragment) error {
	if len(frags) != p.shards {
		return fmt.Errorf("core: shard fold: %d fragments for %d shards", len(frags), p.shards)
	}
	for s, frag := range frags {
		if frag == nil {
			return fmt.Errorf("core: shard fold: shard %d produced no fragment", s)
		}
		if frag.Shard != s {
			return fmt.Errorf("core: shard fold: fragment %d labeled shard %d", s, frag.Shard)
		}
		if sum := frag.checksum(); sum != frag.Checksum {
			return fmt.Errorf("core: shard fold: shard %d fragment checksum mismatch: got %#x, want %#x",
				s, sum, frag.Checksum)
		}
		for i, pos := range frag.Positions {
			if int(pos) >= p.baseLen {
				continue // creations are admitted below, in global order
			}
			// Positional replace: the plan resolved the position, so the
			// fold skips the id -> position lookup the serial path pays
			// per update.
			if err := model.ReplaceAt(int(pos), frag.Upserts[i]); err != nil {
				return fmt.Errorf("core: shard fold: %w", err)
			}
		}
	}
	for i, mc := range p.creations {
		want := p.firstNew + uint64(i)
		if id := model.Add(mc); id != want {
			return fmt.Errorf("core: shard fold: creation admitted as id %d, planner predicted %d", id, want)
		}
	}
	// An update that targeted a mid-batch creation replaced it in the
	// plan's final layout; mirror that on the live model now that the
	// creation holds its id.
	for i, mc := range p.creations {
		pos := p.baseLen + i
		if p.final[pos] != mc {
			if err := model.ReplaceAt(pos, p.final[pos]); err != nil {
				return fmt.Errorf("core: shard fold: %w", err)
			}
		}
	}
	return nil
}

// ShardedRun drives one sharded global update: it carries the shard
// count, the reducer pool and the planner, and splits the wall time an
// implementation spends into the parallel apply phase and the serialized
// fold/residue phase (feeding RunStats.GlobalApply/GlobalFold).
type ShardedRun struct {
	shards   int
	pool     *ReducerPool
	planner  *ShardPlanner
	applyWall time.Duration
	foldWall  time.Duration
}

// NewShardedRun builds a run over the given shard count. A nil pool gets
// a GOMAXPROCS-bounded one; a nil planner gets a fresh one (the pipeline
// passes its persistent planner so steady-state planning reuses buffers).
func NewShardedRun(shards int, pool *ReducerPool, planner *ShardPlanner) *ShardedRun {
	if shards < 1 {
		shards = 1
	}
	if pool == nil {
		pool = NewReducerPool(0)
	}
	if planner == nil {
		planner = NewShardPlanner()
	}
	return &ShardedRun{shards: shards, pool: pool, planner: planner}
}

// Shards returns the shard count.
func (r *ShardedRun) Shards() int { return r.shards }

// Pool returns the reducer pool, for implementations that parallelize
// residue-internal work (e.g. nearest-neighbor recomputation) beyond the
// per-shard Parallel calls.
func (r *ShardedRun) Pool() *ReducerPool { return r.pool }

// Plan classifies updates against model with the run's shard count,
// reusing the run's planner buffers.
func (r *ShardedRun) Plan(model *Model, updates []Update) (*ShardPlan, error) {
	return r.planner.Plan(model, updates, r.shards)
}

// Parallel runs f once per shard on the reducer pool and accounts the
// wall time to the apply phase. It is a barrier: every shard completes
// (or the first error by shard index is returned) before it returns.
func (r *ShardedRun) Parallel(f func(shard int) error) error {
	start := time.Now()
	err := r.pool.Run(r.shards, f)
	r.applyWall += time.Since(start)
	return err
}

// Residue runs the serialized cross-shard phase and accounts the wall
// time to the fold phase.
func (r *ShardedRun) Residue(f func() error) error {
	start := time.Now()
	err := f()
	r.foldWall += time.Since(start)
	return err
}

// ApplyWall returns the accumulated parallel-phase wall time.
func (r *ShardedRun) ApplyWall() time.Duration { return r.applyWall }

// FoldWall returns the accumulated serialized-phase wall time.
func (r *ShardedRun) FoldWall() time.Duration { return r.foldWall }
