package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"

	"diststream/internal/checkpoint"
	"diststream/internal/stream"
	"diststream/internal/vclock"
)

// StateCodec is implemented by algorithms whose model state can be
// durably checkpointed and restored. The four shipped algorithms (and
// "simple") all implement it by delegating to the model state codec
// below after registering their micro-cluster wire types; a custom
// algorithm that wants checkpoint/resume support does the same.
type StateCodec interface {
	// EncodeState serializes the full model (micro-clusters, id
	// allocator, virtual clock, algorithm metadata).
	EncodeState(m *Model) ([]byte, error)
	// DecodeState reconstructs a model from EncodeState output. It must
	// reject state encoded for a different algorithm and must return an
	// error — never panic — on corrupt input.
	DecodeState(data []byte) (*Model, error)
}

// CheckpointConfig enables durable checkpointing of a pipeline run.
// After every EveryNBatches-th batch's global update, the pipeline
// atomically persists a snapshot of the model, the virtual clock, the
// stream position and the adaptive-batch state to Dir; a new pipeline
// with the same configuration can continue the run bit-identically via
// Pipeline.ResumeFrom.
type CheckpointConfig struct {
	// Dir is the checkpoint directory. Required.
	Dir string
	// EveryNBatches is the checkpoint cadence in batches. Default 1.
	EveryNBatches int
	// Keep is how many checkpoints to retain; older ones are pruned
	// after each successful write. Default 3.
	Keep int
}

func (c *CheckpointConfig) withDefaults() (CheckpointConfig, error) {
	out := *c
	if out.Dir == "" {
		return out, errors.New("core: checkpoint config needs a Dir")
	}
	if out.EveryNBatches < 0 {
		return out, fmt.Errorf("core: checkpoint cadence %d must not be negative", out.EveryNBatches)
	}
	if out.EveryNBatches == 0 {
		out.EveryNBatches = 1
	}
	if out.Keep <= 0 {
		out.Keep = 3
	}
	return out, nil
}

// modelState is the gob envelope for a Model. Micro-clusters travel as
// interface values, so their concrete types must be gob-registered (the
// algorithm RegisterWireTypes functions do this — the same machinery
// that ships snapshots to TCP workers).
type modelState struct {
	MCs  []MicroCluster
	Next uint64
	Now  vclock.Time
	Meta map[string]float64
}

// EncodeState serializes the model: live micro-clusters in admission
// order, the id allocator, the virtual clock and algorithm metadata.
// The caller must have registered the micro-cluster types with gob.
func (m *Model) EncodeState() ([]byte, error) {
	var buf bytes.Buffer
	st := modelState{MCs: m.mcs, Next: m.next, Now: m.now, Meta: m.meta}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("core: encode model state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeModelState reconstructs a model from EncodeState output,
// validating structural invariants (no nil or duplicate-id
// micro-clusters, id allocator ahead of every live id) so corrupt input
// yields an error rather than a model that misbehaves later.
func DecodeModelState(data []byte) (*Model, error) {
	var st modelState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: decode model state: %w", err)
	}
	m := &Model{
		mcs:   st.MCs,
		index: make(map[uint64]int, len(st.MCs)),
		next:  st.Next,
		now:   st.Now,
		meta:  st.Meta,
	}
	if m.next == 0 {
		m.next = 1
	}
	for i, mc := range st.MCs {
		if mc == nil {
			return nil, fmt.Errorf("core: decode model state: micro-cluster %d is nil", i)
		}
		id := mc.ID()
		if _, dup := m.index[id]; dup {
			return nil, fmt.Errorf("core: decode model state: duplicate micro-cluster id %d", id)
		}
		if id >= m.next {
			return nil, fmt.Errorf("core: decode model state: micro-cluster id %d not below allocator %d", id, m.next)
		}
		m.index[id] = i
	}
	return m, nil
}

// pipelineStateFormat versions the pipeline snapshot payload inside the
// checkpoint envelope.
const pipelineStateFormat = 1

// pipelineState is everything the driver needs to continue a run
// exactly where it stopped: the encoded model, the warm-up buffer, the
// accumulated statistics and the stream position (which carries the
// adaptive batch interval).
type pipelineState struct {
	Format      int
	Algorithm   string
	Params      Params
	Initialized bool
	InitBuf     []stream.Record
	Model       []byte
	Stats       RunStats
	Batcher     stream.BatcherState
	BatchesSeen int
}

// writeCheckpoint persists the current pipeline state. Called from the
// batch loop after a completed global update (and after the adaptive
// controller adjusted the interval), so the snapshot is always a
// consistent batch boundary.
func (p *Pipeline) writeCheckpoint(batcher *stream.Batcher) error {
	// Count this checkpoint before encoding the stats so a resumed run's
	// counter continues from a total that includes the snapshot it was
	// restored from.
	p.stats.Checkpoints++
	return p.writeCheckpointState(p.stats, batcher.State(), p.batchesSeen, p.initialized, p.initBuf)
}

// writeCheckpointState persists a pipeline snapshot built from captured
// state, so the synchronous batch loop and the overlapped runner's async
// checkpoint tail produce bit-identical payloads. The model is encoded
// from p.model directly: the caller guarantees no model mutation is in
// flight (trivially true on the batch loop; enforced by the join
// discipline in the overlapped runner).
func (p *Pipeline) writeCheckpointState(stats RunStats, batcherState stream.BatcherState,
	batchesSeen int, initialized bool, initBuf []stream.Record) error {
	codec, ok := p.cfg.Algorithm.(StateCodec)
	if !ok { // NewPipeline validated this; defend anyway
		return fmt.Errorf("core: algorithm %q does not implement StateCodec", p.cfg.Algorithm.Name())
	}
	modelBytes, err := codec.EncodeState(p.model)
	if err != nil {
		return err
	}
	st := pipelineState{
		Format:      pipelineStateFormat,
		Algorithm:   p.cfg.Algorithm.Name(),
		Params:      p.cfg.Algorithm.Params(),
		Initialized: initialized,
		InitBuf:     initBuf,
		Model:       modelBytes,
		Stats:       stats,
		Batcher:     batcherState,
		BatchesSeen: batchesSeen,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return fmt.Errorf("core: encode checkpoint: %w", err)
	}
	if _, err := checkpoint.Write(p.cfg.Checkpoint.Dir, uint64(batchesSeen), buf.Bytes()); err != nil {
		return err
	}
	return checkpoint.Prune(p.cfg.Checkpoint.Dir, p.cfg.Checkpoint.Keep)
}

// ResumeFrom loads the newest valid checkpoint from dir into this
// pipeline. The pipeline must be freshly built with the same algorithm
// and parameters as the interrupted run (mismatches are rejected — a
// resumed run under different parameters would silently change
// semantics) and must not have processed any records yet.
//
// The next Run/RunContext call must receive a source that replays the
// original stream from the beginning; the pipeline skips the records the
// interrupted run already consumed and continues bit-identically to an
// uninterrupted run.
func (p *Pipeline) ResumeFrom(dir string) error {
	if p.batchesSeen > 0 || p.initialized || len(p.initBuf) > 0 || p.model.Len() > 0 {
		return errors.New("core: ResumeFrom on a pipeline that already processed records")
	}
	codec, ok := p.cfg.Algorithm.(StateCodec)
	if !ok {
		return fmt.Errorf("core: algorithm %q does not implement StateCodec; cannot resume", p.cfg.Algorithm.Name())
	}
	_, payload, path, err := checkpoint.LoadLatest(dir)
	if err != nil {
		return err
	}
	var st pipelineState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return fmt.Errorf("core: decode checkpoint %s: %w", path, err)
	}
	if st.Format != pipelineStateFormat {
		return fmt.Errorf("core: checkpoint %s has format %d, want %d", path, st.Format, pipelineStateFormat)
	}
	if st.Algorithm != p.cfg.Algorithm.Name() {
		return fmt.Errorf("core: checkpoint %s was written by algorithm %q, pipeline runs %q",
			path, st.Algorithm, p.cfg.Algorithm.Name())
	}
	if !reflect.DeepEqual(st.Params, p.cfg.Algorithm.Params()) {
		return fmt.Errorf("core: checkpoint %s was written with different algorithm parameters", path)
	}
	if st.Batcher.Interval <= 0 {
		return fmt.Errorf("core: checkpoint %s carries invalid batch interval %v", path, st.Batcher.Interval)
	}
	model, err := codec.DecodeState(st.Model)
	if err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", path, err)
	}
	p.model = model
	p.stats = st.Stats
	p.initialized = st.Initialized
	p.initBuf = st.InitBuf
	p.batchesSeen = st.BatchesSeen
	p.wallBase = st.Stats.TotalWall
	rs := st.Batcher
	p.resume = &rs
	return nil
}

// applyResume positions a fresh source and batcher at the checkpointed
// stream offset: the already-processed prefix is replayed and discarded,
// then the batcher's window bookkeeping is restored.
func (p *Pipeline) applyResume(ctx context.Context, src stream.Source, batcher *stream.Batcher) error {
	st := p.resume
	for i := 0; i < st.Consumed; i++ {
		if i%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if _, err := src.Next(); err != nil {
			return fmt.Errorf("core: resume: source ended at record %d while replaying %d consumed records: %w",
				i, st.Consumed, err)
		}
	}
	if err := batcher.Restore(*st); err != nil {
		return err
	}
	p.resume = nil
	return nil
}
