package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"slices"
	"time"

	"diststream/internal/mbsp"
	"diststream/internal/mbsp/sched"
	"diststream/internal/stream"
	"diststream/internal/vclock"
)

// OrderMode selects between the paper's order-aware update mechanism and
// the unordered mini-batch baseline.
type OrderMode int

// Order modes.
const (
	// OrderAware preserves arrival order in local updates and
	// created/updated-time order in the global update (the DistStream
	// design, §IV-C).
	OrderAware OrderMode = iota + 1
	// OrderUnordered processes records and updates in an arbitrary
	// (deterministically scrambled) order — the baseline of [13].
	OrderUnordered
)

// String renders the mode name used in experiment reports.
func (m OrderMode) String() string {
	switch m {
	case OrderAware:
		return "ordered"
	case OrderUnordered:
		return "unordered"
	default:
		return fmt.Sprintf("ordermode(%d)", int(m))
	}
}

// BatchHook runs on the driver after each batch's global update; quality
// evaluation and offline-clustering triggers hang off it. Returning an
// error aborts the run.
type BatchHook func(batch stream.Batch, model *Model) error

// Config configures a DistStream pipeline.
type Config struct {
	// Algorithm is the stream clustering algorithm to parallelize.
	Algorithm Algorithm
	// Engine executes the parallel stages.
	Engine *mbsp.Engine
	// Schedule is the batch execution strategy driving the parallel
	// stages (see internal/mbsp/sched). Nil selects the strict BSP
	// schedule. An Overlapped schedule additionally lets the driver run
	// the previous batch's publish/checkpoint tail and the next batch's
	// prefetch concurrently with the current batch's parallel stages;
	// the global update runs exclusively on the batch loop (serial, or
	// sharded via GlobalShards — never concurrent with a previous batch's
	// tail), so final model state is bit-identical across schedules.
	Schedule sched.Schedule
	// GlobalShards, when >= 1, partitions the global update's micro-
	// cluster keyspace into that many shards and runs the per-MC phase as
	// parallel per-shard reducers with a serialized cross-shard residue —
	// byte-identical to the serial path. It takes effect only for
	// algorithms implementing ShardedGlobalUpdater (CluStream, DenStream);
	// others transparently keep the serial global update. 0 (default)
	// selects the serial path for every algorithm.
	GlobalShards int
	// BatchInterval is the mini-batch window in virtual seconds.
	BatchInterval vclock.Duration
	// Order defaults to OrderAware.
	Order OrderMode
	// InitRecords is the warm-up sample size used to initialize the
	// micro-clusters with batch-mode clustering. Default 500.
	InitRecords int
	// DisablePreMerge turns off the §V-C outlier pre-merge optimization
	// (used by the ablation benchmark).
	DisablePreMerge bool
	// DecayAlpha/DecayBeta, when both set, enforce the §IV-D maximum
	// batch interval log_beta(1/alpha).
	DecayAlpha, DecayBeta float64
	// Adaptive, when set, adjusts the batch interval at run time toward
	// a target records-per-batch (the paper's §VII-D3 future work). The
	// BatchInterval is then only the starting point.
	Adaptive *AdaptiveBatch
	// Checkpoint, when set, durably snapshots the run every
	// EveryNBatches batches so it can be continued with ResumeFrom after
	// a driver crash. Requires an Algorithm implementing StateCodec.
	Checkpoint *CheckpointConfig
	// OnBatch, when set, runs after every batch's global update.
	OnBatch BatchHook
	// OnPublish, when set, receives a frozen copy of the model (cloned
	// micro-clusters plus a prebuilt FlatIndex and the algorithm's search
	// snapshot) after model initialization and after every batch's global
	// update. The published data is never touched by the pipeline again,
	// so receivers may retain it and read it concurrently — this is the
	// feed for the model-serving subsystem (internal/serve).
	OnPublish PublishHook
	// PublishMinInterval, when positive, paces OnPublish by wall time:
	// after a publication, further batches skip the hook (and the model
	// clone, index and snapshot built for it) until the interval has
	// elapsed. A saturated ingest loop can complete hundreds of batches
	// per second, and no downstream consumer — HTTP serving, replica
	// fan-out — needs a frozen model at that cadence; pacing keeps the
	// publication cost bounded by wall time instead of by ingest speed.
	// The first publication (the initialized model) is never skipped.
	// 0 publishes after every batch.
	PublishMinInterval time.Duration
}

// StageStats accumulates wall time spent in one pipeline stage.
type StageStats struct {
	Wall  time.Duration
	Count int
}

// RunStats summarizes a pipeline run.
type RunStats struct {
	Batches        int
	Records        int
	InitRecords    int
	UpdatedMCs     int
	CreatedMCs     int
	OutlierRecords int
	Assign         StageStats
	Shuffle        StageStats
	LocalUpdate    StageStats
	// GlobalUpdate times the whole driver-side global update call per
	// batch (apply + fold, excluding the sort). The sub-timings below
	// attribute where that wall time goes.
	GlobalUpdate StageStats
	// GlobalSort times the order-aware sort (or baseline scramble) of the
	// collected updates.
	GlobalSort StageStats
	// GlobalApply times the per-MC application phase: the whole
	// GlobalUpdate call on the serial path, the parallel per-shard
	// reducer phase on the sharded path.
	GlobalApply StageStats
	// GlobalFold times the sharded path's serialized residue (fragment
	// fold, merges, deletions, sweeps); zero on the serial path.
	GlobalFold StageStats
	// ShardedGlobalBatches counts batches whose global update ran the
	// sharded path (GlobalShards >= 1 and the algorithm has the
	// capability).
	ShardedGlobalBatches int
	TotalWall            time.Duration
	// StragglerTasks and TotalTasks aggregate over all parallel stages.
	StragglerTasks, TotalTasks int
	// TaskRetries counts task re-executions across all parallel stages:
	// op-level retries on the local executor, transport retries and
	// re-dispatches after worker loss on the TCP executor. A fault-free
	// run reports 0.
	TaskRetries int
	// FailedStages counts parallel stage executions that returned an
	// error (the run then aborted, unless the executor recovered).
	FailedStages int
	// LostWorkers counts workers declared permanently lost during the
	// run (TCP executor only): the run degraded onto the survivors.
	LostWorkers int
	// AdaptiveAdjustments counts batch-interval changes made by the
	// adaptive controller; FinalBatchSeconds is the interval it settled
	// on (0 when adaptation is off).
	AdaptiveAdjustments int
	FinalBatchSeconds   float64
	// Checkpoints counts durable snapshots written during the run
	// (carried across a resume, so an interrupted-and-resumed run
	// reports the same total as an uninterrupted one).
	Checkpoints int
	// SpeculativeLaunches counts backup task copies dispatched for
	// suspected stragglers; SpeculativeWins counts backups whose result
	// was committed before the primary finished.
	SpeculativeLaunches int
	SpeculativeWins     int
	// DeltaBroadcasts counts batches whose model broadcast shipped as a
	// delta (TCP executor with RPCOptions.DeltaBroadcast on; workers
	// without the previous version still receive the full snapshot).
	DeltaBroadcasts int
	// WorkerJoins and WorkerDepartures count membership changes applied
	// at batch boundaries (executors with ElasticMembership only): a
	// join is a worker admitted — or readmitted after a crash — into the
	// dispatch rotation with full broadcast catch-up; a departure is a
	// worker that left it (crash, exhausted health probes, or clean
	// drain). A fixed-membership run reports 0 for both.
	WorkerJoins      int
	WorkerDepartures int
}

// Throughput returns processed records per wall-clock second.
func (s RunStats) Throughput() float64 {
	if s.TotalWall <= 0 {
		return 0
	}
	return float64(s.Records) / s.TotalWall.Seconds()
}

// StragglerFraction returns the fraction of parallel tasks that were
// stragglers (>1.2x stage mean).
func (s RunStats) StragglerFraction() float64 {
	if s.TotalTasks == 0 {
		return 0
	}
	return float64(s.StragglerTasks) / float64(s.TotalTasks)
}

// Pipeline is a running DistStream instance: the driver-side batch loop
// over an mbsp engine.
type Pipeline struct {
	cfg      Config
	schedule sched.Schedule
	model    *Model
	stats    RunStats

	// Sharded global update machinery (nil sharder: serial path). The
	// pool and planner persist across batches so steady-state sharded
	// updates neither spawn state nor allocate plan buffers per batch.
	sharder      ShardedGlobalUpdater
	shardPool    *ReducerPool
	shardPlanner *ShardPlanner

	initBuf     []stream.Record
	initialized bool
	configSent  bool

	// Delta broadcast bookkeeping: the clone list most recently
	// broadcast successfully (nil when the workers' state is unknown —
	// start of run, after a resume, after a failed broadcast — which
	// forces the next broadcast to carry the full snapshot) and the
	// broadcast sequence number stamped into deltas.
	lastBroadcast []MicroCluster
	modelVersion  uint64

	// Checkpoint/resume bookkeeping. batchesSeen counts every batch the
	// batcher emitted (including ones fully absorbed by warm-up, which
	// ProcessBatch does not count in stats.Batches) and doubles as the
	// checkpoint sequence number. resume holds a restored stream
	// position until the next RunContext applies it; wallBase carries
	// the interrupted run's wall time into the resumed total.
	batchesSeen int
	resume      *stream.BatcherState
	wallBase    time.Duration

	// lastPublish is when the OnPublish hook last ran; the publication
	// pacing clock (see Config.PublishMinInterval).
	lastPublish time.Time
}

// NewPipeline validates cfg and builds a pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Algorithm == nil {
		return nil, errors.New("core: config needs an Algorithm")
	}
	if cfg.Engine == nil {
		return nil, errors.New("core: config needs an Engine")
	}
	if cfg.BatchInterval <= 0 {
		return nil, fmt.Errorf("core: batch interval %v must be positive", cfg.BatchInterval)
	}
	if cfg.Order == 0 {
		cfg.Order = OrderAware
	}
	if cfg.Order != OrderAware && cfg.Order != OrderUnordered {
		return nil, fmt.Errorf("core: invalid order mode %d", int(cfg.Order))
	}
	if cfg.InitRecords <= 0 {
		cfg.InitRecords = 500
	}
	if err := ValidateBatchInterval(cfg.BatchInterval, cfg.DecayAlpha, cfg.DecayBeta); err != nil {
		return nil, err
	}
	if cfg.Adaptive != nil {
		validated, err := cfg.Adaptive.validate(cfg.DecayAlpha, cfg.DecayBeta)
		if err != nil {
			return nil, err
		}
		cfg.Adaptive = &validated
	}
	if cfg.Checkpoint != nil {
		validated, err := cfg.Checkpoint.withDefaults()
		if err != nil {
			return nil, err
		}
		if _, ok := cfg.Algorithm.(StateCodec); !ok {
			return nil, fmt.Errorf("core: checkpointing requires algorithm %q to implement StateCodec",
				cfg.Algorithm.Name())
		}
		cfg.Checkpoint = &validated
	}
	if cfg.GlobalShards < 0 {
		return nil, fmt.Errorf("core: global shards %d must be >= 0", cfg.GlobalShards)
	}
	schedule := cfg.Schedule
	if schedule == nil {
		schedule, _ = sched.New(sched.BSP)
	}
	p := &Pipeline{cfg: cfg, schedule: schedule, model: NewModel()}
	if cfg.GlobalShards >= 1 {
		// Capability detection, same pattern as mbsp.Capabilities:
		// algorithms without a sharded decomposition keep the serial path.
		if sharder, ok := cfg.Algorithm.(ShardedGlobalUpdater); ok {
			p.sharder = sharder
			p.shardPool = NewReducerPool(0)
			p.shardPlanner = NewShardPlanner()
		}
	}
	return p, nil
}

// ShardedGlobal reports whether global updates run the sharded path:
// GlobalShards >= 1 and the algorithm implements ShardedGlobalUpdater.
func (p *Pipeline) ShardedGlobal() bool { return p.sharder != nil }

// Schedule returns the batch execution strategy the pipeline runs under.
func (p *Pipeline) Schedule() sched.Schedule { return p.schedule }

// Model returns the live model (driver-side view).
func (p *Pipeline) Model() *Model { return p.model }

// Stats returns a copy of the accumulated run statistics.
func (p *Pipeline) Stats() RunStats { return p.stats }

// Initialized reports whether the warm-up phase has completed.
func (p *Pipeline) Initialized() bool { return p.initialized }

// Offline runs the algorithm's offline phase on the current model.
func (p *Pipeline) Offline() (*Clustering, error) {
	return p.cfg.Algorithm.Offline(p.model)
}

// Run consumes the source to exhaustion, cutting it into mini-batches of
// the configured interval and processing each. It is RunContext with a
// background context; prefer RunContext when the caller needs to cancel
// or bound a streaming run.
func (p *Pipeline) Run(src stream.Source) (RunStats, error) {
	return p.RunContext(context.Background(), src)
}

// RunContext is Run under a context: cancelling ctx (or hitting its
// deadline) stops the run between batches — and interrupts in-flight
// worker calls on executors that support it — returning the context's
// error with the statistics accumulated so far.
func (p *Pipeline) RunContext(ctx context.Context, src stream.Source) (RunStats, error) {
	start := time.Now()
	batcher, err := stream.NewBatcher(src, p.cfg.BatchInterval)
	if err != nil {
		return p.stats, err
	}
	if p.resume != nil {
		if err := p.applyResume(ctx, src, batcher); err != nil {
			return p.stats, err
		}
	}
	if p.schedule.Overlapped() {
		return p.runOverlapped(ctx, batcher, start)
	}
	for {
		if err := ctx.Err(); err != nil {
			p.stats.TotalWall = p.wallBase + time.Since(start)
			return p.stats, err
		}
		batch, err := batcher.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return p.stats, err
		}
		if err := p.ProcessBatchContext(ctx, batch); err != nil {
			return p.stats, err
		}
		if p.cfg.Adaptive != nil {
			next := p.cfg.Adaptive.next(batcher.Interval(), len(batch.Records))
			if next != batcher.Interval() {
				if err := batcher.SetInterval(next); err != nil {
					return p.stats, err
				}
				p.stats.AdaptiveAdjustments++
			}
			p.stats.FinalBatchSeconds = float64(batcher.Interval())
		}
		p.batchesSeen++
		if p.cfg.Checkpoint != nil && p.batchesSeen%p.cfg.Checkpoint.EveryNBatches == 0 {
			if err := p.writeCheckpoint(batcher); err != nil {
				return p.stats, fmt.Errorf("core: checkpoint after batch %d: %w", p.batchesSeen, err)
			}
		}
	}
	if err := p.finishInit(); err != nil {
		return p.stats, err
	}
	p.stats.TotalWall = p.wallBase + time.Since(start)
	return p.stats, nil
}

// prefetchThreshold is the observed per-fetch wall time above which the
// overlapped runner prefetches the next batch asynchronously. Below it
// the source is effectively instant and the goroutine handoff would cost
// more than the fetch it hides.
const prefetchThreshold = 100 * time.Microsecond

// fetched is one prefetched batch plus the batcher position captured
// immediately after it was cut (the position the checkpoint tail must
// record even while the next prefetch advances the batcher).
type fetched struct {
	batch stream.Batch
	state stream.BatcherState
	eof   bool
	err   error
}

// runOverlapped is the batch loop for schedules with Overlapped() true.
// It overlaps three kinds of dependency-free work with batch N's
// broadcast+assign: batch N-1's publish/checkpoint tail (runs until
// runBatch joins it right before the global update), and the prefetch of
// batch N+1 from the source. The global update itself — the only model
// mutation — runs exclusively on the batch loop after that join (its
// sharded variant parallelizes internally but never overlaps another
// batch's work), so the final model is bit-identical to the synchronous
// loop's.
func (p *Pipeline) runOverlapped(ctx context.Context, batcher *stream.Batcher, start time.Time) (RunStats, error) {
	adaptive := p.cfg.Adaptive != nil
	// Prefetching from a source that delivers instantly (a replayed slice,
	// an in-memory buffer) costs more in goroutine handoffs than it hides,
	// so the async prefetch engages only while fetches are observed to be
	// slower than prefetchThreshold.
	fetchWall := prefetchThreshold
	fetch := func() *fetched {
		fetchStart := time.Now()
		f := &fetched{}
		f.batch, f.err = batcher.Next()
		if errors.Is(f.err, io.EOF) {
			f.err, f.eof = nil, true
		}
		if f.err == nil && !f.eof {
			f.state = batcher.State()
		}
		fetchWall = time.Since(fetchStart)
		return f
	}

	// post is the in-flight publish/checkpoint tail of a previous batch;
	// joinPost awaits it and surfaces its error exactly once.
	var post chan error
	joinPost := func() error {
		if post == nil {
			return nil
		}
		err := <-post
		post = nil
		return err
	}
	// inflight is the async prefetch of the next batch. takeFetch awaits
	// and consumes it.
	var inflight chan *fetched
	takeFetch := func() *fetched {
		if inflight == nil {
			return nil
		}
		f := <-inflight
		inflight = nil
		return f
	}
	fail := func(err error) (RunStats, error) {
		takeFetch()
		if jerr := joinPost(); jerr != nil && err == nil {
			err = jerr
		}
		return p.stats, err
	}

	cur := fetch()
	for {
		if err := ctx.Err(); err != nil {
			takeFetch()
			_ = joinPost() // subsumed by the cancellation
			p.stats.TotalWall = p.wallBase + time.Since(start)
			return p.stats, err
		}
		if cur.err != nil {
			return fail(cur.err)
		}
		if cur.eof {
			break
		}
		// Start prefetching the next batch while this one runs. Skipped
		// under adaptive batching: the controller retunes the interval
		// after this batch, which must happen before the next cut.
		// (fetchWall is safe to read here: the goroutine that last wrote
		// it was consumed by takeFetch's channel receive.)
		if !adaptive && fetchWall >= prefetchThreshold {
			ch := make(chan *fetched, 1)
			inflight = ch
			go func() { ch <- fetch() }()
		}
		batch := cur.batch
		stateAfter := cur.state

		processed, err := p.runBatch(ctx, batch, joinPost)
		if err != nil {
			return fail(err)
		}
		if adaptive {
			next := p.cfg.Adaptive.next(batcher.Interval(), len(batch.Records))
			if next != batcher.Interval() {
				if err := batcher.SetInterval(next); err != nil {
					return fail(err)
				}
				p.stats.AdaptiveAdjustments++
			}
			p.stats.FinalBatchSeconds = float64(batcher.Interval())
			stateAfter = batcher.State()
		}
		p.batchesSeen++
		checkpointDue := p.cfg.Checkpoint != nil && p.batchesSeen%p.cfg.Checkpoint.EveryNBatches == 0
		if (processed && p.cfg.OnPublish != nil) || checkpointDue {
			// Normally a no-op (runBatch already joined before its global
			// update); real only when this batch was absorbed by warm-up
			// without triggering initialization.
			if err := joinPost(); err != nil {
				return fail(err)
			}
			post = p.schedulePost(processed, checkpointDue, stateAfter)
		}
		if cur = takeFetch(); cur == nil {
			cur = fetch()
		}
	}
	if err := joinPost(); err != nil {
		return p.stats, err
	}
	if err := p.finishInit(); err != nil {
		return p.stats, err
	}
	p.stats.TotalWall = p.wallBase + time.Since(start)
	return p.stats, nil
}

// schedulePost launches the publish/checkpoint tail of the batch that
// just completed its global update. Everything the tail needs is
// captured by value here, on the batch loop, so the tail reads nothing a
// later batch mutates — except the model itself, which the join
// discipline keeps immutable until the tail is awaited.
func (p *Pipeline) schedulePost(processed, checkpointDue bool, batcherState stream.BatcherState) chan error {
	pubStats := p.stats
	var ckStats RunStats
	var seq int
	var initialized bool
	var initBuf []stream.Record
	if checkpointDue {
		// Count the checkpoint on the loop now, exactly where the
		// synchronous path does, so later batches' stats include it.
		p.stats.Checkpoints++
		ckStats = p.stats
		seq = p.batchesSeen
		initialized = p.initialized
		initBuf = slices.Clone(p.initBuf)
	}
	ch := make(chan error, 1)
	go func() {
		if processed {
			p.publish(pubStats)
		}
		var err error
		if checkpointDue {
			if werr := p.writeCheckpointState(ckStats, batcherState, seq, initialized, initBuf); werr != nil {
				err = fmt.Errorf("core: checkpoint after batch %d: %w", seq, werr)
			}
		}
		ch <- err
	}()
	return ch
}

// ProcessBatch runs one mini-batch through the three pipeline steps.
// Records consumed by warm-up initialization do not flow through the
// parallel stages.
func (p *Pipeline) ProcessBatch(batch stream.Batch) error {
	return p.ProcessBatchContext(context.Background(), batch)
}

// ProcessBatchContext is ProcessBatch under a context, which bounds the
// batch's broadcasts and parallel stages.
func (p *Pipeline) ProcessBatchContext(ctx context.Context, batch stream.Batch) error {
	processed, err := p.runBatch(ctx, batch, nil)
	if err != nil {
		return err
	}
	if processed {
		p.publish(p.stats)
	}
	return nil
}

// runBatch drives one mini-batch through the configured schedule's
// parallel stages and the driver's global update. join, when non-nil, is
// awaited immediately before the first model mutation (the overlapped
// runner passes the join of the previous batch's publish/checkpoint
// tail). It reports whether the batch flowed through the parallel stages
// (false: fully absorbed by warm-up).
func (p *Pipeline) runBatch(ctx context.Context, batch stream.Batch, join func() error) (bool, error) {
	records := batch.Records
	if !p.initialized {
		var err error
		records, err = p.absorbInit(records, join)
		if err != nil {
			return false, err
		}
		if len(records) == 0 {
			return false, nil
		}
	}
	p.stats.Batches++
	p.stats.Records += len(records)

	// Reconcile elastic membership at the batch boundary, before the job
	// is built: departed workers leave the rotation and announced joiners
	// are admitted (caught up via full broadcast replay), so this batch
	// dispatches against the settled worker set.
	if p.cfg.Engine.Capabilities().ElasticMembership {
		delta, err := p.cfg.Engine.ReconcileMembership(ctx)
		if err != nil {
			return false, fmt.Errorf("core: membership reconcile: %w", err)
		}
		p.stats.WorkerJoins += len(delta.Joined)
		p.stats.WorkerDepartures += len(delta.Departed)
	}

	job, list, err := p.buildJob(records)
	if err != nil {
		return false, err
	}
	// The workers' broadcast state is unknown from the moment the
	// schedule starts until it succeeds; any failure in between forces
	// the next batch's broadcast to carry the full snapshot.
	p.lastBroadcast = nil
	res, err := p.schedule.RunBatch(ctx, p.cfg.Engine, job)
	if err != nil {
		p.accountEngineMetrics()
		return false, fmt.Errorf("core: %w", err)
	}
	p.lastBroadcast = list
	p.configSent = true
	p.stats.Assign.Wall += res.AssignWall
	p.stats.Assign.Count++
	p.stats.Shuffle.Wall += res.ShuffleWall
	p.stats.Shuffle.Count++
	p.stats.LocalUpdate.Wall += res.LocalWall
	p.stats.LocalUpdate.Count++

	updates, err := collectUpdates(res.Updates)
	if err != nil {
		return false, err
	}

	// Driver-side global update (§V-C) with order-aware application
	// (§IV-C2): serial by default, or sharded into parallel per-shard
	// reducers plus a serialized residue when GlobalShards is set and the
	// algorithm has the capability.
	sortStart := time.Now()
	if p.cfg.Order == OrderAware {
		SortUpdatesByOrderTime(updates)
	} else {
		ScrambleUpdates(updates)
	}
	p.stats.GlobalSort.Wall += time.Since(sortStart)
	p.stats.GlobalSort.Count++
	if join != nil {
		if err := join(); err != nil {
			return false, err
		}
	}
	globalStart := time.Now()
	if p.sharder != nil {
		run := NewShardedRun(p.cfg.GlobalShards, p.shardPool, p.shardPlanner)
		if err := p.sharder.GlobalUpdateSharded(p.model, updates, batch.End, run); err != nil {
			return false, fmt.Errorf("core: sharded global update: %w", err)
		}
		p.stats.GlobalApply.Wall += run.ApplyWall()
		p.stats.GlobalFold.Wall += run.FoldWall()
		p.stats.GlobalFold.Count++
		p.stats.ShardedGlobalBatches++
	} else {
		if err := p.cfg.Algorithm.GlobalUpdate(p.model, updates, batch.End); err != nil {
			return false, fmt.Errorf("core: global update: %w", err)
		}
		p.stats.GlobalApply.Wall += time.Since(globalStart)
	}
	p.stats.GlobalApply.Count++
	p.stats.GlobalUpdate.Wall += time.Since(globalStart)
	p.stats.GlobalUpdate.Count++
	p.model.SetNow(batch.End)

	p.accountUpdates(updates)
	p.accountEngineMetrics()

	if p.cfg.OnBatch != nil {
		if err := p.cfg.OnBatch(batch, p.model); err != nil {
			return false, fmt.Errorf("core: batch hook: %w", err)
		}
	}
	return true, nil
}

// absorbInit feeds records into the warm-up buffer and initializes the
// model once full. It returns the records left over for normal
// processing. join, when non-nil, is awaited before the model-mutating
// initialization step (never for the plain buffer append).
func (p *Pipeline) absorbInit(records []stream.Record, join func() error) ([]stream.Record, error) {
	need := p.cfg.InitRecords - len(p.initBuf)
	if need > len(records) {
		need = len(records)
	}
	p.initBuf = append(p.initBuf, records[:need]...)
	records = records[need:]
	if len(p.initBuf) < p.cfg.InitRecords {
		return records, nil
	}
	if join != nil {
		if err := join(); err != nil {
			return nil, err
		}
	}
	if err := p.runInit(); err != nil {
		return nil, err
	}
	return records, nil
}

// finishInit initializes from a partial buffer when the stream ends
// before the warm-up sample fills.
func (p *Pipeline) finishInit() error {
	if p.initialized || len(p.initBuf) == 0 {
		return nil
	}
	return p.runInit()
}

func (p *Pipeline) runInit() error {
	mcs, err := p.cfg.Algorithm.Init(p.initBuf)
	if err != nil {
		return fmt.Errorf("core: init: %w", err)
	}
	for _, mc := range mcs {
		p.model.Add(mc)
	}
	p.stats.InitRecords = len(p.initBuf)
	p.model.SetNow(p.initBuf[len(p.initBuf)-1].Timestamp)
	p.initBuf = nil
	p.initialized = true
	// Publish the freshly initialized model so serving readers become
	// ready before the first post-warm-up batch completes.
	p.publish(p.stats)
	return nil
}

// buildJob freezes the model snapshot (plus a delta against the last
// successful broadcast, on engines with the capability), partitions the
// batch's records and packages everything into the schedule's job. It
// also returns the clone list to install as lastBroadcast once the
// schedule's broadcast succeeds. The full snapshot remains the fallback
// for fresh workers, reconnects and algorithms whose every micro-cluster
// changes per batch.
func (p *Pipeline) buildJob(records []stream.Record) (*sched.Job, []MicroCluster, error) {
	list := p.model.CloneList()
	snap := p.cfg.Algorithm.NewSnapshot(list)
	p.modelVersion++
	var delta mbsp.Item
	if differ, ok := p.cfg.Algorithm.(SnapshotDiffer); ok &&
		p.lastBroadcast != nil && p.cfg.Engine.Capabilities().DeltaBroadcast {
		if d, ok := differ.DiffState(p.lastBroadcast, list); ok {
			d.FromVersion, d.Version = p.modelVersion-1, p.modelVersion
			delta = d
			p.stats.DeltaBroadcasts++
		}
	}
	items := make([]mbsp.Item, len(records))
	for i, rec := range records {
		items[i] = rec
	}
	parts, err := mbsp.RoundRobin(items, p.cfg.Engine.Parallelism())
	if err != nil {
		return nil, nil, err
	}
	job := &sched.Job{
		ModelID:    BroadcastModel,
		Model:      snap,
		ModelDelta: delta,
		AssignOp:   OpAssign,
		LocalOp:    OpLocalUpdate,
		Inputs:     parts,
		Partitions: p.cfg.Engine.Parallelism(),
	}
	if !p.configSent {
		job.ConfigID = BroadcastConfig
		job.Config = TaskConfig{
			Params:        p.cfg.Algorithm.Params(),
			Ordered:       p.cfg.Order == OrderAware,
			PreMerge:      !p.cfg.DisablePreMerge,
			OutlierGroups: uint64(p.cfg.Engine.Parallelism()),
		}
	}
	return job, list, nil
}

func collectUpdates(items mbsp.Partition) ([]Update, error) {
	updates := make([]Update, len(items))
	for i, item := range items {
		u, ok := item.(Update)
		if !ok {
			return nil, fmt.Errorf("core: local-update output %d is %T, want Update", i, item)
		}
		updates[i] = u
	}
	return updates, nil
}

func (p *Pipeline) accountUpdates(updates []Update) {
	for _, u := range updates {
		switch u.Kind {
		case KindUpdated:
			p.stats.UpdatedMCs++
		case KindCreated:
			p.stats.CreatedMCs++
			p.stats.OutlierRecords += u.Absorbed
		}
	}
}

func (p *Pipeline) accountEngineMetrics() {
	// Fold the engine's per-stage task metrics into run totals, then
	// clear them so the next batch starts fresh. Runs on the error path
	// too, so failed stages and the retries leading up to a failure still
	// show in the stats.
	for _, sm := range p.cfg.Engine.Metrics() {
		p.stats.StragglerTasks += sm.Stragglers()
		p.stats.TotalTasks += len(sm.Tasks)
		p.stats.TaskRetries += sm.Retries()
		p.stats.SpeculativeLaunches += sm.SpeculativeLaunches()
		p.stats.SpeculativeWins += sm.SpeculativeWins()
		if sm.Failed {
			p.stats.FailedStages++
		}
	}
	p.cfg.Engine.ResetMetrics()
	// Worker losses can be detected on the broadcast path too, so this is
	// a level (not a delta): recompute it whenever metrics are folded.
	p.stats.LostWorkers = p.cfg.Engine.Parallelism() - p.cfg.Engine.AliveWorkers()
}
