package core

import (
	"time"

	"diststream/internal/vclock"
)

// Published is one frozen, self-consistent view of the model handed to a
// snapshot-publication hook after a global update completes. Everything in
// it is decoupled from the live pipeline: MCs are deep clones, Index and
// Search are built over those clones, and Stats is a value copy — so a
// receiver may retain the whole struct and read it from any number of
// goroutines while the pipeline keeps ingesting. Receivers must treat the
// contents as immutable.
type Published struct {
	// Batch is the number of processed batches at publication time. The
	// warm-up publication (made right after model initialization, before
	// any batch flows through the parallel stages) reports 0.
	Batch int
	// Time is the model's virtual time at publication.
	Time vclock.Time
	// MCs are deep clones of the live micro-clusters in admission order.
	MCs []MicroCluster
	// Index is a FlatIndex over MCs: contiguous centers, norms and ids
	// for one-vs-many nearest-neighbour kernels.
	Index *FlatIndex
	// Search is the algorithm's own search snapshot over MCs — the same
	// structure broadcast to assign tasks, including the algorithm's
	// absorbable-boundary decision.
	Search Snapshot
	// Params is the publishing algorithm's serializable configuration —
	// enough for a downstream consumer (a subscription hub, a replica
	// client) to reconstruct the algorithm from the registry without
	// holding a reference to the pipeline's instance.
	Params Params
	// Stats is a copy of the run statistics accumulated so far.
	Stats RunStats
}

// PublishHook receives each post-global-update model publication. Under
// the default BSP schedule it runs synchronously on the driver's batch
// loop; under an overlapped schedule it may run concurrently with the
// next batch's parallel stages (never with a model mutation, and never
// concurrently with itself). Either way implementations should be cheap
// (e.g. an atomic pointer swap); anything slow belongs on the receiver's
// side of that swap.
type PublishHook func(Published)

// publish clones the current model and hands it to the OnPublish hook.
// stats is passed by value so the overlapped runner can hand the hook
// the statistics as of the published batch while the loop keeps
// accumulating; the model itself is only read (CloneList/Now/snapshot),
// which the overlapped runner's join discipline makes safe.
func (p *Pipeline) publish(stats RunStats) {
	if p.cfg.OnPublish == nil {
		return
	}
	// Publication pacing: skip the whole clone+index+snapshot build while
	// the interval since the last publication has not elapsed. publish is
	// never called concurrently with itself (see PublishHook), so the
	// plain timestamp field needs no lock.
	if p.cfg.PublishMinInterval > 0 && !p.lastPublish.IsZero() &&
		time.Since(p.lastPublish) < p.cfg.PublishMinInterval {
		return
	}
	p.lastPublish = time.Now()
	clones := p.model.CloneList()
	idx := BuildFlatIndex(clones)
	pub := Published{
		Batch:  stats.Batches,
		Time:   p.model.Now(),
		MCs:    clones,
		Index:  &idx,
		Search: p.cfg.Algorithm.NewSnapshot(clones),
		Params: p.cfg.Algorithm.Params(),
		Stats:  stats,
	}
	p.cfg.OnPublish(pub)
}
