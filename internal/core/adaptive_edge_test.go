package core

import (
	"errors"
	"testing"

	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// slowStream emits one record per virtual second — the workload that
// makes the adaptive controller grow the interval toward its maximum.
func slowStream(n int) []stream.Record {
	recs := make([]stream.Record, n)
	for i := range recs {
		recs[i] = stream.Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(i),
			Values:    vector.Vector{0.01 * float64(i%5), 0},
		}
	}
	return recs
}

func TestAdaptiveRejectsZeroAndNegativeTarget(t *testing.T) {
	eng := newToyEngine(t, 2)
	for _, target := range []int{0, -5} {
		_, err := NewPipeline(Config{
			Algorithm:     newToyAlgo(),
			Engine:        eng,
			BatchInterval: 1,
			Adaptive:      &AdaptiveBatch{TargetRecords: target},
		})
		if err == nil {
			t.Errorf("TargetRecords=%d accepted", target)
		}
	}
}

func TestAdaptiveIntervalClampedByDecayBoundDuringRun(t *testing.T) {
	// With DecayAlpha/DecayBeta set, the §IV-D maximum log_beta(1/alpha)
	// (~25.3s for alpha=0.01, beta=1.2) must cap the adaptive interval at
	// run time even when the configured MaxSeconds is far larger.
	limit, err := MaxBatchSeconds(0.01, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPipeline(Config{
		Algorithm:     newToyAlgo(),
		Engine:        newToyEngine(t, 2),
		BatchInterval: 1,
		InitRecords:   10,
		DecayAlpha:    0.01,
		DecayBeta:     1.2,
		Adaptive:      &AdaptiveBatch{TargetRecords: 5000, MinSeconds: 1, MaxSeconds: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pl.Run(stream.NewSliceSource(slowStream(600)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.AdaptiveAdjustments == 0 {
		t.Fatal("controller never adjusted")
	}
	if stats.FinalBatchSeconds > float64(limit) {
		t.Errorf("final interval %v exceeds decay bound %v", stats.FinalBatchSeconds, float64(limit))
	}
	// The clamp must actually bind: a 5000-record target over a 1 rec/s
	// stream would otherwise push the interval well past the bound.
	if stats.FinalBatchSeconds < float64(limit)/2 {
		t.Errorf("final interval %v never approached the decay bound %v", stats.FinalBatchSeconds, float64(limit))
	}
}

func TestAdaptiveStateSurvivesResume(t *testing.T) {
	// The checkpointed batcher state carries the adapted interval, and the
	// checkpointed stats carry the adjustment counter: a crashed-and-
	// resumed adaptive run must finish with exactly the statistics of an
	// uninterrupted one.
	recs := slowStream(400)
	adaptive := func() *AdaptiveBatch {
		return &AdaptiveBatch{TargetRecords: 50, MinSeconds: 1, MaxSeconds: 8}
	}
	build := func(dir string, killAfter int) *Pipeline {
		cfg := Config{
			Algorithm:     newToyAlgo(),
			Engine:        newToyEngine(t, 2),
			BatchInterval: 1,
			InitRecords:   20,
			Adaptive:      adaptive(),
		}
		if dir != "" {
			cfg.Checkpoint = &CheckpointConfig{Dir: dir, EveryNBatches: 1}
		}
		if killAfter > 0 {
			batches := 0
			cfg.OnBatch = func(stream.Batch, *Model) error {
				batches++
				if batches >= killAfter {
					return errKill
				}
				return nil
			}
		}
		pl, err := NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}

	ref := build("", 0)
	refStats, err := ref.Run(stream.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if refStats.AdaptiveAdjustments == 0 {
		t.Fatal("reference run never adapted; the test exercises nothing")
	}

	dir := t.TempDir()
	killed := build(dir, 4)
	if _, err := killed.Run(stream.NewSliceSource(recs)); !errors.Is(err, errKill) {
		t.Fatalf("interrupted run: err = %v, want injected crash", err)
	}

	resumed := build(dir, 0)
	if err := resumed.ResumeFrom(dir); err != nil {
		t.Fatal(err)
	}
	resStats, err := resumed.Run(stream.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}

	if resStats.FinalBatchSeconds != refStats.FinalBatchSeconds {
		t.Errorf("final interval diverged: resumed %v, reference %v",
			resStats.FinalBatchSeconds, refStats.FinalBatchSeconds)
	}
	if resStats.AdaptiveAdjustments != refStats.AdaptiveAdjustments {
		t.Errorf("adjustment counts diverged: resumed %d, reference %d",
			resStats.AdaptiveAdjustments, refStats.AdaptiveAdjustments)
	}
	if resStats.Batches != refStats.Batches || resStats.Records != refStats.Records {
		t.Errorf("run shape diverged: resumed %d batches / %d records, reference %d / %d",
			resStats.Batches, resStats.Records, refStats.Batches, refStats.Records)
	}
}
