package core

import (
	"encoding/gob"
	"fmt"
	"slices"

	"diststream/internal/mbsp"
	"diststream/internal/stream"
	"diststream/internal/vclock"
)

// Broadcast ids and op names used by the pipeline. They are fixed so that
// remote workers, which register the same ops, resolve identically.
const (
	// BroadcastModel carries the frozen model snapshot for the batch.
	BroadcastModel = "diststream.model"
	// BroadcastConfig carries the TaskConfig.
	BroadcastConfig = "diststream.config"
	// OpAssign is the record-parallel closest-micro-cluster stage (§V-A).
	OpAssign = "diststream.assign"
	// OpLocalUpdate is the model-parallel local update stage (§V-B).
	OpLocalUpdate = "diststream.local-update"
)

// OutlierKeyBase marks shuffle keys that carry outlier records rather
// than micro-cluster ids: keys >= OutlierKeyBase route to outlier groups.
const OutlierKeyBase = uint64(1) << 63

// TaskConfig is the per-pipeline configuration broadcast to workers.
type TaskConfig struct {
	// Params reconstructs the algorithm on the worker.
	Params Params
	// Ordered selects the order-aware update mechanism; false runs the
	// unordered baseline.
	Ordered bool
	// PreMerge enables the §V-C outlier pre-merge optimization.
	PreMerge bool
	// OutlierGroups is the number of round-robin outlier key groups
	// (normally the parallelism degree).
	OutlierGroups uint64
}

// RegisterWireTypes registers the core types that cross executor
// boundaries with gob. Algorithm packages register their own
// micro-cluster and snapshot types.
func RegisterWireTypes() {
	gob.Register(TaskConfig{})
	gob.Register(Update{})
	gob.Register(Params{})
	// Snapshot deltas normally travel columnar; gob covers the fallback
	// (algorithms without a registered wire codec).
	gob.Register(&SnapshotDelta{})
}

// RegisterOps installs the two pipeline operations into an mbsp registry,
// resolving algorithms against algos. Both the driver process and every
// worker binary must call this with identically configured registries.
func RegisterOps(reg *mbsp.Registry, algos *AlgorithmRegistry) error {
	if reg == nil || algos == nil {
		return fmt.Errorf("core: RegisterOps requires registries")
	}
	// Snapshot deltas arriving at a worker resolve their algorithm
	// against the same registry the ops use.
	deltaAlgos.Store(algos)
	if err := reg.Register(OpAssign, makeAssignOp()); err != nil {
		return err
	}
	return reg.Register(OpLocalUpdate, makeLocalUpdateOp(algos))
}

// taskEnv resolves the broadcasts both ops need.
func taskEnv(ctx *mbsp.TaskContext) (Snapshot, TaskConfig, error) {
	sv, err := ctx.Broadcast(BroadcastModel)
	if err != nil {
		return nil, TaskConfig{}, err
	}
	snap, ok := sv.(Snapshot)
	if !ok {
		return nil, TaskConfig{}, fmt.Errorf("core: model broadcast is %T, want Snapshot", sv)
	}
	cv, err := ctx.Broadcast(BroadcastConfig)
	if err != nil {
		return nil, TaskConfig{}, err
	}
	cfg, ok := cv.(TaskConfig)
	if !ok {
		return nil, TaskConfig{}, fmt.Errorf("core: config broadcast is %T, want TaskConfig", cv)
	}
	if cfg.OutlierGroups == 0 {
		cfg.OutlierGroups = 1
	}
	return snap, cfg, nil
}

// makeAssignOp builds the assign stage: for each record of the task's
// partition, find the closest micro-cluster in the (stale) snapshot and
// emit (micro-cluster id, record); records outside every maximum boundary
// become outliers, dealt round-robin across outlier key groups.
//
// The output is allocation-free per record: all KeyedItems live in one
// backing array sized up front, the partition stores pointers into it
// (boxing a pointer into `any` does not allocate), and each item reuses
// the input's existing record box instead of re-boxing the copy. The
// shuffle accepts both the value and pointer forms.
//
// Snapshots implementing BatchNearester classify the whole partition in
// one call (see batch.go) — bit-identical results, but the flat-index
// snapshots get the blocked many-vs-many kernel's cache reuse; others
// (the D-Stream grid) take the per-record loop below.
func makeAssignOp() mbsp.OpFunc {
	return func(ctx *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		snap, cfg, err := taskEnv(ctx)
		if err != nil {
			return nil, err
		}
		if bn, ok := snap.(BatchNearester); ok && batchAssign.Load() {
			return assignBatched(bn, cfg, in)
		}
		out := make(mbsp.Partition, len(in))
		keyed := make([]mbsp.KeyedItem, len(in))
		for i, item := range in {
			rec, ok := item.(stream.Record)
			if !ok {
				return nil, fmt.Errorf("core: assign input %d is %T, want stream.Record", i, item)
			}
			id, absorbable, found := snap.Nearest(rec)
			if !(found && absorbable) {
				id = OutlierKeyBase | (rec.Seq % cfg.OutlierGroups)
			}
			keyed[i] = mbsp.KeyedItem{Key: id, Item: item}
			out[i] = &keyed[i]
		}
		return out, nil
	}
}

// makeLocalUpdateOp builds the local-update stage: each task receives
// groups of records keyed by micro-cluster id (or outlier group), orders
// each group's records by arrival (order-aware mode), folds increments
// into a clone of the stale micro-cluster, and emits Update values. For
// outlier groups it creates new micro-clusters, pre-merging within the
// group when enabled.
func makeLocalUpdateOp(algos *AlgorithmRegistry) mbsp.OpFunc {
	return func(ctx *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		snap, cfg, err := taskEnv(ctx)
		if err != nil {
			return nil, err
		}
		algo, err := algos.New(cfg.Params)
		if err != nil {
			return nil, err
		}
		var out mbsp.Partition
		for gi, item := range in {
			group, ok := item.(mbsp.Group)
			if !ok {
				return nil, fmt.Errorf("core: local-update input %d is %T, want mbsp.Group", gi, item)
			}
			records, err := groupRecords(group)
			if err != nil {
				return nil, err
			}
			orderRecords(records, cfg.Ordered)
			if group.Key >= OutlierKeyBase {
				out = append(out, createOutlierMCs(algo, records, cfg.PreMerge)...)
				continue
			}
			update, err := updateExisting(algo, snap, group.Key, records)
			if err != nil {
				return nil, err
			}
			out = append(out, update)
		}
		return out, nil
	}
}

// groupRecords extracts and type-checks a group's records.
func groupRecords(group mbsp.Group) ([]stream.Record, error) {
	records := make([]stream.Record, len(group.Items))
	for i, item := range group.Items {
		rec, ok := item.(stream.Record)
		if !ok {
			return nil, fmt.Errorf("core: group %d item %d is %T, want stream.Record", group.Key, i, item)
		}
		records[i] = rec
	}
	return records, nil
}

// orderRecords sorts records by arrival in order-aware mode. In unordered
// mode it models the baseline of [13], which "does not distinguish the
// data arrival orders": processing order is scrambled deterministically
// and timestamps are coarsened to the group's latest arrival, so decay is
// applied at batch granularity and no record is favored for recency
// within a batch — the update "fails to favor recent records" (§VII-B2).
//
// Why coarsening rather than leaving the scrambled true timestamps in
// place: with the naive λ = β^(-|Δt|) update, the total decay applied to
// a group is β^(-Σ|Δt_i|), and Σ|Δt_i| over a permutation of the group's
// arrival times is minimized by sorted order (where it telescopes to the
// window span) — any substantial permutation makes Σ|Δt| grow linearly in
// the group size and annihilates the micro-cluster regardless of the
// data. No published unordered implementation behaves that way; batch-
// granularity timestamps are the realistic reading. EXPERIMENTS.md
// discusses this at length.
func orderRecords(records []stream.Record, ordered bool) {
	if ordered {
		// Non-reflective generic sort; ByArrival is a total order on
		// (Timestamp, Seq), so stability is not load-bearing here and
		// the result matches the previous sort.SliceStable exactly.
		slices.SortStableFunc(records, stream.ByArrival)
		return
	}
	var latest vclock.Time
	for _, r := range records {
		if r.Timestamp > latest {
			latest = r.Timestamp
		}
	}
	for i := range records {
		records[i].Timestamp = latest
	}
	// Precompute the scramble keys once instead of hashing inside a
	// reflection-driven comparator; Seq ties are impossible (sequence
	// numbers are unique), so the key order is total and stable-sorting
	// pairs reproduces sort.SliceStable's output.
	type scrambled struct {
		key uint64
		rec stream.Record
	}
	pairs := make([]scrambled, len(records))
	for i, r := range records {
		pairs[i] = scrambled{key: scrambleKey(r.Seq), rec: r}
	}
	slices.SortStableFunc(pairs, func(a, b scrambled) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
	for i, p := range pairs {
		records[i] = p.rec
	}
}

// updateExisting folds records into a clone of the stale micro-cluster.
func updateExisting(algo Algorithm, snap Snapshot, key uint64, records []stream.Record) (Update, error) {
	base := snap.Get(key)
	if base == nil {
		return Update{}, fmt.Errorf("core: micro-cluster %d not in snapshot", key)
	}
	mc := base.Clone()
	for _, rec := range records {
		algo.Update(mc, rec)
	}
	last := records[len(records)-1]
	return Update{
		Kind:      KindUpdated,
		MC:        mc,
		Absorbed:  len(records),
		OrderTime: last.Timestamp,
		OrderSeq:  last.Seq,
	}, nil
}

// createOutlierMCs turns an outlier group's records into new
// micro-clusters. With pre-merge, each record is first offered to the
// micro-clusters already created in this group (§V-C: "many outlier
// micro-clusters are from the same new cluster when data distribution is
// evolving"); without it, every record becomes its own micro-cluster.
func createOutlierMCs(algo Algorithm, records []stream.Record, preMerge bool) mbsp.Partition {
	type pending struct {
		mc       MicroCluster
		absorbed int
		first    stream.Record
	}
	var created []pending
	for _, rec := range records {
		if preMerge {
			merged := false
			for i := range created {
				if algo.AbsorbIntoNew(created[i].mc, rec) {
					algo.Update(created[i].mc, rec)
					created[i].absorbed++
					merged = true
					break
				}
			}
			if merged {
				continue
			}
		}
		created = append(created, pending{mc: algo.Create(rec), absorbed: 1, first: rec})
	}
	out := make(mbsp.Partition, len(created))
	for i, p := range created {
		out[i] = Update{
			Kind:      KindCreated,
			MC:        p.mc,
			Absorbed:  p.absorbed,
			OrderTime: p.first.Timestamp,
			OrderSeq:  p.first.Seq,
		}
	}
	return out
}
