package wire_test

import (
	"bytes"
	"encoding/gob"
	"testing"

	"diststream/internal/mbsp"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
	"diststream/internal/wire"
)

// benchRecords is the hot-frame shape of the figure workloads: a record
// partition at KDD'99 dimensionality. Coordinates get full-entropy
// mantissas (divisions with irrational-ish results), matching real
// sensor data — round values would flatter gob, whose float encoding
// trims trailing zero bytes.
func benchRecordsPartition(n, dim int) mbsp.Partition {
	p := make(mbsp.Partition, n)
	for i := range p {
		vals := make(vector.Vector, dim)
		for j := range vals {
			vals[j] = float64(i+1) / float64(j+3)
		}
		p[i] = stream.Record{Seq: uint64(i), Timestamp: vclock.Time(0.01 * float64(i)), Values: vals, Label: i % 23}
	}
	return p
}

func BenchmarkEncodeRecordsWire(b *testing.B) {
	p := benchRecordsPartition(256, 34)
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cols, ok := wire.EncodePartition(p)
		if !ok {
			b.Fatal("encode declined")
		}
		size = len(cols)
	}
	b.ReportMetric(float64(size), "bytes/frame")
}

func BenchmarkEncodeRecordsGob(b *testing.B) {
	p := benchRecordsPartition(256, 34)
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(p); err != nil {
			b.Fatal(err)
		}
		size = buf.Len()
	}
	b.ReportMetric(float64(size), "bytes/frame")
}

func BenchmarkDecodeRecordsWire(b *testing.B) {
	cols, ok := wire.EncodePartition(benchRecordsPartition(256, 34))
	if !ok {
		b.Fatal("encode declined")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodePartition(cols); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRecordsGob(b *testing.B) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(benchRecordsPartition(256, 34)); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out mbsp.Partition
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&out); err != nil {
			b.Fatal(err)
		}
	}
}
