package wire_test

import (
	"encoding/binary"
	"math"
	"testing"

	"diststream/internal/clustream"
	"diststream/internal/core"
	"diststream/internal/mbsp"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
	"diststream/internal/wire"
)

// fuzzCursor deals bytes from the fuzz input; it wraps around so every
// input length yields a fully formed partition.
type fuzzCursor struct {
	data []byte
	pos  int
}

func (c *fuzzCursor) byte() byte {
	if len(c.data) == 0 {
		return 0
	}
	b := c.data[c.pos%len(c.data)]
	c.pos++
	return b
}

func (c *fuzzCursor) u64() uint64 {
	var raw [8]byte
	for i := range raw {
		raw[i] = c.byte()
	}
	return binary.LittleEndian.Uint64(raw[:])
}

// f64 returns a float64 from raw fuzz bits: NaNs (with payloads),
// infinities, subnormals and -0 all arise naturally.
func (c *fuzzCursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *fuzzCursor) record(dim int) stream.Record {
	r := stream.Record{Seq: c.u64(), Timestamp: vclock.Time(c.f64()), Label: int(int8(c.byte()))}
	if dim > 0 {
		r.Values = make(vector.Vector, dim)
		for i := range r.Values {
			r.Values[i] = c.f64()
		}
	}
	return r
}

// partitionFromBytes deterministically builds one hot-shape partition
// from fuzz bytes: shape, size (including empty) and every field —
// especially the float bit patterns — come from the input.
func partitionFromBytes(data []byte) mbsp.Partition {
	c := &fuzzCursor{data: data}
	shape := c.byte() % 4
	n := int(c.byte() % 9) // 0..8 items; 0 exercises the empty-partition decline
	dim := int(c.byte() % 5)
	p := make(mbsp.Partition, 0, n)
	for i := 0; i < n; i++ {
		switch shape {
		case 0:
			p = append(p, c.record(dim))
		case 1:
			ki := mbsp.KeyedItem{Key: c.u64(), Item: c.record(dim)}
			if c.byte()%2 == 0 {
				p = append(p, ki)
			} else {
				p = append(p, &ki)
			}
		case 2:
			g := mbsp.Group{Key: c.u64()}
			for j := int(c.byte() % 4); j > 0; j-- {
				g.Items = append(g.Items, c.record(dim))
			}
			p = append(p, g)
		case 3:
			mc := &clustream.MC{
				Id: c.u64(), CF1T: c.f64(), CF2T: c.f64(), N: c.f64(),
				Born: vclock.Time(c.f64()), Last: vclock.Time(c.f64()),
			}
			if dim > 0 {
				mc.CF1X = make(vector.Vector, dim)
				mc.CF2X = make(vector.Vector, dim)
				for j := 0; j < dim; j++ {
					mc.CF1X[j], mc.CF2X[j] = c.f64(), c.f64()
				}
			}
			p = append(p, core.Update{
				Kind: core.UpdateKind(c.byte() % 3), MC: mc,
				Absorbed: int(c.byte()), OrderTime: vclock.Time(c.f64()), OrderSeq: c.u64(),
			})
		}
	}
	return p
}

// FuzzWireCodec holds the columnar codec to two properties:
//
//  1. Decoding arbitrary bytes never panics — it either errors or yields
//     a well-formed value.
//  2. Differentially against gob: any partition the codec accepts must
//     decode to exactly what a gob round trip of the same partition
//     yields (floats compared by bit pattern, so NaN payloads, ±Inf and
//     -0 must survive byte-for-byte).
func FuzzWireCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 2, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{1, 8, 4, 0x7f, 0xf0, 0, 0, 0, 0, 0, 1}) // NaN-ish bits, keyed shape
	f.Add([]byte{2, 5, 3, 0xff, 0xf0, 0, 0, 0, 0, 0, 0}) // -Inf bits, group shape
	f.Add([]byte{3, 2, 2, 0x80, 0, 0, 0, 0, 0, 0, 0})    // -0 bits, update shape
	good, _ := wire.EncodePartition(mbsp.Partition{
		stream.Record{Seq: 1, Timestamp: 2, Values: vector.Vector{3, 4}},
	})
	f.Add(good)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: hostile frames error, never panic.
		if p, err := wire.DecodePartition(data); err == nil && p == nil {
			t.Error("DecodePartition returned nil partition with nil error")
		}
		_, _ = wire.DecodeValue(data)

		// Property 2: differential against gob.
		part := partitionFromBytes(data)
		cols, ok := wire.EncodePartition(part)
		if !ok {
			if len(part) > 0 && len(data) > 0 {
				// Everything partitionFromBytes builds is a hot shape the
				// codec must cover (uniform dims by construction).
				t.Errorf("EncodePartition declined a uniform %T partition of %d items", part[0], len(part))
			}
			return
		}
		dec, err := wire.DecodePartition(cols)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		ref := gobRoundTrip(t, part)
		if !bitEqual(dec, ref) {
			t.Fatalf("columnar decode diverges from gob round trip\n cols: %#v\n gob:  %#v", dec, ref)
		}
	})
}
