// Package wire implements the hand-rolled columnar encoding for the TCP
// executor's hot frames: record partitions, keyed records, shuffled
// groups, local-update outputs and snapshot deltas. The hot payloads of
// every batch are numeric and homogeneous, so instead of gob's
// reflection-driven per-item walk they are laid out as length-prefixed
// columns — all sequence numbers together as varints, all timestamps
// together as raw float64 bits, all coordinates as one contiguous float64
// block — which encodes with straight loops and decodes into shared
// backing arrays.
//
// The codec is deliberately partial: EncodePartition and EncodeValue
// report ok=false for anything they cannot express (unknown user item
// types, mixed shapes, micro-clusters without a registered codec), and
// the caller keeps shipping those through gob. Control frames — task
// headers, faults, full snapshots — stay on gob entirely, so wire-format
// extensibility is preserved where it matters and bytes are saved where
// they dominate.
//
// Decoding never trusts the input: counts are bounded by the remaining
// byte budget before any allocation, all reads go through a sticky-error
// cursor, and corrupt or truncated frames return an error — never panic
// (FuzzWireCodec holds the codec to that, differentially against a gob
// reference).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"

	"diststream/internal/core"
	"diststream/internal/mbsp"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// formatVersion is the first byte of every columnar frame; decoders
// reject anything else so the format can evolve without ambiguity.
const formatVersion = 1

// Frame shapes (second byte).
const (
	shapeRecords      = 1 // []stream.Record
	shapeKeyedRecords = 2 // []KeyedItem / []*KeyedItem carrying records
	shapeGroups       = 3 // []mbsp.Group of records (post-shuffle)
	shapeUpdates      = 4 // []core.Update with codec-registered MCs
	shapeDelta        = 9 // *core.SnapshotDelta (broadcast value)
)

// ErrCorrupt wraps every decode failure: the frame is truncated,
// inconsistent, or references an unregistered micro-cluster codec.
var ErrCorrupt = errors.New("wire: corrupt frame")

// Enc is an append-only encoding buffer. The column writers are plain
// loops over binary.Append*, so encoding runs at memcpy-like speed.
type Enc struct {
	buf []byte
}

// NewEnc returns an encoder with the given initial capacity.
func NewEnc(capacity int) *Enc { return &Enc{buf: make([]byte, 0, capacity)} }

// Bytes returns the encoded frame.
func (e *Enc) Bytes() []byte { return e.buf }

// Byte appends one raw byte.
func (e *Enc) Byte(b byte) { e.buf = append(e.buf, b) }

// Uint appends an unsigned varint.
func (e *Enc) Uint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Int appends a zigzag varint.
func (e *Enc) Int(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// F64 appends the raw little-endian bit pattern of v — exact for every
// float64 including NaN payloads and infinities.
func (e *Enc) F64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Bool appends a bool as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Uint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// F64s appends a length-prefixed float64 column.
func (e *Enc) F64s(vs []float64) {
	e.Uint(uint64(len(vs)))
	e.f64block(vs)
}

// f64block appends float64s without a count (the caller knows it).
func (e *Enc) f64block(vs []float64) {
	for _, v := range vs {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
	}
}

// Uints appends a length-prefixed uvarint column.
func (e *Enc) Uints(vs []uint64) {
	e.Uint(uint64(len(vs)))
	for _, v := range vs {
		e.Uint(v)
	}
}

// Ints appends a length-prefixed zigzag-varint column.
func (e *Enc) Ints(vs []int) {
	e.Uint(uint64(len(vs)))
	for _, v := range vs {
		e.Int(int64(v))
	}
}

// Dec is a sticky-error decoding cursor: after the first failure every
// read returns a zero value and Err reports the failure, so codec code
// reads columns unconditionally and checks once.
type Dec struct {
	data []byte
	err  error
}

// NewDec returns a decoder over data.
func NewDec(data []byte) *Dec { return &Dec{data: data} }

// Err returns the first decode failure, or nil.
func (d *Dec) Err() error { return d.err }

func (d *Dec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, msg)
	}
}

// Byte reads one raw byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 1 {
		d.fail("truncated byte")
		return 0
	}
	b := d.data[0]
	d.data = d.data[1:]
	return b
}

// Uint reads an unsigned varint.
func (d *Dec) Uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.data = d.data[n:]
	return v
}

// Int reads a zigzag varint.
func (d *Dec) Int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.data = d.data[n:]
	return v
}

// F64 reads a raw little-endian float64.
func (d *Dec) F64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 8 {
		d.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data))
	d.data = d.data[8:]
	return v
}

// Bool reads a one-byte bool.
func (d *Dec) Bool() bool { return d.Byte() != 0 }

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.Uint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.data)) {
		d.fail("string length exceeds frame")
		return ""
	}
	s := string(d.data[:n])
	d.data = d.data[n:]
	return s
}

// Count validates a claimed element count against the remaining byte
// budget (each element occupies at least minBytes) and returns it as an
// int. It keeps hostile counts from driving huge allocations.
func (d *Dec) Count(minBytes int) int {
	n := d.Uint()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(len(d.data)/minBytes) {
		d.fail("count exceeds frame size")
		return 0
	}
	return int(n)
}

// F64s reads a length-prefixed float64 column. A zero-length column
// decodes as nil, matching gob's round trip of empty slices.
func (d *Dec) F64s() []float64 {
	n := d.Count(8)
	return d.f64block(n)
}

// f64block reads n raw float64s (count already validated).
func (d *Dec) f64block(n int) []float64 {
	if d.err != nil || n == 0 {
		return nil
	}
	if n < 0 || len(d.data) < n*8 {
		d.fail("truncated float64 block")
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.data[i*8:]))
	}
	d.data = d.data[n*8:]
	return out
}

// Uints reads a length-prefixed uvarint column (nil when empty).
func (d *Dec) Uints() []uint64 {
	n := d.Count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.Uint()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Ints reads a length-prefixed zigzag column (nil when empty).
func (d *Dec) Ints() []int {
	n := d.Count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.Int())
	}
	if d.err != nil {
		return nil
	}
	return out
}

// MCEncoder writes one micro-cluster; it returns false when mc is not the
// codec's concrete type (the whole frame then falls back to gob).
type MCEncoder func(e *Enc, mc core.MicroCluster) bool

// MCDecoder reads one micro-cluster through the sticky cursor; it
// returns nil when the cursor failed.
type MCDecoder func(d *Dec) core.MicroCluster

type mcCodec struct {
	name string
	enc  MCEncoder
	dec  MCDecoder
}

var (
	mcMu       sync.RWMutex
	mcByName   = make(map[string]mcCodec)
	mcNameByTy = make(map[reflect.Type]string)
)

// RegisterMCCodec registers the columnar codec for one algorithm's
// micro-cluster type under the algorithm's registry name. Both the
// driver and every worker binary must register identically (the
// algorithms' RegisterWireTypes do, next to their gob registrations).
// Re-registration replaces, so the call is idempotent.
func RegisterMCCodec(name string, prototype core.MicroCluster, enc MCEncoder, dec MCDecoder) {
	mcMu.Lock()
	defer mcMu.Unlock()
	mcByName[name] = mcCodec{name: name, enc: enc, dec: dec}
	mcNameByTy[reflect.TypeOf(prototype)] = name
}

func lookupMCCodec(name string) (mcCodec, bool) {
	mcMu.RLock()
	defer mcMu.RUnlock()
	c, ok := mcByName[name]
	return c, ok
}

func mcCodecFor(mc core.MicroCluster) (mcCodec, bool) {
	mcMu.RLock()
	defer mcMu.RUnlock()
	name, ok := mcNameByTy[reflect.TypeOf(mc)]
	if !ok {
		return mcCodec{}, false
	}
	return mcByName[name], true
}

// EncodePartition encodes a task partition columnar when every item fits
// one of the hot shapes; ok=false means the caller must use gob.
func EncodePartition(p mbsp.Partition) ([]byte, bool) {
	if len(p) == 0 {
		return nil, false
	}
	switch p[0].(type) {
	case stream.Record:
		return encodeRecords(p)
	case mbsp.KeyedItem, *mbsp.KeyedItem:
		return encodeKeyed(p)
	case mbsp.Group:
		return encodeGroups(p)
	case core.Update:
		return encodeUpdates(p)
	}
	return nil, false
}

// DecodePartition decodes a columnar task partition.
func DecodePartition(data []byte) (mbsp.Partition, error) {
	d := NewDec(data)
	if v := d.Byte(); d.Err() == nil && v != formatVersion {
		return nil, fmt.Errorf("%w: format version %d", ErrCorrupt, v)
	}
	shape := d.Byte()
	if d.Err() != nil {
		return nil, d.Err()
	}
	switch shape {
	case shapeRecords:
		return decodeRecords(d)
	case shapeKeyedRecords:
		return decodeKeyed(d)
	case shapeGroups:
		return decodeGroups(d)
	case shapeUpdates:
		return decodeUpdates(d)
	}
	return nil, fmt.Errorf("%w: unknown partition shape %d", ErrCorrupt, shape)
}

// EncodeValue encodes a broadcast value columnar; today that is the
// snapshot delta. ok=false means the caller must use gob.
func EncodeValue(v mbsp.Item) ([]byte, bool) {
	delta, ok := v.(*core.SnapshotDelta)
	if !ok {
		return nil, false
	}
	return encodeDelta(delta)
}

// DecodeValue decodes a columnar broadcast value.
func DecodeValue(data []byte) (mbsp.Item, error) {
	d := NewDec(data)
	if v := d.Byte(); d.Err() == nil && v != formatVersion {
		return nil, fmt.Errorf("%w: format version %d", ErrCorrupt, v)
	}
	shape := d.Byte()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if shape != shapeDelta {
		return nil, fmt.Errorf("%w: unknown value shape %d", ErrCorrupt, shape)
	}
	return decodeDelta(d)
}

// dimOf reads a claimed record dimensionality and bounds n*dim against
// the remaining frame (coordinates alone need 8 bytes each), so corrupt
// frames cannot drive oversized or overflowing allocations.
func (d *Dec) dimOf(n int) int {
	dim := int(d.Uint())
	if d.err != nil {
		return 0
	}
	if dim < 0 || (n > 0 && uint64(n)*uint64(dim) > uint64(len(d.data))/8) {
		d.fail("record block exceeds frame")
		return 0
	}
	return dim
}

// recordDim extracts the uniform record dimensionality; ok=false on mixed
// dimensionality (the one irregularity gob handles and columns cannot).
func recordDim(recs []stream.Record) (int, bool) {
	if len(recs) == 0 {
		return 0, true
	}
	dim := len(recs[0].Values)
	for _, r := range recs[1:] {
		if len(r.Values) != dim {
			return 0, false
		}
	}
	return dim, true
}

// writeRecordBlock appends the four record columns: seq varints,
// timestamp bits, label zigzags, then one contiguous values block.
func writeRecordBlock(e *Enc, recs []stream.Record, dim int) {
	for _, r := range recs {
		e.Uint(r.Seq)
	}
	for _, r := range recs {
		e.F64(float64(r.Timestamp))
	}
	for _, r := range recs {
		e.Int(int64(r.Label))
	}
	for _, r := range recs {
		e.f64block(r.Values)
	}
	_ = dim
}

// readRecordBlock reads n records of dim values each; all coordinate
// vectors are windows into one shared backing array.
func readRecordBlock(d *Dec, n, dim int) []stream.Record {
	recs := make([]stream.Record, n)
	for i := range recs {
		recs[i].Seq = d.Uint()
	}
	for i := range recs {
		recs[i].Timestamp = vclock.Time(d.F64())
	}
	for i := range recs {
		recs[i].Label = int(d.Int())
	}
	if dim > 0 {
		backing := d.f64block(n * dim)
		if d.err == nil {
			for i := range recs {
				recs[i].Values = vector.Vector(backing[i*dim : (i+1)*dim])
			}
		}
	}
	return recs
}

func encodeRecords(p mbsp.Partition) ([]byte, bool) {
	recs := make([]stream.Record, len(p))
	for i, item := range p {
		r, ok := item.(stream.Record)
		if !ok {
			return nil, false
		}
		recs[i] = r
	}
	dim, ok := recordDim(recs)
	if !ok {
		return nil, false
	}
	e := NewEnc(2 + 20 + len(recs)*(12+8+2+dim*8))
	e.Byte(formatVersion)
	e.Byte(shapeRecords)
	e.Uint(uint64(len(recs)))
	e.Uint(uint64(dim))
	writeRecordBlock(e, recs, dim)
	return e.Bytes(), true
}

func decodeRecords(d *Dec) (mbsp.Partition, error) {
	n := d.Count(1)
	dim := d.dimOf(n)
	if d.Err() != nil {
		return nil, d.Err()
	}
	recs := readRecordBlock(d, n, dim)
	if err := d.Err(); err != nil {
		return nil, err
	}
	out := make(mbsp.Partition, n)
	for i := range recs {
		out[i] = recs[i]
	}
	return out, nil
}

func encodeKeyed(p mbsp.Partition) ([]byte, bool) {
	keys := make([]uint64, len(p))
	recs := make([]stream.Record, len(p))
	for i, item := range p {
		var inner mbsp.Item
		switch ki := item.(type) {
		case mbsp.KeyedItem:
			keys[i], inner = ki.Key, ki.Item
		case *mbsp.KeyedItem:
			keys[i], inner = ki.Key, ki.Item
		default:
			return nil, false
		}
		r, ok := inner.(stream.Record)
		if !ok {
			return nil, false
		}
		recs[i] = r
	}
	dim, ok := recordDim(recs)
	if !ok {
		return nil, false
	}
	e := NewEnc(2 + 20 + len(recs)*(10+12+8+2+dim*8))
	e.Byte(formatVersion)
	e.Byte(shapeKeyedRecords)
	e.Uint(uint64(len(recs)))
	e.Uint(uint64(dim))
	for _, k := range keys {
		e.Uint(k)
	}
	writeRecordBlock(e, recs, dim)
	return e.Bytes(), true
}

func decodeKeyed(d *Dec) (mbsp.Partition, error) {
	n := d.Count(1)
	dim := d.dimOf(n)
	if d.Err() != nil {
		return nil, d.Err()
	}
	keyed := make([]mbsp.KeyedItem, n)
	for i := range keyed {
		keyed[i].Key = d.Uint()
	}
	recs := readRecordBlock(d, n, dim)
	if err := d.Err(); err != nil {
		return nil, err
	}
	out := make(mbsp.Partition, n)
	for i := range keyed {
		keyed[i].Item = recs[i]
		out[i] = &keyed[i]
	}
	return out, nil
}

func encodeGroups(p mbsp.Partition) ([]byte, bool) {
	var total int
	groups := make([]mbsp.Group, len(p))
	for i, item := range p {
		g, ok := item.(mbsp.Group)
		if !ok {
			return nil, false
		}
		groups[i] = g
		total += len(g.Items)
	}
	recs := make([]stream.Record, 0, total)
	for _, g := range groups {
		for _, item := range g.Items {
			r, ok := item.(stream.Record)
			if !ok {
				return nil, false
			}
			recs = append(recs, r)
		}
	}
	dim, ok := recordDim(recs)
	if !ok {
		return nil, false
	}
	e := NewEnc(2 + 20 + len(groups)*12 + total*(12+8+2+dim*8))
	e.Byte(formatVersion)
	e.Byte(shapeGroups)
	e.Uint(uint64(len(groups)))
	e.Uint(uint64(dim))
	for _, g := range groups {
		e.Uint(g.Key)
		e.Uint(uint64(len(g.Items)))
	}
	writeRecordBlock(e, recs, dim)
	return e.Bytes(), true
}

func decodeGroups(d *Dec) (mbsp.Partition, error) {
	n := d.Count(2)
	dim := int(d.Uint())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if dim < 0 || (dim > 0 && dim > len(d.data)/8) {
		return nil, fmt.Errorf("%w: record block exceeds frame", ErrCorrupt)
	}
	keys := make([]uint64, n)
	counts := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		keys[i] = d.Uint()
		c := d.Uint()
		if d.err != nil {
			return nil, d.Err()
		}
		if c > uint64(len(d.data)) {
			return nil, fmt.Errorf("%w: group size exceeds frame", ErrCorrupt)
		}
		counts[i] = int(c)
		total += counts[i]
	}
	if total > len(d.data) {
		return nil, fmt.Errorf("%w: group totals exceed frame", ErrCorrupt)
	}
	recs := readRecordBlock(d, total, dim)
	if err := d.Err(); err != nil {
		return nil, err
	}
	items := make([]mbsp.Item, total)
	for i := range recs {
		items[i] = recs[i]
	}
	out := make(mbsp.Partition, n)
	off := 0
	for i := 0; i < n; i++ {
		out[i] = mbsp.Group{Key: keys[i], Items: items[off : off+counts[i] : off+counts[i]]}
		off += counts[i]
	}
	return out, nil
}

func encodeUpdates(p mbsp.Partition) ([]byte, bool) {
	updates := make([]core.Update, len(p))
	for i, item := range p {
		u, ok := item.(core.Update)
		if !ok || u.MC == nil {
			return nil, false
		}
		updates[i] = u
	}
	codec, ok := mcCodecFor(updates[0].MC)
	if !ok {
		return nil, false
	}
	e := NewEnc(64 + len(updates)*96)
	e.Byte(formatVersion)
	e.Byte(shapeUpdates)
	e.String(codec.name)
	e.Uint(uint64(len(updates)))
	for _, u := range updates {
		e.Byte(byte(u.Kind))
	}
	for _, u := range updates {
		e.Uint(uint64(u.Absorbed))
	}
	for _, u := range updates {
		e.F64(float64(u.OrderTime))
	}
	for _, u := range updates {
		e.Uint(u.OrderSeq)
	}
	for _, u := range updates {
		if !codec.enc(e, u.MC) {
			return nil, false
		}
	}
	return e.Bytes(), true
}

func decodeUpdates(d *Dec) (mbsp.Partition, error) {
	name := d.String()
	n := d.Count(1)
	if d.Err() != nil {
		return nil, d.Err()
	}
	codec, ok := lookupMCCodec(name)
	if !ok {
		return nil, fmt.Errorf("%w: no micro-cluster codec registered for %q", ErrCorrupt, name)
	}
	updates := make([]core.Update, n)
	for i := range updates {
		updates[i].Kind = core.UpdateKind(d.Byte())
	}
	for i := range updates {
		updates[i].Absorbed = int(d.Uint())
	}
	for i := range updates {
		updates[i].OrderTime = vclock.Time(d.F64())
	}
	for i := range updates {
		updates[i].OrderSeq = d.Uint()
	}
	for i := range updates {
		updates[i].MC = codec.dec(d)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	out := make(mbsp.Partition, n)
	for i := range updates {
		out[i] = updates[i]
	}
	return out, nil
}

// encodeParams writes core.Params with sorted map keys, so the encoding
// is deterministic.
func encodeParams(e *Enc, p core.Params) {
	e.String(p.Name)
	e.Uint(uint64(p.Dim))
	fkeys := make([]string, 0, len(p.Floats))
	for k := range p.Floats {
		fkeys = append(fkeys, k)
	}
	sort.Strings(fkeys)
	e.Uint(uint64(len(fkeys)))
	for _, k := range fkeys {
		e.String(k)
		e.F64(p.Floats[k])
	}
	ikeys := make([]string, 0, len(p.Ints))
	for k := range p.Ints {
		ikeys = append(ikeys, k)
	}
	sort.Strings(ikeys)
	e.Uint(uint64(len(ikeys)))
	for _, k := range ikeys {
		e.String(k)
		e.Int(int64(p.Ints[k]))
	}
}

func decodeParams(d *Dec) core.Params {
	p := core.Params{Name: d.String(), Dim: int(d.Uint())}
	if n := d.Count(2); n > 0 {
		p.Floats = make(map[string]float64, n)
		for i := 0; i < n; i++ {
			k := d.String()
			p.Floats[k] = d.F64()
		}
	}
	if n := d.Count(2); n > 0 {
		p.Ints = make(map[string]int, n)
		for i := 0; i < n; i++ {
			k := d.String()
			p.Ints[k] = int(d.Int())
		}
	}
	return p
}

func encodeDelta(delta *core.SnapshotDelta) ([]byte, bool) {
	codec, ok := lookupMCCodec(delta.Params.Name)
	if !ok {
		return nil, false
	}
	e := NewEnc(128 + len(delta.Order)*4 + len(delta.Upserts)*96)
	e.Byte(formatVersion)
	e.Byte(shapeDelta)
	encodeParams(e, delta.Params)
	e.Uint(delta.FromVersion)
	e.Uint(delta.Version)
	e.Uint(delta.Checksum)
	e.Uints(delta.Order)
	e.Uints(delta.Removed)
	e.Uint(uint64(len(delta.Upserts)))
	for _, mc := range delta.Upserts {
		if !codec.enc(e, mc) {
			return nil, false
		}
	}
	return e.Bytes(), true
}

func decodeDelta(d *Dec) (*core.SnapshotDelta, error) {
	delta := &core.SnapshotDelta{Params: decodeParams(d)}
	delta.FromVersion = d.Uint()
	delta.Version = d.Uint()
	delta.Checksum = d.Uint()
	delta.Order = d.Uints()
	delta.Removed = d.Uints()
	n := d.Count(1)
	if d.Err() != nil {
		return nil, d.Err()
	}
	codec, ok := lookupMCCodec(delta.Params.Name)
	if !ok {
		return nil, fmt.Errorf("%w: no micro-cluster codec registered for %q", ErrCorrupt, delta.Params.Name)
	}
	delta.Upserts = make([]core.MicroCluster, n)
	for i := range delta.Upserts {
		delta.Upserts[i] = codec.dec(d)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return delta, nil
}
