package wire_test

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"testing"

	"diststream/internal/clustream"
	"diststream/internal/core"
	"diststream/internal/mbsp"
	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
	"diststream/internal/wire"
)

func init() {
	// The same registrations the rpcexec driver/worker perform.
	gob.Register(mbsp.KeyedItem{})
	gob.Register(mbsp.Group{})
	gob.Register(stream.Record{})
	core.RegisterWireTypes()
	clustream.RegisterWireTypes()
}

// gobRoundTrip is the reference codec: whatever gob reproduces is, by
// definition of this PR, what the columnar codec must reproduce too.
func gobRoundTrip(t testing.TB, p mbsp.Partition) mbsp.Partition {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var out mbsp.Partition
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return out
}

// bitEqual compares two decoded values structurally: pointers and
// interfaces are dereferenced (gob flattens *KeyedItem to a KeyedItem
// value while the columnar codec decodes to *KeyedItem — both are
// acceptable to the shuffle), floats compare by bit pattern (NaN == NaN,
// -0 != +0), and nil slices equal empty ones (gob does not distinguish
// them either).
func bitEqual(a, b any) bool {
	return valEqual(reflect.ValueOf(a), reflect.ValueOf(b))
}

func valEqual(a, b reflect.Value) bool {
	for a.IsValid() && (a.Kind() == reflect.Pointer || a.Kind() == reflect.Interface) && !a.IsNil() {
		a = a.Elem()
	}
	for b.IsValid() && (b.Kind() == reflect.Pointer || b.Kind() == reflect.Interface) && !b.IsNil() {
		b = b.Elem()
	}
	if !a.IsValid() || !b.IsValid() {
		return a.IsValid() == b.IsValid() ||
			(a.IsValid() && a.Kind() == reflect.Slice && a.Len() == 0) ||
			(b.IsValid() && b.Kind() == reflect.Slice && b.Len() == 0)
	}
	if (a.Kind() == reflect.Pointer || a.Kind() == reflect.Interface) && a.IsNil() {
		return (b.Kind() == reflect.Pointer || b.Kind() == reflect.Interface) && b.IsNil()
	}
	if (b.Kind() == reflect.Pointer || b.Kind() == reflect.Interface) && b.IsNil() {
		return false
	}
	if a.Type() != b.Type() {
		return false
	}
	switch a.Kind() {
	case reflect.Float32, reflect.Float64:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case reflect.Slice:
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !valEqual(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Map:
		if a.Len() != b.Len() {
			return false
		}
		for _, k := range a.MapKeys() {
			if !valEqual(a.MapIndex(k), b.MapIndex(k)) {
				return false
			}
		}
		return true
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !valEqual(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	default:
		return a.Interface() == b.Interface()
	}
}

func rec(seq uint64, ts float64, label int, vals ...float64) stream.Record {
	return stream.Record{Seq: seq, Timestamp: vclock.Time(ts), Values: vector.Vector(vals), Label: label}
}

// roundTrip asserts the columnar codec covers p and reproduces gob's
// round trip of it.
func roundTrip(t *testing.T, p mbsp.Partition) {
	t.Helper()
	cols, ok := wire.EncodePartition(p)
	if !ok {
		t.Fatalf("EncodePartition declined %T", p[0])
	}
	dec, err := wire.DecodePartition(cols)
	if err != nil {
		t.Fatalf("DecodePartition: %v", err)
	}
	ref := gobRoundTrip(t, p)
	if !bitEqual(dec, ref) {
		t.Fatalf("columnar decode diverges from gob:\n cols: %#v\n gob:  %#v", dec, ref)
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	roundTrip(t, mbsp.Partition{
		rec(1, 0.5, 0, 1, 2, 3),
		rec(2, 1.5, -7, math.NaN(), math.Inf(1), math.Inf(-1)),
		rec(1<<60, -0.0, 1, 0, -0.0, 4.25),
	})
	// Dimension zero: records with no coordinates at all.
	roundTrip(t, mbsp.Partition{rec(1, 1, 0), rec(2, 2, 1)})
}

func TestKeyedRoundTrip(t *testing.T) {
	k1 := mbsp.KeyedItem{Key: 9, Item: rec(1, 0.25, 2, 1, 2)}
	k2 := mbsp.KeyedItem{Key: core.OutlierKeyBase | 3, Item: rec(2, 0.5, -1, 3, math.NaN())}
	// Both the value form and the pointer form the assign stage emits.
	roundTrip(t, mbsp.Partition{k1, k2})
	roundTrip(t, mbsp.Partition{&k1, &k2})
}

func TestGroupsRoundTrip(t *testing.T) {
	roundTrip(t, mbsp.Partition{
		mbsp.Group{Key: 1, Items: []mbsp.Item{rec(1, 1, 0, 1, 1), rec(2, 2, 0, 2, 2)}},
		mbsp.Group{Key: core.OutlierKeyBase, Items: []mbsp.Item{rec(3, 3, 1, math.Inf(1), -0.0)}},
		mbsp.Group{Key: 7, Items: nil},
	})
}

func clMC(id uint64, n float64, cf1 ...float64) *clustream.MC {
	cf2 := make(vector.Vector, len(cf1))
	for i, v := range cf1 {
		cf2[i] = v * v
	}
	return &clustream.MC{Id: id, CF1X: vector.Vector(cf1), CF2X: cf2, CF1T: n, CF2T: n * n, N: n, Born: 1, Last: 2}
}

func TestUpdatesRoundTrip(t *testing.T) {
	roundTrip(t, mbsp.Partition{
		core.Update{Kind: core.KindUpdated, MC: clMC(4, 2, 1, 2), Absorbed: 2, OrderTime: 1.5, OrderSeq: 11},
		core.Update{Kind: core.KindCreated, MC: clMC(9, 1, math.NaN(), math.Inf(-1)), Absorbed: 1, OrderTime: 2.5, OrderSeq: 12},
	})
}

func TestEncodePartitionDeclines(t *testing.T) {
	cases := map[string]mbsp.Partition{
		"empty":         {},
		"unknown items": {42, 43},
		"mixed dims":    {rec(1, 1, 0, 1, 2), rec(2, 2, 0, 1)},
		"nil update MC": {core.Update{Kind: core.KindUpdated}},
		"mixed shapes":  {rec(1, 1, 0, 1), mbsp.Group{Key: 1}},
	}
	for name, p := range cases {
		if _, ok := wire.EncodePartition(p); ok {
			t.Errorf("%s: EncodePartition accepted %v", name, p)
		}
	}
}

func TestDeltaValueRoundTrip(t *testing.T) {
	delta := &core.SnapshotDelta{
		Params: core.Params{
			Name:   clustream.Name,
			Dim:    2,
			Floats: map[string]float64{"radiusFactor": 1.8, "horizon": 0},
			Ints:   map[string]int{"maxMC": 64, "seed": -3},
		},
		FromVersion: 6,
		Version:     7,
		Order:       []uint64{1, 4, 9},
		Removed:     []uint64{2},
		Upserts:     []core.MicroCluster{clMC(4, 3, 1, 2), clMC(9, 1, math.Inf(1), -0.0)},
		Checksum:    0xdeadbeefcafe,
	}
	cols, ok := wire.EncodeValue(delta)
	if !ok {
		t.Fatal("EncodeValue declined a registered snapshot delta")
	}
	got, err := wire.DecodeValue(cols)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(got, delta) {
		t.Fatalf("decoded delta = %+v, want %+v", got, delta)
	}
	// Unknown algorithm name: encode declines, caller falls back to gob.
	bad := &core.SnapshotDelta{Params: core.Params{Name: "no-such-algo"}}
	if _, ok := wire.EncodeValue(bad); ok {
		t.Error("EncodeValue accepted a delta without a registered codec")
	}
}

func TestCorruptFramesError(t *testing.T) {
	good, ok := wire.EncodePartition(mbsp.Partition{rec(1, 1, 0, 1, 2), rec(2, 2, 1, 3, 4)})
	if !ok {
		t.Fatal("encode declined")
	}
	for cut := 0; cut < len(good); cut++ {
		if _, err := wire.DecodePartition(good[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := wire.DecodePartition([]byte{99, 1}); err == nil {
		t.Error("wrong format version accepted")
	}
	if _, err := wire.DecodeValue([]byte{1, 42}); err == nil {
		t.Error("unknown value shape accepted")
	}
}
