package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		{},
		{1},
		bytes.Repeat([]byte{0xab}, 1024),
		[]byte("hello"),
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	// The stream ends exactly at a frame boundary: clean io.EOF.
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Errorf("read past end = %v, want io.EOF", err)
	}
}

func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got := AppendFrame(nil, []byte("abc"))
	if !bytes.Equal(got, buf.Bytes()) {
		t.Errorf("AppendFrame = %x, WriteFrame wrote %x", got, buf.Bytes())
	}
}

func TestReadFrameBoundsClaimedLength(t *testing.T) {
	// A hostile 4 GiB-ish length prefix must be rejected before any
	// allocation happens.
	data := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(data), 0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized claim = %v, want ErrCorrupt", err)
	}
	// A claim above an explicit small bound is rejected too.
	frame := AppendFrame(nil, bytes.Repeat([]byte{1}, 100))
	if _, err := ReadFrame(bytes.NewReader(frame), 10); !errors.Is(err, ErrCorrupt) {
		t.Errorf("claim above custom max = %v, want ErrCorrupt", err)
	}
}

func TestReadFrameTruncation(t *testing.T) {
	full := AppendFrame(nil, []byte("payload"))
	// Cut inside the header.
	if _, err := ReadFrame(bytes.NewReader(full[:2]), 0); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated header = %v, want io.ErrUnexpectedEOF", err)
	}
	// Cut inside the payload.
	if _, err := ReadFrame(bytes.NewReader(full[:6]), 0); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated payload = %v, want io.ErrUnexpectedEOF", err)
	}
}
