package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Length-prefixed framing for byte-oriented streaming transports (the
// subscription stream). Each frame is a 4-byte big-endian length followed
// by that many payload bytes. The gob-based RPC transport keeps its own
// codec framing; this is for protocols that ship pre-encoded columnar
// payloads and want the transport layer to stay dumb.

// MaxFrameSize is the default bound ReadFrame enforces on a claimed
// frame length: 256 MiB, far above any real model snapshot but small
// enough that a corrupt or hostile length prefix cannot drive an
// arbitrary allocation.
const MaxFrameSize = 256 << 20

// WriteFrame writes one length-prefixed frame. It performs a single
// Write call so a frame is never interleaved with another writer's bytes
// unless the callers themselves race.
func WriteFrame(w io.Writer, payload []byte) error {
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := w.Write(buf)
	return err
}

// AppendFrame appends the length-prefixed encoding of payload to dst and
// returns the extended slice — for batching several frames into one
// write.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ReadFrame reads one length-prefixed frame, rejecting claimed lengths
// above max (MaxFrameSize when max <= 0) before allocating. io.EOF is
// returned only at a clean frame boundary; a stream that ends mid-frame
// yields io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = MaxFrameSize
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > uint32(max) {
		return nil, fmt.Errorf("%w: frame length %d exceeds limit %d", ErrCorrupt, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
