package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	a := Time(1.5)
	if !a.Before(Time(2)) || a.After(Time(2)) {
		t.Error("ordering broken")
	}
	if got := a.Add(0.5); got != 2 {
		t.Errorf("Add = %v, want 2", got)
	}
	if got := Time(5).Sub(2); got != 3 {
		t.Errorf("Sub = %v, want 3", got)
	}
	if a.Seconds() != 1.5 {
		t.Errorf("Seconds = %v", a.Seconds())
	}
	if s := a.String(); s != "t=1.500s" {
		t.Errorf("String = %q", s)
	}
}

func TestManualAdvance(t *testing.T) {
	c := NewManual(10)
	if c.Now() != 10 {
		t.Fatalf("start = %v, want 10", c.Now())
	}
	c.Advance(5)
	if c.Now() != 15 {
		t.Errorf("after Advance(5) = %v, want 15", c.Now())
	}
	c.Advance(-3)
	if c.Now() != 15 {
		t.Errorf("negative advance moved clock: %v", c.Now())
	}
}

func TestManualSetMonotone(t *testing.T) {
	c := NewManual(10)
	if !c.Set(20) {
		t.Error("forward Set rejected")
	}
	if c.Set(5) {
		t.Error("backward Set accepted")
	}
	if c.Now() != 20 {
		t.Errorf("Now = %v, want 20", c.Now())
	}
}

func TestManualConcurrent(t *testing.T) {
	c := NewManual(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(0.001)
				_ = c.Now()
			}
		}()
	}
	wg.Wait()
	want := Time(8 * 1000 * 0.001)
	got := c.Now()
	if got < want-1e-6 || got > want+1e-6 {
		t.Errorf("concurrent advance lost updates: %v, want %v", got, want)
	}
}

func TestWallClock(t *testing.T) {
	w := NewWall(100) // 100 virtual seconds per wall second
	time.Sleep(20 * time.Millisecond)
	got := w.Now()
	if got <= 0 {
		t.Errorf("wall clock did not advance: %v", got)
	}
	if got > 100 {
		t.Errorf("wall clock advanced too far: %v", got)
	}
	// Defaulting behaviour.
	d := NewWall(0)
	if d.rate != 1 {
		t.Errorf("default rate = %v, want 1", d.rate)
	}
}

func TestManualZeroValueUsable(t *testing.T) {
	var c Manual
	if c.Now() != 0 {
		t.Errorf("zero-value clock Now = %v, want 0", c.Now())
	}
	c.Advance(1)
	if c.Now() != 1 {
		t.Errorf("zero-value clock Advance broken: %v", c.Now())
	}
}
