// Package vclock provides a virtual clock abstraction so that producers,
// decay functions, and quality metrics share one notion of time.
//
// The paper's experiments attach a timestamp to each record and stream
// records in chronological order through Kafka at a fixed rate. Using a
// virtual clock instead of wall time makes every experiment deterministic
// and lets throughput benchmarks replay "10 seconds of stream" instantly.
package vclock

import (
	"fmt"
	"sync"
	"time"
)

// Time is a virtual timestamp measured in seconds since the start of the
// stream. Stream clustering decay functions (beta^-dt) operate directly on
// these values.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Seconds returns t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Before reports whether t precedes other.
func (t Time) Before(other Time) bool { return t < other }

// After reports whether t follows other.
func (t Time) After(other Time) bool { return t > other }

// Add returns t shifted by d seconds.
func (t Time) Add(d Duration) Time { return t + d }

// Sub returns the duration t - other.
func (t Time) Sub(other Time) Duration { return t - other }

// String renders the timestamp with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("t=%.3fs", float64(t)) }

// Clock yields the current virtual time. Implementations must be safe for
// concurrent use.
type Clock interface {
	Now() Time
}

// Manual is a hand-advanced clock for deterministic simulation.
// The zero value is a valid clock at time 0.
type Manual struct {
	mu  sync.RWMutex
	now Time
}

var _ Clock = (*Manual)(nil)

// NewManual returns a manual clock starting at the given time.
func NewManual(start Time) *Manual {
	return &Manual{now: start}
}

// Now returns the current virtual time.
func (m *Manual) Now() Time {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.now
}

// Advance moves the clock forward by d. Negative d is ignored so the clock
// is monotone.
func (m *Manual) Advance(d Duration) {
	if d < 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now += d
}

// Set jumps the clock to t if t is not earlier than the current time.
// It reports whether the set took effect.
func (m *Manual) Set(t Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t < m.now {
		return false
	}
	m.now = t
	return true
}

// Wall is a clock backed by real wall time, scaled so that one wall second
// equals Rate virtual seconds. It exists for demos that want to watch a
// stream evolve in real time.
type Wall struct {
	start time.Time
	rate  float64
}

var _ Clock = (*Wall)(nil)

// NewWall returns a wall clock anchored at the current instant.
// rate <= 0 defaults to 1 virtual second per wall second.
func NewWall(rate float64) *Wall {
	if rate <= 0 {
		rate = 1
	}
	return &Wall{start: time.Now(), rate: rate}
}

// Now returns the scaled elapsed wall time.
func (w *Wall) Now() Time {
	return Time(time.Since(w.start).Seconds() * w.rate)
}
