package datagen

import (
	"math"
	"testing"

	"diststream/internal/stream"
	"diststream/internal/vector"
)

func baseSpec() Spec {
	return Spec{
		Name:    "test",
		Records: 1000,
		Dim:     4,
		Clusters: []ClusterSpec{
			{Center: vector.Vector{-5, -5, 0, 0}, Std: 0.3, BaseWeight: 0.7},
			{Center: vector.Vector{5, 5, 0, 0}, Std: 0.3, BaseWeight: 0.3},
		},
		Rate: 100,
		Seed: 1,
	}
}

func TestGenerateBasics(t *testing.T) {
	recs, err := Generate(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1000 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("seq %d != %d", r.Seq, i)
		}
		if r.Dim() != 4 {
			t.Fatalf("dim = %d", r.Dim())
		}
		if !r.Values.IsFinite() {
			t.Fatalf("non-finite record %d", i)
		}
		if i > 0 && r.Timestamp <= recs[i-1].Timestamp {
			t.Fatalf("timestamps not increasing at %d", i)
		}
	}
	// At rate 100, record 999 arrives at ~9.99s.
	last := recs[999].Timestamp.Seconds()
	if math.Abs(last-9.99) > 1e-9 {
		t.Errorf("last timestamp = %v, want 9.99", last)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Values.Equal(b[i].Values) || a[i].Label != b[i].Label {
			t.Fatalf("record %d differs across runs with same seed", i)
		}
	}
	spec := baseSpec()
	spec.Seed = 2
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if !a[i].Values.Equal(c[i].Values) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestGenerateWeightsRespected(t *testing.T) {
	recs, err := Generate(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, r := range recs {
		counts[r.Label]++
	}
	f0 := float64(counts[0]) / float64(len(recs))
	if f0 < 0.6 || f0 > 0.8 {
		t.Errorf("cluster 0 share = %v, want ~0.7", f0)
	}
}

func TestGenerateClustersSeparated(t *testing.T) {
	spec := baseSpec()
	recs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Records labeled 0 should be much closer to center 0 than center 1.
	for _, r := range recs[:200] {
		if r.Label < 0 {
			continue
		}
		d0 := vector.Distance(r.Values, spec.Clusters[0].Center)
		d1 := vector.Distance(r.Values, spec.Clusters[1].Center)
		if r.Label == 0 && d0 > d1 {
			t.Fatalf("label-0 record closer to cluster 1")
		}
		if r.Label == 1 && d1 > d0 {
			t.Fatalf("label-1 record closer to cluster 0")
		}
	}
}

func TestGenerateNoise(t *testing.T) {
	spec := baseSpec()
	spec.NoiseFrac = 0.2
	spec.Records = 5000
	recs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	noise := 0
	for _, r := range recs {
		if r.Label == -1 {
			noise++
		}
	}
	frac := float64(noise) / float64(len(recs))
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("noise fraction = %v, want ~0.2", frac)
	}
}

func TestGenerateNormalize(t *testing.T) {
	spec := baseSpec()
	spec.Normalize = true
	spec.Records = 2000
	recs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Feature 0 over the whole dataset should have ~zero mean, ~unit std.
	var sum, sumSq float64
	for _, r := range recs {
		sum += r.Values[0]
		sumSq += r.Values[0] * r.Values[0]
	}
	n := float64(len(recs))
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 1e-9 {
		t.Errorf("normalized mean = %v", mean)
	}
	if math.Abs(std-1) > 0.01 {
		t.Errorf("normalized std = %v", std)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []func(*Spec){
		func(s *Spec) { s.Records = 0 },
		func(s *Spec) { s.Dim = 0 },
		func(s *Spec) { s.Clusters = nil },
		func(s *Spec) { s.Rate = 0 },
		func(s *Spec) { s.NoiseFrac = 1 },
		func(s *Spec) { s.NoiseFrac = -0.1 },
		func(s *Spec) { s.Clusters[0].Center = vector.Vector{1} },
		func(s *Spec) { s.Clusters[0].Std = 0 },
		func(s *Spec) { s.Clusters[0].BaseWeight = -1 },
		func(s *Spec) { s.Clusters[0].BaseWeight, s.Clusters[1].BaseWeight = 0, 0 },
	}
	for i, mutate := range cases {
		spec := baseSpec()
		mutate(&spec)
		if _, err := Generate(spec); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBurstDrift(t *testing.T) {
	b := Burst{Events: []BurstEvent{{Cluster: 1, Start: 0.4, End: 0.6, Peak: 10}}}
	w := []float64{1, 0.1}
	b.Evolve(0.5, w, nil)
	if w[1] != 10 {
		t.Errorf("peak weight = %v, want 10", w[1])
	}
	w = []float64{1, 0.1}
	b.Evolve(0.1, w, nil)
	if w[1] != 0.1 {
		t.Errorf("outside event weight changed: %v", w[1])
	}
	w = []float64{1, 0.1}
	b.Evolve(0.45, w, nil) // halfway up the ramp: 10*0.5 = 5
	if math.Abs(w[1]-5) > 1e-9 {
		t.Errorf("ramp weight = %v, want 5", w[1])
	}
	// Out-of-range cluster index and degenerate window are ignored.
	bad := Burst{Events: []BurstEvent{
		{Cluster: 9, Start: 0, End: 1, Peak: 5},
		{Cluster: 0, Start: 0.5, End: 0.5, Peak: 5},
	}}
	w = []float64{1}
	bad.Evolve(0.5, w, nil)
	if w[0] != 1 {
		t.Errorf("degenerate events modified weights: %v", w)
	}
}

func TestGradualDrift(t *testing.T) {
	g := Gradual{
		Velocity:    []vector.Vector{{10, 0}},
		WeightShift: 0.5,
	}
	w := []float64{1, 1}
	off := []vector.Vector{vector.New(2), vector.New(2)}
	g.Evolve(0.5, w, off)
	if off[0][0] != 5 {
		t.Errorf("offset = %v, want 5", off[0][0])
	}
	if w[0] == 1 && w[1] == 1 {
		t.Error("weights unchanged under WeightShift")
	}
	for _, x := range w {
		if x < 0 {
			t.Errorf("negative weight %v", x)
		}
	}
}

func TestStableDriftNoop(t *testing.T) {
	w := []float64{0.3, 0.7}
	off := []vector.Vector{vector.New(1), vector.New(1)}
	Stable{}.Evolve(0.5, w, off)
	if w[0] != 0.3 || w[1] != 0.7 || off[0][0] != 0 {
		t.Error("Stable drift modified state")
	}
	if (Stable{}).Name() != "stable" || (Burst{}).Name() != "burst" || (Gradual{}).Name() != "gradual" {
		t.Error("drift names wrong")
	}
}

func TestPresetsMatchTable1(t *testing.T) {
	cases := []struct {
		preset   Preset
		clusters int
		dim      int
		top1Min  float64
		top1Max  float64
	}{
		{KDD99Sim, 23, 54, 0.30, 0.65}, // bursts steal share from the head
		{CovTypeSim, 7, 54, 0.30, 0.60},
		{KDD98Sim, 5, 315, 0.90, 0.98},
	}
	for _, c := range cases {
		recs, err := GeneratePreset(c.preset, 8000, 1000, 42)
		if err != nil {
			t.Fatalf("%v: %v", c.preset, err)
		}
		sum, err := Summarize(c.preset.String(), recs)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Dim != c.dim {
			t.Errorf("%v: dim = %d, want %d", c.preset, sum.Dim, c.dim)
		}
		if sum.Clusters < c.clusters-2 || sum.Clusters > c.clusters {
			t.Errorf("%v: clusters = %d, want ~%d", c.preset, sum.Clusters, c.clusters)
		}
		if sum.Top3Share[0] < c.top1Min || sum.Top3Share[0] > c.top1Max {
			t.Errorf("%v: top cluster share = %v, want [%v,%v]",
				c.preset, sum.Top3Share[0], c.top1Min, c.top1Max)
		}
	}
}

func TestPresetStability(t *testing.T) {
	kdd99, err := GeneratePreset(KDD99Sim, 20000, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	kdd98, err := GeneratePreset(KDD98Sim, 20000, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	s99 := StabilityIndex(kdd99, 10)
	s98 := StabilityIndex(kdd98, 10)
	// The paper: KDD-98 is "more stable" than KDD-99. Our substitute must
	// preserve that ordering with a clear margin.
	if s98*2 > s99 {
		t.Errorf("stability ordering violated: kdd99=%v kdd98=%v", s99, s98)
	}
}

func TestPresetMetadata(t *testing.T) {
	if KDD99Sim.FullRecords() != 494021 || CovTypeSim.FullRecords() != 581012 || KDD98Sim.FullRecords() != 95412 {
		t.Error("full record counts wrong")
	}
	if KDD99Sim.NumClusters() != 23 || CovTypeSim.NumClusters() != 7 || KDD98Sim.NumClusters() != 5 {
		t.Error("cluster counts wrong")
	}
	if KDD99Sim.String() != "kdd99-sim" {
		t.Errorf("name = %q", KDD99Sim.String())
	}
	if _, err := NewSpec(Preset(99), 10, 1, 1); err == nil {
		t.Error("unknown preset should error")
	}
	// records <= 0 defaults to full scale.
	spec, err := NewSpec(KDD98Sim, 0, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Records != 95412 {
		t.Errorf("defaulted records = %d", spec.Records)
	}
	if Preset(99).String() == "" || Preset(99).FullRecords() != 0 ||
		Preset(99).NumClusters() != 0 || Preset(99).Dim() != 0 {
		t.Error("unknown preset metadata should be zero-valued")
	}
}

func TestStabilityIndexEdgeCases(t *testing.T) {
	if StabilityIndex(nil, 10) != 0 {
		t.Error("empty stream should have stability 0")
	}
	recs := []stream.Record{{Label: 1}, {Label: 1}}
	if StabilityIndex(recs, 1) != 0 {
		t.Error("single window should have stability 0")
	}
	// A stream that switches label completely at the midpoint has TV = 1.
	recs = make([]stream.Record, 100)
	for i := range recs {
		if i < 50 {
			recs[i].Label = 0
		} else {
			recs[i].Label = 1
		}
	}
	if got := StabilityIndex(recs, 2); math.Abs(got-1) > 1e-9 {
		t.Errorf("full switch stability = %v, want 1", got)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize("x", nil); err == nil {
		t.Error("expected error for empty dataset")
	}
}

func TestSmallTailWeights(t *testing.T) {
	w := smallTailWeights(5, []float64{0.5, 0.3})
	if w[0] != 0.5 || w[1] != 0.3 {
		t.Errorf("heads = %v", w[:2])
	}
	var total float64
	for _, x := range w {
		total += x
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("weights sum to %v", total)
	}
	// heads longer than k
	w = smallTailWeights(1, []float64{0.5, 0.3})
	if len(w) != 1 || w[0] != 0.5 {
		t.Errorf("truncated heads = %v", w)
	}
}

func TestEmbedPresets(t *testing.T) {
	for _, p := range []Preset{EmbedSim128, EmbedSim384, EmbedSim768} {
		recs, err := GeneratePreset(p, 4000, 1000, 42)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		sum, err := Summarize(p.String(), recs)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Dim != p.Dim() {
			t.Errorf("%v: dim = %d, want %d", p, sum.Dim, p.Dim())
		}
		if sum.Clusters < 10 || sum.Clusters > 12 {
			t.Errorf("%v: clusters = %d, want ~12", p, sum.Clusters)
		}
		if sum.Top3Share[0] < 0.15 || sum.Top3Share[0] > 0.50 {
			t.Errorf("%v: top cluster share = %v", p, sum.Top3Share[0])
		}
		// The std scaling keeps the norm geometry constant across d:
		// centers at norm 6, points ~4 from their center, so record
		// norms concentrate near sqrt(36+16) ~ 7.2 at every dimension.
		var meanNorm float64
		n := 0
		for _, r := range recs {
			if r.Label < 0 {
				continue
			}
			meanNorm += r.Values.Norm()
			n++
		}
		meanNorm /= float64(n)
		if meanNorm < 6 || meanNorm > 9 {
			t.Errorf("%v: mean record norm %v, want ~7.2", p, meanNorm)
		}
	}
}

func TestEmbedSeparation(t *testing.T) {
	// Early in the stream (before drift accumulates) every labeled record
	// must sit nearer its own initial center than any other — all-dim
	// directional separation survives d=768.
	spec, err := NewSpec(EmbedSim768, 20000, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	miss := 0
	checked := 0
	for _, r := range recs[:1000] {
		if r.Label < 0 {
			continue
		}
		checked++
		best, bestD := -1, math.Inf(1)
		for c := range spec.Clusters {
			if d := vector.SquaredDistance(r.Values, spec.Clusters[c].Center); d < bestD {
				best, bestD = c, d
			}
		}
		if best != r.Label {
			miss++
		}
	}
	if checked == 0 {
		t.Fatal("no labeled records")
	}
	if frac := float64(miss) / float64(checked); frac > 0.05 {
		t.Errorf("nearest-center mismatch fraction %v, want <= 0.05", frac)
	}
}

func TestHighDim(t *testing.T) {
	for p, want := range map[Preset]bool{
		KDD99Sim: false, CovTypeSim: false,
		KDD98Sim: true, EmbedSim128: true, EmbedSim384: true, EmbedSim768: true,
	} {
		if p.HighDim() != want {
			t.Errorf("%v.HighDim() = %v, want %v", p, p.HighDim(), want)
		}
	}
}
