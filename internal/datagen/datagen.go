// Package datagen generates seeded synthetic data streams that stand in
// for the paper's three evaluation datasets (KDD-99, CoverType, KDD-98).
//
// The real datasets are not redistributable here, so each generator
// reproduces the properties the paper's results depend on:
//
//   - record count, feature dimensionality, number of ground-truth clusters
//     and the skew of the three largest clusters (Table I);
//   - the *dynamics* of the distribution: KDD-99 exhibits bursty regime
//     switches (attack types emerge, dominate and vanish), CoverType
//     drifts gradually, and KDD-98 is stable with one long-standing
//     dominant cluster (95% of records) — the property the paper uses to
//     explain why update order matters less on KDD-98 (§VII-B2);
//   - zero-mean / unit-variance feature normalization.
//
// Streams are Gaussian mixtures whose mixing weights and centers evolve
// with stream progress according to a pluggable Drift model.
package datagen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"diststream/internal/stream"
	"diststream/internal/vclock"
	"diststream/internal/vector"
)

// ClusterSpec describes one ground-truth mixture component.
type ClusterSpec struct {
	// Center is the component mean at stream start.
	Center vector.Vector
	// Std is the isotropic standard deviation of the component.
	Std float64
	// BaseWeight is the relative mixing weight at stream start. Weights
	// are normalized; they need not sum to 1.
	BaseWeight float64
}

// Drift evolves the mixture as the stream progresses. progress runs from 0
// (first record) to 1 (last record). Implementations write the effective
// weights into w (len == number of clusters) and may translate centers by
// writing offsets into off (same shape as the centers).
type Drift interface {
	// Evolve fills w with the mixing weights at the given progress and
	// off with per-cluster center offsets.
	Evolve(progress float64, w []float64, off []vector.Vector)
	// Name identifies the drift model in dataset summaries.
	Name() string
}

// Spec fully describes a synthetic stream.
type Spec struct {
	// Name labels the dataset in reports (e.g. "kdd99-sim").
	Name string
	// Records is the total number of records to generate.
	Records int
	// Dim is the feature dimensionality.
	Dim int
	// Clusters lists the mixture components.
	Clusters []ClusterSpec
	// Rate is the nominal arrival rate in records per second, used to
	// assign timestamps (the paper streams quality experiments at 1K/s).
	Rate float64
	// NoiseFrac in [0,1) is the fraction of uniform background noise
	// records, labeled -1.
	NoiseFrac float64
	// Drift is the distribution dynamics model. Nil means stable.
	Drift Drift
	// Seed makes generation deterministic.
	Seed int64
	// Normalize standardizes features to zero mean / unit variance after
	// generation, as the paper does.
	Normalize bool
}

// Validate checks the spec for obvious misconfiguration.
func (s *Spec) Validate() error {
	if s.Records <= 0 {
		return fmt.Errorf("datagen: %s: records %d must be positive", s.Name, s.Records)
	}
	if s.Dim <= 0 {
		return fmt.Errorf("datagen: %s: dim %d must be positive", s.Name, s.Dim)
	}
	if len(s.Clusters) == 0 {
		return fmt.Errorf("datagen: %s: no clusters", s.Name)
	}
	if s.Rate <= 0 {
		return fmt.Errorf("datagen: %s: rate %v must be positive", s.Name, s.Rate)
	}
	if s.NoiseFrac < 0 || s.NoiseFrac >= 1 {
		return fmt.Errorf("datagen: %s: noise fraction %v out of [0,1)", s.Name, s.NoiseFrac)
	}
	var total float64
	for i, c := range s.Clusters {
		if len(c.Center) != s.Dim {
			return fmt.Errorf("datagen: %s: cluster %d center dim %d != %d", s.Name, i, len(c.Center), s.Dim)
		}
		if c.Std <= 0 {
			return fmt.Errorf("datagen: %s: cluster %d std %v must be positive", s.Name, i, c.Std)
		}
		if c.BaseWeight < 0 {
			return fmt.Errorf("datagen: %s: cluster %d negative weight", s.Name, i)
		}
		total += c.BaseWeight
	}
	if total <= 0 {
		return fmt.Errorf("datagen: %s: weights sum to zero", s.Name)
	}
	return nil
}

// Generate materializes the stream described by the spec.
func Generate(spec Spec) ([]stream.Record, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	k := len(spec.Clusters)
	weights := make([]float64, k)
	offsets := make([]vector.Vector, k)
	for i := range offsets {
		offsets[i] = vector.New(spec.Dim)
	}
	drift := spec.Drift
	if drift == nil {
		drift = Stable{}
	}

	records := make([]stream.Record, spec.Records)
	dt := 1 / spec.Rate
	point := vector.New(spec.Dim)
	for i := 0; i < spec.Records; i++ {
		progress := 0.0
		if spec.Records > 1 {
			progress = float64(i) / float64(spec.Records-1)
		}
		for j, c := range spec.Clusters {
			weights[j] = c.BaseWeight
			for d := range offsets[j] {
				offsets[j][d] = 0
			}
		}
		drift.Evolve(progress, weights, offsets)

		label := -1
		if rng.Float64() >= spec.NoiseFrac {
			label = sampleIndex(rng, weights)
		}
		if label >= 0 {
			c := spec.Clusters[label]
			for d := 0; d < spec.Dim; d++ {
				point[d] = c.Center[d] + offsets[label][d] + rng.NormFloat64()*c.Std
			}
		} else {
			// Uniform background noise over the bounding region.
			for d := 0; d < spec.Dim; d++ {
				point[d] = (rng.Float64()*2 - 1) * noiseSpan
			}
		}
		records[i] = stream.Record{
			Seq:       uint64(i),
			Timestamp: vclock.Time(float64(i) * dt),
			Label:     label,
			Values:    point.Clone(),
		}
	}

	if spec.Normalize {
		if err := normalizeRecords(records); err != nil {
			return nil, err
		}
	}
	return records, nil
}

// noiseSpan is the half-width of the uniform noise region; cluster centers
// are laid out within roughly this span.
const noiseSpan = 12.0

func normalizeRecords(records []stream.Record) error {
	if len(records) == 0 {
		return nil
	}
	n := vector.NewNormalizer(len(records[0].Values))
	for _, r := range records {
		if err := n.Observe(r.Values); err != nil {
			return err
		}
	}
	n.Freeze()
	for _, r := range records {
		if err := n.Apply(r.Values); err != nil {
			return err
		}
	}
	return nil
}

// sampleIndex draws an index proportionally to non-negative weights. It
// falls back to the last positive weight on floating-point underflow.
func sampleIndex(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := rng.Float64() * total
	last := 0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		last = i
		if x < w {
			return i
		}
		x -= w
	}
	return last
}

// RandomCenters lays out k well-separated centers in d dimensions using a
// seeded RNG. The leading min(d, 8) dimensions carry strong uniform
// separation in [-span, span]; the remaining dimensions carry moderate
// Gaussian separation (std span/3). Real categorical/network datasets
// like KDD-99 separate classes across many correlated features — without
// cross-dimension separation the intra-cluster noise of the tail
// dimensions would dominate Euclidean distances and no radius threshold
// could discriminate (the curse-of-dimensionality failure mode).
func RandomCenters(rng *rand.Rand, k, d int, span float64) []vector.Vector {
	active := d
	if active > 8 {
		active = 8
	}
	out := make([]vector.Vector, k)
	for i := range out {
		c := vector.New(d)
		for j := 0; j < active; j++ {
			c[j] = (rng.Float64()*2 - 1) * span
		}
		for j := active; j < d; j++ {
			c[j] = rng.NormFloat64() * span / 3
		}
		out[i] = c
	}
	return out
}

// Summary reports the Table I statistics of a generated dataset.
type Summary struct {
	Name      string
	Records   int
	Dim       int
	Clusters  int
	Top3Share [3]float64 // record share of the three largest clusters
	NoiseFrac float64
}

// Summarize computes a Summary from a generated dataset.
func Summarize(name string, records []stream.Record) (Summary, error) {
	if len(records) == 0 {
		return Summary{}, errors.New("datagen: empty dataset")
	}
	counts := map[int]int{}
	noise := 0
	for _, r := range records {
		if r.Label < 0 {
			noise++
			continue
		}
		counts[r.Label]++
	}
	sizes := make([]int, 0, len(counts))
	for _, c := range counts {
		sizes = append(sizes, c)
	}
	// Insertion sort descending (len(counts) is small).
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] > sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	s := Summary{
		Name:      name,
		Records:   len(records),
		Dim:       len(records[0].Values),
		Clusters:  len(counts),
		NoiseFrac: float64(noise) / float64(len(records)),
	}
	for i := 0; i < 3 && i < len(sizes); i++ {
		s.Top3Share[i] = float64(sizes[i]) / float64(len(records))
	}
	return s, nil
}

// StabilityIndex measures how much the label distribution shifts across the
// stream: it splits the stream into windows and returns the mean total
// variation distance between consecutive window label histograms (0 =
// perfectly stable, →1 = total churn). The paper's "stable dataset"
// argument for KDD-98 is quantified with this index.
func StabilityIndex(records []stream.Record, windows int) float64 {
	if windows < 2 || len(records) < windows {
		return 0
	}
	per := len(records) / windows
	hists := make([]map[int]float64, windows)
	for w := 0; w < windows; w++ {
		h := map[int]float64{}
		lo, hi := w*per, (w+1)*per
		if w == windows-1 {
			hi = len(records)
		}
		for _, r := range records[lo:hi] {
			h[r.Label]++
		}
		n := float64(hi - lo)
		for k := range h {
			h[k] /= n
		}
		hists[w] = h
	}
	var total float64
	for w := 1; w < windows; w++ {
		total += totalVariation(hists[w-1], hists[w])
	}
	return total / float64(windows-1)
}

func totalVariation(a, b map[int]float64) float64 {
	var tv float64
	seen := map[int]bool{}
	for k, av := range a {
		tv += math.Abs(av - b[k])
		seen[k] = true
	}
	for k, bv := range b {
		if !seen[k] {
			tv += bv
		}
	}
	return tv / 2
}
