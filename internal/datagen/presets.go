package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"diststream/internal/stream"
	"diststream/internal/vector"
)

// Preset identifies one of the paper-dataset substitutes or the
// high-dimensional embedding-stream workloads.
type Preset int

// The first three presets mirror Table I of the paper; the embed presets
// open the high-dimensional regime the ROADMAP calls for (d = 128–768,
// where the flat kernels and norm-expansion tradeoffs get stressed).
const (
	// KDD99Sim mirrors KDD-99: 494,021 records, 54 features, 23 clusters,
	// top-3 share 57/22/20, bursty attack-wave dynamics.
	KDD99Sim Preset = iota + 1
	// CovTypeSim mirrors CoverType: 581,012 records, 54 features,
	// 7 clusters, top-3 share 49/36/6, gradual drift.
	CovTypeSim
	// KDD98Sim mirrors KDD-98: 95,412 records, 315 features, 5 clusters,
	// top-3 share 95/1.5/1.4, stable distribution.
	KDD98Sim
	// EmbedSim128 models a stream of 128-dim embedding vectors: 12
	// clusters on drifting unit directions, all dimensions informative.
	EmbedSim128
	// EmbedSim384 is the 384-dim embedding stream (sentence-encoder
	// scale).
	EmbedSim384
	// EmbedSim768 is the 768-dim embedding stream (BERT-base scale).
	EmbedSim768
)

// String returns the dataset name used in reports.
func (p Preset) String() string {
	switch p {
	case KDD99Sim:
		return "kdd99-sim"
	case CovTypeSim:
		return "covtype-sim"
	case KDD98Sim:
		return "kdd98-sim"
	case EmbedSim128:
		return "embed128-sim"
	case EmbedSim384:
		return "embed384-sim"
	case EmbedSim768:
		return "embed768-sim"
	default:
		return fmt.Sprintf("preset(%d)", int(p))
	}
}

// FullRecords returns the paper-scale record count for the preset.
func (p Preset) FullRecords() int {
	switch p {
	case KDD99Sim:
		return 494021
	case CovTypeSim:
		return 581012
	case KDD98Sim:
		return 95412
	case EmbedSim128:
		return 200000
	case EmbedSim384:
		return 100000
	case EmbedSim768:
		return 50000
	default:
		return 0
	}
}

// NumClusters returns the ground-truth cluster count for the preset.
func (p Preset) NumClusters() int {
	switch p {
	case KDD99Sim:
		return 23
	case CovTypeSim:
		return 7
	case KDD98Sim:
		return 5
	case EmbedSim128, EmbedSim384, EmbedSim768:
		return 12
	default:
		return 0
	}
}

// Dim returns the feature dimensionality for the preset.
func (p Preset) Dim() int {
	switch p {
	case KDD99Sim, CovTypeSim:
		return 54
	case KDD98Sim:
		return 315
	case EmbedSim128:
		return 128
	case EmbedSim384:
		return 384
	case EmbedSim768:
		return 768
	default:
		return 0
	}
}

// HighDim reports whether the preset is one of the embedding workloads,
// whose per-record cost is dominated by d and which the harness
// therefore streams at a reduced rate (like KDD98Sim).
func (p Preset) HighDim() bool {
	switch p {
	case KDD98Sim, EmbedSim128, EmbedSim384, EmbedSim768:
		return true
	}
	return false
}

// NewSpec builds the spec for a preset at the given record count (pass
// p.FullRecords() for paper scale; smaller counts keep the same mixture
// and dynamics but shorter streams). Rate is records per virtual second.
func NewSpec(p Preset, records int, rate float64, seed int64) (Spec, error) {
	if records <= 0 {
		records = p.FullRecords()
	}
	rng := rand.New(rand.NewSource(seed))
	switch p {
	case KDD99Sim:
		return kdd99Spec(rng, records, rate, seed), nil
	case CovTypeSim:
		return covtypeSpec(rng, records, rate, seed), nil
	case KDD98Sim:
		return kdd98Spec(rng, records, rate, seed), nil
	case EmbedSim128, EmbedSim384, EmbedSim768:
		return embedSpec(p, rng, records, rate, seed), nil
	default:
		return Spec{}, fmt.Errorf("datagen: unknown preset %d", int(p))
	}
}

// GeneratePreset is a convenience wrapper: build the spec and generate.
func GeneratePreset(p Preset, records int, rate float64, seed int64) ([]stream.Record, error) {
	spec, err := NewSpec(p, records, rate, seed)
	if err != nil {
		return nil, err
	}
	return Generate(spec)
}

// kdd99Spec: 23 clusters — three long-standing traffic clusters carrying
// 57/22/20 of the base weight, plus 20 attack clusters that have ZERO
// base weight and only exist while their burst is active. Bursts are
// therefore genuinely new patterns: the model must create micro-clusters
// for them from outlier records, which is exactly where the order-aware
// update mechanism matters (§VII-B2).
func kdd99Spec(rng *rand.Rand, records int, rate float64, seed int64) Spec {
	const k, dim = 23, 54
	centers := RandomCenters(rng, k, dim, 8)
	clusters := make([]ClusterSpec, k)
	weights := smallTailWeights(k, []float64{0.57, 0.22, 0.20})
	for i := range clusters {
		w := weights[i]
		if i >= 3 {
			w = 0 // attack clusters appear only during their burst
		}
		clusters[i] = ClusterSpec{Center: centers[i], Std: 0.6, BaseWeight: w}
	}
	// Attack waves: each minor cluster surges once; waves overlap so at
	// any instant some attack is emerging or vanishing. Each attack
	// pattern also drifts while active (evolving attack behaviour) —
	// several cluster widths over its lifetime, fast enough that a model
	// failing to favor recent records loses track of it.
	events := make([]BurstEvent, 0, k-3)
	for c := 3; c < k; c++ {
		span := 0.05 + rng.Float64()*0.08
		start := rng.Float64() * (1 - span)
		velocity := vector.New(dim)
		for d := 0; d < 8; d++ {
			velocity[d] = rng.NormFloat64() * 2.5
		}
		events = append(events, BurstEvent{
			Cluster:  c,
			Start:    start,
			End:      start + span,
			Peak:     0.35 + rng.Float64()*0.4,
			Velocity: velocity,
		})
	}
	return Spec{
		Name:      KDD99Sim.String(),
		Records:   records,
		Dim:       dim,
		Clusters:  clusters,
		Rate:      rate,
		NoiseFrac: 0.01,
		Drift:     Burst{Events: events},
		Seed:      seed + 1,
		Normalize: true,
	}
}

// covtypeSpec: 7 clusters with 49/36/6 skew, gradual center drift and
// smooth weight rotation.
func covtypeSpec(rng *rand.Rand, records int, rate float64, seed int64) Spec {
	const k, dim = 7, 54
	centers := RandomCenters(rng, k, dim, 7)
	clusters := make([]ClusterSpec, k)
	weights := smallTailWeights(k, []float64{0.49, 0.36, 0.06})
	for i := range clusters {
		clusters[i] = ClusterSpec{Center: centers[i], Std: 0.8, BaseWeight: weights[i]}
	}
	velocity := RandomCenters(rng, k, dim, 10)
	return Spec{
		Name:      CovTypeSim.String(),
		Records:   records,
		Dim:       dim,
		Clusters:  clusters,
		Rate:      rate,
		NoiseFrac: 0.005,
		Drift:     Gradual{Velocity: velocity, WeightShift: 0.6},
		Seed:      seed + 2,
		Normalize: true,
	}
}

// kdd98Spec: 5 clusters dominated by one long-standing cluster holding 95%
// of records; no drift. High-dimensional (315 features).
func kdd98Spec(rng *rand.Rand, records int, rate float64, seed int64) Spec {
	const k, dim = 5, 315
	centers := RandomCenters(rng, k, dim, 6)
	clusters := make([]ClusterSpec, k)
	weights := []float64{0.95, 0.015, 0.014, 0.011, 0.010}
	for i := range clusters {
		clusters[i] = ClusterSpec{Center: centers[i], Std: 0.7, BaseWeight: weights[i]}
	}
	return Spec{
		Name:      KDD98Sim.String(),
		Records:   records,
		Dim:       dim,
		Clusters:  clusters,
		Rate:      rate,
		NoiseFrac: 0.005,
		Drift:     Stable{},
		Seed:      seed + 3,
		Normalize: true,
	}
}

// embedSpec: 12 clusters of synthetic embedding vectors in d = 128, 384
// or 768 dimensions. Unlike the tabular presets, every dimension is
// informative: each center is a random direction scaled to a fixed norm
// (random high-dimensional directions are near-orthogonal, so pairwise
// center distances concentrate at span·√2 — the geometry of encoder
// embeddings, where classes separate by direction rather than by a few
// features). Per-dimension std is 4/√d so the expected point-to-center
// distance stays 4 at every d — the workload gets harder with d only
// through kernel cost, not through vanishing separation. Clusters drift
// along their own random unit directions (Gradual velocity) with smooth
// weight rotation — "drifting cluster directions", the regime where a
// lagging model misses the moving semantics of the stream.
//
// Normalize is off: z-scoring per feature would erase the directional
// norm structure that makes this an embedding workload (and costs a
// second O(n·d) pass).
func embedSpec(p Preset, rng *rand.Rand, records int, rate float64, seed int64) Spec {
	const k = 12
	dim := p.Dim()
	centers := embedDirections(rng, k, dim, 6)
	clusters := make([]ClusterSpec, k)
	weights := smallTailWeights(k, []float64{0.30, 0.18, 0.12})
	std := 4.0 / math.Sqrt(float64(dim))
	for i := range clusters {
		clusters[i] = ClusterSpec{Center: centers[i], Std: std, BaseWeight: weights[i]}
	}
	velocity := embedDirections(rng, k, dim, 3)
	return Spec{
		Name:      p.String(),
		Records:   records,
		Dim:       dim,
		Clusters:  clusters,
		Rate:      rate,
		NoiseFrac: 0.01,
		Drift:     Gradual{Velocity: velocity, WeightShift: 0.5},
		Seed:      seed + 4 + int64(p-EmbedSim128),
		Normalize: false,
	}
}

// embedDirections draws k random directions in d dimensions, each scaled
// to norm span.
func embedDirections(rng *rand.Rand, k, d int, span float64) []vector.Vector {
	out := make([]vector.Vector, k)
	for i := range out {
		c := vector.New(d)
		var norm float64
		for j := range c {
			c[j] = rng.NormFloat64()
			norm += c[j] * c[j]
		}
		if norm > 0 {
			scale := span / math.Sqrt(norm)
			for j := range c {
				c[j] *= scale
			}
		}
		out[i] = c
	}
	return out
}

// smallTailWeights builds a weight vector of length k whose first
// len(heads) entries take the given shares and whose remaining entries
// split the leftover mass evenly.
func smallTailWeights(k int, heads []float64) []float64 {
	out := make([]float64, k)
	var used float64
	for i, h := range heads {
		if i < k {
			out[i] = h
			used += h
		}
	}
	rest := k - len(heads)
	if rest > 0 {
		left := 1 - used
		if left < 0 {
			left = 0
		}
		for i := len(heads); i < k; i++ {
			out[i] = left / float64(rest)
		}
	}
	return out
}
