package datagen

import (
	"fmt"
	"math/rand"

	"diststream/internal/stream"
	"diststream/internal/vector"
)

// Preset identifies one of the three paper-dataset substitutes.
type Preset int

// The three presets mirror Table I of the paper.
const (
	// KDD99Sim mirrors KDD-99: 494,021 records, 54 features, 23 clusters,
	// top-3 share 57/22/20, bursty attack-wave dynamics.
	KDD99Sim Preset = iota + 1
	// CovTypeSim mirrors CoverType: 581,012 records, 54 features,
	// 7 clusters, top-3 share 49/36/6, gradual drift.
	CovTypeSim
	// KDD98Sim mirrors KDD-98: 95,412 records, 315 features, 5 clusters,
	// top-3 share 95/1.5/1.4, stable distribution.
	KDD98Sim
)

// String returns the dataset name used in reports.
func (p Preset) String() string {
	switch p {
	case KDD99Sim:
		return "kdd99-sim"
	case CovTypeSim:
		return "covtype-sim"
	case KDD98Sim:
		return "kdd98-sim"
	default:
		return fmt.Sprintf("preset(%d)", int(p))
	}
}

// FullRecords returns the paper-scale record count for the preset.
func (p Preset) FullRecords() int {
	switch p {
	case KDD99Sim:
		return 494021
	case CovTypeSim:
		return 581012
	case KDD98Sim:
		return 95412
	default:
		return 0
	}
}

// NumClusters returns the ground-truth cluster count for the preset.
func (p Preset) NumClusters() int {
	switch p {
	case KDD99Sim:
		return 23
	case CovTypeSim:
		return 7
	case KDD98Sim:
		return 5
	default:
		return 0
	}
}

// Dim returns the feature dimensionality for the preset.
func (p Preset) Dim() int {
	switch p {
	case KDD99Sim, CovTypeSim:
		return 54
	case KDD98Sim:
		return 315
	default:
		return 0
	}
}

// NewSpec builds the spec for a preset at the given record count (pass
// p.FullRecords() for paper scale; smaller counts keep the same mixture
// and dynamics but shorter streams). Rate is records per virtual second.
func NewSpec(p Preset, records int, rate float64, seed int64) (Spec, error) {
	if records <= 0 {
		records = p.FullRecords()
	}
	rng := rand.New(rand.NewSource(seed))
	switch p {
	case KDD99Sim:
		return kdd99Spec(rng, records, rate, seed), nil
	case CovTypeSim:
		return covtypeSpec(rng, records, rate, seed), nil
	case KDD98Sim:
		return kdd98Spec(rng, records, rate, seed), nil
	default:
		return Spec{}, fmt.Errorf("datagen: unknown preset %d", int(p))
	}
}

// GeneratePreset is a convenience wrapper: build the spec and generate.
func GeneratePreset(p Preset, records int, rate float64, seed int64) ([]stream.Record, error) {
	spec, err := NewSpec(p, records, rate, seed)
	if err != nil {
		return nil, err
	}
	return Generate(spec)
}

// kdd99Spec: 23 clusters — three long-standing traffic clusters carrying
// 57/22/20 of the base weight, plus 20 attack clusters that have ZERO
// base weight and only exist while their burst is active. Bursts are
// therefore genuinely new patterns: the model must create micro-clusters
// for them from outlier records, which is exactly where the order-aware
// update mechanism matters (§VII-B2).
func kdd99Spec(rng *rand.Rand, records int, rate float64, seed int64) Spec {
	const k, dim = 23, 54
	centers := RandomCenters(rng, k, dim, 8)
	clusters := make([]ClusterSpec, k)
	weights := smallTailWeights(k, []float64{0.57, 0.22, 0.20})
	for i := range clusters {
		w := weights[i]
		if i >= 3 {
			w = 0 // attack clusters appear only during their burst
		}
		clusters[i] = ClusterSpec{Center: centers[i], Std: 0.6, BaseWeight: w}
	}
	// Attack waves: each minor cluster surges once; waves overlap so at
	// any instant some attack is emerging or vanishing. Each attack
	// pattern also drifts while active (evolving attack behaviour) —
	// several cluster widths over its lifetime, fast enough that a model
	// failing to favor recent records loses track of it.
	events := make([]BurstEvent, 0, k-3)
	for c := 3; c < k; c++ {
		span := 0.05 + rng.Float64()*0.08
		start := rng.Float64() * (1 - span)
		velocity := vector.New(dim)
		for d := 0; d < 8; d++ {
			velocity[d] = rng.NormFloat64() * 2.5
		}
		events = append(events, BurstEvent{
			Cluster:  c,
			Start:    start,
			End:      start + span,
			Peak:     0.35 + rng.Float64()*0.4,
			Velocity: velocity,
		})
	}
	return Spec{
		Name:      KDD99Sim.String(),
		Records:   records,
		Dim:       dim,
		Clusters:  clusters,
		Rate:      rate,
		NoiseFrac: 0.01,
		Drift:     Burst{Events: events},
		Seed:      seed + 1,
		Normalize: true,
	}
}

// covtypeSpec: 7 clusters with 49/36/6 skew, gradual center drift and
// smooth weight rotation.
func covtypeSpec(rng *rand.Rand, records int, rate float64, seed int64) Spec {
	const k, dim = 7, 54
	centers := RandomCenters(rng, k, dim, 7)
	clusters := make([]ClusterSpec, k)
	weights := smallTailWeights(k, []float64{0.49, 0.36, 0.06})
	for i := range clusters {
		clusters[i] = ClusterSpec{Center: centers[i], Std: 0.8, BaseWeight: weights[i]}
	}
	velocity := RandomCenters(rng, k, dim, 10)
	return Spec{
		Name:      CovTypeSim.String(),
		Records:   records,
		Dim:       dim,
		Clusters:  clusters,
		Rate:      rate,
		NoiseFrac: 0.005,
		Drift:     Gradual{Velocity: velocity, WeightShift: 0.6},
		Seed:      seed + 2,
		Normalize: true,
	}
}

// kdd98Spec: 5 clusters dominated by one long-standing cluster holding 95%
// of records; no drift. High-dimensional (315 features).
func kdd98Spec(rng *rand.Rand, records int, rate float64, seed int64) Spec {
	const k, dim = 5, 315
	centers := RandomCenters(rng, k, dim, 6)
	clusters := make([]ClusterSpec, k)
	weights := []float64{0.95, 0.015, 0.014, 0.011, 0.010}
	for i := range clusters {
		clusters[i] = ClusterSpec{Center: centers[i], Std: 0.7, BaseWeight: weights[i]}
	}
	return Spec{
		Name:      KDD98Sim.String(),
		Records:   records,
		Dim:       dim,
		Clusters:  clusters,
		Rate:      rate,
		NoiseFrac: 0.005,
		Drift:     Stable{},
		Seed:      seed + 3,
		Normalize: true,
	}
}

// smallTailWeights builds a weight vector of length k whose first
// len(heads) entries take the given shares and whose remaining entries
// split the leftover mass evenly.
func smallTailWeights(k int, heads []float64) []float64 {
	out := make([]float64, k)
	var used float64
	for i, h := range heads {
		if i < k {
			out[i] = h
			used += h
		}
	}
	rest := k - len(heads)
	if rest > 0 {
		left := 1 - used
		if left < 0 {
			left = 0
		}
		for i := len(heads); i < k; i++ {
			out[i] = left / float64(rest)
		}
	}
	return out
}
