package datagen

import (
	"math"

	"diststream/internal/vector"
)

// Stable is the no-drift model: weights and centers stay fixed for the
// whole stream (the KDD-98-like regime).
type Stable struct{}

var _ Drift = Stable{}

// Evolve implements Drift; it leaves base weights and zero offsets as-is.
func (Stable) Evolve(float64, []float64, []vector.Vector) {}

// Name implements Drift.
func (Stable) Name() string { return "stable" }

// Burst models bursty regime switches: selected clusters surge from their
// base weight to a peak and back over a window of stream progress. This is
// the KDD-99-like regime where attack types emerge, dominate, and vanish.
type Burst struct {
	// Events lists the surges, in any order.
	Events []BurstEvent
}

// BurstEvent is one cluster surge.
type BurstEvent struct {
	// Cluster is the index of the surging cluster.
	Cluster int
	// Start and End delimit the surge window in stream progress [0,1].
	Start, End float64
	// Peak is the weight at the middle of the window (replaces, not adds
	// to, the base weight while the surge is the dominant term).
	Peak float64
	// Velocity, when non-nil, translates the cluster's center linearly
	// over the event's lifetime (the full Velocity displacement is
	// reached at End). Evolving attack patterns move — this is what makes
	// update order matter: a model that fails to favor recent records
	// lags behind the moving pattern.
	Velocity vector.Vector
}

var _ Drift = Burst{}

// Evolve implements Drift. During an event the cluster's weight is raised
// along a triangular ramp toward Peak and the cluster center translates
// along Velocity; outside events weights and centers are untouched.
func (b Burst) Evolve(progress float64, w []float64, off []vector.Vector) {
	for _, ev := range b.Events {
		if ev.Cluster < 0 || ev.Cluster >= len(w) {
			continue
		}
		if progress < ev.Start || progress > ev.End || ev.End <= ev.Start {
			continue
		}
		mid := (ev.Start + ev.End) / 2
		half := (ev.End - ev.Start) / 2
		// ramp rises 0→1 toward mid then falls back to 0.
		ramp := 1 - math.Abs(progress-mid)/half
		surge := ev.Peak * ramp
		if surge > w[ev.Cluster] {
			w[ev.Cluster] = surge
		}
		if ev.Velocity != nil && off != nil && ev.Cluster < len(off) {
			frac := (progress - ev.Start) / (ev.End - ev.Start)
			off[ev.Cluster].AXPY(frac, ev.Velocity)
		}
	}
}

// Name implements Drift.
func (Burst) Name() string { return "burst" }

// Gradual models slow continuous drift: cluster centers translate along
// fixed random directions and the mixing weights rotate smoothly between
// clusters. This is the CoverType-like regime (forest cover types shifting
// with elevation bands).
type Gradual struct {
	// Velocity holds one per-cluster direction vector; the center offset
	// at progress p is p * Velocity[c].
	Velocity []vector.Vector
	// WeightShift in [0,1] controls how strongly weights rotate: at
	// progress p the weight of cluster c is scaled by
	// 1 + WeightShift * sin(2*pi*(p + c/k)).
	WeightShift float64
}

var _ Drift = Gradual{}

// Evolve implements Drift.
func (g Gradual) Evolve(progress float64, w []float64, off []vector.Vector) {
	k := len(w)
	for c := 0; c < k; c++ {
		if c < len(g.Velocity) && g.Velocity[c] != nil {
			off[c].AXPY(progress, g.Velocity[c])
		}
		if g.WeightShift > 0 {
			phase := 2 * math.Pi * (progress + float64(c)/float64(k))
			scale := 1 + g.WeightShift*math.Sin(phase)
			if scale < 0.05 {
				scale = 0.05
			}
			w[c] *= scale
		}
	}
}

// Name implements Drift.
func (Gradual) Name() string { return "gradual" }
