package supervise

import (
	"errors"
	"sync"
	"syscall"
	"testing"
	"time"

	"os/exec"

	"diststream/internal/backoff"
)

func fastBackoff() backoff.Policy {
	return backoff.Policy{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond}.NoJitter()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRestartAfterKill(t *testing.T) {
	s := New()
	defer s.Close()
	err := s.Start(Spec{
		Name:    "sleeper",
		Command: func() *exec.Cmd { return exec.Command("sleep", "60") },
		Backoff: fastBackoff(),
		Window:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Signal("sleeper", syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restart", func() bool { return s.Restarts("sleeper") >= 1 })
	// The fresh incarnation must be signalable (i.e. running again).
	waitFor(t, "running replacement", func() bool {
		return s.Signal("sleeper", syscall.Signal(0)) == nil
	})
	if s.Broken("sleeper") {
		t.Fatal("breaker opened after a single kill")
	}
}

func TestCrashLoopBreaker(t *testing.T) {
	var mu sync.Mutex
	var events []EventKind
	s := New()
	defer s.Close()
	err := s.Start(Spec{
		Name:        "crasher",
		Command:     func() *exec.Cmd { return exec.Command("false") },
		Backoff:     fastBackoff(),
		MaxRestarts: 3,
		Window:      10 * time.Second,
		OnEvent: func(ev Event) {
			mu.Lock()
			events = append(events, ev.Kind)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "breaker open", func() bool { return s.Broken("crasher") })
	if got := s.Restarts("crasher"); got > 3 {
		t.Errorf("Restarts = %d, want <= MaxRestarts", got)
	}
	if err := s.Signal("crasher", syscall.Signal(0)); !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("Signal on broken spec: err = %v, want ErrBreakerOpen", err)
	}
	mu.Lock()
	defer mu.Unlock()
	sawBreaker := false
	for _, k := range events {
		if k == EventBreakerOpen {
			sawBreaker = true
		}
	}
	if !sawBreaker {
		t.Errorf("events %v missing EventBreakerOpen", events)
	}
}

func TestStopPreventsRestart(t *testing.T) {
	s := New()
	defer s.Close()
	err := s.Start(Spec{
		Name:    "stopper",
		Command: func() *exec.Cmd { return exec.Command("sleep", "60") },
		Backoff: fastBackoff(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stop("stopper"); err != nil {
		t.Fatal(err)
	}
	before := s.Restarts("stopper")
	time.Sleep(50 * time.Millisecond)
	if got := s.Restarts("stopper"); got != before {
		t.Errorf("restarted after Stop: %d -> %d", before, got)
	}
}

func TestStartErrors(t *testing.T) {
	s := New()
	defer s.Close()
	if err := s.Start(Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if err := s.Start(Spec{
		Name:    "missing",
		Command: func() *exec.Cmd { return exec.Command("/no/such/binary/anywhere") },
	}); err == nil {
		t.Error("unstartable command accepted")
	}
	spec := Spec{
		Name:    "dup",
		Command: func() *exec.Cmd { return exec.Command("sleep", "60") },
	}
	if err := s.Start(spec); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(spec); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := s.Signal("nope", syscall.Signal(0)); !errors.Is(err, ErrUnknown) {
		t.Errorf("Signal unknown: err = %v, want ErrUnknown", err)
	}
}
