// Package supervise runs worker subprocesses under supervision: it
// spawns them, watches for exits, and restarts crashed processes with
// jittered exponential backoff. A crash-loop circuit breaker gives up
// on a process that keeps dying faster than its restart window, so a
// wedged binary cannot spin the host.
//
// The supervisor is policy-free about what it runs — specs provide a
// Command factory — and pairs with internal/membership: a restarted
// worker re-announces itself and the registry readmits it.
package supervise

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"diststream/internal/backoff"
)

// EventKind classifies a supervision event.
type EventKind int

const (
	// EventStarted: the process is running (initial start or restart).
	EventStarted EventKind = iota + 1
	// EventExited: the process exited while supervised.
	EventExited
	// EventBreakerOpen: too many crashes inside the window; the
	// supervisor gave up on this spec.
	EventBreakerOpen
	// EventStopped: the spec was stopped deliberately.
	EventStopped
)

func (k EventKind) String() string {
	switch k {
	case EventStarted:
		return "started"
	case EventExited:
		return "exited"
	case EventBreakerOpen:
		return "breaker-open"
	case EventStopped:
		return "stopped"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event reports one supervision transition.
type Event struct {
	Kind EventKind
	Name string
	Err  error // exit cause for EventExited/EventBreakerOpen
}

// Spec describes one supervised process. Zero fields get defaults.
type Spec struct {
	// Name identifies the process to Signal/Stop/Restarts.
	Name string
	// Command builds a fresh *exec.Cmd per (re)start. Required.
	// The supervisor wires Stdout/Stderr to Output if they are unset.
	Command func() *exec.Cmd
	// Backoff schedules restart delays (zero value = package defaults).
	Backoff backoff.Policy
	// MaxRestarts crashes within Window open the circuit breaker.
	// Zero means 5.
	MaxRestarts int
	// Window is the crash-counting window; a process that stays up at
	// least this long resets the restart budget. Zero means 30s.
	Window time.Duration
	// Output receives the process's stdout/stderr when the Command
	// factory left them nil. Nil means discard.
	Output io.Writer
	// OnEvent, when set, observes every transition.
	OnEvent func(Event)
}

var (
	// ErrUnknown is returned for operations on an unknown spec name.
	ErrUnknown = errors.New("supervise: unknown process")
	// ErrBreakerOpen reports a spec abandoned by the crash-loop breaker.
	ErrBreakerOpen = errors.New("supervise: crash-loop breaker open")
)

const (
	defaultMaxRestarts = 5
	defaultWindow      = 30 * time.Second
)

type proc struct {
	spec Spec

	mu       sync.Mutex
	cmd      *exec.Cmd
	restarts int  // total successful restarts
	broken   bool // breaker open
	stopping bool // deliberate stop in progress
	done     chan struct{}
}

// Supervisor manages a set of supervised processes.
type Supervisor struct {
	mu     sync.Mutex
	procs  map[string]*proc
	closed bool
}

// New creates an empty supervisor.
func New() *Supervisor {
	return &Supervisor{procs: make(map[string]*proc)}
}

// Start launches spec's process and begins supervising it. It returns
// an error if the name is taken or the initial start fails (the
// initial start is not retried: a command that cannot start even once
// is a configuration error, not a crash).
func (s *Supervisor) Start(spec Spec) error {
	if spec.Name == "" || spec.Command == nil {
		return errors.New("supervise: spec needs Name and Command")
	}
	if spec.MaxRestarts <= 0 {
		spec.MaxRestarts = defaultMaxRestarts
	}
	if spec.Window <= 0 {
		spec.Window = defaultWindow
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("supervise: supervisor closed")
	}
	if _, dup := s.procs[spec.Name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("supervise: process %q already supervised", spec.Name)
	}
	p := &proc{spec: spec, done: make(chan struct{})}
	s.procs[spec.Name] = p
	s.mu.Unlock()

	cmd, err := p.launch()
	if err != nil {
		s.mu.Lock()
		delete(s.procs, spec.Name)
		s.mu.Unlock()
		close(p.done)
		return fmt.Errorf("supervise: start %q: %w", spec.Name, err)
	}
	p.mu.Lock()
	p.cmd = cmd
	p.mu.Unlock()
	p.emit(Event{Kind: EventStarted, Name: spec.Name})
	go p.supervise()
	return nil
}

// Signal delivers sig to the named process's current incarnation.
func (s *Supervisor) Signal(name string, sig os.Signal) error {
	p, err := s.lookup(name)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken {
		return fmt.Errorf("%w: %s", ErrBreakerOpen, name)
	}
	if p.cmd == nil || p.cmd.Process == nil {
		return fmt.Errorf("supervise: %s not running", name)
	}
	return p.cmd.Process.Signal(sig)
}

// Stop terminates the named process without restarting it and waits
// for its supervision loop to finish.
func (s *Supervisor) Stop(name string) error {
	p, err := s.lookup(name)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.stopping = true
	if p.cmd != nil && p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
	broken := p.broken
	p.mu.Unlock()
	if !broken {
		<-p.done
	}
	p.emit(Event{Kind: EventStopped, Name: name})
	return nil
}

// Restarts reports how many times the named process has been restarted.
func (s *Supervisor) Restarts(name string) int {
	p, err := s.lookup(name)
	if err != nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restarts
}

// Broken reports whether the named spec's crash-loop breaker is open.
func (s *Supervisor) Broken(name string) bool {
	p, err := s.lookup(name)
	if err != nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.broken
}

// Close stops every supervised process and waits for the loops.
func (s *Supervisor) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	names := make([]string, 0, len(s.procs))
	for n := range s.procs {
		names = append(names, n)
	}
	s.mu.Unlock()
	for _, n := range names {
		_ = s.Stop(n)
	}
	return nil
}

func (s *Supervisor) lookup(name string) (*proc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.procs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknown, name)
	}
	return p, nil
}

// launch builds and starts a fresh incarnation.
func (p *proc) launch() (*exec.Cmd, error) {
	cmd := p.spec.Command()
	if cmd == nil {
		return nil, errors.New("nil command")
	}
	out := p.spec.Output
	if out == nil {
		out = io.Discard
	}
	if cmd.Stdout == nil {
		cmd.Stdout = out
	}
	if cmd.Stderr == nil {
		cmd.Stderr = out
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd, nil
}

// supervise waits on the current incarnation and restarts it on
// unexpected exits until stopped or the breaker opens.
func (p *proc) supervise() {
	defer close(p.done)
	attempt := 0
	var recent []time.Time // crash timestamps inside the window
	for {
		p.mu.Lock()
		cmd := p.cmd
		p.mu.Unlock()
		started := time.Now()
		err := cmd.Wait()
		p.emit(Event{Kind: EventExited, Name: p.spec.Name, Err: err})

		p.mu.Lock()
		if p.stopping {
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()

		// A healthy run resets the crash budget.
		if time.Since(started) >= p.spec.Window {
			attempt = 0
			recent = recent[:0]
		}

		// Restart loop: each iteration accounts one crash (the exit
		// above, or a spawn failure below).
		for {
			attempt++
			now := time.Now()
			recent = append(recent, now)
			cutoff := now.Add(-p.spec.Window)
			for len(recent) > 0 && recent[0].Before(cutoff) {
				recent = recent[1:]
			}
			if len(recent) > p.spec.MaxRestarts {
				p.mu.Lock()
				p.broken = true
				p.mu.Unlock()
				p.emit(Event{Kind: EventBreakerOpen, Name: p.spec.Name, Err: err})
				return
			}

			deadline := time.Now().Add(p.spec.Backoff.Delay(attempt))
			for time.Now().Before(deadline) {
				p.mu.Lock()
				stopping := p.stopping
				p.mu.Unlock()
				if stopping {
					return
				}
				time.Sleep(minDuration(10*time.Millisecond, time.Until(deadline)))
			}

			next, lerr := p.launch()
			if lerr != nil {
				// Spawn failure counts as an instant crash.
				err = lerr
				p.emit(Event{Kind: EventExited, Name: p.spec.Name, Err: lerr})
				continue
			}
			p.mu.Lock()
			if p.stopping {
				_ = next.Process.Kill()
				_ = next.Wait()
				p.mu.Unlock()
				return
			}
			p.cmd = next
			p.restarts++
			p.mu.Unlock()
			p.emit(Event{Kind: EventStarted, Name: p.spec.Name})
			break
		}
	}
}

func (p *proc) emit(ev Event) {
	if p.spec.OnEvent != nil {
		p.spec.OnEvent(ev)
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
