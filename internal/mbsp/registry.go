package mbsp

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// OpFunc is one stage operation: it transforms a task's input partition
// into an output partition. Ops must be pure with respect to the engine
// (no shared mutable state between tasks) except through the TaskContext.
type OpFunc func(ctx *TaskContext, in Partition) (Partition, error)

// Registry maps operation names to implementations. Both executors and
// remote workers resolve tasks against a registry; the driver and the
// workers must register the same ops (the analogue of shipping the same
// application jar to every Spark executor).
type Registry struct {
	mu  sync.RWMutex
	ops map[string]OpFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ops: make(map[string]OpFunc)}
}

// Register adds an op under name. Registering a duplicate name is an
// error: pipelines must use distinct names.
func (r *Registry) Register(name string, fn OpFunc) error {
	if name == "" {
		return fmt.Errorf("mbsp: empty op name")
	}
	if fn == nil {
		return fmt.Errorf("mbsp: nil op %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.ops[name]; dup {
		return fmt.Errorf("mbsp: op %q already registered", name)
	}
	r.ops[name] = fn
	return nil
}

// MustRegister is Register that panics on error; intended for program
// initialization where a duplicate registration is a programming bug.
func (r *Registry) MustRegister(name string, fn OpFunc) {
	if err := r.Register(name, fn); err != nil {
		panic(err)
	}
}

// Lookup resolves an op by name.
func (r *Registry) Lookup(name string) (OpFunc, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.ops[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownOp, name)
	}
	return fn, nil
}

// SafeCall invokes an op with panic containment: a panic inside fn is
// recovered and returned as a *PanicError carrying the panic value and
// stack, so one bad record fails a task (which the retry/abort machinery
// then handles) instead of taking down the whole executor process. Both
// executors route every op invocation through here.
func SafeCall(fn OpFunc, ctx *TaskContext, in Partition) (out Partition, err error) {
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, in)
}

// Names returns the registered op names (order unspecified).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.ops))
	for name := range r.ops {
		out = append(out, name)
	}
	return out
}

// TaskContext carries per-task environment: identity and broadcast
// variable access.
type TaskContext struct {
	StageName string
	TaskID    int
	WorkerID  int
	// Attempt is 0 for the first execution and counts retries after task
	// failures (see LocalConfig.TaskRetries).
	Attempt int

	broadcasts BroadcastStore
}

// BroadcastStore resolves broadcast ids to values. Executors implement it
// over whatever state they keep locally (an in-memory map for the local
// executor, the per-worker replica for the TCP executor).
type BroadcastStore interface {
	// Get returns the value published under id, if any.
	Get(id string) (Item, bool)
}

// NewTaskContext builds a context for one task execution. It exists so
// that alternative executors (e.g. the TCP worker) can construct contexts
// backed by their own broadcast replicas.
func NewTaskContext(stage string, taskID, workerID int, broadcasts BroadcastStore) *TaskContext {
	return &TaskContext{
		StageName:  stage,
		TaskID:     taskID,
		WorkerID:   workerID,
		broadcasts: broadcasts,
	}
}

// Broadcast returns the broadcast value published under id.
func (c *TaskContext) Broadcast(id string) (Item, error) {
	if c.broadcasts == nil {
		return nil, fmt.Errorf("%w: %q (no store)", ErrNoBroadcast, id)
	}
	v, ok := c.broadcasts.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoBroadcast, id)
	}
	return v, nil
}

// mapStore is a trivial BroadcastStore over a map (used by executors that
// hold broadcasts in memory).
type mapStore struct {
	mu sync.RWMutex
	m  map[string]Item
}

var _ BroadcastStore = (*mapStore)(nil)

func newMapStore() *mapStore {
	return &mapStore{m: make(map[string]Item)}
}

// Get implements BroadcastStore.
func (s *mapStore) Get(id string) (Item, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[id]
	return v, ok
}

func (s *mapStore) put(id string, v Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[id] = v
}
