package mbsp

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// referenceShuffle is the original map-based ShuffleByKey, kept verbatim
// as the behavioral oracle for the two-pass counting implementation.
func referenceShuffle(inputs []Partition, numPartitions int) ([]Partition, error) {
	if numPartitions <= 0 {
		return nil, fmt.Errorf("mbsp: numPartitions %d must be positive", numPartitions)
	}
	groups := make(map[uint64]*Group)
	var order []uint64
	for pi, part := range inputs {
		for ii, item := range part {
			key, v, ok := keyedOf(item)
			if !ok {
				return nil, fmt.Errorf("mbsp: shuffle input partition %d item %d is %T, want KeyedItem", pi, ii, item)
			}
			g, ok := groups[key]
			if !ok {
				g = &Group{Key: key}
				groups[key] = g
				order = append(order, key)
			}
			g.Items = append(g.Items, v)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]Partition, numPartitions)
	for _, key := range order {
		p := int(key % uint64(numPartitions))
		out[p] = append(out[p], *groups[key])
	}
	return out, nil
}

// TestShuffleByKeyMatchesReference drives random inputs — mixed value and
// pointer KeyedItems, outlier-band keys, empty partitions — through both
// implementations and requires identical output: same groups, same group
// order per partition, same item order per group.
func TestShuffleByKeyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		p := 1 + rng.Intn(6)
		numInputs := rng.Intn(6)
		inputs := make([]Partition, numInputs)
		seq := 0
		for pi := range inputs {
			n := rng.Intn(40)
			part := make(Partition, n)
			for i := range part {
				key := uint64(rng.Intn(12))
				if rng.Intn(8) == 0 {
					key = (uint64(1) << 63) | uint64(rng.Intn(p))
				}
				if rng.Intn(2) == 0 {
					part[i] = KeyedItem{Key: key, Item: seq}
				} else {
					part[i] = &KeyedItem{Key: key, Item: seq}
				}
				seq++
			}
			inputs[pi] = part
		}
		got, gotErr := ShuffleByKey(inputs, p)
		want, wantErr := referenceShuffle(inputs, p)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, gotErr, wantErr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: shuffle mismatch\ngot  %v\nwant %v", trial, got, want)
		}
	}
}

func TestShuffleByKeyRejectsNonKeyed(t *testing.T) {
	_, err := ShuffleByKey([]Partition{{KeyedItem{Key: 1, Item: "x"}, 42}}, 2)
	if err == nil {
		t.Fatal("non-KeyedItem accepted")
	}
	want := "mbsp: shuffle input partition 0 item 1 is int, want KeyedItem"
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err, want)
	}
}

func TestShuffleByKeyPointerItems(t *testing.T) {
	out, err := ShuffleByKey([]Partition{
		{&KeyedItem{Key: 3, Item: "a"}, KeyedItem{Key: 1, Item: "b"}},
		{&KeyedItem{Key: 3, Item: "c"}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Key 1 -> partition 1, key 3 -> partition 1; sorted keys => group 1
	// before group 3.
	if len(out[1]) != 2 {
		t.Fatalf("partition 1 has %d groups", len(out[1]))
	}
	g1 := out[1][0].(Group)
	g3 := out[1][1].(Group)
	if g1.Key != 1 || g3.Key != 3 {
		t.Fatalf("group order: %d, %d", g1.Key, g3.Key)
	}
	if !reflect.DeepEqual(g3.Items, []any{"a", "c"}) {
		t.Errorf("group 3 items = %v", g3.Items)
	}
}
