package mbsp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// stallWorkerZero delays the named stage's tasks only when they run on
// worker 0 — modelling one slow node, so a backup copy dispatched to any
// other worker runs at full speed.
func stallWorkerZero(stage string, d time.Duration) DelayFunc {
	return func(s string, _, workerID int) time.Duration {
		if s == stage && workerID == 0 {
			return d
		}
		return 0
	}
}

func newSpecLocal(t *testing.T, p int, reg *Registry, cfg LocalConfig) *LocalExecutor {
	t.Helper()
	cfg.Parallelism = p
	cfg.Registry = reg
	exec, err := NewLocalExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = exec.Close() })
	return exec
}

func TestSpeculationBackupWinsAndImprovesWallTime(t *testing.T) {
	const stall = 400 * time.Millisecond
	reg := newTestRegistry(t)
	inputs := intParts([]int{1, 2}, []int{3}, []int{4}, []int{5})

	run := func(spec *SpeculationConfig) ([]Partition, []TaskMetrics, time.Duration) {
		exec := newSpecLocal(t, 4, reg, LocalConfig{
			Delay:       stallWorkerZero("map", stall),
			Speculation: spec,
		})
		start := time.Now()
		out, metrics, err := exec.RunTasks(context.Background(), "map", "double", inputs)
		if err != nil {
			t.Fatal(err)
		}
		return out, metrics, time.Since(start)
	}

	plainOut, _, plainWall := run(nil)
	specOut, metrics, specWall := run(&SpeculationConfig{
		Multiplier:   1.5,
		MinCompleted: 2,
		Poll:         time.Millisecond,
	})

	// The plain run is gated on the stalled worker; the speculative run
	// must finish well before the stall elapses.
	if plainWall < stall {
		t.Fatalf("plain wall %v shorter than the %v stall; delay not injected", plainWall, stall)
	}
	if specWall >= stall/2 {
		t.Errorf("speculative wall %v did not improve on the %v stall", specWall, stall)
	}

	// First-result-wins must not change output: task 0's backup computes
	// the same pure function over the same partition.
	if len(specOut) != len(plainOut) {
		t.Fatalf("output partition counts differ: %d vs %d", len(specOut), len(plainOut))
	}
	for i := range plainOut {
		if len(specOut[i]) != len(plainOut[i]) {
			t.Fatalf("partition %d sizes differ", i)
		}
		for j := range plainOut[i] {
			if specOut[i][j] != plainOut[i][j] {
				t.Errorf("partition %d item %d: %v vs %v", i, j, specOut[i][j], plainOut[i][j])
			}
		}
	}

	// The straggling task must be marked speculative with a backup win,
	// executed by a worker other than the stalled one.
	sm := StageMetrics{Stage: "map", Tasks: metrics}
	if sm.SpeculativeLaunches() < 1 {
		t.Error("no speculative launches recorded")
	}
	if sm.SpeculativeWins() < 1 {
		t.Error("no speculative wins recorded")
	}
	if !metrics[0].Speculative || !metrics[0].SpeculativeWin {
		t.Errorf("task 0 metrics = %+v, want speculative win", metrics[0])
	}
	if metrics[0].WorkerID == 0 {
		t.Errorf("winning copy ran on the stalled worker %d", metrics[0].WorkerID)
	}
}

func TestSpeculationBackupCoversFailedPrimary(t *testing.T) {
	// Worker 0 is a sick node: its copy of any task stalls and then fails.
	// Task 0 is dealt to worker 0, so its primary is doomed; the backup on
	// a healthy worker must win and the stage must succeed with the
	// backup's result instead of aborting on the primary's error.
	reg := newTestRegistry(t)
	reg.MustRegister("fail-on-worker-zero", func(ctx *TaskContext, in Partition) (Partition, error) {
		if ctx.WorkerID == 0 {
			return nil, errors.New("sick worker")
		}
		return in, nil
	})
	exec := newSpecLocal(t, 4, reg, LocalConfig{
		Delay:       stallWorkerZero("map", 200*time.Millisecond),
		Speculation: &SpeculationConfig{Multiplier: 1.5, MinCompleted: 2, Poll: time.Millisecond},
	})
	out, metrics, err := exec.RunTasks(context.Background(), "map", "fail-on-worker-zero",
		intParts([]int{1}, []int{2}, []int{3}, []int{4}))
	if err != nil {
		t.Fatalf("stage failed despite a healthy backup: %v", err)
	}
	if out[0][0] != 1 {
		t.Errorf("task 0 output = %v, want 1", out[0][0])
	}
	if !metrics[0].Speculative || !metrics[0].SpeculativeWin || metrics[0].WorkerID == 0 {
		t.Errorf("task 0 metrics = %+v, want a backup win on a healthy worker", metrics[0])
	}
}

func TestSpeculationDisabledKeepsSingleCopies(t *testing.T) {
	reg := newTestRegistry(t)
	exec := newLocal(t, 2, reg)
	_, metrics, err := exec.RunTasks(context.Background(), "map", "double", intParts([]int{1}, []int{2}, []int{3}))
	if err != nil {
		t.Fatal(err)
	}
	sm := StageMetrics{Stage: "map", Tasks: metrics}
	if sm.SpeculativeLaunches() != 0 || sm.SpeculativeWins() != 0 {
		t.Errorf("speculation metrics nonzero without speculation: %+v", metrics)
	}
}

func TestSpeculationConfigValidation(t *testing.T) {
	reg := newTestRegistry(t)
	bad := []SpeculationConfig{
		{Multiplier: -1},
		{Multiplier: 0.5},
		{MinCompleted: -1},
		{Poll: -time.Second},
	}
	for _, cfg := range bad {
		cfg := cfg
		if _, err := NewLocalExecutor(LocalConfig{Parallelism: 1, Registry: reg, Speculation: &cfg}); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	exec, err := NewLocalExecutor(LocalConfig{Parallelism: 1, Registry: reg, Speculation: &SpeculationConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	got := exec.cfg.Speculation
	if got.Multiplier != 1.5 || got.MinCompleted != 2 || got.Poll != time.Millisecond {
		t.Errorf("defaults = %+v", got)
	}
}

func TestSpeculativeContextCancel(t *testing.T) {
	// Cancelling mid-stage must return promptly with the context error,
	// not wait out the straggler.
	reg := newTestRegistry(t)
	exec := newSpecLocal(t, 2, reg, LocalConfig{
		Delay:       stallWorkerZero("map", 2*time.Second),
		Speculation: &SpeculationConfig{MinCompleted: 100}, // never speculate
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := exec.RunTasks(ctx, "map", "double", intParts([]int{1}, []int{2}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancel took %v; stage waited for the straggler", elapsed)
	}
}

func TestPanicContainment(t *testing.T) {
	reg := newTestRegistry(t)
	reg.MustRegister("panics-on-three", func(_ *TaskContext, in Partition) (Partition, error) {
		for _, item := range in {
			if item.(int) == 3 {
				panic("poison record")
			}
		}
		return in, nil
	})

	// Without retries: the panic becomes a task error carrying the stack,
	// flowing through the normal abort path — the executor survives.
	exec := newLocal(t, 2, reg)
	_, _, err := exec.RunTasks(context.Background(), "map", "panics-on-three", intParts([]int{1, 2}, []int{3}))
	var te *TaskError
	if !errors.As(err, &te) || te.TaskID != 1 {
		t.Fatalf("err = %v, want TaskError for task 1", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want wrapped PanicError", err)
	}
	if pe.Value != "poison record" || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Errorf("PanicError = value %v, stack %d bytes", pe.Value, len(pe.Stack))
	}
	// The executor is still usable after the panic.
	if _, _, err := exec.RunTasks(context.Background(), "map", "double", intParts([]int{1})); err != nil {
		t.Errorf("executor unusable after contained panic: %v", err)
	}

	// With speculation enabled the containment must hold too.
	specExec := newSpecLocal(t, 2, reg, LocalConfig{Speculation: &SpeculationConfig{}})
	_, _, err = specExec.RunTasks(context.Background(), "map", "panics-on-three", intParts([]int{3}, []int{1}))
	if !errors.As(err, &pe) {
		t.Fatalf("speculative path: err = %v, want wrapped PanicError", err)
	}
}

func TestPanicRetriedLikeAnyTaskFailure(t *testing.T) {
	// A panic on attempt 0 plus TaskRetries=1: the retry succeeds and the
	// stage completes, with the retry visible in the metrics.
	reg := NewRegistry()
	reg.MustRegister("panic-once", func(ctx *TaskContext, in Partition) (Partition, error) {
		if ctx.TaskID == 0 && ctx.Attempt == 0 {
			panic("transient poison")
		}
		return in, nil
	})
	exec, err := NewLocalExecutor(LocalConfig{Parallelism: 2, Registry: reg, TaskRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	out, metrics, err := exec.RunTasks(context.Background(), "map", "panic-once", intParts([]int{7}, []int{8}))
	if err != nil {
		t.Fatalf("retry did not recover the panic: %v", err)
	}
	if out[0][0] != 7 {
		t.Errorf("output = %v", out[0][0])
	}
	if metrics[0].Retries != 1 {
		t.Errorf("task 0 retries = %d, want 1", metrics[0].Retries)
	}
}
