package rpcexec

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"diststream/internal/mbsp"
	"diststream/internal/membership"
)

func TestPing(t *testing.T) {
	reg := testRegistry(t)
	workers, addrs, err := StartLocalCluster(1, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer workers[0].Close()

	ctx := context.Background()
	if err := Ping(ctx, addrs[0], time.Second); err != nil {
		t.Fatalf("ping live worker: %v", err)
	}
	_ = workers[0].Close()
	if err := Ping(ctx, addrs[0], 200*time.Millisecond); err == nil {
		t.Fatal("ping dead worker succeeded")
	}
}

// TestAllWorkersLostCauses asserts the satellite requirement: the
// cluster-death error names every worker address and its last transport
// failure, so operators can see why the cluster died.
func TestAllWorkersLostCauses(t *testing.T) {
	exec, workers := startClusterCfg(t, 2, Config{
		CallTimeout: 2 * time.Second,
		MaxRetries:  1,
		Backoff:     5 * time.Millisecond,
	})
	addrs := []string{workers[0].Addr(), workers[1].Addr()}
	for _, w := range workers {
		_ = w.Close()
	}

	_, _, err := exec.RunTasks(context.Background(), "s", "double", []mbsp.Partition{{1}, {2}})
	if !errors.Is(err, ErrAllWorkersLost) {
		t.Fatalf("err = %v, want ErrAllWorkersLost", err)
	}
	msg := err.Error()
	for _, addr := range addrs {
		if !strings.Contains(msg, addr) {
			t.Errorf("error %q missing worker address %s", msg, addr)
		}
	}
	// The per-worker causes must surface too (dial refusals here).
	if !strings.Contains(msg, "connect") && !strings.Contains(msg, "refused") {
		t.Errorf("error %q missing transport causes", msg)
	}
}

func newMemberRegistry(t *testing.T) *membership.Registry {
	t.Helper()
	reg, err := membership.New(membership.Config{
		ListenAddr:    "127.0.0.1:0",
		ProbeInterval: -1, // reconcile-driven tests; no background probes
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = reg.Close() })
	return reg
}

// TestReconcileAdmitsJoinerWithCatchUp is the tentpole's core mechanic
// at the executor level: a worker dies, a replacement announces itself,
// and reconciliation seats it in the vacant slot with the full broadcast
// environment replayed — observable because a task on the joiner reads a
// broadcast value published before it existed.
func TestReconcileAdmitsJoinerWithCatchUp(t *testing.T) {
	opReg := testRegistry(t)
	members := newMemberRegistry(t)
	exec, workers := startClusterCfg(t, 2, Config{
		CallTimeout: 2 * time.Second,
		MaxRetries:  1,
		Backoff:     5 * time.Millisecond,
		Membership:  members,
		JoinBarrier: 5 * time.Second,
	})
	ctx := context.Background()

	if !exec.Capabilities().ElasticMembership {
		t.Fatal("ElasticMembership capability not advertised")
	}
	if err := exec.Broadcast(ctx, "offset", 7); err != nil {
		t.Fatal(err)
	}

	// Kill worker 1 and let a call discover the loss.
	deadAddr := workers[1].Addr()
	_ = workers[1].Close()
	if _, _, err := exec.RunTasks(ctx, "s", "double", []mbsp.Partition{{1}, {2}}); err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if exec.AliveWorkers() != 1 {
		t.Fatalf("AliveWorkers = %d, want 1", exec.AliveWorkers())
	}

	// First reconcile: the departure is reported and synced to the
	// registry; no candidate yet, so no join.
	d1, err := exec.ReconcileMembership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Departed) != 1 || d1.Departed[0] != deadAddr {
		t.Fatalf("Departed = %v, want [%s]", d1.Departed, deadAddr)
	}
	if len(d1.Joined) != 0 {
		t.Fatalf("Joined = %v, want none", d1.Joined)
	}
	if st, _ := members.State(deadAddr); st != membership.StateDead {
		t.Fatalf("registry state = %v, want dead", st)
	}

	// A replacement process comes up on a fresh port and announces.
	repl, err := NewWorker(9, "127.0.0.1:0", opReg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = repl.Close() })
	if err := membership.Announce(ctx, members.Addr(), repl.Addr()); err != nil {
		t.Fatal(err)
	}

	d2, err := exec.ReconcileMembership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Joined) != 1 || d2.Joined[0] != repl.Addr() {
		t.Fatalf("Joined = %v, want [%s]", d2.Joined, repl.Addr())
	}
	if len(d2.Departed) != 0 {
		t.Fatalf("Departed reported twice: %v", d2.Departed)
	}
	if exec.AliveWorkers() != 2 {
		t.Fatalf("AliveWorkers after admit = %d, want 2", exec.AliveWorkers())
	}
	if exec.Parallelism() != 2 {
		t.Fatalf("Parallelism changed to %d", exec.Parallelism())
	}

	// Both slots must serve tasks, and the joiner must hold the broadcast
	// published before it existed (replayed during admission).
	outs, _, err := exec.RunTasks(ctx, "s", "add-broadcast", []mbsp.Partition{{10}, {20}})
	if err != nil {
		t.Fatalf("post-join run: %v", err)
	}
	if outs[0][0].(int) != 17 || outs[1][0].(int) != 27 {
		t.Fatalf("outputs = %v, want offset 7 applied on both slots", outs)
	}

	// Idempotence: nothing changed, nothing reported.
	d3, err := exec.ReconcileMembership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(d3.Joined)+len(d3.Departed) != 0 {
		t.Fatalf("steady-state reconcile reported %+v", d3)
	}
}

// TestReconcileGoodbyeDrain: a clean Goodbye retires the slot at the
// next boundary even though its connection is still healthy.
func TestReconcileGoodbyeDrain(t *testing.T) {
	members := newMemberRegistry(t)
	exec, workers := startClusterCfg(t, 2, Config{
		CallTimeout: 2 * time.Second,
		MaxRetries:  1,
		Backoff:     5 * time.Millisecond,
		Membership:  members,
	})
	ctx := context.Background()

	drained := workers[0].Addr()
	if err := membership.Goodbye(ctx, members.Addr(), drained); err != nil {
		t.Fatal(err)
	}
	d, err := exec.ReconcileMembership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Departed) != 1 || d.Departed[0] != drained {
		t.Fatalf("Departed = %v, want [%s]", d.Departed, drained)
	}
	if exec.AliveWorkers() != 1 {
		t.Fatalf("AliveWorkers = %d, want 1 after drain", exec.AliveWorkers())
	}
	// The survivor picks up all tasks.
	outs, _, err := exec.RunTasks(ctx, "s", "double", []mbsp.Partition{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0][0].(int) != 2 || outs[1][0].(int) != 4 {
		t.Fatalf("outputs = %v", outs)
	}
}

// TestReconcileJoinBarrierExpires: an announced candidate that is not
// dialable does not block the boundary forever; it stays a candidate.
func TestReconcileJoinBarrierExpires(t *testing.T) {
	members := newMemberRegistry(t)
	exec, workers := startClusterCfg(t, 2, Config{
		CallTimeout: 2 * time.Second,
		MaxRetries:  1,
		Backoff:     5 * time.Millisecond,
		DialTimeout: 200 * time.Millisecond,
		Membership:  members,
		JoinBarrier: 300 * time.Millisecond,
	})
	ctx := context.Background()

	_ = workers[0].Close()
	_, _, _ = exec.RunTasks(ctx, "s", "double", []mbsp.Partition{{1}, {2}})

	// Announce an address nobody listens on.
	if err := membership.Announce(ctx, members.Addr(), "127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	d, err := exec.ReconcileMembership(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Joined) != 0 {
		t.Fatalf("Joined = %v, want none", d.Joined)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("reconcile took %v, join barrier did not bound it", elapsed)
	}
	if st, _ := members.State("127.0.0.1:1"); st != membership.StateJoining {
		t.Fatalf("unreachable candidate state = %v, want still joining", st)
	}
}
