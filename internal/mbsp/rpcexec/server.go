package rpcexec

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"diststream/internal/mbsp"
	"diststream/internal/wire"
)

var registerOnce sync.Once

// Fault is an injected worker failure mode, used to exercise the driver's
// fault-tolerance paths in-process (tests and demos).
type Fault int

// Fault kinds.
const (
	// FaultNone runs the task normally.
	FaultNone Fault = iota
	// FaultStall sleeps for the returned duration before serving the task
	// (a network or GC stall: the driver's call deadline fires).
	FaultStall
	// FaultDrop closes the serving connection without responding (a
	// transient connection failure: the worker process survives, so the
	// driver's reconnect succeeds and cached broadcasts are replayed).
	FaultDrop
	// FaultCrash kills the whole worker — listener and all connections —
	// without responding (a process death: reconnects fail and the driver
	// re-dispatches onto the survivors).
	FaultCrash
)

// FaultFunc decides the fault for one task request. It runs on the worker
// before the task body.
type FaultFunc func(stage string, taskID int) (Fault, time.Duration)

// Worker is one remote executor node: it serves task and broadcast
// requests from a driver over TCP. Each accepted connection is served by
// its own goroutine; broadcast state is shared across connections.
type Worker struct {
	id       int
	registry *mbsp.Registry
	ln       net.Listener

	broadcasts *workerStore

	mu             sync.Mutex
	closed         bool
	fault          FaultFunc
	broadcastDelay time.Duration
	conns          map[net.Conn]struct{}
	wg             sync.WaitGroup
}

// workerStore adapts the broadcast map to the mbsp broadcast interface.
type workerStore struct {
	mu sync.RWMutex
	m  map[string]mbsp.Item
}

var _ mbsp.BroadcastStore = (*workerStore)(nil)

// Get implements mbsp.BroadcastStore.
func (s *workerStore) Get(id string) (mbsp.Item, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[id]
	return v, ok
}

func (s *workerStore) put(id string, v mbsp.Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[id] = v
}

// NewWorker starts a worker listening on addr (use "127.0.0.1:0" for an
// ephemeral port). The returned worker serves until Close.
func NewWorker(id int, addr string, registry *mbsp.Registry) (*Worker, error) {
	if registry == nil {
		return nil, errors.New("rpcexec: registry is required")
	}
	registerOnce.Do(registerBuiltins)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpcexec: listen %s: %w", addr, err)
	}
	w := &Worker{
		id:         id,
		registry:   registry,
		ln:         ln,
		broadcasts: &workerStore{m: make(map[string]mbsp.Item)},
		conns:      make(map[net.Conn]struct{}),
	}
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// SetFault installs (or, with nil, removes) a fault-injection hook
// consulted before every task. Test-only machinery: it lets worker-crash
// and network-stall scenarios run in-process, deterministically.
func (w *Worker) SetFault(f FaultFunc) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fault = f
}

func (w *Worker) currentFault() FaultFunc {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fault
}

// SetBroadcastDelay makes the worker sleep before serving each broadcast
// request. Test-only machinery: it makes the driver's parallel broadcast
// fan-out observable (n workers × d delay must complete in ~d, not n×d).
func (w *Worker) SetBroadcastDelay(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.broadcastDelay = d
}

func (w *Worker) currentBroadcastDelay() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.broadcastDelay
}

// Close stops the worker — listener and every open connection, like a
// process death — and waits for connection goroutines to exit.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	err := w.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	w.wg.Wait()
	return err
}

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			_ = conn.Close()
			return
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			defer func() {
				_ = conn.Close()
				w.mu.Lock()
				delete(w.conns, conn)
				w.mu.Unlock()
			}()
			w.serve(conn)
		}()
	}
}

// serve handles one driver connection in request/response lockstep.
func (w *Worker) serve(conn net.Conn) {
	c := newFrameCodec(conn)
	defer c.release()
	for {
		var req request
		if err := c.recv(&req); err != nil {
			return // EOF or broken connection: driver went away
		}
		switch req.Kind {
		case kindBroadcast:
			if d := w.currentBroadcastDelay(); d > 0 {
				time.Sleep(d)
			}
			if err := c.send(w.applyBroadcast(req)); err != nil {
				return
			}
		case kindTask:
			if f := w.currentFault(); f != nil {
				switch kind, d := f(req.Stage, req.TaskID); kind {
				case FaultStall:
					time.Sleep(d)
				case FaultDrop:
					return // drop just this connection; worker survives
				case FaultCrash:
					// Close runs elsewhere: it waits for this very
					// goroutine, which exits right away.
					go func() { _ = w.Close() }()
					return
				}
			}
			resp := w.runTask(req)
			if err := c.send(resp); err != nil {
				return
			}
		case kindPing:
			if err := c.send(response{TaskID: -1}); err != nil {
				return
			}
		case kindShutdown:
			_ = c.send(response{})
			return
		default:
			_ = c.send(response{Err: fmt.Sprintf("rpcexec: unknown request kind %d", req.Kind)})
		}
	}
}

// applyBroadcast installs one broadcast value, decoding the columnar
// payload and applying deltas onto the worker's current value. Failures
// come back as response errors on a healthy connection: the driver
// reacts to a rejected delta by resending the full value.
func (w *Worker) applyBroadcast(req request) response {
	value := req.BroadcastValue
	if len(req.BroadcastCols) > 0 {
		v, err := wire.DecodeValue(req.BroadcastCols)
		if err != nil {
			return response{Err: err.Error()}
		}
		value = v
	}
	if req.BroadcastDelta {
		delta, ok := value.(mbsp.BroadcastDelta)
		if !ok {
			return response{Err: fmt.Sprintf("rpcexec: broadcast delta for %q is %T, which cannot apply", req.BroadcastID, value)}
		}
		base, ok := w.broadcasts.Get(req.BroadcastID)
		if !ok {
			return response{Err: fmt.Sprintf("rpcexec: broadcast delta for %q without a base value", req.BroadcastID)}
		}
		applied, err := delta.ApplyDelta(base)
		if err != nil {
			return response{Err: err.Error()}
		}
		value = applied
	}
	w.broadcasts.put(req.BroadcastID, value)
	return response{}
}

func (w *Worker) runTask(req request) response {
	fn, err := w.registry.Lookup(req.Op)
	if err != nil {
		return response{TaskID: req.TaskID, Err: err.Error()}
	}
	input := req.Input
	if len(req.InputCols) > 0 {
		p, err := wire.DecodePartition(req.InputCols)
		if err != nil {
			return response{TaskID: req.TaskID, Err: err.Error()}
		}
		input = p
	}
	ctx := mbsp.NewTaskContext(req.Stage, req.TaskID, w.id, w.broadcasts)
	start := time.Now()
	// SafeCall contains panics: a poisonous record fails this one task
	// (the error string, stack included, travels back to the driver's
	// retry/abort machinery) instead of killing the worker process.
	out, err := mbsp.SafeCall(fn, ctx, input)
	dur := time.Since(start)
	if err != nil {
		return response{TaskID: req.TaskID, Err: err.Error(), DurMicro: dur.Microseconds()}
	}
	resp := response{TaskID: req.TaskID, DurMicro: dur.Microseconds()}
	if cols, ok := wire.EncodePartition(out); ok {
		resp.OutputCols = cols
	} else {
		resp.Output = out
	}
	return resp
}
