package rpcexec

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"diststream/internal/mbsp"
)

var registerOnce sync.Once

// Worker is one remote executor node: it serves task and broadcast
// requests from a driver over TCP. Each accepted connection is served by
// its own goroutine; broadcast state is shared across connections.
type Worker struct {
	id       int
	registry *mbsp.Registry
	ln       net.Listener

	broadcasts *workerStore

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// workerStore adapts the broadcast map to the mbsp broadcast interface.
type workerStore struct {
	mu sync.RWMutex
	m  map[string]mbsp.Item
}

var _ mbsp.BroadcastStore = (*workerStore)(nil)

// Get implements mbsp.BroadcastStore.
func (s *workerStore) Get(id string) (mbsp.Item, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[id]
	return v, ok
}

func (s *workerStore) put(id string, v mbsp.Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[id] = v
}

// NewWorker starts a worker listening on addr (use "127.0.0.1:0" for an
// ephemeral port). The returned worker serves until Close.
func NewWorker(id int, addr string, registry *mbsp.Registry) (*Worker, error) {
	if registry == nil {
		return nil, errors.New("rpcexec: registry is required")
	}
	registerOnce.Do(registerBuiltins)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpcexec: listen %s: %w", addr, err)
	}
	w := &Worker{
		id:         id,
		registry:   registry,
		ln:         ln,
		broadcasts: &workerStore{m: make(map[string]mbsp.Item)},
	}
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Close stops the worker and waits for connection goroutines to exit.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	err := w.ln.Close()
	w.wg.Wait()
	return err
}

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			defer conn.Close()
			w.serve(conn)
		}()
	}
}

// serve handles one driver connection in request/response lockstep.
func (w *Worker) serve(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken connection: driver went away
		}
		switch req.Kind {
		case kindBroadcast:
			w.broadcasts.put(req.BroadcastID, req.BroadcastValue)
			if err := enc.Encode(response{}); err != nil {
				return
			}
		case kindTask:
			resp := w.runTask(req)
			if err := enc.Encode(resp); err != nil {
				return
			}
		case kindShutdown:
			_ = enc.Encode(response{})
			return
		default:
			_ = enc.Encode(response{Err: fmt.Sprintf("rpcexec: unknown request kind %d", req.Kind)})
		}
	}
}

func (w *Worker) runTask(req request) response {
	fn, err := w.registry.Lookup(req.Op)
	if err != nil {
		return response{TaskID: req.TaskID, Err: err.Error()}
	}
	ctx := mbsp.NewTaskContext(req.Stage, req.TaskID, w.id, w.broadcasts)
	start := time.Now()
	out, err := fn(ctx, req.Input)
	dur := time.Since(start)
	if err != nil {
		return response{TaskID: req.TaskID, Err: err.Error(), DurMicro: dur.Microseconds()}
	}
	return response{TaskID: req.TaskID, Output: out, DurMicro: dur.Microseconds()}
}
