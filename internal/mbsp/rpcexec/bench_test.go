package rpcexec

import (
	"context"
	"testing"

	"diststream/internal/mbsp"
	"diststream/internal/stream"
	"diststream/internal/vclock"
)

// BenchmarkRPCRoundTrip measures one task dispatch over the TCP executor:
// gob-encode the request (a partition of records), ship it to a local
// worker, run an echo op, and decode the response.
func BenchmarkRPCRoundTrip(b *testing.B) {
	reg := mbsp.NewRegistry()
	reg.MustRegister("echo", func(_ *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		return in, nil
	})
	workers, addrs, err := StartLocalCluster(1, reg)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, w := range workers {
			_ = w.Close()
		}
	}()
	exec, err := Dial(addrs)
	if err != nil {
		b.Fatal(err)
	}
	defer exec.Close()

	const records = 256
	part := make(mbsp.Partition, records)
	for i := range part {
		values := make([]float64, 34)
		for d := range values {
			values[d] = float64(i*31+d) / 7
		}
		part[i] = stream.Record{Seq: uint64(i), Timestamp: vclock.Time(i), Values: values}
	}
	inputs := []mbsp.Partition{part}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := exec.RunTasks(ctx, "bench", "echo", inputs)
		if err != nil {
			b.Fatal(err)
		}
		if len(out[0]) != records {
			b.Fatalf("echoed %d records", len(out[0]))
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
}
