package rpcexec

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"diststream/internal/mbsp"
)

// specCfg keeps the per-call deadline well above the injected stalls so
// speculation — not the timeout/retry machinery — is what resolves the
// straggler.
func specCfg() Config {
	return Config{
		CallTimeout: 10 * time.Second,
		Speculation: &mbsp.SpeculationConfig{Multiplier: 1.5, MinCompleted: 2, Poll: time.Millisecond},
	}
}

// stallWorker makes one worker stall every task of a stage — a slow node,
// not a dead one: the process keeps running and eventually answers.
func stallWorker(w *Worker, stage string, d time.Duration) {
	w.SetFault(func(s string, _ int) (Fault, time.Duration) {
		if s == stage {
			return FaultStall, d
		}
		return FaultNone, 0
	})
}

func TestTCPSpeculationBackupWinsAndImprovesWallTime(t *testing.T) {
	const stall = 600 * time.Millisecond
	exec, workers := startClusterCfg(t, 4, specCfg())
	stallWorker(workers[0], "map", stall)

	inputs := intParts([]int{1, 2}, []int{3}, []int{4}, []int{5})
	start := time.Now()
	out, metrics, err := exec.RunTasks(context.Background(), "map", "double", inputs)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if wall >= stall/2 {
		t.Errorf("wall %v did not improve on the %v stall", wall, stall)
	}

	want := [][]int{{2, 4}, {6}, {8}, {10}}
	for i := range want {
		if len(out[i]) != len(want[i]) {
			t.Fatalf("partition %d = %v", i, out[i])
		}
		for j := range want[i] {
			if out[i][j].(int) != want[i][j] {
				t.Errorf("partition %d item %d = %v, want %d", i, j, out[i][j], want[i][j])
			}
		}
	}

	sm := mbsp.StageMetrics{Stage: "map", Tasks: metrics}
	if sm.SpeculativeLaunches() < 1 || sm.SpeculativeWins() < 1 {
		t.Errorf("launches=%d wins=%d, want both >= 1", sm.SpeculativeLaunches(), sm.SpeculativeWins())
	}
	if !metrics[0].Speculative || !metrics[0].SpeculativeWin {
		t.Errorf("task 0 metrics = %+v, want speculative win", metrics[0])
	}
	if metrics[0].WorkerID == 0 {
		t.Errorf("winning copy ran on the stalled worker %d", metrics[0].WorkerID)
	}

	// Cancelling the straggling primary's call must not have marked the
	// slow worker dead: after the stall it is just as alive as the rest,
	// and the next stage can use it (over a redialed connection).
	if n := exec.AliveWorkers(); n != 4 {
		t.Fatalf("AliveWorkers = %d after speculation, want 4", n)
	}
	workers[0].SetFault(nil)
	out, _, err = exec.RunTasks(context.Background(), "map2", "double", intParts([]int{7}, []int{8}, []int{9}, []int{10}))
	if err != nil {
		t.Fatalf("stage after speculation failed: %v", err)
	}
	if out[0][0].(int) != 14 {
		t.Errorf("redialed worker output = %v, want 14", out[0][0])
	}
}

func TestTCPSpeculationBackupCoversSickWorker(t *testing.T) {
	// Worker 0 is a sick node: it stalls and its copy of any task fails.
	// Task 0's primary is doomed; the backup on a healthy worker must win
	// and the stage must succeed with the backup's result.
	exec, workers := startClusterCfg(t, 4, specCfg())
	stallWorker(workers[0], "map", 300*time.Millisecond)

	out, metrics, err := exec.RunTasks(context.Background(), "map", "fail-on-worker-zero",
		intParts([]int{1}, []int{2}, []int{3}, []int{4}))
	if err != nil {
		t.Fatalf("stage failed despite a healthy backup: %v", err)
	}
	if out[0][0].(int) != 1 {
		t.Errorf("task 0 output = %v, want 1", out[0][0])
	}
	if !metrics[0].Speculative || !metrics[0].SpeculativeWin || metrics[0].WorkerID == 0 {
		t.Errorf("task 0 metrics = %+v, want a backup win on a healthy worker", metrics[0])
	}
}

func TestTCPSpeculationAppErrorStillAborts(t *testing.T) {
	// A deterministic op failure with speculation enabled must still abort
	// the stage (re-running a pure op elsewhere cannot help) — speculation
	// must not swallow real errors.
	exec, _ := startClusterCfg(t, 2, specCfg())
	_, _, err := exec.RunTasks(context.Background(), "map", "fail", intParts([]int{1}, []int{2}))
	var te *mbsp.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TaskError", err)
	}
	if !strings.Contains(te.Error(), "kaput") {
		t.Errorf("err = %v, want the op's failure message", te)
	}
}

func TestTCPWorkerPanicContainment(t *testing.T) {
	// A panic inside an op on a remote worker fails that one task — the
	// stack travels back in the error — and the worker process survives to
	// serve the next stage.
	exec, _ := startCluster(t, 2)
	_, _, err := exec.RunTasks(context.Background(), "map", "panic-on-three", intParts([]int{1, 2}, []int{3}))
	var te *mbsp.TaskError
	if !errors.As(err, &te) || te.TaskID != 1 {
		t.Fatalf("err = %v, want TaskError for task 1", err)
	}
	if !strings.Contains(err.Error(), "poison record") || !strings.Contains(err.Error(), "goroutine") {
		t.Errorf("err = %v, want panic value and stack", err)
	}
	out, _, err := exec.RunTasks(context.Background(), "map", "double", intParts([]int{21}))
	if err != nil {
		t.Fatalf("worker unusable after contained panic: %v", err)
	}
	if out[0][0].(int) != 42 {
		t.Errorf("output = %v, want 42", out[0][0])
	}
}
