package rpcexec

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diststream/internal/mbsp"
)

// runsCounter counts executions of the "counting-read" op across all
// in-process workers, letting tests prove how many times a fused task
// actually ran (committed or discarded).
var runsCounter atomic.Int64

// startDispatchCluster is startClusterCfg plus an op that reads the
// "counter" broadcast and counts its own executions.
func startDispatchCluster(t *testing.T, n int, cfg Config) (*Executor, []*Worker) {
	t.Helper()
	reg := testRegistry(t)
	reg.MustRegister("counting-read", func(ctx *mbsp.TaskContext, _ mbsp.Partition) (mbsp.Partition, error) {
		runsCounter.Add(1)
		bv, err := ctx.Broadcast("counter")
		if err != nil {
			return nil, err
		}
		return mbsp.Partition{bv.(testCounter).N}, nil
	})
	workers, addrs, err := StartLocalCluster(n, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, w := range workers {
			_ = w.Close()
		}
	})
	exec, err := DialConfig(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = exec.Close() })
	return exec, workers
}

// onTaskDoneRecorder collects streamed completions; OnTaskDone may fire
// concurrently from the per-worker dispatch goroutines.
type onTaskDoneRecorder struct {
	mu   sync.Mutex
	outs map[int]mbsp.Partition
}

func (r *onTaskDoneRecorder) hook(task int, out mbsp.Partition) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.outs == nil {
		r.outs = make(map[int]mbsp.Partition)
	}
	if _, dup := r.outs[task]; dup {
		r.outs[task] = nil // duplicate delivery: force the check below to fail
		return
	}
	r.outs[task] = out
}

// TestDispatchStageFused covers the happy path of the fused framing: the
// broadcast and every task land in one round, outputs match the barrier
// semantics, and completions stream to OnTaskDone exactly once each.
func TestDispatchStageFused(t *testing.T) {
	exec, _ := startCluster(t, 2)
	if caps := exec.Capabilities(); !caps.AsyncDispatch {
		t.Fatal("TCP executor must advertise AsyncDispatch")
	}
	rec := &onTaskDoneRecorder{}
	outputs, metrics, err := exec.DispatchStage(context.Background(), mbsp.StageSpec{
		Stage:          "assign",
		Op:             "add-broadcast",
		Inputs:         intParts([]int{1, 2}, []int{3}, []int{4, 5}, nil),
		BroadcastID:    "offset",
		BroadcastValue: 100,
		OnTaskDone:     rec.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{101, 102}, {103}, {104, 105}, {}}
	if len(outputs) != len(want) {
		t.Fatalf("outputs = %d partitions, want %d", len(outputs), len(want))
	}
	for task, w := range want {
		if len(outputs[task]) != len(w) {
			t.Fatalf("task %d output %v, want %v", task, outputs[task], w)
		}
		for j, v := range w {
			if outputs[task][j].(int) != v {
				t.Fatalf("task %d item %d = %v, want %d", task, j, outputs[task][j], v)
			}
		}
		streamed, ok := rec.outs[task]
		if !ok || len(streamed) != len(w) {
			t.Fatalf("task %d: OnTaskDone got %v (present %v), want %v", task, streamed, ok, w)
		}
	}
	if len(metrics) != 4 {
		t.Fatalf("metrics = %d entries, want 4", len(metrics))
	}
	for task, m := range metrics {
		if m.TaskID != task || m.Stage != "assign" || m.Retries != 0 {
			t.Errorf("metrics[%d] = %+v", task, m)
		}
	}
	// The fused frames count as one full broadcast delivery per worker.
	bm := exec.BroadcastStats()
	if bm.Fulls != 2 || bm.Deltas != 0 {
		t.Errorf("broadcast metrics = %+v, want 2 fulls", bm)
	}
}

// TestDispatchStageDeltaRejectDiscard pins the discard rule: when a
// worker rejects the fused delta broadcast, the task that rode with it
// executed against the stale model, so the driver must throw that
// response away, deliver the full value, and re-run the task. The op's
// execution counter proves the discarded run happened; the output proves
// only the post-fallback run was committed.
func TestDispatchStageDeltaRejectDiscard(t *testing.T) {
	exec, _ := startDispatchCluster(t, 1, Config{DeltaBroadcast: true})
	ctx := context.Background()

	// Version 1: full value, fused with a task.
	out, _, err := exec.DispatchStage(ctx, mbsp.StageSpec{
		Stage: "s1", Op: "counting-read", Inputs: intParts([]int{0}),
		BroadcastID: "counter", BroadcastValue: testCounter{N: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0].(int) != 1 {
		t.Fatalf("seed read = %v, want 1", out[0][0])
	}

	// Version 2: the delta refuses to apply. The fused task runs against
	// N=1, gets discarded, and re-runs after the full N=10 lands.
	runsCounter.Store(0)
	out, metrics, err := exec.DispatchStage(ctx, mbsp.StageSpec{
		Stage: "s2", Op: "counting-read", Inputs: intParts([]int{0}),
		BroadcastID:    "counter",
		BroadcastValue: testCounter{N: 10},
		BroadcastDelta: testIncr{By: 2, Fail: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := out[0][0].(int); got != 10 {
		t.Fatalf("post-reject read = %d, want the full value 10", got)
	}
	if runs := runsCounter.Load(); runs != 2 {
		t.Fatalf("task ran %d times, want 2 (one discarded, one committed)", runs)
	}
	if metrics[0].Retries != 1 {
		t.Errorf("metrics retries = %d, want 1 for the discarded run", metrics[0].Retries)
	}
	bm := exec.BroadcastStats()
	if bm.Deltas != 0 {
		t.Errorf("broadcast metrics = %+v, want no delta deliveries after reject", bm)
	}
}

// TestDispatchStageDeltaApplied is the counterpart: an applicable fused
// delta is delivered as a delta and the task commits on the first try.
func TestDispatchStageDeltaApplied(t *testing.T) {
	exec, _ := startDispatchCluster(t, 1, Config{DeltaBroadcast: true})
	ctx := context.Background()
	if _, _, err := exec.DispatchStage(ctx, mbsp.StageSpec{
		Stage: "s1", Op: "counting-read", Inputs: intParts([]int{0}),
		BroadcastID: "counter", BroadcastValue: testCounter{N: 1},
	}); err != nil {
		t.Fatal(err)
	}
	runsCounter.Store(0)
	out, _, err := exec.DispatchStage(ctx, mbsp.StageSpec{
		Stage: "s2", Op: "counting-read", Inputs: intParts([]int{0}),
		BroadcastID:    "counter",
		BroadcastValue: testCounter{N: 3},
		BroadcastDelta: testIncr{By: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := out[0][0].(int); got != 3 {
		t.Fatalf("delta read = %d, want 3", got)
	}
	if runs := runsCounter.Load(); runs != 1 {
		t.Fatalf("task ran %d times, want 1", runs)
	}
	if bm := exec.BroadcastStats(); bm.Deltas != 1 {
		t.Errorf("broadcast metrics = %+v, want 1 delta delivery", bm)
	}
}

// TestDispatchStageWorkerLossMidRound kills a worker on its first fused
// task: the stranded tasks must re-dispatch onto the survivor and the
// stage must still return every output.
func TestDispatchStageWorkerLossMidRound(t *testing.T) {
	exec, workers := startClusterCfg(t, 2, faultCfg())
	workers[1].SetFault(func(stage string, task int) (Fault, time.Duration) {
		return FaultCrash, 0
	})
	rec := &onTaskDoneRecorder{}
	outputs, _, err := exec.DispatchStage(context.Background(), mbsp.StageSpec{
		Stage:          "assign",
		Op:             "add-broadcast",
		Inputs:         intParts([]int{1}, []int{2}, []int{3}, []int{4}),
		BroadcastID:    "offset",
		BroadcastValue: 10,
		OnTaskDone:     rec.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	for task, wantV := range []int{11, 12, 13, 14} {
		if len(outputs[task]) != 1 || outputs[task][0].(int) != wantV {
			t.Fatalf("task %d output %v, want [%d]", task, outputs[task], wantV)
		}
		if streamed := rec.outs[task]; len(streamed) != 1 || streamed[0].(int) != wantV {
			t.Fatalf("task %d OnTaskDone %v, want [%d]", task, streamed, wantV)
		}
	}
	if alive := exec.AliveWorkers(); alive != 1 {
		t.Errorf("alive workers = %d, want 1 after the crash", alive)
	}
}

// TestDispatchStageSpeculationBarrier: under speculation the stage
// degrades to the broadcast-then-barrier path, and OnTaskDone completions
// are replayed after the barrier.
func TestDispatchStageSpeculationBarrier(t *testing.T) {
	exec, _ := startClusterCfg(t, 2, Config{
		Speculation: &mbsp.SpeculationConfig{Multiplier: 1.5, MinCompleted: 2, Poll: time.Millisecond},
	})
	rec := &onTaskDoneRecorder{}
	outputs, _, err := exec.DispatchStage(context.Background(), mbsp.StageSpec{
		Stage:          "assign",
		Op:             "add-broadcast",
		Inputs:         intParts([]int{1}, []int{2}),
		BroadcastID:    "offset",
		BroadcastValue: 5,
		OnTaskDone:     rec.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	for task, wantV := range []int{6, 7} {
		if len(outputs[task]) != 1 || outputs[task][0].(int) != wantV {
			t.Fatalf("task %d output %v, want [%d]", task, outputs[task], wantV)
		}
		if streamed := rec.outs[task]; len(streamed) != 1 || streamed[0].(int) != wantV {
			t.Fatalf("task %d OnTaskDone %v, want [%d]", task, streamed, wantV)
		}
	}
}
