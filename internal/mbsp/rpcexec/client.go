package rpcexec

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"diststream/internal/backoff"
	"diststream/internal/mbsp"
	"diststream/internal/membership"
	"diststream/internal/wire"
)

// Default fault-tolerance parameters, used by Dial and wherever a Config
// field is left zero.
const (
	// DefaultDialTimeout bounds one TCP connection attempt to a worker.
	DefaultDialTimeout = 5 * time.Second
	// DefaultCallTimeout bounds one request/response round trip. A worker
	// that stalls past it is treated as failed for that attempt.
	DefaultCallTimeout = 30 * time.Second
	// DefaultMaxRetries is how many extra attempts (with reconnect) a
	// single call gets before its worker is declared lost.
	DefaultMaxRetries = 2
	// DefaultBackoff is the sleep before the first retry; it doubles on
	// each subsequent one.
	DefaultBackoff = 50 * time.Millisecond
	// DefaultJoinBarrier bounds how long one batch boundary spends
	// catching up join candidates before dispatch proceeds without them.
	DefaultJoinBarrier = 2 * time.Second
)

// Config tunes the TCP executor's fault tolerance. The zero value of any
// field selects its default; CallTimeout can be set negative to disable
// the per-call deadline entirely (useful under a debugger).
type Config struct {
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
	// CallTimeout bounds each request/response round trip; on expiry the
	// connection is torn down and the call retried. Default 30s; negative
	// disables.
	CallTimeout time.Duration
	// MaxRetries is the number of extra attempts per call, each preceded
	// by a reconnect, before the worker is declared lost and its tasks
	// re-dispatched. Default 2.
	MaxRetries int
	// Backoff is the sleep before the first retry, doubling each attempt.
	// Default 50ms.
	Backoff time.Duration
	// Speculation, when set, enables speculative re-execution of
	// straggling tasks: workers that drain their queue run backup copies
	// of tasks exceeding the configured multiple of the stage's median
	// duration, the first result wins, and the loser's in-flight call is
	// cancelled so the stage barrier does not wait out the straggler.
	Speculation *mbsp.SpeculationConfig
	// DeltaBroadcast enables delta model broadcast: workers known to hold
	// the previous version of a broadcast value receive only the diff the
	// caller provides alongside the full value. Any doubt about what a
	// worker holds — reconnect, version gap, failed or rejected apply —
	// silently falls back to the full snapshot, so the worker-visible
	// value is always identical to the delta-off configuration.
	DeltaBroadcast bool
	// Membership, when set, makes the worker set elastic: the executor
	// feeds detected losses into the registry, installs its health probe,
	// and — via ReconcileMembership, called by the driver between batches
	// — retires departed workers and admits announced joiners into the
	// vacant stride slots. The slot count stays fixed at the initial
	// address count, so partitioning (and output) is unchanged by churn.
	Membership *membership.Registry
	// JoinBarrier bounds how long one reconciliation spends dialing and
	// catching up join candidates before giving up until the next batch
	// boundary. Default 2s.
	JoinBarrier time.Duration
}

func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = DefaultCallTimeout
	}
	if c.CallTimeout < 0 {
		c.CallTimeout = 0
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.Backoff == 0 {
		c.Backoff = DefaultBackoff
	}
	if c.JoinBarrier <= 0 {
		c.JoinBarrier = DefaultJoinBarrier
	}
	return c
}

// retryPolicy is the jittered exponential schedule behind call retries,
// derived from the configured base backoff.
func (c Config) retryPolicy() backoff.Policy {
	return backoff.Policy{Base: c.Backoff}
}

// Fault-tolerance errors.
var (
	// ErrWorkerLost marks a worker that failed a call even after retries
	// and reconnects. Its pending tasks are re-dispatched onto survivors.
	ErrWorkerLost = errors.New("rpcexec: worker lost")
	// ErrAllWorkersLost is returned when no worker survives to run the
	// remaining tasks.
	ErrAllWorkersLost = errors.New("rpcexec: all workers lost")
)

// Executor is the driver-side TCP executor: it holds one connection per
// remote worker and implements mbsp.Executor. Task i of a stage initially
// runs on worker i % p; requests on one connection are serialized (each
// paper worker owns one physical core, so per-worker serialization is
// faithful), while different workers run concurrently.
//
// Unlike Spark, which leans on the cluster manager, fault tolerance is
// built in: calls carry deadlines, failed connections are redialed with
// exponential backoff (replaying broadcast state onto the fresh
// connection), and when a worker is lost for good its tasks are
// re-dispatched onto the survivors in task-index order, preserving the
// order-aware guarantee. The run degrades gracefully until no worker is
// left.
type Executor struct {
	cfg   Config
	conns []*workerConn

	mu     sync.Mutex
	closed bool

	// Membership bookkeeping, touched only from ReconcileMembership
	// (driver goroutine, between batches). counted marks addresses whose
	// departure has already been reported in a MembershipDelta; the
	// retired counters carry the traffic of replaced connections so
	// NetworkBytes stays cumulative.
	counted      map[string]bool
	retiredSent  atomic.Int64
	retiredRecvd atomic.Int64

	// bmu guards the driver-side broadcast cache replayed on reconnect.
	bmu    sync.Mutex
	border []string
	bcast  map[string]bcastEntry

	// Broadcast-path counters (see BroadcastStats).
	bFulls  atomic.Int64
	bDeltas atomic.Int64
	bBytes  atomic.Int64
}

var _ mbsp.Executor = (*Executor)(nil)
var _ mbsp.DeltaBroadcaster = (*Executor)(nil)

// bcastEntry is one cached broadcast: the latest full value and its
// driver-side version (1 on first publication, +1 per republication).
type bcastEntry struct {
	value   mbsp.Item
	version uint64
}

// workerConn is one driver→worker connection with lockstep framing and
// automatic reconnection.
type workerConn struct {
	addr   string
	cfg    Config
	retry  backoff.Policy
	replay func(c *frameCodec) (map[string]uint64, error)

	// sent and recvd count bytes through the live connection (see
	// countingConn); they accumulate across redials.
	sent  atomic.Int64
	recvd atomic.Int64

	mu    sync.Mutex
	conn  net.Conn
	codec *frameCodec
	dead  bool
	// lastErr is the transport failure that killed this connection, kept
	// so cluster-death errors can name each worker's cause.
	lastErr error
	// acked maps broadcast id → the version this worker is known to hold,
	// the ground truth for whether a delta may be shipped. Entries are
	// written on acknowledged broadcasts and replays, and deleted whenever
	// a broadcast outcome is unknown.
	acked map[string]uint64
}

// alive reports whether the worker has not been declared lost.
func (w *workerConn) alive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.dead
}

// lastError returns the transport failure recorded when the worker was
// declared lost (nil while alive or after a clean retire).
func (w *workerConn) lastError() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastErr
}

// retire marks the worker dead without an error — a clean drain — and
// closes its connection.
func (w *workerConn) retire() {
	w.mu.Lock()
	w.dead = true
	w.teardown()
	w.mu.Unlock()
}

// teardown closes and forgets the current connection (the gob stream is
// unusable after any transport error).
func (w *workerConn) teardown() {
	if w.conn != nil {
		_ = w.conn.Close()
	}
	if w.codec != nil {
		w.codec.release()
	}
	w.conn, w.codec = nil, nil
}

// redial establishes a fresh connection and replays cached broadcast
// state so the worker (whose process may have kept running across a
// transient network failure) sees a complete environment. The replay runs
// under the per-call deadline: a worker that accepts the connection but
// never answers (e.g. a stopped process whose kernel still completes the
// TCP handshake) must not hang the reconnect.
func (w *workerConn) redial(ctx context.Context) error {
	d := net.Dialer{Timeout: w.cfg.DialTimeout}
	raw, err := d.DialContext(ctx, "tcp", w.addr)
	if err != nil {
		return fmt.Errorf("rpcexec: dial %s: %w", w.addr, err)
	}
	conn := &countingConn{Conn: raw, sent: &w.sent, recvd: &w.recvd}
	w.conn = conn
	w.codec = newFrameCodec(conn)
	// A fresh connection may front a worker process that lost its
	// broadcast state (or never had it): until the replay acknowledges,
	// nothing is known to be held.
	w.acked = make(map[string]uint64)
	if w.replay != nil {
		_ = conn.SetDeadline(w.callDeadline(ctx))
		stop := context.AfterFunc(ctx, func() {
			_ = conn.SetDeadline(time.Unix(1, 0))
		})
		vers, err := w.replay(w.codec)
		stop()
		if err != nil {
			w.teardown()
			return fmt.Errorf("rpcexec: replay broadcasts to %s: %w", w.addr, err)
		}
		_ = conn.SetDeadline(time.Time{})
		for id, v := range vers {
			w.acked[id] = v
		}
	}
	return nil
}

// callDeadline computes the connection deadline for one round trip: the
// per-call timeout, capped by the context deadline plus a grace period so
// the context timer fires first and failures report ctx.Err.
func (w *workerConn) callDeadline(ctx context.Context) time.Time {
	deadline := time.Time{}
	if w.cfg.CallTimeout > 0 {
		deadline = time.Now().Add(w.cfg.CallTimeout)
	}
	if d, ok := ctx.Deadline(); ok {
		if d = d.Add(100 * time.Millisecond); deadline.IsZero() || d.Before(deadline) {
			deadline = d
		}
	}
	return deadline
}

// callOnce performs one round trip on the current connection under the
// per-call deadline. Context cancellation interrupts the call in flight
// by expiring the connection deadline.
func (w *workerConn) callOnce(ctx context.Context, req request) (response, error) {
	conn := w.conn
	_ = conn.SetDeadline(w.callDeadline(ctx))
	// SetDeadline is safe to call concurrently with I/O in flight, so a
	// context cancellation can interrupt a blocked Encode/Decode.
	stop := context.AfterFunc(ctx, func() {
		_ = conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()
	if err := w.codec.send(req); err != nil {
		return response{}, fmt.Errorf("rpcexec: send: %w", err)
	}
	var resp response
	if err := w.codec.recv(&resp); err != nil {
		return response{}, fmt.Errorf("rpcexec: recv: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})
	return resp, nil
}

// call sends one request with bounded retry: on a transport failure the
// connection is torn down, the call backs off, redials and tries again,
// up to cfg.MaxRetries extra attempts. When they are exhausted the worker
// is marked dead and ErrWorkerLost returned. The second return value is
// the number of retries consumed (for task metrics).
func (w *workerConn) call(ctx context.Context, req request) (response, int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.callLocked(ctx, req)
}

// callLocked is call's body; the caller holds w.mu.
func (w *workerConn) callLocked(ctx context.Context, req request) (response, int, error) {
	if w.dead {
		return response{}, 0, fmt.Errorf("%w: %s", ErrWorkerLost, w.addr)
	}
	var lastErr error
	for attempt := 0; attempt <= w.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(w.retry.Delay(attempt)):
			case <-ctx.Done():
				return response{}, attempt, ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			return response{}, attempt, err
		}
		if w.conn == nil {
			if err := w.redial(ctx); err != nil {
				lastErr = err
				continue
			}
		}
		resp, err := w.callOnce(ctx, req)
		if err == nil {
			return resp, attempt, nil
		}
		lastErr = err
		w.teardown()
		if err := ctx.Err(); err != nil {
			return response{}, attempt, err
		}
	}
	w.dead = true
	w.lastErr = lastErr
	w.teardown()
	return response{}, w.cfg.MaxRetries, fmt.Errorf("%w: %s: %v", ErrWorkerLost, w.addr, lastErr)
}

// Dial connects to the given worker addresses with default fault
// tolerance (see the Default* constants).
func Dial(addrs []string) (*Executor, error) {
	return DialConfig(addrs, Config{})
}

// DialConfig connects to the given worker addresses with explicit
// fault-tolerance settings. Zero-valued Config fields take defaults.
func DialConfig(addrs []string, cfg Config) (*Executor, error) {
	if len(addrs) == 0 {
		return nil, errors.New("rpcexec: no worker addresses")
	}
	registerOnce.Do(registerBuiltins)
	cfg = cfg.withDefaults()
	if cfg.Speculation != nil {
		validated, err := cfg.Speculation.WithDefaults()
		if err != nil {
			return nil, err
		}
		cfg.Speculation = &validated
	}
	e := &Executor{
		cfg:     cfg,
		conns:   make([]*workerConn, 0, len(addrs)),
		bcast:   make(map[string]bcastEntry),
		counted: make(map[string]bool),
	}
	for _, addr := range addrs {
		wc := e.newWorkerConn(addr)
		if err := wc.redial(context.Background()); err != nil {
			_ = e.Close()
			return nil, err
		}
		e.conns = append(e.conns, wc)
	}
	if reg := cfg.Membership; reg != nil {
		// Seed the initial fixed set (it never says Hello) and install the
		// health probe so the registry can suspect/kill/resurrect members.
		for _, addr := range addrs {
			reg.Track(addr)
		}
		reg.SetProber(func(ctx context.Context, addr string) error {
			return Ping(ctx, addr, cfg.DialTimeout)
		})
	}
	return e, nil
}

// newWorkerConn builds an undialed connection wired into the executor's
// broadcast replay and retry policy.
func (e *Executor) newWorkerConn(addr string) *workerConn {
	return &workerConn{addr: addr, cfg: e.cfg, retry: e.cfg.retryPolicy(), replay: e.replayBroadcasts}
}

// allWorkersLost builds the cluster-death error: ErrAllWorkersLost plus
// each worker's last transport failure (via errors.Join), so operators
// see why the cluster died, not just that it did. stranded < 0 omits the
// task count (broadcast-phase deaths).
func (e *Executor) allWorkersLost(stage string, stranded int) error {
	var head error
	if stranded >= 0 {
		head = fmt.Errorf("%w (stage %q, %d tasks stranded)", ErrAllWorkersLost, stage, stranded)
	} else {
		head = fmt.Errorf("%w (stage %q)", ErrAllWorkersLost, stage)
	}
	errs := []error{head}
	for _, wc := range e.conns {
		if err := wc.lastError(); err != nil {
			errs = append(errs, fmt.Errorf("worker %s: %w", wc.addr, err))
		}
	}
	return errors.Join(errs...)
}

// replayBroadcasts re-sends every cached broadcast on a fresh connection,
// in first-publication order, always as full values. It returns the
// versions the worker now holds, which redial merges into the
// connection's ack map so delta shipping can resume immediately.
func (e *Executor) replayBroadcasts(c *frameCodec) (map[string]uint64, error) {
	e.bmu.Lock()
	reqs := make([]request, 0, len(e.border))
	vers := make(map[string]uint64, len(e.border))
	for _, id := range e.border {
		entry := e.bcast[id]
		reqs = append(reqs, request{Kind: kindBroadcast, BroadcastID: id, BroadcastValue: entry.value, BroadcastVersion: entry.version})
		vers[id] = entry.version
	}
	e.bmu.Unlock()
	for _, req := range reqs {
		if err := c.send(req); err != nil {
			return nil, err
		}
		var resp response
		if err := c.recv(&resp); err != nil {
			return nil, err
		}
		if resp.Err != "" {
			return nil, errors.New(resp.Err)
		}
	}
	return vers, nil
}

// Parallelism implements mbsp.Executor. It reports the configured worker
// count even after losses, so partitioning stays stable across a run.
func (e *Executor) Parallelism() int { return len(e.conns) }

// AliveWorkers returns how many workers have not been declared lost.
func (e *Executor) AliveWorkers() int {
	n := 0
	for _, wc := range e.conns {
		if wc.alive() {
			n++
		}
	}
	return n
}

// Broadcast implements mbsp.Executor: the value is cached driver-side
// (for replay on reconnect) and replicated to every live worker
// synchronously, fanning out in parallel across workers. A worker that
// fails the broadcast even after retries is declared lost — its state
// would otherwise go stale — and the broadcast succeeds as long as at
// least one worker holds the value.
func (e *Executor) Broadcast(ctx context.Context, id string, value mbsp.Item) error {
	return e.broadcastValue(ctx, id, value, nil)
}

// BroadcastDelta implements mbsp.DeltaBroadcaster: workers whose last
// acknowledged version of id is exactly the previous one receive delta;
// everyone else — fresh connections, workers that missed a version,
// workers whose apply failed — receives the full value.
func (e *Executor) BroadcastDelta(ctx context.Context, id string, full, delta mbsp.Item) error {
	if !e.cfg.DeltaBroadcast {
		delta = nil
	}
	return e.broadcastValue(ctx, id, full, delta)
}

// DeltaBroadcastEnabled implements mbsp.DeltaBroadcaster.
func (e *Executor) DeltaBroadcastEnabled() bool { return e.cfg.DeltaBroadcast }

// BroadcastStats reports how many per-worker broadcast deliveries went
// out as full values vs deltas, and the bytes the broadcast path pushed
// onto the wire (columnar or gob, excluding replays and task traffic).
type BroadcastStats struct {
	Fulls  int64
	Deltas int64
	Bytes  int64
}

// BroadcastStats returns the executor's cumulative broadcast counters.
func (e *Executor) BroadcastStats() BroadcastStats {
	return BroadcastStats{
		Fulls:  e.bFulls.Load(),
		Deltas: e.bDeltas.Load(),
		Bytes:  e.bBytes.Load(),
	}
}

// NetworkBytes returns the total bytes sent to and received from all
// workers over the executor's lifetime, including redials.
func (e *Executor) NetworkBytes() (sent, recvd int64) {
	sent, recvd = e.retiredSent.Load(), e.retiredRecvd.Load()
	for _, wc := range e.conns {
		sent += wc.sent.Load()
		recvd += wc.recvd.Load()
	}
	return sent, recvd
}

func (e *Executor) broadcastValue(ctx context.Context, id string, value, delta mbsp.Item) error {
	if e.isClosed() {
		return mbsp.ErrClosed
	}
	if id == "" {
		return errors.New("rpcexec: empty broadcast id")
	}
	e.bmu.Lock()
	prev, seen := e.bcast[id]
	if !seen {
		e.border = append(e.border, id)
	}
	version := prev.version + 1
	e.bcast[id] = bcastEntry{value: value, version: version}
	e.bmu.Unlock()

	reqFull := request{Kind: kindBroadcast, BroadcastID: id, BroadcastValue: value, BroadcastVersion: version}
	var reqDelta *request
	if delta != nil && version > 1 {
		rd := request{Kind: kindBroadcast, BroadcastID: id, BroadcastVersion: version, BroadcastDelta: true}
		if cols, ok := wire.EncodeValue(delta); ok {
			rd.BroadcastCols = cols
		} else {
			rd.BroadcastValue = delta
		}
		reqDelta = &rd
	}

	var wg sync.WaitGroup
	errs := make([]error, len(e.conns))
	for i, wc := range e.conns {
		if !wc.alive() {
			continue
		}
		i, wc := i, wc
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = e.broadcastToWorker(ctx, wc, id, version, reqFull, reqDelta)
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	var fatal []error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, ErrWorkerLost):
			// Degraded but consistent: the lost worker receives no more
			// tasks, so its stale state cannot surface.
		default:
			fatal = append(fatal, err)
		}
	}
	if len(fatal) > 0 {
		return errors.Join(fatal...)
	}
	if e.AliveWorkers() == 0 {
		return ErrAllWorkersLost
	}
	return nil
}

// broadcastToWorker delivers one broadcast to one worker, delta-first
// when eligible. The delta is attempted exactly once, on the current
// live connection only — never through the retry/redial machinery,
// because a redial replays the new full value and a delta applied on top
// of it would double-apply. Any delta failure (transport or a worker-side
// reject: missing base, checksum mismatch, apply error) falls back to
// the full value through the normal retried path, so delta mode can only
// ever cost a resend, not correctness.
func (e *Executor) broadcastToWorker(ctx context.Context, w *workerConn, id string, version uint64, reqFull request, reqDelta *request) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return fmt.Errorf("%w: %s", ErrWorkerLost, w.addr)
	}
	sentBefore := w.sent.Load()
	if reqDelta != nil && w.conn != nil && w.acked[id] == version-1 {
		resp, err := w.callOnce(ctx, *reqDelta)
		if err == nil && resp.Err == "" {
			w.acked[id] = version
			e.bDeltas.Add(1)
			e.bBytes.Add(w.sent.Load() - sentBefore)
			return nil
		}
		if err != nil {
			// Transport failure mid-delta: the outcome is unknown, so the
			// connection (and the gob stream riding it) is unusable. Tear
			// it down; the full path below redials and replays.
			w.teardown()
		}
		// A worker-side reject leaves the connection healthy; either way
		// the worker's version is now unknown until the full lands.
		delete(w.acked, id)
	}
	resp, _, err := w.callLocked(ctx, reqFull)
	if err != nil {
		delete(w.acked, id)
		return err
	}
	if resp.Err != "" {
		delete(w.acked, id)
		return errors.New(resp.Err)
	}
	w.acked[id] = version
	e.bFulls.Add(1)
	e.bBytes.Add(w.sent.Load() - sentBefore)
	return nil
}

// encodeInputs pre-encodes each task partition with the columnar wire
// codec once per stage (not per attempt); nil entries fall back to gob.
func encodeInputs(inputs []mbsp.Partition) [][]byte {
	cols := make([][]byte, len(inputs))
	for i, in := range inputs {
		if b, ok := wire.EncodePartition(in); ok {
			cols[i] = b
		}
	}
	return cols
}

// taskRequest builds one task request, shipping the pre-encoded columnar
// partition when available and the gob partition otherwise.
func taskRequest(stage, op string, task int, input mbsp.Partition, cols []byte) request {
	req := request{Kind: kindTask, Stage: stage, Op: op, TaskID: task}
	if cols != nil {
		req.InputCols = cols
	} else {
		req.Input = input
	}
	return req
}

// respOutput extracts a task response's output partition, decoding the
// columnar form when the worker used it.
func respOutput(resp response) (mbsp.Partition, error) {
	if len(resp.OutputCols) == 0 {
		return resp.Output, nil
	}
	return wire.DecodePartition(resp.OutputCols)
}

// RunTasks implements mbsp.Executor with worker-loss recovery. Tasks run
// in rounds: round one deals task i to worker i%p (identical to the
// fault-free assignment); any tasks stranded by a lost worker are
// collected and re-dispatched in ascending task-index order, round-robin
// over the surviving workers, until every task has run or no worker
// remains. Because assignment depends only on task indices and the sorted
// set of survivors — never on timing — a run with a given failure pattern
// is deterministic, and outputs are always returned in input order.
func (e *Executor) RunTasks(ctx context.Context, stage, op string, inputs []mbsp.Partition) ([]mbsp.Partition, []mbsp.TaskMetrics, error) {
	if e.isClosed() {
		return nil, nil, mbsp.ErrClosed
	}
	if e.cfg.Speculation != nil {
		return e.runTasksSpeculative(ctx, stage, op, inputs)
	}
	n := len(inputs)
	inputCols := encodeInputs(inputs)
	outputs := make([]mbsp.Partition, n)
	metrics := make([]mbsp.TaskMetrics, n)
	retries := make([]int, n)

	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, metrics, err
		}
		var alive []int
		for w, wc := range e.conns {
			if wc.alive() {
				alive = append(alive, w)
			}
		}
		if len(alive) == 0 {
			return nil, metrics, e.allWorkersLost(stage, len(pending))
		}
		// Deal pending tasks (already in ascending order) round-robin over
		// the survivors. On the first round with all workers alive this
		// reproduces the static task i → worker i%p assignment.
		assign := make([][]int, len(alive))
		for j, task := range pending {
			assign[j%len(alive)] = append(assign[j%len(alive)], task)
		}

		var mu sync.Mutex
		var requeue []int
		var taskErrs []*mbsp.TaskError
		var wg sync.WaitGroup
		for wi, worker := range alive {
			tasks := assign[wi]
			if len(tasks) == 0 {
				continue
			}
			worker := worker
			wg.Add(1)
			go func() {
				defer wg.Done()
				wc := e.conns[worker]
				for k, task := range tasks {
					if ctx.Err() != nil {
						return
					}
					start := time.Now()
					resp, tries, err := wc.call(ctx, taskRequest(stage, op, task, inputs[task], inputCols[task]))
					retries[task] += tries
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						// Worker lost: strand its remaining tasks for the
						// next round and stop driving this connection.
						mu.Lock()
						requeue = append(requeue, tasks[k:]...)
						mu.Unlock()
						return
					}
					if resp.Err != "" {
						// Application-level failure: deterministic, so
						// re-running it elsewhere cannot help. Abort the
						// stage after this round.
						mu.Lock()
						taskErrs = append(taskErrs, &mbsp.TaskError{Stage: stage, TaskID: task, Err: errors.New(resp.Err)})
						mu.Unlock()
						continue
					}
					out, decErr := respOutput(resp)
					if decErr != nil {
						// Corrupt columnar output is deterministic, like an
						// application failure: abort rather than retry.
						mu.Lock()
						taskErrs = append(taskErrs, &mbsp.TaskError{Stage: stage, TaskID: task, Err: decErr})
						mu.Unlock()
						continue
					}
					outputs[task] = out
					metrics[task] = mbsp.TaskMetrics{
						Stage:    stage,
						TaskID:   task,
						WorkerID: worker,
						// Duration is the round-trip wall time seen by the
						// driver (includes serialization + network),
						// matching what a Spark driver observes per task.
						Duration: time.Since(start),
						InItems:  len(inputs[task]),
						OutItems: len(out),
						Retries:  retries[task],
					}
					_ = resp.DurMicro // worker-side compute time, available for finer breakdowns
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, metrics, err
		}
		if len(taskErrs) > 0 {
			sort.Slice(taskErrs, func(i, j int) bool { return taskErrs[i].TaskID < taskErrs[j].TaskID })
			return nil, metrics, taskErrs[0]
		}
		sort.Ints(requeue)
		pending = requeue
	}
	return outputs, metrics, nil
}

// specState is the shared scheduling state of one speculative stage on
// the TCP executor — the remote analogue of the local executor's
// speculation tracker, extended with per-copy cancel functions so a
// committed backup can interrupt its straggling primary's in-flight call.
// The cancellation makes wc.call return the context error without marking
// the worker dead; the torn-down connection simply redials on next use.
type specState struct {
	mu         sync.Mutex
	durations  []time.Duration // committed successful task durations
	starts     map[int]time.Time
	backups    map[int]bool // a backup copy is armed or in flight
	speculated map[int]bool // ever speculated (for metrics)
	failed     map[int]bool // one copy of a speculated task already failed
	retries    map[int]int
	cancels    map[int][]context.CancelFunc
	committed  []bool
	remaining  int
	aborted    bool
	done       chan struct{} // closed when every task has committed
}

func newSpecState(n int) *specState {
	st := &specState{
		starts:     make(map[int]time.Time),
		backups:    make(map[int]bool),
		speculated: make(map[int]bool),
		failed:     make(map[int]bool),
		retries:    make(map[int]int),
		cancels:    make(map[int][]context.CancelFunc),
		committed:  make([]bool, n),
		remaining:  n,
		done:       make(chan struct{}),
	}
	if n == 0 {
		close(st.done)
	}
	return st
}

// beginPrimary registers a primary copy: it records the straggler clock
// and the cancel hook, and reports false when the task already committed
// (a backup from this or an earlier round won) so the caller skips it.
func (st *specState) beginPrimary(task int, cancel context.CancelFunc) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.aborted || st.committed[task] {
		return false
	}
	st.starts[task] = time.Now()
	st.cancels[task] = append(st.cancels[task], cancel)
	return true
}

// beginBackup registers a backup copy's cancel hook; false means the task
// committed between candidate selection and the backup's start.
func (st *specState) beginBackup(task int, cancel context.CancelFunc) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.aborted || st.committed[task] {
		return false
	}
	st.cancels[task] = append(st.cancels[task], cancel)
	return true
}

// candidate picks the straggler to back up: the lowest-id uncommitted
// task with a running primary, no backup yet, and an elapsed time beyond
// Multiplier times the stage median. It arms the backup before returning.
func (st *specState) candidate(spec *mbsp.SpeculationConfig) (int, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.aborted || len(st.durations) < spec.MinCompleted {
		return 0, false
	}
	sorted := append([]time.Duration(nil), st.durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	bound := time.Duration(float64(median) * spec.Multiplier)
	best := -1
	for task, started := range st.starts {
		if st.backups[task] || st.committed[task] || time.Since(started) <= bound {
			continue
		}
		if best < 0 || task < best {
			best = task
		}
	}
	if best < 0 {
		return 0, false
	}
	st.backups[best] = true
	st.speculated[best] = true
	return best, true
}

// releaseBackup clears the armed-backup mark after a backup copy died on
// transport (its worker was lost), so another idle worker may speculate
// the task again.
func (st *specState) releaseBackup(task int) {
	st.mu.Lock()
	st.backups[task] = false
	st.mu.Unlock()
}

// clearStart drops a stranded primary's straggler clock so pollers stop
// treating it as a running straggler; the round loop re-dispatches it.
func (st *specState) clearStart(task int) {
	st.mu.Lock()
	delete(st.starts, task)
	st.mu.Unlock()
}

func (st *specState) noteRetries(task, tries int) {
	if tries == 0 {
		return
	}
	st.mu.Lock()
	st.retries[task] += tries
	st.mu.Unlock()
}

// abort poisons the stage: in-flight copies discard their results and
// their calls are interrupted.
func (st *specState) abort() {
	st.mu.Lock()
	st.aborted = true
	for _, cancels := range st.cancels {
		for _, cancel := range cancels {
			cancel()
		}
	}
	st.cancels = make(map[int][]context.CancelFunc)
	st.mu.Unlock()
}

// runOneCopy executes one copy of a task on one worker and returns the
// response, driver-observed metrics and transport retry count. The error
// return is transport-level (worker loss or context cancellation);
// application failures come back inside the response.
func (e *Executor) runOneCopy(ctx context.Context, worker int, stage, op string, task int, input mbsp.Partition, inputCols []byte) (response, mbsp.TaskMetrics, int, error) {
	start := time.Now()
	resp, tries, err := e.conns[worker].call(ctx, taskRequest(stage, op, task, input, inputCols))
	m := mbsp.TaskMetrics{
		Stage:    stage,
		TaskID:   task,
		WorkerID: worker,
		Duration: time.Since(start),
		InItems:  len(input),
	}
	if err != nil {
		return resp, m, tries, err
	}
	if resp.Err == "" {
		// Surface the decoded partition through resp.Output so commit and
		// metrics read one place; a corrupt columnar frame becomes an
		// application-level failure (deterministic, like the plain path).
		out, decErr := respOutput(resp)
		if decErr != nil {
			resp.Err = decErr.Error()
		} else {
			resp.Output, resp.OutputCols = out, nil
		}
	}
	m.OutItems = len(resp.Output)
	return resp, m, tries, nil
}

// runTasksSpeculative is RunTasks with straggler mitigation, keeping the
// plain path's round structure for worker-loss recovery. Within a round,
// workers that drain their task list poll for straggling primaries and
// run backup copies on their own connections; the first result to commit
// wins and cancels the losing copy's in-flight call. Ops are pure, so
// either copy yields the same output and order-aware semantics hold.
func (e *Executor) runTasksSpeculative(ctx context.Context, stage, op string, inputs []mbsp.Partition) ([]mbsp.Partition, []mbsp.TaskMetrics, error) {
	n := len(inputs)
	inputCols := encodeInputs(inputs)
	outputs := make([]mbsp.Partition, n)
	metrics := make([]mbsp.TaskMetrics, n)
	errs := make([]error, n)
	spec := e.cfg.Speculation
	st := newSpecState(n)

	commit := func(task int, out mbsp.Partition, m mbsp.TaskMetrics, err error, isBackup bool) {
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.aborted || st.committed[task] {
			return // the other copy won (or the stage aborted); discard
		}
		if err != nil && st.backups[task] && !st.failed[task] {
			// First failed copy of a speculated task: the surviving copy
			// may still deliver a good result, so keep the task open.
			st.failed[task] = true
			return
		}
		st.committed[task] = true
		delete(st.starts, task)
		for _, cancel := range st.cancels[task] {
			cancel() // unblock the losing copy's in-flight call
		}
		delete(st.cancels, task)
		m.Speculative = st.speculated[task]
		m.SpeculativeWin = isBackup && err == nil
		m.Retries = st.retries[task]
		outputs[task], metrics[task], errs[task] = out, m, err
		if err == nil {
			st.durations = append(st.durations, m.Duration)
		}
		st.remaining--
		if st.remaining == 0 {
			close(st.done)
		}
	}

	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			st.abort()
			return nil, metrics, err
		}
		var alive []int
		for w, wc := range e.conns {
			if wc.alive() {
				alive = append(alive, w)
			}
		}
		if len(alive) == 0 {
			return nil, metrics, e.allWorkersLost(stage, len(pending))
		}
		assign := make([][]int, len(alive))
		for j, task := range pending {
			assign[j%len(alive)] = append(assign[j%len(alive)], task)
		}

		// roundOver releases pollers when every primary goroutine has
		// finished but some tasks were stranded by a lost worker (st.done
		// never closes in that round).
		roundOver := make(chan struct{})
		var wgPrimary, wgAll sync.WaitGroup
		for wi, worker := range alive {
			tasks := assign[wi]
			worker := worker
			wgPrimary.Add(1)
			wgAll.Add(1)
			go func() {
				defer wgAll.Done()
				var primaryOnce sync.Once
				donePrimary := func() { primaryOnce.Do(wgPrimary.Done) }
				defer donePrimary()
				for k, task := range tasks {
					if ctx.Err() != nil {
						return
					}
					tctx, cancel := context.WithCancel(ctx)
					if !st.beginPrimary(task, cancel) {
						cancel()
						continue
					}
					resp, m, tries, err := e.runOneCopy(tctx, worker, stage, op, task, inputs[task], inputCols[task])
					cancel()
					st.noteRetries(task, tries)
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						if tctx.Err() != nil {
							continue // a backup won and cancelled this call
						}
						// Worker lost: strand the remaining tasks for the
						// next round and stop driving this connection.
						for _, t := range tasks[k:] {
							st.clearStart(t)
						}
						return
					}
					if resp.Err != "" {
						commit(task, nil, m, &mbsp.TaskError{Stage: stage, TaskID: task, Err: errors.New(resp.Err)}, false)
						continue
					}
					commit(task, resp.Output, m, nil, false)
				}
				donePrimary()
				// List drained: this worker is idle. Poll for stragglers.
				ticker := time.NewTicker(spec.Poll)
				defer ticker.Stop()
				for {
					select {
					case <-st.done:
						return
					case <-roundOver:
						return
					case <-ctx.Done():
						return
					case <-ticker.C:
					}
					task, ok := st.candidate(spec)
					if !ok {
						continue
					}
					bctx, cancel := context.WithCancel(ctx)
					if !st.beginBackup(task, cancel) {
						cancel()
						continue
					}
					resp, m, tries, err := e.runOneCopy(bctx, worker, stage, op, task, inputs[task], inputCols[task])
					cancel()
					st.noteRetries(task, tries)
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						if bctx.Err() != nil {
							continue // the primary won and cancelled this call
						}
						// Backup's worker lost: let the task be speculated
						// again or re-dispatched next round.
						st.releaseBackup(task)
						return
					}
					if resp.Err != "" {
						commit(task, nil, m, &mbsp.TaskError{Stage: stage, TaskID: task, Err: errors.New(resp.Err)}, true)
						continue
					}
					commit(task, resp.Output, m, nil, true)
				}
			}()
		}
		wgPrimary.Wait()
		close(roundOver)
		wgAll.Wait()
		if err := ctx.Err(); err != nil {
			st.abort()
			return nil, metrics, err
		}
		// Application failures abort the stage after the round, lowest
		// task first — the same policy as the plain path.
		for task := 0; task < n; task++ {
			if errs[task] != nil {
				st.abort()
				return nil, metrics, errs[task]
			}
		}
		// Next round: whatever is still uncommitted, in ascending order.
		var next []int
		st.mu.Lock()
		for task := 0; task < n; task++ {
			if !st.committed[task] {
				next = append(next, task)
			}
		}
		st.mu.Unlock()
		pending = next
	}
	return outputs, metrics, nil
}

// Close implements mbsp.Executor: it sends a shutdown frame to each live
// worker connection and closes the sockets. The workers themselves stay
// up to serve other drivers; use Worker.Close to stop them.
func (e *Executor) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	var errs []error
	for _, wc := range e.conns {
		wc.mu.Lock()
		if wc.conn != nil {
			_ = wc.conn.SetDeadline(time.Now().Add(time.Second))
			if err := wc.codec.send(request{Kind: kindShutdown}); err == nil {
				var resp response
				_ = wc.codec.recv(&resp)
			}
			if err := wc.conn.Close(); err != nil {
				errs = append(errs, err)
			}
			wc.codec.release()
			wc.conn, wc.codec = nil, nil
		}
		wc.dead = true
		wc.mu.Unlock()
	}
	return errors.Join(errs...)
}

func (e *Executor) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// StartLocalCluster launches n workers on ephemeral localhost ports and
// returns them with their addresses — a convenience for tests and for
// single-machine demos of the TCP execution path.
func StartLocalCluster(n int, registry *mbsp.Registry) ([]*Worker, []string, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("rpcexec: cluster size %d must be positive", n)
	}
	workers := make([]*Worker, 0, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		w, err := NewWorker(i, "127.0.0.1:0", registry)
		if err != nil {
			for _, started := range workers {
				_ = started.Close()
			}
			return nil, nil, err
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	return workers, addrs, nil
}
