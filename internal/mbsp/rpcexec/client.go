package rpcexec

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"diststream/internal/mbsp"
)

// Executor is the driver-side TCP executor: it holds one connection per
// remote worker and implements mbsp.Executor. Task i of a stage runs on
// worker i % len(workers); requests on one connection are serialized
// (each paper worker owns one physical core, so per-worker serialization
// is faithful), while different workers run concurrently.
type Executor struct {
	conns []*workerConn

	mu     sync.Mutex
	closed bool
}

var _ mbsp.Executor = (*Executor)(nil)

// workerConn is one driver→worker connection with lockstep framing.
type workerConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// call sends one request and waits for its response.
func (w *workerConn) call(req request) (response, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enc.Encode(req); err != nil {
		return response{}, fmt.Errorf("rpcexec: send: %w", err)
	}
	var resp response
	if err := w.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("rpcexec: recv: %w", err)
	}
	return resp, nil
}

// Dial connects to the given worker addresses.
func Dial(addrs []string) (*Executor, error) {
	if len(addrs) == 0 {
		return nil, errors.New("rpcexec: no worker addresses")
	}
	registerOnce.Do(registerBuiltins)
	e := &Executor{conns: make([]*workerConn, 0, len(addrs))}
	for _, addr := range addrs {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			_ = e.Close()
			return nil, fmt.Errorf("rpcexec: dial %s: %w", addr, err)
		}
		e.conns = append(e.conns, &workerConn{
			conn: conn,
			enc:  gob.NewEncoder(conn),
			dec:  gob.NewDecoder(conn),
		})
	}
	return e, nil
}

// Parallelism implements mbsp.Executor.
func (e *Executor) Parallelism() int { return len(e.conns) }

// Broadcast implements mbsp.Executor: the value is replicated to every
// worker synchronously (the model broadcast at the start of each batch).
func (e *Executor) Broadcast(id string, value mbsp.Item) error {
	if e.isClosed() {
		return mbsp.ErrClosed
	}
	if id == "" {
		return errors.New("rpcexec: empty broadcast id")
	}
	var wg sync.WaitGroup
	errs := make([]error, len(e.conns))
	for i, wc := range e.conns {
		i, wc := i, wc
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := wc.call(request{Kind: kindBroadcast, BroadcastID: id, BroadcastValue: value})
			if err != nil {
				errs[i] = err
				return
			}
			if resp.Err != "" {
				errs[i] = errors.New(resp.Err)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RunTasks implements mbsp.Executor.
func (e *Executor) RunTasks(stage, op string, inputs []mbsp.Partition) ([]mbsp.Partition, []mbsp.TaskMetrics, error) {
	if e.isClosed() {
		return nil, nil, mbsp.ErrClosed
	}
	n := len(inputs)
	outputs := make([]mbsp.Partition, n)
	metrics := make([]mbsp.TaskMetrics, n)
	errs := make([]error, n)

	var wg sync.WaitGroup
	for w := range e.conns {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for task := w; task < n; task += len(e.conns) {
				start := time.Now()
				resp, err := e.conns[w].call(request{
					Kind:   kindTask,
					Stage:  stage,
					Op:     op,
					TaskID: task,
					Input:  inputs[task],
				})
				if err != nil {
					errs[task] = &mbsp.TaskError{Stage: stage, TaskID: task, Err: err}
					continue
				}
				if resp.Err != "" {
					errs[task] = &mbsp.TaskError{Stage: stage, TaskID: task, Err: errors.New(resp.Err)}
					continue
				}
				outputs[task] = resp.Output
				metrics[task] = mbsp.TaskMetrics{
					Stage:    stage,
					TaskID:   task,
					WorkerID: w,
					// Duration is the round-trip wall time seen by the
					// driver (includes serialization + network), matching
					// what a Spark driver observes per task.
					Duration: time.Since(start),
					InItems:  len(inputs[task]),
					OutItems: len(resp.Output),
				}
				_ = resp.DurMicro // worker-side compute time, available for finer breakdowns
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, metrics, err
		}
	}
	return outputs, metrics, nil
}

// Close implements mbsp.Executor: it sends a shutdown frame to each
// worker connection and closes the sockets. The workers themselves stay
// up to serve other drivers; use Worker.Close to stop them.
func (e *Executor) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	var errs []error
	for _, wc := range e.conns {
		if wc == nil || wc.conn == nil {
			continue
		}
		_, _ = wc.call(request{Kind: kindShutdown})
		if err := wc.conn.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (e *Executor) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// StartLocalCluster launches n workers on ephemeral localhost ports and
// returns them with their addresses — a convenience for tests and for
// single-machine demos of the TCP execution path.
func StartLocalCluster(n int, registry *mbsp.Registry) ([]*Worker, []string, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("rpcexec: cluster size %d must be positive", n)
	}
	workers := make([]*Worker, 0, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		w, err := NewWorker(i, "127.0.0.1:0", registry)
		if err != nil {
			for _, started := range workers {
				_ = started.Close()
			}
			return nil, nil, err
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	return workers, addrs, nil
}
