package rpcexec

import (
	"context"
	"fmt"
	"net"
	"time"

	"diststream/internal/mbsp"
	"diststream/internal/membership"
)

var _ mbsp.MembershipReconciler = (*Executor)(nil)

// Ping performs one lightweight health probe against a worker: dial,
// one kindPing round trip, close. It is the prober DialConfig installs
// into a membership registry.
func Ping(ctx context.Context, addr string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("rpcexec: ping dial %s: %w", addr, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	_ = conn.SetDeadline(deadline)
	c := newFrameCodec(conn)
	defer c.release()
	if err := c.send(request{Kind: kindPing}); err != nil {
		return fmt.Errorf("rpcexec: ping %s: %w", addr, err)
	}
	var resp response
	if err := c.recv(&resp); err != nil {
		return fmt.Errorf("rpcexec: ping %s: %w", addr, err)
	}
	if resp.Err != "" {
		return fmt.Errorf("rpcexec: ping %s: %s", addr, resp.Err)
	}
	return nil
}

// ReconcileMembership implements mbsp.MembershipReconciler. It runs at a
// batch boundary on the driver goroutine — never concurrently with a
// stage — and does three things:
//
//  1. syncs executor-detected losses into the registry (so probes and
//     operators see why a slot emptied),
//  2. retires connections whose registry state went dead underneath a
//     healthy-looking socket (clean Goodbye drains, probe-declared
//     deaths), and
//  3. admits join candidates into vacant stride slots: each is dialed
//     fresh, which replays every cached broadcast in publication order
//     (full model snapshot first contact, deltas resume next batch via
//     the seeded ack map), then enters the dispatch rotation.
//
// The slot count never changes — joiners only fill seats the departed
// vacated — so partitioning, the deterministic re-dispatch rules, and
// therefore output bytes are identical to a fixed-membership run.
func (e *Executor) ReconcileMembership(ctx context.Context) (mbsp.MembershipDelta, error) {
	var delta mbsp.MembershipDelta
	reg := e.cfg.Membership
	if reg == nil || e.isClosed() {
		return delta, nil
	}

	for _, wc := range e.conns {
		st, known := reg.State(wc.addr)
		if wc.alive() {
			if known && st == membership.StateDead {
				// The registry learned of a departure (Goodbye, exhausted
				// probes) the executor has not hit yet: retire the slot
				// cleanly before the next dispatch round.
				wc.retire()
			}
		} else if known && st != membership.StateDead && st != membership.StateJoining && st != membership.StateRejoining {
			// The executor detected the loss first; tell the registry why.
			// Candidate states are left alone: a worker can have been
			// resurrected (probe or re-announce) before this boundary.
			reg.MarkDead(wc.addr, wc.lastError())
		}
		if !wc.alive() && !e.counted[wc.addr] {
			e.counted[wc.addr] = true
			delta.Departed = append(delta.Departed, wc.addr)
		}
	}

	cands := reg.Candidates()
	if len(cands) == 0 {
		return delta, nil
	}
	barrier := time.Now().Add(e.cfg.JoinBarrier)
	for _, addr := range cands {
		slot := e.vacantSlot()
		if slot < 0 {
			break // full strength; candidates wait for a vacancy
		}
		if e.hasLiveConn(addr) {
			continue
		}
		wc := e.newWorkerConn(addr)
		jctx, cancel := context.WithDeadline(ctx, barrier)
		err := wc.redial(jctx)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return delta, ctx.Err()
			}
			// Not reachable (yet): it stays a candidate and is retried at
			// the next batch boundary.
			continue
		}
		e.installConn(slot, wc)
		delete(e.counted, addr)
		reg.MarkReady(addr)
		delta.Joined = append(delta.Joined, addr)
	}
	return delta, nil
}

// vacantSlot returns the lowest dispatch slot without a live worker, or
// -1 at full strength.
func (e *Executor) vacantSlot() int {
	for i, wc := range e.conns {
		if !wc.alive() {
			return i
		}
	}
	return -1
}

// hasLiveConn reports whether addr already occupies a slot.
func (e *Executor) hasLiveConn(addr string) bool {
	for _, wc := range e.conns {
		if wc.addr == addr && wc.alive() {
			return true
		}
	}
	return false
}

// installConn swaps a fresh connection into a vacant slot, folding the
// retired connection's traffic counters into the executor totals.
func (e *Executor) installConn(slot int, wc *workerConn) {
	old := e.conns[slot]
	e.retiredSent.Add(old.sent.Load())
	e.retiredRecvd.Add(old.recvd.Load())
	old.retire()
	e.conns[slot] = wc
}

// MembershipStates snapshots the registry's view of the cluster, or nil
// when membership is not enabled.
func (e *Executor) MembershipStates() map[string]membership.State {
	if e.cfg.Membership == nil {
		return nil
	}
	return e.cfg.Membership.States()
}
