// Package rpcexec provides a TCP-based executor for the mbsp engine:
// worker processes listen on sockets, the driver ships gob-encoded tasks
// and broadcast variables, and workers resolve operation names against
// their own (identically linked) registry — the moral equivalent of Spark
// shipping an application jar to each executor and then sending tasks.
//
// The in-process LocalExecutor and this executor implement the same
// mbsp.Executor interface, so a pipeline runs unmodified on either.
package rpcexec

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"diststream/internal/mbsp"
	"diststream/internal/stream"
)

// msgKind discriminates request messages on a worker connection.
type msgKind int

const (
	kindBroadcast msgKind = iota + 1
	kindTask
	kindShutdown
	// kindPing is a lightweight health probe: the worker answers an empty
	// response immediately, without touching registries or broadcasts.
	kindPing
)

// request is the single driver→worker message frame. The envelope always
// travels through gob; hot payloads (task partitions, snapshot deltas)
// ride inside it as pre-encoded columnar frames (the *Cols fields), with
// the gob-typed fields as the fallback for shapes the columnar codec
// does not cover.
type request struct {
	Kind msgKind

	// Broadcast fields. Exactly one of BroadcastValue and BroadcastCols
	// carries the payload; BroadcastCols holds a wire.EncodeValue frame.
	// BroadcastDelta marks the payload as an mbsp.BroadcastDelta to apply
	// onto the worker's current value for the id; BroadcastVersion is the
	// driver's version of the resulting value (observability only — the
	// driver tracks per-worker versions itself).
	BroadcastID      string
	BroadcastValue   mbsp.Item
	BroadcastCols    []byte
	BroadcastDelta   bool
	BroadcastVersion uint64

	// Task fields. Exactly one of Input and InputCols carries the
	// partition; InputCols holds a wire.EncodePartition frame.
	Stage     string
	Op        string
	TaskID    int
	Input     mbsp.Partition
	InputCols []byte
}

// response is the single worker→driver message frame. Like requests,
// task outputs travel columnar in OutputCols when the codec covers their
// shape, and through the gob-typed Output otherwise.
type response struct {
	TaskID     int
	Output     mbsp.Partition
	OutputCols []byte
	Err        string
	DurMicro   int64 // task execution time in microseconds
}

// RegisterType registers a concrete type with gob so it can travel inside
// mbsp.Item fields. Every payload type crossing the wire (records, keyed
// items, groups, micro-cluster snapshots) must be registered by both the
// driver and the worker binary before use.
func RegisterType(v any) { gob.Register(v) }

// registerBuiltins registers the engine's own envelope types plus the
// stream record type that every pipeline ships.
func registerBuiltins() {
	// The zero-alloc assign stage emits *KeyedItem; gob flattens pointers
	// to their registered base type, so the value registration covers both
	// forms (a remote worker's *KeyedItem arrives as a KeyedItem value,
	// which the shuffle accepts either way).
	gob.Register(mbsp.KeyedItem{})
	gob.Register(mbsp.Group{})
	gob.Register(stream.Record{})
}

// countingConn wraps a worker connection and counts the bytes crossing
// it, so the driver can report broadcast and task traffic (the payoff
// measurement for the delta/columnar paths) without instrumenting gob.
type countingConn struct {
	net.Conn
	sent  *atomic.Int64
	recvd *atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recvd.Add(int64(n))
	return n, err
}

// writerPool recycles the buffered writers frames are gob-encoded
// through, and readerPool the buffered readers frames are decoded from.
// Connections are long-lived, but redials and worker-side accepts churn
// through codecs, and one pooled 32 KiB buffer per live connection beats
// a fresh allocation per dial.
var (
	writerPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, 32<<10) }}
	readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 32<<10) }}
)

// frameCodec owns one connection's gob streams. The encoder writes
// through a pooled bufio.Writer (flushed once per frame), so gob's short
// per-message writes — length prefixes, type descriptors — coalesce into
// few syscalls while payloads larger than the buffer pass straight
// through without an extra copy; the decoder reads through a pooled
// bufio.Reader, batching gob's short length-prefix reads the same way.
// Both gob streams live as long as the connection, so type descriptors
// travel once per connection, not once per frame.
//
// Deadlines and cancellation keep working unchanged: the buffered Writes
// and Reads land on the connection, which is what SetDeadline and the
// close-on-cancel hook interrupt.
type frameCodec struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func newFrameCodec(conn net.Conn) *frameCodec {
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(conn)
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(conn)
	return &frameCodec{
		conn: conn,
		bw:   bw,
		br:   br,
		enc:  gob.NewEncoder(bw),
		dec:  gob.NewDecoder(br),
	}
}

// send gob-encodes v through the buffered writer and flushes the frame
// to the connection.
func (c *frameCodec) send(v any) error {
	if err := c.enc.Encode(v); err != nil {
		return err
	}
	return c.bw.Flush()
}

// recv decodes the next frame into v.
func (c *frameCodec) recv(v any) error { return c.dec.Decode(v) }

// exchangePipelined performs the fused two-frame round trip behind the
// pipelined dispatch path: the broadcast request and the first task
// request go out back-to-back — each as its own flushed frame, so the
// byte counter read between the two flushes attributes broadcast bytes
// exactly — and only then are both responses read, in order. The
// worker's serve loop is strictly sequential per connection, so response
// order matches request order by construction. The whole exchange runs
// under one per-call deadline with the usual close-on-cancel hook; any
// error leaves the gob streams desynchronized, and the caller must tear
// the connection down. Caller holds w.mu and has checked w.conn != nil.
func (w *workerConn) exchangePipelined(ctx context.Context, breq, treq request) (bresp, tresp response, bcastBytes int64, err error) {
	conn := w.conn
	_ = conn.SetDeadline(w.callDeadline(ctx))
	stop := context.AfterFunc(ctx, func() {
		_ = conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()
	sentBefore := w.sent.Load()
	if err = w.codec.send(breq); err != nil {
		return bresp, tresp, 0, fmt.Errorf("rpcexec: send broadcast: %w", err)
	}
	bcastBytes = w.sent.Load() - sentBefore
	if err = w.codec.send(treq); err != nil {
		return bresp, tresp, bcastBytes, fmt.Errorf("rpcexec: send task: %w", err)
	}
	if err = w.codec.recv(&bresp); err != nil {
		return bresp, tresp, bcastBytes, fmt.Errorf("rpcexec: recv broadcast: %w", err)
	}
	if err = w.codec.recv(&tresp); err != nil {
		return bresp, tresp, bcastBytes, fmt.Errorf("rpcexec: recv task: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})
	return bresp, tresp, bcastBytes, nil
}

// release returns the pooled buffers. The codec is unusable afterwards;
// callers discard it together with the connection.
func (c *frameCodec) release() {
	if c.bw != nil {
		c.bw.Reset(nil)
		writerPool.Put(c.bw)
		c.bw = nil
	}
	if c.br != nil {
		c.br.Reset(nil)
		readerPool.Put(c.br)
		c.br = nil
	}
	c.enc, c.dec = nil, nil
}
