// Package rpcexec provides a TCP-based executor for the mbsp engine:
// worker processes listen on sockets, the driver ships gob-encoded tasks
// and broadcast variables, and workers resolve operation names against
// their own (identically linked) registry — the moral equivalent of Spark
// shipping an application jar to each executor and then sending tasks.
//
// The in-process LocalExecutor and this executor implement the same
// mbsp.Executor interface, so a pipeline runs unmodified on either.
package rpcexec

import (
	"bufio"
	"encoding/gob"
	"net"
	"sync"

	"diststream/internal/mbsp"
	"diststream/internal/stream"
)

// msgKind discriminates request messages on a worker connection.
type msgKind int

const (
	kindBroadcast msgKind = iota + 1
	kindTask
	kindShutdown
)

// request is the single driver→worker message frame.
type request struct {
	Kind msgKind

	// Broadcast fields.
	BroadcastID    string
	BroadcastValue mbsp.Item

	// Task fields.
	Stage  string
	Op     string
	TaskID int
	Input  mbsp.Partition
}

// response is the single worker→driver message frame.
type response struct {
	TaskID   int
	Output   mbsp.Partition
	Err      string
	DurMicro int64 // task execution time in microseconds
}

// RegisterType registers a concrete type with gob so it can travel inside
// mbsp.Item fields. Every payload type crossing the wire (records, keyed
// items, groups, micro-cluster snapshots) must be registered by both the
// driver and the worker binary before use.
func RegisterType(v any) { gob.Register(v) }

// registerBuiltins registers the engine's own envelope types plus the
// stream record type that every pipeline ships.
func registerBuiltins() {
	// The zero-alloc assign stage emits *KeyedItem; gob flattens pointers
	// to their registered base type, so the value registration covers both
	// forms (a remote worker's *KeyedItem arrives as a KeyedItem value,
	// which the shuffle accepts either way).
	gob.Register(mbsp.KeyedItem{})
	gob.Register(mbsp.Group{})
	gob.Register(stream.Record{})
}

// writerPool recycles the buffered writers frames are gob-encoded
// through, and readerPool the buffered readers frames are decoded from.
// Connections are long-lived, but redials and worker-side accepts churn
// through codecs, and one pooled 32 KiB buffer per live connection beats
// a fresh allocation per dial.
var (
	writerPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, 32<<10) }}
	readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 32<<10) }}
)

// frameCodec owns one connection's gob streams. The encoder writes
// through a pooled bufio.Writer (flushed once per frame), so gob's short
// per-message writes — length prefixes, type descriptors — coalesce into
// few syscalls while payloads larger than the buffer pass straight
// through without an extra copy; the decoder reads through a pooled
// bufio.Reader, batching gob's short length-prefix reads the same way.
// Both gob streams live as long as the connection, so type descriptors
// travel once per connection, not once per frame.
//
// Deadlines and cancellation keep working unchanged: the buffered Writes
// and Reads land on the connection, which is what SetDeadline and the
// close-on-cancel hook interrupt.
type frameCodec struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func newFrameCodec(conn net.Conn) *frameCodec {
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(conn)
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(conn)
	return &frameCodec{
		conn: conn,
		bw:   bw,
		br:   br,
		enc:  gob.NewEncoder(bw),
		dec:  gob.NewDecoder(br),
	}
}

// send gob-encodes v through the buffered writer and flushes the frame
// to the connection.
func (c *frameCodec) send(v any) error {
	if err := c.enc.Encode(v); err != nil {
		return err
	}
	return c.bw.Flush()
}

// recv decodes the next frame into v.
func (c *frameCodec) recv(v any) error { return c.dec.Decode(v) }

// release returns the pooled buffers. The codec is unusable afterwards;
// callers discard it together with the connection.
func (c *frameCodec) release() {
	if c.bw != nil {
		c.bw.Reset(nil)
		writerPool.Put(c.bw)
		c.bw = nil
	}
	if c.br != nil {
		c.br.Reset(nil)
		readerPool.Put(c.br)
		c.br = nil
	}
	c.enc, c.dec = nil, nil
}
