// Package rpcexec provides a TCP-based executor for the mbsp engine:
// worker processes listen on sockets, the driver ships gob-encoded tasks
// and broadcast variables, and workers resolve operation names against
// their own (identically linked) registry — the moral equivalent of Spark
// shipping an application jar to each executor and then sending tasks.
//
// The in-process LocalExecutor and this executor implement the same
// mbsp.Executor interface, so a pipeline runs unmodified on either.
package rpcexec

import (
	"encoding/gob"

	"diststream/internal/mbsp"
	"diststream/internal/stream"
)

// msgKind discriminates request messages on a worker connection.
type msgKind int

const (
	kindBroadcast msgKind = iota + 1
	kindTask
	kindShutdown
)

// request is the single driver→worker message frame.
type request struct {
	Kind msgKind

	// Broadcast fields.
	BroadcastID    string
	BroadcastValue mbsp.Item

	// Task fields.
	Stage  string
	Op     string
	TaskID int
	Input  mbsp.Partition
}

// response is the single worker→driver message frame.
type response struct {
	TaskID   int
	Output   mbsp.Partition
	Err      string
	DurMicro int64 // task execution time in microseconds
}

// RegisterType registers a concrete type with gob so it can travel inside
// mbsp.Item fields. Every payload type crossing the wire (records, keyed
// items, groups, micro-cluster snapshots) must be registered by both the
// driver and the worker binary before use.
func RegisterType(v any) { gob.Register(v) }

// registerBuiltins registers the engine's own envelope types plus the
// stream record type that every pipeline ships.
func registerBuiltins() {
	gob.Register(mbsp.KeyedItem{})
	gob.Register(mbsp.Group{})
	gob.Register(stream.Record{})
}
