package rpcexec

import (
	"errors"
	"strings"
	"testing"

	"diststream/internal/mbsp"
)

func testRegistry(t *testing.T) *mbsp.Registry {
	t.Helper()
	reg := mbsp.NewRegistry()
	reg.MustRegister("double", func(_ *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		out := make(mbsp.Partition, len(in))
		for i, item := range in {
			out[i] = item.(int) * 2
		}
		return out, nil
	})
	reg.MustRegister("add-broadcast", func(ctx *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		bv, err := ctx.Broadcast("offset")
		if err != nil {
			return nil, err
		}
		off := bv.(int)
		out := make(mbsp.Partition, len(in))
		for i, item := range in {
			out[i] = item.(int) + off
		}
		return out, nil
	})
	reg.MustRegister("fail", func(_ *mbsp.TaskContext, _ mbsp.Partition) (mbsp.Partition, error) {
		return nil, errors.New("kaput")
	})
	reg.MustRegister("worker-id", func(ctx *mbsp.TaskContext, _ mbsp.Partition) (mbsp.Partition, error) {
		return mbsp.Partition{ctx.WorkerID}, nil
	})
	return reg
}

func startCluster(t *testing.T, n int) (*Executor, []*Worker) {
	t.Helper()
	reg := testRegistry(t)
	workers, addrs, err := StartLocalCluster(n, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, w := range workers {
			_ = w.Close()
		}
	})
	exec, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = exec.Close() })
	return exec, workers
}

func intParts(parts ...[]int) []mbsp.Partition {
	out := make([]mbsp.Partition, len(parts))
	for i, p := range parts {
		out[i] = make(mbsp.Partition, len(p))
		for j, v := range p {
			out[i][j] = v
		}
	}
	return out
}

func TestTCPMapStage(t *testing.T) {
	exec, _ := startCluster(t, 3)
	if exec.Parallelism() != 3 {
		t.Fatalf("Parallelism = %d", exec.Parallelism())
	}
	outputs, metrics, err := exec.RunTasks("s", "double", intParts([]int{1, 2}, []int{3}, []int{4, 5, 6}))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{2, 4}, {6}, {8, 10, 12}}
	for i := range want {
		if len(outputs[i]) != len(want[i]) {
			t.Fatalf("partition %d = %v", i, outputs[i])
		}
		for j := range want[i] {
			if outputs[i][j].(int) != want[i][j] {
				t.Fatalf("partition %d = %v", i, outputs[i])
			}
		}
	}
	for i, m := range metrics {
		if m.TaskID != i || m.WorkerID != i%3 {
			t.Errorf("metrics[%d] = %+v", i, m)
		}
		if m.Duration <= 0 {
			t.Errorf("metrics[%d] duration = %v", i, m.Duration)
		}
	}
}

func TestTCPBroadcast(t *testing.T) {
	exec, _ := startCluster(t, 2)
	if err := exec.Broadcast("offset", 10); err != nil {
		t.Fatal(err)
	}
	outputs, _, err := exec.RunTasks("s", "add-broadcast", intParts([]int{1}, []int{2}, []int{3}))
	if err != nil {
		t.Fatal(err)
	}
	// Task 2 runs on worker 0 again: broadcast must be visible everywhere.
	if outputs[0][0].(int) != 11 || outputs[1][0].(int) != 12 || outputs[2][0].(int) != 13 {
		t.Errorf("outputs = %v", outputs)
	}
	// Rebroadcast replaces on all workers.
	if err := exec.Broadcast("offset", 100); err != nil {
		t.Fatal(err)
	}
	outputs, _, err = exec.RunTasks("s", "add-broadcast", intParts([]int{1}, []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	if outputs[0][0].(int) != 101 || outputs[1][0].(int) != 101 {
		t.Errorf("after rebroadcast: %v", outputs)
	}
	if err := exec.Broadcast("", 1); err == nil {
		t.Error("empty broadcast id accepted")
	}
}

func TestTCPMissingBroadcastPropagates(t *testing.T) {
	exec, _ := startCluster(t, 1)
	_, _, err := exec.RunTasks("s", "add-broadcast", intParts([]int{1}))
	if err == nil || !strings.Contains(err.Error(), "broadcast id not found") {
		t.Errorf("err = %v", err)
	}
}

func TestTCPTaskFailure(t *testing.T) {
	exec, _ := startCluster(t, 2)
	_, _, err := exec.RunTasks("s", "fail", intParts([]int{1}, []int{2}))
	if err == nil {
		t.Fatal("expected error")
	}
	var te *mbsp.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err %T: %v", err, err)
	}
	if !strings.Contains(te.Err.Error(), "kaput") {
		t.Errorf("lost cause: %v", te.Err)
	}
}

func TestTCPUnknownOp(t *testing.T) {
	exec, _ := startCluster(t, 1)
	_, _, err := exec.RunTasks("s", "missing-op", intParts([]int{1}))
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("err = %v", err)
	}
}

func TestTCPWorkerIdentity(t *testing.T) {
	exec, _ := startCluster(t, 2)
	outputs, _, err := exec.RunTasks("s", "worker-id", intParts(nil, nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	for task, out := range outputs {
		if got := out[0].(int); got != task%2 {
			t.Errorf("task %d ran on worker %d, want %d", task, got, task%2)
		}
	}
}

func TestTCPEngineIntegration(t *testing.T) {
	// Full engine pipeline over sockets: map -> shuffle -> map.
	reg := testRegistry(t)
	reg.MustRegister("key-parity", func(_ *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		out := make(mbsp.Partition, len(in))
		for i, item := range in {
			v := item.(int)
			out[i] = mbsp.KeyedItem{Key: uint64(v % 2), Item: v}
		}
		return out, nil
	})
	reg.MustRegister("sum-groups", func(_ *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		out := make(mbsp.Partition, 0, len(in))
		for _, item := range in {
			g := item.(mbsp.Group)
			sum := 0
			for _, x := range g.Items {
				sum += x.(int)
			}
			out = append(out, mbsp.KeyedItem{Key: g.Key, Item: sum})
		}
		return out, nil
	})
	workers, addrs, err := StartLocalCluster(2, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range workers {
			_ = w.Close()
		}
	}()
	exec, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	eng, err := mbsp.NewEngine(exec)
	if err != nil {
		t.Fatal(err)
	}
	keyed, err := eng.MapStage("map", "key-parity", intParts([]int{1, 2, 3}, []int{4, 5, 6}))
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := mbsp.ShuffleByKey(keyed, 2)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := eng.MapStage("reduce", "sum-groups", grouped)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]int{}
	for _, item := range mbsp.Collect(sums) {
		ki := item.(mbsp.KeyedItem)
		got[ki.Key] = ki.Item.(int)
	}
	if got[0] != 12 || got[1] != 9 { // evens 2+4+6, odds 1+3+5
		t.Errorf("sums = %v", got)
	}
	if len(eng.Metrics()) != 2 {
		t.Errorf("stage metrics = %d", len(eng.Metrics()))
	}
}

func TestTCPClosedExecutor(t *testing.T) {
	exec, _ := startCluster(t, 1)
	if err := exec.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := exec.RunTasks("s", "double", nil); !errors.Is(err, mbsp.ErrClosed) {
		t.Errorf("RunTasks after close = %v", err)
	}
	if err := exec.Broadcast("x", 1); !errors.Is(err, mbsp.ErrClosed) {
		t.Errorf("Broadcast after close = %v", err)
	}
	if err := exec.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial(nil); err == nil {
		t.Error("empty addrs accepted")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}); err == nil {
		t.Error("unreachable addr accepted")
	}
}

func TestStartLocalClusterErrors(t *testing.T) {
	if _, _, err := StartLocalCluster(0, mbsp.NewRegistry()); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewWorker(0, "127.0.0.1:0", nil); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := NewWorker(0, "256.0.0.1:0", mbsp.NewRegistry()); err == nil {
		t.Error("bad addr accepted")
	}
}

func TestWorkerDoubleClose(t *testing.T) {
	w, err := NewWorker(0, "127.0.0.1:0", testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}
