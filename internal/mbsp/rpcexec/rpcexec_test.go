package rpcexec

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"diststream/internal/mbsp"
)

func testRegistry(t *testing.T) *mbsp.Registry {
	t.Helper()
	reg := mbsp.NewRegistry()
	reg.MustRegister("double", func(_ *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		out := make(mbsp.Partition, len(in))
		for i, item := range in {
			out[i] = item.(int) * 2
		}
		return out, nil
	})
	reg.MustRegister("add-broadcast", func(ctx *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		bv, err := ctx.Broadcast("offset")
		if err != nil {
			return nil, err
		}
		off := bv.(int)
		out := make(mbsp.Partition, len(in))
		for i, item := range in {
			out[i] = item.(int) + off
		}
		return out, nil
	})
	reg.MustRegister("fail", func(_ *mbsp.TaskContext, _ mbsp.Partition) (mbsp.Partition, error) {
		return nil, errors.New("kaput")
	})
	reg.MustRegister("worker-id", func(ctx *mbsp.TaskContext, _ mbsp.Partition) (mbsp.Partition, error) {
		return mbsp.Partition{ctx.WorkerID}, nil
	})
	reg.MustRegister("fail-on-worker-zero", func(ctx *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		if ctx.WorkerID == 0 {
			return nil, errors.New("sick worker")
		}
		return in, nil
	})
	reg.MustRegister("panic-on-three", func(_ *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		for _, item := range in {
			if item.(int) == 3 {
				panic("poison record")
			}
		}
		return in, nil
	})
	return reg
}

func startCluster(t *testing.T, n int) (*Executor, []*Worker) {
	t.Helper()
	return startClusterCfg(t, n, Config{})
}

func startClusterCfg(t *testing.T, n int, cfg Config) (*Executor, []*Worker) {
	t.Helper()
	reg := testRegistry(t)
	workers, addrs, err := StartLocalCluster(n, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, w := range workers {
			_ = w.Close()
		}
	})
	exec, err := DialConfig(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = exec.Close() })
	return exec, workers
}

// faultCfg keeps the fault tests fast: short call timeout, one retry,
// near-instant backoff.
func faultCfg() Config {
	return Config{CallTimeout: 2 * time.Second, MaxRetries: 1, Backoff: 10 * time.Millisecond}
}

func intParts(parts ...[]int) []mbsp.Partition {
	out := make([]mbsp.Partition, len(parts))
	for i, p := range parts {
		out[i] = make(mbsp.Partition, len(p))
		for j, v := range p {
			out[i][j] = v
		}
	}
	return out
}

func TestTCPMapStage(t *testing.T) {
	exec, _ := startCluster(t, 3)
	if exec.Parallelism() != 3 {
		t.Fatalf("Parallelism = %d", exec.Parallelism())
	}
	outputs, metrics, err := exec.RunTasks(context.Background(), "s", "double", intParts([]int{1, 2}, []int{3}, []int{4, 5, 6}))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{2, 4}, {6}, {8, 10, 12}}
	for i := range want {
		if len(outputs[i]) != len(want[i]) {
			t.Fatalf("partition %d = %v", i, outputs[i])
		}
		for j := range want[i] {
			if outputs[i][j].(int) != want[i][j] {
				t.Fatalf("partition %d = %v", i, outputs[i])
			}
		}
	}
	for i, m := range metrics {
		if m.TaskID != i || m.WorkerID != i%3 {
			t.Errorf("metrics[%d] = %+v", i, m)
		}
		if m.Duration <= 0 {
			t.Errorf("metrics[%d] duration = %v", i, m.Duration)
		}
	}
}

func TestTCPBroadcast(t *testing.T) {
	exec, _ := startCluster(t, 2)
	if err := exec.Broadcast(context.Background(), "offset", 10); err != nil {
		t.Fatal(err)
	}
	outputs, _, err := exec.RunTasks(context.Background(), "s", "add-broadcast", intParts([]int{1}, []int{2}, []int{3}))
	if err != nil {
		t.Fatal(err)
	}
	// Task 2 runs on worker 0 again: broadcast must be visible everywhere.
	if outputs[0][0].(int) != 11 || outputs[1][0].(int) != 12 || outputs[2][0].(int) != 13 {
		t.Errorf("outputs = %v", outputs)
	}
	// Rebroadcast replaces on all workers.
	if err := exec.Broadcast(context.Background(), "offset", 100); err != nil {
		t.Fatal(err)
	}
	outputs, _, err = exec.RunTasks(context.Background(), "s", "add-broadcast", intParts([]int{1}, []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	if outputs[0][0].(int) != 101 || outputs[1][0].(int) != 101 {
		t.Errorf("after rebroadcast: %v", outputs)
	}
	if err := exec.Broadcast(context.Background(), "", 1); err == nil {
		t.Error("empty broadcast id accepted")
	}
}

func TestTCPMissingBroadcastPropagates(t *testing.T) {
	exec, _ := startCluster(t, 1)
	_, _, err := exec.RunTasks(context.Background(), "s", "add-broadcast", intParts([]int{1}))
	if err == nil || !strings.Contains(err.Error(), "broadcast id not found") {
		t.Errorf("err = %v", err)
	}
}

func TestTCPTaskFailure(t *testing.T) {
	exec, _ := startCluster(t, 2)
	_, _, err := exec.RunTasks(context.Background(), "s", "fail", intParts([]int{1}, []int{2}))
	if err == nil {
		t.Fatal("expected error")
	}
	var te *mbsp.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err %T: %v", err, err)
	}
	if !strings.Contains(te.Err.Error(), "kaput") {
		t.Errorf("lost cause: %v", te.Err)
	}
}

func TestTCPUnknownOp(t *testing.T) {
	exec, _ := startCluster(t, 1)
	_, _, err := exec.RunTasks(context.Background(), "s", "missing-op", intParts([]int{1}))
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("err = %v", err)
	}
}

func TestTCPWorkerIdentity(t *testing.T) {
	exec, _ := startCluster(t, 2)
	outputs, _, err := exec.RunTasks(context.Background(), "s", "worker-id", intParts(nil, nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	for task, out := range outputs {
		if got := out[0].(int); got != task%2 {
			t.Errorf("task %d ran on worker %d, want %d", task, got, task%2)
		}
	}
}

func TestTCPEngineIntegration(t *testing.T) {
	// Full engine pipeline over sockets: map -> shuffle -> map.
	reg := testRegistry(t)
	reg.MustRegister("key-parity", func(_ *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		out := make(mbsp.Partition, len(in))
		for i, item := range in {
			v := item.(int)
			out[i] = mbsp.KeyedItem{Key: uint64(v % 2), Item: v}
		}
		return out, nil
	})
	reg.MustRegister("sum-groups", func(_ *mbsp.TaskContext, in mbsp.Partition) (mbsp.Partition, error) {
		out := make(mbsp.Partition, 0, len(in))
		for _, item := range in {
			g := item.(mbsp.Group)
			sum := 0
			for _, x := range g.Items {
				sum += x.(int)
			}
			out = append(out, mbsp.KeyedItem{Key: g.Key, Item: sum})
		}
		return out, nil
	})
	workers, addrs, err := StartLocalCluster(2, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range workers {
			_ = w.Close()
		}
	}()
	exec, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	eng, err := mbsp.NewEngine(exec)
	if err != nil {
		t.Fatal(err)
	}
	keyed, err := eng.MapStage(context.Background(), "map", "key-parity", intParts([]int{1, 2, 3}, []int{4, 5, 6}))
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := mbsp.ShuffleByKey(keyed, 2)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := eng.MapStage(context.Background(), "reduce", "sum-groups", grouped)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]int{}
	for _, item := range mbsp.Collect(sums) {
		ki := item.(mbsp.KeyedItem)
		got[ki.Key] = ki.Item.(int)
	}
	if got[0] != 12 || got[1] != 9 { // evens 2+4+6, odds 1+3+5
		t.Errorf("sums = %v", got)
	}
	if len(eng.Metrics()) != 2 {
		t.Errorf("stage metrics = %d", len(eng.Metrics()))
	}
}

func TestTCPClosedExecutor(t *testing.T) {
	exec, _ := startCluster(t, 1)
	if err := exec.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := exec.RunTasks(context.Background(), "s", "double", nil); !errors.Is(err, mbsp.ErrClosed) {
		t.Errorf("RunTasks after close = %v", err)
	}
	if err := exec.Broadcast(context.Background(), "x", 1); !errors.Is(err, mbsp.ErrClosed) {
		t.Errorf("Broadcast after close = %v", err)
	}
	if err := exec.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial(nil); err == nil {
		t.Error("empty addrs accepted")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}); err == nil {
		t.Error("unreachable addr accepted")
	}
}

func TestStartLocalClusterErrors(t *testing.T) {
	if _, _, err := StartLocalCluster(0, mbsp.NewRegistry()); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewWorker(0, "127.0.0.1:0", nil); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := NewWorker(0, "256.0.0.1:0", mbsp.NewRegistry()); err == nil {
		t.Error("bad addr accepted")
	}
}

func TestWorkerDoubleClose(t *testing.T) {
	w, err := NewWorker(0, "127.0.0.1:0", testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

// A worker that crashes mid-stage loses its tasks to the survivors, dealt
// deterministically in task-index order, and the stage still produces the
// exact same outputs.
func TestTCPWorkerCrashRedispatch(t *testing.T) {
	exec, workers := startClusterCfg(t, 3, faultCfg())
	workers[1].SetFault(func(string, int) (Fault, time.Duration) {
		return FaultCrash, 0
	})
	outputs, metrics, err := exec.RunTasks(context.Background(), "s", "double",
		intParts([]int{1}, []int{2}, []int{3}, []int{4}, []int{5}, []int{6}))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{2, 4, 6, 8, 10, 12} {
		if outputs[i][0].(int) != want {
			t.Fatalf("outputs = %v", outputs)
		}
	}
	if got := exec.AliveWorkers(); got != 2 {
		t.Errorf("AliveWorkers = %d, want 2", got)
	}
	// Worker 1's tasks (1 and 4) are re-dealt round-robin, in index order,
	// over the sorted survivors {0, 2}.
	if metrics[1].WorkerID != 0 || metrics[4].WorkerID != 2 {
		t.Errorf("re-dispatch targets: task1->%d task4->%d, want 0 and 2",
			metrics[1].WorkerID, metrics[4].WorkerID)
	}
	if metrics[1].Retries < 1 {
		t.Errorf("task 1 retries = %d, want >= 1", metrics[1].Retries)
	}
	// Healthy workers keep the static assignment.
	for _, task := range []int{0, 2, 3, 5} {
		if got := metrics[task].WorkerID; got != task%3 {
			t.Errorf("task %d ran on worker %d, want %d", task, got, task%3)
		}
	}
}

// A single stall past the call timeout is absorbed by retry + reconnect:
// the worker stays in the pool and the task succeeds on its second attempt.
func TestTCPStallRecoversWithRetry(t *testing.T) {
	cfg := Config{CallTimeout: 150 * time.Millisecond, MaxRetries: 2, Backoff: 10 * time.Millisecond}
	exec, workers := startClusterCfg(t, 1, cfg)
	var calls atomic.Int32
	workers[0].SetFault(func(string, int) (Fault, time.Duration) {
		if calls.Add(1) == 1 {
			return FaultStall, 500 * time.Millisecond
		}
		return FaultNone, 0
	})
	outputs, metrics, err := exec.RunTasks(context.Background(), "s", "double", intParts([]int{21}))
	if err != nil {
		t.Fatal(err)
	}
	if outputs[0][0].(int) != 42 {
		t.Errorf("output = %v", outputs[0])
	}
	if metrics[0].Retries != 1 {
		t.Errorf("retries = %d, want 1", metrics[0].Retries)
	}
	if metrics[0].WorkerID != 0 || exec.AliveWorkers() != 1 {
		t.Errorf("worker declared lost after a recoverable stall")
	}
}

// A worker that stalls persistently exhausts its retries, is declared
// lost, and its tasks complete on the survivor.
func TestTCPPersistentStallRedispatch(t *testing.T) {
	cfg := Config{CallTimeout: 150 * time.Millisecond, MaxRetries: 1, Backoff: 10 * time.Millisecond}
	exec, workers := startClusterCfg(t, 2, cfg)
	workers[0].SetFault(func(string, int) (Fault, time.Duration) {
		return FaultStall, time.Second
	})
	outputs, metrics, err := exec.RunTasks(context.Background(), "s", "double",
		intParts([]int{1}, []int{2}, []int{3}, []int{4}))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{2, 4, 6, 8} {
		if outputs[i][0].(int) != want {
			t.Fatalf("outputs = %v", outputs)
		}
	}
	if exec.AliveWorkers() != 1 {
		t.Errorf("AliveWorkers = %d, want 1", exec.AliveWorkers())
	}
	for _, task := range []int{0, 2} {
		if metrics[task].WorkerID != 1 {
			t.Errorf("task %d ran on worker %d, want survivor 1", task, metrics[task].WorkerID)
		}
	}
}

// A dropped connection (worker process still alive) is healed by a
// reconnect; the worker is not declared lost.
func TestTCPDropRetriesOnFreshConnection(t *testing.T) {
	exec, workers := startClusterCfg(t, 1, Config{CallTimeout: 2 * time.Second, MaxRetries: 2, Backoff: 10 * time.Millisecond})
	var drops atomic.Int32
	workers[0].SetFault(func(string, int) (Fault, time.Duration) {
		if drops.Add(1) == 1 {
			return FaultDrop, 0
		}
		return FaultNone, 0
	})
	outputs, metrics, err := exec.RunTasks(context.Background(), "s", "double", intParts([]int{3}))
	if err != nil {
		t.Fatal(err)
	}
	if outputs[0][0].(int) != 6 {
		t.Errorf("output = %v", outputs[0])
	}
	if metrics[0].Retries != 1 || exec.AliveWorkers() != 1 {
		t.Errorf("retries = %d, alive = %d; want 1 and 1", metrics[0].Retries, exec.AliveWorkers())
	}
}

// Reconnecting replays the driver's cached broadcasts: even a worker
// process restarted from scratch (empty broadcast store) sees the full
// environment before its first task.
func TestTCPReconnectReplaysBroadcasts(t *testing.T) {
	reg := testRegistry(t)
	w1, err := NewWorker(0, "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	addr := w1.Addr()
	exec, err := DialConfig([]string{addr}, Config{CallTimeout: 2 * time.Second, MaxRetries: 4, Backoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = exec.Close() })
	if err := exec.Broadcast(context.Background(), "offset", 10); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the worker on the same port with a fresh (empty) state.
	var w2 *Worker
	for i := 0; i < 50; i++ {
		w2, err = NewWorker(0, addr, reg)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = w2.Close() })
	outputs, metrics, err := exec.RunTasks(context.Background(), "s", "add-broadcast", intParts([]int{1}, []int{5}))
	if err != nil {
		t.Fatal(err)
	}
	if outputs[0][0].(int) != 11 || outputs[1][0].(int) != 15 {
		t.Errorf("outputs = %v (broadcast not replayed?)", outputs)
	}
	if metrics[0].Retries < 1 {
		t.Errorf("task 0 retries = %d, want >= 1", metrics[0].Retries)
	}
	if exec.AliveWorkers() != 1 {
		t.Errorf("worker lost despite successful reconnect")
	}
}

func TestTCPAllWorkersLost(t *testing.T) {
	exec, workers := startClusterCfg(t, 2, faultCfg())
	for _, w := range workers {
		w.SetFault(func(string, int) (Fault, time.Duration) {
			return FaultCrash, 0
		})
	}
	_, _, err := exec.RunTasks(context.Background(), "s", "double", intParts([]int{1}, []int{2}))
	if !errors.Is(err, ErrAllWorkersLost) {
		t.Fatalf("err = %v, want ErrAllWorkersLost", err)
	}
	if exec.AliveWorkers() != 0 {
		t.Errorf("AliveWorkers = %d", exec.AliveWorkers())
	}
	if err := exec.Broadcast(context.Background(), "offset", 1); !errors.Is(err, ErrAllWorkersLost) {
		t.Errorf("Broadcast after total loss = %v, want ErrAllWorkersLost", err)
	}
	// Parallelism stays at the configured degree so partitioning is stable.
	if exec.Parallelism() != 2 {
		t.Errorf("Parallelism = %d, want 2", exec.Parallelism())
	}
}

// Broadcast survives losing a worker: the loss degrades the pool instead
// of failing the call, and the dead worker gets no further tasks.
func TestTCPBroadcastToleratesWorkerLoss(t *testing.T) {
	exec, workers := startClusterCfg(t, 2, faultCfg())
	if err := workers[1].Close(); err != nil {
		t.Fatal(err)
	}
	if err := exec.Broadcast(context.Background(), "offset", 7); err != nil {
		t.Fatalf("Broadcast with one dead worker = %v", err)
	}
	if exec.AliveWorkers() != 1 {
		t.Errorf("AliveWorkers = %d, want 1", exec.AliveWorkers())
	}
	outputs, _, err := exec.RunTasks(context.Background(), "s", "add-broadcast", intParts([]int{1}, []int{2}))
	if err != nil {
		t.Fatal(err)
	}
	if outputs[0][0].(int) != 8 || outputs[1][0].(int) != 9 {
		t.Errorf("outputs = %v", outputs)
	}
}

// Cancelling the context interrupts a call blocked on a stalled worker
// immediately, without waiting out the stall or the call timeout.
func TestTCPContextCancelInterruptsCall(t *testing.T) {
	exec, workers := startClusterCfg(t, 1, Config{CallTimeout: -1, MaxRetries: -1, Backoff: 10 * time.Millisecond})
	workers[0].SetFault(func(string, int) (Fault, time.Duration) {
		return FaultStall, time.Second
	})
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(100*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	start := time.Now()
	_, _, err := exec.RunTasks(ctx, "s", "double", intParts([]int{1}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 700*time.Millisecond {
		t.Errorf("cancellation took %v; the stall was not interrupted", elapsed)
	}
}

func TestTCPContextDeadlineBoundsRun(t *testing.T) {
	exec, workers := startClusterCfg(t, 1, Config{CallTimeout: -1, MaxRetries: -1, Backoff: 10 * time.Millisecond})
	workers[0].SetFault(func(string, int) (Fault, time.Duration) {
		return FaultStall, time.Second
	})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, _, err := exec.RunTasks(ctx, "s", "double", intParts([]int{1}))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
