package rpcexec

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"testing"
	"time"

	"diststream/internal/mbsp"
)

// testCounter and testIncr exercise the delta broadcast machinery with a
// deliberately NON-idempotent, NON-matching delta: the delta-applied
// value differs from the full value, so a test can tell from the
// worker-visible result which path actually delivered. (Real snapshot
// deltas reproduce the full value exactly; these exist to prove the
// executor's delivery decisions, not to model snapshots.)
type testCounter struct{ N int }

type testIncr struct {
	By   int
	Fail bool
}

func (d testIncr) ApplyDelta(old mbsp.Item) (mbsp.Item, error) {
	if d.Fail {
		return nil, errors.New("testIncr: apply refused")
	}
	c, ok := old.(testCounter)
	if !ok {
		return nil, fmt.Errorf("testIncr: base is %T, want testCounter", old)
	}
	return testCounter{N: c.N + d.By}, nil
}

func init() {
	gob.Register(testCounter{})
	gob.Register(testIncr{})
}

// startDeltaCluster is startClusterCfg plus an op reading the "counter"
// broadcast, so tests can observe worker-visible values.
func startDeltaCluster(t *testing.T, n int, cfg Config) (*Executor, []*Worker) {
	t.Helper()
	reg := testRegistry(t)
	reg.MustRegister("read-counter", func(ctx *mbsp.TaskContext, _ mbsp.Partition) (mbsp.Partition, error) {
		bv, err := ctx.Broadcast("counter")
		if err != nil {
			return nil, err
		}
		c, ok := bv.(testCounter)
		if !ok {
			return nil, fmt.Errorf("counter broadcast is %T", bv)
		}
		return mbsp.Partition{c.N}, nil
	})
	workers, addrs, err := StartLocalCluster(n, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, w := range workers {
			_ = w.Close()
		}
	})
	exec, err := DialConfig(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = exec.Close() })
	return exec, workers
}

// readCounters returns the worker-visible counter value per task (task i
// runs on worker i, one task per worker).
func readCounters(t *testing.T, exec *Executor, n int) []int {
	t.Helper()
	inputs := make([]mbsp.Partition, n)
	for i := range inputs {
		inputs[i] = mbsp.Partition{0}
	}
	outputs, _, err := exec.RunTasks(context.Background(), "read", "read-counter", inputs)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int, n)
	for i, out := range outputs {
		vals[i] = out[0].(int)
	}
	return vals
}

func TestBroadcastDeltaApplied(t *testing.T) {
	exec, _ := startDeltaCluster(t, 2, Config{DeltaBroadcast: true})
	ctx := context.Background()
	if err := exec.Broadcast(ctx, "counter", testCounter{N: 1}); err != nil {
		t.Fatal(err)
	}
	// Delta yields 42, full yields 2: the worker value reveals the path.
	if err := exec.BroadcastDelta(ctx, "counter", testCounter{N: 2}, testIncr{By: 41}); err != nil {
		t.Fatal(err)
	}
	for i, v := range readCounters(t, exec, 2) {
		if v != 42 {
			t.Errorf("worker %d sees %d, want 42 (delta-applied)", i, v)
		}
	}
	stats := exec.BroadcastStats()
	if stats.Deltas != 2 || stats.Fulls != 2 {
		t.Errorf("stats = %+v, want 2 deltas (second round) and 2 fulls (first)", stats)
	}
	if stats.Bytes <= 0 {
		t.Errorf("broadcast bytes not accounted: %+v", stats)
	}
}

func TestBroadcastDeltaDisabledShipsFull(t *testing.T) {
	exec, _ := startDeltaCluster(t, 2, Config{})
	ctx := context.Background()
	if err := exec.Broadcast(ctx, "counter", testCounter{N: 1}); err != nil {
		t.Fatal(err)
	}
	if exec.DeltaBroadcastEnabled() {
		t.Error("delta broadcast reported enabled on default config")
	}
	if err := exec.BroadcastDelta(ctx, "counter", testCounter{N: 2}, testIncr{By: 41}); err != nil {
		t.Fatal(err)
	}
	for i, v := range readCounters(t, exec, 2) {
		if v != 2 {
			t.Errorf("worker %d sees %d, want 2 (full value)", i, v)
		}
	}
	if stats := exec.BroadcastStats(); stats.Deltas != 0 {
		t.Errorf("deltas shipped while disabled: %+v", stats)
	}
}

func TestBroadcastDeltaReconnectGetsFull(t *testing.T) {
	exec, _ := startDeltaCluster(t, 2, Config{DeltaBroadcast: true, MaxRetries: 1, Backoff: 10 * time.Millisecond})
	ctx := context.Background()
	if err := exec.Broadcast(ctx, "counter", testCounter{N: 1}); err != nil {
		t.Fatal(err)
	}
	// Kill worker 0's connection out from under the executor: the next
	// broadcast must not trust the stale ack state. The redial replays the
	// NEW full snapshot, so the delta (which would yield 42) must not ride
	// on top of it.
	wc := exec.conns[0]
	wc.mu.Lock()
	wc.teardown()
	wc.mu.Unlock()
	if err := exec.BroadcastDelta(ctx, "counter", testCounter{N: 2}, testIncr{By: 41}); err != nil {
		t.Fatal(err)
	}
	vals := readCounters(t, exec, 2)
	if vals[0] != 2 {
		t.Errorf("reconnected worker sees %d, want 2 (full after reconnect)", vals[0])
	}
	if vals[1] != 42 {
		t.Errorf("healthy worker sees %d, want 42 (delta)", vals[1])
	}
	stats := exec.BroadcastStats()
	if stats.Deltas != 1 || stats.Fulls != 3 {
		t.Errorf("stats = %+v, want 1 delta and 3 fulls (2 initial + 1 reconnect)", stats)
	}
	// Ack state recovered: the next delta reaches both workers again.
	if err := exec.BroadcastDelta(ctx, "counter", testCounter{N: 3}, testIncr{By: 1}); err != nil {
		t.Fatal(err)
	}
	if stats := exec.BroadcastStats(); stats.Deltas != 3 {
		t.Errorf("delta shipping did not resume after reconnect: %+v", stats)
	}
}

func TestBroadcastDeltaApplyErrorFallsBackToFull(t *testing.T) {
	exec, _ := startDeltaCluster(t, 2, Config{DeltaBroadcast: true})
	ctx := context.Background()
	if err := exec.Broadcast(ctx, "counter", testCounter{N: 1}); err != nil {
		t.Fatal(err)
	}
	// The worker rejects the apply; the same Broadcast call must recover
	// by resending the full value, with no error surfacing to the caller.
	if err := exec.BroadcastDelta(ctx, "counter", testCounter{N: 2}, testIncr{Fail: true}); err != nil {
		t.Fatal(err)
	}
	for i, v := range readCounters(t, exec, 2) {
		if v != 2 {
			t.Errorf("worker %d sees %d, want 2 (full after rejected delta)", i, v)
		}
	}
	stats := exec.BroadcastStats()
	if stats.Deltas != 0 || stats.Fulls != 4 {
		t.Errorf("stats = %+v, want 0 deltas and 4 fulls", stats)
	}
	// The fallback full re-established a known base: deltas flow again.
	if err := exec.BroadcastDelta(ctx, "counter", testCounter{N: 3}, testIncr{By: 1}); err != nil {
		t.Fatal(err)
	}
	if stats := exec.BroadcastStats(); stats.Deltas != 2 {
		t.Errorf("delta shipping did not resume after a rejected apply: %+v", stats)
	}
}

// TestBroadcastFanoutParallel pins the parallel fan-out: with every
// worker delaying each broadcast by 60ms, a serial driver would need
// ~240ms for four workers; the parallel one finishes in roughly one
// delay. The bound is loose (200ms) to stay robust on slow CI.
func TestBroadcastFanoutParallel(t *testing.T) {
	exec, workers := startDeltaCluster(t, 4, Config{})
	for _, w := range workers {
		w.SetBroadcastDelay(60 * time.Millisecond)
	}
	start := time.Now()
	if err := exec.Broadcast(context.Background(), "counter", testCounter{N: 1}); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 60*time.Millisecond {
		t.Errorf("broadcast returned in %v, before any worker's delay elapsed", elapsed)
	}
	if elapsed > 200*time.Millisecond {
		t.Errorf("broadcast took %v; fan-out appears serialized (4 workers x 60ms)", elapsed)
	}
}
