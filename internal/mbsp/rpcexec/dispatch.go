package rpcexec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"diststream/internal/mbsp"
	"diststream/internal/wire"
)

var (
	_ mbsp.Capable         = (*Executor)(nil)
	_ mbsp.StageDispatcher = (*Executor)(nil)
)

// Capabilities implements mbsp.Capable.
func (e *Executor) Capabilities() mbsp.Capabilities {
	return mbsp.Capabilities{
		DeltaBroadcast:    e.cfg.DeltaBroadcast,
		AsyncDispatch:     true,
		ElasticMembership: e.cfg.Membership != nil,
	}
}

// DispatchStage implements mbsp.StageDispatcher: the stage's broadcast is
// fused into task delivery — each worker receives its broadcast frame and
// its first task frame back-to-back on the wire, and the driver reads
// both responses afterwards — removing the cross-worker broadcast barrier
// and one round trip per worker per stage. Task inputs are columnar-
// encoded lazily on the per-worker dispatch goroutines (the plain path
// encodes every partition serially before dispatching anything), and
// completed task outputs stream to spec.OnTaskDone as they arrive.
//
// Correctness under the pipelined framing rests on a driver-side discard
// rule: the worker's serve loop is strictly sequential, so when the
// broadcast response reports a failure (a delta that did not apply, an
// app-level error), the already-executed task ran against a stale model —
// the driver discards that task response and re-sends the task after the
// full-value fallback lands. Transport failures tear the connection down
// and retry through the usual redial-and-replay machinery. Either way the
// worker-visible model and the committed task outputs are identical to
// the barrier path's.
//
// Under speculation the fused framing is skipped (duplicate task copies
// need the cancellable per-call path) and the stage degrades to
// broadcast-then-speculative-barrier with callbacks replayed afterwards.
func (e *Executor) DispatchStage(ctx context.Context, spec mbsp.StageSpec) ([]mbsp.Partition, []mbsp.TaskMetrics, error) {
	if e.isClosed() {
		return nil, nil, mbsp.ErrClosed
	}
	if e.cfg.Speculation != nil {
		return e.dispatchBarrier(ctx, spec)
	}
	return e.dispatchFused(ctx, spec)
}

// dispatchBarrier is the conservative emulation: ordinary broadcast
// barrier, ordinary (possibly speculative) task stage, callbacks replayed
// in task order.
func (e *Executor) dispatchBarrier(ctx context.Context, spec mbsp.StageSpec) ([]mbsp.Partition, []mbsp.TaskMetrics, error) {
	if spec.BroadcastID != "" {
		delta := spec.BroadcastDelta
		if !e.cfg.DeltaBroadcast {
			delta = nil
		}
		if err := e.broadcastValue(ctx, spec.BroadcastID, spec.BroadcastValue, delta); err != nil {
			return nil, nil, &mbsp.BroadcastError{ID: spec.BroadcastID, Err: err}
		}
	}
	outputs, metrics, err := e.RunTasks(ctx, spec.Stage, spec.Op, spec.Inputs)
	if err != nil {
		return nil, metrics, err
	}
	if spec.OnTaskDone != nil {
		for task, out := range outputs {
			spec.OnTaskDone(task, out)
		}
	}
	return outputs, metrics, nil
}

// lazyTaskRequest builds a task request, columnar-encoding the partition
// at dispatch time on the calling goroutine. A task re-dispatched after a
// worker loss re-encodes; that trade (rare re-encode for a fully parallel
// common case) is the point of the lazy path.
func lazyTaskRequest(stage, op string, task int, input mbsp.Partition) request {
	req := request{Kind: kindTask, Stage: stage, Op: op, TaskID: task}
	if b, ok := wire.EncodePartition(input); ok {
		req.InputCols = b
	} else {
		req.Input = input
	}
	return req
}

// dispatchFused runs the fused broadcast+task rounds. Round one delivers
// the broadcast to every live worker — pipelined with the worker's first
// task where it has one, broadcast-only where it does not — and later
// rounds re-dispatch stranded tasks exactly like RunTasks.
func (e *Executor) dispatchFused(ctx context.Context, spec mbsp.StageSpec) ([]mbsp.Partition, []mbsp.TaskMetrics, error) {
	n := len(spec.Inputs)
	outputs := make([]mbsp.Partition, n)
	metrics := make([]mbsp.TaskMetrics, n)
	retries := make([]int, n)

	// Cache the fused broadcast driver-side before anything ships, exactly
	// as broadcastValue does: redials replay it, and the version bump
	// decides delta eligibility per worker.
	var reqFull request
	var reqDelta *request
	var version uint64
	broadcastPending := spec.BroadcastID != ""
	if broadcastPending {
		e.bmu.Lock()
		prev, seen := e.bcast[spec.BroadcastID]
		if !seen {
			e.border = append(e.border, spec.BroadcastID)
		}
		version = prev.version + 1
		e.bcast[spec.BroadcastID] = bcastEntry{value: spec.BroadcastValue, version: version}
		e.bmu.Unlock()
		reqFull = request{Kind: kindBroadcast, BroadcastID: spec.BroadcastID, BroadcastValue: spec.BroadcastValue, BroadcastVersion: version}
		delta := spec.BroadcastDelta
		if !e.cfg.DeltaBroadcast {
			delta = nil
		}
		if delta != nil && version > 1 {
			rd := request{Kind: kindBroadcast, BroadcastID: spec.BroadcastID, BroadcastVersion: version, BroadcastDelta: true}
			if cols, ok := wire.EncodeValue(delta); ok {
				rd.BroadcastCols = cols
			} else {
				rd.BroadcastValue = delta
			}
			reqDelta = &rd
		}
	}

	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 || broadcastPending {
		if err := ctx.Err(); err != nil {
			return nil, metrics, err
		}
		var alive []int
		for w, wc := range e.conns {
			if wc.alive() {
				alive = append(alive, w)
			}
		}
		if len(alive) == 0 {
			if broadcastPending {
				return nil, metrics, &mbsp.BroadcastError{ID: spec.BroadcastID, Err: e.allWorkersLost(spec.Stage, -1)}
			}
			return nil, metrics, e.allWorkersLost(spec.Stage, len(pending))
		}
		assign := make([][]int, len(alive))
		for j, task := range pending {
			assign[j%len(alive)] = append(assign[j%len(alive)], task)
		}

		st := &dispatchRound{
			spec:    spec,
			outputs: outputs,
			metrics: metrics,
			retries: retries,
		}
		var wg sync.WaitGroup
		for wi, worker := range alive {
			tasks := assign[wi]
			if len(tasks) == 0 && !broadcastPending {
				continue
			}
			worker, tasks := worker, tasks
			wg.Add(1)
			go func() {
				defer wg.Done()
				wc := e.conns[worker]
				if broadcastPending {
					if len(tasks) == 0 {
						// No task to fuse with: plain broadcast so this
						// worker's state stays current for later rounds.
						if err := e.broadcastToWorker(ctx, wc, spec.BroadcastID, version, reqFull, reqDelta); err != nil {
							st.noteBroadcast(err)
						}
						return
					}
					rest, ok := e.fusedFirst(ctx, wc, worker, spec, version, reqFull, reqDelta, tasks, st)
					if !ok {
						return
					}
					tasks = rest
				}
				e.runTaskList(ctx, wc, worker, spec, tasks, st)
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, metrics, err
		}
		if len(st.bcastFatal) > 0 {
			return nil, metrics, &mbsp.BroadcastError{ID: spec.BroadcastID, Err: errors.Join(st.bcastFatal...)}
		}
		broadcastPending = false
		if len(st.taskErrs) > 0 {
			sort.Slice(st.taskErrs, func(i, j int) bool { return st.taskErrs[i].TaskID < st.taskErrs[j].TaskID })
			return nil, metrics, st.taskErrs[0]
		}
		sort.Ints(st.requeue)
		pending = st.requeue
	}
	return outputs, metrics, nil
}

// dispatchRound is the shared mutable state of one dispatch round.
// outputs/metrics/retries are indexed by task id and written by at most
// one goroutine per task; the appended slices are guarded by mu.
type dispatchRound struct {
	spec    mbsp.StageSpec
	outputs []mbsp.Partition
	metrics []mbsp.TaskMetrics
	retries []int

	mu         sync.Mutex
	requeue    []int
	taskErrs   []*mbsp.TaskError
	bcastFatal []error
	lastLoss   error
}

func (st *dispatchRound) noteBroadcast(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if errors.Is(err, ErrWorkerLost) {
		// Degraded but consistent, as on the barrier path: the lost worker
		// receives no tasks, so its stale state cannot surface.
		st.lastLoss = err
		return
	}
	st.bcastFatal = append(st.bcastFatal, err)
}

func (st *dispatchRound) strand(tasks []int, err error) {
	st.mu.Lock()
	st.lastLoss = err
	st.requeue = append(st.requeue, tasks...)
	st.mu.Unlock()
}

// commit records one successful task response. It returns an error only
// for deterministic failures (app error, corrupt columnar output), which
// the caller records as a task error rather than re-dispatching.
func (st *dispatchRound) commit(worker, task int, resp response, start time.Time) {
	if resp.Err != "" {
		st.mu.Lock()
		st.taskErrs = append(st.taskErrs, &mbsp.TaskError{Stage: st.spec.Stage, TaskID: task, Err: errors.New(resp.Err)})
		st.mu.Unlock()
		return
	}
	out, decErr := respOutput(resp)
	if decErr != nil {
		st.mu.Lock()
		st.taskErrs = append(st.taskErrs, &mbsp.TaskError{Stage: st.spec.Stage, TaskID: task, Err: decErr})
		st.mu.Unlock()
		return
	}
	st.outputs[task] = out
	st.metrics[task] = mbsp.TaskMetrics{
		Stage:    st.spec.Stage,
		TaskID:   task,
		WorkerID: worker,
		Duration: time.Since(start),
		InItems:  len(st.spec.Inputs[task]),
		OutItems: len(out),
		Retries:  st.retries[task],
	}
	if st.spec.OnTaskDone != nil {
		st.spec.OnTaskDone(task, out)
	}
}

// fusedFirst delivers the stage broadcast and the worker's first task as
// two back-to-back frames on the live connection, then reads both
// responses. It returns the tasks still to run on this worker and whether
// the caller should continue driving it (false when the worker was lost
// or a fatal broadcast error was recorded).
func (e *Executor) fusedFirst(ctx context.Context, w *workerConn, worker int, spec mbsp.StageSpec, version uint64, reqFull request, reqDelta *request, tasks []int, st *dispatchRound) ([]int, bool) {
	w.mu.Lock()
	if w.dead {
		w.mu.Unlock()
		st.strand(tasks, fmt.Errorf("%w: %s", ErrWorkerLost, w.addr))
		return nil, false
	}
	first := tasks[0]
	rest := tasks[1:]
	firstDone := false
	bcastOK := false
	start := time.Now()
	if w.conn != nil {
		useDelta := reqDelta != nil && w.acked[spec.BroadcastID] == version-1
		breq := reqFull
		if useDelta {
			breq = *reqDelta
		}
		treq := lazyTaskRequest(spec.Stage, spec.Op, first, spec.Inputs[first])
		bresp, tresp, bcastBytes, err := w.exchangePipelined(ctx, breq, treq)
		switch {
		case err != nil:
			// Transport failure somewhere in the pipelined exchange: the
			// outcome of both frames is unknown. Tear down; the sequential
			// fallback below redials and replays.
			w.teardown()
			delete(w.acked, spec.BroadcastID)
			st.retries[first]++
		case bresp.Err != "":
			// Worker-side reject on a healthy connection. The task already
			// executed against the stale model — discard its response.
			delete(w.acked, spec.BroadcastID)
			if !useDelta {
				// The full value itself was rejected: fatal, as on the
				// barrier path.
				w.mu.Unlock()
				st.noteBroadcast(errors.New(bresp.Err))
				return nil, false
			}
			st.retries[first]++
		default:
			w.acked[spec.BroadcastID] = version
			if useDelta {
				e.bDeltas.Add(1)
			} else {
				e.bFulls.Add(1)
			}
			e.bBytes.Add(bcastBytes)
			bcastOK = true
			st.commit(worker, first, tresp, start)
			firstDone = true
		}
	}
	if !bcastOK {
		// Sequential fallback: the full value through the retried path
		// (redial replays every cached broadcast, including this one), then
		// the first task again.
		sentBefore := w.sent.Load()
		resp, _, err := w.callLocked(ctx, reqFull)
		if err != nil {
			w.mu.Unlock()
			if errors.Is(err, ErrWorkerLost) {
				st.strand(tasks, err)
			} else {
				st.noteBroadcast(err)
			}
			return nil, false
		}
		if resp.Err != "" {
			delete(w.acked, spec.BroadcastID)
			w.mu.Unlock()
			st.noteBroadcast(errors.New(resp.Err))
			return nil, false
		}
		w.acked[spec.BroadcastID] = version
		e.bFulls.Add(1)
		e.bBytes.Add(w.sent.Load() - sentBefore)
	}
	w.mu.Unlock()
	if firstDone {
		return rest, true
	}
	return tasks, true
}

// runTaskList drives one worker through its task list for the round,
// stranding the remainder if the worker is lost.
func (e *Executor) runTaskList(ctx context.Context, wc *workerConn, worker int, spec mbsp.StageSpec, tasks []int, st *dispatchRound) {
	for k, task := range tasks {
		if ctx.Err() != nil {
			return
		}
		start := time.Now()
		resp, tries, err := wc.call(ctx, lazyTaskRequest(spec.Stage, spec.Op, task, spec.Inputs[task]))
		st.retries[task] += tries
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			st.strand(tasks[k:], err)
			return
		}
		st.commit(worker, task, resp, start)
	}
}
