package mbsp

import (
	"math/rand"
	"testing"
)

// shuffleBenchInput builds p partitions of n keyed items each, with keys
// drawn from numKeys micro-cluster ids plus an outlier band — the shape
// the assign stage emits.
func shuffleBenchInput(p, n, numKeys int) []Partition {
	rng := rand.New(rand.NewSource(3))
	inputs := make([]Partition, p)
	for pi := range inputs {
		part := make(Partition, n)
		for i := range part {
			key := uint64(rng.Intn(numKeys) + 1)
			if rng.Intn(10) == 0 {
				key = (uint64(1) << 63) | uint64(rng.Intn(p))
			}
			part[i] = KeyedItem{Key: key, Item: i}
		}
		inputs[pi] = part
	}
	return inputs
}

// BenchmarkShuffleByKey measures the driver-side group-by-key shuffle
// between the assign and local-update stages.
func BenchmarkShuffleByKey(b *testing.B) {
	const (
		p       = 4
		perPart = 4096
		numKeys = 100
	)
	inputs := shuffleBenchInput(p, perPart, numKeys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ShuffleByKey(inputs, p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p*perPart)*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
}
